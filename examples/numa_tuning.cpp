// NUMA tuning of the iSER storage target, step by step.
//
// Reproduces the heart of the paper's back-end study (Figs. 7/8): the same
// fio workload against the same hardware, once with the stock Linux
// scheduler and once with the paper's numactl-style tuning (one target
// process per NUMA node, LUN files pinned with mpol=bind, staging buffers
// NIC-local). Prints bandwidth and target CPU for reads and writes, and
// explains why writes suffer most.
//
//   $ ./numa_tuning
#include <cstdio>

#include "apps/fio.hpp"
#include "exp/exp.hpp"
#include "metrics/table.hpp"

using namespace e2e;

namespace {

struct Point {
  double gbps;
  double cpu;
};

Point run(bool tuned, bool write) {
  exp::SanConfig cfg;
  cfg.numa_tuned = tuned;
  cfg.lun_bytes = 4ull << 30;
  exp::SanTestbed tb(cfg);
  tb.start();
  apps::FioOptions opts;
  opts.block_bytes = 4ull << 20;
  opts.write = write;
  opts.duration = 2 * sim::kSecond;
  const auto r = tb.run_fio(opts, /*threads_per_lun=*/4);
  return {r.gbps, r.target_cpu_pct};
}

}  // namespace

int main() {
  std::printf("workload: fio, 6 LUNs x 4 threads, 4 MiB sequential I/O\n");
  std::printf("back-end: tmpfs target exported over two 56G IB links (iSER)\n\n");

  const Point rd = run(false, false), rt = run(true, false);
  const Point wd = run(false, true), wt = run(true, true);

  metrics::Table t("default Linux scheduling vs NUMA tuning");
  t.header({"workload", "binding", "Gbps", "target CPU"});
  t.row({"read", "default", metrics::Table::num(rd.gbps),
         metrics::Table::num(rd.cpu, 0) + "%"});
  t.row({"read", "tuned", metrics::Table::num(rt.gbps),
         metrics::Table::num(rt.cpu, 0) + "%"});
  t.row({"write", "default", metrics::Table::num(wd.gbps),
         metrics::Table::num(wd.cpu, 0) + "%"});
  t.row({"write", "tuned", metrics::Table::num(wt.gbps),
         metrics::Table::num(wt.cpu, 0) + "%"});
  std::fputs(t.to_string().c_str(), stdout);

  std::printf(
      "\nwhy writes hurt: an un-tuned write lands on pages whose cache\n"
      "lines other sockets still hold, so every store pays a cross-socket\n"
      "invalidation (%.1fx CPU here). Reads leave lines Shared and only\n"
      "pay the remote-access penalty (%.1fx bandwidth loss).\n",
      wd.cpu / wt.cpu, rt.gbps / rd.gbps);
  std::printf(
      "the fix is static: one target process per node (numactl), LUN files\n"
      "pinned with tmpfs mpol=bind, and each NIC served by its own node.\n");
  return 0;
}
