// WAN tuning: filling a long fat pipe with credits.
//
// The DOE ANI loop of the paper: 40 Gbps RoCE, 95 ms RTT, which puts the
// bandwidth-delay product near 475 MB. This example sweeps the two knobs
// that control how much data RFTP keeps in flight — parallel streams and
// credit tokens per stream — and prints when the pipe fills.
//
//   $ ./wan_tuning
#include <cstdio>

#include "exp/exp.hpp"
#include "metrics/table.hpp"
#include "rftp/rftp.hpp"

using namespace e2e;

namespace {

double run_point(int streams, int credits, std::uint64_t block) {
  exp::WanTestbed tb;
  rftp::RftpConfig cfg;
  cfg.streams = streams;
  cfg.credits_per_stream = credits;
  cfg.block_bytes = block;
  rftp::RftpSession session({tb.a_proc.get(), {tb.a_dev.get()}},
                            {tb.b_proc.get(), {tb.b_dev.get()}},
                            {tb.link.get()}, cfg);
  const std::uint64_t bytes = 12ull << 30;
  rftp::MemorySource src(bytes, numa::Placement::on(0));
  rftp::MemorySink dst;
  return exp::run_task(tb.eng, session.run(src, dst, bytes)).goodput_gbps;
}

}  // namespace

int main() {
  const std::uint64_t block = 8ull << 20;
  std::printf("link: 40 Gbps, RTT 95 ms -> BDP = 475 MB; block = 8 MiB\n\n");

  metrics::Table t("WAN throughput (Gbps) vs in-flight data");
  t.header({"streams", "credits", "in-flight", "Gbps", "pipe"});
  for (int streams : {1, 2, 4}) {
    for (int credits : {4, 16, 32}) {
      const double inflight_mb =
          static_cast<double>(streams) * credits * block / 1e6;
      const double gbps = run_point(streams, credits, block);
      t.row({std::to_string(streams), std::to_string(credits),
             metrics::Table::num(inflight_mb, 0) + " MB",
             metrics::Table::num(gbps),
             gbps > 38.0 ? "full" : (gbps > 20 ? "partial" : "starved")});
    }
  }
  std::fputs(t.to_string().c_str(), stdout);
  std::printf(
      "\nrule of thumb: streams x credits x block must exceed the BDP;\n"
      "past that, bigger blocks only trim per-block protocol overhead.\n");
  return 0;
}
