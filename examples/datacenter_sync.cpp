// Data-center synchronization: the paper's Figure 1 / Figure 5 scenario.
//
// Moves a dataset across the full end-to-end path:
//
//   source SAN (iSER over 2x56G IB) -> source front-end
//     -> three 40G RoCE links -> destination front-end
//     -> destination SAN (iSER over 2x56G IB)
//
// with XFS over the striped iSER volume on both sides, NUMA-tuned
// throughout, and RFTP's locality-aware block routing keeping each block's
// storage DMA, staging buffer and wire DMA on one socket.
//
//   $ ./datacenter_sync [GiB]
#include <cstdio>
#include <cstdlib>

#include "exp/exp.hpp"
#include "metrics/metrics.hpp"
#include "rftp/rftp.hpp"

using namespace e2e;

int main(int argc, char** argv) {
  const std::uint64_t gib = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 16;
  const std::uint64_t bytes = gib << 30;

  std::printf("bringing up the end-to-end testbed (two SANs, 3x40G RoCE)...\n");
  exp::EndToEndTestbed tb(/*numa_tuned=*/true, bytes);
  tb.start();

  numa::Process client(*tb.src_fe, "rftp-client",
                       numa::NumaBinding::os_default());
  numa::Process server(*tb.dst_fe, "rftp-server",
                       numa::NumaBinding::os_default());

  rftp::RftpConfig cfg;  // 3 streams, 4 MiB blocks, 16 credits, NUMA-aware
  rftp::RftpSession session({&client, tb.src_roce()},
                            {&server, tb.dst_roce()}, tb.links(), cfg);

  // The source file lives on XFS over the striped iSER volume; the
  // locality callback tells RFTP which socket serves each byte range.
  exp::SanSection* san = tb.src_san.get();
  rftp::FileSource src(*tb.src_fs, *tb.src_file, /*direct=*/true,
                       [san](std::uint64_t off, std::uint64_t) {
                         return san->fe_node_of(off);
                       });
  rftp::FileSink dst(*tb.dst_fs, *tb.dst_file);

  metrics::ThroughputMeter meter(tb.eng, sim::kSecond);
  const auto result = exp::run_task(tb.eng, session.run(src, dst, bytes, &meter));

  std::printf("synchronized %llu GiB in %.1f s  ->  %.1f Gbps end to end\n",
              static_cast<unsigned long long>(gib), result.elapsed_s,
              result.goodput_gbps);
  std::printf("throughput per second: ");
  for (double g : meter.series_gbps()) std::printf("%.0f ", g);
  std::printf("Gbps\n");

  const auto usage = tb.src_fe->total_usage();
  std::printf("source host CPU: %.0f%% total (user-proto %.0f%%, kernel %.0f%%)\n",
              usage.total_percent(tb.eng.now()),
              usage.percent(metrics::CpuCategory::kUserProto, tb.eng.now()),
              usage.percent(metrics::CpuCategory::kKernelProto, tb.eng.now()));
  return 0;
}
