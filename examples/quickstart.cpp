// Quickstart: transfer a dataset between two hosts with RFTP.
//
// Builds the smallest complete system: two NUMA hosts from the paper's
// Table 1, one 40 Gbps RoCE link, and one RFTP session moving 8 GiB of
// memory-resident data. Shows the three things every user of the library
// touches: a testbed (hosts + devices + links), an RftpSession, and the
// simulated clock.
//
//   $ ./quickstart
//   transferred 8.0 GiB in 1.73 s  ->  39.6 Gbps (99% of the 40G link)
#include <cstdio>
#include <memory>

#include "exp/runner.hpp"
#include "model/host_profile.hpp"
#include "net/link.hpp"
#include "numa/numa.hpp"
#include "rdma/device.hpp"
#include "rftp/rftp.hpp"

using namespace e2e;

int main() {
  // 1. The simulated world: an engine, two hosts, their NICs, one wire.
  sim::Engine eng;
  numa::Host sender(eng, model::front_end_lan_host("sender"));
  numa::Host receiver(eng, model::front_end_lan_host("receiver"));
  rdma::Device snic(sender, sender.profile().nics[0]);
  rdma::Device rnic(receiver, receiver.profile().nics[0]);
  auto link = net::make_roce_lan(eng, "wire");
  link->bind_endpoints(&sender, &receiver);

  // 2. Processes host the transfer threads; numactl-style binding puts
  //    them on the NIC's NUMA node.
  numa::Process client(sender, "rftp-client",
                       numa::NumaBinding::bound(snic.node()));
  numa::Process server(receiver, "rftp-server",
                       numa::NumaBinding::bound(rnic.node()));

  // 3. One RFTP session: a single stream with default 4 MiB blocks.
  rftp::RftpConfig cfg;
  cfg.streams = 1;
  rftp::RftpSession session({&client, {&snic}}, {&server, {&rnic}},
                            {link.get()}, cfg);

  const std::uint64_t bytes = 8ull << 30;
  rftp::MemorySource src(bytes, numa::Placement::on(snic.node()));
  rftp::MemorySink dst;

  // 4. Run to completion and report.
  const auto result = exp::run_task(eng, session.run(src, dst, bytes));
  std::printf("transferred %.1f GiB in %.2f s  ->  %.1f Gbps (%.0f%% of the 40G link)\n",
              static_cast<double>(bytes) / (1ull << 30), result.elapsed_s,
              result.goodput_gbps, 100.0 * result.goodput_gbps / 40.0);
  return 0;
}
