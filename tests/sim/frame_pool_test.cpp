#include "sim/frame_pool.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "sim/engine.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace e2e::sim {
namespace {

using detail::FramePool;
using detail::kFramePoolEnabled;

TEST(FramePool, RecyclesBlocksOfTheSameBucket) {
  if (!kFramePoolEnabled) GTEST_SKIP() << "frame pool compiled out (ASan)";
  FramePool::trim();
  const auto before = FramePool::stats();
  void* a = FramePool::allocate(200);
  ASSERT_NE(a, nullptr);
  std::memset(a, 0xab, 200);  // the block must be writable storage
  FramePool::deallocate(a, 200);
  // Same bucket (sizes round up to kGranularity), so the block comes back.
  void* b = FramePool::allocate(FramePool::kGranularity * 3 + 1);
  EXPECT_EQ(b, a);
  FramePool::deallocate(b, FramePool::kGranularity * 3 + 1);
  const auto after = FramePool::stats();
  EXPECT_EQ(after.fresh, before.fresh + 1);
  EXPECT_GE(after.reused, before.reused + 1);
  FramePool::trim();
  EXPECT_EQ(FramePool::stats().cached, 0u);
}

TEST(FramePool, OversizeFallsThroughToGlobalAllocator) {
  if (!kFramePoolEnabled) GTEST_SKIP() << "frame pool compiled out (ASan)";
  const auto before = FramePool::stats();
  void* p = FramePool::allocate(FramePool::kMaxPooledBytes + 1);
  ASSERT_NE(p, nullptr);
  FramePool::deallocate(p, FramePool::kMaxPooledBytes + 1);
  const auto after = FramePool::stats();
  EXPECT_EQ(after.oversize, before.oversize + 1);
  EXPECT_EQ(after.cached, before.cached);  // oversize blocks are not parked
}

Task<> tick(Engine& eng, int* out) {
  co_await Delay{eng, 1};
  ++*out;
}

TEST(FramePool, CoroutineFrameChurnReusesFreedFrames) {
  if (!kFramePoolEnabled) GTEST_SKIP() << "frame pool compiled out (ASan)";
  Engine eng;
  int ran = 0;
  // Warm-up spawn so the frame size's bucket holds a block.
  co_spawn(tick(eng, &ran));
  eng.run();
  const auto warm = FramePool::stats();
  for (int i = 0; i < 100; ++i) {
    co_spawn(tick(eng, &ran));
    eng.run();
  }
  EXPECT_EQ(ran, 101);
  const auto after = FramePool::stats();
  // Sequential identical frames must hit the freelist, not the allocator.
  EXPECT_EQ(after.fresh, warm.fresh);
  EXPECT_GE(after.reused, warm.reused + 100);
}

}  // namespace
}  // namespace e2e::sim
