#include "sim/task.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "sim/engine.hpp"
#include "sim/sync.hpp"

namespace e2e::sim {
namespace {

Task<int> make_value(int v) { co_return v; }

Task<int> add_async(Engine& eng, int a, int b) {
  co_await Delay{eng, 10};
  co_return a + b;
}

Task<> set_flag(bool* flag) {
  *flag = true;
  co_return;
}

TEST(Task, LazyUntilAwaitedOrSpawned) {
  bool flag = false;
  {
    Task<> t = set_flag(&flag);
    EXPECT_FALSE(flag);  // body has not started
  }                      // destroying an unstarted task is safe
  EXPECT_FALSE(flag);
}

TEST(Task, SpawnRunsSynchronouslyToFirstSuspension) {
  bool flag = false;
  co_spawn(set_flag(&flag));
  EXPECT_TRUE(flag);
}

Task<> outer_sum(Engine& eng, int* out) {
  const int x = co_await make_value(20);
  const int y = co_await add_async(eng, x, 22);
  *out = y;
}

TEST(Task, NestedAwaitPropagatesValues) {
  Engine eng;
  int out = 0;
  co_spawn(outer_sum(eng, &out));
  eng.run();
  EXPECT_EQ(out, 42);
  EXPECT_EQ(eng.now(), 10u);
}

Task<int> throws_logic_error() {
  throw std::logic_error("boom");
  co_return 0;
}

Task<> catches(bool* caught) {
  try {
    (void)co_await throws_logic_error();
  } catch (const std::logic_error&) {
    *caught = true;
  }
}

TEST(Task, ExceptionsPropagateToAwaiter) {
  bool caught = false;
  co_spawn(catches(&caught));
  EXPECT_TRUE(caught);
}

Task<std::string> string_task() { co_return std::string(100, 'x'); }

Task<> move_heavy(std::string* out) { *out = co_await string_task(); }

TEST(Task, MoveOnlyishResultsTransfer) {
  std::string out;
  co_spawn(move_heavy(&out));
  EXPECT_EQ(out.size(), 100u);
}

TEST(Task, MoveConstructionTransfersOwnership) {
  Task<int> t = make_value(7);
  Task<int> u = std::move(t);
  EXPECT_FALSE(t.valid());
  EXPECT_TRUE(u.valid());
}

Task<> deep_chain(Engine& eng, int depth, int* count) {
  if (depth > 0) {
    co_await Delay{eng, 1};
    co_await deep_chain(eng, depth - 1, count);
  }
  ++*count;
}

TEST(Task, DeepRecursiveChains) {
  Engine eng;
  int count = 0;
  co_spawn(deep_chain(eng, 200, &count));
  eng.run();
  EXPECT_EQ(count, 201);
  EXPECT_EQ(eng.now(), 200u);
}

TEST(Task, ManyConcurrentSpawns) {
  Engine eng;
  int done = 0;
  for (int i = 0; i < 1000; ++i) {
    co_spawn([](Engine& e, int delay, int* d) -> Task<> {
      co_await Delay{e, static_cast<SimDuration>(delay)};
      ++*d;
    }(eng, i % 17, &done));
  }
  eng.run();
  EXPECT_EQ(done, 1000);
}

}  // namespace
}  // namespace e2e::sim
