// Determinism golden tests for the simulation core.
//
// These tests freeze the engine's event ordering: each scenario runs with a
// tracer installed and the exported Chrome trace is hashed. The golden
// hashes below were recorded before the allocation-free event-core overhaul
// (EventFn + 4-ary heap + pooled coroutine frames), so any change to event
// order — and therefore to any trace byte — fails here. Run the suite with
// --gtest_also_run_disabled_tests if you intentionally change event
// semantics and need new goldens; the failure message prints the new hash.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "exp/runner.hpp"
#include "iscsi/initiator.hpp"
#include "iscsi/target.hpp"
#include "iser/session.hpp"
#include "mem/buffer_pool.hpp"
#include "mem/tmpfs.hpp"
#include "tcp/connection.hpp"
#include "testutil.hpp"
#include "trace/tracer.hpp"

namespace e2e {
namespace {

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

struct TraceRun {
  std::uint64_t hash = 0;
  std::uint64_t events = 0;
  std::size_t trace_bytes = 0;
};

/// Fixed iSER scenario: login, a mix of reads and writes across two LUNs,
/// with the resource sampler on. Every byte of the exported trace depends
/// on the engine's dispatch order.
TraceRun run_iser_scenario() {
  test::TinyRig rig;
  trace::Tracer tracer(rig.eng);
  tracer.install();
  tracer.enable_resource_sampler(sim::kMillisecond);

  mem::Tmpfs fs(*rig.b);
  std::vector<std::unique_ptr<scsi::Lun>> luns;
  for (int l = 0; l < 2; ++l) {
    auto& f = fs.create("lun" + std::to_string(l), 8 << 20,
                        numa::MemPolicy::kBind, 0);
    luns.push_back(std::make_unique<scsi::Lun>(l, fs, f));
  }
  iser::IserSession session(*rig.dev_a, *rig.dev_b, *rig.link, *rig.proc_a,
                            *rig.proc_b);
  mem::BufferPool staging(*rig.b, "staging", 4, 1 << 20,
                          numa::MemPolicy::kBind, 0);
  staging.mark_registered();
  std::vector<scsi::Lun*> lun_ptrs;
  for (auto& l : luns) lun_ptrs.push_back(l.get());
  iscsi::Target target(*rig.proc_b, session.target_ep(), lun_ptrs, staging);
  iscsi::Initiator initiator(*rig.proc_a, session.initiator_ep());
  numa::Thread& ith = rig.proc_a->spawn_thread();
  numa::Thread& tth = rig.proc_b->spawn_thread();

  exp::run_task(rig.eng, session.start(ith, tth));
  target.start(2);
  iscsi::LoginParams params;
  EXPECT_TRUE(exp::run_task(rig.eng, initiator.login(ith, params)));
  initiator.start_dispatcher(ith);

  auto buf = test::make_buffer(*rig.a, 4 << 20, 0);
  EXPECT_EQ(exp::run_task(rig.eng, initiator.submit_read(ith, 0, 0, 2048, buf)),
            scsi::Status::kGood);
  EXPECT_EQ(
      exp::run_task(rig.eng, initiator.submit_write(ith, 1, 0, 4096, buf)),
      scsi::Status::kGood);
  EXPECT_EQ(
      exp::run_task(rig.eng, initiator.submit_read(ith, 1, 1024, 8192, buf)),
      scsi::Status::kGood);
  EXPECT_EQ(
      exp::run_task(rig.eng, initiator.submit_write(ith, 0, 512, 1024, buf)),
      scsi::Status::kGood);

  tracer.sample_now();
  std::ostringstream os;
  tracer.write_chrome_trace(os);
  const std::string s = os.str();
  return TraceRun{fnv1a(s), rig.eng.events_processed(), s.size()};
}

/// Fixed TCP scenario: flow-controlled lossy connection, so the trace
/// includes the per-ACK/per-loss cwnd samples and counters whose handles
/// the hot path caches.
TraceRun run_tcp_scenario() {
  test::TinyRig rig;
  trace::Tracer tracer(rig.eng);
  tracer.install();
  tracer.enable_resource_sampler(sim::kMillisecond);

  tcp::ConnectionOptions opts;
  opts.flow_controlled = true;
  opts.max_window_bytes = 1 << 20;
  opts.loss_rate = 1e-6;
  tcp::Connection conn(*rig.a, 0, *rig.b, 0, *rig.link, opts);
  numa::Thread& tx = rig.proc_a->spawn_thread();
  numa::Thread& rx = rig.proc_b->spawn_thread();
  const numa::Placement src = numa::Placement::on(0);
  const numa::Placement dst = numa::Placement::on(0);

  auto sender = [](tcp::Connection& c, numa::Thread& th,
                   numa::Placement buf) -> sim::Task<> {
    for (int i = 0; i < 32; ++i) co_await c.send(th, buf, 256 * 1024);
    c.shutdown(th);
  };
  auto receiver = [](tcp::Connection& c, numa::Thread& th,
                     numa::Placement buf) -> sim::Task<std::uint64_t> {
    std::uint64_t total = 0;
    for (;;) {
      const std::uint64_t n = co_await c.recv(th, buf);
      if (n == 0) co_return total;
      total += n;
    }
  };
  sim::co_spawn(sender(conn, tx, src));
  const std::uint64_t got = exp::run_task(rig.eng, receiver(conn, rx, dst));
  EXPECT_EQ(got, 32u * 256 * 1024);

  tracer.sample_now();
  std::ostringstream os;
  tracer.write_chrome_trace(os);
  const std::string s = os.str();
  return TraceRun{fnv1a(s), rig.eng.events_processed(), s.size()};
}

// Golden values recorded against the pre-overhaul event core (binary
// std::priority_queue of std::function events, malloc'd coroutine frames).
// The overhaul must not change a single trace byte.
constexpr std::uint64_t kIserGoldenHash = 0xb395f731c87f013cull;
constexpr std::uint64_t kIserGoldenEvents = 364;
constexpr std::uint64_t kTcpGoldenHash = 0x2736609f52e1974bull;
constexpr std::uint64_t kTcpGoldenEvents = 266;

TEST(Determinism, IserScenarioMatchesRecordedGolden) {
  const TraceRun r = run_iser_scenario();
  EXPECT_EQ(r.hash, kIserGoldenHash)
      << "trace bytes changed; hash=0x" << std::hex << r.hash << std::dec
      << " events=" << r.events << " size=" << r.trace_bytes;
  EXPECT_EQ(r.events, kIserGoldenEvents);
}

TEST(Determinism, IserScenarioIsRunToRunIdentical) {
  const TraceRun a = run_iser_scenario();
  const TraceRun b = run_iser_scenario();
  EXPECT_EQ(a.hash, b.hash);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.trace_bytes, b.trace_bytes);
}

TEST(Determinism, TcpLossyScenarioMatchesRecordedGolden) {
  const TraceRun r = run_tcp_scenario();
  EXPECT_EQ(r.hash, kTcpGoldenHash)
      << "trace bytes changed; hash=0x" << std::hex << r.hash << std::dec
      << " events=" << r.events << " size=" << r.trace_bytes;
  EXPECT_EQ(r.events, kTcpGoldenEvents);
}

TEST(Determinism, TcpLossyScenarioIsRunToRunIdentical) {
  const TraceRun a = run_tcp_scenario();
  const TraceRun b = run_tcp_scenario();
  EXPECT_EQ(a.hash, b.hash);
  EXPECT_EQ(a.events, b.events);
}

}  // namespace
}  // namespace e2e
