#include "sim/event_fn.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <utility>

namespace e2e::sim {
namespace {

TEST(EventFn, DefaultConstructedIsEmpty) {
  EventFn fn;
  EXPECT_FALSE(static_cast<bool>(fn));
}

TEST(EventFn, InvokesStoredCallable) {
  int calls = 0;
  EventFn fn([&calls] { ++calls; });
  EXPECT_TRUE(static_cast<bool>(fn));
  fn();
  fn();
  EXPECT_EQ(calls, 2);
}

TEST(EventFn, MoveTransfersOwnership) {
  int calls = 0;
  EventFn a([&calls] { ++calls; });
  EventFn b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(calls, 1);
}

TEST(EventFn, MoveAssignDestroysPreviousCallable) {
  auto token = std::make_shared<int>(7);
  std::weak_ptr<int> alive = token;
  EventFn a([token] { (void)*token; });
  token.reset();
  EXPECT_FALSE(alive.expired());  // capture keeps it alive
  int calls = 0;
  a = EventFn([&calls] { ++calls; });
  EXPECT_TRUE(alive.expired());  // old capture destroyed on assignment
  a();
  EXPECT_EQ(calls, 1);
}

TEST(EventFn, DestructorReleasesCapture) {
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> alive = token;
  {
    EventFn fn([token] { (void)*token; });
    token.reset();
    EXPECT_FALSE(alive.expired());
  }
  EXPECT_TRUE(alive.expired());
}

TEST(EventFn, SelfMoveAssignIsSafe) {
  int calls = 0;
  EventFn fn([&calls] { ++calls; });
  EventFn& self = fn;
  fn = std::move(self);
  EXPECT_TRUE(static_cast<bool>(fn));
  fn();
  EXPECT_EQ(calls, 1);
}

TEST(EventFn, HoldsLargestSupportedCapture) {
  // A capture of exactly kInlineBytes must fit; one byte more is a compile
  // error (so that case can't be spelled in a runtime test).
  struct Fat {
    std::uint64_t words[EventFn::kInlineBytes / sizeof(std::uint64_t) - 1];
    std::uint64_t* out;
  };
  std::uint64_t seen = 0;
  Fat fat{};
  fat.words[0] = 41;
  fat.out = &seen;
  auto lambda = [fat]() mutable { *fat.out = ++fat.words[0]; };
  static_assert(sizeof(lambda) == EventFn::kInlineBytes,
                "capture sized to exercise the full inline buffer");
  EventFn fn(std::move(lambda));
  fn();
  EXPECT_EQ(seen, 42u);
}

TEST(EventFn, RelocationPreservesCaptureState) {
  // Move an armed callable through several EventFn shells (as heap growth
  // and slot recycling do) and verify the capture arrives intact.
  auto token = std::make_shared<int>(5);
  std::weak_ptr<int> alive = token;
  int result = 0;
  EventFn a([token, &result] { result = *token + 1; });
  token.reset();
  EventFn b(std::move(a));
  EventFn c;
  c = std::move(b);
  EXPECT_FALSE(alive.expired());
  c();
  EXPECT_EQ(result, 6);
  c = EventFn{};
  EXPECT_TRUE(alive.expired());
}

}  // namespace
}  // namespace e2e::sim
