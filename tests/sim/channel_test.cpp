#include "sim/channel.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/task.hpp"

namespace e2e::sim {
namespace {

Task<> drain(Channel<int>& ch, std::vector<int>* out) {
  for (;;) {
    auto v = co_await ch.recv();
    if (!v) co_return;
    out->push_back(*v);
  }
}

TEST(Channel, DeliversInFifoOrder) {
  Engine eng;
  Channel<int> ch(eng);
  for (int i = 0; i < 5; ++i) ch.send(i);
  std::vector<int> out;
  co_spawn(drain(ch, &out));
  ch.close();
  eng.run();
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Channel, RecvSuspendsUntilSend) {
  Engine eng;
  Channel<int> ch(eng);
  std::vector<int> out;
  co_spawn(drain(ch, &out));
  EXPECT_TRUE(out.empty());
  ch.send(42);
  eng.run();
  EXPECT_EQ(out, (std::vector<int>{42}));
}

TEST(Channel, CloseCompletesPendingRecvWithNullopt) {
  Engine eng;
  Channel<int> ch(eng);
  bool closed = false;
  co_spawn([](Channel<int>& c, bool* cl) -> Task<> {
    auto v = co_await c.recv();
    *cl = !v.has_value();
  }(ch, &closed));
  ch.close();
  eng.run();
  EXPECT_TRUE(closed);
}

TEST(Channel, QueuedItemsDrainAfterClose) {
  Engine eng;
  Channel<int> ch(eng);
  ch.send(1);
  ch.send(2);
  ch.close();
  std::vector<int> out;
  co_spawn(drain(ch, &out));
  eng.run();
  EXPECT_EQ(out, (std::vector<int>{1, 2}));
}

TEST(Channel, SendAfterCloseIsDropped) {
  Engine eng;
  Channel<int> ch(eng);
  ch.close();
  EXPECT_FALSE(ch.send(9));
  EXPECT_TRUE(ch.empty());
}

TEST(Channel, TryRecv) {
  Engine eng;
  Channel<std::string> ch(eng);
  EXPECT_FALSE(ch.try_recv().has_value());
  ch.send("a");
  auto v = ch.try_recv();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, "a");
}

TEST(Channel, MultipleConsumersShareFifo) {
  Engine eng;
  Channel<int> ch(eng);
  std::vector<int> out1, out2;
  co_spawn(drain(ch, &out1));
  co_spawn(drain(ch, &out2));
  for (int i = 0; i < 6; ++i) ch.send(i);
  ch.close();
  eng.run();
  // Both consumers together see every item exactly once, in order of
  // arrival interleaved across them.
  EXPECT_EQ(out1.size() + out2.size(), 6u);
  std::vector<int> merged;
  std::size_t i1 = 0, i2 = 0;
  while (i1 < out1.size() || i2 < out2.size()) {
    if (i2 >= out2.size() || (i1 < out1.size() && out1[i1] < out2[i2]))
      merged.push_back(out1[i1++]);
    else
      merged.push_back(out2[i2++]);
  }
  EXPECT_EQ(merged, (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

TEST(Channel, SizeTracksQueuedOnly) {
  Engine eng;
  Channel<int> ch(eng);
  ch.send(1);
  ch.send(2);
  EXPECT_EQ(ch.size(), 2u);
  (void)ch.try_recv();
  EXPECT_EQ(ch.size(), 1u);
}

Task<> producer(Engine& eng, Channel<int>& ch, int n) {
  for (int i = 0; i < n; ++i) {
    co_await Delay{eng, 5};
    ch.send(i);
  }
  ch.close();
}

TEST(Channel, ProducerConsumerPipeline) {
  Engine eng;
  Channel<int> ch(eng);
  std::vector<int> out;
  co_spawn(drain(ch, &out));
  co_spawn(producer(eng, ch, 100));
  eng.run();
  EXPECT_EQ(out.size(), 100u);
  EXPECT_EQ(eng.now(), 500u);
}

}  // namespace
}  // namespace e2e::sim
