#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace e2e::sim {
namespace {

TEST(Engine, StartsAtTimeZero) {
  Engine eng;
  EXPECT_EQ(eng.now(), 0u);
  EXPECT_TRUE(eng.idle());
  EXPECT_EQ(eng.events_processed(), 0u);
}

TEST(Engine, RunsEventsInTimeOrder) {
  Engine eng;
  std::vector<int> order;
  eng.schedule_at(30, [&] { order.push_back(3); });
  eng.schedule_at(10, [&] { order.push_back(1); });
  eng.schedule_at(20, [&] { order.push_back(2); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(eng.now(), 30u);
}

TEST(Engine, SameTimestampFiresInSchedulingOrder) {
  Engine eng;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    eng.schedule_at(5, [&order, i] { order.push_back(i); });
  eng.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Engine, PastEventsClampToNow) {
  Engine eng;
  eng.schedule_at(100, [] {});
  eng.run();
  ASSERT_EQ(eng.now(), 100u);
  SimTime fired_at = 0;
  eng.schedule_at(50, [&] { fired_at = eng.now(); });  // in the past
  eng.run();
  EXPECT_EQ(fired_at, 100u);
}

TEST(Engine, EventsMayScheduleMoreEvents) {
  Engine eng;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) eng.schedule_after(10, recurse);
  };
  eng.schedule_after(10, recurse);
  eng.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(eng.now(), 50u);
}

TEST(Engine, RunUntilExecutesOnlyDueEventsAndAdvancesClock) {
  Engine eng;
  int fired = 0;
  eng.schedule_at(10, [&] { ++fired; });
  eng.schedule_at(20, [&] { ++fired; });
  eng.schedule_at(30, [&] { ++fired; });
  EXPECT_EQ(eng.run_until(20), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(eng.now(), 20u);
  EXPECT_EQ(eng.next_event_time(), 30u);
}

TEST(Engine, RunUntilAdvancesClockOnEmptyQueue) {
  Engine eng;
  eng.run_until(1000);
  EXPECT_EQ(eng.now(), 1000u);
  EXPECT_EQ(eng.next_event_time(), kTimeInfinity);
}

TEST(Engine, StopHaltsDispatch) {
  Engine eng;
  int fired = 0;
  eng.schedule_at(10, [&] {
    ++fired;
    eng.stop();
  });
  eng.schedule_at(20, [&] { ++fired; });
  eng.run();
  EXPECT_EQ(fired, 1);
  eng.run();  // resumes
  EXPECT_EQ(fired, 2);
}

TEST(Engine, EventsProcessedCounts) {
  Engine eng;
  for (int i = 0; i < 7; ++i) eng.schedule_after(i, [] {});
  eng.run();
  EXPECT_EQ(eng.events_processed(), 7u);
}

TEST(Engine, SaturatingAddCapsAtInfinity) {
  EXPECT_EQ(Engine::saturating_add(kTimeInfinity, 1), kTimeInfinity);
  EXPECT_EQ(Engine::saturating_add(kTimeInfinity - 5, 10), kTimeInfinity);
  EXPECT_EQ(Engine::saturating_add(5, 10), 15u);
}

TEST(Engine, RunForIsRelative) {
  Engine eng;
  eng.run_until(100);
  int fired = 0;
  eng.schedule_after(50, [&] { ++fired; });
  eng.run_for(49);
  EXPECT_EQ(fired, 0);
  eng.run_for(1);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(eng.now(), 150u);
}

TEST(TimeHelpers, Conversions) {
  EXPECT_DOUBLE_EQ(to_seconds(kSecond), 1.0);
  EXPECT_DOUBLE_EQ(to_seconds(500 * kMillisecond), 0.5);
  EXPECT_EQ(from_seconds(2.5), 2'500'000'000ull);
  EXPECT_EQ(from_seconds(-1.0), 0ull);
  using namespace literals;
  EXPECT_EQ(3_us, 3000ull);
  EXPECT_EQ(2_min, 120ull * kSecond);
}

TEST(Engine, RunUntilCountsEventsWhenStopFiresMidRun) {
  Engine eng;
  int fired = 0;
  eng.schedule_at(10, [&] { ++fired; });
  eng.schedule_at(20, [&] {
    ++fired;
    eng.stop();
  });
  eng.schedule_at(30, [&] { ++fired; });
  // The return value is an events_processed() delta, so stopping mid-run
  // still reports both dispatched events.
  EXPECT_EQ(eng.run_until(100), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(eng.now(), 20u);  // clock does not jump to the horizon
  EXPECT_EQ(eng.run_until(100), 1u);
  EXPECT_EQ(eng.now(), 100u);
}

TEST(Engine, RunUntilCountStaysCorrectWhenEventReentersRun) {
  Engine eng;
  int inner = 0;
  eng.schedule_at(10, [&] {
    eng.schedule_at(12, [&] { ++inner; });
    eng.run_until(15);  // nested run dispatches the inner event
  });
  eng.schedule_at(20, [&] {});
  const std::uint64_t n = eng.run_until(30);
  EXPECT_EQ(inner, 1);
  // Outer delta includes the nested dispatch exactly once.
  EXPECT_EQ(n, 3u);
  EXPECT_EQ(eng.events_processed(), 3u);
}

TEST(Engine, PastScheduleDuringDispatchRunsSameInstant) {
  Engine eng;
  std::vector<int> order;
  eng.schedule_at(50, [&] {
    order.push_back(1);
    eng.schedule_at(7, [&] { order.push_back(2); });  // clamped to now()=50
  });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(eng.now(), 50u);
}

TEST(Engine, QueueCapacityIsReusedAcrossChurn) {
  Engine eng;
  eng.reserve(512);
  const std::size_t cap = eng.queue_capacity();
  EXPECT_GE(cap, 512u);
  // Push/pop far more events than the reservation, never holding more than
  // the reserved depth: steady-state churn must not grow the vector.
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 500; ++i) eng.schedule_after(1 + i % 13, [] {});
    eng.run();
  }
  EXPECT_EQ(eng.queue_capacity(), cap);
  EXPECT_EQ(eng.events_processed(), 20u * 500u);
}

TEST(Engine, ManyEventsAtOneInstantKeepSchedulingOrder) {
  // Stresses the 4-ary heap's (t, seq) tie-break with a wide same-time
  // cohort interleaved with earlier and later events.
  Engine eng;
  std::vector<int> order;
  eng.schedule_at(200, [&] { order.push_back(-2); });
  for (int i = 0; i < 100; ++i)
    eng.schedule_at(100, [&order, i] { order.push_back(i); });
  eng.schedule_at(50, [&] { order.push_back(-1); });
  eng.run();
  ASSERT_EQ(order.size(), 102u);
  EXPECT_EQ(order.front(), -1);
  EXPECT_EQ(order.back(), -2);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[static_cast<size_t>(i) + 1], i);
}

TEST(Engine, DeterministicAcrossRuns) {
  auto run_once = [] {
    Engine eng;
    std::vector<std::pair<SimTime, int>> trace;
    for (int i = 0; i < 50; ++i)
      eng.schedule_at((i * 7919) % 100, [&trace, i, &eng] {
        trace.emplace_back(eng.now(), i);
      });
    eng.run();
    return trace;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace e2e::sim
