// sim::Cluster unit tests: window math, deterministic cross-shard merge
// order, the shard->worker pinning contract the thread_local pools rely
// on, and worker-count independence of the executed schedule — including
// through the real RDMA cross-shard delivery paths (kWrite delivery and
// the engine-hopping kRead responder segment).
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "mem/buffer.hpp"
#include "rdma/cm.hpp"
#include "sim/cluster.hpp"
#include "sim/sync.hpp"
#include "tcp/connection.hpp"
#include "testutil.hpp"

namespace e2e {
namespace {

TEST(ClusterTest, WorkerPinningContract) {
  // frame_pool.hpp and msg_pool.hpp depend on shard k running on worker
  // k % effective_workers for the whole run; freeze that mapping.
  sim::Cluster c(2);
  sim::Engine e0, e1, e2;
  EXPECT_EQ(c.add(e0), 0);
  EXPECT_EQ(c.add(e1), 1);
  EXPECT_EQ(c.add(e2), 2);
  EXPECT_EQ(c.worker_of(0), 0);
  EXPECT_EQ(c.worker_of(1), 1);
  EXPECT_EQ(c.worker_of(2), 0);

  // More workers than shards: clamped to the shard count.
  sim::Cluster wide(8);
  sim::Engine a, b;
  wide.add(a);
  wide.add(b);
  EXPECT_EQ(wide.worker_of(0), 0);
  EXPECT_EQ(wide.worker_of(1), 1);
}

TEST(ClusterTest, EngineRanksAndBackPointers) {
  sim::Cluster c(1);
  sim::Engine e0, e1;
  c.add(e0);
  c.add(e1);
  EXPECT_EQ(e0.cluster(), &c);
  EXPECT_EQ(e1.cluster(), &c);
  EXPECT_EQ(e0.rank(), 0);
  EXPECT_EQ(e1.rank(), 1);
  // An engine outside any cluster routes cross_post as a plain schedule.
  sim::Engine lone;
  EXPECT_EQ(lone.cluster(), nullptr);
  bool ran = false;
  lone.cross_post(lone, 5, [&ran] { ran = true; });
  lone.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(lone.now(), 5u);
}

TEST(ClusterTest, EngineAndClusterMayDieInEitherOrder) {
  // Fleet rigs own their engines in containers declared around the
  // Cluster in either order; ~Engine must retire its shard slot so the
  // surviving side never touches a dead peer.
  sim::Cluster c(2);
  {
    sim::Engine doomed;
    c.add(doomed);
    doomed.schedule_at(3, [] {});
  }  // doomed destroyed before the cluster
  sim::Engine survivor;
  c.add(survivor);
  bool ran = false;
  survivor.schedule_at(5, [&ran] { ran = true; });
  c.run();  // skips the retired rank-0 slot
  EXPECT_TRUE(ran);
  EXPECT_EQ(c.events_processed(), 1u);
}

TEST(ClusterTest, RunWindowStopsAtHorizon) {
  sim::Engine eng;
  std::vector<int> ran;
  for (int t = 0; t < 5; ++t)
    eng.schedule_at(static_cast<sim::SimTime>(t * 10), [&ran, t] {
      ran.push_back(t);
    });
  // Horizon is exclusive: events strictly before 30 run.
  EXPECT_EQ(eng.run_window(30), 3u);
  EXPECT_EQ(ran, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(eng.run_window(sim::kTimeInfinity), 2u);
  EXPECT_EQ(ran, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ClusterTest, CrossPostsMergeInTimeSourceSeqOrder) {
  // Three shards; shards 1 and 2 each cross-post two events to shard 0 at
  // identical timestamps. The delivered order must be (t, src_rank, seq)
  // regardless of post call order — shard 2 posting "first" cannot win a
  // tie against shard 1.
  sim::Cluster c(1);
  sim::Engine e0, e1, e2;
  c.add(e0);
  c.add(e1);
  c.add(e2);
  c.note_lookahead(10);

  std::vector<std::string> order;
  auto tag = [&order](std::string s) {
    return [&order, s = std::move(s)] { order.push_back(s); };
  };
  // Shard 1 and 2 send from their t=0 events; arrival t=10 >= horizon.
  e2.schedule_at(0, [&] {
    e2.cross_post(e0, 10, tag("src2-a"));
    e2.cross_post(e0, 10, tag("src2-b"));
  });
  e1.schedule_at(0, [&] {
    e1.cross_post(e0, 10, tag("src1-a"));
    e1.cross_post(e0, 12, tag("src1-late"));
  });
  c.run();
  EXPECT_EQ(order, (std::vector<std::string>{"src1-a", "src2-a", "src2-b",
                                             "src1-late"}));
  EXPECT_EQ(c.cross_posts(), 4u);
  EXPECT_GE(c.windows(), 1u);
}

/// Ping-pong over two shards via raw cross_post: each hop reschedules the
/// other side one lookahead later. Exercises many windows.
void ping(sim::Engine& self, sim::Engine& peer, int hops_left,
          std::vector<sim::SimTime>* times) {
  times->push_back(self.now());
  if (hops_left == 0) return;
  self.cross_post(peer, self.now() + 7,
                  [&peer, &self, hops_left, times] {
                    ping(peer, self, hops_left - 1, times);
                  });
}

TEST(ClusterTest, WorkerCountDoesNotChangeSchedule) {
  std::vector<std::vector<sim::SimTime>> runs;
  for (const int workers : {1, 2, 3}) {
    sim::Cluster c(workers);
    sim::Engine e0, e1;
    c.add(e0);
    c.add(e1);
    c.note_lookahead(7);
    std::vector<sim::SimTime> times;
    e0.schedule_at(0, [&] { ping(e0, e1, 40, &times); });
    c.run();
    runs.push_back(times);
    EXPECT_EQ(times.size(), 41u);
  }
  EXPECT_EQ(runs[0], runs[1]);
  EXPECT_EQ(runs[0], runs[2]);
}

TEST(ClusterTest, RunSequentialInterleavesShardsInGlobalOrder) {
  sim::Cluster c(1);
  sim::Engine e0, e1;
  c.add(e0);
  c.add(e1);
  std::vector<int> order;
  e0.schedule_at(5, [&] { order.push_back(0); });
  e1.schedule_at(3, [&] { order.push_back(1); });
  e0.schedule_at(9, [&] { order.push_back(2); });
  e1.schedule_at(9, [&] { order.push_back(3); });  // tie: rank 0 first
  c.run_sequential();
  EXPECT_EQ(order, (std::vector<int>{1, 0, 2, 3}));
}

/// Full RDMA rig spanning two shards: a ConnectedPair whose endpoints live
/// on different engines, joined by a two-engine RoCE link.
struct CrossShardRig {
  sim::Cluster cluster;
  sim::Engine ea, eb;
  std::unique_ptr<numa::Host> ha, hb;
  std::unique_ptr<rdma::Device> da, db;
  std::unique_ptr<net::Link> link;
  std::unique_ptr<numa::Process> pa, pb;
  std::unique_ptr<rdma::ConnectedPair> cp;
  numa::Thread* ta = nullptr;
  numa::Thread* tb = nullptr;

  explicit CrossShardRig(int workers) : cluster(workers) {
    cluster.add(ea);
    cluster.add(eb);
    ha = std::make_unique<numa::Host>(ea, test::tiny_host("a"));
    hb = std::make_unique<numa::Host>(eb, test::tiny_host("b"));
    da = std::make_unique<rdma::Device>(*ha, ha->profile().nics[0]);
    db = std::make_unique<rdma::Device>(*hb, hb->profile().nics[0]);
    link = net::make_roce_lan(ea, eb, "seam");
    link->bind_endpoints(ha.get(), hb.get());
    cp = std::make_unique<rdma::ConnectedPair>(*da, *db, *link);
    pa = std::make_unique<numa::Process>(*ha, "a", numa::NumaBinding::bound(0));
    pb = std::make_unique<numa::Process>(*hb, "b", numa::NumaBinding::bound(0));
    ta = &pa->spawn_thread(da->node());
    tb = &pb->spawn_thread(db->node());
    bool up = false;
    sim::co_spawn([](CrossShardRig* r, bool* done) -> sim::Task<> {
      co_await r->cp->establish(*r->ta, *r->tb);
      *done = true;
    }(this, &up));
    cluster.run_sequential();
    EXPECT_TRUE(up);
    // A cross-shard link must have declared its latency as lookahead.
    EXPECT_LT(cluster.lookahead(), sim::kTimeInfinity);
  }
};

sim::Task<> write_n(CrossShardRig* r, mem::Buffer* local, mem::Buffer* remote,
                    int n, int* completed) {
  for (int i = 0; i < n; ++i) {
    rdma::SendWr wr;
    wr.wr_id = static_cast<std::uint64_t>(i);
    wr.op = rdma::Opcode::kWrite;
    wr.local = local;
    wr.remote = rdma::RemoteKey{remote};
    wr.bytes = 64 * 1024;
    co_await r->cp->a().post_send(*r->ta, wr);
    const auto wc = co_await r->cp->a().send_cq().wait(*r->ta);
    EXPECT_TRUE(wc.success);
    ++*completed;
  }
}

TEST(ClusterTest, CrossShardWriteDeliversIdenticallyAtAnyWorkerCount) {
  std::vector<std::pair<sim::SimTime, sim::SimTime>> finals;
  for (const int workers : {1, 2}) {
    CrossShardRig r(workers);
    mem::Buffer local, remote;
    local.placement = r.pa->alloc(64 * 1024, r.da->node());
    remote.placement = r.pb->alloc(64 * 1024, r.db->node());
    local.registered = remote.registered = true;
    int completed = 0;
    sim::co_spawn(write_n(&r, &local, &remote, 8, &completed));
    r.cluster.run();
    EXPECT_EQ(completed, 8);
    EXPECT_GT(r.cluster.cross_posts(), 0u);
    finals.emplace_back(r.ea.now(), r.eb.now());
  }
  EXPECT_EQ(finals[0], finals[1]);
}

sim::Task<> read_one(CrossShardRig* r, mem::Buffer* local, mem::Buffer* remote,
                     bool* ok) {
  rdma::SendWr wr;
  wr.op = rdma::Opcode::kRead;
  wr.local = local;
  wr.remote = rdma::RemoteKey{remote};
  wr.bytes = 128 * 1024;
  co_await r->cp->a().post_send(*r->ta, wr);
  const auto wc = co_await r->cp->a().send_cq().wait(*r->ta);
  EXPECT_TRUE(wc.success);
  *ok = true;
}

TEST(ClusterTest, CrossShardReadHopsToResponderAndBack) {
  // kRead's responder-side segment (DMA fetch + wire transmit) must run on
  // the remote shard; the sampled content tag must still land in the local
  // buffer exactly as in the single-engine path.
  std::vector<sim::SimTime> finals;
  for (const int workers : {1, 2}) {
    CrossShardRig r(workers);
    mem::Buffer local, remote;
    local.placement = r.pa->alloc(128 * 1024, r.da->node());
    remote.placement = r.pb->alloc(128 * 1024, r.db->node());
    local.registered = remote.registered = true;
    remote.content_tag = 0xfeedbeefull;
    bool ok = false;
    sim::co_spawn(read_one(&r, &local, &remote, &ok));
    r.cluster.run();
    EXPECT_TRUE(ok);
    EXPECT_EQ(local.content_tag, 0xfeedbeefull);
    finals.push_back(r.ea.now());
  }
  EXPECT_EQ(finals[0], finals[1]);
}

TEST(ClusterTest, TcpRefusesCrossShardEndpoints) {
  // tcp::Connection is engine-local by design; a connection whose hosts
  // live on different shards must fail loudly at construction, not
  // corrupt two heaps at runtime.
  sim::Cluster c(1);
  sim::Engine ea, eb;
  c.add(ea);
  c.add(eb);
  numa::Host ha(ea, test::tiny_host("a"));
  numa::Host hb(eb, test::tiny_host("b"));
  auto link = net::make_roce_lan(ea, eb, "seam");
  link->bind_endpoints(&ha, &hb);
  EXPECT_THROW(tcp::Connection(ha, 0, hb, 0, *link), std::logic_error);
}

}  // namespace
}  // namespace e2e
