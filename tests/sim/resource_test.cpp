#include "sim/resource.hpp"

#include <gtest/gtest.h>

#include "sim/engine.hpp"
#include "sim/rng.hpp"
#include "sim/task.hpp"

namespace e2e::sim {
namespace {

Task<> acquire_one(Resource& r, double units, SimTime* done,
                   Engine& eng) {
  co_await r.acquire(units);
  *done = eng.now();
}

TEST(Resource, ServiceTimeMatchesRate) {
  Engine eng;
  Resource r(eng, 1e9, "r");  // 1 unit per ns
  EXPECT_EQ(r.service_time(1000), 1000u);
  EXPECT_EQ(r.service_time(0), 0u);
  // Sub-ns work still takes at least 1 ns.
  EXPECT_EQ(r.service_time(0.25), 1u);
}

TEST(Resource, SingleAcquireCompletesAfterServiceTime) {
  Engine eng;
  Resource r(eng, 1e9, "r");
  SimTime done = 0;
  co_spawn(acquire_one(r, 500, &done, eng));
  eng.run();
  EXPECT_EQ(done, 500u);
}

TEST(Resource, FifoQueueingSerializes) {
  Engine eng;
  Resource r(eng, 1e9, "r");
  SimTime d1 = 0, d2 = 0, d3 = 0;
  co_spawn(acquire_one(r, 100, &d1, eng));
  co_spawn(acquire_one(r, 200, &d2, eng));
  co_spawn(acquire_one(r, 300, &d3, eng));
  eng.run();
  EXPECT_EQ(d1, 100u);
  EXPECT_EQ(d2, 300u);
  EXPECT_EQ(d3, 600u);
}

TEST(Resource, ChargeBooksWithoutSuspending) {
  Engine eng;
  Resource r(eng, 1e9, "r");
  EXPECT_EQ(r.charge(100), 100u);
  EXPECT_EQ(r.charge(100), 200u);
  EXPECT_EQ(r.busy_until(), 200u);
  EXPECT_EQ(r.backlog_delay(), 200u);
}

TEST(Resource, BacklogDrainsWithTime) {
  Engine eng;
  Resource r(eng, 1e9, "r");
  r.charge(1000);
  eng.run_until(400);
  EXPECT_EQ(r.backlog_delay(), 600u);
  eng.run_until(2000);
  EXPECT_EQ(r.backlog_delay(), 0u);
}

TEST(Resource, IdleGapsDoNotAccumulateService) {
  Engine eng;
  Resource r(eng, 1e9, "r");
  r.charge(100);
  eng.run_until(1000);  // idle 900ns
  // New work starts now, not at busy_until in the past.
  EXPECT_EQ(r.charge(100), 1100u);
}

TEST(Resource, UtilizationAndUnitsServed) {
  Engine eng;
  Resource r(eng, 1e9, "r");
  r.charge(300);
  eng.run_until(1000);
  EXPECT_DOUBLE_EQ(r.utilization(), 0.3);
  EXPECT_DOUBLE_EQ(r.units_served(), 300.0);
  EXPECT_EQ(r.busy_time(), 300u);
}

TEST(Resource, SetRateAffectsNewWork) {
  Engine eng;
  Resource r(eng, 1e9, "r");
  r.set_rate(2e9);
  EXPECT_EQ(r.service_time(1000), 500u);
}

TEST(Resource, RejectsNonPositiveRate) {
  Engine eng;
  EXPECT_THROW(Resource(eng, 0.0, "bad"), std::invalid_argument);
  Resource r(eng, 1.0, "r");
  EXPECT_THROW(r.set_rate(-1.0), std::invalid_argument);
}

TEST(Resource, ZeroUnitsAcquireIsImmediate) {
  Engine eng;
  Resource r(eng, 1e9, "r");
  r.charge(1e6);  // big backlog
  SimTime done = kTimeInfinity;
  co_spawn(acquire_one(r, 0, &done, eng));
  EXPECT_EQ(done, 0u);  // did not queue
}

TEST(Resource, SetRateReplansBacklogAtNewRate) {
  Engine eng;
  Resource r(eng, 1e9, "r");  // 1 unit/ns
  r.charge(1000);             // backlog drains at t=1000 under the old rate
  EXPECT_EQ(r.busy_until(), 1000u);
  r.set_rate(2e9);  // the queued 1000 units now take 500 ns
  EXPECT_EQ(r.busy_until(), 500u);
  // Halving the rate mid-drain stretches only the remaining backlog.
  eng.run_until(100);
  r.set_rate(1e9);
  EXPECT_EQ(r.busy_until(), 100u + 800u);
  // busy_time tracks the re-planned schedule, so utilization stays <= 1.
  eng.run_until(2000);
  EXPECT_EQ(r.busy_time(), 900u);
  EXPECT_LE(r.utilization(), 1.0);
}

TEST(Resource, SetRateUnchangedBacklogKeepsPlan) {
  Engine eng;
  Resource r(eng, 1e9, "r");
  r.charge(1000);
  r.set_rate(1e9);  // same rate: nothing to re-plan
  EXPECT_EQ(r.busy_until(), 1000u);
}

TEST(Resource, AggregateThroughputEqualsRateUnderLoad) {
  Engine eng;
  Resource r(eng, 5e8, "r");  // 0.5 units/ns
  Rng rng(7);
  double total = 0;
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(10, 1000);
    total += u;
    r.charge(u);
  }
  const SimTime finish = r.busy_until();
  EXPECT_NEAR(static_cast<double>(finish), total / 0.5, total * 0.01);
}

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123), c(124);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(a.uniform_u64(0, 1000), b.uniform_u64(0, 1000));
  }
  bool differs = false;
  Rng a2(123);
  for (int i = 0; i < 10; ++i)
    differs |= a2.uniform_u64(0, 1000000) != c.uniform_u64(0, 1000000);
  EXPECT_TRUE(differs);
}

TEST(Rng, RangesRespected) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniform_u64(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
    const double d = r.uniform(1.5, 2.5);
    EXPECT_GE(d, 1.5);
    EXPECT_LT(d, 2.5);
    EXPECT_LT(r.index(7), 7u);
  }
}

TEST(Rng, IndexOnEmptyRangeIsGuarded) {
  Rng r(9);
#ifdef NDEBUG
  // Release builds clamp instead of computing uniform_u64(0, ~0ull).
  EXPECT_EQ(r.index(0), 0u);
#else
  EXPECT_DEATH((void)r.index(0), "empty range");
#endif
}

// --- Golden values: the cross-platform determinism contract ---
// Every derived draw is explicit arithmetic over the standard-specified
// mt19937_64 stream (no std::*_distribution adaptors, whose mappings are
// implementation-defined and differed between libstdc++ and libc++). These
// exact sequences must reproduce on every toolchain; a failure here means
// seeded schedules — fault plans, jitter, workloads — silently diverged.

TEST(Rng, GoldenBoundedIntegers) {
  Rng r(123);
  const std::uint64_t want[] = {785, 446, 402, 483, 340, 218};
  for (const std::uint64_t w : want) EXPECT_EQ(r.uniform_u64(0, 1000), w);
}

TEST(Rng, GoldenCanonicalDoubles) {
  Rng r(123);
  const double want[] = {0.31320017867847072, 0.55597911939485845,
                         0.93828510817776878, 0.73632211292230365};
  for (const double w : want) EXPECT_EQ(r.uniform(0.0, 1.0), w);
}

TEST(Rng, GoldenExponential) {
  Rng r(42);
  const double want[] = {2.8142641968242876, 2.0379285760344552,
                         2.7898243823374731, 0.292996332096431};
  for (const double w : want) EXPECT_DOUBLE_EQ(r.exponential(2.0), w);
}

TEST(Rng, GoldenBernoulli) {
  Rng r(7);
  const bool want[] = {false, false, true, false, true, true,
                       false, false, true, false, false, false};
  for (const bool w : want) EXPECT_EQ(r.chance(0.3), w);
}

TEST(Rng, GoldenIndex) {
  Rng r(9);
  const std::size_t want[] = {3, 6, 7, 9, 3, 0, 3, 9};
  for (const std::size_t w : want) EXPECT_EQ(r.index(10), w);
}

TEST(Rng, FullSpanAndDegenerateRanges) {
  Rng r(1);
  // Full 2^64 span passes the raw draw through (golden), and a one-value
  // range returns that value without consuming extra stream entropy.
  EXPECT_EQ(r.uniform_u64(0, ~0ull), 2469588189546311528ull);
  EXPECT_EQ(r.uniform_u64(5, 5), 5u);
}

TEST(Rng, BernoulliConsumesOneDrawRegardlessOfP) {
  // Stream-alignment contract: chance() must consume exactly one draw even
  // for degenerate probabilities, so downstream draw sequences do not
  // depend on the p values a plan happened to use.
  Rng a(55), b(55);
  (void)a.chance(0.0);
  (void)a.chance(1.5);
  (void)a.chance(-2.0);
  (void)b.next_u64();
  (void)b.next_u64();
  (void)b.next_u64();
  EXPECT_EQ(a.uniform_u64(0, 1 << 20), b.uniform_u64(0, 1 << 20));
}

}  // namespace
}  // namespace e2e::sim
