#include "sim/sync.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hpp"
#include "sim/task.hpp"

namespace e2e::sim {
namespace {

Task<> wait_delay(Engine& eng, SimDuration d, SimTime* fired) {
  co_await Delay{eng, d};
  *fired = eng.now();
}

TEST(Delay, SuspendsForExactDuration) {
  Engine eng;
  SimTime fired = 0;
  co_spawn(wait_delay(eng, 12345, &fired));
  eng.run();
  EXPECT_EQ(fired, 12345u);
}

TEST(Delay, ZeroDurationCompletesImmediately) {
  Engine eng;
  SimTime fired = kTimeInfinity;
  co_spawn(wait_delay(eng, 0, &fired));
  // No engine run needed: zero delay is await_ready.
  EXPECT_EQ(fired, 0u);
}

Task<> wait_until(Engine& eng, SimTime t, SimTime* fired) {
  co_await until(eng, t);
  *fired = eng.now();
}

TEST(Until, AbsoluteDeadline) {
  Engine eng;
  eng.run_until(100);
  SimTime fired = 0;
  co_spawn(wait_until(eng, 250, &fired));
  eng.run();
  EXPECT_EQ(fired, 250u);
}

TEST(Until, PastDeadlineIsImmediate) {
  Engine eng;
  eng.run_until(100);
  SimTime fired = kTimeInfinity;
  co_spawn(wait_until(eng, 50, &fired));
  EXPECT_EQ(fired, 100u);
}

Task<> wait_event(ManualEvent& ev, int* count) {
  co_await ev.wait();
  ++*count;
}

TEST(ManualEvent, WakesAllWaiters) {
  Engine eng;
  ManualEvent ev(eng);
  int count = 0;
  for (int i = 0; i < 5; ++i) co_spawn(wait_event(ev, &count));
  EXPECT_EQ(count, 0);
  ev.set();
  eng.run();
  EXPECT_EQ(count, 5);
}

TEST(ManualEvent, SetBeforeWaitIsImmediate) {
  Engine eng;
  ManualEvent ev(eng);
  ev.set();
  int count = 0;
  co_spawn(wait_event(ev, &count));
  EXPECT_EQ(count, 1);
}

TEST(ManualEvent, ResetRearms) {
  Engine eng;
  ManualEvent ev(eng);
  ev.set();
  ev.reset();
  int count = 0;
  co_spawn(wait_event(ev, &count));
  eng.run();
  EXPECT_EQ(count, 0);
  ev.set();
  eng.run();
  EXPECT_EQ(count, 1);
}

Task<> take_sem(Semaphore& sem, std::vector<int>* order, int id) {
  co_await sem.acquire();
  order->push_back(id);
}

TEST(Semaphore, InitialPermitsConsumedSynchronously) {
  Engine eng;
  Semaphore sem(eng, 2);
  std::vector<int> order;
  co_spawn(take_sem(sem, &order, 1));
  co_spawn(take_sem(sem, &order, 2));
  co_spawn(take_sem(sem, &order, 3));
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(sem.waiting(), 1u);
  sem.release();
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Semaphore, FifoWakeOrder) {
  Engine eng;
  Semaphore sem(eng, 0);
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) co_spawn(take_sem(sem, &order, i));
  sem.release(4);
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Semaphore, TryAcquireRespectsWaiters) {
  Engine eng;
  Semaphore sem(eng, 1);
  EXPECT_TRUE(sem.try_acquire());
  EXPECT_FALSE(sem.try_acquire());
  std::vector<int> order;
  co_spawn(take_sem(sem, &order, 1));
  sem.release();
  // A queued waiter has priority over try_acquire.
  EXPECT_FALSE(sem.try_acquire());
  eng.run();
  EXPECT_EQ(order.size(), 1u);
}

TEST(Semaphore, AvailableTracksBalance) {
  Engine eng;
  Semaphore sem(eng, 3);
  EXPECT_EQ(sem.available(), 3);
  (void)sem.try_acquire();
  EXPECT_EQ(sem.available(), 2);
  sem.release(5);
  EXPECT_EQ(sem.available(), 7);
}

Task<> wg_wait(WaitGroup& wg, bool* done) {
  co_await wg.wait();
  *done = true;
}

TEST(WaitGroup, WaitsForAllDones) {
  Engine eng;
  WaitGroup wg(eng);
  wg.add(3);
  bool done = false;
  co_spawn(wg_wait(wg, &done));
  wg.done();
  wg.done();
  eng.run();
  EXPECT_FALSE(done);
  wg.done();
  eng.run();
  EXPECT_TRUE(done);
}

TEST(WaitGroup, ZeroPendingIsImmediate) {
  Engine eng;
  WaitGroup wg(eng);
  bool done = false;
  co_spawn(wg_wait(wg, &done));
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace e2e::sim
