// Golden equivalence suite for --fast-forward (rftp::FastForward).
//
// The fast-forward contract is exactness on final metrics: a collapsed run
// must end with bit-identical transfer results, byte ledgers, XOR content
// digest, credit/claim counters, and exit-determining flags to the
// event-exact run — not merely close. Each case here runs the same
// transfer twice on fresh rigs (event-exact, then --fast-forward) across
// multiple sizes and fault seeds, clean and under scripted mid-run faults,
// with the cross-layer auditor installed on both runs, and compares every
// observable end-state field. Clean bulk cases additionally assert the
// detector actually engaged (spans > 0) so this suite cannot rot into
// vacuously comparing two event-exact runs.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "check/audit.hpp"
#include "exp/runner.hpp"
#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "rftp/rftp.hpp"
#include "testutil.hpp"

namespace e2e::rftp {
namespace {

/// Every end-of-run observable the equivalence contract covers.
struct Outcome {
  std::uint64_t bytes = 0;
  std::uint64_t blocks = 0;
  double elapsed_s = 0.0;
  double goodput_gbps = 0.0;
  bool complete = false;
  bool integrity_ok = false;
  std::uint64_t crashes = 0;
  std::uint64_t resumes = 0;
  std::uint64_t digest = 0;
  std::uint64_t delivered = 0;
  std::uint64_t control_msgs = 0;
  std::uint64_t stolen_claims = 0;
  std::uint64_t local_claims = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t grant_retransmissions = 0;
  std::uint64_t failovers = 0;
  std::uint64_t checksum_failures = 0;
  std::uint64_t duplicate_blocks = 0;
  std::uint64_t host_crashes = 0;
  std::uint64_t checkpoints = 0;
  std::uint64_t rolled_back_blocks = 0;
  bool audit_ok = false;
  // Engagement accounting: excluded from operator== (the one legitimate
  // difference between the two runs), asserted separately.
  std::uint64_t ff_spans = 0;
  std::uint64_t ff_blocks = 0;

  bool operator==(const Outcome& o) const {
    return bytes == o.bytes && blocks == o.blocks &&
           elapsed_s == o.elapsed_s && goodput_gbps == o.goodput_gbps &&
           complete == o.complete && integrity_ok == o.integrity_ok &&
           crashes == o.crashes && resumes == o.resumes &&
           digest == o.digest && delivered == o.delivered &&
           control_msgs == o.control_msgs &&
           stolen_claims == o.stolen_claims &&
           local_claims == o.local_claims &&
           retransmissions == o.retransmissions &&
           grant_retransmissions == o.grant_retransmissions &&
           failovers == o.failovers &&
           checksum_failures == o.checksum_failures &&
           duplicate_blocks == o.duplicate_blocks &&
           host_crashes == o.host_crashes &&
           checkpoints == o.checkpoints &&
           rolled_back_blocks == o.rolled_back_blocks &&
           audit_ok == o.audit_ok;
  }
};

std::ostream& operator<<(std::ostream& os, const Outcome& o) {
  return os << "bytes=" << o.bytes << " blocks=" << o.blocks
            << " elapsed=" << o.elapsed_s << " goodput=" << o.goodput_gbps
            << " complete=" << o.complete << " integrity=" << o.integrity_ok
            << " crashes=" << o.crashes << " resumes=" << o.resumes
            << " digest=" << o.digest << " delivered=" << o.delivered
            << " ctl=" << o.control_msgs << " stolen=" << o.stolen_claims
            << " local=" << o.local_claims
            << " retrans=" << o.retransmissions
            << " grant_retrans=" << o.grant_retransmissions
            << " failovers=" << o.failovers
            << " cksum_fail=" << o.checksum_failures
            << " dups=" << o.duplicate_blocks
            << " host_crashes=" << o.host_crashes
            << " ckpts=" << o.checkpoints
            << " rolled_back=" << o.rolled_back_blocks
            << " audit_ok=" << o.audit_ok << " ff_spans=" << o.ff_spans
            << " ff_blocks=" << o.ff_blocks;
}

struct Case {
  std::uint64_t total_bytes = 0;
  std::string plan_spec;       // scripted plan, "" = none
  std::uint64_t fault_seed = 0;  // != 0: seeded random plan instead
};

std::optional<fault::FaultPlan> make_plan(const Case& c, int streams) {
  if (!c.plan_spec.empty())
    return fault::FaultPlan::parse(c.plan_spec);
  if (c.fault_seed != 0) {
    fault::FaultPlan::RandomParams p;
    p.horizon = 30 * sim::kMillisecond;
    p.links = 1;
    p.qps = streams;
    p.loss_bursts = 3;
    p.max_burst = 4;
    p.max_extra_latency = sim::kMillisecond;
    p.holes = 1;
    p.max_hole = 2 * sim::kMillisecond;
    p.qp_kills = 1;
    return fault::FaultPlan::random(c.fault_seed, p);
  }
  return std::nullopt;
}

Outcome run_once(const Case& c, bool fast_forward) {
  test::TinyRig rig;
  check::Auditor aud(rig.eng);

  RftpConfig cfg;
  cfg.streams = 2;
  cfg.credits_per_stream = 8;
  cfg.block_bytes = 256 * 1024;
  auto plan = make_plan(c, cfg.streams);
  cfg.fast_forward = fast_forward;
  if (fast_forward) {
    const sim::SimDuration slack =
        20 * rig.link->rtt() + 100 * sim::kMillisecond;
    cfg.ff_quiet_after = plan ? plan->quiet_after(slack) : 0;
  }
  RftpSession sess({rig.proc_a.get(), {rig.dev_a.get()}},
                   {rig.proc_b.get(), {rig.dev_b.get()}}, {rig.link.get()},
                   cfg);
  std::unique_ptr<fault::FaultInjector> inj;
  if (plan) {
    inj = std::make_unique<fault::FaultInjector>(rig.eng, std::move(*plan));
    inj->attach(*rig.link);
    inj->set_qp_kill_handler(
        [&](int qp) { sess.kill_stream(qp % cfg.streams); });
    inj->set_crash_handler([&](int host, sim::SimDuration down) {
      sess.crash_host(host, down);
    });
    inj->arm();
  }
  MemorySource src(c.total_bytes, numa::Placement::on(0));
  MemorySink dst;
  const auto r = exp::run_task(rig.eng, sess.run(src, dst, c.total_bytes));

  Outcome o;
  o.bytes = r.bytes;
  o.blocks = r.blocks;
  o.elapsed_s = r.elapsed_s;
  o.goodput_gbps = r.goodput_gbps;
  o.complete = r.complete;
  o.integrity_ok = r.integrity_ok;
  o.crashes = r.crashes;
  o.resumes = r.resumes;
  o.ff_spans = r.ff_spans;
  o.ff_blocks = r.ff_blocks;
  o.digest = sess.sink_digest();
  o.delivered = sess.blocks_delivered();
  o.control_msgs = sess.control_messages();
  o.stolen_claims = sess.stolen_claims;
  o.local_claims = sess.local_claims;
  o.retransmissions = sess.retransmissions;
  o.grant_retransmissions = sess.grant_retransmissions;
  o.failovers = sess.failovers;
  o.checksum_failures = sess.checksum_failures;
  o.duplicate_blocks = sess.duplicate_blocks;
  o.host_crashes = sess.host_crashes;
  o.checkpoints = sess.checkpoints;
  o.rolled_back_blocks = sess.rolled_back_blocks;
  aud.finalize();
  o.audit_ok = aud.ok();
  if (!o.audit_ok) {
    std::ostringstream os;
    aud.report(os);
    ADD_FAILURE() << "auditor violations (fast_forward=" << fast_forward
                  << "):\n"
                  << os.str();
  }
  return o;
}

void expect_equivalent(const Case& c, bool require_engagement) {
  SCOPED_TRACE(::testing::Message()
               << "total=" << c.total_bytes << " plan='" << c.plan_spec
               << "' seed=" << c.fault_seed);
  const Outcome exact = run_once(c, false);
  const Outcome ff = run_once(c, true);
  EXPECT_TRUE(exact == ff) << "exact: " << exact << "\n   ff: " << ff;
  EXPECT_TRUE(exact.audit_ok);
  EXPECT_TRUE(ff.audit_ok);
  EXPECT_EQ(exact.ff_spans, 0u);
  if (require_engagement) {
    EXPECT_GT(ff.ff_spans, 0u);
    EXPECT_GT(ff.ff_blocks, 0u);
  }
}

// Block counts chosen to be deep into bulk territory on the tiny rig:
// 256 KiB blocks -> 512 / 768 / 1792 blocks per run. (A 256-block run is
// honestly too short to engage: detector warmup plus the queue safety
// margin covers most of the transfer, and the detector correctly stays
// event-exact rather than collapse a span it cannot prove.)
constexpr std::uint64_t kSmall = 128ull << 20;
constexpr std::uint64_t kMedium = 192ull << 20;
constexpr std::uint64_t kLarge = 448ull << 20;

TEST(FastForwardGolden, CleanBulkEngagesAndMatchesAcrossSizes) {
  for (const std::uint64_t total : {kSmall, kMedium, kLarge})
    expect_equivalent({total, "", 0}, /*require_engagement=*/true);
}

TEST(FastForwardGolden, PartialFinalBlockMatches) {
  // An odd tail byte count: the last block is short, which the collapse
  // replay must refuse to fold (it truncates to completed periods).
  expect_equivalent({kSmall + 12345, "", 0}, /*require_engagement=*/true);
}

TEST(FastForwardGolden, ScriptedMidRunFaultsMatch) {
  // Loss burst + a qp kill early in the run: the detector must hold off
  // until the plan's quiet horizon, absorb the failover event-exactly,
  // then still collapse the remaining bulk.
  const std::string spec = "loss@5ms:n=3;qpkill@8ms:qp=1";
  for (const std::uint64_t total : {kMedium, kLarge})
    expect_equivalent({total, spec, 0}, /*require_engagement=*/false);
}

TEST(FastForwardGolden, ScriptedCrashResumeMatches) {
  // Receiver crash-stop with a scripted restart mid-bulk: rollback and
  // resume negotiation are perturbations the detector must ride out
  // event-exactly; final ledgers still must match bit-for-bit.
  const std::string spec = "crash@6ms:host=1,down=2ms";
  expect_equivalent({kMedium, spec, 0}, /*require_engagement=*/false);
}

TEST(FastForwardGolden, SeededChaosMatchesAcrossSeeds) {
  for (const std::uint64_t seed : {11ull, 22ull, 33ull, 44ull})
    expect_equivalent({kMedium, "", seed}, /*require_engagement=*/false);
}

TEST(FastForwardGolden, EngagedRunSkipsMostOfTheRun) {
  // The perf contract behind the golden suite: on a clean bulk run the
  // collapsed spans must cover the overwhelming majority of blocks.
  const Outcome ff = run_once({kLarge, "", 0}, true);
  EXPECT_GT(ff.ff_blocks, (ff.blocks * 8) / 10);
}

}  // namespace
}  // namespace e2e::rftp
