// Crash-stop fault domains: host crash/restart mid-transfer, the durable
// acked-block ledger, resume-offset negotiation, rollback of drained-but-
// unledgered blocks, and the watchdog's terminal degradation path. Every
// run rides under the full invariant auditor — the cross-epoch conservation
// rules (no double-counted goodput, exactly-once delivery across resume)
// are the point of these tests.
#include "rftp/rftp.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "check/audit.hpp"
#include "exp/runner.hpp"
#include "testutil.hpp"

namespace e2e::rftp {
namespace {

using e2e::test::TinyRig;

std::string audit_report(const check::Auditor& au) {
  std::ostringstream os;
  au.report(os);
  return os.str();
}

struct RftpCrashTest : ::testing::Test {
  TinyRig rig;
  std::unique_ptr<check::Auditor> audit;

  void SetUp() override {
    audit = std::make_unique<check::Auditor>(rig.eng);
  }

  std::unique_ptr<RftpSession> make_session(RftpConfig cfg) {
    EndpointConfig s{rig.proc_a.get(), {rig.dev_a.get()}};
    EndpointConfig r{rig.proc_b.get(), {rig.dev_b.get()}};
    return std::make_unique<RftpSession>(
        s, r, std::vector<net::Link*>{rig.link.get()}, cfg);
  }

  void expect_audit_ok() {
    audit->finalize();
    EXPECT_TRUE(audit->ok()) << audit_report(*audit);
  }
};

TEST_F(RftpCrashTest, SenderCrashRestartsAndCompletesExactly) {
  RftpConfig cfg;
  cfg.streams = 2;
  cfg.block_bytes = 1 << 20;
  auto sess = make_session(cfg);
  const std::uint64_t total = 64ull << 20;
  rig.eng.schedule_after(5 * sim::kMillisecond, [&] {
    sess->crash_host(0, 10 * sim::kMillisecond);
  });
  ZeroSource src(total);
  NullSink dst;
  const auto r = exp::run_task(rig.eng, sess->run(src, dst, total));
  EXPECT_TRUE(r.complete);
  EXPECT_TRUE(r.integrity_ok);
  EXPECT_EQ(r.bytes, total);
  EXPECT_EQ(r.crashes, 1u);
  EXPECT_EQ(r.resumes, 1u);
  // Goodput equals the file size exactly once: every block delivered,
  // none double-counted across the crash epoch.
  EXPECT_EQ(sess->blocks_delivered(), total / (1u << 20));
  expect_audit_ok();
}

TEST_F(RftpCrashTest, ReceiverCrashWithPerAckLedgerNeverRollsBack) {
  RftpConfig cfg;
  cfg.streams = 2;
  cfg.block_bytes = 1 << 20;
  cfg.checkpoint_blocks = 1;  // every ack durable
  auto sess = make_session(cfg);
  const std::uint64_t total = 64ull << 20;
  rig.eng.schedule_after(5 * sim::kMillisecond, [&] {
    sess->crash_host(1, 10 * sim::kMillisecond);
  });
  ZeroSource src(total);
  NullSink dst;
  const auto r = exp::run_task(rig.eng, sess->run(src, dst, total));
  EXPECT_TRUE(r.complete);
  EXPECT_TRUE(r.integrity_ok);
  EXPECT_EQ(r.bytes, total);
  EXPECT_EQ(r.crashes, 1u);
  EXPECT_EQ(r.resumes, 1u);
  // With checkpoint interval 1 nothing drained can be unledgered.
  EXPECT_EQ(sess->rolled_back_blocks, 0u);
  EXPECT_GT(sess->checkpoints, 0u);
  expect_audit_ok();
}

TEST_F(RftpCrashTest, ReceiverCrashRollsBackUnledgeredBlocksAndResends) {
  RftpConfig cfg;
  cfg.streams = 2;
  cfg.block_bytes = 1 << 20;
  cfg.checkpoint_blocks = 16;  // coarse ledger: drains sit exposed
  auto sess = make_session(cfg);
  const std::uint64_t total = 64ull << 20;
  rig.eng.schedule_after(5 * sim::kMillisecond, [&] {
    sess->crash_host(1, 10 * sim::kMillisecond);
  });
  ZeroSource src(total);
  NullSink dst;
  const auto r = exp::run_task(rig.eng, sess->run(src, dst, total));
  EXPECT_TRUE(r.complete);
  EXPECT_TRUE(r.integrity_ok);
  EXPECT_EQ(r.bytes, total);
  // Blocks drained after the last checkpoint were lost with the host and
  // re-sent after the restart; the audit's rollback accounting proves the
  // re-delivery was not double-counted.
  EXPECT_GT(sess->rolled_back_blocks, 0u);
  EXPECT_EQ(sess->blocks_delivered(), total / (1u << 20));
  expect_audit_ok();
}

TEST_F(RftpCrashTest, DisabledLedgerRestartsReceiverFromScratch) {
  RftpConfig cfg;
  cfg.streams = 1;
  cfg.block_bytes = 1 << 20;
  cfg.checkpoint_blocks = 0;  // no durability at all
  auto sess = make_session(cfg);
  const std::uint64_t total = 32ull << 20;
  rig.eng.schedule_after(5 * sim::kMillisecond, [&] {
    sess->crash_host(1, 5 * sim::kMillisecond);
  });
  ZeroSource src(total);
  NullSink dst;
  const auto r = exp::run_task(rig.eng, sess->run(src, dst, total));
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.bytes, total);
  EXPECT_EQ(sess->checkpoints, 0u);
  // Everything drained before the crash rolled back: the ledger never
  // covered it.
  EXPECT_GT(sess->rolled_back_blocks, 0u);
  expect_audit_ok();
}

TEST_F(RftpCrashTest, PermanentCrashDegradesGracefullyViaWatchdog) {
  RftpConfig cfg;
  cfg.streams = 2;
  cfg.block_bytes = 1 << 20;
  cfg.watchdog.quiet = 5 * sim::kMillisecond;
  cfg.watchdog.max_quiet = 2;
  auto sess = make_session(cfg);
  const std::uint64_t total = 64ull << 20;
  rig.eng.schedule_after(5 * sim::kMillisecond, [&] {
    sess->crash_host(1, 0);  // the receiver never comes back
  });
  ZeroSource src(total);
  NullSink dst;
  const auto r = exp::run_task(rig.eng, sess->run(src, dst, total));
  // Terminal degradation, not a hang: the watchdog declared the peer dead
  // and the transfer reports its partial progress.
  EXPECT_FALSE(r.complete);
  EXPECT_GT(r.bytes, 0u);
  EXPECT_LT(r.bytes, total);
  EXPECT_EQ(r.crashes, 1u);
  EXPECT_EQ(r.resumes, 0u);
  EXPECT_TRUE(sess->watchdog().declared_dead());
  expect_audit_ok();
}

TEST_F(RftpCrashTest, PermanentCrashWithoutWatchdogFailsFast) {
  RftpConfig cfg;
  cfg.streams = 1;
  cfg.block_bytes = 1 << 20;
  cfg.watchdog.quiet = 0;  // no watchdog: crash_host fails the transfer
  auto sess = make_session(cfg);
  const std::uint64_t total = 32ull << 20;
  rig.eng.schedule_after(3 * sim::kMillisecond, [&] {
    sess->crash_host(0, 0);
  });
  ZeroSource src(total);
  NullSink dst;
  const auto r = exp::run_task(rig.eng, sess->run(src, dst, total));
  EXPECT_FALSE(r.complete);
  EXPECT_LT(r.bytes, total);
  expect_audit_ok();
}

TEST_F(RftpCrashTest, OverlappingCrashIsAbsorbedWhileDown) {
  RftpConfig cfg;
  cfg.streams = 2;
  cfg.block_bytes = 1 << 20;
  auto sess = make_session(cfg);
  const std::uint64_t total = 64ull << 20;
  // A second crash while the host is already down must be a no-op, not a
  // nested teardown of already-dead streams.
  rig.eng.schedule_after(5 * sim::kMillisecond, [&] {
    sess->crash_host(1, 10 * sim::kMillisecond);
  });
  rig.eng.schedule_after(7 * sim::kMillisecond, [&] {
    sess->crash_host(1, 10 * sim::kMillisecond);
  });
  ZeroSource src(total);
  NullSink dst;
  const auto r = exp::run_task(rig.eng, sess->run(src, dst, total));
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.bytes, total);
  EXPECT_EQ(r.crashes, 1u);
  EXPECT_EQ(r.resumes, 1u);
  expect_audit_ok();
}

TEST_F(RftpCrashTest, CrashOnInvalidHostThrows) {
  RftpConfig cfg;
  auto sess = make_session(cfg);
  EXPECT_THROW(sess->crash_host(2, 0), std::out_of_range);
  EXPECT_THROW(sess->crash_host(-1, 0), std::out_of_range);
}

}  // namespace
}  // namespace e2e::rftp
