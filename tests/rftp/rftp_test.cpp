#include "rftp/rftp.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "exp/runner.hpp"
#include "metrics/throughput.hpp"
#include "testutil.hpp"

namespace e2e::rftp {
namespace {

using e2e::test::TinyRig;

struct RftpRig : ::testing::Test {
  TinyRig rig;
  std::unique_ptr<rdma::Device> dev_a1;
  std::unique_ptr<rdma::Device> dev_b1;
  std::unique_ptr<net::Link> link1;

  void SetUp() override {
    dev_a1 = std::make_unique<rdma::Device>(*rig.a, rig.a->profile().nics[1]);
    dev_b1 = std::make_unique<rdma::Device>(*rig.b, rig.b->profile().nics[1]);
    link1 = net::make_roce_lan(rig.eng, "t1");
  }

  std::unique_ptr<RftpSession> make_session(RftpConfig cfg,
                                            bool two_links = false) {
    EndpointConfig s{rig.proc_a.get(), {rig.dev_a.get()}};
    EndpointConfig r{rig.proc_b.get(), {rig.dev_b.get()}};
    std::vector<net::Link*> links{rig.link.get()};
    if (two_links) {
      s.nics.push_back(dev_a1.get());
      r.nics.push_back(dev_b1.get());
      links.push_back(link1.get());
    }
    return std::make_unique<RftpSession>(s, r, links, cfg);
  }
};

TEST_F(RftpRig, TransfersExactByteCount) {
  RftpConfig cfg;
  cfg.streams = 1;
  cfg.block_bytes = 1 << 20;
  auto sess = make_session(cfg);
  ZeroSource src(10 << 20);
  NullSink dst;
  const auto r = exp::run_task(rig.eng, sess->run(src, dst, 10 << 20));
  EXPECT_EQ(r.bytes, 10u << 20);
  EXPECT_EQ(r.blocks, 10u);
  EXPECT_EQ(sess->blocks_delivered(), 10u);
  EXPECT_GT(r.goodput_gbps, 0.0);
}

TEST_F(RftpRig, PartialFinalBlock) {
  RftpConfig cfg;
  cfg.streams = 1;
  cfg.block_bytes = 1 << 20;
  auto sess = make_session(cfg);
  const std::uint64_t total = (3 << 20) + 12345;
  ZeroSource src(total);
  NullSink dst;
  const auto r = exp::run_task(rig.eng, sess->run(src, dst, total));
  EXPECT_EQ(r.bytes, total);
  EXPECT_EQ(r.blocks, 4u);
}

TEST_F(RftpRig, MeterSeesEveryByte) {
  RftpConfig cfg;
  cfg.streams = 2;
  cfg.block_bytes = 512 * 1024;
  auto sess = make_session(cfg);
  metrics::ThroughputMeter meter(rig.eng, sim::kMillisecond);
  ZeroSource src(8 << 20);
  NullSink dst;
  exp::run_task(rig.eng, sess->run(src, dst, 8 << 20, &meter));
  EXPECT_EQ(meter.total_bytes(), 8u << 20);
}

TEST_F(RftpRig, ControlMessagesMatchBlocksPlusInitialGrants) {
  RftpConfig cfg;
  cfg.streams = 1;
  cfg.credits_per_stream = 4;
  cfg.block_bytes = 1 << 20;
  auto sess = make_session(cfg);
  ZeroSource src(8 << 20);
  NullSink dst;
  exp::run_task(rig.eng, sess->run(src, dst, 8 << 20));
  rig.eng.run();
  // Every block triggers a re-grant; 4 initial grants bootstrap the flow.
  EXPECT_EQ(sess->control_messages(), 8u + 4u);
}

TEST_F(RftpRig, CreditsBoundDataInFlight) {
  // One credit: blocks are strictly serialized by the token round-trip.
  RftpConfig slow;
  slow.streams = 1;
  slow.credits_per_stream = 1;
  slow.block_bytes = 1 << 20;
  auto s1 = make_session(slow);
  ZeroSource src1(16 << 20);
  NullSink dst1;
  const auto r1 = exp::run_task(rig.eng, s1->run(src1, dst1, 16 << 20));

  TinyRig rig2;
  RftpConfig fast = slow;
  fast.credits_per_stream = 8;
  EndpointConfig s{rig2.proc_a.get(), {rig2.dev_a.get()}};
  EndpointConfig r{rig2.proc_b.get(), {rig2.dev_b.get()}};
  RftpSession sess2(s, r, {rig2.link.get()}, fast);
  ZeroSource src2(16 << 20);
  NullSink dst2;
  const auto r2 = exp::run_task(rig2.eng, sess2.run(src2, dst2, 16 << 20));
  EXPECT_GT(r2.goodput_gbps, r1.goodput_gbps * 1.5);
}

TEST_F(RftpRig, StreamsSplitAcrossLinks) {
  RftpConfig cfg;
  cfg.streams = 2;
  cfg.block_bytes = 1 << 20;
  auto sess = make_session(cfg, /*two_links=*/true);
  ZeroSource src(32 << 20);
  NullSink dst;
  exp::run_task(rig.eng, sess->run(src, dst, 32 << 20));
  // Both links carried data.
  EXPECT_GT(rig.link->dir(0).units_served(), 0.0);
  EXPECT_GT(link1->dir(0).units_served(), 0.0);
  const double ratio = rig.link->dir(0).units_served() /
                       link1->dir(0).units_served();
  EXPECT_NEAR(ratio, 1.0, 0.25);  // balanced within 25%
}

TEST_F(RftpRig, NumaAwarePinsBuffersToNicNodes) {
  RftpConfig cfg;
  cfg.streams = 2;
  cfg.numa_aware = true;
  cfg.credits_per_stream = 2;
  cfg.block_bytes = 1 << 20;
  const auto used0_before = rig.a->used_bytes(0);
  const auto used1_before = rig.a->used_bytes(1);
  auto sess = make_session(cfg, /*two_links=*/true);
  // Stream 0 uses nic0 (node 0), stream 1 uses nic1 (node 1): both nodes
  // got pool memory, none of it interleaved.
  EXPECT_GT(rig.a->used_bytes(0), used0_before);
  EXPECT_GT(rig.a->used_bytes(1), used1_before);
}

TEST_F(RftpRig, TwoLinksDoubleThroughput) {
  RftpConfig cfg;
  cfg.streams = 1;
  cfg.block_bytes = 1 << 20;
  auto s1 = make_session(cfg);
  ZeroSource src1(64 << 20);
  NullSink dst1;
  const auto r1 = exp::run_task(rig.eng, s1->run(src1, dst1, 64 << 20));

  TinyRig rigB;
  auto devA1 =
      std::make_unique<rdma::Device>(*rigB.a, rigB.a->profile().nics[1]);
  auto devB1 =
      std::make_unique<rdma::Device>(*rigB.b, rigB.b->profile().nics[1]);
  auto linkB1 = net::make_roce_lan(rigB.eng, "x");
  RftpConfig cfg2 = cfg;
  cfg2.streams = 2;
  RftpSession sess2({rigB.proc_a.get(), {rigB.dev_a.get(), devA1.get()}},
                    {rigB.proc_b.get(), {rigB.dev_b.get(), devB1.get()}},
                    {rigB.link.get(), linkB1.get()}, cfg2);
  ZeroSource src2(64 << 20);
  NullSink dst2;
  const auto r2 = exp::run_task(rigB.eng, sess2.run(src2, dst2, 64 << 20));
  EXPECT_GT(r2.goodput_gbps, 1.6 * r1.goodput_gbps);
}

TEST_F(RftpRig, WanThroughputFollowsCreditWindow) {
  // 95 ms RTT: goodput ~= streams * credits * block / RTT until line rate.
  TinyRig rigW;
  auto wan = net::make_ani_wan(rigW.eng, "wan");
  RftpConfig cfg;
  cfg.streams = 1;
  cfg.credits_per_stream = 4;
  cfg.block_bytes = 4 << 20;
  RftpSession sess({rigW.proc_a.get(), {rigW.dev_a.get()}},
                   {rigW.proc_b.get(), {rigW.dev_b.get()}},
                   {wan.get()}, cfg);
  MemorySource src(1 << 30, numa::Placement::on(0));
  MemorySink dst;
  const auto r = exp::run_task(rigW.eng, sess.run(src, dst, 1 << 30));
  const double window_gbps =
      4.0 * (4 << 20) * 8.0 / (0.095 * 1e9);  // ~1.41 Gbps
  EXPECT_NEAR(r.goodput_gbps, window_gbps, window_gbps * 0.25);
}

TEST_F(RftpRig, RejectsBadConfig) {
  RftpConfig cfg;
  cfg.streams = 0;
  EXPECT_THROW(make_session(cfg), std::invalid_argument);
  RftpConfig cfg2;
  cfg2.credits_per_stream = 0;
  EXPECT_THROW(make_session(cfg2), std::invalid_argument);
  EndpointConfig empty{};
  EXPECT_THROW(RftpSession(empty, empty, {rig.link.get()}, RftpConfig{}),
               std::invalid_argument);
}

TEST_F(RftpRig, RunningTwiceConcurrentlyThrows) {
  RftpConfig cfg;
  cfg.streams = 1;
  auto sess = make_session(cfg);
  ZeroSource src(1 << 30);
  NullSink dst;
  sim::co_spawn([](RftpSession& s, ZeroSource& sc, NullSink& dc)
                    -> sim::Task<> {
    (void)co_await s.run(sc, dc, 1 << 30);
  }(*sess, src, dst));
  ZeroSource src2(1 << 20);
  EXPECT_THROW(exp::run_task(rig.eng, sess->run(src2, dst, 1 << 20)),
               std::logic_error);
}

TEST_F(RftpRig, RetransmitsAfterInjectedWireFaults) {
  RftpConfig cfg;
  cfg.streams = 1;
  cfg.block_bytes = 1 << 20;
  auto sess = make_session(cfg);
  rig.link->inject_failures(net::Direction::kAtoB, 5);  // corrupt five data messages
  metrics::ThroughputMeter meter(rig.eng, sim::kMillisecond);
  ZeroSource src(20 << 20);
  NullSink dst;
  const auto r = exp::run_task(rig.eng, sess->run(src, dst, 20 << 20, &meter));
  // The transfer completed exactly despite the faults...
  EXPECT_EQ(r.bytes, 20u << 20);
  EXPECT_EQ(meter.total_bytes(), 20u << 20);
  EXPECT_EQ(sess->blocks_delivered(), 20u);
  // ...by retransmitting the corrupted blocks.
  EXPECT_EQ(sess->retransmissions, 5u);
}

TEST_F(RftpRig, FailedWireCompletionRetransmitsExactlyOnceAndIsTraced) {
  trace::Tracer tracer(rig.eng);
  tracer.install();
  RftpConfig cfg;
  cfg.streams = 1;
  cfg.block_bytes = 1 << 20;
  auto sess = make_session(cfg);
  rig.link->inject_failures(net::Direction::kAtoB, 1);
  ZeroSource src(8 << 20);
  NullSink dst;
  const auto r = exp::run_task(rig.eng, sess->run(src, dst, 8 << 20));
  EXPECT_EQ(r.bytes, 8u << 20);
  EXPECT_TRUE(r.complete);
  EXPECT_TRUE(r.integrity_ok);
  // The corrupted block went out exactly twice: one failure, one retry.
  EXPECT_EQ(sess->retransmissions, 1u);
  EXPECT_EQ(tracer.counter_value("rftp/retransmissions"), 1u);
}

TEST_F(RftpRig, FaultFreeRunsHaveNoRetransmissions) {
  RftpConfig cfg;
  cfg.streams = 2;
  auto sess = make_session(cfg);
  ZeroSource src(16 << 20);
  NullSink dst;
  exp::run_task(rig.eng, sess->run(src, dst, 16 << 20));
  EXPECT_EQ(sess->retransmissions, 0u);
}

TEST_F(RftpRig, SurvivesFaultBursts) {
  RftpConfig cfg;
  cfg.streams = 1;
  cfg.block_bytes = 512 << 10;
  cfg.credits_per_stream = 4;
  auto sess = make_session(cfg);
  rig.link->inject_failures(net::Direction::kAtoB, 20);
  ZeroSource src(30 << 20);
  NullSink dst;
  const auto r = exp::run_task(rig.eng, sess->run(src, dst, 30 << 20));
  EXPECT_EQ(r.bytes, 30u << 20);
  EXPECT_GE(sess->retransmissions, 20u);
}

class BlockSizeSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BlockSizeSweep, ByteConservationAcrossBlockSizes) {
  TinyRig rig;
  RftpConfig cfg;
  cfg.streams = 2;
  cfg.block_bytes = GetParam();
  cfg.credits_per_stream = 4;
  RftpSession sess({rig.proc_a.get(), {rig.dev_a.get()}},
                   {rig.proc_b.get(), {rig.dev_b.get()}},
                   {rig.link.get()}, cfg);
  metrics::ThroughputMeter meter(rig.eng, sim::kMillisecond);
  const std::uint64_t total = (23ull << 20) + 17;  // awkward size
  ZeroSource src(total);
  NullSink dst;
  const auto r = exp::run_task(rig.eng, sess.run(src, dst, total, &meter));
  EXPECT_EQ(r.bytes, total);
  EXPECT_EQ(meter.total_bytes(), total);
  EXPECT_EQ(r.blocks, (total + cfg.block_bytes - 1) / cfg.block_bytes);
}

INSTANTIATE_TEST_SUITE_P(Blocks, BlockSizeSweep,
                         ::testing::Values(64ull << 10, 256ull << 10,
                                           1ull << 20, 4ull << 20,
                                           16ull << 20));

class StreamSweep : public ::testing::TestWithParam<int> {};

TEST_P(StreamSweep, AllStreamConfigsDeliverEverything) {
  TinyRig rig;
  RftpConfig cfg;
  cfg.streams = GetParam();
  cfg.block_bytes = 1 << 20;
  RftpSession sess({rig.proc_a.get(), {rig.dev_a.get()}},
                   {rig.proc_b.get(), {rig.dev_b.get()}},
                   {rig.link.get()}, cfg);
  ZeroSource src(40 << 20);
  NullSink dst;
  const auto r = exp::run_task(rig.eng, sess.run(src, dst, 40 << 20));
  EXPECT_EQ(r.bytes, 40u << 20);
  EXPECT_EQ(sess.blocks_delivered(), 40u);
}

INSTANTIATE_TEST_SUITE_P(Streams, StreamSweep, ::testing::Values(1, 2, 3, 4, 8));

}  // namespace
}  // namespace e2e::rftp
