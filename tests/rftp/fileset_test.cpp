#include "rftp/fileset.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "exp/runner.hpp"
#include "rftp/session.hpp"
#include "testutil.hpp"

namespace e2e::rftp {
namespace {

using e2e::test::TinyRig;

struct FileSetRig : ::testing::Test {
  TinyRig rig;
  std::unique_ptr<mem::Tmpfs> src_store;
  std::unique_ptr<mem::Tmpfs> dst_store;
  std::unique_ptr<blk::RamBlockDevice> src_dev;
  std::unique_ptr<blk::RamBlockDevice> dst_dev;
  std::unique_ptr<blk::XfsSim> src_fs;
  std::unique_ptr<blk::XfsSim> dst_fs;

  void SetUp() override {
    src_store = std::make_unique<mem::Tmpfs>(*rig.a);
    dst_store = std::make_unique<mem::Tmpfs>(*rig.b);
    auto& sb = src_store->create("d", 64 << 20, numa::MemPolicy::kBind, 0);
    auto& db = dst_store->create("d", 64 << 20, numa::MemPolicy::kBind, 0);
    src_dev = std::make_unique<blk::RamBlockDevice>(*src_store, sb);
    dst_dev = std::make_unique<blk::RamBlockDevice>(*dst_store, db);
    src_fs = std::make_unique<blk::XfsSim>(*rig.a, *src_dev, nullptr,
                                           std::vector<numa::Thread*>{});
    dst_fs = std::make_unique<blk::XfsSim>(*rig.b, *dst_dev, nullptr,
                                           std::vector<numa::Thread*>{});
  }
};

TEST_F(FileSetRig, MapWithinOneFile) {
  FileSet set(*src_fs);
  set.create_filled("f", 3, 1 << 20);
  EXPECT_EQ(set.total_bytes(), 3u << 20);
  EXPECT_EQ(set.file_count(), 3u);
  const auto pieces = set.map(0, 4096);
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0].file_offset, 0u);
  EXPECT_EQ(pieces[0].len, 4096u);
}

TEST_F(FileSetRig, MapStraddlesFileBoundary) {
  FileSet set(*src_fs);
  set.create_filled("f", 2, 1 << 20);
  const auto pieces = set.map((1 << 20) - 1024, 4096);
  ASSERT_EQ(pieces.size(), 2u);
  EXPECT_EQ(pieces[0].len, 1024u);
  EXPECT_EQ(pieces[0].file_offset, (1u << 20) - 1024);
  EXPECT_EQ(pieces[1].len, 3072u);
  EXPECT_EQ(pieces[1].file_offset, 0u);
}

TEST_F(FileSetRig, MapClampsAtEnd) {
  FileSet set(*src_fs);
  set.create_filled("f", 1, 4096);
  EXPECT_TRUE(set.map(4096, 100).empty());
  const auto pieces = set.map(2048, 1 << 20);
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0].len, 2048u);
}

TEST_F(FileSetRig, MapSpansManySmallFiles) {
  FileSet set(*src_fs);
  set.create_filled("s", 16, 64 << 10);
  const auto pieces = set.map(0, 1 << 20);  // all 16 files
  EXPECT_EQ(pieces.size(), 16u);
  std::uint64_t total = 0;
  for (const auto& p : pieces) total += p.len;
  EXPECT_EQ(total, 1u << 20);
}

TEST_F(FileSetRig, RftpTransfersAWholeDirectory) {
  FileSet src_set(*src_fs);
  src_set.create_filled("data", 8, 2 << 20);
  FileSet dst_set(*dst_fs);
  dst_set.create_empty("copy", 8, 2 << 20);

  RftpConfig cfg;
  cfg.streams = 1;
  cfg.block_bytes = 1 << 20;
  RftpSession sess({rig.proc_a.get(), {rig.dev_a.get()}},
                   {rig.proc_b.get(), {rig.dev_b.get()}},
                   {rig.link.get()}, cfg);
  FileSetSource src(src_set);
  FileSetSink dst(dst_set);
  const auto r =
      exp::run_task(rig.eng, sess.run(src, dst, src_set.total_bytes()));
  EXPECT_EQ(r.bytes, 16u << 20);
  // Every destination file was fully written.
  for (int i = 0; i < 8; ++i) {
    blk::File* f = dst_fs->open("copy" + std::to_string(i));
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(f->size, 2u << 20);
  }
}

struct OverheadResult {
  rftp::TransferResult transfer;
  std::uint64_t cpu_ns = 0;  // both hosts
};

TEST(FileSetOverhead, SmallFilesCostMoreCpuThanOneBigFile) {
  // Same bytes, 2048 files vs 1 file: per-file VFS calls, extent setup
  // and split block I/O cost extra CPU (the deep pipeline hides most of
  // the latency, so the toll shows up in cycles, not goodput).
  auto run_transfer = [](int files, std::uint64_t file_bytes) {
    TinyRig r;
    mem::Tmpfs src_store(*r.a), dst_store(*r.b);
    auto& sb = src_store.create("d", 256 << 20, numa::MemPolicy::kBind, 0);
    auto& db = dst_store.create("d", 256 << 20, numa::MemPolicy::kBind, 0);
    blk::RamBlockDevice sdev(src_store, sb), ddev(dst_store, db);
    blk::XfsSim sfs(*r.a, sdev, nullptr, std::vector<numa::Thread*>{});
    blk::XfsSim dfs(*r.b, ddev, nullptr, std::vector<numa::Thread*>{});
    FileSet sset(sfs), dset(dfs);
    sset.create_filled("f", files, file_bytes);
    dset.create_empty("c", files, file_bytes);
    RftpConfig cfg;
    cfg.streams = 1;
    cfg.block_bytes = 1 << 20;
    RftpSession sess({r.proc_a.get(), {r.dev_a.get()}},
                     {r.proc_b.get(), {r.dev_b.get()}},
                     {r.link.get()}, cfg);
    FileSetSource src(sset);
    FileSetSink dst(dset);
    OverheadResult out;
    out.transfer =
        exp::run_task(r.eng, sess.run(src, dst, sset.total_bytes()));
    out.cpu_ns = r.a->total_usage().total() + r.b->total_usage().total();
    return out;
  };
  const auto small = run_transfer(2048, 64 << 10);
  const auto big = run_transfer(1, 128 << 20);
  EXPECT_EQ(small.transfer.bytes, big.transfer.bytes);
  EXPECT_GT(small.cpu_ns, 1.2 * static_cast<double>(big.cpu_ns));
  // Goodput stays in the same ballpark: the pipeline absorbs the latency.
  EXPECT_NEAR(small.transfer.goodput_gbps, big.transfer.goodput_gbps,
              0.15 * big.transfer.goodput_gbps);
}

}  // namespace
}  // namespace e2e::rftp
