// Pooled message payloads (mem/msg_pool.hpp): refcounting semantics,
// in-place reuse via unique(), and freelist recycling. The recycling
// assertions are skipped under ASan, where pooling is compiled out so the
// sanitizer keeps byte-exact use-after-free coverage (same pattern as the
// coroutine frame pool).
#include "mem/msg_pool.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

namespace e2e::mem {
namespace {

using detail::MsgPool;

struct Header {
  std::uint64_t tag = 0;
  std::uint64_t bytes = 0;
};

TEST(MsgPtr, RefcountingSharesOnePayload) {
  MsgPtr a = make_msg<Header>(Header{7, 100});
  EXPECT_TRUE(a.unique());
  MsgPtr b = a;
  EXPECT_FALSE(a.unique());
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.as<Header>(), b.as<Header>());
  EXPECT_EQ(b.as<Header>()->tag, 7u);
  b.reset();
  EXPECT_TRUE(a.unique());
  EXPECT_EQ(b, nullptr);
}

TEST(MsgPtr, MoveTransfersOwnership) {
  MsgPtr a = make_msg<int>(5);
  MsgPtr b = std::move(a);
  EXPECT_EQ(a, nullptr);  // NOLINT(bugprone-use-after-move)
  ASSERT_NE(b.as<int>(), nullptr);
  EXPECT_EQ(*b.as<int>(), 5);
}

TEST(MsgPtr, UniqueGatesInPlaceReuse) {
  // The fresh_wire() pattern: reuse the cached block only when no send
  // path still references it.
  MsgPtr cache = make_msg<Header>(Header{1, 1});
  {
    MsgPtr in_flight = cache;  // the "send path" still holds it
    EXPECT_FALSE(cache.unique());
  }
  EXPECT_TRUE(cache.unique());
  *cache.mutable_as<Header>() = Header{2, 2};
  EXPECT_EQ(cache.as<Header>()->tag, 2u);
}

TEST(MsgPtr, NonTrivialPayloadsDestructExactlyOnce) {
  static int live = 0;
  struct Counted {
    Counted() { ++live; }
    Counted(const Counted&) { ++live; }
    ~Counted() { --live; }
  };
  {
    MsgPtr a = make_msg<Counted>();
    MsgPtr b = a;
    EXPECT_EQ(live, 1);
  }
  EXPECT_EQ(live, 0);
}

TEST(MsgPool, SameBucketBlocksRecycle) {
  if (!detail::kMsgPoolEnabled) GTEST_SKIP() << "pooling compiled out (ASan)";
  MsgPool::trim();
  const auto before = MsgPool::stats();
  { MsgPtr a = make_msg<Header>(Header{1, 1}); }
  { MsgPtr b = make_msg<Header>(Header{2, 2}); }  // must reuse a's block
  const auto after = MsgPool::stats();
  EXPECT_EQ(after.fresh, before.fresh + 1);
  EXPECT_GE(after.reused, before.reused + 1);
  EXPECT_EQ(after.cached, 1u);
  MsgPool::trim();
  EXPECT_EQ(MsgPool::stats().cached, 0u);
}

TEST(MsgPool, SteadyStateChurnStopsAllocatingFresh) {
  if (!detail::kMsgPoolEnabled) GTEST_SKIP() << "pooling compiled out (ASan)";
  MsgPool::trim();
  { MsgPtr warm = make_msg<Header>(Header{}); }
  const auto warm_stats = MsgPool::stats();
  for (int i = 0; i < 1000; ++i) MsgPtr p = make_msg<Header>(Header{});
  const auto after = MsgPool::stats();
  EXPECT_EQ(after.fresh, warm_stats.fresh) << "churn must hit the freelist";
  EXPECT_EQ(after.reused, warm_stats.reused + 1000);
}

TEST(MsgPool, OversizePayloadsFallThroughToHeap) {
  struct Big {
    char data[MsgPool::kMaxPooledBytes + 1] = {};
  };
  const auto before = MsgPool::stats();
  { MsgPtr p = make_msg<Big>(); }
  const auto after = MsgPool::stats();
  EXPECT_EQ(after.oversize, before.oversize + 1);
  EXPECT_EQ(after.cached, before.cached);  // not parked on a freelist
}

}  // namespace
}  // namespace e2e::mem
