// Flat rendezvous tables (mem/flat_table.hpp): hashing, backward-shift
// deletion, tag wraparound, out-of-order completion patterns, and slot
// recycling with generation-counted handles.
#include "mem/flat_table.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace e2e::mem {
namespace {

TEST(FlatMap, InsertFindErase) {
  FlatMap<int> m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.find(7), nullptr);
  m.insert(7, 70);
  m.insert(8, 80);
  ASSERT_NE(m.find(7), nullptr);
  EXPECT_EQ(*m.find(7), 70);
  EXPECT_EQ(*m.find(8), 80);
  EXPECT_EQ(m.size(), 2u);
  EXPECT_TRUE(m.erase(7));
  EXPECT_FALSE(m.erase(7));
  EXPECT_EQ(m.find(7), nullptr);
  EXPECT_EQ(*m.find(8), 80);
}

TEST(FlatMap, InsertOverwritesExistingKey) {
  FlatMap<int> m;
  m.insert(3, 1);
  m.insert(3, 2);
  EXPECT_EQ(m.size(), 1u);
  EXPECT_EQ(*m.find(3), 2);
}

TEST(FlatMap, MatchesStdMapUnderSequentialTagChurn) {
  // The protocol shape: sequential tags inserted and erased out of order,
  // with a bounded live window. Mirror against std::map.
  FlatMap<std::uint64_t> m;
  std::map<std::uint64_t, std::uint64_t> ref;
  std::uint64_t next_tag = 1;
  std::uint64_t rng = 0x9E3779B97F4A7C15ull;
  auto rand = [&rng] {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  for (int step = 0; step < 20000; ++step) {
    if (ref.size() < 64 && (rand() & 1)) {
      const std::uint64_t t = next_tag++;
      m.insert(t, t * 3);
      ref.emplace(t, t * 3);
    } else if (!ref.empty()) {
      // Erase a pseudo-random live key: completions arrive out of order.
      auto it = ref.begin();
      std::advance(it, static_cast<long>(rand() % ref.size()));
      EXPECT_TRUE(m.erase(it->first));
      ref.erase(it);
    }
    EXPECT_EQ(m.size(), ref.size());
  }
  for (const auto& [k, v] : ref) {
    ASSERT_NE(m.find(k), nullptr);
    EXPECT_EQ(*m.find(k), v);
  }
}

TEST(FlatMap, TagWraparoundKeepsLookupsExact) {
  // A 32-bit wr_id counter that wraps: tags near UINT32_MAX coexist with
  // restarted small tags, and re-used tag values after a full cycle land
  // on a table that has long erased the first incarnation.
  FlatMap<int> m;
  std::uint32_t tag = 0xFFFFFFF0u;
  for (int i = 0; i < 64; ++i) {
    m.insert(tag, i);
    ASSERT_NE(m.find(tag), nullptr);
    EXPECT_EQ(*m.find(tag), i);
    EXPECT_TRUE(m.erase(tag));
    ++tag;  // wraps through 0
  }
  EXPECT_TRUE(m.empty());
  // Second full pass over the same (wrapped) tag values.
  tag = 0xFFFFFFF0u;
  for (int i = 0; i < 64; ++i) {
    m.insert(tag, i + 100);
    EXPECT_EQ(*m.find(tag), i + 100);
    EXPECT_TRUE(m.erase(tag++));
  }
  // And 64-bit extremes.
  m.insert(0, 1);
  m.insert(UINT64_MAX, 2);
  m.insert(UINT64_MAX - 1, 3);
  EXPECT_EQ(*m.find(0), 1);
  EXPECT_EQ(*m.find(UINT64_MAX), 2);
  EXPECT_EQ(*m.find(UINT64_MAX - 1), 3);
}

TEST(FlatMap, BackwardShiftDeletionPreservesProbeChains) {
  // Build long probe chains by filling past several growths, then erase
  // every other key and verify all survivors are still reachable.
  FlatMap<std::uint64_t> m;
  for (std::uint64_t k = 0; k < 1000; ++k) m.insert(k, k + 1);
  for (std::uint64_t k = 0; k < 1000; k += 2) EXPECT_TRUE(m.erase(k));
  for (std::uint64_t k = 1; k < 1000; k += 2) {
    ASSERT_NE(m.find(k), nullptr) << k;
    EXPECT_EQ(*m.find(k), k + 1);
  }
  for (std::uint64_t k = 0; k < 1000; k += 2) EXPECT_EQ(m.find(k), nullptr);
}

TEST(FlatMap, ForEachSortedVisitsAscendingKeys) {
  FlatMap<int> m;
  for (const std::uint64_t k : {9ull, 2ull, 55ull, 1ull, 30ull})
    m.insert(k, static_cast<int>(k) * 10);
  std::vector<std::uint64_t> keys;
  m.for_each_sorted([&](std::uint64_t k, int v) {
    keys.push_back(k);
    EXPECT_EQ(v, static_cast<int>(k) * 10);
  });
  EXPECT_EQ(keys, (std::vector<std::uint64_t>{1, 2, 9, 30, 55}));
}

TEST(FlatMap, ClearResetsValuesButKeepsCapacity) {
  FlatMap<std::string> m;
  for (std::uint64_t k = 0; k < 100; ++k) m.insert(k, "x");
  m.clear();
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.find(5), nullptr);
  m.insert(5, "y");
  EXPECT_EQ(*m.find(5), "y");
}

struct Tracked {
  int value = 0;
  int constructions = 0;
  explicit Tracked(int v) : value(v), constructions(1) {}
};

TEST(SlotArena, ReusesSlotsWithoutReconstructing) {
  SlotArena<Tracked> a;
  const auto r1 = a.acquire(7);
  EXPECT_EQ(a.at(r1).value, 7);
  a.release(r1);
  const auto r2 = a.acquire(99);  // recycled: ctor args ignored
  EXPECT_EQ(r2.slot, r1.slot);
  EXPECT_NE(r2.gen, r1.gen);
  EXPECT_EQ(a.at(r2).value, 7) << "recycled object must keep prior state";
  EXPECT_EQ(a.at(r2).constructions, 1);
  EXPECT_EQ(a.slot_count(), 1u);
}

TEST(SlotArena, StaleRefsResolveNull) {
  SlotArena<Tracked> a;
  const auto r1 = a.acquire(1);
  a.release(r1);
  EXPECT_EQ(a.get(r1), nullptr);  // released
  const auto r2 = a.acquire(2);
  EXPECT_EQ(a.get(r1), nullptr);  // slot reoccupied by a newer generation
  EXPECT_NE(a.get(r2), nullptr);
  EXPECT_EQ(a.get(SlotArena<Tracked>::Ref{}), nullptr);  // null handle
}

TEST(PendingTable, OutOfOrderCompletionAndSlotReuse) {
  PendingTable<Tracked> t;
  // Submit 8, complete out of order, resubmit — the arena footprint must
  // stay at the high-water mark (8 slots), never grow with churn.
  for (std::uint64_t round = 0; round < 50; ++round) {
    for (std::uint64_t i = 0; i < 8; ++i)
      t.emplace(round * 8 + i, static_cast<int>(i));
    const std::uint64_t order[] = {5, 2, 7, 0, 6, 1, 4, 3};
    for (const std::uint64_t i : order)
      EXPECT_TRUE(t.erase(round * 8 + i));
  }
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.slot_count(), 8u);
}

TEST(FlatMap, SupportsMoveOnlyValuesAcrossGrowth) {
  // Thread cost-plan caches key unique_ptrs by plan id; growth must
  // default-insert slots rather than copy-fill them.
  FlatMap<std::unique_ptr<int>> m;
  for (std::uint64_t k = 1; k <= 64; ++k)
    m.insert(k, std::make_unique<int>(static_cast<int>(k)));
  for (std::uint64_t k = 1; k <= 64; ++k) {
    auto* p = m.find(k);
    ASSERT_NE(p, nullptr);
    ASSERT_NE(p->get(), nullptr);
    EXPECT_EQ(**p, static_cast<int>(k));
  }
  EXPECT_TRUE(m.erase(33));
  EXPECT_EQ(m.find(33), nullptr);
  EXPECT_EQ(m.size(), 63u);
}

#ifdef NDEBUG
TEST(PendingTable, DuplicateKeyRetiresOldEntryInReleaseBuilds) {
  // A duplicate emplace is a protocol bug (debug builds assert), but in
  // release builds it must not leak the old slot or hand two callers the
  // same object: the old entry retires (refs go stale) and the new caller
  // gets its own entry.
  PendingTable<Tracked> t;
  t.emplace(7, 1);
  const auto old_ref = t.ref_of(7);
  ASSERT_NE(t.get(old_ref), nullptr);
  Tracked& fresh = t.emplace(7, 2);
  EXPECT_EQ(t.get(old_ref), nullptr) << "old entry's refs must go stale";
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.find(7), &fresh);
  // The retired slot recycles: churning the same key must not grow the
  // arena beyond the two slots ever occupied at once.
  for (int i = 0; i < 100; ++i) t.emplace(7, i);
  EXPECT_LE(t.slot_count(), 2u);
  EXPECT_TRUE(t.erase(7));
  EXPECT_EQ(t.size(), 0u);
}
#endif

TEST(PendingTable, RefsGoStaleOnEraseAndOnSlotRecycle) {
  PendingTable<Tracked> t;
  t.emplace(42, 1);
  const auto ref = t.ref_of(42);
  ASSERT_NE(t.get(ref), nullptr);
  EXPECT_TRUE(t.erase(42));
  EXPECT_EQ(t.get(ref), nullptr);  // the timer-held handle is now inert
  t.emplace(43, 2);                // recycles slot 0
  EXPECT_EQ(t.get(ref), nullptr) << "old ref must not see the new occupant";
  ASSERT_NE(t.find(43), nullptr);
}

}  // namespace
}  // namespace e2e::mem
