#include "mem/tmpfs.hpp"

#include <gtest/gtest.h>

#include "exp/runner.hpp"
#include "numa/process.hpp"
#include "testutil.hpp"

namespace e2e::mem {
namespace {

using metrics::CpuCategory;

struct TmpfsRig : ::testing::Test {
  sim::Engine eng;
  numa::Host host{eng, e2e::test::tiny_host("h")};
  Tmpfs fs{host};
  numa::Process proc{host, "p", numa::NumaBinding::bound(0)};
};

TEST_F(TmpfsRig, CreateBindsPlacement) {
  auto& f = fs.create("lun0", 1 << 20, numa::MemPolicy::kBind, 1);
  EXPECT_EQ(f.size, 1u << 20);
  EXPECT_EQ(f.placement.extents[0].node, 1);
  EXPECT_EQ(host.used_bytes(1), 1u << 20);
  EXPECT_EQ(fs.file_count(), 1u);
}

TEST_F(TmpfsRig, FindAndRemove) {
  fs.create("a", 4096, numa::MemPolicy::kBind, 0);
  EXPECT_NE(fs.find("a"), nullptr);
  EXPECT_EQ(fs.find("missing"), nullptr);
  fs.remove("a");
  EXPECT_EQ(fs.find("a"), nullptr);
  EXPECT_EQ(host.used_bytes(0), 0u);
  fs.remove("missing");  // no-op
}

TEST_F(TmpfsRig, ReadCountsBytesAndSharers) {
  auto& f = fs.create("f", 1 << 20, numa::MemPolicy::kBind, 0);
  numa::Thread& th = proc.spawn_thread();
  exp::run_task(eng, fs.read(th, f, 0, 4096, numa::Placement::on(0),
                             CpuCategory::kLoad));
  EXPECT_EQ(f.bytes_read, 4096u);
  EXPECT_TRUE(f.sharers.count(0));
  EXPECT_FALSE(f.shared_beyond(0));
}

TEST_F(TmpfsRig, OutOfRangeIoThrows) {
  auto& f = fs.create("f", 4096, numa::MemPolicy::kBind, 0);
  numa::Thread& th = proc.spawn_thread();
  EXPECT_THROW(exp::run_task(eng, fs.read(th, f, 4000, 1000,
                                          numa::Placement::on(0),
                                          CpuCategory::kLoad)),
               std::out_of_range);
}

TEST_F(TmpfsRig, LocalWriteIsPrivate) {
  auto& f = fs.create("f", 1 << 20, numa::MemPolicy::kBind, 0);
  numa::Thread& th = proc.spawn_thread();  // node 0
  exp::run_task(eng, fs.write(th, f, 0, 1 << 20, numa::Placement::on(0),
                              CpuCategory::kOffload));
  // No coherence traffic: the interconnect stays idle.
  EXPECT_EQ(host.interconnect(0, 1).units_served(), 0.0);
  EXPECT_EQ(host.interconnect(1, 0).units_served(), 0.0);
  EXPECT_EQ(f.bytes_written, 1u << 20);
}

TEST_F(TmpfsRig, WriteAfterRemoteReaderPaysCoherence) {
  auto& f = fs.create("f", 1 << 20, numa::MemPolicy::kInterleave, 0);
  numa::Process proc1(host, "p1", numa::NumaBinding::bound(1));
  numa::Thread& reader = proc1.spawn_thread();  // node 1 touches the file
  exp::run_task(eng, fs.read(reader, f, 0, 4096, numa::Placement::on(1),
                             CpuCategory::kLoad));

  numa::Thread& writer = proc.spawn_thread();  // node 0
  const auto before = proc.usage().get(CpuCategory::kOffload);
  exp::run_task(eng, fs.write(writer, f, 0, 1 << 20, numa::Placement::on(0),
                              CpuCategory::kOffload));
  const auto shared_cost = proc.usage().get(CpuCategory::kOffload) - before;

  // Same write on a file nobody else touched costs less.
  auto& g = fs.create("g", 1 << 20, numa::MemPolicy::kInterleave, 0);
  const auto before2 = proc.usage().get(CpuCategory::kOffload);
  exp::run_task(eng, fs.write(writer, g, 0, 1 << 20, numa::Placement::on(0),
                              CpuCategory::kOffload));
  const auto private_cost = proc.usage().get(CpuCategory::kOffload) - before2;
  EXPECT_GT(shared_cost, private_cost);
}

TEST_F(TmpfsRig, ReadsNeverPayCoherence) {
  auto& f = fs.create("f", 1 << 20, numa::MemPolicy::kBind, 0);
  numa::Process proc1(host, "p1", numa::NumaBinding::bound(1));
  numa::Thread& t0 = proc.spawn_thread();
  numa::Thread& t1 = proc1.spawn_thread();
  exp::run_task(eng, fs.read(t0, f, 0, 4096, numa::Placement::on(0),
                             CpuCategory::kLoad));
  const auto base = proc1.usage().get(CpuCategory::kLoad);
  // Remote read of a shared file: remote-access penalty only, which we
  // verify by comparing against the same read from an unshared file.
  exp::run_task(eng, fs.read(t1, f, 0, 4096, numa::Placement::on(1),
                             CpuCategory::kLoad));
  const auto shared_read = proc1.usage().get(CpuCategory::kLoad) - base;
  auto& g = fs.create("g", 1 << 20, numa::MemPolicy::kBind, 0);
  const auto base2 = proc1.usage().get(CpuCategory::kLoad);
  exp::run_task(eng, fs.read(t1, g, 0, 4096, numa::Placement::on(1),
                             CpuCategory::kLoad));
  EXPECT_EQ(shared_read, proc1.usage().get(CpuCategory::kLoad) - base2);
}

TEST_F(TmpfsRig, DuplicateCreateReplacesFile) {
  fs.create("f", 4096, numa::MemPolicy::kBind, 0);
  fs.create("f", 8192, numa::MemPolicy::kBind, 1);
  EXPECT_EQ(fs.find("f")->size, 8192u);
  EXPECT_EQ(fs.file_count(), 1u);
}

}  // namespace
}  // namespace e2e::mem
