#include "mem/buffer_pool.hpp"

#include <gtest/gtest.h>

#include <set>

#include "exp/runner.hpp"
#include "testutil.hpp"

namespace e2e::mem {
namespace {

struct PoolRig : ::testing::Test {
  sim::Engine eng;
  numa::Host host{eng, e2e::test::tiny_host("h")};
};

TEST_F(PoolRig, AllocatesOnRequestedNode) {
  BufferPool pool(host, "p", 4, 1 << 20, numa::MemPolicy::kBind, 1);
  EXPECT_EQ(pool.capacity(), 4u);
  EXPECT_EQ(pool.available(), 4u);
  EXPECT_EQ(pool.buffer_bytes(), 1u << 20);
  EXPECT_EQ(host.used_bytes(1), 4u << 20);
  Buffer* b = pool.try_acquire();
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->home_node(), 1);
}

TEST_F(PoolRig, InterleavedPoolSplitsNodes) {
  BufferPool pool(host, "p", 2, 1 << 20, numa::MemPolicy::kInterleave, 0);
  Buffer* b = pool.try_acquire();
  ASSERT_NE(b, nullptr);
  EXPECT_DOUBLE_EQ(b->placement.remote_fraction(0), 0.5);
}

TEST_F(PoolRig, TryAcquireExhausts) {
  BufferPool pool(host, "p", 2, 4096, numa::MemPolicy::kBind, 0);
  EXPECT_NE(pool.try_acquire(), nullptr);
  EXPECT_NE(pool.try_acquire(), nullptr);
  EXPECT_EQ(pool.try_acquire(), nullptr);
  EXPECT_EQ(pool.available(), 0u);
}

TEST_F(PoolRig, ReleaseRecycles) {
  BufferPool pool(host, "p", 1, 4096, numa::MemPolicy::kBind, 0);
  Buffer* b = pool.try_acquire();
  pool.release(b);
  EXPECT_EQ(pool.available(), 1u);
  EXPECT_EQ(pool.try_acquire(), b);
}

TEST_F(PoolRig, AcquireSuspendsUntilRelease) {
  BufferPool pool(host, "p", 1, 4096, numa::MemPolicy::kBind, 0);
  Buffer* first = pool.try_acquire();
  Buffer* second = nullptr;
  sim::co_spawn([](BufferPool& p, Buffer** out) -> sim::Task<> {
    *out = co_await p.acquire();
  }(pool, &second));
  EXPECT_EQ(second, nullptr);
  pool.release(first);
  eng.run();
  EXPECT_EQ(second, first);
}

TEST_F(PoolRig, DistinctBufferIds) {
  BufferPool pool(host, "p", 8, 4096, numa::MemPolicy::kBind, 0);
  std::set<std::uint64_t> ids;
  while (Buffer* b = pool.try_acquire()) ids.insert(b->id);
  EXPECT_EQ(ids.size(), 8u);
}

TEST_F(PoolRig, MarkRegisteredFlagsAll) {
  BufferPool pool(host, "p", 3, 4096, numa::MemPolicy::kBind, 0);
  pool.mark_registered();
  while (Buffer* b = pool.try_acquire()) EXPECT_TRUE(b->registered);
}

TEST_F(PoolRig, ReleaseNullThrows) {
  BufferPool pool(host, "p", 1, 4096, numa::MemPolicy::kBind, 0);
  EXPECT_THROW(pool.release(nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace e2e::mem
