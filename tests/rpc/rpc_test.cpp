// rpc layer unit tests: recv-ring exhaustion surfaces as an RNR stall (not
// a drop or an error), completion batching flushes a lone CQE immediately
// on an idle endpoint, and the call-slot generation wraps 0xFFFF -> 1 with
// the documented 65535-recycle ABA window.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>

#include "exp/runner.hpp"
#include "mem/msg_pool.hpp"
#include "rdma/cm.hpp"
#include "rpc/rpc.hpp"
#include "sim/sim.hpp"
#include "testutil.hpp"
#include "trace/tracer.hpp"

namespace e2e::rpc {
namespace {

using e2e::test::make_buffer;
using e2e::test::TinyRig;

struct Ping {
  std::uint64_t seq = 0;
};

/// Echoes the request payload straight back, same wire size.
class EchoHandler final : public RpcServer::Handler {
 public:
  sim::Task<RpcServer::Reply> handle(const RpcServer::Request& req) override {
    RpcServer::Reply r;
    r.bytes = req.bytes;
    r.payload = req.payload;
    co_return r;
  }
};

struct RpcRig : ::testing::Test {
  TinyRig rig;
  std::unique_ptr<rdma::ConnectedPair> cp;
  numa::Thread* ta = nullptr;
  numa::Thread* tb = nullptr;
  mem::Buffer ring_a{}, ring_b{};
  EchoHandler echo;
  std::unique_ptr<RpcClient> client;
  std::unique_ptr<RpcServer> server;

  /// Builds both endpoints with `cfg` and brings the pair up.
  void build(RpcConfig cfg) {
    cp = std::make_unique<rdma::ConnectedPair>(*rig.dev_a, *rig.dev_b,
                                               *rig.link);
    ta = &rig.proc_a->spawn_thread();
    tb = &rig.proc_b->spawn_thread();
    ring_a = make_buffer(*rig.a, 1 << 20, 0);
    ring_b = make_buffer(*rig.b, 1 << 20, 0);
    client = std::make_unique<RpcClient>(cp->a(), *ta, *ta, ring_a, cfg);
    server = std::make_unique<RpcServer>(cp->b(), *tb, *tb, ring_b, echo, cfg);
    exp::run_task(rig.eng, up());
  }

  sim::Task<> up() {
    co_await cp->establish(*ta, *tb);
    co_await client->start();
    co_await server->start();
  }

  sim::Task<> one_call(std::uint64_t bytes, std::uint64_t seq, int* ok_count,
                       int* live) {
    const auto rep = co_await client->call(bytes, mem::make_msg<Ping>(Ping{seq}));
    if (rep.ok) ++*ok_count;
    --*live;
  }

  sim::Task<> serial_calls(std::uint64_t n, sim::SimTime* worst) {
    for (std::uint64_t i = 0; i < n; ++i) {
      const sim::SimTime t0 = rig.eng.now();
      const auto rep = co_await client->call(256, mem::make_msg<Ping>(Ping{i}));
      EXPECT_TRUE(rep.ok);
      *worst = std::max(*worst, rig.eng.now() - t0);
    }
  }
};

TEST_F(RpcRig, RecvRingExhaustionStallsThenRecovers) {
  trace::Tracer tracer(rig.eng);
  tracer.install();
  RpcConfig cfg;
  cfg.recv_ring = 2;  // far below the in-flight depth: arrivals go RNR
  cfg.window = 8;
  build(cfg);
  int ok = 0, live = 32;
  for (std::uint64_t i = 0; i < 32; ++i)
    sim::co_spawn(one_call(256, i, &ok, &live));
  rig.eng.run();
  // Every call still completes: RNR parks the inbound pipeline until the
  // reaper refills the ring, it never drops or errors a message.
  EXPECT_EQ(live, 0);
  EXPECT_EQ(ok, 32);
  EXPECT_EQ(client->calls_issued(), 32u);
  EXPECT_EQ(server->calls_served(), 32u);
  EXPECT_EQ(client->retries(), 0u);
  EXPECT_EQ(client->calls_failed(), 0u);
  // ...and the stall is observable: the QP counted receiver-not-ready
  // waits while the 2-deep ring lagged the 8-deep window.
  EXPECT_GT(tracer.counter_value("rdma/rnr_waits"), 0u);
}

TEST_F(RpcRig, AmpleRingNeverGoesRnr) {
  trace::Tracer tracer(rig.eng);
  tracer.install();
  RpcConfig cfg;
  cfg.recv_ring = 64;
  cfg.window = 8;
  build(cfg);
  int ok = 0, live = 32;
  for (std::uint64_t i = 0; i < 32; ++i)
    sim::co_spawn(one_call(256, i, &ok, &live));
  rig.eng.run();
  EXPECT_EQ(ok, 32);
  EXPECT_EQ(tracer.counter_value("rdma/rnr_waits"), 0u);
}

TEST_F(RpcRig, IdleCompletionBatchFlushesImmediately) {
  build(RpcConfig{});
  // Strictly serial calls: at most one WR and one CQE exists at a time, so
  // batching must degenerate to singletons and add zero latency.
  sim::SimTime worst = 0;
  exp::run_task(rig.eng, serial_calls(8, &worst));
  // A lone completion is reaped the moment it lands (the blocking CQ wait
  // doubles as flush-on-idle): each round trip finishes in microseconds,
  // never waiting out a batch timer or the 5 ms retry timer.
  EXPECT_GT(worst, 0);
  EXPECT_LT(worst, sim::kMillisecond);
  EXPECT_EQ(client->retries(), 0u);
  // Serial traffic coalesces nothing: one WR per doorbell, one CQE per
  // poll batch, on both endpoints.
  EXPECT_EQ(client->doorbells(), client->doorbell_wrs());
  EXPECT_EQ(client->poll_batches(), client->poll_cqes());
  EXPECT_EQ(server->doorbells(), server->doorbell_wrs());
  EXPECT_EQ(server->poll_batches(), server->poll_cqes());
}

TEST_F(RpcRig, PipelinedCallsCoalesceDoorbells) {
  RpcConfig cfg;
  cfg.window = 16;
  cfg.doorbell_batch = 4;
  build(cfg);
  int ok = 0, live = 64;
  for (std::uint64_t i = 0; i < 64; ++i)
    sim::co_spawn(one_call(256, i, &ok, &live));
  rig.eng.run();
  EXPECT_EQ(ok, 64);
  // With 16 calls in flight the pump drains its queue behind shared
  // doorbells: strictly fewer doorbells than WRs.
  EXPECT_EQ(client->doorbell_wrs(), 64u);
  EXPECT_LT(client->doorbells(), client->doorbell_wrs());
}

TEST(CallTableTest, GenerationWrapsSkippingZero) {
  sim::Engine eng;
  CallTable table(eng);
  CallTable::Call& first = table.begin();
  const std::uint32_t first_id = first.id;
  EXPECT_EQ(first_id, 1u);  // slot 0, generation 1
  EXPECT_EQ(table.find(first_id), &first);
  table.end(first);
  EXPECT_EQ(table.find(first_id), nullptr);  // released id goes stale
  EXPECT_EQ(table.live(), 0u);

  // Recycle the single slot through a full generation cycle. Generation 0
  // is never issued (id 0 stays a null sentinel) and every stale id stays
  // unresolvable until the wrap.
  int zero_gens = 0;
  for (int i = 0; i < 65534; ++i) {
    CallTable::Call& c = table.begin();
    ASSERT_EQ(c.id >> 16, 0u);  // same recycled slot throughout
    if ((c.id & 0xFFFFu) == 0u) ++zero_gens;
    ASSERT_NE(c.id, first_id);  // not wrapped yet
    table.end(c);
    ASSERT_EQ(table.find(c.id), nullptr);
  }
  EXPECT_EQ(zero_gens, 0);

  // 1 + 65534 acquires so far: the next one is recycle number 65535 and
  // wraps the generation 0xFFFF -> 1, reissuing the original id. This is
  // the documented ABA window — harmless because the client window cap
  // makes a call outliving 65535 recycles of its own slot impossible.
  CallTable::Call& wrapped = table.begin();
  EXPECT_EQ(wrapped.id, first_id);
  EXPECT_EQ(table.find(first_id), &wrapped);
  EXPECT_EQ(table.live(), 1u);
  table.end(wrapped);
}

TEST(CallTableTest, DistinctSlotsForConcurrentCalls) {
  sim::Engine eng;
  CallTable table(eng);
  CallTable::Call& a = table.begin();
  CallTable::Call& b = table.begin();
  EXPECT_NE(a.id, b.id);
  EXPECT_NE(a.id >> 16, b.id >> 16);
  EXPECT_EQ(table.live(), 2u);
  EXPECT_EQ(table.find(a.id), &a);
  EXPECT_EQ(table.find(b.id), &b);
  table.end(a);
  EXPECT_EQ(table.find(a.id), nullptr);
  EXPECT_EQ(table.find(b.id), &b);  // releasing one slot can't alias another
  table.end(b);
  EXPECT_EQ(table.live(), 0u);
}

}  // namespace
}  // namespace e2e::rpc
