#include "apps/apps.hpp"

#include <gtest/gtest.h>

#include "exp/exp.hpp"
#include "testutil.hpp"

namespace e2e::apps {
namespace {

TEST(Iperf, UnidirectionalStaysUnderLineRate) {
  exp::FrontEndPair pair;
  IperfConfig cfg;
  cfg.duration = sim::kSecond / 2;
  cfg.streams_per_link = 2;
  auto r = run_iperf(pair.eng, *pair.a, *pair.b, pair.iperf_links(), cfg);
  EXPECT_GT(r.forward_gbps, 10.0);
  EXPECT_LE(r.forward_gbps, 120.0);
  EXPECT_EQ(r.reverse_gbps, 0.0);
}

TEST(Iperf, BidirectionalAddsReverseTraffic) {
  exp::FrontEndPair pair;
  IperfConfig cfg;
  cfg.duration = sim::kSecond / 2;
  cfg.bidirectional = true;
  auto r = run_iperf(pair.eng, *pair.a, *pair.b, pair.iperf_links(), cfg);
  EXPECT_GT(r.reverse_gbps, 0.0);
  EXPECT_NEAR(r.forward_gbps, r.reverse_gbps, r.forward_gbps * 0.2);
}

TEST(Iperf, NumaTuningImprovesThroughput) {
  exp::FrontEndPair p1, p2;
  IperfConfig cfg;
  cfg.bidirectional = true;
  cfg.sender_buffer_bytes = 256ull << 20;
  cfg.duration = sim::kSecond;
  cfg.numa_tuned = false;
  const auto def = run_iperf(p1.eng, *p1.a, *p1.b, p1.iperf_links(), cfg);
  cfg.numa_tuned = true;
  const auto tuned = run_iperf(p2.eng, *p2.a, *p2.b, p2.iperf_links(), cfg);
  EXPECT_GT(tuned.aggregate_gbps, def.aggregate_gbps * 1.02);
}

TEST(Iperf, SmallBufferCacheEffectReducesMemoryTraffic) {
  exp::FrontEndPair p1, p2;
  IperfConfig cfg;
  cfg.duration = sim::kSecond / 2;
  cfg.sender_buffer_bytes = 1 << 20;  // fits LLC
  run_iperf(p1.eng, *p1.a, *p1.b, p1.iperf_links(), cfg);
  const double cached_traffic =
      p1.a->channel(0).units_served() + p1.a->channel(1).units_served();
  cfg.sender_buffer_bytes = 256ull << 20;  // defeats LLC
  run_iperf(p2.eng, *p2.a, *p2.b, p2.iperf_links(), cfg);
  const double uncached_traffic =
      p2.a->channel(0).units_served() + p2.a->channel(1).units_served();
  EXPECT_LT(cached_traffic, uncached_traffic);
}

TEST(Iperf, CpuUsageIsReported) {
  exp::FrontEndPair pair;
  IperfConfig cfg;
  cfg.duration = sim::kSecond / 2;
  auto r = run_iperf(pair.eng, *pair.a, *pair.b, pair.iperf_links(), cfg);
  using metrics::CpuCategory;
  EXPECT_GT(r.usage_a.get(CpuCategory::kKernelProto), 0u);
  EXPECT_GT(r.usage_a.get(CpuCategory::kCopy), 0u);
  EXPECT_GT(r.usage_b.get(CpuCategory::kKernelProto), 0u);
}

TEST(Fio, WorkerCountsBytesAndIos) {
  e2e::test::TinyRig rig;
  mem::Tmpfs fs(*rig.a);
  auto& backing = fs.create("d", 16 << 20, numa::MemPolicy::kBind, 0);
  blk::RamBlockDevice dev(fs, backing);
  FioOptions opts;
  opts.block_bytes = 1 << 20;
  opts.duration = sim::kSecond / 10;
  auto counters = std::make_unique<FioCounters>();
  numa::Thread& th = rig.proc_a->spawn_thread();
  sim::co_spawn(fio_worker(th, dev, opts, 0, 16 << 20,
                           numa::Placement::on(0), counters.get()));
  rig.eng.run();
  EXPECT_GT(counters->ios, 0u);
  EXPECT_EQ(counters->bytes, counters->ios * opts.block_bytes);
}

TEST(Fio, RejectsRegionSmallerThanBlock) {
  e2e::test::TinyRig rig;
  mem::Tmpfs fs(*rig.a);
  auto& backing = fs.create("d", 16 << 20, numa::MemPolicy::kBind, 0);
  blk::RamBlockDevice dev(fs, backing);
  FioOptions opts;
  opts.block_bytes = 1 << 20;
  auto counters = std::make_unique<FioCounters>();
  numa::Thread& th = rig.proc_a->spawn_thread();
  EXPECT_THROW(exp::run_task(rig.eng,
                             fio_worker(th, dev, opts, 0, 1024,
                                        numa::Placement::on(0),
                                        counters.get())),
               std::invalid_argument);
}

TEST(Fio, WritesGoToOffloadCategory) {
  e2e::test::TinyRig rig;
  mem::Tmpfs fs(*rig.a);
  auto& backing = fs.create("d", 16 << 20, numa::MemPolicy::kBind, 0);
  blk::RamBlockDevice dev(fs, backing);
  FioOptions opts;
  opts.block_bytes = 1 << 20;
  opts.write = true;
  opts.duration = sim::kSecond / 20;
  auto counters = std::make_unique<FioCounters>();
  numa::Thread& th = rig.proc_a->spawn_thread();
  sim::co_spawn(fio_worker(th, dev, opts, 0, 16 << 20,
                           numa::Placement::on(0), counters.get()));
  rig.eng.run();
  EXPECT_GT(rig.proc_a->usage().get(metrics::CpuCategory::kOffload), 0u);
  // Counters exclude the I/O straddling the deadline; the device does not.
  EXPECT_GE(backing.bytes_written, counters->bytes);
  EXPECT_LE(backing.bytes_written, counters->bytes + opts.block_bytes);
}

struct GridFtpRig : ::testing::Test {
  e2e::test::TinyRig rig;
  mem::Tmpfs src_store{*rig.a};
  mem::Tmpfs dst_store{*rig.b};
  std::unique_ptr<blk::RamBlockDevice> src_dev;
  std::unique_ptr<blk::RamBlockDevice> dst_dev;
  std::unique_ptr<blk::XfsSim> src_fs;
  std::unique_ptr<blk::XfsSim> dst_fs;
  blk::File* src_file = nullptr;
  blk::File* dst_file = nullptr;

  void SetUp() override {
    auto& sb = src_store.create("s", 64 << 20, numa::MemPolicy::kBind, 0);
    auto& db = dst_store.create("d", 64 << 20, numa::MemPolicy::kBind, 0);
    src_dev = std::make_unique<blk::RamBlockDevice>(src_store, sb);
    dst_dev = std::make_unique<blk::RamBlockDevice>(dst_store, db);
    src_fs = std::make_unique<blk::XfsSim>(*rig.a, *src_dev, nullptr,
                                           std::vector<numa::Thread*>{});
    dst_fs = std::make_unique<blk::XfsSim>(*rig.b, *dst_dev, nullptr,
                                           std::vector<numa::Thread*>{});
    src_file = &src_fs->create("data", 32 << 20);
    src_file->size = src_file->allocated = 32 << 20;
    dst_file = &dst_fs->create("copy", 32 << 20);
  }

  rftp::TransferResult transfer(GridFtpConfig cfg,
                                metrics::ThroughputMeter* meter = nullptr) {
    cfg.direct_io = true;  // no page cache attached in this small rig
    std::vector<GridFtpLink> links{{rig.link.get(), 0, 0}};
    return exp::run_task(
        rig.eng,
        gridftp_transfer({rig.a.get(), src_fs.get(), src_file},
                         {rig.b.get(), dst_fs.get(), dst_file}, links,
                         32 << 20, cfg, meter));
  }
};

TEST_F(GridFtpRig, TransfersAllBytes) {
  metrics::ThroughputMeter meter(rig.eng, sim::kMillisecond);
  const auto r = transfer(GridFtpConfig{}, &meter);
  EXPECT_EQ(r.bytes, 32u << 20);
  EXPECT_EQ(meter.total_bytes(), 32u << 20);
  EXPECT_EQ(dst_file->size, 32u << 20);
}

TEST_F(GridFtpRig, SingleProcessIsSlowerThanFour) {
  GridFtpConfig one;
  one.processes = 1;
  const auto r1 = transfer(one);

  // Fresh destination for the second run.
  dst_file = &dst_fs->create("copy2", 32 << 20);
  GridFtpConfig four;
  four.processes = 4;
  const auto r4 = transfer(four);
  EXPECT_GT(r4.goodput_gbps, r1.goodput_gbps * 1.5);
}

TEST_F(GridFtpRig, StaysWellUnderRftpEfficiency) {
  // The single-threaded read->send alternation leaves the wire idle.
  GridFtpConfig cfg;
  cfg.processes = 1;
  const auto r = transfer(cfg);
  EXPECT_LT(r.goodput_gbps, 0.8 * rig.link->rate_gbps());
}

TEST_F(GridFtpRig, UsesKernelHeavyCpuProfile) {
  transfer(GridFtpConfig{});
  using metrics::CpuCategory;
  const auto a_usage = rig.a->total_usage();
  EXPECT_GT(a_usage.get(CpuCategory::kKernelProto),
            a_usage.get(CpuCategory::kUserProto));
}

}  // namespace
}  // namespace e2e::apps
