#include "apps/perftest.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "testutil.hpp"

namespace e2e::apps {
namespace {

using e2e::test::TinyRig;

struct PerftestRig : ::testing::Test {
  TinyRig rig;
  std::unique_ptr<rdma::ConnectedPair> pair;

  void SetUp() override {
    pair = std::make_unique<rdma::ConnectedPair>(*rig.dev_a, *rig.dev_b,
                                                 *rig.link);
  }

  PerftestResult bw(PerftestOp op, std::uint64_t bytes, int iters = 500) {
    PerftestConfig cfg;
    cfg.op = op;
    cfg.msg_bytes = bytes;
    cfg.iterations = iters;
    return run_bw(rig.eng, *pair, *rig.proc_a, *rig.proc_b, cfg);
  }
};

TEST_F(PerftestRig, LargeWritesReachLineRate) {
  const auto r = bw(PerftestOp::kWrite, 4 << 20, 200);
  EXPECT_GT(r.gbps, 38.0);
  EXPECT_LE(r.gbps, 40.0);
}

TEST_F(PerftestRig, LargeSendsReachLineRate) {
  const auto r = bw(PerftestOp::kSend, 1 << 20, 500);
  EXPECT_GT(r.gbps, 37.0);
}

TEST_F(PerftestRig, ReadsTrailWritesByEfficiencyFactor) {
  const auto w = bw(PerftestOp::kWrite, 4 << 20, 200);
  const auto r = bw(PerftestOp::kRead, 4 << 20, 200);
  const double eff = rig.a->costs().rdma_read_efficiency;
  EXPECT_NEAR(r.gbps / w.gbps, eff, 0.05);
}

TEST_F(PerftestRig, SmallMessagesAreRateNotBandwidthBound) {
  const auto r = bw(PerftestOp::kWrite, 4096, 2000);
  EXPECT_LT(r.gbps, 38.0);
  EXPECT_GT(r.msgs_per_sec, 1e5);
}

TEST_F(PerftestRig, PingPongLatencyTracksWireRtt) {
  PerftestConfig cfg;
  cfg.msg_bytes = 64;
  cfg.iterations = 100;
  const auto r = run_lat(rig.eng, *pair, *rig.proc_a, *rig.proc_b, cfg);
  const double half_rtt_us = sim::to_seconds(rig.link->latency()) * 1e6;
  EXPECT_GT(r.avg_lat_us, half_rtt_us);          // cannot beat the wire
  EXPECT_LT(r.avg_lat_us, half_rtt_us + 30.0);   // small software overhead
}

TEST_F(PerftestRig, MessageRateScalesDownWithSize) {
  const auto small = bw(PerftestOp::kWrite, 4096, 1000);
  const auto big = bw(PerftestOp::kWrite, 1 << 20, 200);
  EXPECT_GT(small.msgs_per_sec, big.msgs_per_sec);
}

}  // namespace
}  // namespace e2e::apps
