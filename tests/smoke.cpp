// Bring-up/calibration driver: exercises every major pipeline and prints
// the headline numbers the paper reports, for manual comparison while the
// cost model is calibrated. The gtest suites carry the real assertions.
#include <cstdio>

#include "apps/apps.hpp"
#include "exp/exp.hpp"
#include "numa/numa.hpp"
#include "rftp/rftp.hpp"
#include "sim/sim.hpp"

using namespace e2e;
using metrics::CpuCategory;

static void print_usage(const char* tag, const metrics::CpuUsage& u,
                        sim::SimDuration w) {
  std::printf(
      "  %-18s total %6.1f%% | user %6.1f%% kernel %6.1f%% copy %6.1f%% "
      "load %6.1f%% offload %6.1f%%\n",
      tag, u.total_percent(w), u.percent(CpuCategory::kUserProto, w),
      u.percent(CpuCategory::kKernelProto, w),
      u.percent(CpuCategory::kCopy, w), u.percent(CpuCategory::kLoad, w),
      u.percent(CpuCategory::kOffload, w));
}

static void stream_check() {
  sim::Engine eng;
  numa::Host host(eng, model::front_end_lan_host("fe0"));
  numa::StreamOptions opts;
  auto local = numa::run_stream_triad(eng, host, opts);
  std::printf("[stream] triad local %.1f GB/s (paper: 50)\n",
              local.triad_gBps);
}

static void motivating_iperf(bool tuned) {
  exp::FrontEndPair pair;
  apps::IperfConfig cfg;
  cfg.bidirectional = true;
  cfg.numa_tuned = tuned;
  cfg.sender_buffer_bytes = 256ull << 20;  // defeat the cache
  cfg.duration = 3 * sim::kSecond;
  auto r = run_iperf(pair.eng, *pair.a, *pair.b, pair.iperf_links(), cfg);
  std::printf("[iperf %-7s] aggregate %.1f Gbps (paper: %s)\n",
              tuned ? "tuned" : "default", r.aggregate_gbps,
              tuned ? "91.8" : "83.5");
  print_usage("host A", r.usage_a, cfg.duration);
}

static void fig4_breakdown() {
  // /dev/zero -> 40G RoCE -> /dev/null, RFTP vs iperf-style TCP.
  exp::FrontEndPair pair;
  const std::uint64_t total = 12ull << 30;

  numa::Process sp(*pair.a, "rftp-s", numa::NumaBinding::bound(0));
  numa::Process rp(*pair.b, "rftp-r", numa::NumaBinding::bound(0));
  rftp::RftpConfig cfg;
  cfg.streams = 1;
  cfg.block_bytes = 1 << 20;
  auto base_a = pair.a->total_usage();
  auto base_b = pair.b->total_usage();
  rftp::RftpSession sess({&sp, {pair.a_roce[0].get()}},
                         {&rp, {pair.b_roce[0].get()}},
                         {pair.links[0].get()}, cfg);
  rftp::ZeroSource src(total);
  rftp::NullSink dst;
  const sim::SimTime t0 = pair.eng.now();
  auto res = exp::run_task(pair.eng, sess.run(src, dst, total));
  const sim::SimDuration w = pair.eng.now() - t0;
  std::printf("[fig4 rftp] %.1f Gbps (paper 39)\n", res.goodput_gbps);
  metrics::CpuUsage both = pair.a->total_usage().since(base_a);
  both.merge(pair.b->total_usage().since(base_b));
  print_usage("rftp both", both, w);  // paper: 122% total, 56% user, 70% load
}

static void fig4_tcp() {
  exp::FrontEndPair pair;
  apps::IperfConfig cfg;
  cfg.numa_tuned = true;
  cfg.streams_per_link = 4;
  cfg.chunk_bytes = 1 << 20;
  cfg.sender_buffer_bytes = 256ull << 20;
  cfg.duration = 3 * sim::kSecond;
  std::vector<apps::IperfLink> one = {pair.iperf_links()[0]};
  auto r = run_iperf(pair.eng, *pair.a, *pair.b, one, cfg);
  std::printf("[fig4 tcp] %.1f Gbps (paper 39)\n", r.aggregate_gbps);
  metrics::CpuUsage both = r.usage_a;
  both.merge(r.usage_b);
  print_usage("tcp both", both, cfg.duration);
  // paper: 642% total; kernel 311%, copy 213%, load ~70%
}

static void fig7_iser(bool tuned, bool write) {
  exp::SanConfig scfg;
  scfg.numa_tuned = tuned;
  scfg.lun_bytes = 2ull << 30;  // placement-only; smaller keeps regions sane
  exp::SanTestbed tb(scfg);
  tb.start();
  apps::FioOptions opts;
  opts.block_bytes = 4ull << 20;
  opts.write = write;
  opts.duration = 2 * sim::kSecond;
  auto r = tb.run_fio(opts, 4);
  auto& th_ = tb.san->target_host();
  std::printf(
      "[iser %-7s %-5s] %.1f Gbps, target CPU %.0f%% | ch0 %.2f ch1 %.2f "
      "qpi01 %.2f qpi10 %.2f\n",
      tuned ? "tuned" : "default", write ? "write" : "read", r.gbps,
      r.target_cpu_pct, th_.channel(0).utilization(),
      th_.channel(1).utilization(), th_.interconnect(0, 1).utilization(),
      th_.interconnect(1, 0).utilization());
}

static void e2e_rftp(bool tuned, bool use_src_file = true,
                     bool use_dst_file = true) {
  exp::EndToEndTestbed tb(tuned, 24ull << 30);
  tb.start();
  numa::Process sp(*tb.src_fe, "rftp-c", numa::NumaBinding::os_default());
  numa::Process rp(*tb.dst_fe, "rftp-s", numa::NumaBinding::os_default());
  rftp::RftpConfig cfg;
  cfg.numa_aware = tuned;
  rftp::RftpSession sess({&sp, tb.src_roce()}, {&rp, tb.dst_roce()},
                         tb.links(), cfg);
  exp::SanSection* ssan_loc = tb.src_san.get();
  rftp::FileSource fsrc(*tb.src_fs, *tb.src_file, true,
                        [ssan_loc](std::uint64_t off, std::uint64_t) {
                          return ssan_loc->fe_node_of(off);
                        });
  rftp::MemorySource msrc(tb.dataset_bytes, numa::Placement::on(0));
  rftp::FileSink fdst(*tb.dst_fs, *tb.dst_file);
  rftp::MemorySink mdst;
  rftp::DataSource& src =
      use_src_file ? static_cast<rftp::DataSource&>(fsrc) : msrc;
  rftp::DataSink& dst =
      use_dst_file ? static_cast<rftp::DataSink&>(fdst) : mdst;
  auto res = exp::run_task(tb.eng, sess.run(src, dst, tb.dataset_bytes));
  std::printf("[e2e rftp %-7s src=%d dst=%d] %.1f Gbps (paper tuned: 91)\n",
              tuned ? "tuned" : "default", use_src_file, use_dst_file,
              res.goodput_gbps);
}

static void e2e_gridftp() {
  exp::EndToEndTestbed tb(true, 6ull << 30);
  tb.start();
  apps::GridFtpConfig cfg;
  cfg.processes = 4;
  std::vector<apps::GridFtpLink> glinks;
  for (std::size_t i = 0; i < 3; ++i)
    glinks.push_back({tb.roce_links[i].get(), tb.src_devs[i]->node(),
                      tb.dst_devs[i]->node()});
  auto res = exp::run_task(
      tb.eng, apps::gridftp_transfer({tb.src_fe.get(), tb.src_fs.get(),
                                      tb.src_file},
                                     {tb.dst_fe.get(), tb.dst_fs.get(),
                                      tb.dst_file},
                                     glinks, tb.dataset_bytes, cfg));
  std::printf("[e2e gridftp] %.1f Gbps (paper: 29)\n", res.goodput_gbps);
}

static void wan_rftp(int streams, std::uint64_t block) {
  exp::WanTestbed tb;
  rftp::RftpConfig cfg;
  cfg.streams = streams;
  cfg.block_bytes = block;
  cfg.credits_per_stream = 16;
  rftp::RftpSession sess({tb.a_proc.get(), {tb.a_dev.get()}},
                         {tb.b_proc.get(), {tb.b_dev.get()}},
                         {tb.link.get()}, cfg);
  const std::uint64_t total = 24ull << 30;
  rftp::MemorySource src(total, numa::Placement::on(0));
  rftp::MemorySink dst;
  auto res = exp::run_task(tb.eng, sess.run(src, dst, total));
  std::printf("[wan rftp s=%d block=%lluMiB] %.1f Gbps (paper peak 38.8)\n",
              streams, static_cast<unsigned long long>(block >> 20),
              res.goodput_gbps);
}


static void e2e_bidir_probe() {
  exp::EndToEndTestbed tb(true, 12ull << 30);
  tb.add_reverse_files();
  tb.start();
  numa::Process sp(*tb.src_fe, "c1", numa::NumaBinding::os_default());
  numa::Process rp(*tb.dst_fe, "s1", numa::NumaBinding::os_default());
  numa::Process sp2(*tb.dst_fe, "c2", numa::NumaBinding::os_default());
  numa::Process rp2(*tb.src_fe, "s2", numa::NumaBinding::os_default());
  rftp::RftpConfig cfg;
  rftp::RftpSession fwd({&sp, tb.src_roce()}, {&rp, tb.dst_roce()}, tb.links(), cfg);
  rftp::RftpSession rev({&sp2, tb.dst_roce()}, {&rp2, tb.src_roce()}, tb.links(), cfg);
  exp::SanSection* ss = tb.src_san.get();
  exp::SanSection* ds = tb.dst_san.get();
  rftp::FileSource fsrc(*tb.src_fs, *tb.src_file, true,
                        [ss](std::uint64_t off, std::uint64_t) {
                          return ss->fe_node_of(off);
                        });
  rftp::FileSink fdst(*tb.dst_fs, *tb.dst_file);
  rftp::FileSource rsrc(*tb.dst_fs, *tb.rev_src_file, true,
                        [ds](std::uint64_t off, std::uint64_t) {
                          return ds->fe_node_of(off);
                        });
  rftp::FileSink rdst(*tb.src_fs, *tb.rev_dst_file);
  const sim::SimTime t0 = tb.eng.now();
  auto done = std::make_shared<int>(0);
  sim::co_spawn([](rftp::RftpSession& s, rftp::DataSource& src, rftp::DataSink& dst,
                   std::uint64_t n, std::shared_ptr<int> d) -> sim::Task<> {
    (void)co_await s.run(src, dst, n); ++*d;
  }(fwd, fsrc, fdst, 12ull << 30, done));
  sim::co_spawn([](rftp::RftpSession& s, rftp::DataSource& src, rftp::DataSink& dst,
                   std::uint64_t n, std::shared_ptr<int> d) -> sim::Task<> {
    (void)co_await s.run(src, dst, n); ++*d;
  }(rev, rsrc, rdst, 12ull << 30, done));
  tb.eng.run();
  const double agg = 2.0 * 12 * 1024 * 1024 * 1024 * 8.0 / (tb.eng.now() - t0);
  std::printf("[bidir] agg %.1f Gbps (done=%d) fwd steal %llu/%llu rev %llu/%llu\n",
              agg, *done,
              (unsigned long long)fwd.stolen_claims,
              (unsigned long long)fwd.local_claims,
              (unsigned long long)rev.stolen_claims,
              (unsigned long long)rev.local_claims);
  auto util = [&](const char* tag, sim::Resource& r) {
    std::printf("  %-22s %.2f\n", tag, r.utilization());
  };
  util("src_fe ch0", tb.src_fe->channel(0));
  util("src_fe ch1", tb.src_fe->channel(1));
  util("src tgt ch0", tb.src_san->target_host().channel(0));
  util("src tgt ch1", tb.src_san->target_host().channel(1));
  util("src_fe qpi01", tb.src_fe->interconnect(0, 1));
  util("src_fe qpi10", tb.src_fe->interconnect(1, 0));
  util("dst_fe ch0", tb.dst_fe->channel(0));
  util("dst_fe ch1", tb.dst_fe->channel(1));
  util("src tgt qpi01", tb.src_san->target_host().interconnect(0, 1));
  util("src ib0 a2b", tb.src_san->target_host().channel(0));  // placeholder
  util("roce0 a2b", tb.roce_links[0]->dir(0));
  util("roce0 b2a", tb.roce_links[0]->dir(1));
  util("roce1 a2b", tb.roce_links[1]->dir(0));
  util("roce2 a2b", tb.roce_links[2]->dir(0));
}

int main() {
  stream_check();
  motivating_iperf(false);
  motivating_iperf(true);
  fig4_breakdown();
  fig4_tcp();
  fig7_iser(true, false);
  fig7_iser(true, true);
  fig7_iser(false, false);
  fig7_iser(false, true);
  e2e_rftp(true);
  e2e_rftp(true, true, false);
  e2e_rftp(true, false, true);
  e2e_rftp(true, false, false);
  e2e_gridftp();
  e2e_bidir_probe();
  wan_rftp(1, 4ull << 20);
  wan_rftp(4, 8ull << 20);
  std::puts("smoke complete");
  return 0;
}
