// Shared fixtures and rig builders for the test suite.
#pragma once

#include <memory>

#include "exp/runner.hpp"
#include "model/host_profile.hpp"
#include "net/link.hpp"
#include "numa/numa.hpp"
#include "rdma/rdma.hpp"
#include "sim/sim.hpp"

namespace e2e::test {

/// Small 2-node/2-cores-per-node host profile with round numbers so tests
/// can compute expected service times by hand:
///   cores: 2 GHz; memory: 10 GB/s per node; QPI: 5 GB/s per direction.
inline model::HostProfile tiny_host(const std::string& name) {
  model::HostProfile h;
  h.name = name;
  h.numa_nodes = 2;
  h.cores_per_node = 2;
  h.core_ghz = 2.0;
  h.mem_gbytes = 16;
  h.mem_gBps_per_node = 10.0;
  h.interconnect_gBps = 5.0;
  h.nics = {{"nic0", model::LinkType::kRoCE, 40.0, 9000, 0, 63.0},
            {"nic1", model::LinkType::kRoCE, 40.0, 9000, 1, 63.0}};
  return h;
}

/// Two tiny hosts joined by one 40G link, with one RDMA device each.
struct TinyRig {
  sim::Engine eng;
  std::unique_ptr<numa::Host> a;
  std::unique_ptr<numa::Host> b;
  std::unique_ptr<rdma::Device> dev_a;
  std::unique_ptr<rdma::Device> dev_b;
  std::unique_ptr<net::Link> link;
  std::unique_ptr<numa::Process> proc_a;
  std::unique_ptr<numa::Process> proc_b;

  TinyRig() {
    a = std::make_unique<numa::Host>(eng, tiny_host("a"));
    b = std::make_unique<numa::Host>(eng, tiny_host("b"));
    dev_a = std::make_unique<rdma::Device>(*a, a->profile().nics[0]);
    dev_b = std::make_unique<rdma::Device>(*b, b->profile().nics[0]);
    link = net::make_roce_lan(eng, "t");
    proc_a = std::make_unique<numa::Process>(*a, "pa",
                                             numa::NumaBinding::bound(0));
    proc_b = std::make_unique<numa::Process>(*b, "pb",
                                             numa::NumaBinding::bound(0));
  }
};

/// Makes a registered buffer descriptor on `host` at `node`.
inline mem::Buffer make_buffer(numa::Host& host, std::uint64_t bytes,
                               numa::NodeId node) {
  mem::Buffer buf;
  buf.bytes = bytes;
  buf.placement = host.alloc(bytes, numa::MemPolicy::kBind, node, node);
  buf.registered = true;
  return buf;
}

}  // namespace e2e::test
