#include "exp/runner.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "sim/sim.hpp"

#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define E2E_HAS_LSAN 1
#endif
#elif defined(__SANITIZE_ADDRESS__)
#define E2E_HAS_LSAN 1
#endif
#ifdef E2E_HAS_LSAN
#include <sanitizer/lsan_interface.h>
#endif

namespace e2e::exp {
namespace {

sim::Task<int> value_after(sim::Engine& eng, sim::SimDuration d, int v) {
  co_await sim::Delay{eng, d};
  co_return v;
}

TEST(Runner, ReturnsTaskValue) {
  sim::Engine eng;
  EXPECT_EQ(run_task(eng, value_after(eng, 100, 42)), 42);
  EXPECT_EQ(eng.now(), 100u);
}

sim::Task<> throws_runtime(sim::Engine& eng) {
  co_await sim::Delay{eng, 10};
  throw std::runtime_error("boom");
}

TEST(Runner, PropagatesExceptions) {
  sim::Engine eng;
  EXPECT_THROW(run_task(eng, throws_runtime(eng)), std::runtime_error);
}

sim::Task<int> throws_with_value(sim::Engine& eng) {
  co_await sim::Delay{eng, 10};
  throw std::logic_error("boom");
  co_return 1;
}

TEST(Runner, PropagatesExceptionsFromValueTasks) {
  sim::Engine eng;
  EXPECT_THROW(run_task(eng, throws_with_value(eng)), std::logic_error);
}

sim::Task<> waits_forever(sim::ManualEvent& ev) { co_await ev.wait(); }

TEST(Runner, DetectsDeadlock) {
  sim::Engine eng;
  sim::ManualEvent never(eng);
  // The deadlocked coroutine frame is never resumed and so never freed —
  // that leak is the scenario under test, not a bug; hide it from LSan.
#ifdef E2E_HAS_LSAN
  __lsan_disable();
#endif
  EXPECT_THROW(run_task(eng, waits_forever(never)), std::runtime_error);
#ifdef E2E_HAS_LSAN
  __lsan_enable();
#endif
}

TEST(Runner, NestedRunTasksCompose) {
  sim::Engine eng;
  const int v = run_task(eng, value_after(eng, 5, 1));
  const int w = run_task(eng, value_after(eng, 5, 2));
  EXPECT_EQ(v + w, 3);
  EXPECT_EQ(eng.now(), 10u);
}

}  // namespace
}  // namespace e2e::exp
