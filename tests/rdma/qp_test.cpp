#include "rdma/rdma.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "exp/runner.hpp"
#include "metrics/throughput.hpp"
#include "testutil.hpp"

namespace e2e::rdma {
namespace {

using e2e::test::TinyRig;
using e2e::test::make_buffer;

struct QpRig : ::testing::Test {
  TinyRig rig;
  std::unique_ptr<ConnectedPair> pair;
  numa::Thread* tha = nullptr;
  numa::Thread* thb = nullptr;

  void SetUp() override {
    pair = std::make_unique<ConnectedPair>(*rig.dev_a, *rig.dev_b, *rig.link);
    tha = &rig.proc_a->spawn_thread();
    thb = &rig.proc_b->spawn_thread();
  }
};

sim::Task<> send_one(QueuePair& qp, numa::Thread& th, mem::Buffer* buf,
                     std::uint64_t bytes, std::uint32_t imm,
                     mem::MsgPtr payload = nullptr) {
  SendWr wr;
  wr.op = Opcode::kSend;
  wr.wr_id = 1;
  wr.local = buf;
  wr.bytes = bytes;
  wr.imm = imm;
  wr.payload = std::move(payload);
  co_await qp.post_send(th, wr);
}

TEST_F(QpRig, SendConsumesPostedReceive) {
  auto sbuf = make_buffer(*rig.a, 4096, 0);
  auto rbuf = make_buffer(*rig.b, 4096, 0);
  exp::run_task(rig.eng,
                pair->b().post_recv(*thb, RecvWr{77, &rbuf}));
  exp::run_task(rig.eng, send_one(pair->a(), *tha, &sbuf, 4096, 5));
  rig.eng.run();
  auto wc = pair->b().recv_cq().try_poll();
  ASSERT_TRUE(wc.has_value());
  EXPECT_EQ(wc->wr_id, 77u);
  EXPECT_EQ(wc->byte_len, 4096u);
  EXPECT_EQ(wc->imm, 5u);
  EXPECT_EQ(wc->op, Opcode::kSend);
}

TEST_F(QpRig, SendWithoutReceiveWaitsUntilPosted) {
  auto sbuf = make_buffer(*rig.a, 4096, 0);
  auto rbuf = make_buffer(*rig.b, 4096, 0);
  exp::run_task(rig.eng, send_one(pair->a(), *tha, &sbuf, 4096, 0));
  rig.eng.run();
  EXPECT_FALSE(pair->b().recv_cq().try_poll().has_value());  // RNR
  exp::run_task(rig.eng, pair->b().post_recv(*thb, RecvWr{1, &rbuf}));
  rig.eng.run();
  EXPECT_TRUE(pair->b().recv_cq().try_poll().has_value());
}

TEST_F(QpRig, PayloadTravelsToReceiver) {
  auto sbuf = make_buffer(*rig.a, 256, 0);
  auto rbuf = make_buffer(*rig.b, 256, 0);
  exp::run_task(rig.eng, pair->b().post_recv(*thb, RecvWr{1, &rbuf}));
  exp::run_task(rig.eng, send_one(pair->a(), *tha, &sbuf, 64, 0,
                                  mem::make_msg<int>(42)));
  rig.eng.run();
  auto wc = pair->b().recv_cq().try_poll();
  ASSERT_TRUE(wc.has_value());
  ASSERT_NE(wc->as<int>(), nullptr);
  EXPECT_EQ(*wc->as<int>(), 42);
}

TEST_F(QpRig, WriteIsSilentAtResponder) {
  auto sbuf = make_buffer(*rig.a, 1 << 20, 0);
  auto target = make_buffer(*rig.b, 1 << 20, 0);
  SendWr wr;
  wr.op = Opcode::kWrite;
  wr.wr_id = 9;
  wr.local = &sbuf;
  wr.bytes = 1 << 20;
  wr.remote = RemoteKey{&target};
  exp::run_task(rig.eng, pair->a().post_send(*tha, wr));
  rig.eng.run();
  // Local send completion, no remote CQE.
  auto swc = pair->a().send_cq().try_poll();
  ASSERT_TRUE(swc.has_value());
  EXPECT_EQ(swc->wr_id, 9u);
  EXPECT_FALSE(pair->b().recv_cq().try_poll().has_value());
  EXPECT_EQ(pair->b().bytes_delivered(), 1u << 20);
}

TEST_F(QpRig, WriteImmConsumesReceiveAndSignals) {
  auto sbuf = make_buffer(*rig.a, 4096, 0);
  auto target = make_buffer(*rig.b, 4096, 0);
  auto tiny = make_buffer(*rig.b, 64, 0);
  exp::run_task(rig.eng, pair->b().post_recv(*thb, RecvWr{3, &tiny}));
  SendWr wr;
  wr.op = Opcode::kWriteImm;
  wr.local = &sbuf;
  wr.bytes = 4096;
  wr.remote = RemoteKey{&target};
  wr.imm = 123;
  exp::run_task(rig.eng, pair->a().post_send(*tha, wr));
  rig.eng.run();
  auto wc = pair->b().recv_cq().try_poll();
  ASSERT_TRUE(wc.has_value());
  EXPECT_EQ(wc->op, Opcode::kWriteImm);
  EXPECT_EQ(wc->imm, 123u);
  EXPECT_EQ(wc->wr_id, 3u);
}

TEST_F(QpRig, ReadPullsRemoteDataWithoutRemoteCpu) {
  auto local = make_buffer(*rig.a, 1 << 20, 0);
  auto remote = make_buffer(*rig.b, 1 << 20, 0);
  const auto b_usage_before = rig.b->total_usage().total();
  SendWr wr;
  wr.op = Opcode::kRead;
  wr.wr_id = 4;
  wr.local = &local;
  wr.bytes = 1 << 20;
  wr.remote = RemoteKey{&remote};
  exp::run_task(rig.eng, pair->a().post_send(*tha, wr));
  rig.eng.run();
  auto wc = pair->a().send_cq().try_poll();
  ASSERT_TRUE(wc.has_value());
  EXPECT_EQ(wc->op, Opcode::kRead);
  EXPECT_EQ(wc->byte_len, 1u << 20);
  EXPECT_EQ(rig.b->total_usage().total(), b_usage_before);  // zero CPU
}

TEST_F(QpRig, UnregisteredBufferIsRejected) {
  mem::Buffer raw;
  raw.bytes = 4096;
  raw.placement = numa::Placement::on(0);
  SendWr wr;
  wr.op = Opcode::kSend;
  wr.local = &raw;
  wr.bytes = 4096;
  EXPECT_THROW(exp::run_task(rig.eng, pair->a().post_send(*tha, wr)),
               std::logic_error);
}

TEST_F(QpRig, OneSidedWithoutRemoteKeyIsRejected) {
  auto sbuf = make_buffer(*rig.a, 4096, 0);
  SendWr wr;
  wr.op = Opcode::kWrite;
  wr.local = &sbuf;
  wr.bytes = 4096;
  EXPECT_THROW(exp::run_task(rig.eng, pair->a().post_send(*tha, wr)),
               std::invalid_argument);
}

TEST_F(QpRig, SendsCompleteInOrder) {
  auto sbuf = make_buffer(*rig.a, 1 << 20, 0);
  auto target = make_buffer(*rig.b, 1 << 20, 0);
  for (std::uint64_t i = 1; i <= 5; ++i) {
    SendWr wr;
    wr.op = Opcode::kWrite;
    wr.wr_id = i;
    wr.local = &sbuf;
    wr.bytes = 1 << 20;
    wr.remote = RemoteKey{&target};
    exp::run_task(rig.eng, pair->a().post_send(*tha, wr));
  }
  rig.eng.run();
  for (std::uint64_t i = 1; i <= 5; ++i) {
    auto wc = pair->a().send_cq().try_poll();
    ASSERT_TRUE(wc.has_value());
    EXPECT_EQ(wc->wr_id, i);
  }
}

sim::Task<> post_writes(QueuePair& qp, numa::Thread& th, mem::Buffer* local,
                        mem::Buffer* remote, int n) {
  for (int i = 0; i < n; ++i) {
    SendWr wr;
    wr.op = Opcode::kWrite;
    wr.wr_id = static_cast<std::uint64_t>(i);
    wr.local = local;
    wr.bytes = local->bytes;
    wr.remote = RemoteKey{remote};
    co_await qp.post_send(th, wr);
  }
}

TEST_F(QpRig, WriteThroughputApproachesLineRate) {
  auto sbuf = make_buffer(*rig.a, 4 << 20, 0);
  auto target = make_buffer(*rig.b, 4 << 20, 0);
  const int n = 100;
  exp::run_task(rig.eng, post_writes(pair->a(), *tha, &sbuf, &target, n));
  rig.eng.run();
  const double gbps = metrics::gbps(pair->b().bytes_delivered(),
                                    rig.eng.now());
  EXPECT_GT(gbps, 36.0);  // 40G link minus headers/latency
  EXPECT_LE(gbps, 40.0);
}

TEST_F(QpRig, ReadSlowerThanWriteByEfficiencyFactor) {
  auto local = make_buffer(*rig.a, 4 << 20, 0);
  auto remote = make_buffer(*rig.b, 4 << 20, 0);
  const int n = 50;
  // Writes.
  for (int i = 0; i < n; ++i) {
    SendWr wr;
    wr.op = Opcode::kWrite;
    wr.local = &local;
    wr.bytes = 4 << 20;
    wr.remote = RemoteKey{&remote};
    exp::run_task(rig.eng, pair->a().post_send(*tha, wr));
  }
  rig.eng.run();
  const double write_time = static_cast<double>(rig.eng.now());

  TinyRig rig2;
  ConnectedPair pair2(*rig2.dev_a, *rig2.dev_b, *rig2.link);
  numa::Thread& th2 = rig2.proc_a->spawn_thread();
  auto local2 = make_buffer(*rig2.a, 4 << 20, 0);
  auto remote2 = make_buffer(*rig2.b, 4 << 20, 0);
  for (int i = 0; i < n; ++i) {
    SendWr wr;
    wr.op = Opcode::kRead;
    wr.wr_id = static_cast<std::uint64_t>(i);
    wr.local = &local2;
    wr.bytes = 4 << 20;
    wr.remote = RemoteKey{&remote2};
    exp::run_task(rig2.eng, pair2.a().post_send(th2, wr));
  }
  rig2.eng.run();
  const double read_time = static_cast<double>(rig2.eng.now());
  const double eff = rig.a->costs().rdma_read_efficiency;
  EXPECT_NEAR(write_time / read_time, eff, 0.05);
}

TEST_F(QpRig, InjectedFaultFailsCompletionAndDropsPayload) {
  auto sbuf = make_buffer(*rig.a, 1 << 20, 0);
  auto target = make_buffer(*rig.b, 1 << 20, 0);
  rig.link->inject_failures(net::Direction::kAtoB, 1);
  SendWr wr;
  wr.op = Opcode::kWrite;
  wr.wr_id = 1;
  wr.local = &sbuf;
  wr.bytes = 1 << 20;
  wr.remote = RemoteKey{&target};
  exp::run_task(rig.eng, pair->a().post_send(*tha, wr));
  rig.eng.run();
  auto wc = pair->a().send_cq().try_poll();
  ASSERT_TRUE(wc.has_value());
  EXPECT_FALSE(wc->success);
  EXPECT_EQ(pair->b().bytes_delivered(), 0u);  // nothing arrived

  // The next transfer succeeds (injection is consumed).
  wr.wr_id = 2;
  exp::run_task(rig.eng, pair->a().post_send(*tha, wr));
  rig.eng.run();
  wc = pair->a().send_cq().try_poll();
  ASSERT_TRUE(wc.has_value());
  EXPECT_TRUE(wc->success);
  EXPECT_EQ(pair->b().bytes_delivered(), 1u << 20);
}

TEST_F(QpRig, InjectedFaultOnReadResponse) {
  auto local = make_buffer(*rig.a, 1 << 20, 0);
  auto remote = make_buffer(*rig.b, 1 << 20, 0);
  rig.link->inject_failures(net::Direction::kBtoA, 1);  // read responses ride the reverse dir
  SendWr wr;
  wr.op = Opcode::kRead;
  wr.wr_id = 7;
  wr.local = &local;
  wr.bytes = 1 << 20;
  wr.remote = RemoteKey{&remote};
  exp::run_task(rig.eng, pair->a().post_send(*tha, wr));
  rig.eng.run();
  auto wc = pair->a().send_cq().try_poll();
  ASSERT_TRUE(wc.has_value());
  EXPECT_EQ(wc->op, Opcode::kRead);
  EXPECT_FALSE(wc->success);
}

TEST_F(QpRig, DoubleConnectThrows) {
  EXPECT_THROW(QueuePair::connect(pair->a(), pair->b(), *rig.link),
               std::logic_error);
}

TEST_F(QpRig, EstablishChargesSetupAndRtt) {
  const auto t0 = rig.eng.now();
  exp::run_task(rig.eng, pair->establish(*tha, *thb));
  EXPECT_GE(rig.eng.now() - t0, rig.link->rtt());
  EXPECT_GT(rig.proc_a->usage().total(), 0u);
  EXPECT_GT(rig.proc_b->usage().total(), 0u);
}

TEST_F(QpRig, RegistrationChargesCpuAndMarksBuffer) {
  ProtectionDomain pd(*rig.a);
  mem::Buffer buf;
  buf.bytes = 1 << 20;
  buf.placement = numa::Placement::on(0);
  const auto before = rig.proc_a->usage().total();
  exp::run_task(rig.eng, pd.register_buffer(*tha, buf));
  EXPECT_TRUE(buf.registered);
  EXPECT_GT(rig.proc_a->usage().total(), before);
}

}  // namespace
}  // namespace e2e::rdma
