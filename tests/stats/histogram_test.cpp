#include "stats/histogram.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace e2e::stats {
namespace {

// Field-by-field equality (Histogram has no operator==; tests compare the
// full observable state, buckets included).
void expect_same(const Histogram& a, const Histogram& b) {
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.min(), b.min());
  EXPECT_EQ(a.max(), b.max());
  EXPECT_DOUBLE_EQ(a.mean(), b.mean());
  for (std::size_t i = 0; i < Histogram::kSlots; ++i)
    ASSERT_EQ(a.bucket_count(i), b.bucket_count(i)) << "slot " << i;
  for (double q : {0.0, 0.5, 0.9, 0.99, 0.999, 1.0})
    EXPECT_EQ(a.value_at_quantile(q), b.value_at_quantile(q)) << "q=" << q;
}

// Deterministic value stream (splitmix64): the goldens must not depend on
// library RNG implementations.
std::uint64_t mix(std::uint64_t& s) {
  s += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = s;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

TEST(Histogram, PowersOfTwoLandOnTheirOwnBucketBoundary) {
  // The headline exactness contract: every power of two up to the
  // trackable limit is itself a bucket lower bound, so percentiles never
  // smear a 2^k spike into the neighbouring bucket.
  for (int k = 0; k <= 42; ++k) {
    const std::uint64_t v = 1ull << k;
    EXPECT_EQ(Histogram::bucket_lower(Histogram::index_of(v)), v) << "k=" << k;
  }
}

TEST(Histogram, BucketBoundsBracketEveryValue) {
  std::uint64_t s = 42;
  std::vector<std::uint64_t> probe = {0, 1, 15, 16, 17, 31, 32, 1000,
                                      Histogram::kMaxTrackable};
  for (int i = 0; i < 10000; ++i)
    probe.push_back(mix(s) & Histogram::kMaxTrackable);
  for (const std::uint64_t v : probe) {
    const std::size_t idx = Histogram::index_of(v);
    ASSERT_LT(idx, Histogram::kSlots);
    EXPECT_LE(Histogram::bucket_lower(idx), v);
    EXPECT_LT(v, Histogram::bucket_upper(idx));
    // Log-linear contract: <= 1/16 relative bucket width everywhere.
    if (v >= Histogram::kSubBuckets) {
      EXPECT_LE(Histogram::bucket_upper(idx) - Histogram::bucket_lower(idx),
                Histogram::bucket_lower(idx) / 16);
    }
  }
}

TEST(Histogram, IndexIsMonotoneAcrossBoundaries) {
  for (std::size_t i = 0; i + 1 < Histogram::kSlots; ++i) {
    EXPECT_LT(Histogram::bucket_lower(i), Histogram::bucket_lower(i + 1));
    EXPECT_EQ(Histogram::index_of(Histogram::bucket_lower(i)), i);
    EXPECT_EQ(Histogram::index_of(Histogram::bucket_upper(i) - 1), i);
  }
}

TEST(Histogram, ValuesAboveTrackableClampButMaxStaysExact) {
  Histogram h;
  h.record(Histogram::kMaxTrackable + 12345);
  EXPECT_EQ(Histogram::index_of(Histogram::kMaxTrackable + 12345),
            Histogram::kSlots - 1);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.max(), Histogram::kMaxTrackable + 12345);
}

TEST(Histogram, EmptyHistogramReportsZeros) {
  const Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.p50(), 0u);
  EXPECT_EQ(h.p999(), 0u);
}

TEST(Histogram, SingleValueDistributionReportsThatValueAtEveryQuantile) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.record(4096);
  for (double q : {0.0, 0.5, 0.9, 0.99, 0.999, 1.0})
    EXPECT_EQ(h.value_at_quantile(q), 4096u) << "q=" << q;
}

TEST(Histogram, QuantilesOfSmallExactValuesAreExact) {
  // Values below kSubBuckets sit in unit-width buckets, so quantiles on
  // them are exact, not approximate.
  Histogram h;
  for (std::uint64_t v = 1; v <= 10; ++v) h.record(v);
  EXPECT_EQ(h.p50(), 5u);
  EXPECT_EQ(h.value_at_quantile(0.1), 1u);
  EXPECT_EQ(h.value_at_quantile(1.0), 10u);
}

TEST(Histogram, MergeIsCommutative) {
  Histogram a, b;
  std::uint64_t s = 7;
  for (int i = 0; i < 5000; ++i) a.record(mix(s) % 1000000);
  for (int i = 0; i < 3000; ++i) b.record(mix(s) % 50);
  Histogram ab = a;
  ab.merge(b);
  Histogram ba = b;
  ba.merge(a);
  expect_same(ab, ba);
}

TEST(Histogram, MergeIsAssociative) {
  Histogram a, b, c;
  std::uint64_t s = 99;
  for (int i = 0; i < 2000; ++i) a.record(mix(s) % (1ull << 20));
  for (int i = 0; i < 2000; ++i) b.record(mix(s) % (1ull << 30));
  for (int i = 0; i < 2000; ++i) c.record(mix(s) % 16);
  Histogram left = a;  // (a + b) + c
  left.merge(b);
  left.merge(c);
  Histogram bc = b;  // a + (b + c)
  bc.merge(c);
  Histogram right = a;
  right.merge(bc);
  expect_same(left, right);
}

TEST(Histogram, ShardedMergeEqualsSingleInstanceGolden) {
  // The PDES-sharding contract: recording a stream into N shards and
  // merging must equal recording the whole stream into one instance.
  Histogram whole;
  Histogram shards[4];
  std::uint64_t s = 1234;
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t v = mix(s) & Histogram::kMaxTrackable;
    whole.record(v);
    shards[i % 4].record(v);
  }
  Histogram merged;
  for (const Histogram& sh : shards) merged.merge(sh);
  expect_same(whole, merged);
}

TEST(Histogram, MergeWithEmptyIsIdentity) {
  Histogram a;
  std::uint64_t s = 5;
  for (int i = 0; i < 100; ++i) a.record(mix(s) % 100000);
  Histogram b = a;
  b.merge(Histogram{});
  expect_same(a, b);
}

// --- Bulk add (the fast-forward closed-form fill) ---

TEST(Histogram, BulkAddIsBitIdenticalToSingleAdds) {
  // The fast-forward exactness contract: record(v, n) must land on the
  // exact same state as n record(v) calls — buckets, count, wrapping sum,
  // extrema. Sweep values across bucket regimes (linear slots, every
  // log-linear scale, the clamp bucket) and counts across 1..large.
  const std::uint64_t values[] = {0,    1,      17,     255,   256,
                                  257,  4096,   99999,  1u << 20,
                                  (1ull << 40) + 12345, Histogram::kMaxTrackable,
                                  ~0ull /* clamps */};
  const std::uint64_t counts[] = {1, 2, 3, 1000, 65537};
  for (const std::uint64_t v : values) {
    for (const std::uint64_t n : counts) {
      Histogram bulk, singles;
      bulk.record(v, n);
      for (std::uint64_t i = 0; i < n; ++i) singles.record(v);
      ASSERT_TRUE(bulk.identical(singles)) << "v=" << v << " n=" << n;
      expect_same(bulk, singles);
    }
  }
}

TEST(Histogram, BulkAddOnPopulatedHistogramMatchesSingles) {
  // Bulk adds interleave with ordinary recording in fast-forwarded runs;
  // the equivalence must hold from any starting state, not just empty.
  Histogram bulk, singles;
  std::uint64_t s = 42;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = mix(s) % (1ull << 24);
    bulk.record(v);
    singles.record(v);
  }
  bulk.record(777777, 5000);
  for (int i = 0; i < 5000; ++i) singles.record(777777);
  ASSERT_TRUE(bulk.identical(singles));
  expect_same(bulk, singles);
}

TEST(Histogram, BulkAddZeroIsIdentity) {
  Histogram h;
  h.record(123);
  Histogram before = h;
  h.record(456, 0);  // n = 0: no count, and 456 must not touch min/max
  ASSERT_TRUE(h.identical(before));
}

TEST(Histogram, MergeAssociativityHoldsWithBulkFilledHistograms) {
  // Sharded-merge contract extended to bulk fills: a bulk-filled shard
  // must merge exactly like the equivalent singles-filled shard, in any
  // association order.
  Histogram a, b_bulk, b_singles, c;
  std::uint64_t s = 31337;
  for (int i = 0; i < 2000; ++i) a.record(mix(s) % (1ull << 16));
  b_bulk.record(1024, 9999);
  b_bulk.record(3, 77);
  for (int i = 0; i < 9999; ++i) b_singles.record(1024);
  for (int i = 0; i < 77; ++i) b_singles.record(3);
  for (int i = 0; i < 2000; ++i) c.record(mix(s) % (1ull << 36));

  Histogram left = a;  // (a + b_bulk) + c
  left.merge(b_bulk);
  left.merge(c);
  Histogram bc = b_singles;  // a + (b_singles + c)
  bc.merge(c);
  Histogram right = a;
  right.merge(bc);
  ASSERT_TRUE(left.identical(right));
  expect_same(left, right);
}

TEST(Histogram, DeltaTimesKEqualsKIntervals) {
  // The span-collapse identity end to end: snapshot A, run one period,
  // snapshot B, then add_scaled(B - A, k) must equal running k periods.
  Histogram h;
  std::uint64_t s = 9;
  h.record(0);       // pin the extrema so the period values fall strictly
  h.record(100000);  // inside [min, max] and the delta is replayable
  for (int i = 0; i < 500; ++i) h.record(mix(s) % 100000);  // warmup state
  const Histogram snap_a = h;
  const std::uint64_t period[] = {12, 999, 4321, 70000};  // within warmup range
  for (const std::uint64_t v : period) h.record(v);
  const Histogram snap_b = h;
  Histogram d;
  ASSERT_TRUE(Histogram::delta(snap_a, snap_b, d));

  constexpr std::uint64_t k = 1000;
  Histogram collapsed = snap_b;
  collapsed.add_scaled(d, k);
  Histogram replayed = snap_b;
  for (std::uint64_t i = 0; i < k; ++i)
    for (const std::uint64_t v : period) replayed.record(v);
  ASSERT_TRUE(collapsed.identical(replayed));
  expect_same(collapsed, replayed);
}

TEST(Histogram, HotBucketPast2To32KeepsQuantilesExact) {
  // Regression: bucket counters were uint32, so a hot bucket wrapped past
  // 2^32 samples under long Mops/s RPC runs — the wrapped bucket made
  // cumulative ranks undershoot and quantiles collapse toward the tail.
  // Counters are uint64 now; a bucket holding > 2^32 entries must still
  // report exact counts and sane quantiles.
  constexpr std::uint64_t kHot = (1ull << 32) + 12345;
  Histogram h;
  h.record(4096, kHot);  // bulk fill: one bucket, past the uint32 limit
  h.record(1ull << 30, 7);
  EXPECT_EQ(h.bucket_count(Histogram::index_of(4096)), kHot);
  EXPECT_EQ(h.count(), kHot + 7);
  // Quantiles report the bucket's inclusive upper bound (4096 lands in
  // [4096, 4352)); with wrapped uint32 counters they collapsed to the
  // 2^30 tail instead.
  EXPECT_EQ(h.p50(), 4351u);
  EXPECT_EQ(h.p999(), 4351u);  // the tail bucket holds only 7 of ~4.3e9
  EXPECT_EQ(h.value_at_quantile(1.0), 1ull << 30);
}

TEST(Histogram, MergeAndDeltaStayExactAcross2To32) {
  // The overflow fix must preserve the algebra: shard merges and delta*k
  // folds that cross the former uint32 boundary stay exact in uint64.
  constexpr std::uint64_t kHalf = 1ull << 31;
  Histogram a, b;
  a.record(100, kHalf + 99);
  b.record(100, kHalf + 901);
  Histogram merged = a;
  merged.merge(b);
  EXPECT_EQ(merged.bucket_count(Histogram::index_of(100)),
            (1ull << 32) + 1000);

  // delta x k with a period crossing 2^32 in the scaled result.
  Histogram base;
  base.record(0);
  base.record(1 << 20);
  const Histogram snap_a = base;
  base.record(500, 3);
  const Histogram snap_b = base;
  Histogram d;
  ASSERT_TRUE(Histogram::delta(snap_a, snap_b, d));
  Histogram folded = snap_b;
  constexpr std::uint64_t k = (1ull << 32) / 3 + 17;
  folded.add_scaled(d, k);
  EXPECT_EQ(folded.bucket_count(Histogram::index_of(500)), 3 * (k + 1));
  EXPECT_EQ(folded.count(), 3 * (k + 1) + 2);
  EXPECT_EQ(folded.p50(), 511u);  // upper bound of 500's bucket [496, 512)
}

TEST(Histogram, DeltaRefusesMovedExtrema) {
  // A window in which min or max moved is not steady state — the delta is
  // not replayable (extrema are idempotent, not additive) and must be
  // rejected rather than silently produce a wrong closed form.
  Histogram h;
  h.record(100);
  const Histogram a = h;
  h.record(5);  // new min inside the window
  Histogram d;
  EXPECT_FALSE(Histogram::delta(a, h, d));
  const Histogram b = h;
  h.record(1ull << 50);  // new max inside the window
  EXPECT_FALSE(Histogram::delta(b, h, d));
  const Histogram c = h;
  h.record(200);  // strictly inside [min, max]: replayable
  EXPECT_TRUE(Histogram::delta(c, h, d));
}

}  // namespace
}  // namespace e2e::stats
