#include "stats/histogram.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace e2e::stats {
namespace {

// Field-by-field equality (Histogram has no operator==; tests compare the
// full observable state, buckets included).
void expect_same(const Histogram& a, const Histogram& b) {
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.min(), b.min());
  EXPECT_EQ(a.max(), b.max());
  EXPECT_DOUBLE_EQ(a.mean(), b.mean());
  for (std::size_t i = 0; i < Histogram::kSlots; ++i)
    ASSERT_EQ(a.bucket_count(i), b.bucket_count(i)) << "slot " << i;
  for (double q : {0.0, 0.5, 0.9, 0.99, 0.999, 1.0})
    EXPECT_EQ(a.value_at_quantile(q), b.value_at_quantile(q)) << "q=" << q;
}

// Deterministic value stream (splitmix64): the goldens must not depend on
// library RNG implementations.
std::uint64_t mix(std::uint64_t& s) {
  s += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = s;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

TEST(Histogram, PowersOfTwoLandOnTheirOwnBucketBoundary) {
  // The headline exactness contract: every power of two up to the
  // trackable limit is itself a bucket lower bound, so percentiles never
  // smear a 2^k spike into the neighbouring bucket.
  for (int k = 0; k <= 42; ++k) {
    const std::uint64_t v = 1ull << k;
    EXPECT_EQ(Histogram::bucket_lower(Histogram::index_of(v)), v) << "k=" << k;
  }
}

TEST(Histogram, BucketBoundsBracketEveryValue) {
  std::uint64_t s = 42;
  std::vector<std::uint64_t> probe = {0, 1, 15, 16, 17, 31, 32, 1000,
                                      Histogram::kMaxTrackable};
  for (int i = 0; i < 10000; ++i)
    probe.push_back(mix(s) & Histogram::kMaxTrackable);
  for (const std::uint64_t v : probe) {
    const std::size_t idx = Histogram::index_of(v);
    ASSERT_LT(idx, Histogram::kSlots);
    EXPECT_LE(Histogram::bucket_lower(idx), v);
    EXPECT_LT(v, Histogram::bucket_upper(idx));
    // Log-linear contract: <= 1/16 relative bucket width everywhere.
    if (v >= Histogram::kSubBuckets) {
      EXPECT_LE(Histogram::bucket_upper(idx) - Histogram::bucket_lower(idx),
                Histogram::bucket_lower(idx) / 16);
    }
  }
}

TEST(Histogram, IndexIsMonotoneAcrossBoundaries) {
  for (std::size_t i = 0; i + 1 < Histogram::kSlots; ++i) {
    EXPECT_LT(Histogram::bucket_lower(i), Histogram::bucket_lower(i + 1));
    EXPECT_EQ(Histogram::index_of(Histogram::bucket_lower(i)), i);
    EXPECT_EQ(Histogram::index_of(Histogram::bucket_upper(i) - 1), i);
  }
}

TEST(Histogram, ValuesAboveTrackableClampButMaxStaysExact) {
  Histogram h;
  h.record(Histogram::kMaxTrackable + 12345);
  EXPECT_EQ(Histogram::index_of(Histogram::kMaxTrackable + 12345),
            Histogram::kSlots - 1);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.max(), Histogram::kMaxTrackable + 12345);
}

TEST(Histogram, EmptyHistogramReportsZeros) {
  const Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.p50(), 0u);
  EXPECT_EQ(h.p999(), 0u);
}

TEST(Histogram, SingleValueDistributionReportsThatValueAtEveryQuantile) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.record(4096);
  for (double q : {0.0, 0.5, 0.9, 0.99, 0.999, 1.0})
    EXPECT_EQ(h.value_at_quantile(q), 4096u) << "q=" << q;
}

TEST(Histogram, QuantilesOfSmallExactValuesAreExact) {
  // Values below kSubBuckets sit in unit-width buckets, so quantiles on
  // them are exact, not approximate.
  Histogram h;
  for (std::uint64_t v = 1; v <= 10; ++v) h.record(v);
  EXPECT_EQ(h.p50(), 5u);
  EXPECT_EQ(h.value_at_quantile(0.1), 1u);
  EXPECT_EQ(h.value_at_quantile(1.0), 10u);
}

TEST(Histogram, MergeIsCommutative) {
  Histogram a, b;
  std::uint64_t s = 7;
  for (int i = 0; i < 5000; ++i) a.record(mix(s) % 1000000);
  for (int i = 0; i < 3000; ++i) b.record(mix(s) % 50);
  Histogram ab = a;
  ab.merge(b);
  Histogram ba = b;
  ba.merge(a);
  expect_same(ab, ba);
}

TEST(Histogram, MergeIsAssociative) {
  Histogram a, b, c;
  std::uint64_t s = 99;
  for (int i = 0; i < 2000; ++i) a.record(mix(s) % (1ull << 20));
  for (int i = 0; i < 2000; ++i) b.record(mix(s) % (1ull << 30));
  for (int i = 0; i < 2000; ++i) c.record(mix(s) % 16);
  Histogram left = a;  // (a + b) + c
  left.merge(b);
  left.merge(c);
  Histogram bc = b;  // a + (b + c)
  bc.merge(c);
  Histogram right = a;
  right.merge(bc);
  expect_same(left, right);
}

TEST(Histogram, ShardedMergeEqualsSingleInstanceGolden) {
  // The PDES-sharding contract: recording a stream into N shards and
  // merging must equal recording the whole stream into one instance.
  Histogram whole;
  Histogram shards[4];
  std::uint64_t s = 1234;
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t v = mix(s) & Histogram::kMaxTrackable;
    whole.record(v);
    shards[i % 4].record(v);
  }
  Histogram merged;
  for (const Histogram& sh : shards) merged.merge(sh);
  expect_same(whole, merged);
}

TEST(Histogram, MergeWithEmptyIsIdentity) {
  Histogram a;
  std::uint64_t s = 5;
  for (int i = 0; i < 100; ++i) a.record(mix(s) % 100000);
  Histogram b = a;
  b.merge(Histogram{});
  expect_same(a, b);
}

}  // namespace
}  // namespace e2e::stats
