#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "check/audit.hpp"
#include "exp/runner.hpp"
#include "model/host_profile.hpp"
#include "net/link.hpp"
#include "numa/host.hpp"
#include "numa/process.hpp"
#include "rdma/device.hpp"
#include "rftp/rftp.hpp"
#include "sim/engine.hpp"
#include "stats/stats.hpp"

namespace e2e::stats {
namespace {

// Same scanner the trace tests use: balanced structure outside strings,
// legal escapes, no trailing garbage.
bool json_well_formed(const std::string& s) {
  int depth = 0;
  bool in_str = false;
  bool esc = false;
  for (const char c : s) {
    if (in_str) {
      if (esc) {
        esc = false;
      } else if (c == '\\') {
        esc = true;
      } else if (c == '"') {
        in_str = false;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;
      }
      continue;
    }
    if (c == '"') in_str = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') {
      if (--depth < 0) return false;
    }
  }
  return depth == 0 && !in_str;
}

struct StatsOutput {
  std::string json;
  std::string csv;
};

// One small but real transfer (memory-to-memory RFTP over a RoCE link)
// with the registry installed — the stats analog of run_traced_transfer.
StatsOutput run_instrumented_transfer() {
  sim::Engine eng;
  numa::Host a(eng, model::front_end_lan_host("a"));
  numa::Host b(eng, model::front_end_lan_host("b"));
  rdma::Device da(a, a.profile().nics[0]);
  rdma::Device db(b, b.profile().nics[0]);
  auto link = net::make_roce_lan(eng, "wire");
  link->bind_endpoints(&a, &b);
  numa::Process pa(a, "client", numa::NumaBinding::bound(da.node()));
  numa::Process pb(b, "server", numa::NumaBinding::bound(db.node()));
  rftp::RftpConfig cfg;
  cfg.streams = 2;
  cfg.block_bytes = 1 << 20;
  cfg.credits_per_stream = 4;
  rftp::RftpSession sess({&pa, {&da}}, {&pb, {&db}}, {link.get()}, cfg);
  rftp::MemorySource src(64ull << 20, numa::Placement::on(0));
  rftp::MemorySink dst;

  Registry st(eng);
  st.install();
  exp::run_task(eng, sess.run(src, dst, 64ull << 20));

  StatsOutput out;
  std::ostringstream j, v;
  st.write_json(j);
  st.write_csv(v);
  out.json = j.str();
  out.csv = v.str();
  return out;
}

TEST(StatsExport, JsonIsWellFormedAndCoversTheStack) {
  const StatsOutput out = run_instrumented_transfer();
  EXPECT_TRUE(json_well_formed(out.json));
  EXPECT_NE(out.json.find("\"e2e-stats-v1\""), std::string::npos);
  // RFTP stream histograms and RDMA QP counters both made it through.
  EXPECT_NE(out.json.find("drain_ns"), std::string::npos);
  EXPECT_NE(out.json.find("fill_ns"), std::string::npos);
  EXPECT_NE(out.json.find("wr_posted"), std::string::npos);
  EXPECT_NE(out.json.find("blocks_delivered"), std::string::npos);
  EXPECT_NE(out.csv.find("wr_posted"), std::string::npos);
}

TEST(StatsExport, SameSeedRunsAreByteIdentical) {
  const StatsOutput first = run_instrumented_transfer();
  const StatsOutput second = run_instrumented_transfer();
  EXPECT_EQ(first.json, second.json);
  EXPECT_EQ(first.csv, second.csv);
  EXPECT_GT(first.json.size(), 500u);  // and not trivially empty
}

TEST(StatsFlight, AuditViolationTriggersDumpWithPrecedingWindow) {
  sim::Engine eng;
  Registry st(eng);
  st.install();
  std::ostringstream os;
  st.set_flight_stream(&os);

  // Seed the ring with ordinary-operation records so the dump shows the
  // window *before* the fault, not just the fault itself.
  const EntityId e = st.entity(Layer::kRftp, "stream#0");
  const CodeId drained = st.code("block-drained");
  for (int i = 0; i < 5; ++i) st.flight(Layer::kRftp, e, drained, i);

  // Plant a violation: over-delivery fires the instant flow_out exceeds
  // flow_in, and Auditor::violate routes it into the flight recorder.
  check::Auditor au(eng);
  int dummy = 0;
  au.flow_out(&dummy, "planted", 1);

  EXPECT_TRUE(st.flight_dump_triggered());
  const std::string dump = os.str();
  EXPECT_NE(dump.find("reason: audit:flow.over-delivery"), std::string::npos)
      << dump;
  EXPECT_NE(dump.find("block-drained"), std::string::npos) << dump;
  EXPECT_NE(dump.find("arg=4"), std::string::npos);  // newest pre-fault row
}

}  // namespace
}  // namespace e2e::stats
