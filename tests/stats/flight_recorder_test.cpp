#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "sim/engine.hpp"
#include "stats/registry.hpp"

namespace e2e::stats {
namespace {

// A registry with a tiny ring so wraparound is cheap to exercise.
struct SmallRing {
  sim::Engine eng;
  Registry st;
  SmallRing() : st(eng, [] {
    Config c;
    c.flight_capacity = 16;
    return c;
  }()) {}
};

TEST(FlightRecorder, CapacityIsPowerOfTwoWithFloor) {
  sim::Engine eng;
  {
    Config c;
    c.flight_capacity = 5;  // below the floor: clamped up to 16
    Registry st(eng, c);
    EXPECT_EQ(st.flight_capacity(), 16u);
  }
  {
    Config c;
    c.flight_capacity = 100;  // rounded up to the next power of two
    Registry st(eng, c);
    EXPECT_EQ(st.flight_capacity(), 128u);
  }
}

TEST(FlightRecorder, WraparoundKeepsOnlyNewestRecords) {
  SmallRing r;
  const EntityId e = r.st.entity(Layer::kApp, "job");
  const CodeId old_code = r.st.code("old-event");
  const CodeId new_code = r.st.code("new-event");
  // 8 old records, then 16 new ones: the old 8 are fully overwritten.
  for (int i = 0; i < 8; ++i) r.st.flight(Layer::kApp, e, old_code, i);
  for (int i = 0; i < 16; ++i) r.st.flight(Layer::kApp, e, new_code, 100 + i);
  EXPECT_EQ(r.st.flight_written(), 24u);

  std::ostringstream os;
  r.st.dump_flight(os);
  const std::string dump = os.str();
  EXPECT_NE(dump.find("(8 older records overwritten)"), std::string::npos)
      << dump;
  EXPECT_EQ(dump.find("old-event"), std::string::npos) << dump;
  EXPECT_NE(dump.find("new-event"), std::string::npos);
  EXPECT_NE(dump.find("arg=100"), std::string::npos);  // oldest survivor
  EXPECT_NE(dump.find("arg=115"), std::string::npos);  // newest
}

TEST(FlightRecorder, DumpWithoutWraparoundOmitsOverwrittenLine) {
  SmallRing r;
  const EntityId e = r.st.entity(Layer::kApp, "job");
  const CodeId c = r.st.code("ev");
  for (int i = 0; i < 5; ++i) r.st.flight(Layer::kApp, e, c, i);
  std::ostringstream os;
  r.st.dump_flight(os);
  EXPECT_EQ(os.str().find("overwritten"), std::string::npos) << os.str();
}

TEST(FlightRecorder, TriggerLatchesOnFirstReason) {
  SmallRing r;
  const EntityId e = r.st.entity(Layer::kApp, "job");
  r.st.flight(Layer::kApp, e, r.st.code("ev"), 1);

  std::ostringstream os;
  r.st.set_flight_stream(&os);
  EXPECT_FALSE(r.st.flight_dump_triggered());
  r.st.trigger_flight_dump("first-fault");
  EXPECT_TRUE(r.st.flight_dump_triggered());
  const std::string first = os.str();
  EXPECT_NE(first.find("reason: first-fault"), std::string::npos) << first;
  EXPECT_NE(first.find("--- end flight recorder dump ---"),
            std::string::npos);

  // Second trigger is silent: the first fault is the interesting one and
  // cascades must not bury it.
  r.st.trigger_flight_dump("cascade");
  EXPECT_EQ(os.str(), first);
  EXPECT_EQ(os.str().find("cascade"), std::string::npos);
}

TEST(FlightRecorder, RecordsCarrySimTimestamps) {
  SmallRing r;
  const EntityId e = r.st.entity(Layer::kApp, "job");
  r.st.flight(Layer::kApp, e, r.st.code("ev"), 7);
  std::ostringstream os;
  r.st.dump_flight(os);
  const std::string dump = os.str();
  EXPECT_NE(dump.find("ns]"), std::string::npos) << dump;
  EXPECT_NE(dump.find("job"), std::string::npos);
  EXPECT_NE(dump.find("arg=7"), std::string::npos);
}

}  // namespace
}  // namespace e2e::stats
