#include "stats/registry.hpp"

#include <gtest/gtest.h>

#include <string>

#include "sim/engine.hpp"
#include "stats/stats.hpp"

namespace e2e::stats {
namespace {

TEST(Registry, OfIsNullUntilInstalledAndAfterDestruction) {
  sim::Engine eng;
  EXPECT_EQ(of(eng), nullptr);
  {
    Registry st(eng);
    EXPECT_EQ(of(eng), nullptr);  // construction alone does not install
    st.install();
    EXPECT_EQ(of(eng), &st);
    st.uninstall();
    EXPECT_EQ(of(eng), nullptr);
  }
  {
    Registry st(eng);
    st.install();
    EXPECT_EQ(of(eng), &st);
  }  // destructor uninstalls
  EXPECT_EQ(of(eng), nullptr);
}

TEST(Registry, EntityIsIdempotentAndLayerScoped) {
  sim::Engine eng;
  Registry st(eng);
  const EntityId a = st.entity(Layer::kRdma, "qp0");
  EXPECT_NE(a, Registry::kOverflowEntity);
  EXPECT_EQ(st.entity(Layer::kRdma, "qp0"), a);
  // Same name under a different layer is a distinct entity.
  const EntityId b = st.entity(Layer::kTcp, "qp0");
  EXPECT_NE(b, a);
  EXPECT_EQ(st.entity_name(a), "qp0");
  EXPECT_EQ(st.entity_layer(a), Layer::kRdma);
  EXPECT_EQ(st.entity_layer(b), Layer::kTcp);
}

TEST(Registry, MintEntityNumbersInstancesPerBaseName) {
  sim::Engine eng;
  Registry st(eng);
  const EntityId s0 = st.mint_entity(Layer::kRftp, "stream");
  const EntityId s1 = st.mint_entity(Layer::kRftp, "stream");
  const EntityId q0 = st.mint_entity(Layer::kRdma, "qp");
  EXPECT_EQ(st.entity_name(s0), "stream#0");
  EXPECT_EQ(st.entity_name(s1), "stream#1");
  EXPECT_EQ(st.entity_name(q0), "qp#0");  // counter is per "layer/base"
}

TEST(Registry, CardinalityCapAliasesIntoOverflowEntity) {
  sim::Engine eng;
  Config cfg;
  cfg.max_entities = 3;  // overflow + 2 real slots
  Registry st(eng, cfg);
  const EntityId a = st.entity(Layer::kApp, "a");
  const EntityId b = st.entity(Layer::kApp, "b");
  EXPECT_NE(a, Registry::kOverflowEntity);
  EXPECT_NE(b, Registry::kOverflowEntity);
  EXPECT_EQ(st.dropped_entities(), 0u);

  // Past the cap: new names alias to the overflow entity and are counted.
  const EntityId c = st.entity(Layer::kApp, "c");
  const EntityId d = st.mint_entity(Layer::kApp, "e");
  EXPECT_EQ(c, Registry::kOverflowEntity);
  EXPECT_EQ(d, Registry::kOverflowEntity);
  EXPECT_EQ(st.dropped_entities(), 2u);
  EXPECT_EQ(st.entity_count(), 3u);  // bounded: never grows past the cap
  EXPECT_EQ(st.entity_name(Registry::kOverflowEntity), "<overflow>");

  // Known entities keep resolving after the cap is hit...
  EXPECT_EQ(st.entity(Layer::kApp, "a"), a);
  // ...and metrics on the overflow entity still work (no UB, no crash).
  st.counter(c, "dropped_ops").add(7);
  EXPECT_EQ(st.counter_value(Registry::kOverflowEntity, "dropped_ops"), 7u);
}

TEST(Registry, MetricStorageIsPooledAndAddressStable) {
  sim::Engine eng;
  Registry st(eng);
  const EntityId e = st.entity(Layer::kRdma, "qp0");
  Counter& c = st.counter(e, "wr_posted");
  Histogram& h = st.histogram(e, "op_ns");
  Gauge& g = st.gauge(e, "sq_depth");
  // Force pool growth; earlier references must stay valid (deque-backed).
  for (int i = 0; i < 1000; ++i) {
    const EntityId x = st.mint_entity(Layer::kApp, "filler");
    st.counter(x, "n").add(1);
    st.histogram(x, "ns").record(static_cast<std::uint64_t>(i));
  }
  c.add(3);
  h.record(100);
  g.set(42);
  EXPECT_EQ(&st.counter(e, "wr_posted"), &c);
  EXPECT_EQ(&st.histogram(e, "op_ns"), &h);
  EXPECT_EQ(&st.gauge(e, "sq_depth"), &g);
  EXPECT_EQ(st.counter_value(e, "wr_posted"), 3u);
  ASSERT_NE(st.find_histogram(e, "op_ns"), nullptr);
  EXPECT_EQ(st.find_histogram(e, "op_ns")->count(), 1u);
  EXPECT_EQ(st.find_histogram(e, "missing"), nullptr);
}

TEST(Registry, MergedHistogramFoldsAcrossEntities) {
  sim::Engine eng;
  Registry st(eng);
  const EntityId a = st.entity(Layer::kRftp, "stream0");
  const EntityId b = st.entity(Layer::kRftp, "stream1");
  st.histogram(a, "drain_ns").record(100);
  st.histogram(a, "drain_ns").record(200);
  st.histogram(b, "drain_ns").record(300);
  st.histogram(b, "other_ns").record(999);  // different name: excluded
  const Histogram m = st.merged_histogram("drain_ns");
  EXPECT_EQ(m.count(), 3u);
  EXPECT_EQ(m.min(), 100u);
  EXPECT_EQ(m.max(), 300u);
}

TEST(Registry, CachedHandlesReresolveWhenRegistryChanges) {
  sim::Engine eng;
  CachedEntity ent;
  CachedCounter ctr;
  Registry st1(eng);
  Registry st2(eng);

  st1.install();
  Registry* p = of(eng);
  const EntityId e1 = ent.named(p, Layer::kApp, "worker");
  Counter& c1 = ctr.get(p, e1, "ops");
  c1.add(1);
  EXPECT_EQ(&ctr.get(p, e1, "ops"), &c1);  // steady state: cached
  EXPECT_EQ(st1.counter_value(e1, "ops"), 1u);

  // Swapping the installed registry must re-resolve the handle into the
  // new registry's pools, not keep writing into st1's.
  st2.install();
  p = of(eng);
  const EntityId e2 = ent.named(p, Layer::kApp, "worker");
  ctr.get(p, e2, "ops").add(5);
  EXPECT_EQ(st2.counter_value(e2, "ops"), 5u);
  EXPECT_EQ(st1.counter_value(e1, "ops"), 1u);  // st1 untouched
}

}  // namespace
}  // namespace e2e::stats
