#include "scsi/scsi.hpp"

#include <gtest/gtest.h>

#include "exp/runner.hpp"
#include "numa/process.hpp"
#include "testutil.hpp"

namespace e2e::scsi {
namespace {

struct LunRig : ::testing::Test {
  sim::Engine eng;
  numa::Host host{eng, e2e::test::tiny_host("h")};
  mem::Tmpfs fs{host};
  numa::Process proc{host, "tgtd", numa::NumaBinding::bound(0)};
};

TEST_F(LunRig, CapacityFromBackingFile) {
  auto& f = fs.create("lun0", 1 << 20, numa::MemPolicy::kBind, 0);
  Lun lun(0, fs, f);
  EXPECT_EQ(lun.id(), 0u);
  EXPECT_EQ(lun.capacity_bytes(), 1u << 20);
  EXPECT_EQ(lun.capacity_blocks(), (1u << 20) / 512);
}

TEST_F(LunRig, RejectsUnalignedBacking) {
  auto& f = fs.create("odd", 1000, numa::MemPolicy::kBind, 0);
  EXPECT_THROW(Lun(0, fs, f), std::invalid_argument);
}

TEST_F(LunRig, ReadMovesBytesAndReportsGood) {
  auto& f = fs.create("lun0", 1 << 20, numa::MemPolicy::kBind, 0);
  Lun lun(0, fs, f);
  numa::Thread& th = proc.spawn_thread();
  const auto status = exp::run_task(
      eng, lun.read(th, 0, 8, numa::Placement::on(0)));
  EXPECT_EQ(status, Status::kGood);
  EXPECT_EQ(f.bytes_read, 8u * 512);
  EXPECT_GT(proc.usage().get(metrics::CpuCategory::kLoad), 0u);
}

TEST_F(LunRig, WriteMovesBytesAndReportsGood) {
  auto& f = fs.create("lun0", 1 << 20, numa::MemPolicy::kBind, 0);
  Lun lun(0, fs, f);
  numa::Thread& th = proc.spawn_thread();
  const auto status = exp::run_task(
      eng, lun.write(th, 16, 8, numa::Placement::on(0)));
  EXPECT_EQ(status, Status::kGood);
  EXPECT_EQ(f.bytes_written, 8u * 512);
  EXPECT_GT(proc.usage().get(metrics::CpuCategory::kOffload), 0u);
}

TEST_F(LunRig, OutOfRangeIsCheckCondition) {
  auto& f = fs.create("lun0", 4096, numa::MemPolicy::kBind, 0);
  Lun lun(0, fs, f);
  numa::Thread& th = proc.spawn_thread();
  EXPECT_EQ(exp::run_task(eng, lun.read(th, 8, 1, numa::Placement::on(0))),
            Status::kCheckCondition);
  EXPECT_EQ(exp::run_task(eng, lun.write(th, 7, 2, numa::Placement::on(0))),
            Status::kCheckCondition);
  // Boundary: last block is fine.
  EXPECT_EQ(exp::run_task(eng, lun.read(th, 7, 1, numa::Placement::on(0))),
            Status::kGood);
}

TEST(Cdb, ByteCount) {
  Cdb cdb{OpCode::kRead16, 0, 9};
  EXPECT_EQ(cdb.byte_count(), 9u * 512);
}

TEST(Status, Names) {
  EXPECT_EQ(to_string(Status::kGood), "GOOD");
  EXPECT_EQ(to_string(Status::kCheckCondition), "CHECK CONDITION");
  EXPECT_EQ(to_string(Status::kBusy), "BUSY");
}

}  // namespace
}  // namespace e2e::scsi
