#include "metrics/metrics.hpp"

#include <gtest/gtest.h>

#include "sim/engine.hpp"

namespace e2e::metrics {
namespace {

using sim::kMillisecond;
using sim::kSecond;

TEST(CpuUsage, AccumulatesPerCategory) {
  CpuUsage u;
  u.add(CpuCategory::kCopy, 100);
  u.add(CpuCategory::kCopy, 50);
  u.add(CpuCategory::kLoad, 25);
  EXPECT_EQ(u.get(CpuCategory::kCopy), 150u);
  EXPECT_EQ(u.get(CpuCategory::kLoad), 25u);
  EXPECT_EQ(u.total(), 175u);
}

TEST(CpuUsage, PercentIsAbsoluteCpuConvention) {
  CpuUsage u;
  // 1.22 cores busy over a 1-second window == 122%.
  u.add(CpuCategory::kUserProto, static_cast<sim::SimDuration>(1.22 * 1e9));
  EXPECT_NEAR(u.total_percent(kSecond), 122.0, 0.01);
}

TEST(CpuUsage, MergeAndSince) {
  CpuUsage a, b;
  a.add(CpuCategory::kCopy, 100);
  b.add(CpuCategory::kCopy, 30);
  b.add(CpuCategory::kOffload, 5);
  a.merge(b);
  EXPECT_EQ(a.get(CpuCategory::kCopy), 130u);
  CpuUsage d = a.since(b);
  EXPECT_EQ(d.get(CpuCategory::kCopy), 100u);
  EXPECT_EQ(d.get(CpuCategory::kOffload), 0u);
}

TEST(CpuUsage, ZeroWindowGivesZeroPercent) {
  CpuUsage u;
  u.add(CpuCategory::kCopy, 100);
  EXPECT_EQ(u.percent(CpuCategory::kCopy, 0), 0.0);
}

TEST(CpuCategory, NamesAreDistinct) {
  EXPECT_EQ(to_string(CpuCategory::kUserProto), "user-proto");
  EXPECT_EQ(to_string(CpuCategory::kKernelProto), "kernel-proto");
  EXPECT_EQ(to_string(CpuCategory::kCopy), "copy");
  EXPECT_EQ(to_string(CpuCategory::kLoad), "load");
  EXPECT_EQ(to_string(CpuCategory::kOffload), "offload");
  EXPECT_EQ(to_string(CpuCategory::kOther), "other");
}

TEST(Gbps, Conversion) {
  // 1.25 GB over 1 s = 10 Gbit/s.
  EXPECT_NEAR(gbps(1'250'000'000ull, kSecond), 10.0, 1e-9);
  EXPECT_EQ(gbps(100, 0), 0.0);
}

TEST(ThroughputMeter, TotalsAndMean) {
  sim::Engine eng;
  ThroughputMeter m(eng, kSecond, "t");
  m.record(1'250'000'000ull);
  eng.run_until(kSecond);
  EXPECT_EQ(m.total_bytes(), 1'250'000'000ull);
  EXPECT_NEAR(m.mean_gbps(), 10.0, 1e-9);
}

TEST(ThroughputMeter, SeriesBinsByTime) {
  sim::Engine eng;
  ThroughputMeter m(eng, kSecond);
  m.record(125'000'000);  // t=0, bin 0
  eng.run_until(kSecond + 1);
  m.record(250'000'000);  // bin 1
  eng.run_until(3 * kSecond + 1);
  m.record(375'000'000);  // bin 3
  auto s = m.series_gbps();
  ASSERT_EQ(s.size(), 4u);
  EXPECT_NEAR(s[0], 1.0, 1e-9);
  EXPECT_NEAR(s[1], 2.0, 1e-9);
  EXPECT_NEAR(s[2], 0.0, 1e-9);
  EXPECT_NEAR(s[3], 3.0, 1e-9);
}

TEST(ThroughputMeter, ActiveWindowExcludesIdleLead) {
  sim::Engine eng;
  eng.run_until(5 * kSecond);
  ThroughputMeter m(eng, kSecond);
  m.record(625'000'000);
  eng.run_until(6 * kSecond);
  m.record(625'000'000);
  // 1.25 GB over the 1s active span = 10 Gbps.
  EXPECT_NEAR(m.active_gbps(), 10.0, 1e-9);
}

TEST(ThroughputMeter, ZeroBinWidthFallsBackToOneSecond) {
  sim::Engine eng;
  ThroughputMeter m(eng, 0);
  EXPECT_EQ(m.bin_width(), kSecond);
  m.record(125'000'000);  // must not divide by zero
  ASSERT_EQ(m.series_gbps().size(), 1u);
  EXPECT_NEAR(m.series_gbps()[0], 1.0, 1e-9);
}

TEST(ThroughputMeter, ExactBinBoundaryLandsInNextBin) {
  sim::Engine eng;
  ThroughputMeter m(eng, kSecond);
  eng.run_until(kSecond);  // now == exactly one bin width
  m.record(125'000'000);
  auto s = m.series_gbps();
  ASSERT_EQ(s.size(), 2u);
  EXPECT_NEAR(s[0], 0.0, 1e-9);
  EXPECT_NEAR(s[1], 1.0, 1e-9);
}

TEST(ThroughputMeter, LongIdleGapStaysSparse) {
  sim::Engine eng;
  ThroughputMeter m(eng, kMillisecond);
  m.record(125'000);                // bin 0
  eng.run_until(100 * kSecond);     // long idle gap: 100k empty bins
  m.record(125'000);                // bin 100000
  // Storage is bounded by record() calls, not idle time.
  EXPECT_EQ(m.active_bin_count(), 2u);
  // The dense series still reports the idle bins as zero.
  auto s = m.series_gbps();
  ASSERT_EQ(s.size(), 100'000u + 1u);
  EXPECT_NEAR(s.front(), 1.0, 1e-9);
  EXPECT_NEAR(s.back(), 1.0, 1e-9);
  EXPECT_NEAR(s[50'000], 0.0, 1e-9);
  EXPECT_EQ(m.total_bytes(), 250'000u);
}

TEST(ThroughputMeter, SingleRecordHasNoActiveWindow) {
  sim::Engine eng;
  eng.run_until(kSecond);
  ThroughputMeter m(eng, kSecond);
  m.record(1'000'000);
  // first == last: a zero-width active span must not divide by zero.
  EXPECT_EQ(m.active_gbps(), 0.0);
  EXPECT_GT(m.mean_gbps(), 0.0);
}

TEST(StatAccumulator, Moments) {
  StatAccumulator s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);  // sample stddev
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(StatAccumulator, EmptyIsZero) {
  StatAccumulator s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(Table, AsciiRendering) {
  Table t("demo");
  t.header({"name", "gbps"});
  t.row({"rftp", Table::num(91.0)});
  t.row({"gridftp", Table::num(29.0)});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("rftp"), std::string::npos);
  EXPECT_NE(s.find("91.0"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, CsvRendering) {
  Table t;
  t.header({"a", "b"});
  t.row({"1", "2,3"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,2;3\n");
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(10, 0), "10");
}

}  // namespace
}  // namespace e2e::metrics
