#include <gtest/gtest.h>

#include "net/link.hpp"

namespace e2e::net {
namespace {

TEST(LinkBinding, DirFromResolvesBothSides) {
  sim::Engine eng;
  Link l(eng, "l", 40.0, 100, 9000);
  int a = 0, b = 0;
  EXPECT_FALSE(l.bound());
  l.bind_endpoints(&a, &b);
  EXPECT_TRUE(l.bound());
  EXPECT_EQ(l.dir_from(&a), 0);
  EXPECT_EQ(l.dir_from(&b), 1);
}

TEST(LinkBinding, UnknownEndpointThrows) {
  sim::Engine eng;
  Link l(eng, "l", 40.0, 100, 9000);
  int a = 0, b = 0, c = 0;
  l.bind_endpoints(&a, &b);
  EXPECT_THROW((void)l.dir_from(&c), std::logic_error);
}

TEST(LinkFailures, InjectionIsPerDirectionAndConsumed) {
  sim::Engine eng;
  Link l(eng, "l", 40.0, 100, 9000);
  l.inject_failures(net::Direction::kAtoB, 2);
  EXPECT_TRUE(l.take_failure(net::Direction::kAtoB));
  EXPECT_FALSE(l.take_failure(net::Direction::kBtoA));  // other direction untouched
  EXPECT_TRUE(l.take_failure(net::Direction::kAtoB));
  EXPECT_FALSE(l.take_failure(net::Direction::kAtoB));  // consumed
}

TEST(LinkFailures, InjectionsAccumulate) {
  sim::Engine eng;
  Link l(eng, "l", 40.0, 100, 9000);
  l.inject_failures(net::Direction::kBtoA, 1);
  l.inject_failures(net::Direction::kBtoA, 1);
  EXPECT_TRUE(l.take_failure(net::Direction::kBtoA));
  EXPECT_TRUE(l.take_failure(net::Direction::kBtoA));
  EXPECT_FALSE(l.take_failure(net::Direction::kBtoA));
}

}  // namespace
}  // namespace e2e::net
