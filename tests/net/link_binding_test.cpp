#include <gtest/gtest.h>

#include "net/link.hpp"

namespace e2e::net {
namespace {

TEST(LinkBinding, DirFromResolvesBothSides) {
  sim::Engine eng;
  Link l(eng, "l", 40.0, 100, 9000);
  int a = 0, b = 0;
  EXPECT_FALSE(l.bound());
  l.bind_endpoints(&a, &b);
  EXPECT_TRUE(l.bound());
  EXPECT_EQ(l.dir_from(&a), 0);
  EXPECT_EQ(l.dir_from(&b), 1);
}

TEST(LinkBinding, UnknownEndpointThrows) {
  sim::Engine eng;
  Link l(eng, "l", 40.0, 100, 9000);
  int a = 0, b = 0, c = 0;
  l.bind_endpoints(&a, &b);
  EXPECT_THROW((void)l.dir_from(&c), std::logic_error);
}

TEST(LinkFailures, InjectionIsPerDirectionAndConsumed) {
  sim::Engine eng;
  Link l(eng, "l", 40.0, 100, 9000);
  l.inject_failures(0, 2);
  EXPECT_TRUE(l.take_failure(0));
  EXPECT_FALSE(l.take_failure(1));  // other direction untouched
  EXPECT_TRUE(l.take_failure(0));
  EXPECT_FALSE(l.take_failure(0));  // consumed
}

TEST(LinkFailures, InjectionsAccumulate) {
  sim::Engine eng;
  Link l(eng, "l", 40.0, 100, 9000);
  l.inject_failures(1, 1);
  l.inject_failures(1, 1);
  EXPECT_TRUE(l.take_failure(1));
  EXPECT_TRUE(l.take_failure(1));
  EXPECT_FALSE(l.take_failure(1));
}

}  // namespace
}  // namespace e2e::net
