#include "net/link.hpp"

#include <gtest/gtest.h>

namespace e2e::net {
namespace {

TEST(Link, FactoriesMatchTable1) {
  sim::Engine eng;
  auto roce = make_roce_lan(eng, "r");
  EXPECT_DOUBLE_EQ(roce->rate_gbps(), 40.0);
  EXPECT_EQ(roce->mtu(), 9000u);
  EXPECT_EQ(roce->rtt(), model::kLanRoceRtt);

  auto ib = make_ib_lan(eng, "i");
  EXPECT_DOUBLE_EQ(ib->rate_gbps(), 56.0);
  EXPECT_EQ(ib->mtu(), 65520u);
  EXPECT_EQ(ib->rtt(), model::kLanIbRtt);

  auto wan = make_ani_wan(eng, "w");
  EXPECT_DOUBLE_EQ(wan->rate_gbps(), 40.0);
  EXPECT_EQ(wan->rtt(), model::kWanRtt);
}

TEST(Link, DirectionsAreIndependent) {
  sim::Engine eng;
  Link l(eng, "l", 40.0, 1000, 9000);
  l.dir(0).charge(1e6);
  EXPECT_GT(l.dir(0).busy_until(), 0u);
  EXPECT_EQ(l.dir(1).busy_until(), 0u);
}

TEST(Link, SerializationRateMatches) {
  sim::Engine eng;
  Link l(eng, "l", 40.0, 0, 9000);
  // 5 GB at 5 GB/s = 1 second.
  EXPECT_EQ(l.dir(0).service_time(5e9), sim::kSecond);
}

TEST(Link, WireBytesAddsHeaderPerMtu) {
  sim::Engine eng;
  Link l(eng, "l", 40.0, 0, 9000);
  // 58 header bytes per 9000-byte MTU.
  EXPECT_NEAR(l.wire_bytes(9000.0, 58.0), 9058.0, 1e-9);
  EXPECT_NEAR(l.wire_bytes(18000.0, 58.0), 18116.0, 1e-9);
}

TEST(Link, PacketsCount) {
  sim::Engine eng;
  Link l(eng, "l", 40.0, 0, 9000);
  EXPECT_NEAR(l.packets(90000.0), 10.0, 1e-9);
}

TEST(Link, LatencyIsHalfRtt) {
  sim::Engine eng;
  Link l(eng, "l", 10.0, 250, 1500);
  EXPECT_EQ(l.latency(), 250u);
  EXPECT_EQ(l.rtt(), 500u);
}

}  // namespace
}  // namespace e2e::net
