#include "trace/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "exp/runner.hpp"
#include "model/host_profile.hpp"
#include "net/link.hpp"
#include "numa/host.hpp"
#include "numa/process.hpp"
#include "rdma/device.hpp"
#include "rftp/rftp.hpp"
#include "sim/engine.hpp"
#include "sim/resource.hpp"

namespace e2e::trace {
namespace {

TEST(Tracer, OfIsNullUntilInstalled) {
  sim::Engine eng;
  EXPECT_EQ(of(eng), nullptr);
  {
    Tracer t(eng);
    EXPECT_EQ(of(eng), nullptr);  // construction alone does not install
    t.install();
    EXPECT_EQ(of(eng), &t);
  }
  // Destruction uninstalls, so no dangling hook survives the tracer.
  EXPECT_EQ(of(eng), nullptr);
}

TEST(Tracer, SpanNestingBalances) {
  sim::Engine eng;
  Tracer t(eng);
  const TrackId trk = t.track(Layer::kApp, "worker");
  t.begin(trk, "outer");
  EXPECT_EQ(t.open_depth(trk), 1);
  t.begin(trk, "inner");
  EXPECT_EQ(t.open_depth(trk), 2);
  t.end(trk);
  t.end(trk);
  EXPECT_EQ(t.open_depth(trk), 0);
  EXPECT_EQ(t.event_count(), 4u);
}

TEST(Tracer, TrackIsIdempotentAndMintNumbersInOrder) {
  sim::Engine eng;
  Tracer t(eng);
  EXPECT_EQ(t.track(Layer::kRdma, "qp"), t.track(Layer::kRdma, "qp"));
  // Same actor string under a different layer is a different track.
  EXPECT_NE(t.track(Layer::kRdma, "qp"), t.track(Layer::kTcp, "qp"));
  const TrackId a = t.mint_track(Layer::kRftp, "fill");
  const TrackId b = t.mint_track(Layer::kRftp, "fill");
  EXPECT_NE(a, b);
}

TEST(Tracer, CachedTrackRemintsPerTracer) {
  sim::Engine eng;
  CachedTrack site;
  TrackId first;
  {
    Tracer t1(eng);
    t1.install();
    first = site.get(&t1, Layer::kRftp, "s0/fill");
    EXPECT_EQ(site.get(&t1, Layer::kRftp, "s0/fill"), first);  // cached
  }
  Tracer t2(eng);
  t2.install();
  // A fresh tracer starts numbering from scratch; the cache must re-mint
  // rather than hand back a track id from the dead tracer.
  EXPECT_EQ(site.get(&t2, Layer::kRftp, "s0/fill"), first);
  EXPECT_EQ(t2.event_count(), 0u);
}

TEST(Tracer, CountersAreMonotoneAcrossSamples) {
  sim::Engine eng;
  Tracer t(eng);
  t.install();
  t.enable_resource_sampler(10 * sim::kMicrosecond);
  for (int i = 1; i <= 5; ++i)
    eng.schedule_at(static_cast<sim::SimTime>(i) * 25 * sim::kMicrosecond,
                    [&t] { t.counter("test/ticks").add(3); });
  eng.run();
  EXPECT_EQ(t.counter_value("test/ticks"), 15u);
  double prev = -1.0;
  int seen = 0;
  for (const auto& s : t.samples()) {
    if (t.name_of(s.series) != "test/ticks") continue;
    EXPECT_GE(s.value, prev);
    prev = s.value;
    ++seen;
  }
  EXPECT_GT(seen, 1);
}

TEST(Tracer, ResourceSamplerRecordsUtilization) {
  sim::Engine eng;
  sim::Resource res(eng, 1e9, "wire");  // 1 unit/ns
  Tracer t(eng);
  t.install();
  t.enable_resource_sampler(10 * sim::kMicrosecond);
  // Half-load the resource: 5 us of service per 10 us sample period.
  for (int i = 0; i < 10; ++i)
    eng.schedule_at(static_cast<sim::SimTime>(i) * 10 * sim::kMicrosecond,
                    [&res] { res.charge(5.0 * 1e3); });
  eng.run();
  double util_sum = 0.0;
  int n = 0;
  for (const auto& s : t.samples())
    if (t.name_of(s.series) == "util/wire") {
      util_sum += s.value;
      ++n;
    }
  ASSERT_GT(n, 0);
  EXPECT_NEAR(util_sum / n, 0.5, 0.2);
  // Service windows also appear as spans on the sim layer.
  EXPECT_GT(t.event_count(), 0u);
}

TEST(Tracer, SamplerDoesNotKeepEngineAlive) {
  sim::Engine eng;
  Tracer t(eng);
  t.install();
  t.enable_resource_sampler(sim::kMicrosecond);
  eng.schedule_at(5 * sim::kMicrosecond, [] {});
  eng.run();  // must return: the sampler stops re-arming once idle
  EXPECT_LE(eng.now(), 7 * sim::kMicrosecond);
}

// Minimal JSON well-formedness scan: balanced structure outside strings,
// legal escapes, no trailing garbage. Not a full parser, but rejects the
// classic exporter bugs (unbalanced brackets, raw quotes in names).
bool json_well_formed(const std::string& s) {
  int depth = 0;
  bool in_str = false;
  bool esc = false;
  for (const char c : s) {
    if (in_str) {
      if (esc) {
        esc = false;
      } else if (c == '\\') {
        esc = true;
      } else if (c == '"') {
        in_str = false;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // raw control character inside a string
      }
      continue;
    }
    if (c == '"') in_str = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') {
      if (--depth < 0) return false;
    }
    if (depth == 0 && (c == '}' || c == ']') && &c != &s.back()) {
      // Only whitespace may follow the closing brace.
      const std::size_t pos = static_cast<std::size_t>(&c - s.data());
      for (std::size_t i = pos + 1; i < s.size(); ++i)
        if (s[i] != '\n' && s[i] != ' ') return false;
    }
  }
  return depth == 0 && !in_str;
}

// One small but real transfer (memory-to-memory RFTP over a RoCE link),
// traced end to end. Returns the three export artifacts.
struct TraceOutput {
  std::string chrome;
  std::string report_json;
  std::string report_csv;
};

TraceOutput run_traced_transfer() {
  sim::Engine eng;
  numa::Host a(eng, model::front_end_lan_host("a"));
  numa::Host b(eng, model::front_end_lan_host("b"));
  rdma::Device da(a, a.profile().nics[0]);
  rdma::Device db(b, b.profile().nics[0]);
  auto link = net::make_roce_lan(eng, "wire");
  link->bind_endpoints(&a, &b);
  numa::Process pa(a, "client", numa::NumaBinding::bound(da.node()));
  numa::Process pb(b, "server", numa::NumaBinding::bound(db.node()));
  rftp::RftpConfig cfg;
  cfg.streams = 2;
  cfg.block_bytes = 1 << 20;
  cfg.credits_per_stream = 4;
  rftp::RftpSession sess({&pa, {&da}}, {&pb, {&db}}, {link.get()}, cfg);
  rftp::MemorySource src(64ull << 20, numa::Placement::on(0));
  rftp::MemorySink dst;

  Tracer tracer(eng);
  tracer.install();
  tracer.enable_resource_sampler(sim::kMillisecond);
  tracer.note("scenario", "unit-test");
  const auto r = exp::run_task(eng, sess.run(src, dst, 64ull << 20));
  tracer.note("goodput_gbps", r.goodput_gbps);
  tracer.sample_now();

  TraceOutput out;
  std::ostringstream c, j, v;
  tracer.write_chrome_trace(c);
  tracer.write_report_json(j);
  tracer.write_report_csv(v);
  out.chrome = c.str();
  out.report_json = j.str();
  out.report_csv = v.str();
  return out;
}

TEST(TraceExport, ChromeTraceIsWellFormedAndPopulated) {
  const TraceOutput out = run_traced_transfer();
  EXPECT_TRUE(json_well_formed(out.chrome));
  EXPECT_EQ(out.chrome.rfind("{\"traceEvents\":[", 0), 0u);
  // Layer processes, span events, counter samples, async block spans.
  EXPECT_NE(out.chrome.find("\"process_name\""), std::string::npos);
  EXPECT_NE(out.chrome.find("\"rftp\""), std::string::npos);
  EXPECT_NE(out.chrome.find("\"rdma\""), std::string::npos);
  EXPECT_NE(out.chrome.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(out.chrome.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(out.chrome.find("\"ph\":\"b\""), std::string::npos);
  EXPECT_NE(out.chrome.find("\"ph\":\"e\""), std::string::npos);
  EXPECT_NE(out.chrome.find("util/wire"), std::string::npos);
}

TEST(TraceExport, ReportContainsCountersAndNotes) {
  const TraceOutput out = run_traced_transfer();
  EXPECT_TRUE(json_well_formed(out.report_json));
  EXPECT_NE(out.report_json.find("\"e2e-trace-report-v1\""),
            std::string::npos);
  EXPECT_NE(out.report_json.find("\"rftp/blocks_delivered\""),
            std::string::npos);
  EXPECT_NE(out.report_json.find("\"goodput_gbps\""), std::string::npos);
  EXPECT_NE(out.report_json.find("\"scenario\""), std::string::npos);
  EXPECT_NE(out.report_csv.find("metric,value"), std::string::npos);
  EXPECT_NE(out.report_csv.find("counter.rftp/blocks_delivered,"),
            std::string::npos);
}

TEST(TraceExport, RerunsAreByteIdentical) {
  const TraceOutput first = run_traced_transfer();
  const TraceOutput second = run_traced_transfer();
  EXPECT_EQ(first.chrome, second.chrome);
  EXPECT_EQ(first.report_json, second.report_json);
  EXPECT_EQ(first.report_csv, second.report_csv);
  EXPECT_GT(first.chrome.size(), 1000u);  // and not trivially empty
}

}  // namespace
}  // namespace e2e::trace
