// kv scenario determinism: the sharded parallel engine must produce
// byte-identical results (digest, audited ledgers, merged stats JSON) at
// any shard count, in both GET modes, and runs must be reproducible
// seed-for-seed. This is the same guarantee parallel_determinism_test
// pins for the bulk fleet, applied to the small-message tier.
#include <gtest/gtest.h>

#include <stdexcept>

#include "exp/kv_scenario.hpp"

namespace e2e::exp {
namespace {

KvParams tiny_kv(int shards) {
  KvParams p;
  p.pairs = 4;
  p.shards = shards;
  p.keys = 1024;
  p.ops_per_pair = 512;
  p.value_bytes = 1024;
  p.store_shards = 2;
  p.depth = 4;
  p.remote_every = 16;
  p.seed = 42;
  p.audit = true;
  p.stats = true;
  return p;
}

TEST(KvDeterminismTest, DigestInvariantAcrossShardCounts) {
  const auto seq = run_kv(tiny_kv(1));   // one shard: plain sequential DES
  const auto par = run_kv(tiny_kv(4));   // four shards: conservative PDES
  ASSERT_TRUE(seq.complete);
  ASSERT_TRUE(seq.audit_ok) << seq.audit_violations;
  ASSERT_TRUE(par.complete);
  ASSERT_TRUE(par.audit_ok) << par.audit_violations;
  EXPECT_EQ(seq.digest, par.digest);
  EXPECT_EQ(seq.stats_json, par.stats_json);
  EXPECT_FALSE(seq.stats_json.empty());
}

TEST(KvDeterminismTest, SameSeedReproducesByteIdentically) {
  const auto a = run_kv(tiny_kv(2));
  const auto b = run_kv(tiny_kv(2));
  ASSERT_TRUE(a.complete);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.stats_json, b.stats_json);
  EXPECT_EQ(a.sim_events, b.sim_events);
}

TEST(KvDeterminismTest, ReadModeIsDeterministicToo) {
  auto p = tiny_kv(2);
  p.get_via_read = true;
  const auto a = run_kv(p);
  const auto b = run_kv(p);
  ASSERT_TRUE(a.complete);
  ASSERT_TRUE(a.audit_ok) << a.audit_violations;
  EXPECT_GT(a.gets, 0u);
  EXPECT_EQ(a.digest, b.digest);
}

TEST(KvDeterminismTest, DifferentSeedsDiverge) {
  auto p = tiny_kv(2);
  const auto a = run_kv(p);
  p.seed = 43;
  const auto b = run_kv(p);
  EXPECT_NE(a.digest, b.digest);
}

TEST(KvDeterminismTest, RejectsBadParams) {
  auto p = tiny_kv(1);
  p.keys = 0;
  EXPECT_THROW(run_kv(p), std::invalid_argument);
  p = tiny_kv(1);
  p.depth = 0;
  EXPECT_THROW(run_kv(p), std::invalid_argument);
  p = tiny_kv(8);  // more shards than pairs
  EXPECT_THROW(run_kv(p), std::invalid_argument);
}

}  // namespace
}  // namespace e2e::exp
