#include <gtest/gtest.h>

#include "exp/exp.hpp"
#include "rftp/rftp.hpp"

namespace e2e::exp {
namespace {

TEST(SanTestbed, BringsUpSessionsAndServesIo) {
  SanConfig cfg;
  cfg.lun_bytes = 1ull << 30;
  SanTestbed tb(cfg);
  tb.start();
  apps::FioOptions opts;
  opts.block_bytes = 1 << 20;
  opts.duration = sim::kSecond / 4;
  const auto r = tb.run_fio(opts, 2);
  EXPECT_GT(r.gbps, 10.0);
  EXPECT_GT(r.ios, 0u);
  EXPECT_GT(r.target_cpu_pct, 0.0);
}

TEST(SanTestbed, StripedVolumeCoversAllLuns) {
  SanConfig cfg;
  cfg.lun_bytes = 1ull << 30;
  SanTestbed tb(cfg);
  EXPECT_EQ(tb.san->striped().member_count(), 6u);
  EXPECT_EQ(tb.san->striped().capacity_bytes(), 6ull << 30);
}

TEST(SanTestbed, LunsAlternateFrontEndNodes) {
  SanConfig cfg;
  cfg.lun_bytes = 1ull << 30;
  SanTestbed tb(cfg);
  EXPECT_EQ(tb.san->lun_fe_node(0), 0);
  EXPECT_EQ(tb.san->lun_fe_node(1), 1);
  EXPECT_EQ(tb.san->lun_fe_node(2), 0);
}

TEST(SanTestbed, UntunedUsesSingleTargetProcess) {
  SanConfig tuned_cfg;
  tuned_cfg.lun_bytes = 1ull << 30;
  SanTestbed tuned(tuned_cfg);
  SanConfig untuned_cfg = tuned_cfg;
  untuned_cfg.numa_tuned = false;
  SanTestbed untuned(untuned_cfg);
  tuned.start();
  untuned.start();
  // Both serve I/O correctly regardless of binding.
  apps::FioOptions opts;
  opts.block_bytes = 1 << 20;
  opts.duration = sim::kSecond / 4;
  EXPECT_GT(tuned.run_fio(opts, 2).gbps, 10.0);
  EXPECT_GT(untuned.run_fio(opts, 2).gbps, 10.0);
}

TEST(SanTestbed, LibnumaDynamicSchedulerServesIoEfficiently) {
  SanConfig untuned_cfg;
  untuned_cfg.numa_tuned = false;
  untuned_cfg.lun_bytes = 2ull << 30;
  SanConfig routed_cfg = untuned_cfg;
  routed_cfg.libnuma_dynamic = true;
  SanTestbed untuned(untuned_cfg);
  SanTestbed routed(routed_cfg);
  untuned.start();
  routed.start();
  apps::FioOptions opts;
  opts.block_bytes = 4ull << 20;
  opts.write = true;
  opts.duration = 2 * sim::kSecond;
  const auto u = untuned.run_fio(opts, 4);
  const auto r = routed.run_fio(opts, 4);
  // The dynamic scheduler recovers bandwidth and CPU vs the untuned
  // baseline (the paper's deferred future work, built as an extension).
  EXPECT_GT(r.gbps, 1.1 * u.gbps);
  EXPECT_LT(r.target_cpu_pct, 0.6 * u.target_cpu_pct);
}

TEST(EndToEndTestbed, TransfersFileOverFullPath) {
  EndToEndTestbed tb(true, 2ull << 30);
  tb.start();
  numa::Process sp(*tb.src_fe, "rftp-c", numa::NumaBinding::os_default());
  numa::Process rp(*tb.dst_fe, "rftp-s", numa::NumaBinding::os_default());
  rftp::RftpConfig cfg;
  rftp::RftpSession sess({&sp, tb.src_roce()}, {&rp, tb.dst_roce()},
                         tb.links(), cfg);
  rftp::FileSource src(*tb.src_fs, *tb.src_file);
  rftp::FileSink dst(*tb.dst_fs, *tb.dst_file);
  const auto r = run_task(tb.eng, sess.run(src, dst, tb.dataset_bytes));
  EXPECT_EQ(r.bytes, tb.dataset_bytes);
  EXPECT_EQ(tb.dst_file->size, tb.dataset_bytes);
  EXPECT_GT(r.goodput_gbps, 40.0);  // well past any single link
}

TEST(EndToEndTestbed, ReverseFilesForBidirectional) {
  EndToEndTestbed tb(true, 1ull << 30);
  tb.add_reverse_files();
  ASSERT_NE(tb.rev_src_file, nullptr);
  ASSERT_NE(tb.rev_dst_file, nullptr);
  EXPECT_EQ(tb.rev_src_file->size, 1ull << 30);
  EXPECT_EQ(tb.rev_dst_file->size, 0u);
}

TEST(WanTestbed, HasAniLoopParameters) {
  WanTestbed tb;
  EXPECT_EQ(tb.link->rtt(), model::kWanRtt);
  EXPECT_DOUBLE_EQ(tb.link->rate_gbps(), 40.0);
  EXPECT_EQ(tb.a->profile().total_cores(), 12);
}

TEST(FrontEndPair, ThreeRoceLinks) {
  FrontEndPair pair;
  EXPECT_EQ(pair.links.size(), 3u);
  EXPECT_EQ(pair.iperf_links().size(), 3u);
  EXPECT_EQ(pair.a_devs().size(), 3u);
}

TEST(FrontEndWithIb, HasFiveNics) {
  const auto prof = front_end_with_ib("fe");
  ASSERT_EQ(prof.nics.size(), 5u);
  EXPECT_EQ(prof.nics[3].type, model::LinkType::kInfiniBand);
  EXPECT_EQ(prof.nics[4].type, model::LinkType::kInfiniBand);
}

}  // namespace
}  // namespace e2e::exp
