// Golden determinism tests for the sharded parallel engine.
//
// The contract under test (sim/cluster.hpp): the worker-thread count is
// pure mechanism — for the same fleet configuration and seed, every output
// (trace JSON, merged stats JSON, audit verdicts, final metrics, the
// one-line digest) is bit-identical at --shards 1, 2, 4, or 8. These tests
// run the same fleet at several worker counts and diff the full artifacts,
// not just summaries.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "exp/fleet.hpp"

namespace e2e {
namespace {

exp::FleetParams tiny_fleet(int pairs, int shards) {
  exp::FleetParams p;
  p.pairs = pairs;
  p.shards = shards;
  p.bytes_per_pair = 8ull << 20;
  p.block_bytes = 1ull << 20;
  p.streams = 3;
  p.credits = 4;
  p.ring_messages = 8;
  p.ring_msg_bytes = 256 * 1024;
  p.audit = true;
  p.stats = true;
  p.trace = true;
  return p;
}

TEST(ParallelDeterminismTest, WorkerCountIsInvisibleInEveryArtifact) {
  std::vector<exp::FleetResult> runs;
  for (const int shards : {1, 2, 4, 8})
    runs.push_back(exp::run_fleet(tiny_fleet(8, shards)));
  for (std::size_t i = 1; i < runs.size(); ++i) {
    SCOPED_TRACE("shards run #" + std::to_string(i));
    EXPECT_EQ(runs[0].digest, runs[i].digest);
    EXPECT_EQ(runs[0].stats_json, runs[i].stats_json);
    EXPECT_EQ(runs[0].trace_json, runs[i].trace_json);
    EXPECT_EQ(runs[0].audit_violations, runs[i].audit_violations);
    EXPECT_EQ(runs[0].pair_gbps, runs[i].pair_gbps);
    EXPECT_EQ(runs[0].sim_events, runs[i].sim_events);
    EXPECT_EQ(runs[0].windows, runs[i].windows);
    EXPECT_EQ(runs[0].cross_posts, runs[i].cross_posts);
  }
  EXPECT_TRUE(runs[0].complete);
  EXPECT_TRUE(runs[0].integrity_ok);
  EXPECT_TRUE(runs[0].audit_ok);
  EXPECT_EQ(runs[0].ring_completed, 8u * 8u);
  EXPECT_GT(runs[0].cross_posts, 0u);
}

TEST(ParallelDeterminismTest, ChaosScheduleSurvivesWorkerCountChanges) {
  // Fault injection (qp kills, crashes, loss bursts) rides the same event
  // schedule, so a chaos run must also be bit-identical across worker
  // counts — fault timing cannot leak wall-clock nondeterminism.
  std::vector<exp::FleetResult> runs;
  for (const int shards : {1, 4}) {
    auto p = tiny_fleet(4, shards);
    p.bytes_per_pair = 32ull << 20;  // long enough to straddle the faults
    p.fault_seed = 20260809;
    runs.push_back(exp::run_fleet(p));
  }
  EXPECT_EQ(runs[0].digest, runs[1].digest);
  EXPECT_EQ(runs[0].stats_json, runs[1].stats_json);
  EXPECT_EQ(runs[0].trace_json, runs[1].trace_json);
  EXPECT_TRUE(runs[0].integrity_ok);
}

TEST(ParallelDeterminismTest, RepeatedRunsAreBitIdentical) {
  // Same seed, same worker count, fresh topology: nothing (ASLR, pool
  // reuse from the previous runs in this process) may leak into results.
  const auto a = exp::run_fleet(tiny_fleet(4, 2));
  const auto b = exp::run_fleet(tiny_fleet(4, 2));
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.stats_json, b.stats_json);
  EXPECT_EQ(a.trace_json, b.trace_json);
}

TEST(ParallelDeterminismTest, SinglePairFleetHasNoSeamAndStillRuns) {
  // One pair => no cross-shard link, infinite lookahead, a single window.
  auto p = tiny_fleet(1, 1);
  const auto r = exp::run_fleet(p);
  EXPECT_TRUE(r.complete);
  EXPECT_TRUE(r.audit_ok);
  EXPECT_EQ(r.cross_posts, 0u);
  EXPECT_EQ(r.ring_completed, 0u);
}

TEST(ParallelDeterminismTest, RejectsBadShardCounts) {
  auto p = tiny_fleet(4, 0);
  EXPECT_THROW(exp::run_fleet(p), std::invalid_argument);
  p.shards = 5;
  EXPECT_THROW(exp::run_fleet(p), std::invalid_argument);
  p.shards = -2;
  EXPECT_THROW(exp::run_fleet(p), std::invalid_argument);
}

}  // namespace
}  // namespace e2e
