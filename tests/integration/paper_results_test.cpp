// Paper-shape regression suite.
//
// Each test pins one qualitative claim from the paper's evaluation. These
// run shortened versions of the bench scenarios; the bench binaries print
// the full sweeps. If calibration drifts, these tests catch it.
#include <gtest/gtest.h>

#include "apps/apps.hpp"
#include "exp/exp.hpp"
#include "numa/stream.hpp"
#include "rftp/rftp.hpp"

namespace e2e {
namespace {

using metrics::CpuCategory;

// §2.3: STREAM triad on the front-end host peaks at ~50 GB/s.
TEST(PaperShapes, StreamTriadPeak) {
  sim::Engine eng;
  numa::Host host(eng, model::front_end_lan_host("fe"));
  const auto r = numa::run_stream_triad(eng, host, numa::StreamOptions{});
  EXPECT_NEAR(r.triad_gBps, 50.0, 2.5);
}

// §2.3: NUMA-tuned iperf beats the default scheduler (83.5 -> 91.8 Gbps).
TEST(PaperShapes, MotivatingIperfNumaGain) {
  apps::IperfConfig cfg;
  cfg.bidirectional = true;
  cfg.sender_buffer_bytes = 256ull << 20;
  cfg.duration = sim::kSecond;

  exp::FrontEndPair p1;
  cfg.numa_tuned = false;
  const auto def = run_iperf(p1.eng, *p1.a, *p1.b, p1.iperf_links(), cfg);
  exp::FrontEndPair p2;
  cfg.numa_tuned = true;
  const auto tuned = run_iperf(p2.eng, *p2.a, *p2.b, p2.iperf_links(), cfg);

  EXPECT_NEAR(def.aggregate_gbps, 83.5, 12.0);
  EXPECT_NEAR(tuned.aggregate_gbps, 91.8, 12.0);
  EXPECT_GT(tuned.aggregate_gbps / def.aggregate_gbps, 1.04);
  // copy_user-style routines consume a large share (paper: ~35%).
  const double copy_share =
      static_cast<double>(def.usage_a.get(CpuCategory::kCopy)) /
      static_cast<double>(def.usage_a.total());
  EXPECT_GT(copy_share, 0.2);
  EXPECT_LT(copy_share, 0.5);
}

// Fig. 4: at the same 39 Gbps, RDMA costs ~1.2 cores vs TCP's ~6.4, and
// the category split matches (zero copy cost, no kernel protocol cost).
TEST(PaperShapes, Fig4CostBreakdown) {
  exp::FrontEndPair pair;
  const std::uint64_t total = 6ull << 30;
  numa::Process sp(*pair.a, "rftp-s", numa::NumaBinding::bound(0));
  numa::Process rp(*pair.b, "rftp-r", numa::NumaBinding::bound(0));
  rftp::RftpConfig cfg;
  cfg.streams = 1;
  cfg.block_bytes = 1 << 20;
  rftp::RftpSession sess({&sp, {pair.a_roce[0].get()}},
                         {&rp, {pair.b_roce[0].get()}},
                         {pair.links[0].get()}, cfg);
  rftp::ZeroSource src(total);
  rftp::NullSink dst;
  const auto t0 = pair.eng.now();
  const auto res = exp::run_task(pair.eng, sess.run(src, dst, total));
  const auto w = pair.eng.now() - t0;

  EXPECT_NEAR(res.goodput_gbps, 39.0, 2.5);
  metrics::CpuUsage rdma = pair.a->total_usage();
  rdma.merge(pair.b->total_usage());
  EXPECT_NEAR(rdma.total_percent(w), 122.0, 30.0);
  EXPECT_NEAR(rdma.percent(CpuCategory::kLoad, w), 70.0, 12.0);
  EXPECT_EQ(rdma.get(CpuCategory::kCopy), 0u);        // zero-copy
  EXPECT_EQ(rdma.get(CpuCategory::kKernelProto), 0u);  // kernel bypass

  // TCP at the same rate.
  exp::FrontEndPair pair2;
  apps::IperfConfig icfg;
  icfg.numa_tuned = true;
  icfg.streams_per_link = 4;
  icfg.chunk_bytes = 1 << 20;
  icfg.sender_buffer_bytes = 256ull << 20;
  icfg.duration = sim::kSecond;
  std::vector<apps::IperfLink> one = {pair2.iperf_links()[0]};
  const auto tcp = run_iperf(pair2.eng, *pair2.a, *pair2.b, one, icfg);
  EXPECT_NEAR(tcp.aggregate_gbps, 39.0, 4.0);
  metrics::CpuUsage tcpu = tcp.usage_a;
  tcpu.merge(tcp.usage_b);
  // TCP needs several times the CPU of RDMA (paper: 642% vs 122%).
  EXPECT_GT(tcpu.total_percent(icfg.duration),
            3.5 * rdma.total_percent(w));
  EXPECT_GT(tcpu.percent(CpuCategory::kKernelProto, icfg.duration), 200.0);
  EXPECT_GT(tcpu.percent(CpuCategory::kCopy, icfg.duration), 120.0);
}

struct IserResult {
  double gbps;
  double cpu_pct;
};

IserResult run_iser(bool tuned, bool write) {
  exp::SanConfig scfg;
  scfg.numa_tuned = tuned;
  scfg.lun_bytes = 2ull << 30;
  exp::SanTestbed tb(scfg);
  tb.start();
  apps::FioOptions opts;
  opts.block_bytes = 4ull << 20;
  opts.write = write;
  // Long enough for the untuned write path's interconnect queueing to
  // reach steady state (the transient first second is too optimistic).
  opts.duration = 2 * sim::kSecond;
  const auto r = tb.run_fio(opts, 4);
  return {r.gbps, r.target_cpu_pct};
}

// Fig. 7/8: the iSER orderings.
TEST(PaperShapes, Fig7IserBandwidthOrdering) {
  const auto tuned_read = run_iser(true, false);
  const auto tuned_write = run_iser(true, true);
  const auto def_read = run_iser(false, false);
  const auto def_write = run_iser(false, true);

  // Reads (RDMA Write) outperform writes (RDMA Read) when tuned.
  EXPECT_GT(tuned_read.gbps, tuned_write.gbps);
  // Writes collapse without NUMA tuning (paper: -19%); reads barely move.
  EXPECT_LT(def_write.gbps, 0.88 * tuned_write.gbps);
  EXPECT_GT(def_read.gbps, 0.90 * tuned_read.gbps);
  // Absolute anchor: tuned write ~94.8 Gbps (the path limit of Fig. 9).
  EXPECT_NEAR(tuned_write.gbps, 94.8, 6.0);
}

TEST(PaperShapes, Fig8IserCpuOrdering) {
  const auto tuned_write = run_iser(true, true);
  const auto def_write = run_iser(false, true);
  const auto tuned_read = run_iser(true, false);
  const auto def_read = run_iser(false, false);
  // Paper: default binding costs ~3x CPU for writes; reads see a far
  // smaller penalty.
  EXPECT_GT(def_write.cpu_pct, 2.0 * tuned_write.cpu_pct);
  EXPECT_LT(def_read.cpu_pct, 1.7 * tuned_read.cpu_pct);
}

// Fig. 9/10: end-to-end RFTP ~91 Gbps (~96% of the 94.8 path limit);
// GridFTP ~29 Gbps with a kernel-heavy profile.
TEST(PaperShapes, Fig9EndToEndThroughput) {
  exp::EndToEndTestbed tb(true, 12ull << 30);
  tb.start();
  numa::Process sp(*tb.src_fe, "rftp-c", numa::NumaBinding::os_default());
  numa::Process rp(*tb.dst_fe, "rftp-s", numa::NumaBinding::os_default());
  rftp::RftpConfig cfg;
  rftp::RftpSession sess({&sp, tb.src_roce()}, {&rp, tb.dst_roce()},
                         tb.links(), cfg);
  rftp::FileSource src(*tb.src_fs, *tb.src_file);
  rftp::FileSink dst(*tb.dst_fs, *tb.dst_file);
  const auto rftp_res =
      exp::run_task(tb.eng, sess.run(src, dst, tb.dataset_bytes));
  EXPECT_NEAR(rftp_res.goodput_gbps, 91.0, 8.0);

  exp::EndToEndTestbed tb2(true, 4ull << 30);
  tb2.start();
  apps::GridFtpConfig gcfg;
  std::vector<apps::GridFtpLink> glinks;
  for (std::size_t i = 0; i < 3; ++i)
    glinks.push_back({tb2.roce_links[i].get(), tb2.src_devs[i]->node(),
                      tb2.dst_devs[i]->node()});
  const auto grid = exp::run_task(
      tb2.eng,
      apps::gridftp_transfer({tb2.src_fe.get(), tb2.src_fs.get(),
                              tb2.src_file},
                             {tb2.dst_fe.get(), tb2.dst_fs.get(),
                              tb2.dst_file},
                             glinks, tb2.dataset_bytes, gcfg));
  EXPECT_NEAR(grid.goodput_gbps, 29.0, 7.0);
  // Paper: ~3x RFTP advantage.
  EXPECT_GT(rftp_res.goodput_gbps / grid.goodput_gbps, 2.3);
  // Fig. 10: GridFTP's sys CPU dominates its user CPU.
  const auto gu = tb2.src_fe->total_usage();
  EXPECT_GT(gu.get(CpuCategory::kKernelProto), gu.get(CpuCategory::kUserProto));
}

// Fig. 13: WAN RFTP reaches ~97% utilization with enough streams and
// large blocks, and is window-limited with few/small ones.
TEST(PaperShapes, Fig13WanBandwidth) {
  {
    exp::WanTestbed tb;
    rftp::RftpConfig cfg;
    cfg.streams = 4;
    cfg.block_bytes = 8ull << 20;
    cfg.credits_per_stream = 16;
    rftp::RftpSession sess({tb.a_proc.get(), {tb.a_dev.get()}},
                           {tb.b_proc.get(), {tb.b_dev.get()}},
                           {tb.link.get()}, cfg);
    rftp::MemorySource src(12ull << 30, numa::Placement::on(0));
    rftp::MemorySink dst;
    const auto r = exp::run_task(tb.eng, sess.run(src, dst, 12ull << 30));
    EXPECT_GT(r.goodput_gbps, 0.95 * 40.0);
  }
  {
    exp::WanTestbed tb;
    rftp::RftpConfig cfg;
    cfg.streams = 1;
    cfg.block_bytes = 1 << 20;
    cfg.credits_per_stream = 16;
    rftp::RftpSession sess({tb.a_proc.get(), {tb.a_dev.get()}},
                           {tb.b_proc.get(), {tb.b_dev.get()}},
                           {tb.link.get()}, cfg);
    rftp::MemorySource src(1ull << 30, numa::Placement::on(0));
    rftp::MemorySink dst;
    const auto r = exp::run_task(tb.eng, sess.run(src, dst, 1ull << 30));
    // Window-bound: ~16 MiB / 95 ms ~= 1.4 Gbps.
    EXPECT_LT(r.goodput_gbps, 3.0);
  }
}

// Fig. 14: WAN CPU per gigabit falls as block size grows.
TEST(PaperShapes, Fig14WanCpuFallsWithBlockSize) {
  auto run_wan = [](std::uint64_t block) {
    exp::WanTestbed tb;
    rftp::RftpConfig cfg;
    cfg.streams = 4;
    cfg.block_bytes = block;
    cfg.credits_per_stream = 16;
    rftp::RftpSession sess({tb.a_proc.get(), {tb.a_dev.get()}},
                           {tb.b_proc.get(), {tb.b_dev.get()}},
                           {tb.link.get()}, cfg);
    rftp::MemorySource src(6ull << 30, numa::Placement::on(0));
    rftp::MemorySink dst;
    const auto t0 = tb.eng.now();
    const auto r = exp::run_task(tb.eng, sess.run(src, dst, 6ull << 30));
    const auto w = tb.eng.now() - t0;
    const double cpu =
        tb.a->total_usage().percent(CpuCategory::kUserProto, w);
    return cpu / r.goodput_gbps;  // CPU% per Gbps
  };
  EXPECT_GT(run_wan(1 << 20), 1.5 * run_wan(8 << 20));
}

}  // namespace
}  // namespace e2e
