#include <gtest/gtest.h>

#include <memory>

#include "exp/runner.hpp"
#include "iscsi/initiator.hpp"
#include "iscsi/target.hpp"
#include "iser/session.hpp"
#include "testutil.hpp"

namespace e2e::iscsi {
namespace {

using e2e::test::TinyRig;
using e2e::test::make_buffer;

struct IserRig : ::testing::Test {
  TinyRig rig;
  std::unique_ptr<mem::Tmpfs> tgt_fs;
  std::unique_ptr<iser::IserSession> session;
  std::unique_ptr<mem::BufferPool> staging;
  std::vector<std::unique_ptr<scsi::Lun>> luns;
  std::unique_ptr<Target> target;
  std::unique_ptr<Initiator> initiator;
  numa::Thread* ith = nullptr;
  numa::Thread* tth = nullptr;

  void SetUp() override {
    tgt_fs = std::make_unique<mem::Tmpfs>(*rig.b);
    for (int l = 0; l < 2; ++l) {
      auto& f = tgt_fs->create("lun" + std::to_string(l), 8 << 20,
                               numa::MemPolicy::kBind, 0);
      luns.push_back(std::make_unique<scsi::Lun>(l, *tgt_fs, f));
    }
    session = std::make_unique<iser::IserSession>(
        *rig.dev_a, *rig.dev_b, *rig.link, *rig.proc_a, *rig.proc_b);
    staging = std::make_unique<mem::BufferPool>(
        *rig.b, "staging", 4, 1 << 20, numa::MemPolicy::kBind, 0);
    staging->mark_registered();
    std::vector<scsi::Lun*> lun_ptrs;
    for (auto& l : luns) lun_ptrs.push_back(l.get());
    target = std::make_unique<Target>(*rig.proc_b, session->target_ep(),
                                      lun_ptrs, *staging);
    initiator =
        std::make_unique<Initiator>(*rig.proc_a, session->initiator_ep());
    ith = &rig.proc_a->spawn_thread();
    tth = &rig.proc_b->spawn_thread();
  }

  void bring_up(int workers = 2) {
    exp::run_task(rig.eng, session->start(*ith, *tth));
    target->start(workers);
    LoginParams params;
    const bool ok = exp::run_task(rig.eng, initiator->login(*ith, params));
    ASSERT_TRUE(ok);
    initiator->start_dispatcher(*ith);
  }
};

TEST_F(IserRig, LoginNegotiates) {
  bring_up();
  EXPECT_TRUE(initiator->logged_in());
  EXPECT_GE(initiator->negotiated().max_burst_length, 1u << 20);
}

TEST_F(IserRig, SubmitBeforeLoginThrows) {
  auto buf = make_buffer(*rig.a, 4096, 0);
  EXPECT_THROW(
      exp::run_task(rig.eng, initiator->submit_read(*ith, 0, 0, 8, buf)),
      std::logic_error);
}

TEST_F(IserRig, ReadMovesDataFromLunToInitiator) {
  bring_up();
  auto buf = make_buffer(*rig.a, 1 << 20, 0);
  const auto status = exp::run_task(
      rig.eng, initiator->submit_read(*ith, 0, 0, 2048, buf));
  EXPECT_EQ(status, scsi::Status::kGood);
  EXPECT_EQ(luns[0]->backing().bytes_read, 2048u * 512);
  EXPECT_EQ(target->bytes_out(), 2048u * 512);
  EXPECT_EQ(initiator->tasks_completed(), 1u);
}

TEST_F(IserRig, WriteMovesDataFromInitiatorToLun) {
  bring_up();
  auto buf = make_buffer(*rig.a, 1 << 20, 0);
  const auto status = exp::run_task(
      rig.eng, initiator->submit_write(*ith, 1, 0, 2048, buf));
  EXPECT_EQ(status, scsi::Status::kGood);
  EXPECT_EQ(luns[1]->backing().bytes_written, 2048u * 512);
  EXPECT_EQ(target->bytes_in(), 2048u * 512);
}

TEST_F(IserRig, LargeTransfersSegmentThroughStaging) {
  bring_up();
  // 4 MiB transfer through 1 MiB staging buffers: 4 segments.
  auto buf = make_buffer(*rig.a, 4 << 20, 0);
  const auto status = exp::run_task(
      rig.eng, initiator->submit_read(*ith, 0, 0, 8192, buf));
  EXPECT_EQ(status, scsi::Status::kGood);
  EXPECT_EQ(luns[0]->backing().bytes_read, 4u << 20);
  // All staging buffers returned to the pool once the engine drains.
  rig.eng.run();
  EXPECT_EQ(staging->available(), staging->capacity());
}

TEST_F(IserRig, UnknownLunIsCheckCondition) {
  bring_up();
  auto buf = make_buffer(*rig.a, 4096, 0);
  EXPECT_EQ(exp::run_task(rig.eng,
                          initiator->submit_read(*ith, 99, 0, 8, buf)),
            scsi::Status::kCheckCondition);
}

TEST_F(IserRig, OutOfRangeIoFailsCleanly) {
  bring_up();
  auto buf = make_buffer(*rig.a, 1 << 20, 0);
  const auto blocks = static_cast<std::uint32_t>((8 << 20) / 512);
  EXPECT_EQ(exp::run_task(rig.eng, initiator->submit_read(
                                       *ith, 0, blocks, 8, buf)),
            scsi::Status::kCheckCondition);
}

TEST_F(IserRig, SmallBufferIsRejectedLocally) {
  bring_up();
  auto buf = make_buffer(*rig.a, 512, 0);
  EXPECT_THROW(
      exp::run_task(rig.eng, initiator->submit_read(*ith, 0, 0, 8, buf)),
      std::length_error);
}

sim::Task<> submit_many(Initiator& init, numa::Thread& th, mem::Buffer* buf,
                        int n, int* good) {
  for (int i = 0; i < n; ++i) {
    const auto s = co_await init.submit_read(
        th, 0, static_cast<std::uint64_t>(i) * 8, 8, *buf);
    if (s == scsi::Status::kGood) ++*good;
  }
}

TEST_F(IserRig, ConcurrentTasksAllComplete) {
  bring_up(/*workers=*/3);
  auto buf1 = make_buffer(*rig.a, 4096, 0);
  auto buf2 = make_buffer(*rig.a, 4096, 0);
  auto buf3 = make_buffer(*rig.a, 4096, 0);
  int good = 0;
  sim::co_spawn(submit_many(*initiator, *ith, &buf1, 10, &good));
  sim::co_spawn(submit_many(*initiator, *ith, &buf2, 10, &good));
  sim::co_spawn(submit_many(*initiator, *ith, &buf3, 10, &good));
  rig.eng.run();
  EXPECT_EQ(good, 30);
  EXPECT_EQ(initiator->tasks_completed(), 30u);
  EXPECT_EQ(target->tasks_served(), 30u);
}

TEST_F(IserRig, LogoutStopsSession) {
  bring_up();
  exp::run_task(rig.eng, initiator->logout(*ith));
  EXPECT_FALSE(initiator->logged_in());
}

TEST_F(IserRig, TargetCountsControlPdus) {
  bring_up();
  auto buf = make_buffer(*rig.a, 4096, 0);
  const auto before = session->initiator_ep().pdus_sent();
  exp::run_task(rig.eng, initiator->submit_read(*ith, 0, 0, 8, buf));
  EXPECT_EQ(session->initiator_ep().pdus_sent(), before + 1);  // the command
  EXPECT_GE(session->target_ep().pdus_sent(), 1u);             // the response
}

TEST_F(IserRig, DataOpsUseRdmaNotCpuOnInitiator) {
  bring_up();
  auto buf = make_buffer(*rig.a, 4 << 20, 0);
  const auto copy_before =
      rig.proc_a->usage().get(metrics::CpuCategory::kCopy);
  exp::run_task(rig.eng, initiator->submit_read(*ith, 0, 0, 8192, buf));
  // Zero-copy: the initiator never memcpys payload.
  EXPECT_EQ(rig.proc_a->usage().get(metrics::CpuCategory::kCopy),
            copy_before);
}

struct RetryRig : IserRig {
  // Rebuild the initiator with a command timeout so lost control PDUs are
  // retransmitted.
  void SetUp() override {
    IserRig::SetUp();
    initiator = std::make_unique<Initiator>(
        *rig.proc_a, session->initiator_ep(), 5 * sim::kMillisecond);
  }
};

TEST_F(RetryRig, LostCommandIsRetransmitted) {
  bring_up();
  // The next message on the initiator->target direction (the command PDU)
  // is corrupted in flight.
  rig.link->inject_failures(net::Direction::kAtoB, 1);
  auto buf = make_buffer(*rig.a, 1 << 20, 0);
  const auto status = exp::run_task(
      rig.eng, initiator->submit_read(*ith, 0, 0, 2048, buf));
  EXPECT_EQ(status, scsi::Status::kGood);
  EXPECT_EQ(initiator->command_retries(), 1u);
  EXPECT_EQ(target->tasks_served(), 1u);  // executed exactly once
}

TEST_F(RetryRig, LostResponseIsReplayedNotReexecuted) {
  bring_up();
  auto buf = make_buffer(*rig.a, 1 << 20, 0);
  // Lose the target->initiator response: the WRITE executes, the response
  // vanishes, the retry gets a replay from the completed-task history.
  // Direction 1 carries the target's sends; the first message there after
  // injection is this task's response.
  rig.link->inject_failures(net::Direction::kBtoA, 1);
  const auto status = exp::run_task(
      rig.eng, initiator->submit_write(*ith, 0, 0, 2048, buf));
  EXPECT_EQ(status, scsi::Status::kGood);
  EXPECT_GE(initiator->command_retries(), 1u);
  EXPECT_EQ(target->tasks_served(), 1u);  // duplicate suppressed
  EXPECT_EQ(luns[0]->backing().bytes_written, 2048u * 512);  // once!
}

TEST_F(RetryRig, NoTimeoutMeansNoRetries) {
  bring_up();
  auto buf = make_buffer(*rig.a, 1 << 20, 0);
  exp::run_task(rig.eng, initiator->submit_read(*ith, 0, 0, 512, buf));
  EXPECT_EQ(initiator->command_retries(), 0u);
}

struct RoutedTargetRig : IserRig {
  // Rebuild the target with the libnuma-style per-request scheduler.
  void SetUp() override {
    IserRig::SetUp();
    std::vector<scsi::Lun*> lun_ptrs;
    for (auto& l : luns) lun_ptrs.push_back(l.get());
    target = std::make_unique<Target>(*rig.proc_b, session->target_ep(),
                                      lun_ptrs, *staging,
                                      TargetSched::kNumaRouted);
  }
};

TEST_F(RoutedTargetRig, NumaRoutedTargetServesIo) {
  bring_up(/*workers=*/4);  // two per node
  auto buf = make_buffer(*rig.a, 1 << 20, 0);
  EXPECT_EQ(exp::run_task(rig.eng,
                          initiator->submit_read(*ith, 0, 0, 2048, buf)),
            scsi::Status::kGood);
  EXPECT_EQ(exp::run_task(rig.eng,
                          initiator->submit_write(*ith, 1, 0, 2048, buf)),
            scsi::Status::kGood);
  EXPECT_EQ(target->tasks_served(), 2u);
}

TEST_F(RoutedTargetRig, TasksRunOnTheLunsHomeNode) {
  bring_up(/*workers=*/4);
  // Both LUNs are bound to node 0 in this rig: after serving traffic,
  // node-1 cores must have done no load/offload work.
  auto buf = make_buffer(*rig.a, 1 << 20, 0);
  exp::run_task(rig.eng, initiator->submit_write(*ith, 0, 0, 2048, buf));
  metrics::CpuUsage node1;
  for (int c = 0; c < rig.b->core_count(); ++c)
    if (rig.b->core(c).node == 1) node1.merge(rig.b->core(c).usage);
  EXPECT_EQ(node1.get(metrics::CpuCategory::kOffload), 0u);
}

TEST_F(IserRig, DoubleStartDispatcherThrows) {
  bring_up();
  EXPECT_THROW(initiator->start_dispatcher(*ith), std::logic_error);
}

TEST_F(IserRig, TargetDoubleStartThrows) {
  bring_up();
  EXPECT_THROW(target->start(1), std::logic_error);
}

}  // namespace
}  // namespace e2e::iscsi
