#include "iscsi/tcp_datamover.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "exp/runner.hpp"
#include "iscsi/initiator.hpp"
#include "iscsi/target.hpp"
#include "testutil.hpp"

namespace e2e::iscsi {
namespace {

using e2e::test::TinyRig;
using e2e::test::make_buffer;
using metrics::CpuCategory;

struct TcpIscsiRig : ::testing::Test {
  TinyRig rig;
  std::unique_ptr<mem::Tmpfs> tgt_fs;
  std::unique_ptr<TcpSession> session;
  std::unique_ptr<mem::BufferPool> staging;
  std::vector<std::unique_ptr<scsi::Lun>> luns;
  std::unique_ptr<Target> target;
  std::unique_ptr<Initiator> initiator;
  numa::Thread* ith = nullptr;
  numa::Thread* tth = nullptr;

  void SetUp() override {
    tgt_fs = std::make_unique<mem::Tmpfs>(*rig.b);
    auto& f = tgt_fs->create("lun0", 8 << 20, numa::MemPolicy::kBind, 0);
    luns.push_back(std::make_unique<scsi::Lun>(0, *tgt_fs, f));
    session = std::make_unique<TcpSession>(*rig.a, 0, *rig.b, 0, *rig.link,
                                           *rig.proc_a, *rig.proc_b);
    staging = std::make_unique<mem::BufferPool>(
        *rig.b, "staging", 4, 1 << 20, numa::MemPolicy::kBind, 0);
    target = std::make_unique<Target>(*rig.proc_b, session->target_ep(),
                                      std::vector<scsi::Lun*>{luns[0].get()},
                                      *staging);
    initiator =
        std::make_unique<Initiator>(*rig.proc_a, session->initiator_ep());
    ith = &rig.proc_a->spawn_thread();
    tth = &rig.proc_b->spawn_thread();
  }

  void bring_up() {
    numa::Thread& itx = rig.proc_a->spawn_thread();
    numa::Thread& ttx = rig.proc_b->spawn_thread();
    exp::run_task(rig.eng,
                  session->start(*ith, itx, *tth, ttx));
    target->start(2);
    LoginParams params;
    ASSERT_TRUE(exp::run_task(rig.eng, initiator->login(*ith, params)));
    initiator->start_dispatcher(*ith);
  }
};

TEST_F(TcpIscsiRig, LoginOverTcpWorks) {
  bring_up();
  EXPECT_TRUE(initiator->logged_in());
}

TEST_F(TcpIscsiRig, ReadStreamsDataInPdus) {
  bring_up();
  auto buf = make_buffer(*rig.a, 1 << 20, 0);
  const auto status = exp::run_task(
      rig.eng, initiator->submit_read(*ith, 0, 0, 2048, buf));
  EXPECT_EQ(status, scsi::Status::kGood);
  EXPECT_EQ(luns[0]->backing().bytes_read, 2048u * 512);
  // 1 MiB moved in 256 KiB Data-In segments.
  EXPECT_EQ(session->target_ep().data_pdus(), 4u);
}

TEST_F(TcpIscsiRig, WriteUsesR2TDataOutFlow) {
  bring_up();
  auto buf = make_buffer(*rig.a, 1 << 20, 0);
  const auto status = exp::run_task(
      rig.eng, initiator->submit_write(*ith, 0, 0, 2048, buf));
  EXPECT_EQ(status, scsi::Status::kGood);
  EXPECT_EQ(luns[0]->backing().bytes_written, 2048u * 512);
  // The initiator answered the R2T with Data-Out segments.
  EXPECT_EQ(session->initiator_ep().data_pdus(), 4u);
}

TEST_F(TcpIscsiRig, TcpPathPaysCopiesUnlikeIser) {
  bring_up();
  auto buf = make_buffer(*rig.a, 1 << 20, 0);
  const auto copies_before =
      rig.a->total_usage().get(CpuCategory::kCopy);
  exp::run_task(rig.eng, initiator->submit_read(*ith, 0, 0, 2048, buf));
  rig.eng.run();
  // The initiator host performed kernel->user copies for the payload.
  EXPECT_GT(rig.a->total_usage().get(CpuCategory::kCopy), copies_before);
  // And kernel protocol work on both hosts.
  EXPECT_GT(rig.a->total_usage().get(CpuCategory::kKernelProto), 0u);
  EXPECT_GT(rig.b->total_usage().get(CpuCategory::kKernelProto), 0u);
}

TEST_F(TcpIscsiRig, LargeIoSegmentsThroughStaging) {
  bring_up();
  auto buf = make_buffer(*rig.a, 4 << 20, 0);
  const auto status = exp::run_task(
      rig.eng, initiator->submit_read(*ith, 0, 0, 8192, buf));
  EXPECT_EQ(status, scsi::Status::kGood);
  EXPECT_EQ(luns[0]->backing().bytes_read, 4u << 20);
  rig.eng.run();
  EXPECT_EQ(staging->available(), staging->capacity());
}

TEST_F(TcpIscsiRig, ConcurrentMixedIoCompletes) {
  bring_up();
  auto b1 = make_buffer(*rig.a, 512 << 10, 0);
  auto b2 = make_buffer(*rig.a, 512 << 10, 0);
  int good = 0;
  sim::co_spawn([](Initiator& init, numa::Thread& th, mem::Buffer* buf,
                   int* ok) -> sim::Task<> {
    for (int i = 0; i < 5; ++i)
      if (co_await init.submit_read(th, 0, i * 1024, 1024, *buf) ==
          scsi::Status::kGood)
        ++*ok;
  }(*initiator, *ith, &b1, &good));
  sim::co_spawn([](Initiator& init, numa::Thread& th, mem::Buffer* buf,
                   int* ok) -> sim::Task<> {
    for (int i = 0; i < 5; ++i)
      if (co_await init.submit_write(th, 0, i * 1024, 1024, *buf) ==
          scsi::Status::kGood)
        ++*ok;
  }(*initiator, *ith, &b2, &good));
  rig.eng.run();
  EXPECT_EQ(good, 10);
  EXPECT_EQ(target->tasks_served(), 10u);
}

TEST_F(TcpIscsiRig, GetDataFromInitiatorSideThrows) {
  bring_up();
  auto buf = make_buffer(*rig.a, 4096, 0);
  EXPECT_THROW(
      exp::run_task(rig.eng,
                    session->initiator_ep().get_data(
                        *ith, buf, 4096, rdma::RemoteKey{&buf}, 0)),
      std::logic_error);
}

TEST_F(TcpIscsiRig, DoubleStartThrows) {
  bring_up();
  EXPECT_THROW(session->initiator_ep().start(*ith, *ith), std::logic_error);
}

}  // namespace
}  // namespace e2e::iscsi
