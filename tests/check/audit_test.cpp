// e2e::check audit-layer tests.
//
// Two families:
//  - Canaries: plant a deliberate violation (through the auditor API or the
//    real machinery) and prove the matching rule fires. A checker that
//    cannot see planted bugs is worthless.
//  - Clean runs: drive real transfers with the auditor installed and prove
//    zero violations — the conservation laws actually hold in the model.
#include "check/audit.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>

#include "fault/integrity.hpp"
#include "rftp/rftp.hpp"
#include "sim/resource.hpp"
#include "testutil.hpp"

namespace e2e::check {
namespace {

using e2e::test::TinyRig;
using e2e::test::make_buffer;

bool has_rule(const Auditor& au, std::string_view rule) {
  return std::any_of(au.violations().begin(), au.violations().end(),
                     [&](const Violation& v) { return v.rule == rule; });
}

// --- hook plumbing ---

TEST(Auditor, InstallsAndUninstalls) {
  sim::Engine eng;
  {
    Auditor au(eng);
    EXPECT_EQ(of(eng), &au);
    // Only one hook may be installed at a time.
    EXPECT_THROW({ Auditor second(eng); }, std::logic_error);
  }
  EXPECT_EQ(of(eng), nullptr);
}

TEST(Auditor, CleanRunReportsAllQuiet) {
  sim::Engine eng;
  Auditor au(eng);
  sim::Resource r(eng, 1e9, "r");
  r.charge(100);
  eng.run();
  au.finalize();
  EXPECT_TRUE(au.ok());
  std::ostringstream os;
  au.report(os);
  EXPECT_NE(os.str().find("no violations"), std::string::npos);
}

// --- resource / CPU canaries ---

TEST(Auditor, ResourceWindowOverlapDetected) {
  sim::Engine eng;
  Auditor au(eng);
  au.set_log(false);
  sim::Resource r(eng, 1e9, "r");
  au.on_resource_service(r, 10, 20, 10.0);
  au.on_resource_service(r, 15, 25, 10.0);  // starts inside the previous
  EXPECT_TRUE(has_rule(au, "resource.window-overlap"));
}

TEST(Auditor, ResourceBusyAccountingMismatchDetected) {
  sim::Engine eng;
  Auditor au(eng);
  au.set_log(false);
  sim::Resource r(eng, 1e9, "r");
  r.charge(100);  // audited: 100 ns of service
  au.on_resource_service(r, 200, 250, 50.0);  // phantom service window
  eng.run();
  au.finalize();
  EXPECT_TRUE(has_rule(au, "resource.busy-accounting"));
}

TEST(Auditor, CpuUnaccountedTimeDetected) {
  sim::Engine eng;
  Auditor au(eng);
  au.set_log(false);
  sim::Resource cycles(eng, 2e9, "core0/cycles");
  cycles.charge(2000.0);  // 1000 ns of service observed
  // Only 400 ns accounted to a category: 600 ns vanish.
  au.on_cpu_charge(&cycles, metrics::CpuCategory::kCopy, 400);
  eng.run();
  au.finalize();
  EXPECT_TRUE(has_rule(au, "cpu.unaccounted-time"));
}

TEST(Auditor, SetRateFlapKeepsResourceAccountingExact) {
  sim::Engine eng;
  Auditor au(eng);
  sim::Resource r(eng, 1e9, "flappy");
  r.charge(10'000);
  eng.run_until(1'000);
  r.set_rate(4e9);  // faster mid-drain
  eng.run_until(2'000);
  r.set_rate(5e8);  // slower again
  eng.run();
  au.finalize();
  EXPECT_TRUE(au.ok()) << [&] {
    std::ostringstream os;
    au.report(os);
    return os.str();
  }();
}

// --- QP ledger canaries ---

TEST(Auditor, QpByteLedgerImbalanceDetected) {
  sim::Engine eng;
  Auditor au(eng);
  au.set_log(false);
  int key = 0;
  au.on_qp_tx(&key, "a", 4096);
  au.on_qp_rx(&key, "a", 1024);  // 3072 bytes vanish in flight
  au.finalize();
  EXPECT_TRUE(has_rule(au, "rdma.byte-ledger"));
}

TEST(Auditor, DroppedDeliveriesBalanceTheLedger) {
  sim::Engine eng;
  Auditor au(eng);
  int key = 0;
  au.on_qp_tx(&key, "a", 4096);
  au.on_qp_rx(&key, "a", 1024);
  au.on_qp_drop(&key, "a", 3072);  // error-state receiver drop: accounted
  au.finalize();
  EXPECT_TRUE(au.ok());
}

TEST(Auditor, UnregisteredMrDetected) {
  sim::Engine eng;
  Auditor au(eng);
  au.set_log(false);
  int key = 0;
  au.on_dma_check(&key, "b", /*registered=*/false, "write target region");
  EXPECT_TRUE(has_rule(au, "rdma.unregistered-mr"));
}

// --- flow ledger canaries ---

TEST(Auditor, FlowOverDeliveryDetected) {
  sim::Engine eng;
  Auditor au(eng);
  au.set_log(false);
  int key = 0;
  au.flow_in(&key, "tcp", 1000);
  au.flow_out(&key, "tcp", 900);   // drops are legal
  EXPECT_TRUE(au.ok());
  au.flow_out(&key, "tcp", 200);   // byte creation is not
  EXPECT_TRUE(has_rule(au, "flow.over-delivery"));
  EXPECT_EQ(std::count_if(
                au.violations().begin(), au.violations().end(),
                [](const Violation& v) { return v.rule == "flow.over-delivery"; }),
            1);  // reported once per flow, not per byte
}

// --- RFTP canaries (driven through the audit API) ---

struct RftpCanary : ::testing::Test {
  sim::Engine eng;
  Auditor au{eng};
  int sess = 0;  // any stable address works as the session key

  void SetUp() override { au.set_log(false); }

  // Walks one token through a full healthy cycle delivering `block`.
  void deliver(std::uint32_t token, std::uint64_t block,
               std::uint64_t bytes) {
    au.rftp_fill(&sess, block, bytes);
    au.rftp_grant_sent(&sess, 0, token);
    au.rftp_credit_received(&sess, 0, token);
    au.rftp_credit_consumed(&sess, 0, token);
    au.rftp_drain(&sess, 0, token, block, bytes,
                  fault::rftp_block_tag(block, bytes), /*duplicate=*/false,
                  /*checksum_ok=*/true);
    au.rftp_grant_sent(&sess, 0, token);  // re-grant closes the cycle
  }
};

TEST_F(RftpCanary, HealthySessionIsClean) {
  au.rftp_begin(&sess, 200, 100, 2, 1);
  deliver(0, 0, 100);
  deliver(0, 1, 100);
  std::uint64_t digest =
      fault::rftp_block_tag(0, 100) ^ fault::rftp_block_tag(1, 100);
  au.rftp_end(&sess, /*complete=*/true, 200, digest);
  au.finalize();
  EXPECT_TRUE(au.ok());
}

TEST_F(RftpCanary, CreditLeakDetected) {
  au.rftp_begin(&sess, 100, 100, 1, 1);
  deliver(0, 0, 100);
  // Token 1: granted, received, consumed — the bound block never drains.
  au.rftp_grant_sent(&sess, 0, 1);
  au.rftp_credit_received(&sess, 0, 1);
  au.rftp_credit_consumed(&sess, 0, 1);
  au.rftp_end(&sess, /*complete=*/true, 100, fault::rftp_block_tag(0, 100));
  EXPECT_TRUE(au.ok());  // the leak is only provable once the run settles
  au.finalize();
  EXPECT_TRUE(has_rule(au, "rftp.credit-leak"));
}

TEST_F(RftpCanary, DeadStreamTokensAreNotLeaks) {
  au.rftp_begin(&sess, 100, 100, 1, 2);
  deliver(0, 0, 100);
  au.rftp_grant_sent(&sess, 1, 0);
  au.rftp_credit_received(&sess, 1, 0);
  au.rftp_credit_consumed(&sess, 1, 0);  // on-wire when the stream dies
  au.rftp_stream_dead(&sess, 1);
  au.rftp_end(&sess, /*complete=*/true, 100, fault::rftp_block_tag(0, 100));
  au.finalize();
  EXPECT_TRUE(au.ok());
}

TEST_F(RftpCanary, MissingBlocksDetected) {
  au.rftp_begin(&sess, 200, 100, 2, 1);
  deliver(0, 0, 100);  // block 1 never arrives
  au.rftp_end(&sess, /*complete=*/true, 100, fault::rftp_block_tag(0, 100));
  EXPECT_TRUE(has_rule(au, "rftp.missing-blocks"));
  EXPECT_TRUE(has_rule(au, "rftp.byte-conservation"));
}

TEST_F(RftpCanary, DeliveredByteMismatchDetected) {
  au.rftp_begin(&sess, 100, 100, 1, 1);
  deliver(0, 0, 100);
  // The session claims more bytes than the audit independently counted.
  au.rftp_end(&sess, /*complete=*/true, 150, fault::rftp_block_tag(0, 100));
  EXPECT_TRUE(has_rule(au, "rftp.delivered-bytes"));
}

TEST_F(RftpCanary, CorruptedBlockTagDetected) {
  au.rftp_begin(&sess, 100, 100, 1, 1);
  au.rftp_fill(&sess, 0, 100);
  au.rftp_grant_sent(&sess, 0, 0);
  au.rftp_credit_received(&sess, 0, 0);
  au.rftp_credit_consumed(&sess, 0, 0);
  // Landed tag is not the analytic tag of (block 0, 100 bytes) — and the
  // session's own checksum check was fooled into accepting it.
  au.rftp_drain(&sess, 0, 0, 0, 100, /*landed_tag=*/0xdead, false, true);
  EXPECT_TRUE(has_rule(au, "rftp.integrity-tag"));
}

TEST_F(RftpCanary, DoubleGrantDetected) {
  au.rftp_begin(&sess, 100, 100, 1, 1);
  au.rftp_grant_sent(&sess, 0, 0);
  au.rftp_credit_received(&sess, 0, 0);
  au.rftp_grant_sent(&sess, 0, 0);  // re-grant while the sender holds it
  EXPECT_TRUE(has_rule(au, "rftp.credit-double-grant"));
}

TEST_F(RftpCanary, PhantomBlockDetected) {
  au.rftp_begin(&sess, 100, 100, 1, 1);
  au.rftp_fill(&sess, 0, 100);
  // A block arrives on a token that was never consumed by the sender.
  au.rftp_drain(&sess, 0, 0, 0, 100, fault::rftp_block_tag(0, 100), false,
                true);
  EXPECT_TRUE(has_rule(au, "rftp.phantom-block"));
}

TEST_F(RftpCanary, DrainWithoutFillDetected) {
  au.rftp_begin(&sess, 100, 100, 1, 1);
  au.rftp_grant_sent(&sess, 0, 0);
  au.rftp_credit_received(&sess, 0, 0);
  au.rftp_credit_consumed(&sess, 0, 0);
  au.rftp_drain(&sess, 0, 0, 0, 100, fault::rftp_block_tag(0, 100), false,
                true);
  EXPECT_TRUE(has_rule(au, "rftp.drain-without-fill"));
}

TEST(Auditor, AbortOnFinalizeThrows) {
  sim::Engine eng;
  Auditor strict(eng, Policy::kAbortOnFinalize);
  strict.set_log(false);
  int key = 0;
  strict.on_qp_tx(&key, "a", 1);
  EXPECT_THROW(strict.finalize(), AuditFailure);
}

// --- clean end-to-end runs through the real stack ---

TEST(AuditorScenario, RftpTransferIsClean) {
  TinyRig rig;
  Auditor au(rig.eng);
  rftp::RftpConfig cfg;
  cfg.streams = 2;
  cfg.block_bytes = 512 * 1024;
  rftp::EndpointConfig s{rig.proc_a.get(), {rig.dev_a.get()}};
  rftp::EndpointConfig r{rig.proc_b.get(), {rig.dev_b.get()}};
  rftp::RftpSession sess(s, r, {rig.link.get()}, cfg);
  rftp::ZeroSource src(8 << 20);
  rftp::NullSink dst;
  const auto res = exp::run_task(rig.eng, sess.run(src, dst, 8 << 20));
  rig.eng.run();
  EXPECT_TRUE(res.complete);
  au.finalize();
  EXPECT_TRUE(au.ok()) << [&] {
    std::ostringstream os;
    au.report(os);
    return os.str();
  }();
}

TEST(AuditorScenario, PostOnKilledQpFlushesWithoutTransmitting) {
  TinyRig rig;
  Auditor au(rig.eng);
  auto pair = std::make_unique<rdma::ConnectedPair>(*rig.dev_a, *rig.dev_b,
                                                    *rig.link);
  auto& tha = rig.proc_a->spawn_thread();
  auto& thb = rig.proc_b->spawn_thread();
  auto sbuf = make_buffer(*rig.a, 4096, 0);
  auto rbuf = make_buffer(*rig.b, 4096, 0);
  exp::run_task(rig.eng, pair->b().post_recv(thb, rdma::RecvWr{1, &rbuf}));
  pair->a().kill();
  rdma::SendWr wr;
  wr.op = rdma::Opcode::kSend;
  wr.wr_id = 42;
  wr.local = &sbuf;
  wr.bytes = 4096;
  exp::run_task(rig.eng, pair->a().post_send(tha, wr));
  rig.eng.run();
  // The WR flushed at post time: a failed CQE, no delivery at the peer.
  auto wc = pair->a().send_cq().try_poll();
  ASSERT_TRUE(wc.has_value());
  EXPECT_FALSE(wc->success);
  EXPECT_EQ(wc->wr_id, 42u);
  EXPECT_FALSE(pair->b().recv_cq().try_poll().has_value());
  EXPECT_EQ(pair->a().sends_flushed(), 1u);
  au.finalize();
  EXPECT_TRUE(au.ok());  // nothing transmitted, so the ledger balances
}

TEST(AuditorScenario, WriteToDeregisteredMrFlagged) {
  TinyRig rig;
  Auditor au(rig.eng);
  au.set_log(false);
  auto pair = std::make_unique<rdma::ConnectedPair>(*rig.dev_a, *rig.dev_b,
                                                    *rig.link);
  auto& tha = rig.proc_a->spawn_thread();
  auto sbuf = make_buffer(*rig.a, 4096, 0);
  auto target = make_buffer(*rig.b, 4096, 0);
  target.registered = false;  // remote region was never (or no longer) pinned
  rdma::SendWr wr;
  wr.op = rdma::Opcode::kWrite;
  wr.wr_id = 7;
  wr.local = &sbuf;
  wr.bytes = 4096;
  wr.remote = rdma::RemoteKey{&target};
  exp::run_task(rig.eng, pair->a().post_send(tha, wr));
  rig.eng.run();
  EXPECT_TRUE(has_rule(au, "rdma.unregistered-mr"));
}

}  // namespace
}  // namespace e2e::check
