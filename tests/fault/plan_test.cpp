#include "fault/plan.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace e2e::fault {
namespace {

TEST(FaultPlan, ParsesEveryFaultType) {
  const auto plan = FaultPlan::parse(
      "loss@500ms:n=5,dir=ab,link=0; flap@1s:dur=20ms; "
      "spike@2s:dur=100ms,add=5ms; hole@1200ms:dur=10ms,dir=ba; "
      "qpkill@1500ms:qp=2; crash@1800ms:host=1,down=50ms");
  ASSERT_EQ(plan.events.size(), 6u);

  // Sorted by injection time regardless of script order.
  for (std::size_t i = 1; i < plan.events.size(); ++i)
    EXPECT_LE(plan.events[i - 1].at, plan.events[i].at);

  const auto& loss = plan.events[0];
  EXPECT_EQ(loss.type, FaultType::kLossBurst);
  EXPECT_EQ(loss.at, 500 * sim::kMillisecond);
  EXPECT_EQ(loss.count, 5);
  EXPECT_EQ(loss.dir, net::Direction::kAtoB);

  const auto& flap = plan.events[1];
  EXPECT_EQ(flap.type, FaultType::kLinkFlap);
  EXPECT_EQ(flap.at, sim::kSecond);
  EXPECT_EQ(flap.duration, 20 * sim::kMillisecond);

  const auto& hole = plan.events[2];
  EXPECT_EQ(hole.type, FaultType::kBlackhole);
  EXPECT_EQ(hole.dir, net::Direction::kBtoA);

  const auto& kill = plan.events[3];
  EXPECT_EQ(kill.type, FaultType::kQpKill);
  EXPECT_EQ(kill.qp, 2);

  const auto& crash = plan.events[4];
  EXPECT_EQ(crash.type, FaultType::kCrash);
  EXPECT_EQ(crash.host, 1);
  EXPECT_EQ(crash.down, 50 * sim::kMillisecond);

  const auto& spike = plan.events[5];
  EXPECT_EQ(spike.type, FaultType::kLatencySpike);
  EXPECT_EQ(spike.extra_latency, 5 * sim::kMillisecond);
}

TEST(FaultPlan, CrashWithoutDownMeansNoRestart) {
  const auto plan = FaultPlan::parse("crash@1s:host=0");
  ASSERT_EQ(plan.events.size(), 1u);
  EXPECT_EQ(plan.events[0].type, FaultType::kCrash);
  EXPECT_EQ(plan.events[0].host, 0);
  EXPECT_EQ(plan.events[0].down, 0u);
}

TEST(FaultPlan, TimeSuffixesAndBareSeconds) {
  const auto plan =
      FaultPlan::parse("loss@250ns; loss@3us; loss@7ms; loss@2s; loss@1");
  ASSERT_EQ(plan.events.size(), 5u);
  EXPECT_EQ(plan.events[0].at, 250u);
  EXPECT_EQ(plan.events[1].at, 3u * 1000);
  EXPECT_EQ(plan.events[2].at, 7 * sim::kMillisecond);
  // A bare number means seconds.
  EXPECT_EQ(plan.events[3].at, sim::kSecond);
  EXPECT_EQ(plan.events[4].at, 2 * sim::kSecond);
}

TEST(FaultPlan, RoundTripsThroughToString) {
  const char* spec =
      "loss@500ms:n=5,dir=ab,link=0; flap@1s:dur=20ms; "
      "spike@2s:dur=100ms,add=5ms; hole@1200ms:dur=10ms,dir=ba; "
      "qpkill@1500ms:qp=0; crash@1700ms:host=1,down=25ms; crash@1900ms:host=0";
  const auto plan = FaultPlan::parse(spec);
  const std::string canon = plan.to_string();
  // Canonical form is a fixed point: parse(to_string()) == to_string().
  EXPECT_EQ(FaultPlan::parse(canon).to_string(), canon);
}

TEST(FaultPlan, RejectsMalformedScripts) {
  EXPECT_THROW(FaultPlan::parse("bogus@1s"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("loss"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("loss@"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("loss@xyz"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("loss@1s:nonsense"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("loss@1s:n="), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("loss@1s:dir=sideways"),
               std::invalid_argument);
}

TEST(FaultPlan, RejectsUnknownAndDuplicateKeys) {
  // Unknown keys are operator typos, not silently-ignored extensions.
  EXPECT_THROW(FaultPlan::parse("loss@1s:bogus=3"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("crash@1s:host=1,qp=0"),
               std::invalid_argument);
  // So are repeated keys: the second value would silently win (or lose).
  EXPECT_THROW(FaultPlan::parse("loss@1s:n=2,n=3"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("crash@1s:host=0,host=1"),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("flap@1s:dur=1ms,dur=2ms"),
               std::invalid_argument);
}

TEST(FaultPlan, RejectsNegativeHost) {
  EXPECT_THROW(FaultPlan::parse("crash@1s:host=-1"), std::invalid_argument);
}

TEST(FaultPlan, EmptyScriptIsEmptyPlan) {
  EXPECT_TRUE(FaultPlan::parse("").empty());
  EXPECT_TRUE(FaultPlan::parse("  ;  ; ").empty());
}

TEST(FaultPlan, RandomIsDeterministicPerSeed) {
  FaultPlan::RandomParams p;
  p.links = 2;
  p.qps = 3;
  const auto a = FaultPlan::random(42, p);
  const auto b = FaultPlan::random(42, p);
  EXPECT_EQ(a.to_string(), b.to_string());
  EXPECT_FALSE(a.empty());

  const auto c = FaultPlan::random(43, p);
  EXPECT_NE(a.to_string(), c.to_string());
}

TEST(FaultPlan, RandomHonoursParams) {
  FaultPlan::RandomParams p;
  p.links = 2;
  p.qps = 4;
  p.loss_bursts = 3;
  p.flaps = 1;
  p.spikes = 1;
  p.holes = 1;
  p.qp_kills = 2;
  p.hosts = 2;
  p.crashes = 2;
  const auto plan = FaultPlan::random(7, p);
  int loss = 0, flap = 0, spike = 0, hole = 0, kills = 0, crashes = 0;
  for (const auto& ev : plan.events) {
    EXPECT_GT(ev.at, 0u);
    EXPECT_LT(ev.at, p.horizon);
    switch (ev.type) {
      case FaultType::kLossBurst:
        ++loss;
        EXPECT_GE(ev.count, 1);
        EXPECT_LE(ev.count, p.max_burst);
        break;
      case FaultType::kLinkFlap:
        ++flap;
        EXPECT_LE(ev.duration, p.max_flap);
        break;
      case FaultType::kLatencySpike:
        ++spike;
        EXPECT_LE(ev.duration, p.max_spike);
        EXPECT_LE(ev.extra_latency, p.max_extra_latency);
        break;
      case FaultType::kBlackhole:
        ++hole;
        EXPECT_LE(ev.duration, p.max_hole);
        break;
      case FaultType::kQpKill:
        ++kills;
        EXPECT_GE(ev.qp, 0);
        EXPECT_LT(ev.qp, p.qps);
        break;
      case FaultType::kCrash:
        ++crashes;
        EXPECT_GE(ev.host, 0);
        EXPECT_LT(ev.host, p.hosts);
        EXPECT_GE(ev.down, p.max_down / 4);
        EXPECT_LE(ev.down, p.max_down);
        break;
    }
    EXPECT_GE(ev.link, 0);
    EXPECT_LT(ev.link, p.links);
  }
  EXPECT_EQ(loss, p.loss_bursts);
  EXPECT_EQ(flap, p.flaps);
  EXPECT_EQ(spike, p.spikes);
  EXPECT_EQ(hole, p.holes);
  EXPECT_EQ(kills, p.qp_kills);
  EXPECT_EQ(crashes, p.crashes);
}

TEST(FaultPlan, RandomWithZeroQpsNeverKills) {
  FaultPlan::RandomParams p;
  p.qps = 0;
  const auto plan = FaultPlan::random(11, p);
  for (const auto& ev : plan.events)
    EXPECT_NE(ev.type, FaultType::kQpKill);
}

TEST(FaultPlan, RandomWithZeroHostsNeverCrashes) {
  FaultPlan::RandomParams p;
  p.crashes = 3;  // requested but host pool disabled
  p.hosts = 0;
  const auto plan = FaultPlan::random(11, p);
  for (const auto& ev : plan.events)
    EXPECT_NE(ev.type, FaultType::kCrash);
}

}  // namespace
}  // namespace e2e::fault
