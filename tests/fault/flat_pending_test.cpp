// Flat pending-table behavior under faults: rendezvous slots recycle
// across QP-kill recovery instead of accumulating, and a seeded faulted
// run stays byte-identical (golden-hashed trace) now that command
// rendezvous, replay caches, and send-completion records all live in flat
// tables.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "exp/runner.hpp"
#include "fault/injector.hpp"
#include "fault/integrity.hpp"
#include "fault/plan.hpp"
#include "iscsi/initiator.hpp"
#include "iscsi/target.hpp"
#include "iser/session.hpp"
#include "mem/tmpfs.hpp"
#include "testutil.hpp"
#include "trace/tracer.hpp"

namespace e2e::fault {
namespace {

using e2e::test::TinyRig;
using e2e::test::make_buffer;

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

/// iSER write workload under a fixed seeded fault plan (loss bursts, a
/// flap, a spike, a blackhole and one QP kill). Returns the trace hash
/// when `traced`; also reports initiator slot usage.
struct FaultedRunOutcome {
  int bad_statuses = 0;
  std::size_t pending_slots = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t trace_hash = 0;
};

FaultedRunOutcome run_faulted_iser(std::uint64_t seed, int n_cmds,
                                   bool traced) {
  TinyRig rig;
  std::unique_ptr<trace::Tracer> tracer;
  if (traced) {
    tracer = std::make_unique<trace::Tracer>(rig.eng);
    tracer->install();
  }
  mem::Tmpfs fs(*rig.b);
  auto& f = fs.create("lun0", 256 << 20, numa::MemPolicy::kBind, 0);
  scsi::Lun lun(0, fs, f);
  iser::IserSession session(*rig.dev_a, *rig.dev_b, *rig.link, *rig.proc_a,
                            *rig.proc_b);
  mem::BufferPool staging(*rig.b, "staging", 4, 1 << 20,
                          numa::MemPolicy::kBind, 0);
  staging.mark_registered();
  iscsi::Target target(*rig.proc_b, session.target_ep(),
                       std::vector<scsi::Lun*>{&lun}, staging);
  iscsi::Initiator initiator(*rig.proc_a, session.initiator_ep(),
                             2 * sim::kMillisecond, iscsi::RetryPolicy{});
  numa::Thread& ith = rig.proc_a->spawn_thread();
  numa::Thread& tth = rig.proc_b->spawn_thread();
  exp::run_task(rig.eng, session.start(ith, tth));
  target.start(2);
  iscsi::LoginParams params;
  EXPECT_TRUE(exp::run_task(rig.eng, initiator.login(ith, params)));
  initiator.start_dispatcher(ith);
  iser::SessionRecoveryPolicy rp;
  rp.mr_bytes_initiator = 4 << 20;
  rp.mr_bytes_target = 4 << 20;
  session.enable_recovery(ith, tth, rp);

  FaultPlan::RandomParams p;
  p.horizon = 100 * sim::kMillisecond;
  p.links = 1;
  p.qps = 1;
  p.loss_bursts = 3;
  p.max_burst = 4;
  p.flaps = 1;
  p.max_flap = 5 * sim::kMillisecond;
  p.spikes = 1;
  p.max_spike = 10 * sim::kMillisecond;
  p.max_extra_latency = sim::kMillisecond;
  p.holes = 1;
  p.max_hole = 3 * sim::kMillisecond;
  p.qp_kills = 1;
  FaultInjector inj(rig.eng, FaultPlan::random(seed, p));
  inj.attach(*rig.link);
  inj.set_qp_kill_handler([&session](int) { session.kill(); });
  inj.arm();

  FaultedRunOutcome out;
  const std::uint32_t blocks_per_cmd = (1u << 20) / 512;
  auto buf = make_buffer(*rig.a, 1 << 20, 0);
  auto drive = [](iscsi::Initiator& init, numa::Thread& th, int cmds,
                  std::uint32_t blocks, mem::Buffer& b,
                  int& bad) -> sim::Task<> {
    for (int i = 0; i < cmds; ++i) {
      const std::uint64_t lba =
          std::uint64_t{static_cast<unsigned>(i)} * blocks;
      const auto st = co_await init.submit_write(th, 0, lba, blocks, b);
      if (st != scsi::Status::kGood) ++bad;
    }
  };
  exp::run_task(rig.eng,
                drive(initiator, ith, n_cmds, blocks_per_cmd, buf,
                      out.bad_statuses));
  rig.eng.run();

  out.pending_slots = initiator.pending_slots();
  out.recoveries = session.recoveries();
  if (traced) {
    std::ostringstream os;
    tracer->write_chrome_trace(os);
    out.trace_hash = fnv1a(os.str());
  }
  return out;
}

TEST(FlatPending, SlotsRecycleAcrossQpKillRecovery) {
  const auto out = run_faulted_iser(/*seed=*/7, /*n_cmds=*/96, false);
  EXPECT_EQ(out.bad_statuses, 0);
  EXPECT_GE(out.recoveries, 1u) << "plan must exercise the QP kill path";
  // 96 sequential commands, some retried/abandoned across a QP kill: the
  // rendezvous arena must stay at the concurrency high-water mark (one
  // in-flight command, plus at most a stale slot straddling the recovery),
  // not grow with command count.
  EXPECT_LE(out.pending_slots, 2u);
}

TEST(FlatPending, FaultedRunTraceIsRunToRunIdentical) {
  const auto a = run_faulted_iser(/*seed=*/11, /*n_cmds=*/48, true);
  const auto b = run_faulted_iser(/*seed=*/11, /*n_cmds=*/48, true);
  EXPECT_EQ(a.bad_statuses, 0);
  ASSERT_NE(a.trace_hash, 0u);
  EXPECT_EQ(a.trace_hash, b.trace_hash)
      << "same seed, same flat tables -> byte-identical faulted trace";
}

// Golden recorded with the flat-table protocol path (this PR). Guards the
// hash-order independence promise: faulted-run traces must not depend on
// hash-table iteration order anywhere. If you intentionally change event
// semantics, re-record from the failure message.
// Re-recorded when sim::Rng dropped the std::*_distribution adaptors for
// portable explicit arithmetic: the seeded fault plan draws a different
// (now platform-independent) schedule.
constexpr std::uint64_t kFaultedGoldenHash = 0x7780b91344020f86ull;

TEST(FlatPending, FaultedRunMatchesRecordedGolden) {
  const auto r = run_faulted_iser(/*seed=*/11, /*n_cmds=*/48, true);
  EXPECT_EQ(r.trace_hash, kFaultedGoldenHash)
      << "trace bytes changed; new hash=0x" << std::hex << r.trace_hash;
}

}  // namespace
}  // namespace e2e::fault
