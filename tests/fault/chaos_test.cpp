// Chaos suite: every transfer mode (rftp, iSER, TCP/iSCSI) completes a
// multi-GB simulated transfer under a seeded random FaultPlan — loss
// bursts, a link flap, a latency spike, a blackhole and a QP kill — with
// end-to-end integrity verified at the sink and no hang. The seed comes
// from E2E_CHAOS_SEED (CI sweeps a matrix of seeds); the same seed must
// reproduce byte-identical traces.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "check/audit.hpp"
#include "exp/runner.hpp"
#include "fault/injector.hpp"
#include "fault/integrity.hpp"
#include "fault/plan.hpp"
#include "iscsi/initiator.hpp"
#include "iscsi/target.hpp"
#include "iscsi/tcp_datamover.hpp"
#include "iser/session.hpp"
#include "rftp/rftp.hpp"
#include "testutil.hpp"
#include "trace/tracer.hpp"

namespace e2e::fault {
namespace {

using e2e::test::TinyRig;
using e2e::test::make_buffer;

std::string audit_report(const check::Auditor& au) {
  std::ostringstream os;
  au.report(os);
  return os.str();
}

std::uint64_t chaos_seed() {
  const char* s = std::getenv("E2E_CHAOS_SEED");
  if (s == nullptr || *s == '\0') return 1;
  return std::strtoull(s, nullptr, 10);
}

/// A plan with the acceptance mix — loss bursts, one flap, one spike, one
/// blackhole, one QP kill — spread over the first `horizon` of the run.
FaultPlan chaos_plan(std::uint64_t seed, sim::SimDuration horizon, int qps) {
  FaultPlan::RandomParams p;
  p.horizon = horizon;
  p.links = 1;
  p.qps = qps;
  p.loss_bursts = 4;
  p.max_burst = 6;
  p.flaps = 1;
  p.max_flap = 10 * sim::kMillisecond;
  p.spikes = 1;
  p.max_spike = 20 * sim::kMillisecond;
  p.max_extra_latency = sim::kMillisecond;
  p.holes = 1;
  p.max_hole = 5 * sim::kMillisecond;
  p.qp_kills = 1;
  return FaultPlan::random(seed, p);
}

// ---------------------------------------------------------------------------
// rftp

struct RftpChaosOutcome {
  rftp::TransferResult result;
  std::uint64_t failovers = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t faults_injected = 0;
  std::string chrome_trace;
};

RftpChaosOutcome run_rftp_chaos(std::uint64_t seed, std::uint64_t total,
                                bool with_trace) {
  TinyRig rig;
  // Full invariant audit rides along on every chaos run: faulted paths are
  // exactly where conservation bugs hide.
  check::Auditor audit(rig.eng);
  trace::Tracer tracer(rig.eng);
  if (with_trace) tracer.install();

  rftp::RftpConfig cfg;
  cfg.streams = 3;
  cfg.block_bytes = 4 << 20;
  rftp::EndpointConfig snd{rig.proc_a.get(), {rig.dev_a.get()}};
  rftp::EndpointConfig rcv{rig.proc_b.get(), {rig.dev_b.get()}};
  rftp::RftpSession sess(snd, rcv, {rig.link.get()}, cfg);

  // ~80% of the transfer's expected duration at line rate, so every event
  // lands while data is still moving.
  const auto horizon = static_cast<sim::SimDuration>(total / 6);
  FaultInjector inj(rig.eng, chaos_plan(seed, horizon, cfg.streams));
  inj.attach(*rig.link);
  const int streams = cfg.streams;
  inj.set_qp_kill_handler(
      [&sess, streams](int qp) { sess.kill_stream(qp % streams); });
  inj.arm();

  rftp::ZeroSource src(total);
  rftp::NullSink dst;
  RftpChaosOutcome out;
  out.result = exp::run_task(rig.eng, sess.run(src, dst, total));
  rig.eng.run();  // drain any fault events scheduled past the transfer
  out.failovers = sess.failovers;
  out.retransmissions = sess.retransmissions;
  out.faults_injected = inj.faults_injected();
  audit.finalize();
  EXPECT_TRUE(audit.ok()) << audit_report(audit);
  if (with_trace) {
    std::ostringstream os;
    tracer.write_chrome_trace(os);
    out.chrome_trace = os.str();
  }
  return out;
}

TEST(ChaosRftp, MultiGbTransferSurvivesSeededPlan) {
  const std::uint64_t total = 2ull << 30;  // 2 GiB
  const auto out = run_rftp_chaos(chaos_seed(), total, false);
  EXPECT_TRUE(out.result.complete);
  EXPECT_TRUE(out.result.integrity_ok);
  EXPECT_EQ(out.result.bytes, total);
  EXPECT_EQ(out.result.blocks, total / (4u << 20));
  // The plan's QP kill fired and was survived by failover.
  EXPECT_GE(out.failovers, 1u);
  EXPECT_GE(out.faults_injected, 5u);  // 4 loss + flap + spike + hole + kill
}

TEST(ChaosRftp, SameSeedReproducesByteIdenticalTrace) {
  const std::uint64_t total = 256ull << 20;
  const auto a = run_rftp_chaos(chaos_seed(), total, true);
  const auto b = run_rftp_chaos(chaos_seed(), total, true);
  ASSERT_FALSE(a.chrome_trace.empty());
  EXPECT_EQ(a.chrome_trace, b.chrome_trace);
  EXPECT_EQ(a.failovers, b.failovers);
  EXPECT_EQ(a.retransmissions, b.retransmissions);
  // And the trace records the injected faults on the fault layer.
  EXPECT_NE(a.chrome_trace.find("\"fault\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// iSCSI write workload shared by the iSER and TCP modes: n_cmds sequential
// WRITEs at distinct LBAs. Returns the count of non-GOOD statuses and
// accumulates the analytically expected integrity digest.

sim::Task<int> drive_writes(iscsi::Initiator& init, numa::Thread& th,
                            int n_cmds, std::uint32_t blocks_per_cmd,
                            mem::Buffer& buf, std::uint64_t& expected) {
  int bad = 0;
  for (int i = 0; i < n_cmds; ++i) {
    const std::uint64_t lba = std::uint64_t{static_cast<unsigned>(i)} *
                              blocks_per_cmd;
    const auto st = co_await init.submit_write(th, 0, lba, blocks_per_cmd,
                                               buf);
    if (st != scsi::Status::kGood) ++bad;
    else expected ^= block_range_tag(lba, blocks_per_cmd);
  }
  co_return bad;
}

TEST(ChaosIser, MultiGbWriteWorkloadSurvivesSeededPlan) {
  TinyRig rig;
  check::Auditor audit(rig.eng);
  auto tgt_fs = std::make_unique<mem::Tmpfs>(*rig.b);
  auto& f = tgt_fs->create("lun0", 2ull << 30, numa::MemPolicy::kBind, 0);
  scsi::Lun lun(0, *tgt_fs, f);
  iser::IserSession session(*rig.dev_a, *rig.dev_b, *rig.link, *rig.proc_a,
                            *rig.proc_b);
  mem::BufferPool staging(*rig.b, "staging", 4, 1 << 20,
                          numa::MemPolicy::kBind, 0);
  staging.mark_registered();
  iscsi::Target target(*rig.proc_b, session.target_ep(),
                       std::vector<scsi::Lun*>{&lun}, staging);
  iscsi::RetryPolicy policy;  // capped retries absorb the loss bursts
  iscsi::Initiator initiator(*rig.proc_a, session.initiator_ep(),
                             2 * sim::kMillisecond, policy);
  numa::Thread& ith = rig.proc_a->spawn_thread();
  numa::Thread& tth = rig.proc_b->spawn_thread();
  exp::run_task(rig.eng, session.start(ith, tth));
  target.start(2);
  iscsi::LoginParams params;
  ASSERT_TRUE(exp::run_task(rig.eng, initiator.login(ith, params)));
  initiator.start_dispatcher(ith);
  iser::SessionRecoveryPolicy rp;
  rp.mr_bytes_initiator = 4 << 20;
  rp.mr_bytes_target = 4 << 20;
  session.enable_recovery(ith, tth, rp);

  FaultInjector inj(rig.eng,
                    chaos_plan(chaos_seed(), 400 * sim::kMillisecond, 1));
  inj.attach(*rig.link);
  inj.set_qp_kill_handler([&session](int) { session.kill(); });
  inj.arm();

  // 2 GiB: 512 x 4 MiB WRITEs at distinct LBAs.
  const int n_cmds = 512;
  const std::uint32_t blocks_per_cmd = (4u << 20) / 512;
  auto buf = make_buffer(*rig.a, 4 << 20, 0);
  std::uint64_t expected = 0;
  const int bad = exp::run_task(
      rig.eng,
      drive_writes(initiator, ith, n_cmds, blocks_per_cmd, buf, expected));
  rig.eng.run();

  EXPECT_EQ(bad, 0);
  EXPECT_GE(inj.faults_injected(), 5u);
  EXPECT_GE(session.recoveries(), 1u);  // the QP kill was recovered
  EXPECT_FALSE(session.abandoned());
  // Every logical block executed exactly once despite retransmissions:
  // each 4 MiB command lands as four 1 MiB staging segments, and the
  // XOR ledger composes segment tags back to the per-command range tag.
  EXPECT_EQ(lun.writes_executed(), 4u * static_cast<std::uint64_t>(n_cmds));
  EXPECT_EQ(lun.written_digest(), expected);
  audit.finalize();
  EXPECT_TRUE(audit.ok()) << audit_report(audit);
}

TEST(ChaosTcp, MultiGbWriteWorkloadSurvivesSeededPlan) {
  TinyRig rig;
  check::Auditor audit(rig.eng);
  auto tgt_fs = std::make_unique<mem::Tmpfs>(*rig.b);
  auto& f = tgt_fs->create("lun0", 2ull << 30, numa::MemPolicy::kBind, 0);
  scsi::Lun lun(0, *tgt_fs, f);
  iscsi::TcpSession session(*rig.a, 0, *rig.b, 0, *rig.link, *rig.proc_a,
                            *rig.proc_b);
  mem::BufferPool staging(*rig.b, "staging", 4, 1 << 20,
                          numa::MemPolicy::kBind, 0);
  iscsi::Target target(*rig.proc_b, session.target_ep(),
                       std::vector<scsi::Lun*>{&lun}, staging);
  iscsi::RetryPolicy policy;
  iscsi::Initiator initiator(*rig.proc_a, session.initiator_ep(),
                             5 * sim::kMillisecond, policy);
  numa::Thread& ith = rig.proc_a->spawn_thread();
  numa::Thread& tth = rig.proc_b->spawn_thread();
  numa::Thread& itx = rig.proc_a->spawn_thread();
  numa::Thread& ttx = rig.proc_b->spawn_thread();
  exp::run_task(rig.eng, session.start(ith, itx, tth, ttx));
  target.start(2);
  iscsi::LoginParams params;
  ASSERT_TRUE(exp::run_task(rig.eng, initiator.login(ith, params)));
  initiator.start_dispatcher(ith);

  // Same plan shape; the qpkill event has no QP to hit on the TCP path and
  // is counted as skipped — the wire faults are all absorbed inside TCP.
  FaultInjector inj(rig.eng,
                    chaos_plan(chaos_seed(), 400 * sim::kMillisecond, 1));
  inj.attach(*rig.link);
  inj.arm();

  const int n_cmds = 512;
  const std::uint32_t blocks_per_cmd = (4u << 20) / 512;
  auto buf = make_buffer(*rig.a, 4 << 20, 0);
  std::uint64_t expected = 0;
  const int bad = exp::run_task(
      rig.eng,
      drive_writes(initiator, ith, n_cmds, blocks_per_cmd, buf, expected));
  rig.eng.run();

  EXPECT_EQ(bad, 0);
  EXPECT_GE(inj.faults_injected(), 4u);
  EXPECT_EQ(inj.skipped_events(), 1u);  // the qpkill, by design
  EXPECT_EQ(lun.writes_executed(), 4u * static_cast<std::uint64_t>(n_cmds));
  EXPECT_EQ(lun.written_digest(), expected);
  audit.finalize();
  EXPECT_TRUE(audit.ok()) << audit_report(audit);
}

}  // namespace
}  // namespace e2e::fault
