// kv-under-faults chaos leg: the small-message tier completes its closed
// loop under a seeded random fault plan (loss bursts plus QP kills, with a
// supervisor re-establishing the connection while client retry timers ride
// the outage), the QP ledgers audit clean, and the same seed reproduces a
// byte-identical digest. The seed comes from E2E_CHAOS_SEED; CI sweeps a
// matrix of seeds over everything labelled `chaos`.
#include <gtest/gtest.h>

#include <cstdlib>

#include "exp/kv_scenario.hpp"

namespace e2e::exp {
namespace {

std::uint64_t chaos_seed() {
  const char* s = std::getenv("E2E_CHAOS_SEED");
  if (s == nullptr || *s == '\0') return 1;
  return std::strtoull(s, nullptr, 10);
}

KvParams chaos_kv() {
  KvParams p;
  p.pairs = 2;
  p.shards = 2;
  p.keys = 2048;
  p.ops_per_pair = 1024;
  p.value_bytes = 1024;
  p.store_shards = 2;
  p.depth = 4;
  p.remote_every = 16;
  p.seed = chaos_seed();
  p.fault_seed = chaos_seed();
  p.audit = true;
  return p;
}

TEST(KvChaosTest, CompletesAndAuditsCleanUnderSeededFaults) {
  const auto r = run_kv(chaos_kv());
  EXPECT_TRUE(r.complete) << "seed " << chaos_seed();
  EXPECT_TRUE(r.audit_ok) << "seed " << chaos_seed() << ": "
                          << r.audit_violations << " violations";
  EXPECT_EQ(r.ops_done, 2u * 1024u);
  // Every op resolves: served normally, retried to completion across the
  // outage, or (rarely) failed out after max_retries — never hung.
  EXPECT_EQ(r.gets + r.puts, r.ops_done);
}

TEST(KvChaosTest, SameSeedSameFaultsSameDigest) {
  const auto a = run_kv(chaos_kv());
  const auto b = run_kv(chaos_kv());
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.rpc_retries, b.rpc_retries);
  EXPECT_EQ(a.sim_events, b.sim_events);
}

}  // namespace
}  // namespace e2e::exp
