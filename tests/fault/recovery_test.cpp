// Layered recovery: QP error -> reset -> RTS, CM re-establishment, iSER
// session supervision, and the iSCSI initiator's capped retry budget.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "exp/runner.hpp"
#include "fault/integrity.hpp"
#include "iscsi/initiator.hpp"
#include "iscsi/target.hpp"
#include "iser/session.hpp"
#include "rdma/rdma.hpp"
#include "testutil.hpp"

namespace e2e::fault {
namespace {

using e2e::test::TinyRig;
using e2e::test::make_buffer;

struct QpRecoveryTest : ::testing::Test {
  TinyRig rig;
  std::unique_ptr<rdma::ConnectedPair> pair;
  numa::Thread* tha = nullptr;
  numa::Thread* thb = nullptr;

  void SetUp() override {
    pair = std::make_unique<rdma::ConnectedPair>(*rig.dev_a, *rig.dev_b,
                                                 *rig.link);
    tha = &rig.proc_a->spawn_thread();
    thb = &rig.proc_b->spawn_thread();
  }

  /// Posts one 1 MiB RDMA Write a->b and returns its completion success.
  bool write_once(mem::Buffer& src, mem::Buffer& dst) {
    rdma::SendWr wr;
    wr.op = rdma::Opcode::kWrite;
    wr.wr_id = 1;
    wr.local = &src;
    wr.bytes = src.bytes;
    wr.remote = rdma::RemoteKey{&dst};
    exp::run_task(rig.eng, pair->a().post_send(*tha, wr));
    rig.eng.run();
    auto wc = pair->a().send_cq().try_poll();
    EXPECT_TRUE(wc.has_value());
    return wc.has_value() && wc->success;
  }
};

TEST_F(QpRecoveryTest, KillFailsSendsAndDropsDelivery) {
  auto src = make_buffer(*rig.a, 1 << 20, 0);
  auto dst = make_buffer(*rig.b, 1 << 20, 0);
  pair->a().kill();
  EXPECT_FALSE(pair->a().alive());
  EXPECT_TRUE(pair->a().error_event().is_set());
  EXPECT_FALSE(write_once(src, dst));
  EXPECT_EQ(pair->b().bytes_delivered(), 0u);
}

TEST_F(QpRecoveryTest, KillIsIdempotent) {
  pair->kill();
  pair->kill();
  EXPECT_FALSE(pair->alive());
}

TEST_F(QpRecoveryTest, RecoverWalksBackToRtsAndTrafficFlows) {
  auto src = make_buffer(*rig.a, 1 << 20, 0);
  auto dst = make_buffer(*rig.b, 1 << 20, 0);
  pair->kill();
  const auto t0 = rig.eng.now();
  exp::run_task(rig.eng, pair->reestablish(*tha, *thb, 1 << 20, 1 << 20));
  EXPECT_TRUE(pair->alive());
  // Re-establishment is not free: QP bring-up + MR revalidation + RTT.
  EXPECT_GE(rig.eng.now() - t0, rig.link->rtt());
  EXPECT_TRUE(write_once(src, dst));
  EXPECT_EQ(pair->b().bytes_delivered(), 1u << 20);
}

TEST_F(QpRecoveryTest, ReestablishOnHealthyPairIsNoOpRecover) {
  exp::run_task(rig.eng, pair->reestablish(*tha, *thb));
  EXPECT_TRUE(pair->alive());
}

/// iSER rig with a retry-capable initiator (command timeouts on, so lost
/// PDUs retransmit instead of hanging the submitter).
struct IserRecoveryTest : ::testing::Test {
  TinyRig rig;
  std::unique_ptr<mem::Tmpfs> tgt_fs;
  std::unique_ptr<iser::IserSession> session;
  std::unique_ptr<mem::BufferPool> staging;
  std::vector<std::unique_ptr<scsi::Lun>> luns;
  std::unique_ptr<iscsi::Target> target;
  std::unique_ptr<iscsi::Initiator> initiator;
  numa::Thread* ith = nullptr;
  numa::Thread* tth = nullptr;

  void bring_up(iscsi::RetryPolicy policy,
                sim::SimDuration command_timeout = 500 * sim::kMicrosecond) {
    tgt_fs = std::make_unique<mem::Tmpfs>(*rig.b);
    auto& f = tgt_fs->create("lun0", 8 << 20, numa::MemPolicy::kBind, 0);
    luns.push_back(std::make_unique<scsi::Lun>(0, *tgt_fs, f));
    session = std::make_unique<iser::IserSession>(
        *rig.dev_a, *rig.dev_b, *rig.link, *rig.proc_a, *rig.proc_b);
    staging = std::make_unique<mem::BufferPool>(
        *rig.b, "staging", 4, 1 << 20, numa::MemPolicy::kBind, 0);
    staging->mark_registered();
    target = std::make_unique<iscsi::Target>(
        *rig.proc_b, session->target_ep(),
        std::vector<scsi::Lun*>{luns[0].get()}, *staging);
    initiator = std::make_unique<iscsi::Initiator>(
        *rig.proc_a, session->initiator_ep(), command_timeout, policy);
    ith = &rig.proc_a->spawn_thread();
    tth = &rig.proc_b->spawn_thread();
    exp::run_task(rig.eng, session->start(*ith, *tth));
    target->start(2);
    iscsi::LoginParams params;
    ASSERT_TRUE(exp::run_task(rig.eng, initiator->login(*ith, params)));
    initiator->start_dispatcher(*ith);
  }
};

TEST_F(IserRecoveryTest, SupervisorRecoversKilledSessionAndIoCompletes) {
  bring_up(iscsi::RetryPolicy{});
  session->enable_recovery(*ith, *tth);
  session->kill();
  EXPECT_FALSE(session->pair().alive());

  auto buf = make_buffer(*rig.a, 1 << 20, 0);
  const auto status =
      exp::run_task(rig.eng, initiator->submit_write(*ith, 0, 0, 2048, buf));
  EXPECT_EQ(status, scsi::Status::kGood);
  EXPECT_GE(session->recoveries(), 1u);
  EXPECT_TRUE(session->pair().alive());
  // The write executed exactly once despite command retransmissions.
  EXPECT_EQ(luns[0]->written_digest(), fault::block_range_tag(0, 2048));
  EXPECT_EQ(luns[0]->writes_executed(), 1u);
}

TEST_F(IserRecoveryTest, ExhaustedRecoveryBudgetSurfacesTerminalError) {
  iscsi::RetryPolicy policy;
  policy.max_attempts = 3;
  policy.backoff_cap = 2 * sim::kMillisecond;
  bring_up(policy);
  iser::SessionRecoveryPolicy rp;
  rp.max_attempts = 0;  // first failed recovery abandons the session
  session->enable_recovery(*ith, *tth, rp);
  session->kill();

  auto buf = make_buffer(*rig.a, 1 << 20, 0);
  const auto status =
      exp::run_task(rig.eng, initiator->submit_write(*ith, 0, 0, 2048, buf));
  EXPECT_EQ(status, scsi::Status::kTransportError);
  EXPECT_TRUE(session->abandoned());
  EXPECT_EQ(luns[0]->writes_executed(), 0u);
}

TEST_F(IserRecoveryTest, CappedCommandRetriesNeverHangWithoutRecovery) {
  iscsi::RetryPolicy policy;
  policy.max_attempts = 2;
  policy.backoff_cap = sim::kMillisecond;
  bring_up(policy);
  session->kill();  // no supervisor: the session stays dead

  auto buf = make_buffer(*rig.a, 1 << 20, 0);
  const auto status =
      exp::run_task(rig.eng, initiator->submit_write(*ith, 0, 0, 2048, buf));
  EXPECT_EQ(status, scsi::Status::kTransportError);
  EXPECT_EQ(initiator->command_failures(), 1u);
}

TEST_F(IserRecoveryTest, CrashRefusesReloginsUntilRestartThenRecovers) {
  iscsi::RetryPolicy policy;
  policy.max_attempts = 20;
  policy.backoff_cap = 2 * sim::kMillisecond;
  bring_up(policy);
  session->enable_recovery(*ith, *tth);

  // Crash-stop the target for 5 ms: every re-login inside the window is
  // refused and burns supervisor budget; the one after the host returns
  // succeeds.
  session->crash(5 * sim::kMillisecond);
  EXPECT_FALSE(session->pair().alive());

  auto buf = make_buffer(*rig.a, 1 << 20, 0);
  const auto status =
      exp::run_task(rig.eng, initiator->submit_write(*ith, 0, 0, 2048, buf));
  EXPECT_EQ(status, scsi::Status::kGood);
  EXPECT_GE(session->relogins_refused(), 1u);
  EXPECT_GE(session->recoveries(), 1u);
  EXPECT_FALSE(session->abandoned());
  EXPECT_TRUE(session->pair().alive());
  // Command dedup across the crash epoch: the write landed exactly once.
  EXPECT_EQ(luns[0]->writes_executed(), 1u);
  EXPECT_EQ(luns[0]->written_digest(), fault::block_range_tag(0, 2048));
}

TEST_F(IserRecoveryTest, PermanentCrashExhaustsBudgetAndAbandonsExactlyOnce) {
  iscsi::RetryPolicy policy;
  policy.max_attempts = 3;
  policy.backoff_cap = 2 * sim::kMillisecond;
  bring_up(policy);
  iser::SessionRecoveryPolicy rp;
  rp.max_attempts = 3;
  rp.backoff_cap = 2 * sim::kMillisecond;
  session->enable_recovery(*ith, *tth, rp);

  session->crash(0);  // the target never comes back

  auto buf = make_buffer(*rig.a, 1 << 20, 0);
  const auto status =
      exp::run_task(rig.eng, initiator->submit_write(*ith, 0, 0, 2048, buf));
  EXPECT_EQ(status, scsi::Status::kTransportError);
  EXPECT_TRUE(session->abandoned());
  // The budget burned one refused re-login per attempt, then gave up —
  // the supervisor exits on abandonment so it cannot abandon twice.
  EXPECT_EQ(session->relogins_refused(),
            static_cast<std::uint64_t>(rp.max_attempts));
  EXPECT_EQ(session->recoveries(), 0u);
  EXPECT_EQ(luns[0]->writes_executed(), 0u);
  rig.eng.run();
  EXPECT_TRUE(session->abandoned());
}

TEST_F(IserRecoveryTest, PolicyBackoffScheduleMatchesSharedBackoff) {
  // The supervisor delegates its delay math to fault::Backoff; pin the
  // equivalence so policy fields keep meaning what they meant: same
  // (base, multiplier, cap, jitter, seed) => same schedule, twice.
  iser::SessionRecoveryPolicy rp;
  fault::Backoff a(rp.backoff, rp.multiplier, rp.backoff_cap, rp.jitter,
                   rp.seed);
  fault::Backoff b(rp.backoff, rp.multiplier, rp.backoff_cap, rp.jitter,
                   rp.seed);
  for (int i = 0; i < rp.max_attempts + 2; ++i) {
    const auto d = a.next();
    EXPECT_EQ(d, b.next());
    // Every delay respects the configured cap plus its jitter margin.
    EXPECT_LE(d, static_cast<sim::SimDuration>(
                     static_cast<double>(rp.backoff_cap) * (1.0 + rp.jitter)));
    EXPECT_GE(d, rp.backoff);
  }
}

TEST_F(IserRecoveryTest, LossBurstIsAbsorbedByCommandRetries) {
  bring_up(iscsi::RetryPolicy{});
  rig.link->inject_failures(net::Direction::kAtoB, 1);  // eat the command PDU
  auto buf = make_buffer(*rig.a, 1 << 20, 0);
  const auto status =
      exp::run_task(rig.eng, initiator->submit_write(*ith, 0, 0, 2048, buf));
  EXPECT_EQ(status, scsi::Status::kGood);
  EXPECT_GE(initiator->command_retries(), 1u);
  EXPECT_EQ(luns[0]->written_digest(), fault::block_range_tag(0, 2048));
}

}  // namespace
}  // namespace e2e::fault
