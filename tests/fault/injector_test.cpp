#include "fault/injector.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "exp/runner.hpp"
#include "fault/plan.hpp"
#include "testutil.hpp"

namespace e2e::fault {
namespace {

using e2e::test::TinyRig;

struct ProbePoint {
  net::Direction dir = net::Direction::kAtoB;
  sim::SimTime at = 0;
};

/// Samples the link's transmit fate at each probe point, all inside one
/// coroutine — run_task drains the whole event queue, so separate tasks
/// could not observe two points inside the same fault window.
sim::Task<> probe_many(sim::Engine& eng, net::Link& link,
                       const std::vector<ProbePoint>& points,
                       std::vector<net::TxFate>& out) {
  for (const auto& p : points) {
    if (p.at > eng.now()) co_await sim::Delay{eng, p.at - eng.now()};
    out.push_back(link.transmit_fate(p.dir, 1500.0));
  }
}

struct InjectorTest : ::testing::Test {
  TinyRig rig;

  std::vector<net::TxFate> probe(const std::vector<ProbePoint>& points) {
    std::vector<net::TxFate> out;
    exp::run_task(rig.eng, probe_many(rig.eng, *rig.link, points, out));
    return out;
  }
};

TEST_F(InjectorTest, LossBurstFailsExactlyNMessagesOneDirection) {
  FaultInjector inj(rig.eng, FaultPlan::parse("loss@1ms:n=2,dir=ab,link=0"));
  inj.attach(*rig.link);
  inj.arm();
  rig.eng.run();

  EXPECT_TRUE(rig.link->transmit_fate(net::Direction::kAtoB, 1500.0).fail);
  // The opposite direction is unaffected mid-burst.
  EXPECT_FALSE(rig.link->transmit_fate(net::Direction::kBtoA, 1500.0).fail);
  EXPECT_TRUE(rig.link->transmit_fate(net::Direction::kAtoB, 1500.0).fail);
  EXPECT_FALSE(rig.link->transmit_fate(net::Direction::kAtoB, 1500.0).fail);

  EXPECT_EQ(inj.faults_injected(), 1u);
  EXPECT_EQ(inj.messages_failed(), 2u);
}

TEST_F(InjectorTest, FlapDropsBothDirectionsForTheWindow) {
  FaultInjector inj(rig.eng, FaultPlan::parse("flap@1ms:dur=2ms,link=0"));
  inj.attach(*rig.link);
  inj.arm();

  const auto fates = probe({{net::Direction::kAtoB, 2 * sim::kMillisecond},
                            {net::Direction::kBtoA, 2 * sim::kMillisecond},
                            {net::Direction::kAtoB, 4 * sim::kMillisecond},
                            {net::Direction::kBtoA, 4 * sim::kMillisecond}});
  ASSERT_EQ(fates.size(), 4u);
  EXPECT_TRUE(fates[0].fail);
  EXPECT_TRUE(fates[1].fail);
  // Window over: the link is back.
  EXPECT_FALSE(fates[2].fail);
  EXPECT_FALSE(fates[3].fail);
}

TEST_F(InjectorTest, SpikeAddsLatencyWithoutDropping) {
  FaultInjector inj(
      rig.eng, FaultPlan::parse("spike@1ms:dur=2ms,add=5ms,link=0"));
  inj.attach(*rig.link);
  inj.arm();

  const auto fates = probe({{net::Direction::kAtoB, 2 * sim::kMillisecond},
                            {net::Direction::kAtoB, 4 * sim::kMillisecond}});
  ASSERT_EQ(fates.size(), 2u);
  EXPECT_FALSE(fates[0].fail);
  EXPECT_EQ(fates[0].extra_latency, 5 * sim::kMillisecond);
  EXPECT_FALSE(fates[1].fail);
  EXPECT_EQ(fates[1].extra_latency, 0u);
}

TEST_F(InjectorTest, BlackholeFailsLateInOneDirectionOnly) {
  FaultInjector inj(rig.eng,
                    FaultPlan::parse("hole@1ms:dur=2ms,dir=ba,link=0"));
  inj.attach(*rig.link);
  inj.arm();

  const auto fates = probe({{net::Direction::kBtoA, 2 * sim::kMillisecond},
                            {net::Direction::kAtoB, 2 * sim::kMillisecond},
                            {net::Direction::kBtoA, 4 * sim::kMillisecond}});
  ASSERT_EQ(fates.size(), 3u);
  EXPECT_TRUE(fates[0].fail);
  // The sender only learns after its transport retries exhaust.
  EXPECT_EQ(fates[0].fail_delay, 4u * rig.link->rtt());
  EXPECT_FALSE(fates[1].fail);  // the other direction is unaffected
  EXPECT_FALSE(fates[2].fail);  // window over
}

TEST_F(InjectorTest, QpKillInvokesHandlerWithIndex) {
  FaultInjector inj(rig.eng, FaultPlan::parse("qpkill@1ms:qp=3"));
  inj.attach(*rig.link);
  std::vector<int> killed;
  inj.set_qp_kill_handler([&killed](int qp) { killed.push_back(qp); });
  inj.arm();
  rig.eng.run();
  ASSERT_EQ(killed.size(), 1u);
  EXPECT_EQ(killed[0], 3);
  EXPECT_EQ(inj.faults_injected(), 1u);
}

TEST_F(InjectorTest, QpKillWithoutHandlerIsCountedSkipped) {
  FaultInjector inj(rig.eng, FaultPlan::parse("qpkill@1ms:qp=0"));
  inj.attach(*rig.link);
  inj.arm();
  rig.eng.run();
  EXPECT_EQ(inj.skipped_events(), 1u);
}

TEST_F(InjectorTest, EventsOnUnattachedLinksAreSkipped) {
  FaultInjector inj(
      rig.eng, FaultPlan::parse("loss@1ms:link=5; flap@2ms:dur=1ms,link=0"));
  inj.attach(*rig.link);
  inj.arm();
  rig.eng.run();
  EXPECT_EQ(inj.skipped_events(), 1u);
  EXPECT_EQ(inj.faults_injected(), 1u);  // the flap still fired
}

TEST_F(InjectorTest, LegacyInjectedFailuresFoldInWithHookFaults) {
  FaultInjector inj(rig.eng, FaultPlan{});
  inj.attach(*rig.link);
  inj.arm();
  rig.link->inject_failures(net::Direction::kAtoB, 1);
  EXPECT_TRUE(rig.link->transmit_fate(net::Direction::kAtoB, 1500.0).fail);
  EXPECT_FALSE(rig.link->transmit_fate(net::Direction::kAtoB, 1500.0).fail);
  // The hook itself never failed anything.
  EXPECT_EQ(inj.messages_failed(), 0u);
}

TEST_F(InjectorTest, AttachAndArmMisuseThrows) {
  FaultInjector inj(rig.eng, FaultPlan{});
  inj.attach(*rig.link);
  EXPECT_THROW(inj.attach(*rig.link), std::logic_error);
  inj.arm();
  EXPECT_THROW(inj.arm(), std::logic_error);
  auto other = net::make_roce_lan(rig.eng, "other");
  EXPECT_THROW(inj.attach(*other), std::logic_error);
}

TEST_F(InjectorTest, DetachesHookOnDestruction) {
  {
    FaultInjector inj(rig.eng, FaultPlan{});
    inj.attach(*rig.link);
    EXPECT_EQ(rig.link->fault_hook(), &inj);
  }
  EXPECT_EQ(rig.link->fault_hook(), nullptr);
}

}  // namespace
}  // namespace e2e::fault
