// Unit tests for the unified watchdog/deadline hierarchy: the Backoff
// retry schedule (extracted from the iSER supervisor), the grow/with_jitter
// timeout laws (extracted from the iSCSI initiator), and the quiet-period
// Watchdog that declares a silent peer dead.
#include "fault/watchdog.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hpp"
#include "sim/rng.hpp"

namespace e2e::fault {
namespace {

// ---------------------------------------------------------------------------
// Backoff

TEST(Backoff, GrowsExponentiallyAndRespectsCap) {
  // jitter = 0: the schedule is exactly the multiply-and-cap ladder.
  Backoff b(sim::kMillisecond, 2.0, 8 * sim::kMillisecond, 0.0, 1);
  EXPECT_EQ(b.next(), 1 * sim::kMillisecond);
  EXPECT_EQ(b.next(), 2 * sim::kMillisecond);
  EXPECT_EQ(b.next(), 4 * sim::kMillisecond);
  EXPECT_EQ(b.next(), 8 * sim::kMillisecond);
  EXPECT_EQ(b.next(), 8 * sim::kMillisecond);  // capped forever after
  EXPECT_EQ(b.attempts(), 5);
}

TEST(Backoff, JitterStaysWithinConfiguredFraction) {
  const double jitter = 0.25;
  Backoff b(sim::kMillisecond, 2.0, 50 * sim::kMillisecond, jitter, 42);
  sim::SimDuration expected = sim::kMillisecond;
  for (int i = 0; i < 8; ++i) {
    const auto d = b.next();
    EXPECT_GE(d, expected);
    EXPECT_LE(d, static_cast<sim::SimDuration>(
                     static_cast<double>(expected) * (1.0 + jitter)));
    expected = std::min(expected * 2, 50 * sim::kMillisecond);
  }
}

TEST(Backoff, SameSeedProducesIdenticalSchedule) {
  Backoff a(sim::kMillisecond, 2.0, 50 * sim::kMillisecond, 0.2, 0xC0FFEE);
  Backoff b(sim::kMillisecond, 2.0, 50 * sim::kMillisecond, 0.2, 0xC0FFEE);
  std::vector<sim::SimDuration> sa, sb;
  for (int i = 0; i < 10; ++i) {
    sa.push_back(a.next());
    sb.push_back(b.next());
  }
  EXPECT_EQ(sa, sb);

  Backoff c(sim::kMillisecond, 2.0, 50 * sim::kMillisecond, 0.2, 0xDEAD);
  bool any_diff = false;
  for (const auto d : sa) any_diff |= c.next() != d;
  EXPECT_TRUE(any_diff);
}

TEST(Backoff, ResetRestartsFromBase) {
  Backoff b(sim::kMillisecond, 2.0, 50 * sim::kMillisecond, 0.0, 1);
  (void)b.next();
  (void)b.next();
  EXPECT_EQ(b.attempts(), 2);
  b.reset();
  EXPECT_EQ(b.attempts(), 0);
  EXPECT_EQ(b.next(), sim::kMillisecond);
}

TEST(Backoff, JitterDrawIsUnconditional) {
  // Even with jitter = 0 the RNG advances per next(), so a policy that
  // later enables jitter replays the identical decision stream.
  Backoff z(sim::kMillisecond, 2.0, 50 * sim::kMillisecond, 0.0, 7);
  (void)z.next();
  (void)z.next();
  // No crash / no state divergence to observe directly here beyond the
  // schedule staying deterministic; the property that matters is pinned
  // in the iSER supervisor equivalence (recovery tests).
  EXPECT_EQ(z.attempts(), 2);
}

// ---------------------------------------------------------------------------
// grow / with_jitter (the iSCSI timeout laws)

TEST(TimeoutLaws, GrowIsCappedOnlyWhenCapSet) {
  EXPECT_EQ(grow(10 * sim::kMillisecond, 2.0, 0), 20 * sim::kMillisecond);
  EXPECT_EQ(grow(10 * sim::kMillisecond, 2.0, 15 * sim::kMillisecond),
            15 * sim::kMillisecond);
  EXPECT_EQ(grow(10 * sim::kMillisecond, 1.5, 0), 15 * sim::kMillisecond);
}

TEST(TimeoutLaws, WithJitterBoundsAndZeroFractionDrawsNothing) {
  sim::Rng rng(123);
  const auto v = 10 * sim::kMillisecond;
  for (int i = 0; i < 16; ++i) {
    const auto j = with_jitter(v, 0.5, rng);
    EXPECT_GE(j, v);
    EXPECT_LE(j, v + v / 2);
  }
  // frac = 0 must not consume from the RNG stream (the initiator's
  // historical behaviour: disabled jitter leaves the stream untouched).
  sim::Rng a(77), b(77);
  EXPECT_EQ(with_jitter(v, 0.0, a), v);
  EXPECT_EQ(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
}

// ---------------------------------------------------------------------------
// Watchdog

struct WatchdogTest : ::testing::Test {
  sim::Engine eng;
  Watchdog wd{eng};
  int deaths = 0;
  Deadline dl{10 * sim::kMillisecond, 3, 0};

  void arm() {
    wd.arm(dl, [this] { ++deaths; });
  }
};

TEST_F(WatchdogTest, RegularKicksKeepThePeerAlive) {
  arm();
  for (int i = 1; i <= 20; ++i)
    eng.schedule_after(i * 5 * sim::kMillisecond, [this] { wd.kick(); });
  eng.schedule_after(110 * sim::kMillisecond, [this] { wd.disarm(); });
  eng.run();
  EXPECT_EQ(deaths, 0);
  EXPECT_FALSE(wd.declared_dead());
  EXPECT_EQ(wd.suspicions(), 0u);
  EXPECT_EQ(wd.false_suspicions(), 0u);
}

TEST_F(WatchdogTest, ConsecutiveQuietPeriodsDeclareDeadExactlyOnce) {
  arm();
  eng.run();  // no kicks: checks at 10/20/30 ms stack to max_quiet
  EXPECT_EQ(deaths, 1);
  EXPECT_TRUE(wd.declared_dead());
  EXPECT_FALSE(wd.armed());
  EXPECT_EQ(wd.suspicions(), 3u);
  EXPECT_EQ(eng.now(), 30 * sim::kMillisecond);
}

TEST_F(WatchdogTest, SlowPeerIsAFalseSuspicionNotADeath) {
  arm();
  // Check @10ms raises a suspicion; the kick @15ms clears it @20ms.
  eng.schedule_after(15 * sim::kMillisecond, [this] { wd.kick(); });
  eng.schedule_after(25 * sim::kMillisecond, [this] { wd.disarm(); });
  int false_suspects = 0;
  wd.set_false_suspect_handler([&false_suspects] { ++false_suspects; });
  eng.run();
  EXPECT_EQ(deaths, 0);
  EXPECT_FALSE(wd.declared_dead());
  EXPECT_EQ(wd.suspicions(), 1u);
  EXPECT_EQ(wd.false_suspicions(), 1u);
  EXPECT_EQ(false_suspects, 1);
}

TEST_F(WatchdogTest, HardDeadlineOverridesQuietBudget) {
  dl.max_quiet = 1000;  // quiet accounting alone would never fire
  dl.hard = 35 * sim::kMillisecond;
  arm();
  eng.run();
  EXPECT_EQ(deaths, 1);
  EXPECT_TRUE(wd.declared_dead());
  // First check at/after the hard cap: 40 ms.
  EXPECT_EQ(eng.now(), 40 * sim::kMillisecond);
}

TEST_F(WatchdogTest, DisarmStopsChecksAndRearmStartsFresh) {
  arm();
  eng.schedule_after(15 * sim::kMillisecond, [this] { wd.disarm(); });
  eng.run();
  EXPECT_EQ(deaths, 0);
  EXPECT_FALSE(wd.armed());

  // Re-arm after a disarm: full quiet budget again.
  arm();
  EXPECT_TRUE(wd.armed());
  eng.run();
  EXPECT_EQ(deaths, 1);
  EXPECT_TRUE(wd.declared_dead());
}

TEST_F(WatchdogTest, KickAfterSuspicionResetsQuietBudget) {
  arm();
  // Suspicions at 10 and 20 ms (budget 3); the kick at 25 ms clears the
  // stack at 30 ms, so death would need three more quiet periods.
  eng.schedule_after(25 * sim::kMillisecond, [this] { wd.kick(); });
  eng.run();
  EXPECT_EQ(deaths, 1);
  // 30 ms clears, then 40/50/60 ms stack to the budget.
  EXPECT_EQ(eng.now(), 60 * sim::kMillisecond);
  EXPECT_EQ(wd.false_suspicions(), 1u);
}

}  // namespace
}  // namespace e2e::fault
