// Crash chaos suite (ctest -L crash): host crash-stops composed with the
// existing wire-fault chaos — a crash landing inside a link flap, a QP
// kill racing a restart, and seeded random plans mixing crashes with loss
// bursts, flaps, spikes, blackholes and QP kills. Every run is audited;
// the cross-epoch conservation rules (acked bytes never double-counted,
// exactly-once block delivery across resume) must hold on every seed, and
// the same seed must reproduce byte-identical trace and stats output.
// The seed comes from E2E_CHAOS_SEED (CI sweeps a 16-seed matrix).
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>

#include "check/audit.hpp"
#include "exp/runner.hpp"
#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "rftp/rftp.hpp"
#include "stats/registry.hpp"
#include "testutil.hpp"
#include "trace/tracer.hpp"

namespace e2e::fault {
namespace {

using e2e::test::TinyRig;

std::string audit_report(const check::Auditor& au) {
  std::ostringstream os;
  au.report(os);
  return os.str();
}

std::uint64_t chaos_seed() {
  const char* s = std::getenv("E2E_CHAOS_SEED");
  if (s == nullptr || *s == '\0') return 1;
  return std::strtoull(s, nullptr, 10);
}

struct CrashChaosOutcome {
  rftp::TransferResult result;
  std::uint64_t failovers = 0;
  std::uint64_t rolled_back = 0;
  std::uint64_t faults_injected = 0;
  std::string chrome_trace;
  std::string stats_json;
};

/// One audited rftp run under `plan`, with the crash handler wired. The
/// auditor's finalize() gates the whole suite: any conservation violation
/// across a crash epoch fails the test.
CrashChaosOutcome run_crash_chaos(const FaultPlan& plan, std::uint64_t total,
                                  int checkpoint_blocks, bool with_trace) {
  TinyRig rig;
  check::Auditor audit(rig.eng);
  trace::Tracer tracer(rig.eng);
  stats::Registry stats(rig.eng);
  if (with_trace) {
    tracer.install();
    stats.install();
  }

  rftp::RftpConfig cfg;
  cfg.streams = 3;
  cfg.block_bytes = 4 << 20;
  cfg.checkpoint_blocks = checkpoint_blocks;
  rftp::EndpointConfig snd{rig.proc_a.get(), {rig.dev_a.get()}};
  rftp::EndpointConfig rcv{rig.proc_b.get(), {rig.dev_b.get()}};
  rftp::RftpSession sess(snd, rcv, {rig.link.get()}, cfg);

  FaultInjector inj(rig.eng, plan);
  inj.attach(*rig.link);
  const int streams = cfg.streams;
  inj.set_qp_kill_handler(
      [&sess, streams](int qp) { sess.kill_stream(qp % streams); });
  inj.set_crash_handler([&sess](int host, sim::SimDuration down) {
    sess.crash_host(host, down);
  });
  inj.arm();

  rftp::ZeroSource src(total);
  rftp::NullSink dst;
  CrashChaosOutcome out;
  out.result = exp::run_task(rig.eng, sess.run(src, dst, total));
  rig.eng.run();  // drain fault/restart events scheduled past the transfer
  out.failovers = sess.failovers;
  out.rolled_back = sess.rolled_back_blocks;
  out.faults_injected = inj.faults_injected();
  audit.finalize();
  EXPECT_TRUE(audit.ok()) << audit_report(audit);
  if (with_trace) {
    std::ostringstream ts, ss;
    tracer.write_chrome_trace(ts);
    out.chrome_trace = ts.str();
    stats.write_json(ss);
    out.stats_json = ss.str();
  }
  return out;
}

/// The composed seeded mix: wire chaos plus two host crashes.
FaultPlan crash_chaos_plan(std::uint64_t seed, sim::SimDuration horizon) {
  FaultPlan::RandomParams p;
  p.horizon = horizon;
  p.links = 1;
  p.qps = 3;
  p.loss_bursts = 3;
  p.max_burst = 5;
  p.flaps = 1;
  p.max_flap = 10 * sim::kMillisecond;
  p.spikes = 1;
  p.max_spike = 20 * sim::kMillisecond;
  p.max_extra_latency = sim::kMillisecond;
  p.holes = 1;
  p.max_hole = 5 * sim::kMillisecond;
  p.qp_kills = 1;
  p.hosts = 2;
  p.crashes = 2;
  p.max_down = 30 * sim::kMillisecond;
  return FaultPlan::random(seed, p);
}

TEST(CrashChaos, CrashLandingInsideLinkFlapResumes) {
  // The receiver crashes 5 ms into a 20 ms link flap: restart and resume
  // negotiation begin while the wire is still down.
  const auto plan = FaultPlan::parse(
      "flap@10ms:dur=20ms; crash@15ms:host=1,down=10ms");
  const std::uint64_t total = 256ull << 20;
  const auto out = run_crash_chaos(plan, total, 1, false);
  EXPECT_TRUE(out.result.complete);
  EXPECT_TRUE(out.result.integrity_ok);
  EXPECT_EQ(out.result.bytes, total);
  EXPECT_EQ(out.result.crashes, 1u);
  EXPECT_EQ(out.result.resumes, 1u);
}

TEST(CrashChaos, QpKillRacingARestart) {
  // The sender crashes and restarts; a QP kill lands after the streams
  // revive (restart at 18 ms plus re-establish and MR re-pin), so the
  // failover machinery runs against a fresh epoch.
  const auto plan = FaultPlan::parse(
      "crash@10ms:host=0,down=8ms; qpkill@30ms:qp=1");
  const std::uint64_t total = 256ull << 20;
  const auto out = run_crash_chaos(plan, total, 1, false);
  EXPECT_TRUE(out.result.complete);
  EXPECT_TRUE(out.result.integrity_ok);
  EXPECT_EQ(out.result.bytes, total);
  EXPECT_EQ(out.result.crashes, 1u);
  EXPECT_EQ(out.result.resumes, 1u);
  EXPECT_GE(out.failovers, 1u);
}

TEST(CrashChaos, QpKillDuringDowntimeIsAbsorbed) {
  // The kill fires while every stream is already crash-dead: it must be
  // swallowed, and the restart must still revive the full stream set.
  const auto plan = FaultPlan::parse(
      "crash@10ms:host=1,down=10ms; qpkill@15ms:qp=0");
  const std::uint64_t total = 128ull << 20;
  const auto out = run_crash_chaos(plan, total, 1, false);
  EXPECT_TRUE(out.result.complete);
  EXPECT_EQ(out.result.bytes, total);
  EXPECT_EQ(out.result.resumes, 1u);
}

TEST(CrashChaos, SeededCompositionSurvivesWithCoarseLedger) {
  const std::uint64_t total = 1ull << 30;
  const auto horizon = static_cast<sim::SimDuration>(total / 6);
  const auto plan = crash_chaos_plan(chaos_seed(), horizon);
  const auto out = run_crash_chaos(plan, total, 8, false);
  EXPECT_TRUE(out.result.complete);
  EXPECT_TRUE(out.result.integrity_ok);
  EXPECT_EQ(out.result.bytes, total);
  EXPECT_EQ(out.result.blocks, total / (4u << 20));
  EXPECT_GE(out.result.crashes, 1u);
  EXPECT_EQ(out.result.resumes, out.result.crashes);
  EXPECT_GE(out.faults_injected, 7u);
}

TEST(CrashChaos, SameSeedReproducesByteIdenticalTraceAndStats) {
  const std::uint64_t total = 256ull << 20;
  const auto horizon = static_cast<sim::SimDuration>(total / 6);
  const auto plan = crash_chaos_plan(chaos_seed(), horizon);
  const auto a = run_crash_chaos(plan, total, 4, true);
  const auto b = run_crash_chaos(plan, total, 4, true);
  ASSERT_FALSE(a.chrome_trace.empty());
  EXPECT_EQ(a.chrome_trace, b.chrome_trace);
  EXPECT_EQ(a.stats_json, b.stats_json);
  EXPECT_EQ(a.failovers, b.failovers);
  EXPECT_EQ(a.rolled_back, b.rolled_back);
  EXPECT_EQ(a.result.crashes, b.result.crashes);
  // The crash epoch is visible in the trace.
  EXPECT_NE(a.chrome_trace.find("crash"), std::string::npos);
}

}  // namespace
}  // namespace e2e::fault
