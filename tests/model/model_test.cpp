#include "model/host_profile.hpp"

#include <gtest/gtest.h>

#include "model/cost_model.hpp"
#include "model/units.hpp"

namespace e2e::model {
namespace {

TEST(Units, GbpsRoundTrip) {
  EXPECT_DOUBLE_EQ(gbps_to_bytes_per_s(40.0), 5e9);
  EXPECT_DOUBLE_EQ(bytes_per_s_to_gbps(5e9), 40.0);
  EXPECT_DOUBLE_EQ(gBps_to_bytes_per_s(25.0), 25e9);
  EXPECT_DOUBLE_EQ(ghz_to_cycles_per_s(2.2), 2.2e9);
  EXPECT_EQ(MiB, 1024ull * 1024);
  EXPECT_EQ(GiB, 1024ull * MiB);
}

// Table 1 of the paper, column by column.

TEST(HostProfile, FrontEndLanMatchesTable1) {
  const auto h = front_end_lan_host("fe");
  EXPECT_EQ(h.numa_nodes, 2);
  EXPECT_EQ(h.total_cores(), 16);           // 2x E5-2660
  EXPECT_DOUBLE_EQ(h.core_ghz, 2.2);
  EXPECT_DOUBLE_EQ(h.mem_gbytes, 128);
  ASSERT_EQ(h.nics.size(), 3u);             // three 40G RoCE adapters
  for (const auto& nic : h.nics) {
    EXPECT_EQ(nic.type, LinkType::kRoCE);
    EXPECT_DOUBLE_EQ(nic.rate_gbps, 40.0);
    EXPECT_EQ(nic.mtu, 9000u);
  }
  // STREAM triad: 50 GB/s across both nodes (400 Gbps).
  EXPECT_DOUBLE_EQ(h.total_mem_gBps(), 50.0);
}

TEST(HostProfile, BackEndLanMatchesTable1) {
  const auto h = back_end_lan_host("be");
  EXPECT_EQ(h.total_cores(), 16);  // 2x E5-2650
  EXPECT_DOUBLE_EQ(h.core_ghz, 2.0);
  EXPECT_DOUBLE_EQ(h.mem_gbytes, 384);
  ASSERT_EQ(h.nics.size(), 2u);  // two IB FDR adapters
  for (const auto& nic : h.nics) {
    EXPECT_EQ(nic.type, LinkType::kInfiniBand);
    EXPECT_DOUBLE_EQ(nic.rate_gbps, 56.0);
    EXPECT_EQ(nic.mtu, 65520u);
  }
  // One adapter per NUMA node.
  EXPECT_NE(h.nics[0].numa_node, h.nics[1].numa_node);
}

TEST(HostProfile, WanHostMatchesTable1) {
  const auto h = wan_host("wan");
  EXPECT_EQ(h.total_cores(), 12);  // E5-2670 setup
  EXPECT_DOUBLE_EQ(h.core_ghz, 2.9);
  EXPECT_DOUBLE_EQ(h.mem_gbytes, 64);
  ASSERT_EQ(h.nics.size(), 1u);
  EXPECT_DOUBLE_EQ(h.nics[0].rate_gbps, 40.0);
}

TEST(HostProfile, Rtts) {
  EXPECT_EQ(kLanRoceRtt, 166 * sim::kMicrosecond);
  EXPECT_EQ(kLanIbRtt, 144 * sim::kMicrosecond);
  EXPECT_EQ(kWanRtt, 95 * sim::kMillisecond);
}

TEST(CostModel, DefaultsAreCalibrationSane) {
  const auto& cm = CostModel::defaults();
  // One core moves ~3.5-5 GB/s at 2.2 GHz.
  const double copy_gBps = 2.2 / cm.memcpy_cycles_per_byte;
  EXPECT_GT(copy_gBps, 3.0);
  EXPECT_LT(copy_gBps, 6.0);
  // Touch is cheaper than copy; zero-fill cheaper than copy.
  EXPECT_LT(cm.mem_touch_cycles_per_byte, cm.memcpy_cycles_per_byte);
  EXPECT_LT(cm.zero_fill_cycles_per_byte, cm.memcpy_cycles_per_byte);
  // Remote access penalties are > 1.
  EXPECT_GT(cm.numa_remote_penalty, 1.0);
  EXPECT_GT(cm.numa_remote_channel_factor, 1.0);
  // RDMA posting is orders of magnitude cheaper than TCP per-packet work
  // at jumbo-frame packet counts for a 1 MiB message.
  const double tcp_1mib = (1 << 20) / 9000.0 * cm.tcp_kernel_cycles_per_packet;
  EXPECT_GT(tcp_1mib, 20 * cm.rdma_post_wr_cycles);
  // RDMA Read is less efficient than RDMA Write, but not pathological.
  EXPECT_GT(cm.rdma_read_efficiency, 0.8);
  EXPECT_LT(cm.rdma_read_efficiency, 1.0);
}

TEST(CostModel, PerHostOverridesAreIndependent) {
  auto h = front_end_lan_host("fe");
  h.costs.memcpy_cycles_per_byte = 99.0;
  EXPECT_NE(CostModel::defaults().memcpy_cycles_per_byte, 99.0);
}

}  // namespace
}  // namespace e2e::model
