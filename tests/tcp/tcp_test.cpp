#include "tcp/connection.hpp"

#include <gtest/gtest.h>

#include "exp/runner.hpp"
#include "metrics/throughput.hpp"
#include "numa/process.hpp"
#include "tcp/cubic.hpp"
#include "testutil.hpp"

namespace e2e::tcp {
namespace {

using metrics::CpuCategory;
using e2e::test::TinyRig;

struct TcpRig : ::testing::Test {
  TinyRig rig;
  std::unique_ptr<Connection> conn;
  numa::Thread* tx = nullptr;
  numa::Thread* rx = nullptr;
  numa::Placement src = numa::Placement::on(0);
  numa::Placement dst = numa::Placement::on(0);

  void make(ConnectionOptions opts = {}) {
    conn = std::make_unique<Connection>(*rig.a, 0, *rig.b, 0, *rig.link,
                                        opts);
    tx = &rig.proc_a->spawn_thread();
    rx = &rig.proc_b->spawn_thread();
  }
};

sim::Task<std::uint64_t> recv_all(Connection& c, numa::Thread& th,
                                  numa::Placement buf) {
  std::uint64_t total = 0;
  for (;;) {
    const std::uint64_t n = co_await c.recv(th, buf);
    if (n == 0) co_return total;
    total += n;
  }
}

sim::Task<> send_n(Connection& c, numa::Thread& th, numa::Placement buf,
                   std::uint64_t chunk, int count, bool cached = false) {
  for (int i = 0; i < count; ++i) co_await c.send(th, buf, chunk, cached);
  c.shutdown(th);
}

TEST_F(TcpRig, BytesConservedEndToEnd) {
  make();
  sim::co_spawn(send_n(*conn, *tx, src, 64 * 1024, 10));
  const std::uint64_t got =
      exp::run_task(rig.eng, recv_all(*conn, *rx, dst));
  EXPECT_EQ(got, 640u * 1024);
  EXPECT_EQ(conn->bytes_sent(0), 640u * 1024);
}

TEST_F(TcpRig, SendChargesCopyAndKernelCategories) {
  make();
  sim::co_spawn(send_n(*conn, *tx, src, 128 * 1024, 4));
  exp::run_task(rig.eng, recv_all(*conn, *rx, dst));
  EXPECT_GT(rig.proc_a->usage().get(CpuCategory::kCopy), 0u);
  EXPECT_GT(rig.proc_a->usage().get(CpuCategory::kKernelProto), 0u);
  EXPECT_GT(rig.proc_b->usage().get(CpuCategory::kCopy), 0u);
  EXPECT_GT(rig.proc_b->usage().get(CpuCategory::kKernelProto), 0u);
}

TEST_F(TcpRig, CachedSourceSkipsSourceMemoryTraffic) {
  make();
  sim::co_spawn(send_n(*conn, *tx, src, 256 * 1024, 4, /*cached=*/false));
  exp::run_task(rig.eng, recv_all(*conn, *rx, dst));
  const double uncached = rig.a->channel(0).units_served();

  TinyRig rig2;
  Connection c2(*rig2.a, 0, *rig2.b, 0, *rig2.link);
  numa::Thread& tx2 = rig2.proc_a->spawn_thread();
  numa::Thread& rx2 = rig2.proc_b->spawn_thread();
  sim::co_spawn(send_n(c2, tx2, numa::Placement::on(0), 256 * 1024, 4,
                       /*cached=*/true));
  exp::run_task(rig2.eng, recv_all(c2, rx2, numa::Placement::on(0)));
  EXPECT_LT(rig2.a->channel(0).units_served(), uncached);
}

TEST_F(TcpRig, RemoteThreadPaysStackPenalty) {
  make();
  numa::Process remote_proc(*rig.a, "remote", numa::NumaBinding::bound(1));
  numa::Thread& rtx = remote_proc.spawn_thread();  // node 1, NIC on node 0
  sim::co_spawn(send_n(*conn, rtx, numa::Placement::on(1), 128 * 1024, 4));
  exp::run_task(rig.eng, recv_all(*conn, *rx, dst));
  const auto remote_kernel =
      remote_proc.usage().get(CpuCategory::kKernelProto);

  TinyRig rig2;
  Connection c2(*rig2.a, 0, *rig2.b, 0, *rig2.link);
  numa::Thread& ltx = rig2.proc_a->spawn_thread();  // node 0, local
  numa::Thread& rx2 = rig2.proc_b->spawn_thread();
  sim::co_spawn(send_n(c2, ltx, numa::Placement::on(0), 128 * 1024, 4));
  exp::run_task(rig2.eng, recv_all(c2, rx2, numa::Placement::on(0)));
  const auto local_kernel =
      rig2.proc_a->usage().get(CpuCategory::kKernelProto);
  EXPECT_GT(remote_kernel, local_kernel);
}

TEST_F(TcpRig, ConnectCostsOneRttPlusCpu) {
  make();
  const auto t0 = rig.eng.now();
  exp::run_task(rig.eng, conn->connect(*tx));
  EXPECT_GE(rig.eng.now() - t0, rig.link->rtt());
}

TEST_F(TcpRig, ShutdownUnblocksReceiver) {
  make();
  auto total = std::make_shared<std::uint64_t>(1);
  sim::co_spawn([](Connection& c, numa::Thread& th, numa::Placement buf,
                   std::shared_ptr<std::uint64_t> out) -> sim::Task<> {
    *out = co_await c.recv(th, buf);
  }(*conn, *rx, dst, total));
  conn->shutdown(*tx);
  rig.eng.run();
  EXPECT_EQ(*total, 0u);
}

TEST_F(TcpRig, EndpointOfRejectsForeignHost) {
  make();
  TinyRig other;
  EXPECT_THROW((void)conn->endpoint_of(*other.a), std::invalid_argument);
}

TEST_F(TcpRig, WanWindowLimitsInFlightToBdp) {
  TinyRig rig2;
  net::Link wan(rig2.eng, "wan", 40.0, 50 * sim::kMillisecond, 9000);
  ConnectionOptions opts;
  opts.flow_controlled = true;
  opts.max_window_bytes = 8.0 * 1024 * 1024;
  Connection c(*rig2.a, 0, *rig2.b, 0, wan, opts);
  numa::Thread& tx2 = rig2.proc_a->spawn_thread();
  numa::Thread& rx2 = rig2.proc_b->spawn_thread();
  const int chunks = 256;
  sim::co_spawn(send_n(c, tx2, numa::Placement::on(0), 1 << 20, chunks));
  const auto got = exp::run_task(rig2.eng, recv_all(c, rx2,
                                                    numa::Placement::on(0)));
  EXPECT_EQ(got, 256u << 20);
  const double gbps = metrics::gbps(got, rig2.eng.now());
  // 8 MiB window / 100 ms RTT = ~0.67 Gbps << the 40G line rate.
  EXPECT_LT(gbps, 1.2);
  EXPECT_GT(gbps, 0.3);
}

// --- CUBIC window model ---

TEST(Cubic, SlowStartDoublesRoughly) {
  Cubic c(9000, 1e9);
  const double w0 = c.cwnd_bytes();
  c.on_ack(w0, sim::kSecond);
  EXPECT_NEAR(c.cwnd_bytes(), 2 * w0, 1.0);
  EXPECT_TRUE(c.in_slow_start());
}

TEST(Cubic, LossShrinksWindow) {
  Cubic c(9000, 1e9);
  for (int i = 0; i < 20; ++i) c.on_ack(c.cwnd_bytes(), sim::kSecond);
  const double before = c.cwnd_bytes();
  c.on_loss();
  EXPECT_LT(c.cwnd_bytes(), before);
  EXPECT_GE(c.cwnd_bytes(), 2 * 9000.0);
  EXPECT_FALSE(c.in_slow_start());
}

TEST(Cubic, SlowStartExitWithoutLossSeedsPlateau) {
  const double mss = 9000.0;
  const double ssthresh = 100 * mss;
  Cubic c(mss, 1e9, ssthresh);
  // Drive slow start past ssthresh without a single loss.
  sim::SimDuration t = 0;
  while (c.in_slow_start()) {
    t += 100 * sim::kMillisecond;
    c.on_ack(c.cwnd_bytes(), t);
  }
  const double exit_w = c.cwnd_bytes();
  EXPECT_GE(exit_w, ssthresh);
  // One ack well past the plateau knee: the window must track the cubic
  // curve anchored at Wmax = exit window, not a curve grown from Wmax = 0.
  const double wmax_seg = exit_w / mss;
  const double k = std::cbrt(wmax_seg * 0.3 / 0.4);
  const double t_secs = 7.0;
  const double expect_seg = 0.4 * std::pow(t_secs - k, 3.0) + wmax_seg;
  c.on_ack(mss, static_cast<sim::SimDuration>(t_secs * 1e9));
  EXPECT_NEAR(c.cwnd_bytes(), expect_seg * mss, 1.0);
  EXPECT_GT(c.cwnd_bytes(), exit_w);
}

TEST(Cubic, RecoversTowardWmaxAfterLoss) {
  Cubic c(9000, 1e9);
  for (int i = 0; i < 20; ++i) c.on_ack(c.cwnd_bytes(), sim::kSecond);
  const double wmax = c.cwnd_bytes();
  c.on_loss();
  for (int i = 1; i <= 200; ++i)
    c.on_ack(100 * 9000, i * 100 * sim::kMillisecond);
  EXPECT_GT(c.cwnd_bytes(), 0.8 * wmax);
}

TEST(Cubic, WindowNeverExceedsMax) {
  Cubic c(9000, 5e6);
  for (int i = 0; i < 100; ++i) c.on_ack(c.cwnd_bytes(), sim::kSecond);
  EXPECT_LE(c.cwnd_bytes(), 5e6);
}

}  // namespace
}  // namespace e2e::tcp
