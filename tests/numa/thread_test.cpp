#include "numa/thread.hpp"

#include <gtest/gtest.h>

#include "exp/runner.hpp"
#include "numa/process.hpp"
#include "testutil.hpp"

namespace e2e::numa {
namespace {

using metrics::CpuCategory;

struct ThreadRig : ::testing::Test {
  sim::Engine eng;
  Host host{eng, test::tiny_host("h")};
  Process proc{host, "p", NumaBinding::bound(0)};
};

TEST_F(ThreadRig, ComputeTakesCyclesOverGhz) {
  Thread& th = proc.spawn_thread();
  exp::run_task(eng, th.compute(2000, CpuCategory::kUserProto));
  EXPECT_EQ(eng.now(), 1000u);  // 2000 cycles @ 2 GHz
}

TEST_F(ThreadRig, ComputeAccountsToCoreAndProcess) {
  Thread& th = proc.spawn_thread();
  exp::run_task(eng, th.compute(2000, CpuCategory::kLoad));
  EXPECT_EQ(proc.usage().get(CpuCategory::kLoad), 1000u);
  EXPECT_EQ(host.core(th.core_id()).usage.get(CpuCategory::kLoad), 1000u);
  EXPECT_EQ(host.total_usage().get(CpuCategory::kLoad), 1000u);
}

TEST_F(ThreadRig, ThreadsOnSameCoreSerialize) {
  Thread& t1 = proc.spawn_pinned_thread(0);
  Thread& t2 = proc.spawn_pinned_thread(0);
  sim::co_spawn(t1.compute(2000, CpuCategory::kOther));
  sim::co_spawn(t2.compute(2000, CpuCategory::kOther));
  eng.run();
  EXPECT_EQ(eng.now(), 2000u);  // serialized on one core
}

TEST_F(ThreadRig, ThreadsOnDifferentCoresRunInParallel) {
  Thread& t1 = proc.spawn_pinned_thread(0);
  Thread& t2 = proc.spawn_pinned_thread(1);
  sim::co_spawn(t1.compute(2000, CpuCategory::kOther));
  sim::co_spawn(t2.compute(2000, CpuCategory::kOther));
  eng.run();
  EXPECT_EQ(eng.now(), 1000u);
}

TEST_F(ThreadRig, LocalCopyCostsBaseCycles) {
  Thread& th = proc.spawn_thread();  // node 0
  const auto local = Placement::on(0);
  exp::run_task(eng, th.copy(1'000'000, local, local, CpuCategory::kCopy));
  const auto cpb = host.costs().memcpy_cycles_per_byte;
  const auto expect_ns =
      static_cast<sim::SimTime>(1'000'000 * cpb / 2.0);  // 2 GHz
  EXPECT_NEAR(static_cast<double>(proc.usage().get(CpuCategory::kCopy)),
              static_cast<double>(expect_ns), 2.0);
}

TEST_F(ThreadRig, RemoteCopyIsSlowerThanLocal) {
  Thread& th = proc.spawn_thread();  // node 0
  const auto local = Placement::on(0);
  const auto remote = Placement::on(1);
  exp::run_task(eng, th.copy(1 << 20, local, local, CpuCategory::kCopy));
  const auto local_ns = proc.usage().get(CpuCategory::kCopy);
  exp::run_task(eng, th.copy(1 << 20, remote, local, CpuCategory::kCopy));
  const auto remote_ns = proc.usage().get(CpuCategory::kCopy) - local_ns;
  EXPECT_NEAR(static_cast<double>(remote_ns),
              static_cast<double>(local_ns) * host.costs().numa_remote_penalty,
              static_cast<double>(local_ns) * 0.01);
}

TEST_F(ThreadRig, CopyChargesBothChannels) {
  Thread& th = proc.spawn_thread();
  exp::run_task(eng, th.copy(1000, Placement::on(0), Placement::on(1),
                             CpuCategory::kCopy));
  EXPECT_GT(host.channel(0).units_served(), 0.0);
  EXPECT_GT(host.channel(1).units_served(), 0.0);
  // Writing to the remote node pushes data over QPI away from the thread.
  EXPECT_GT(host.interconnect(0, 1).units_served(), 0.0);
}

TEST_F(ThreadRig, CachedSourceCopySkipsSourceTraffic) {
  Thread& th = proc.spawn_thread();
  const auto src = Placement::on(1);
  const auto dst = Placement::on(0);
  exp::run_task(eng, th.copy(1000, src, dst, CpuCategory::kCopy,
                             Coherence::kPrivate, /*src_in_cache=*/true));
  EXPECT_EQ(host.channel(1).units_served(), 0.0);  // no DRAM read
  EXPECT_GT(host.channel(0).units_served(), 0.0);  // destination write
}

TEST_F(ThreadRig, CoherentRemoteWriteCostsExtraCyclesAndQpi) {
  Thread& th = proc.spawn_thread();  // node 0
  const auto remote = Placement::on(1);
  exp::run_task(eng, th.mem_write(1 << 20, remote, CpuCategory::kOffload,
                                  Coherence::kPrivate));
  const auto private_ns = proc.usage().get(CpuCategory::kOffload);
  const auto qpi_before = host.interconnect(1, 0).units_served();
  exp::run_task(eng, th.mem_write(1 << 20, remote, CpuCategory::kOffload,
                                  Coherence::kSharedRemote));
  const auto shared_ns = proc.usage().get(CpuCategory::kOffload) - private_ns;
  EXPECT_GT(shared_ns, private_ns);
  // Invalidation traffic flows back over the interconnect.
  EXPECT_GT(host.interconnect(1, 0).units_served(), qpi_before);
}

TEST_F(ThreadRig, LocalSharedWriteHasNoCoherencePenalty) {
  Thread& th = proc.spawn_thread();  // node 0
  const auto local = Placement::on(0);
  exp::run_task(eng, th.mem_write(1 << 20, local, CpuCategory::kOffload,
                                  Coherence::kPrivate));
  const auto base = proc.usage().get(CpuCategory::kOffload);
  exp::run_task(eng, th.mem_write(1 << 20, local, CpuCategory::kOffload,
                                  Coherence::kSharedRemote));
  EXPECT_EQ(proc.usage().get(CpuCategory::kOffload), 2 * base);
}

TEST_F(ThreadRig, ZeroFillChargesWriteTrafficOnly) {
  Thread& th = proc.spawn_thread();
  exp::run_task(eng,
                th.zero_fill(1000, Placement::on(0), CpuCategory::kLoad));
  EXPECT_EQ(host.channel(0).units_served(), 1000.0);
  EXPECT_GT(proc.usage().get(CpuCategory::kLoad), 0u);
}

TEST_F(ThreadRig, MemReadIsCheaperThanCopy) {
  Thread& th = proc.spawn_thread();
  const auto p = Placement::on(0);
  exp::run_task(eng, th.mem_read(1 << 20, p, CpuCategory::kLoad));
  const auto read_ns = proc.usage().get(CpuCategory::kLoad);
  exp::run_task(eng, th.copy(1 << 20, p, p, CpuCategory::kCopy));
  EXPECT_LT(read_ns, proc.usage().get(CpuCategory::kCopy));
}

TEST_F(ThreadRig, InterleavedPlacementSplitsChannelTraffic) {
  Thread& th = proc.spawn_thread();
  exp::run_task(eng, th.mem_read(1000, Placement::interleaved(2),
                                 CpuCategory::kLoad));
  EXPECT_DOUBLE_EQ(host.channel(0).units_served(), 500.0);
  // Remote half is inflated by the remote-stream factor.
  EXPECT_DOUBLE_EQ(host.channel(1).units_served(),
                   500.0 * host.costs().numa_remote_channel_factor);
}

}  // namespace
}  // namespace e2e::numa
