#include "numa/process.hpp"

#include <gtest/gtest.h>

#include "testutil.hpp"

namespace e2e::numa {
namespace {

TEST(Process, BoundProcessSpawnsOnItsNode) {
  sim::Engine eng;
  Host h(eng, test::tiny_host("h"));
  Process p(h, "tgtd0", NumaBinding::bound(1));
  for (int i = 0; i < 4; ++i) EXPECT_EQ(p.spawn_thread().node(), 1);
}

TEST(Process, OsDefaultSpreadsOverAllCores) {
  sim::Engine eng;
  Host h(eng, test::tiny_host("h"));
  Process p(h, "app", NumaBinding::os_default());
  bool saw_node1 = false;
  for (int i = 0; i < 4; ++i) saw_node1 |= p.spawn_thread().node() == 1;
  EXPECT_TRUE(saw_node1);
}

TEST(Process, PreferredNodeOverridesBindingTarget) {
  sim::Engine eng;
  Host h(eng, test::tiny_host("h"));
  Process p(h, "tgtd", NumaBinding::bound(0));
  EXPECT_EQ(p.spawn_thread(1).node(), 1);
}

TEST(Process, BoundAllocGoesToBindingNode) {
  sim::Engine eng;
  Host h(eng, test::tiny_host("h"));
  Process p(h, "tgtd", NumaBinding::bound(1));
  const auto placement = p.alloc(4096);
  ASSERT_EQ(placement.extents.size(), 1u);
  EXPECT_EQ(placement.extents[0].node, 1);
}

TEST(Process, BindWithoutNodeUsesToucher) {
  sim::Engine eng;
  Host h(eng, test::tiny_host("h"));
  Process p(h, "app",
            NumaBinding{SchedPolicy::kBindNode, MemPolicy::kBind, kAnyNode});
  const auto placement = p.alloc(4096, /*toucher=*/1);
  EXPECT_EQ(placement.extents[0].node, 1);
}

TEST(Process, FirstTouchAllocFollowsToucher) {
  sim::Engine eng;
  Host h(eng, test::tiny_host("h"));
  Process p(h, "app", NumaBinding::os_default());
  EXPECT_EQ(p.alloc(64, 1).extents[0].node, 1);
  EXPECT_EQ(p.alloc(64, 0).extents[0].node, 0);
}

TEST(Process, PinnedThreadUsesExactCore) {
  sim::Engine eng;
  Host h(eng, test::tiny_host("h"));
  Process p(h, "app");
  Thread& th = p.spawn_pinned_thread(3);
  EXPECT_EQ(th.core_id(), 3);
  EXPECT_EQ(th.node(), 1);
}

TEST(Process, ThreadCountTracksSpawns) {
  sim::Engine eng;
  Host h(eng, test::tiny_host("h"));
  Process p(h, "app");
  EXPECT_EQ(p.thread_count(), 0u);
  p.spawn_thread();
  p.spawn_pinned_thread(0);
  EXPECT_EQ(p.thread_count(), 2u);
}

TEST(NumaBinding, Factories) {
  const auto b = NumaBinding::bound(1);
  EXPECT_EQ(b.sched, SchedPolicy::kBindNode);
  EXPECT_EQ(b.mem, MemPolicy::kBind);
  EXPECT_EQ(b.node, 1);
  const auto d = NumaBinding::os_default();
  EXPECT_EQ(d.sched, SchedPolicy::kOsDefault);
  EXPECT_EQ(d.mem, MemPolicy::kFirstTouch);
}

}  // namespace
}  // namespace e2e::numa
