// Generality beyond the paper's dual-socket hosts: the NUMA model on a
// quad-socket machine (4 nodes, pairwise interconnect, 4-way interleave).
#include <gtest/gtest.h>

#include <set>

#include "exp/runner.hpp"
#include "numa/numa.hpp"

namespace e2e::numa {
namespace {

model::HostProfile quad_host() {
  model::HostProfile h;
  h.name = "quad";
  h.numa_nodes = 4;
  h.cores_per_node = 4;
  h.core_ghz = 2.0;
  h.mem_gbytes = 256;
  h.mem_gBps_per_node = 20.0;
  h.interconnect_gBps = 10.0;
  h.nics = {{"nic0", model::LinkType::kRoCE, 40.0, 9000, 0, 63.0}};
  return h;
}

TEST(QuadNode, TopologyAndCoreMapping) {
  sim::Engine eng;
  Host h(eng, quad_host());
  EXPECT_EQ(h.node_count(), 4);
  EXPECT_EQ(h.core_count(), 16);
  for (int c = 0; c < 16; ++c) EXPECT_EQ(h.core(c).node, c / 4);
}

TEST(QuadNode, InterleaveSpreadsOverAllNodes) {
  sim::Engine eng;
  Host h(eng, quad_host());
  const auto p = h.alloc(4000, MemPolicy::kInterleave, kAnyNode, 0);
  ASSERT_EQ(p.extents.size(), 4u);
  for (const auto& e : p.extents) EXPECT_DOUBLE_EQ(e.fraction, 0.25);
  EXPECT_DOUBLE_EQ(p.remote_fraction(2), 0.75);
}

TEST(QuadNode, AllInterconnectDirectionsAreDistinct) {
  sim::Engine eng;
  Host h(eng, quad_host());
  std::set<sim::Resource*> seen;
  for (NodeId a = 0; a < 4; ++a)
    for (NodeId b = 0; b < 4; ++b)
      if (a != b) seen.insert(&h.interconnect(a, b));
  EXPECT_EQ(seen.size(), 12u);  // 4*3 directed pairs
}

TEST(QuadNode, RemoteCopyCrossesOnlyTheRightLink) {
  sim::Engine eng;
  Host h(eng, quad_host());
  Process p(h, "p", NumaBinding::bound(3));
  Thread& th = p.spawn_thread();
  exp::run_task(eng, th.copy(1 << 20, Placement::on(1), Placement::on(3),
                             metrics::CpuCategory::kCopy));
  EXPECT_GT(h.interconnect(1, 3).units_served(), 0.0);  // read pull
  EXPECT_EQ(h.interconnect(3, 1).units_served(), 0.0);
  EXPECT_EQ(h.interconnect(0, 3).units_served(), 0.0);
  EXPECT_EQ(h.interconnect(2, 3).units_served(), 0.0);
}

TEST(QuadNode, StreamTriadSaturatesAllChannels) {
  sim::Engine eng;
  Host h(eng, quad_host());
  StreamOptions opts;
  opts.threads_per_node = 4;
  const auto r = run_stream_triad(eng, h, opts);
  EXPECT_NEAR(r.triad_gBps, 80.0, 4.0);  // 4 x 20 GB/s
}

TEST(QuadNode, BindNodeRoundRobinsWithinEachNode) {
  sim::Engine eng;
  Host h(eng, quad_host());
  for (NodeId n = 0; n < 4; ++n) {
    Process p(h, "p" + std::to_string(n), NumaBinding::bound(n));
    for (int i = 0; i < 8; ++i) EXPECT_EQ(p.spawn_thread().node(), n);
  }
}

TEST(QuadNode, DmaFromFarNodeChargesItsChannelInflated) {
  sim::Engine eng;
  Host h(eng, quad_host());
  const auto p = Placement::on(2);
  h.charge_dma(p, 1000, /*dev_node=*/0, /*to_device=*/true);
  EXPECT_DOUBLE_EQ(h.channel(2).units_served(),
                   1000.0 * h.costs().numa_remote_channel_factor);
  EXPECT_GT(h.interconnect(2, 0).units_served(), 0.0);
}

}  // namespace
}  // namespace e2e::numa
