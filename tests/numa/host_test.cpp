#include "numa/host.hpp"

#include <gtest/gtest.h>

#include "testutil.hpp"

namespace e2e::numa {
namespace {

TEST(Host, TopologyFromProfile) {
  sim::Engine eng;
  Host h(eng, test::tiny_host("h"));
  EXPECT_EQ(h.node_count(), 2);
  EXPECT_EQ(h.core_count(), 4);
  EXPECT_EQ(h.core(0).node, 0);
  EXPECT_EQ(h.core(1).node, 0);
  EXPECT_EQ(h.core(2).node, 1);
  EXPECT_EQ(h.core(3).node, 1);
}

TEST(Host, CoreRateMatchesGhz) {
  sim::Engine eng;
  Host h(eng, test::tiny_host("h"));
  EXPECT_DOUBLE_EQ(h.core(0).cycles->rate_per_second(), 2e9);
}

TEST(Host, ChannelRateMatchesProfile) {
  sim::Engine eng;
  Host h(eng, test::tiny_host("h"));
  EXPECT_DOUBLE_EQ(h.channel(0).rate_per_second(), 10e9);
  EXPECT_DOUBLE_EQ(h.channel(1).rate_per_second(), 10e9);
}

TEST(Host, InterconnectIsPerDirection) {
  sim::Engine eng;
  Host h(eng, test::tiny_host("h"));
  EXPECT_NE(&h.interconnect(0, 1), &h.interconnect(1, 0));
  EXPECT_DOUBLE_EQ(h.interconnect(0, 1).rate_per_second(), 5e9);
  EXPECT_THROW((void)h.interconnect(0, 0), std::invalid_argument);
}

TEST(Host, AllocBindPolicy) {
  sim::Engine eng;
  Host h(eng, test::tiny_host("h"));
  auto p = h.alloc(1000, MemPolicy::kBind, 1, 0);
  ASSERT_EQ(p.extents.size(), 1u);
  EXPECT_EQ(p.extents[0].node, 1);
  EXPECT_EQ(h.used_bytes(1), 1000u);
  EXPECT_EQ(h.used_bytes(0), 0u);
}

TEST(Host, AllocFirstTouchFollowsToucher) {
  sim::Engine eng;
  Host h(eng, test::tiny_host("h"));
  auto p = h.alloc(1000, MemPolicy::kFirstTouch, kAnyNode, 1);
  EXPECT_EQ(p.extents[0].node, 1);
}

TEST(Host, AllocInterleaveSplitsEvenly) {
  sim::Engine eng;
  Host h(eng, test::tiny_host("h"));
  auto p = h.alloc(1000, MemPolicy::kInterleave, kAnyNode, 0);
  ASSERT_EQ(p.extents.size(), 2u);
  EXPECT_TRUE(p.valid());
  EXPECT_EQ(h.used_bytes(0), 500u);
  EXPECT_EQ(h.used_bytes(1), 500u);
}

TEST(Host, FreeReturnsBytes) {
  sim::Engine eng;
  Host h(eng, test::tiny_host("h"));
  auto p = h.alloc(1000, MemPolicy::kInterleave, kAnyNode, 0);
  h.free(p, 1000);
  EXPECT_EQ(h.used_bytes(0), 0u);
  EXPECT_EQ(h.used_bytes(1), 0u);
}

TEST(Host, PickCoreOsDefaultRoundRobinsAllCores) {
  sim::Engine eng;
  Host h(eng, test::tiny_host("h"));
  EXPECT_EQ(h.pick_core(SchedPolicy::kOsDefault, 1), 0);
  EXPECT_EQ(h.pick_core(SchedPolicy::kOsDefault, 1), 1);
  EXPECT_EQ(h.pick_core(SchedPolicy::kOsDefault, 1), 2);
  EXPECT_EQ(h.pick_core(SchedPolicy::kOsDefault, 1), 3);
  EXPECT_EQ(h.pick_core(SchedPolicy::kOsDefault, 1), 0);
}

TEST(Host, PickCoreBindNodeStaysOnNode) {
  sim::Engine eng;
  Host h(eng, test::tiny_host("h"));
  for (int i = 0; i < 6; ++i) {
    const CoreId c = h.pick_core(SchedPolicy::kBindNode, 1);
    EXPECT_EQ(h.core(c).node, 1);
  }
}

TEST(Host, DmaChargesLocalChannelOnly) {
  sim::Engine eng;
  Host h(eng, test::tiny_host("h"));
  const auto p = Placement::on(0);
  h.charge_dma(p, 1000, /*dev_node=*/0, /*to_device=*/true);
  EXPECT_GT(h.channel(0).busy_until(), 0u);
  EXPECT_EQ(h.interconnect(0, 1).busy_until(), 0u);
  EXPECT_EQ(h.interconnect(1, 0).busy_until(), 0u);
}

TEST(Host, DmaRemoteCrossesInterconnectWithInflation) {
  sim::Engine eng;
  Host h(eng, test::tiny_host("h"));
  const auto p = Placement::on(1);  // memory on node 1, device on node 0
  h.charge_dma(p, 1000, 0, /*to_device=*/true);
  // Channel of node 1 serves inflated remote traffic.
  const double factor = h.costs().numa_remote_channel_factor;
  EXPECT_EQ(h.channel(1).busy_until(),
            h.channel(1).service_time(1000 * factor));
  // Reads toward the device cross node1 -> node0.
  EXPECT_GT(h.interconnect(1, 0).busy_until(), 0u);
  EXPECT_EQ(h.interconnect(0, 1).busy_until(), 0u);
}

TEST(Host, DmaFromDeviceWritesCrossOppositeDirection) {
  sim::Engine eng;
  Host h(eng, test::tiny_host("h"));
  const auto p = Placement::on(1);
  h.charge_dma(p, 1000, 0, /*to_device=*/false);
  EXPECT_GT(h.interconnect(0, 1).busy_until(), 0u);
  EXPECT_EQ(h.interconnect(1, 0).busy_until(), 0u);
}

TEST(Host, StreamPeakMatchesProfile) {
  sim::Engine eng;
  Host h(eng, test::tiny_host("h"));
  EXPECT_NEAR(h.stream_peak_gbps(), 160.0, 1e-9);  // 2 x 10 GB/s
}

TEST(Placement, RemoteFraction) {
  auto p = Placement::interleaved(2);
  EXPECT_DOUBLE_EQ(p.remote_fraction(0), 0.5);
  auto q = Placement::on(1);
  EXPECT_DOUBLE_EQ(q.remote_fraction(1), 0.0);
  EXPECT_DOUBLE_EQ(q.remote_fraction(0), 1.0);
}

TEST(Placement, Validity) {
  EXPECT_TRUE(Placement::on(0).valid());
  EXPECT_TRUE(Placement::interleaved(3).valid());
  Placement bad{{{0, 0.4}}, {}};
  EXPECT_FALSE(bad.valid());
  Placement empty;
  EXPECT_FALSE(empty.valid());
}

TEST(Host, RejectsZeroNodes) {
  sim::Engine eng;
  auto prof = test::tiny_host("h");
  prof.numa_nodes = 0;
  EXPECT_THROW(Host(eng, prof), std::invalid_argument);
}

}  // namespace
}  // namespace e2e::numa
