// Thread::book's cached cost plan must be bit-identical to the uncached
// per-extent arithmetic it replaced. A twin host (same profile, separate
// engine) runs a reference implementation of the original booking code;
// every combination of placement locality and coherence mode must produce
// exactly the same completion times — including repeat bookings served
// from the cache.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "metrics/cpu_usage.hpp"
#include "numa/host.hpp"
#include "numa/process.hpp"
#include "numa/thread.hpp"
#include "testutil.hpp"

namespace e2e::numa {
namespace {

using metrics::CpuCategory;

/// The pre-cache booking arithmetic, verbatim: walks placement extents and
/// charges `host`'s resources directly. Kept in lockstep with Thread::book
/// so any drift in the cached plan shows up as a time mismatch.
sim::SimTime ref_book(Host& host, CoreId core_id, double cycles,
                      std::uint64_t read_bytes, const Placement* src,
                      std::uint64_t write_bytes, const Placement* dst,
                      Coherence dst_coherence) {
  auto& eng = host.engine();
  auto& core = host.core(core_id);
  sim::SimTime done = eng.now();
  if (cycles > 0.0) done = std::max(done, core.cycles->charge(cycles));

  const NodeId me = core.node;
  auto book_traffic = [&](const Placement& p, std::uint64_t bytes,
                          bool write) {
    for (const auto& e : p.extents) {
      const double share = static_cast<double>(bytes) * e.fraction;
      if (share <= 0.0) continue;
      const bool remote = e.node != me;
      const double channel_share =
          remote ? share * host.costs().numa_remote_channel_factor : share;
      done = std::max(done, host.channel(e.node).charge(channel_share));
      if (remote) {
        auto& qpi = write ? host.interconnect(me, e.node)
                          : host.interconnect(e.node, me);
        done = std::max(done, qpi.charge(share));
      }
    }
  };
  if (src && read_bytes) book_traffic(*src, read_bytes, /*write=*/false);
  if (dst && write_bytes) {
    book_traffic(*dst, write_bytes, /*write=*/true);
    if (dst_coherence == Coherence::kSharedRemote) {
      const double factor = host.costs().coherence_interconnect_bytes_factor;
      for (const auto& e : dst->extents) {
        if (e.node == me) continue;
        const double share =
            static_cast<double>(write_bytes) * e.fraction * factor;
        if (share <= 0.0) continue;
        done = std::max(done, host.interconnect(e.node, me).charge(share));
      }
    }
  }
  return done;
}

struct CostPlanRig : ::testing::Test {
  sim::Engine eng;        // cached side
  sim::Engine ref_eng;    // twin running the reference arithmetic
  Host host{eng, test::tiny_host("h")};
  Host ref_host{ref_eng, test::tiny_host("h")};
  Process proc{host, "p", NumaBinding::bound(0)};
};

TEST_F(CostPlanRig, BookMatchesUncachedReferenceAcrossPlacements) {
  Thread& th = proc.spawn_pinned_thread(0);  // node 0
  const Placement local = Placement::on(0);
  const Placement remote = Placement::on(1);
  const Placement mixed = Placement::interleaved(2);
  const std::vector<const Placement*> placements{&local, &remote, &mixed};
  const std::vector<Coherence> modes{Coherence::kPrivate,
                                     Coherence::kSharedRemote};

  // Three passes over every (src, dst, coherence) combination: the first
  // builds each plan, the rest are served from the cache. Both hosts see
  // the identical charge sequence, so identical resource-queue evolution
  // is part of the check.
  for (int pass = 0; pass < 3; ++pass) {
    for (const Placement* src : placements) {
      for (const Placement* dst : placements) {
        for (const Coherence mode : modes) {
          const std::uint64_t bytes = 1 << 20;
          const sim::SimTime got = th.book(1000.0, bytes, src, bytes, dst,
                                           CpuCategory::kCopy, mode);
          const sim::SimTime want = ref_book(ref_host, th.core_id(), 1000.0,
                                             bytes, src, bytes, dst, mode);
          ASSERT_EQ(got, want)
              << "pass=" << pass << " mode=" << static_cast<int>(mode);
        }
      }
    }
  }
}

TEST_F(CostPlanRig, ReadOnlyAndWriteOnlyBookingsMatch) {
  Thread& th = proc.spawn_pinned_thread(0);
  const Placement mixed = Placement::interleaved(2);
  for (int pass = 0; pass < 2; ++pass) {
    ASSERT_EQ(th.book(0.0, 4096, &mixed, 0, nullptr, CpuCategory::kLoad,
                      Coherence::kPrivate),
              ref_book(ref_host, th.core_id(), 0.0, 4096, &mixed, 0, nullptr,
                       Coherence::kPrivate));
    ASSERT_EQ(th.book(0.0, 0, nullptr, 4096, &mixed, CpuCategory::kOffload,
                      Coherence::kSharedRemote),
              ref_book(ref_host, th.core_id(), 0.0, 0, nullptr, 4096, &mixed,
                       Coherence::kSharedRemote));
  }
}

TEST_F(CostPlanRig, CopiedPlacementGetsItsOwnIdentity) {
  Thread& th = proc.spawn_pinned_thread(0);
  Placement a = Placement::on(1);
  (void)th.book(0.0, 4096, &a, 0, nullptr, CpuCategory::kLoad,
                Coherence::kPrivate);
  (void)ref_book(ref_host, th.core_id(), 0.0, 4096, &a, 0, nullptr,
                 Coherence::kPrivate);
  // Copy, then legitimately edit the copy before its first booking: the
  // copy must not inherit a's cached plan.
  Placement b = a;
  b.extents[0].node = 0;
  ASSERT_EQ(th.book(0.0, 4096, &b, 0, nullptr, CpuCategory::kLoad,
                    Coherence::kPrivate),
            ref_book(ref_host, th.core_id(), 0.0, 4096, &b, 0, nullptr,
                     Coherence::kPrivate));
}

TEST_F(CostPlanRig, PerThreadPlansResolveAgainstEachThreadsNode) {
  // The same placement booked from threads on different nodes must charge
  // different interconnect directions — plans are per (thread, placement),
  // not global per placement.
  Thread& t0 = proc.spawn_pinned_thread(0);  // node 0
  Process proc1{host, "p1", NumaBinding::bound(1)};
  Thread& t1 = proc1.spawn_thread();
  ASSERT_EQ(t1.node(), 1);
  const Placement on0 = Placement::on(0);
  for (int pass = 0; pass < 2; ++pass) {
    ASSERT_EQ(t0.book(0.0, 4096, &on0, 0, nullptr, CpuCategory::kLoad,
                      Coherence::kPrivate),
              ref_book(ref_host, t0.core_id(), 0.0, 4096, &on0, 0, nullptr,
                       Coherence::kPrivate));
    ASSERT_EQ(t1.book(0.0, 4096, &on0, 0, nullptr, CpuCategory::kLoad,
                      Coherence::kPrivate),
              ref_book(ref_host, t1.core_id(), 0.0, 4096, &on0, 0, nullptr,
                       Coherence::kPrivate));
  }
}

}  // namespace
}  // namespace e2e::numa
