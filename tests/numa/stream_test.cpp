#include "numa/stream.hpp"

#include <gtest/gtest.h>

#include "model/host_profile.hpp"
#include "numa/host.hpp"

namespace e2e::numa {
namespace {

TEST(Stream, LocalTriadReachesPaperPeak) {
  sim::Engine eng;
  Host host(eng, model::front_end_lan_host("fe"));
  StreamOptions opts;
  const auto r = run_stream_triad(eng, host, opts);
  // §2.3: Triad peak across two NUMA nodes is 50 GB/s (400 Gbps).
  EXPECT_NEAR(r.triad_gBps, 50.0, 2.0);
  EXPECT_NEAR(r.triad_gbps, 400.0, 16.0);
}

TEST(Stream, InterleavedPlacementLosesBandwidth) {
  sim::Engine eng1, eng2;
  Host h1(eng1, model::front_end_lan_host("a"));
  Host h2(eng2, model::front_end_lan_host("b"));
  StreamOptions local, inter;
  inter.numa_local = false;
  const auto rl = run_stream_triad(eng1, h1, local);
  const auto ri = run_stream_triad(eng2, h2, inter);
  EXPECT_LT(ri.triad_gBps, 0.95 * rl.triad_gBps);
  EXPECT_GT(ri.triad_gBps, 0.5 * rl.triad_gBps);
}

class StreamThreadSweep : public ::testing::TestWithParam<int> {};

TEST_P(StreamThreadSweep, BandwidthSaturatesWithThreads) {
  sim::Engine eng;
  Host host(eng, model::front_end_lan_host("fe"));
  StreamOptions opts;
  opts.threads_per_node = GetParam();
  const auto r = run_stream_triad(eng, host, opts);
  // One core cannot saturate a channel; many cores cap at channel rate.
  const double per_core_gBps =
      host.profile().core_ghz / host.costs().mem_touch_cycles_per_byte;
  const double expected =
      std::min(50.0, 2 * GetParam() * per_core_gBps);
  EXPECT_NEAR(r.triad_gBps, expected, expected * 0.1);
}

INSTANTIATE_TEST_SUITE_P(Threads, StreamThreadSweep,
                         ::testing::Values(1, 2, 4, 8));

TEST(Stream, BytesMovedAreConsistent) {
  sim::Engine eng;
  Host host(eng, model::front_end_lan_host("fe"));
  StreamOptions opts;
  opts.duration = sim::kSecond / 4;
  const auto r = run_stream_triad(eng, host, opts);
  EXPECT_GT(r.bytes_moved, 0u);
  // bytes = rate * time within a chunk of slack.
  EXPECT_NEAR(static_cast<double>(r.bytes_moved),
              r.triad_gBps * 1e9 * sim::to_seconds(eng.now()),
              static_cast<double>(r.bytes_moved) * 0.05);
}

}  // namespace
}  // namespace e2e::numa
