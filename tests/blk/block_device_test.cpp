#include "blk/block_device.hpp"

#include <gtest/gtest.h>

#include "exp/runner.hpp"
#include "numa/process.hpp"
#include "testutil.hpp"

namespace e2e::blk {
namespace {

using metrics::CpuCategory;

struct RamDevRig : ::testing::Test {
  sim::Engine eng;
  numa::Host host{eng, e2e::test::tiny_host("h")};
  mem::Tmpfs fs{host};
  numa::Process proc{host, "p", numa::NumaBinding::bound(0)};
};

TEST_F(RamDevRig, CapacityAndIo) {
  auto& f = fs.create("d", 1 << 20, numa::MemPolicy::kBind, 0);
  RamBlockDevice dev(fs, f);
  EXPECT_EQ(dev.capacity_bytes(), 1u << 20);
  numa::Thread& th = proc.spawn_thread();
  EXPECT_TRUE(exp::run_task(
      eng, dev.read(th, 0, 4096, numa::Placement::on(0), CpuCategory::kLoad)));
  EXPECT_TRUE(exp::run_task(eng, dev.write(th, 4096, 4096,
                                           numa::Placement::on(0),
                                           CpuCategory::kOffload)));
  EXPECT_EQ(f.bytes_read, 4096u);
  EXPECT_EQ(f.bytes_written, 4096u);
}

TEST_F(RamDevRig, UnalignedIoThrows) {
  auto& f = fs.create("d", 1 << 20, numa::MemPolicy::kBind, 0);
  RamBlockDevice dev(fs, f);
  numa::Thread& th = proc.spawn_thread();
  EXPECT_THROW(exp::run_task(eng, dev.read(th, 100, 512,
                                           numa::Placement::on(0),
                                           CpuCategory::kLoad)),
               std::invalid_argument);
  EXPECT_THROW(exp::run_task(eng, dev.write(th, 0, 100,
                                            numa::Placement::on(0),
                                            CpuCategory::kOffload)),
               std::invalid_argument);
}

struct FakeDevice final : BlockDevice {
  std::uint64_t cap;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> reads;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> writes;
  sim::Engine& eng;
  sim::SimDuration latency;

  FakeDevice(sim::Engine& e, std::uint64_t c, sim::SimDuration lat = 0)
      : cap(c), eng(e), latency(lat) {}

  std::uint64_t capacity_bytes() const override { return cap; }

  sim::Task<bool> read(numa::Thread&, std::uint64_t off, std::uint64_t len,
                       const numa::Placement&, metrics::CpuCategory) override {
    check_aligned(off, len);
    reads.emplace_back(off, len);
    if (latency) co_await sim::Delay{eng, latency};
    co_return true;
  }
  sim::Task<bool> write(numa::Thread&, std::uint64_t off, std::uint64_t len,
                        const numa::Placement&,
                        metrics::CpuCategory) override {
    check_aligned(off, len);
    writes.emplace_back(off, len);
    if (latency) co_await sim::Delay{eng, latency};
    co_return true;
  }
};

struct StripeRig : RamDevRig {};

TEST_F(StripeRig, SplitsAcrossMembersOnStripeBoundaries) {
  FakeDevice d0(eng, 1 << 30), d1(eng, 1 << 30), d2(eng, 1 << 30);
  StripedBlockDevice dev({&d0, &d1, &d2}, 4096);
  numa::Thread& th = proc.spawn_thread();
  // 12 KiB starting at 0: one 4 KiB chunk to each member.
  EXPECT_TRUE(exp::run_task(eng, dev.read(th, 0, 3 * 4096,
                                          numa::Placement::on(0),
                                          CpuCategory::kLoad)));
  EXPECT_EQ(d0.reads.size(), 1u);
  EXPECT_EQ(d1.reads.size(), 1u);
  EXPECT_EQ(d2.reads.size(), 1u);
  EXPECT_EQ(d0.reads[0], (std::pair<std::uint64_t, std::uint64_t>(0, 4096)));
  EXPECT_EQ(d1.reads[0], (std::pair<std::uint64_t, std::uint64_t>(0, 4096)));
}

TEST_F(StripeRig, RotationWrapsToSecondRow) {
  FakeDevice d0(eng, 1 << 30), d1(eng, 1 << 30);
  StripedBlockDevice dev({&d0, &d1}, 4096);
  numa::Thread& th = proc.spawn_thread();
  // Stripe 2 maps back to member 0, device offset 4096.
  EXPECT_TRUE(exp::run_task(eng, dev.write(th, 2 * 4096, 4096,
                                           numa::Placement::on(0),
                                           CpuCategory::kOffload)));
  ASSERT_EQ(d0.writes.size(), 1u);
  EXPECT_EQ(d0.writes[0],
            (std::pair<std::uint64_t, std::uint64_t>(4096, 4096)));
}

TEST_F(StripeRig, PartialAndStraddlingRequests) {
  FakeDevice d0(eng, 1 << 30), d1(eng, 1 << 30);
  StripedBlockDevice dev({&d0, &d1}, 4096);
  numa::Thread& th = proc.spawn_thread();
  // 2 KiB at offset 3 KiB straddles the stripe boundary: 1 KiB on each.
  EXPECT_TRUE(exp::run_task(eng, dev.read(th, 3 * 1024, 2 * 1024,
                                          numa::Placement::on(0),
                                          CpuCategory::kLoad)));
  ASSERT_EQ(d0.reads.size(), 1u);
  ASSERT_EQ(d1.reads.size(), 1u);
  EXPECT_EQ(d0.reads[0].second + d1.reads[0].second, 2u * 1024);
}

TEST_F(StripeRig, SubRequestsProceedInParallel) {
  FakeDevice d0(eng, 1 << 30, sim::kMillisecond);
  FakeDevice d1(eng, 1 << 30, sim::kMillisecond);
  StripedBlockDevice dev({&d0, &d1}, 4096);
  numa::Thread& th = proc.spawn_thread();
  const auto t0 = eng.now();
  EXPECT_TRUE(exp::run_task(eng, dev.read(th, 0, 2 * 4096,
                                          numa::Placement::on(0),
                                          CpuCategory::kLoad)));
  // Two members hit concurrently: total time is one device latency.
  EXPECT_EQ(eng.now() - t0, sim::kMillisecond);
}

TEST_F(StripeRig, CapacityIsSumOfMembers) {
  FakeDevice d0(eng, 1 << 20), d1(eng, 1 << 20);
  StripedBlockDevice dev({&d0, &d1}, 4096);
  EXPECT_EQ(dev.capacity_bytes(), 2u << 20);
  EXPECT_EQ(dev.member_count(), 2u);
  EXPECT_EQ(dev.stripe_bytes(), 4096u);
}

TEST_F(StripeRig, RejectsBadConfig) {
  EXPECT_THROW(StripedBlockDevice({}, 4096), std::invalid_argument);
  FakeDevice d0(eng, 1 << 20);
  EXPECT_THROW(StripedBlockDevice({&d0}, 100), std::invalid_argument);
}

TEST_F(StripeRig, FailureOfOneMemberFailsRequest) {
  struct FailingDevice final : BlockDevice {
    std::uint64_t capacity_bytes() const override { return 1 << 30; }
    sim::Task<bool> read(numa::Thread&, std::uint64_t, std::uint64_t,
                         const numa::Placement&,
                         metrics::CpuCategory) override {
      co_return false;
    }
    sim::Task<bool> write(numa::Thread&, std::uint64_t, std::uint64_t,
                          const numa::Placement&,
                          metrics::CpuCategory) override {
      co_return false;
    }
  };
  FakeDevice ok(eng, 1 << 30);
  FailingDevice bad;
  StripedBlockDevice dev({&ok, &bad}, 4096);
  numa::Thread& th = proc.spawn_thread();
  EXPECT_FALSE(exp::run_task(eng, dev.read(th, 0, 4 * 4096,
                                           numa::Placement::on(0),
                                           CpuCategory::kLoad)));
}

}  // namespace
}  // namespace e2e::blk
