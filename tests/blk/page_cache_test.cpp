#include "blk/page_cache.hpp"

#include <gtest/gtest.h>

#include "exp/runner.hpp"
#include "testutil.hpp"

namespace e2e::blk {
namespace {

struct CacheRig : ::testing::Test {
  sim::Engine eng;
  numa::Host host{eng, e2e::test::tiny_host("h")};
};

TEST_F(CacheRig, InsertTracksResidency) {
  PageCache pc(host, 1 << 20, 1 << 20);
  int f1 = 0, f2 = 0;
  EXPECT_EQ(pc.insert(&f1, 1000), 0u);
  EXPECT_EQ(pc.insert(&f2, 2000), 0u);
  EXPECT_EQ(pc.total_resident(), 3000u);
  EXPECT_EQ(pc.state(&f1).resident, 1000u);
}

TEST_F(CacheRig, EvictsWhenOverCapacity) {
  PageCache pc(host, 10'000, 1 << 20);
  int f1 = 0, f2 = 0;
  pc.insert(&f1, 8000);
  const auto evicted = pc.insert(&f2, 5000);
  EXPECT_EQ(evicted, 3000u);
  EXPECT_EQ(pc.total_resident(), 10'000u);
}

TEST_F(CacheRig, DirtyPagesAreNotEvicted) {
  PageCache pc(host, 10'000, 1 << 20);
  int f1 = 0;
  pc.insert(&f1, 8000);
  exp::run_task(eng, pc.mark_dirty(&f1, 8000));
  int f2 = 0;
  pc.insert(&f2, 6000);
  // Only f2's own clean pages could be evicted; f1 stays fully resident.
  EXPECT_EQ(pc.state(&f1).resident, 8000u);
}

TEST_F(CacheRig, MarkDirtyThrottlesAtLimit) {
  PageCache pc(host, 1 << 20, 4096);
  int f = 0;
  exp::run_task(eng, pc.mark_dirty(&f, 4096));
  bool second_done = false;
  sim::co_spawn([](PageCache& cache, int* file, bool* done) -> sim::Task<> {
    co_await cache.mark_dirty(file, 4096);
    *done = true;
  }(pc, &f, &second_done));
  eng.run();
  EXPECT_FALSE(second_done);  // throttled: over the dirty limit
  pc.complete_writeback(&f, 4096);
  eng.run();
  EXPECT_TRUE(second_done);
}

TEST_F(CacheRig, CompleteWritebackClampsToDirty) {
  PageCache pc(host, 1 << 20, 1 << 20);
  int f = 0;
  exp::run_task(eng, pc.mark_dirty(&f, 1000));
  pc.complete_writeback(&f, 5000);  // over-complete is clamped
  EXPECT_EQ(pc.total_dirty(), 0u);
  EXPECT_EQ(pc.state(&f).dirty, 0u);
}

TEST_F(CacheRig, WaitCleanBlocksUntilWritebackDone) {
  PageCache pc(host, 1 << 20, 1 << 20);
  int f = 0;
  exp::run_task(eng, pc.mark_dirty(&f, 2048));
  bool clean = false;
  sim::co_spawn([](PageCache& cache, int* file, bool* done) -> sim::Task<> {
    co_await cache.wait_clean(file);
    *done = true;
  }(pc, &f, &clean));
  eng.run();
  EXPECT_FALSE(clean);
  pc.complete_writeback(&f, 1024);
  eng.run();
  EXPECT_FALSE(clean);  // still half dirty
  pc.complete_writeback(&f, 1024);
  eng.run();
  EXPECT_TRUE(clean);
}

TEST_F(CacheRig, WaitCleanOnCleanFileIsImmediate) {
  PageCache pc(host, 1 << 20, 1 << 20);
  int f = 0;
  bool clean = false;
  sim::co_spawn([](PageCache& cache, int* file, bool* done) -> sim::Task<> {
    co_await cache.wait_clean(file);
    *done = true;
  }(pc, &f, &clean));
  EXPECT_TRUE(clean);
}

TEST_F(CacheRig, PagePlacementIsThreadLocalNode) {
  PageCache pc(host, 1 << 20, 1 << 20);
  numa::Process p(host, "k", numa::NumaBinding::bound(1));
  numa::Thread& th = p.spawn_thread();
  const auto& placement = pc.page_placement(th);
  EXPECT_EQ(placement.extents[0].node, 1);
}

TEST_F(CacheRig, PagePlacementHasStableIdentity) {
  // Buffered I/O resolves the kernel-page placement once per operation; it
  // must be the host's canonical per-node placement, not a fresh Placement
  // per call — fresh placements mint a new cost-plan identity on every
  // booking, growing threads' plan caches without bound (one CostPlan per
  // I/O) and never hitting the cache.
  PageCache pc(host, 1 << 20, 1 << 20);
  numa::Process p(host, "k", numa::NumaBinding::bound(0));
  numa::Thread& th = p.spawn_thread();
  const numa::Placement& a = pc.page_placement(th);
  const numa::Placement& b = pc.page_placement(th);
  EXPECT_EQ(&a, &b) << "placement must be a stable host-owned object";
  EXPECT_EQ(&a, &host.node_placement(th.node()));
  EXPECT_EQ(a.plan_key_value(), b.plan_key_value())
      << "repeated buffered I/O must reuse one plan-cache key";
}

}  // namespace
}  // namespace e2e::blk
