#include "blk/filesystem.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "exp/runner.hpp"
#include "numa/process.hpp"
#include "testutil.hpp"

namespace e2e::blk {
namespace {

using metrics::CpuCategory;

struct FsRig : ::testing::Test {
  sim::Engine eng;
  numa::Host host{eng, e2e::test::tiny_host("h")};
  mem::Tmpfs tmpfs{host};
  mem::TmpFile* backing = nullptr;
  std::unique_ptr<RamBlockDevice> dev;
  std::unique_ptr<PageCache> cache;
  numa::Process kernel{host, "kernel", numa::NumaBinding::os_default()};
  numa::Process app{host, "app", numa::NumaBinding::bound(0)};

  void SetUp() override {
    backing = &tmpfs.create("disk", 64 << 20, numa::MemPolicy::kBind, 0);
    dev = std::make_unique<RamBlockDevice>(tmpfs, *backing);
  }

  std::vector<numa::Thread*> kernel_pool(int n) {
    std::vector<numa::Thread*> out;
    for (int i = 0; i < n; ++i) out.push_back(&kernel.spawn_thread());
    return out;
  }
};

TEST_F(FsRig, CreateOpenAndReservation) {
  XfsSim fs(host, *dev, nullptr, {});
  File& f = fs.create("a", 1 << 20);
  EXPECT_EQ(fs.open("a"), &f);
  EXPECT_EQ(fs.open("b"), nullptr);
  EXPECT_EQ(f.size, 0u);
  EXPECT_GE(f.reserved, 1u << 20);
  EXPECT_THROW(fs.create("a", 1), std::invalid_argument);
}

TEST_F(FsRig, FilesystemFullThrows) {
  XfsSim fs(host, *dev, nullptr, {});
  fs.create("big", 60 << 20);
  EXPECT_THROW(fs.create("big2", 60 << 20), std::length_error);
}

TEST_F(FsRig, DirectWriteThenReadRoundTrips) {
  XfsSim fs(host, *dev, nullptr, {});
  File& f = fs.create("a", 1 << 20);
  numa::Thread& th = app.spawn_thread();
  const auto buf = numa::Placement::on(0);
  const auto wrote = exp::run_task(
      eng, fs.write(th, f, 0, 512 * 1024, buf, true, CpuCategory::kOffload));
  EXPECT_EQ(wrote, 512u * 1024);
  EXPECT_EQ(f.size, 512u * 1024);
  const auto read = exp::run_task(
      eng, fs.read(th, f, 0, 1 << 20, buf, true, CpuCategory::kLoad));
  EXPECT_EQ(read, 512u * 1024);  // truncated at EOF
}

TEST_F(FsRig, ReadPastEofIsZero) {
  XfsSim fs(host, *dev, nullptr, {});
  File& f = fs.create("a", 1 << 20);
  numa::Thread& th = app.spawn_thread();
  EXPECT_EQ(exp::run_task(eng, fs.read(th, f, 0, 4096, numa::Placement::on(0),
                                       true, CpuCategory::kLoad)),
            0u);
}

TEST_F(FsRig, WriteBeyondReservationThrows) {
  XfsSim fs(host, *dev, nullptr, {});
  File& f = fs.create("a", 4096);
  numa::Thread& th = app.spawn_thread();
  EXPECT_THROW(
      exp::run_task(eng, fs.write(th, f, 0, 1 << 20, numa::Placement::on(0),
                                  true, CpuCategory::kOffload)),
      std::length_error);
}

TEST_F(FsRig, DirectWriteAllocatesExtents) {
  XfsSim fs(host, *dev, nullptr, {}, 8, /*extent_bytes=*/1 << 20);
  File& f = fs.create("a", 4 << 20);
  numa::Thread& th = app.spawn_thread();
  exp::run_task(eng, fs.write(th, f, 0, 4 << 20, numa::Placement::on(0),
                              true, CpuCategory::kOffload));
  EXPECT_EQ(f.extent_count, 4u);
  EXPECT_GE(f.allocated, 4u << 20);
}

TEST_F(FsRig, BufferedWriteGoesThroughCacheAndWritesBack) {
  cache = std::make_unique<PageCache>(host, 32 << 20, 16 << 20);
  XfsSim fs(host, *dev, cache.get(), kernel_pool(2));
  File& f = fs.create("a", 4 << 20);
  numa::Thread& th = app.spawn_thread();
  exp::run_task(eng, fs.write(th, f, 0, 1 << 20, numa::Placement::on(0),
                              false, CpuCategory::kOffload));
  // The copy to kernel pages was charged...
  EXPECT_GT(app.usage().get(CpuCategory::kCopy), 0u);
  // ...and writeback eventually lands on the device.
  eng.run();
  EXPECT_EQ(backing->bytes_written, 1u << 20);
  EXPECT_EQ(cache->total_dirty(), 0u);
}

TEST_F(FsRig, FsyncWaitsForWriteback) {
  cache = std::make_unique<PageCache>(host, 32 << 20, 16 << 20);
  XfsSim fs(host, *dev, cache.get(), kernel_pool(1));
  File& f = fs.create("a", 4 << 20);
  numa::Thread& th = app.spawn_thread();
  exp::run_task(eng, [](FileSystem& xfs, numa::Thread& t, File& file)
                         -> sim::Task<> {
    co_await xfs.write(t, file, 0, 1 << 20, numa::Placement::on(0), false,
                       CpuCategory::kOffload);
    co_await xfs.fsync(t, file);
  }(fs, th, f));
  EXPECT_EQ(backing->bytes_written, 1u << 20);
}

TEST_F(FsRig, BufferedSequentialReadUsesReadahead) {
  cache = std::make_unique<PageCache>(host, 32 << 20, 16 << 20);
  XfsSim fs(host, *dev, cache.get(), kernel_pool(2));
  File& f = fs.create("a", 8 << 20);
  f.size = f.allocated = 8 << 20;  // pre-existing data
  numa::Thread& th = app.spawn_thread();
  const std::uint64_t chunk = 256 * 1024;
  // Stream the file sequentially.
  exp::run_task(eng, [](FileSystem& xfs, numa::Thread& t, File& file,
                        std::uint64_t c) -> sim::Task<> {
    for (std::uint64_t off = 0; off + c <= file.size; off += c)
      co_await xfs.read(t, file, off, c, numa::Placement::on(0), false,
                        CpuCategory::kLoad);
  }(fs, th, f, chunk));
  // Device saw each byte roughly once (readahead did not duplicate work).
  EXPECT_GE(backing->bytes_read, 8u << 20);
  EXPECT_LE(backing->bytes_read, (8u << 20) + (1u << 20));
}

TEST_F(FsRig, BufferedFsRequiresKernelThreads) {
  cache = std::make_unique<PageCache>(host, 1 << 20, 1 << 20);
  EXPECT_THROW(XfsSim(host, *dev, cache.get(), {}), std::invalid_argument);
}

TEST_F(FsRig, XfsParallelWritersBeatExt4Journal) {
  // Many small files written concurrently: XFS spreads allocations over
  // AGs; ext4 serializes every extent on the journal.
  auto run_fs = [&](FileSystem& fs) {
    sim::WaitGroup wg(eng);
    for (int i = 0; i < 8; ++i) {
      File& f = fs.create("f" + std::to_string(i), 2 << 20);
      numa::Thread& th = app.spawn_thread(i % 2);
      wg.add();
      sim::co_spawn([](FileSystem& xfs, numa::Thread& t, File& file,
                       sim::WaitGroup* w) -> sim::Task<> {
        for (int k = 0; k < 8; ++k)
          co_await xfs.write(t, file, static_cast<std::uint64_t>(k) * 256 *
                                          1024,
                             256 * 1024, numa::Placement::on(t.node()), true,
                             CpuCategory::kOffload);
        w->done();
      }(fs, th, f, &wg));
    }
    const auto t0 = eng.now();
    eng.run();
    return eng.now() - t0;
  };

  XfsSim xfs(host, *dev, nullptr, {}, 8, /*extent=*/256 * 1024);
  const auto xfs_time = run_fs(xfs);

  mem::TmpFile& backing2 =
      tmpfs.create("disk2", 64 << 20, numa::MemPolicy::kBind, 0);
  RamBlockDevice dev2(tmpfs, backing2);
  Ext4Sim ext4(host, dev2, nullptr, {}, /*extent=*/256 * 1024);
  const auto ext4_time = run_fs(ext4);

  EXPECT_LT(xfs_time, ext4_time);
}

}  // namespace
}  // namespace e2e::blk
