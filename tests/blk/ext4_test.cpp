#include <gtest/gtest.h>

#include <memory>

#include "blk/filesystem.hpp"
#include "exp/runner.hpp"
#include "numa/process.hpp"
#include "testutil.hpp"

namespace e2e::blk {
namespace {

using metrics::CpuCategory;

struct Ext4Rig : ::testing::Test {
  sim::Engine eng;
  numa::Host host{eng, e2e::test::tiny_host("h")};
  mem::Tmpfs tmpfs{host};
  mem::TmpFile* backing = nullptr;
  std::unique_ptr<RamBlockDevice> dev;
  numa::Process app{host, "app", numa::NumaBinding::bound(0)};

  void SetUp() override {
    backing = &tmpfs.create("disk", 64 << 20, numa::MemPolicy::kBind, 0);
    dev = std::make_unique<RamBlockDevice>(tmpfs, *backing);
  }
};

TEST_F(Ext4Rig, BasicReadWriteRoundTrip) {
  Ext4Sim fs(host, *dev, nullptr, {});
  File& f = fs.create("a", 4 << 20);
  numa::Thread& th = app.spawn_thread();
  EXPECT_EQ(exp::run_task(eng, fs.write(th, f, 0, 1 << 20,
                                        numa::Placement::on(0), true,
                                        CpuCategory::kOffload)),
            1u << 20);
  EXPECT_EQ(exp::run_task(eng, fs.read(th, f, 0, 1 << 20,
                                       numa::Placement::on(0), true,
                                       CpuCategory::kLoad)),
            1u << 20);
}

TEST_F(Ext4Rig, JournalCommitsCostMoreThanXfsAllocation) {
  Ext4Sim ext4(host, *dev, nullptr, {}, /*extent=*/1 << 20);
  mem::TmpFile& b2 = tmpfs.create("disk2", 64 << 20, numa::MemPolicy::kBind, 0);
  RamBlockDevice dev2(tmpfs, b2);
  XfsSim xfs(host, dev2, nullptr, {}, 8, /*extent=*/1 << 20);
  numa::Thread& th = app.spawn_thread();

  File& fe = ext4.create("e", 8 << 20);
  const auto t0 = eng.now();
  exp::run_task(eng, ext4.write(th, fe, 0, 8 << 20, numa::Placement::on(0),
                                true, CpuCategory::kOffload));
  const auto ext4_time = eng.now() - t0;

  File& fx = xfs.create("x", 8 << 20);
  const auto t1 = eng.now();
  exp::run_task(eng, xfs.write(th, fx, 0, 8 << 20, numa::Placement::on(0),
                               true, CpuCategory::kOffload));
  const auto xfs_time = eng.now() - t1;
  // 8 extents, each paying a journal commit on ext4.
  EXPECT_GT(ext4_time, xfs_time);
}

TEST_F(Ext4Rig, ExtentCountMatchesConfiguredGranularity) {
  Ext4Sim fs(host, *dev, nullptr, {}, /*extent=*/1 << 20);
  File& f = fs.create("a", 8 << 20);
  numa::Thread& th = app.spawn_thread();
  exp::run_task(eng, fs.write(th, f, 0, 8 << 20, numa::Placement::on(0),
                              true, CpuCategory::kOffload));
  EXPECT_EQ(f.extent_count, 8u);
}

}  // namespace
}  // namespace e2e::blk
