// §2.3 motivating experiment: STREAM triad peak and bi-directional iperf
// over three 40G RoCE links, stock scheduler vs NUMA tuning.
//
// Paper numbers: Triad 50 GB/s; iperf 83.5 Gbps (default) -> 91.8 Gbps
// (tuned), with the kernel copy routine at ~35% of overall CPU.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "scenarios.hpp"

namespace e2e::bench {
namespace {

MotivatingResult g_default, g_tuned;

void BM_IperfDefaultScheduler(benchmark::State& state) {
  for (auto _ : state) {
    g_default = run_motivating(false);
    benchmark::DoNotOptimize(g_default.iperf_gbps);
  }
  state.counters["Gbps"] = g_default.iperf_gbps;
  state.counters["copy_share"] = g_default.copy_share;
}
BENCHMARK(BM_IperfDefaultScheduler)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_IperfNumaTuned(benchmark::State& state) {
  for (auto _ : state) {
    g_tuned = run_motivating(true);
    benchmark::DoNotOptimize(g_tuned.iperf_gbps);
  }
  state.counters["Gbps"] = g_tuned.iperf_gbps;
}
BENCHMARK(BM_IperfNumaTuned)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace e2e::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  using namespace e2e::bench;
  print_comparison(
      "Sec 2.3 motivating experiment",
      {
          {"STREAM triad (local)", 50.0, g_tuned.stream_local_gBps, "GB/s"},
          {"STREAM triad (interleaved)", 0.0,
           g_tuned.stream_interleaved_gBps, "GB/s"},
          {"iperf bidir, default sched", 83.5, g_default.iperf_gbps, "Gbps"},
          {"iperf bidir, NUMA tuned", 91.8, g_tuned.iperf_gbps, "Gbps"},
          {"NUMA tuning gain", 9.9,
           100.0 * (g_tuned.iperf_gbps / g_default.iperf_gbps - 1.0), "%"},
          {"copy routines' CPU share", 35.0, 100.0 * g_default.copy_share,
           "%"},
      });
  print_cpu_breakdown("host CPU, default scheduler", g_default.host_usage,
                      g_default.window);
  return 0;
}
