// Ablation: crash-stop fault domains on the RFTP WAN path (DESIGN.md §9).
//
// Two sweeps over the same 4 GiB transfer on the 95 ms ANI 40G loop:
//
//  * crash frequency — 0/1/2/4 scripted host crashes (50 ms downtime,
//    alternating sender/receiver). Measures goodput retained, MTTR
//    (crash to negotiated resume, RTT-dominated on the WAN) and
//    time-to-first-drain after each resume.
//  * checkpoint interval — one receiver crash mid-drain-burst with the
//    durable ledger checkpointing every 1/8/64 fresh drains, plus the
//    ledger disabled (restart from byte zero). Measures the rollback
//    the ledger buys back: blocks re-sent because their acks were
//    volatile when the receiver died.
//
// With E2E_BENCH_JSON set, per-case goodput + MTTR percentiles are
// written as a JSON artifact (CI uploads it per toolchain).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <map>
#include <string>

#include "bench_util.hpp"
#include "exp/runner.hpp"
#include "exp/testbeds.hpp"
#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "metrics/table.hpp"
#include "rftp/rftp.hpp"

namespace e2e::bench {
namespace {

constexpr std::uint64_t kDataset = 4ull << 30;

struct CrashPoint {
  double gbps = 0.0;
  std::uint64_t crashes = 0;
  std::uint64_t resumes = 0;
  std::uint64_t rolled_back = 0;
  std::uint64_t block_retx = 0;
  std::uint64_t grant_retx = 0;
  std::uint64_t checkpoints = 0;
  bool complete = false;
  bool integrity_ok = false;
  stats::Histogram mttr;       // crash -> resume negotiated (ns)
  stats::Histogram first_drain;  // resume -> first fresh drain (ns)
  std::uint64_t sim_events = 0;
  double wall_seconds = 0.0;
};

/// One transfer under `plan_str` with the crash handler wired.
CrashPoint run_crash_case(const std::string& plan_str, int checkpoint_blocks) {
  exp::WanTestbed tb;
  ScopedStats ss(tb.eng);

  rftp::RftpConfig cfg;
  cfg.streams = 4;
  cfg.block_bytes = 4ull << 20;
  cfg.credits_per_stream = 16;
  cfg.checkpoint_blocks = checkpoint_blocks;
  rftp::RftpSession sess({tb.a_proc.get(), {tb.a_dev.get()}},
                         {tb.b_proc.get(), {tb.b_dev.get()}},
                         {tb.link.get()}, cfg);

  fault::FaultInjector inj(tb.eng, fault::FaultPlan::parse(plan_str));
  inj.attach(*tb.link);
  inj.set_crash_handler([&sess](int host, sim::SimDuration down) {
    sess.crash_host(host, down);
  });
  inj.arm();

  rftp::ZeroSource src(kDataset);
  rftp::NullSink dst;
  const auto w0 = std::chrono::steady_clock::now();
  const auto res = exp::run_task(tb.eng, sess.run(src, dst, kDataset));
  tb.eng.run();  // drain restart events scheduled past the transfer
  const auto w1 = std::chrono::steady_clock::now();

  CrashPoint p;
  p.gbps = res.goodput_gbps;
  p.crashes = res.crashes;
  p.resumes = res.resumes;
  p.rolled_back = sess.rolled_back_blocks;
  p.block_retx = sess.retransmissions;
  p.grant_retx = sess.grant_retransmissions;
  p.checkpoints = sess.checkpoints;
  p.complete = res.complete;
  p.integrity_ok = res.integrity_ok;
  p.mttr = ss.merged("mttr_ns");
  p.first_drain = ss.merged("resume_ns");
  p.sim_events = tb.eng.events_processed();
  p.wall_seconds = std::chrono::duration<double>(w1 - w0).count();
  return p;
}

struct FreqCase {
  const char* name = "";
  std::string plan;
};

/// 0..4 crashes across the ~1.4 s transfer, alternating hosts, 50 ms down.
std::vector<FreqCase> frequency_cases() {
  return {
      {"clean", ""},
      {"1 crash", "crash@600ms:host=1,down=50ms"},
      {"2 crashes",
       "crash@400ms:host=0,down=50ms; crash@800ms:host=1,down=50ms"},
      {"4 crashes",
       "crash@300ms:host=0,down=50ms; crash@600ms:host=1,down=50ms; "
       "crash@900ms:host=0,down=50ms; crash@1200ms:host=1,down=50ms"},
  };
}

const int kCkptBlocks[] = {1, 8, 64, 0};  // 0 = ledger disabled

std::map<int, CrashPoint> g_freq;
std::map<int, CrashPoint> g_ckpt;

void BM_CrashFrequency(benchmark::State& state) {
  const auto cases = frequency_cases();
  const auto idx = static_cast<std::size_t>(state.range(0));
  CrashPoint p;
  for (auto _ : state) {
    p = run_crash_case(cases[idx].plan, 8);
    benchmark::DoNotOptimize(p.gbps);
  }
  g_freq[static_cast<int>(idx)] = p;
  state.counters["Gbps"] = p.gbps;
  state.counters["resumes"] = static_cast<double>(p.resumes);
  state.SetLabel(cases[idx].name);
}
BENCHMARK(BM_CrashFrequency)
    ->DenseRange(0, 3)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_CheckpointInterval(benchmark::State& state) {
  const int ckpt = kCkptBlocks[state.range(0)];
  CrashPoint p;
  for (auto _ : state) {
    p = run_crash_case("crash@760ms:host=1,down=20ms", ckpt);
    benchmark::DoNotOptimize(p.gbps);
  }
  g_ckpt[ckpt] = p;
  state.counters["Gbps"] = p.gbps;
  state.counters["rolled_back"] = static_cast<double>(p.rolled_back);
  state.SetLabel(ckpt == 0 ? "ledger off"
                           : "ckpt every " + std::to_string(ckpt));
}
BENCHMARK(BM_CheckpointInterval)
    ->DenseRange(0, 3)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace e2e::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  using namespace e2e::bench;
  SimCostJson json;

  const auto cases = frequency_cases();
  e2e::metrics::Table t(
      "Ablation: crash frequency (4 GiB over the 95 ms WAN loop, 4 streams, "
      "50 ms downtime, ledger every 8 blocks)");
  t.header({"schedule", "Gbps", "resumes", "rolled back", "blk retx",
            "grant retx", "MTTR ms (mean)", "ok"});
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const auto& p = g_freq[static_cast<int>(i)];
    t.row({cases[i].name, e2e::metrics::Table::num(p.gbps),
           std::to_string(p.resumes), std::to_string(p.rolled_back),
           std::to_string(p.block_retx), std::to_string(p.grant_retx),
           p.mttr.count() > 0
               ? e2e::metrics::Table::num(p.mttr.mean() * 1e-6, 1)
               : std::string("-"),
           p.complete && p.integrity_ok ? "yes" : "NO"});
    json.add("crash_restart/" + std::string(cases[i].name), p.sim_events,
             p.wall_seconds, p.gbps, &p.mttr);
  }
  std::fputs(t.to_string().c_str(), stdout);

  e2e::metrics::Table c(
      "Ablation: ledger checkpoint interval (one receiver crash at 760 ms, "
      "20 ms downtime)");
  c.header({"interval", "Gbps", "checkpoints", "rolled back", "re-sent MiB",
            "ok"});
  for (const int ckpt : kCkptBlocks) {
    const auto& p = g_ckpt[ckpt];
    c.row({ckpt == 0 ? "ledger off" : "every " + std::to_string(ckpt),
           e2e::metrics::Table::num(p.gbps), std::to_string(p.checkpoints),
           std::to_string(p.rolled_back),
           std::to_string(p.rolled_back * 4),  // 4 MiB blocks
           p.complete && p.integrity_ok ? "yes" : "NO"});
    json.add("crash_restart/ckpt_" +
                 (ckpt == 0 ? std::string("off") : std::to_string(ckpt)),
             p.sim_events, p.wall_seconds, p.gbps, &p.mttr);
  }
  std::fputs(c.to_string().c_str(), stdout);

  // MTTR decomposition: re-establish + MR re-pin + resume negotiation is
  // RTT-dominated on the WAN; time-to-first-drain adds the refill of the
  // credit pipeline.
  std::vector<std::pair<std::string, const e2e::stats::Histogram*>> hists;
  for (std::size_t i = 1; i < cases.size(); ++i) {
    hists.push_back({std::string(cases[i].name) + " MTTR",
                     &g_freq[static_cast<int>(i)].mttr});
    hists.push_back({std::string(cases[i].name) + " first-drain",
                     &g_freq[static_cast<int>(i)].first_drain});
  }
  print_hist_percentiles("Crash recovery latency (ms)", hists, 1e-6, 1);
  std::printf(
      "\nThe ledger turns a receiver crash from a full restart into a\n"
      "bounded rollback (at most interval-1 blocks per stream re-sent);\n"
      "MTTR itself is wire-bound -- re-login, MR re-pin and the resume\n"
      "handshake all ride the 95 ms RTT, not the checkpoint cadence.\n");
  return 0;
}
