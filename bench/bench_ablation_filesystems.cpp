// Ablation (§4.3): filesystem choice over the exported iSER volume.
//
// The paper found raw device, ext4 and XFS comparable for this streaming
// workload, chose XFS for its parallel-I/O behaviour, and blames part of
// GridFTP's loss on buffered (non-direct) I/O. This bench quantifies all
// three choices on the front-end write path.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <memory>

#include "bench_util.hpp"
#include "exp/exp.hpp"
#include "metrics/table.hpp"
#include "metrics/throughput.hpp"
#include "rftp/rftp.hpp"

namespace e2e::bench {
namespace {

enum class FsKind { kRaw, kExt4, kXfs, kXfsBuffered };

double run_sink_variant(FsKind kind) {
  exp::EndToEndTestbed tb(true, 16ull << 30);
  tb.start();

  // Replace the destination filesystem per variant.
  std::unique_ptr<blk::FileSystem> fs;
  auto kernel_pool = [&](int n) {
    std::vector<numa::Thread*> pool;
    for (int i = 0; i < n; ++i)
      pool.push_back(&tb.dst_kernel->spawn_thread());
    return pool;
  };
  bool direct = true;
  switch (kind) {
    case FsKind::kRaw:
      // Raw block device: a filesystem with no cache and trivial
      // allocation (pre-allocated file on XFS behaves identically; model
      // raw as XFS with an allocation already covering the file).
      fs = std::make_unique<blk::XfsSim>(*tb.dst_fe, tb.dst_san->striped(),
                                         nullptr,
                                         std::vector<numa::Thread*>{});
      break;
    case FsKind::kExt4:
      fs = std::make_unique<blk::Ext4Sim>(*tb.dst_fe, tb.dst_san->striped(),
                                          nullptr,
                                          std::vector<numa::Thread*>{});
      break;
    case FsKind::kXfs:
      fs = std::make_unique<blk::XfsSim>(*tb.dst_fe, tb.dst_san->striped(),
                                         nullptr,
                                         std::vector<numa::Thread*>{});
      break;
    case FsKind::kXfsBuffered:
      fs = std::make_unique<blk::XfsSim>(*tb.dst_fe, tb.dst_san->striped(),
                                         tb.dst_cache.get(), kernel_pool(8));
      direct = false;
      break;
  }
  blk::File& out = fs->create("sink", tb.dataset_bytes);
  if (kind == FsKind::kRaw)
    out.allocated = out.reserved;  // no allocation path at runtime

  numa::Process sp(*tb.src_fe, "rftp-c", numa::NumaBinding::os_default());
  numa::Process rp(*tb.dst_fe, "rftp-s", numa::NumaBinding::os_default());
  rftp::RftpConfig cfg;
  rftp::RftpSession sess({&sp, tb.src_roce()}, {&rp, tb.dst_roce()},
                         tb.links(), cfg);
  rftp::FileSource src(*tb.src_fs, *tb.src_file);
  rftp::FileSink dst(*fs, out, direct);
  const auto r =
      exp::run_task(tb.eng, sess.run(src, dst, tb.dataset_bytes));
  return r.goodput_gbps;
}

std::map<int, double> g_gbps;

void BM_SinkFilesystem(benchmark::State& state) {
  double g = 0;
  for (auto _ : state) {
    g = run_sink_variant(static_cast<FsKind>(state.range(0)));
    benchmark::DoNotOptimize(g);
  }
  g_gbps[static_cast<int>(state.range(0))] = g;
  state.counters["Gbps"] = g;
  static const char* names[] = {"raw", "ext4", "xfs", "xfs-buffered"};
  state.SetLabel(names[state.range(0)]);
}
BENCHMARK(BM_SinkFilesystem)
    ->DenseRange(0, 3)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace e2e::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  using namespace e2e::bench;
  e2e::metrics::Table t("Ablation: destination filesystem (RFTP sink path)");
  t.header({"variant", "Gbps"});
  static const char* names[] = {"raw device", "ext4 (journal)",
                                "XFS (parallel AGs)",
                                "XFS buffered (no direct I/O)"};
  for (int i = 0; i < 4; ++i)
    t.row({names[i], e2e::metrics::Table::num(g_gbps[i])});
  std::fputs(t.to_string().c_str(), stdout);
  std::printf(
      "\npaper: raw/ext4/XFS comparable for streaming; direct I/O matters\n");
  return 0;
}
