// bench_fastforward — event-exact vs --fast-forward wall-clock comparison.
//
// Runs the same bulk transfer twice in-process (fresh engine each time):
// once event-exact, once with the steady-state detector enabled, timing
// exp::run_task() only (process startup and rig construction excluded —
// both modes pay them identically). Every paired row cross-checks the
// final metrics (bytes, blocks, elapsed, goodput, digest, counters) and
// refuses to report a speedup for a run that diverged.
//
// Rows:
//   quick_64gib         40G LAN steady-state bulk, bare event loop — the
//                       floor case: the exact run itself is near-free per
//                       block, so the ratio is the smallest of the bulk rows
//   quick_64gib_audit   the acceptance headline: same 64 GiB bulk with the
//                       cross-layer auditor enabled on both runs (the
//                       configuration the golden equivalence suite gates on)
//   quick_1tib          TB-scale LAN bulk (routine with fast-forward)
//   wan_64gib           95 ms ANI loop, minutes of simulated time
//   wan_1tib            multi-hour-class WAN bulk
//   wan_64gib_chaos     fault-heavy: scripted loss/flap/qpkill mid-run —
//                       honest row where the detector rarely engages
//
// Output: one JSON document on stdout (and to argv[1] when given) in the
// committed BENCH_fastforward.json shape.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "check/audit.hpp"
#include "exp/runner.hpp"
#include "exp/testbeds.hpp"
#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "model/host_profile.hpp"
#include "net/link.hpp"
#include "numa/numa.hpp"
#include "rdma/rdma.hpp"
#include "rftp/rftp.hpp"
#include "sim/sim.hpp"

namespace {

using namespace e2e;

struct RunOut {
  rftp::TransferResult r;
  std::uint64_t digest = 0;
  std::uint64_t control_msgs = 0;
  double wall_ms = 0.0;
};

/// One measured transfer on a fresh quick-style rig (two LAN hosts, one
/// 40G RoCE link) or the WAN loop testbed.
RunOut run_case(bool wan, std::uint64_t bytes, const std::string& plan_spec,
                bool fast_forward, bool audit) {
  std::unique_ptr<exp::WanTestbed> wtb;
  std::unique_ptr<sim::Engine> own_eng;
  std::unique_ptr<numa::Host> a, b;
  std::unique_ptr<rdma::Device> da, db;
  std::unique_ptr<net::Link> link;
  std::unique_ptr<numa::Process> pa, pb;
  sim::Engine* eng = nullptr;
  net::Link* wire = nullptr;
  rftp::EndpointConfig send{}, recv{};
  if (wan) {
    wtb = std::make_unique<exp::WanTestbed>();
    eng = &wtb->eng;
    wire = wtb->link.get();
    send = {wtb->a_proc.get(), {wtb->a_dev.get()}};
    recv = {wtb->b_proc.get(), {wtb->b_dev.get()}};
  } else {
    own_eng = std::make_unique<sim::Engine>();
    eng = own_eng.get();
    a = std::make_unique<numa::Host>(*eng, model::front_end_lan_host("a"));
    b = std::make_unique<numa::Host>(*eng, model::front_end_lan_host("b"));
    da = std::make_unique<rdma::Device>(*a, a->profile().nics[0]);
    db = std::make_unique<rdma::Device>(*b, b->profile().nics[0]);
    link = net::make_roce_lan(*eng, "wire");
    link->bind_endpoints(a.get(), b.get());
    pa = std::make_unique<numa::Process>(*a, "client",
                                         numa::NumaBinding::bound(da->node()));
    pb = std::make_unique<numa::Process>(*b, "server",
                                         numa::NumaBinding::bound(db->node()));
    wire = link.get();
    send = {pa.get(), {da.get()}};
    recv = {pb.get(), {db.get()}};
  }

  std::unique_ptr<check::Auditor> aud;
  if (audit) aud = std::make_unique<check::Auditor>(*eng);

  rftp::RftpConfig cfg;
  cfg.streams = wan ? 4 : 1;
  std::optional<fault::FaultPlan> plan;
  if (!plan_spec.empty()) plan = fault::FaultPlan::parse(plan_spec);
  cfg.fast_forward = fast_forward;
  if (fast_forward) {
    const sim::SimDuration slack =
        20 * wire->rtt() + 100 * sim::kMillisecond;
    cfg.ff_quiet_after = plan ? plan->quiet_after(slack) : 0;
  }
  rftp::RftpSession sess(send, recv, {wire}, cfg);
  std::unique_ptr<fault::FaultInjector> inj;
  if (plan) {
    inj = std::make_unique<fault::FaultInjector>(*eng, std::move(*plan));
    inj->attach(*wire);
    const int streams = cfg.streams;
    inj->set_qp_kill_handler(
        [&sess, streams](int qp) { sess.kill_stream(qp % streams); });
    inj->set_crash_handler([&sess](int host, sim::SimDuration down) {
      sess.crash_host(host, down);
    });
    inj->arm();
  }
  rftp::MemorySource src(bytes, numa::Placement::on(0));
  rftp::MemorySink dst;

  RunOut out;
  const auto t0 = std::chrono::steady_clock::now();
  out.r = exp::run_task(*eng, sess.run(src, dst, bytes));
  const auto t1 = std::chrono::steady_clock::now();
  out.wall_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  out.digest = sess.sink_digest();
  out.control_msgs = sess.control_messages();
  if (aud) {
    aud->finalize();
    if (!aud->ok()) {
      std::fprintf(stderr, "FATAL: auditor violations (ff=%d)\n",
                   fast_forward);
      std::exit(1);
    }
  }
  return out;
}

bool same_finals(const RunOut& x, const RunOut& f) {
  return x.r.bytes == f.r.bytes && x.r.blocks == f.r.blocks &&
         x.r.elapsed_s == f.r.elapsed_s &&
         x.r.goodput_gbps == f.r.goodput_gbps &&
         x.r.complete == f.r.complete &&
         x.r.integrity_ok == f.r.integrity_ok &&
         x.r.crashes == f.r.crashes && x.r.resumes == f.r.resumes &&
         x.digest == f.digest && x.control_msgs == f.control_msgs;
}

/// Median-of-3 wall time: the simulation is deterministic, so all reps
/// must produce identical final metrics; only the wall clock varies (heap
/// state, CPU frequency). Returns the rep whose wall time is the median.
RunOut run_case_median(bool wan, std::uint64_t bytes,
                       const std::string& plan_spec, bool fast_forward,
                       bool audit) {
  RunOut reps[3];
  for (auto& rep : reps) {
    rep = run_case(wan, bytes, plan_spec, fast_forward, audit);
    if (!same_finals(reps[0], rep)) {
      std::fprintf(stderr, "FATAL: non-deterministic rep (ff=%d)\n",
                   fast_forward);
      std::exit(1);
    }
  }
  const double w0 = reps[0].wall_ms, w1 = reps[1].wall_ms,
               w2 = reps[2].wall_ms;
  if ((w0 <= w1 && w1 <= w2) || (w2 <= w1 && w1 <= w0)) return reps[1];
  if ((w1 <= w0 && w0 <= w2) || (w2 <= w0 && w0 <= w1)) return reps[0];
  return reps[2];
}

struct Row {
  std::string name;
  bool wan = false;
  std::uint64_t gib = 0;
  std::string plan;
  bool audit = false;
};

int run_all(const char* out_path) {
  const std::vector<Row> rows = {
      {"quick_64gib", false, 64, "", false},
      {"quick_64gib_audit", false, 64, "", true},
      {"quick_1tib", false, 1024, "", false},
      {"wan_64gib", true, 64, "", false},
      {"wan_1tib", true, 1024, "", false},
      // Fault-heavy row on the WAN rig (4 streams, so the qpkill fails
      // over instead of killing the transfer): scripted perturbations
      // spread across the run keep the detector event-exact until the
      // plan's quiet horizon.
      {"wan_64gib_chaos", true, 64,
       "loss@500ms:n=5;flap@2s:dur=20ms;qpkill@4s:qp=1;loss@8s:n=4;"
       "flap@11s:dur=10ms",
       false},
  };

  std::string json = "{\n  \"schema\": \"e2e-fastforward-perf/1\",\n";
  json +=
      "  \"description\": \"--fast-forward (steady-state analytic span "
      "collapse) vs event-exact execution of the same transfers. Both "
      "runs in one process, CMAKE_BUILD_TYPE=Release, exp::run_task wall "
      "time only, median of 3 repetitions per mode after an untimed "
      "warmup; every paired row's final metrics (bytes, blocks, "
      "elapsed, goodput, XOR digest, control messages, crash/resume "
      "counts) verified bit-identical before a speedup is reported. The "
      "chaos row is the honest fault-heavy case: scripted perturbations "
      "keep the detector disarmed for most of the run, so the speedup is "
      "modest by design.\",\n  \"rows\": [\n";

  // Untimed warmup: page in the binary, prime the allocator and branch
  // predictors so the first timed row is not systematically cold.
  std::fprintf(stderr, "warmup...\n");
  (void)run_case(false, 4ull << 30, "", false, false);
  (void)run_case(false, 4ull << 30, "", true, false);

  bool first = true;
  for (const Row& row : rows) {
    const std::uint64_t bytes = row.gib << 30;
    std::fprintf(stderr, "running %s exact...\n", row.name.c_str());
    const RunOut exact =
        run_case_median(row.wan, bytes, row.plan, false, row.audit);
    std::fprintf(stderr, "running %s fast-forward...\n", row.name.c_str());
    const RunOut ff =
        run_case_median(row.wan, bytes, row.plan, true, row.audit);
    if (!same_finals(exact, ff)) {
      std::fprintf(stderr, "FATAL: %s diverged between modes\n",
                   row.name.c_str());
      return 1;
    }
    char buf[640];
    std::snprintf(
        buf, sizeof buf,
        "    {\n"
        "      \"name\": \"%s\",\n"
        "      \"gib\": %llu,\n"
        "      \"audit\": %s,\n"
        "      \"faults\": %s,\n"
        "      \"sim_elapsed_s\": %.3f,\n"
        "      \"exact_wall_ms\": %.2f,\n"
        "      \"ff_wall_ms\": %.2f,\n"
        "      \"speedup\": %.1f,\n"
        "      \"ff_spans\": %llu,\n"
        "      \"ff_blocks_collapsed\": %llu,\n"
        "      \"blocks_total\": %llu,\n"
        "      \"finals_identical\": true\n"
        "    }",
        row.name.c_str(), static_cast<unsigned long long>(row.gib),
        row.audit ? "true" : "false", row.plan.empty() ? "false" : "true",
        exact.r.elapsed_s, exact.wall_ms, ff.wall_ms,
        exact.wall_ms / ff.wall_ms,
        static_cast<unsigned long long>(ff.r.ff_spans),
        static_cast<unsigned long long>(ff.r.ff_blocks),
        static_cast<unsigned long long>(ff.r.blocks));
    if (!first) json += ",\n";
    json += buf;
    first = false;
    std::fprintf(stderr, "%s: exact %.1f ms, ff %.1f ms (%.1fx), "
                 "%llu/%llu blocks collapsed\n",
                 row.name.c_str(), exact.wall_ms, ff.wall_ms,
                 exact.wall_ms / ff.wall_ms,
                 static_cast<unsigned long long>(ff.r.ff_blocks),
                 static_cast<unsigned long long>(ff.r.blocks));
  }
  json += "\n  ]\n}\n";
  std::fputs(json.c_str(), stdout);
  if (out_path != nullptr) {
    std::ofstream os(out_path);
    if (!os) {
      std::fprintf(stderr, "cannot write %s\n", out_path);
      return 1;
    }
    os << json;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return run_all(argc > 1 ? argv[1] : nullptr);
}
