// Fig. 8: iSER target CPU utilization for the Fig. 7 sweep.
//
// Paper shape: the un-tuned write path costs ~3x the CPU of the tuned one
// (write-invalidate coherence storms); reads see only a modest penalty.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

#include "bench_util.hpp"
#include "metrics/table.hpp"
#include "scenarios.hpp"

namespace e2e::bench {
namespace {

const std::uint64_t kBlocks[] = {1ull << 20, 4ull << 20, 8ull << 20};

std::map<std::tuple<bool, bool, std::uint64_t>, IserPoint> g_points;

void BM_IserCpu(benchmark::State& state) {
  const bool tuned = state.range(0) != 0;
  const bool write = state.range(1) != 0;
  const std::uint64_t block = kBlocks[state.range(2)];
  IserPoint p;
  for (auto _ : state) {
    p = run_iser_point(tuned, write, block);
    benchmark::DoNotOptimize(p.target_cpu_pct);
  }
  g_points[{tuned, write, block}] = p;
  state.counters["target_cpu_pct"] = p.target_cpu_pct;
  state.counters["Gbps"] = p.gbps;
  state.SetLabel(std::string(tuned ? "tuned" : "default") +
                 (write ? "/write" : "/read") + "/" +
                 std::to_string(block >> 20) + "MiB");
}
BENCHMARK(BM_IserCpu)
    ->ArgsProduct({{0, 1}, {0, 1}, {0, 1, 2}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace e2e::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  using namespace e2e::bench;
  e2e::metrics::Table t("Fig. 8 iSER target CPU (%, 100 == one core)");
  t.header({"block", "read/default", "read/tuned", "write/default",
            "write/tuned"});
  for (auto block : kBlocks) {
    t.row({std::to_string(block >> 20) + " MiB",
           e2e::metrics::Table::num(
               g_points[{false, false, block}].target_cpu_pct, 0),
           e2e::metrics::Table::num(
               g_points[{true, false, block}].target_cpu_pct, 0),
           e2e::metrics::Table::num(
               g_points[{false, true, block}].target_cpu_pct, 0),
           e2e::metrics::Table::num(
               g_points[{true, true, block}].target_cpu_pct, 0)});
  }
  std::fputs(t.to_string().c_str(), stdout);
  std::fputc('\n', stdout);

  const auto& tw = g_points[{true, true, 4ull << 20}];
  const auto& dw = g_points[{false, true, 4ull << 20}];
  const auto& tr = g_points[{true, false, 4ull << 20}];
  const auto& dr = g_points[{false, false, 4ull << 20}];
  print_comparison(
      "Fig. 8 headline shapes (4 MiB blocks)",
      {
          {"write CPU ratio default/tuned", 3.0,
           dw.target_cpu_pct / tw.target_cpu_pct, "x"},
          {"read CPU ratio default/tuned", 1.2,
           dr.target_cpu_pct / tr.target_cpu_pct, "x"},
      });
  return 0;
}
