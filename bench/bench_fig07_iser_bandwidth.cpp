// Fig. 7: iSER bandwidth, default Linux scheduling vs NUMA tuning, for
// read and write fio workloads across block sizes (6 LUNs x 4 threads,
// two IB FDR links, tmpfs-backed target).
//
// Paper shape: reads gain ~7.6% from tuning; writes gain up to ~19% for
// blocks > 4 MB; tuned reads run ~7.5% above tuned writes (RDMA Write vs
// RDMA Read); tuned write lands at ~94.8 Gbps (the Fig. 9 path limit).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

#include "bench_util.hpp"
#include "metrics/table.hpp"
#include "scenarios.hpp"

namespace e2e::bench {
namespace {

const std::uint64_t kBlocks[] = {256ull << 10, 1ull << 20, 4ull << 20,
                                 8ull << 20};

std::map<std::tuple<bool, bool, std::uint64_t>, IserPoint> g_points;

void BM_IserFio(benchmark::State& state) {
  const bool tuned = state.range(0) != 0;
  const bool write = state.range(1) != 0;
  const std::uint64_t block = kBlocks[state.range(2)];
  IserPoint p;
  for (auto _ : state) {
    p = run_iser_point(tuned, write, block);
    benchmark::DoNotOptimize(p.gbps);
  }
  g_points[{tuned, write, block}] = p;
  state.counters["Gbps"] = p.gbps;
  state.counters["target_cpu_pct"] = p.target_cpu_pct;
  state.SetLabel(std::string(tuned ? "tuned" : "default") +
                 (write ? "/write" : "/read") + "/" +
                 std::to_string(block >> 20) + "MiB");
}
BENCHMARK(BM_IserFio)
    ->ArgsProduct({{0, 1}, {0, 1}, {0, 1, 2, 3}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace e2e::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  using namespace e2e::bench;
  e2e::metrics::Table t("Fig. 7 iSER bandwidth (Gbps) vs block size");
  t.header({"block", "read/default", "read/tuned", "write/default",
            "write/tuned"});
  for (auto block : kBlocks) {
    t.row({std::to_string(block >> 10) + " KiB",
           e2e::metrics::Table::num(g_points[{false, false, block}].gbps),
           e2e::metrics::Table::num(g_points[{true, false, block}].gbps),
           e2e::metrics::Table::num(g_points[{false, true, block}].gbps),
           e2e::metrics::Table::num(g_points[{true, true, block}].gbps)});
  }
  std::fputs(t.to_string().c_str(), stdout);
  std::fputc('\n', stdout);

  const auto& tr = g_points[{true, false, 4ull << 20}];
  const auto& tw = g_points[{true, true, 4ull << 20}];
  const auto& dr = g_points[{false, false, 4ull << 20}];
  const auto& dw = g_points[{false, true, 4ull << 20}];
  print_comparison(
      "Fig. 7 headline shapes (4 MiB blocks)",
      {
          {"tuned write (path limit)", 94.8, tw.gbps, "Gbps"},
          {"read advantage over write (tuned)", 7.5,
           100.0 * (tr.gbps / tw.gbps - 1.0), "%"},
          {"write loss without tuning", -19.0,
           100.0 * (dw.gbps / tw.gbps - 1.0), "%"},
          {"read loss without tuning", -7.1,
           100.0 * (dr.gbps / tr.gbps - 1.0), "%"},
      });
  return 0;
}
