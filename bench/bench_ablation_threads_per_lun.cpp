// Ablation (§4.2): fio threads per LUN.
//
// The paper reports throughput levels off at 4 threads/LUN and degrades
// beyond that from contention; this sweep regenerates that knee.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

#include "bench_util.hpp"
#include "metrics/table.hpp"
#include "scenarios.hpp"

namespace e2e::bench {
namespace {

const int kThreads[] = {1, 2, 4, 8, 16};
std::map<int, IserPoint> g_read, g_write;

void BM_ThreadsPerLun(benchmark::State& state) {
  const int threads = kThreads[state.range(0)];
  const bool write = state.range(1) != 0;
  IserPoint p;
  for (auto _ : state) {
    p = run_iser_point(true, write, 4ull << 20, threads);
    benchmark::DoNotOptimize(p.gbps);
  }
  (write ? g_write : g_read)[threads] = p;
  state.counters["Gbps"] = p.gbps;
  state.SetLabel(std::to_string(threads) + (write ? " thr/write" : " thr/read"));
}
BENCHMARK(BM_ThreadsPerLun)
    ->ArgsProduct({{0, 1, 2, 3, 4}, {0, 1}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace e2e::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  using namespace e2e::bench;
  e2e::metrics::Table t("Ablation: fio threads per LUN (tuned, 4 MiB)");
  t.header({"threads/LUN", "read Gbps", "write Gbps", "target CPU% (write)"});
  for (int thr : kThreads)
    t.row({std::to_string(thr), e2e::metrics::Table::num(g_read[thr].gbps),
           e2e::metrics::Table::num(g_write[thr].gbps),
           e2e::metrics::Table::num(g_write[thr].target_cpu_pct, 0)});
  std::fputs(t.to_string().c_str(), stdout);
  std::printf(
      "\npaper: gains level off at 4 threads/LUN; more adds contention\n");
  return 0;
}
