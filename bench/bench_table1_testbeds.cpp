// Table 1: testbed host configurations, plus microbenchmarks of the
// simulation substrate itself (event throughput, coroutine overhead) so
// regressions in the engine are visible.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "metrics/table.hpp"
#include "model/host_profile.hpp"
#include "numa/numa.hpp"
#include "sim/sim.hpp"

namespace e2e::bench {
namespace {

void BM_EngineEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine eng;
    const int n = static_cast<int>(state.range(0));
    for (int i = 0; i < n; ++i) eng.schedule_at(i, [] {});
    eng.run();
    benchmark::DoNotOptimize(eng.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EngineEventThroughput)->Arg(100000);

void BM_CoroutineChain(benchmark::State& state) {
  struct Chain {
    static sim::Task<> hop(sim::Engine& eng, int depth) {
      if (depth == 0) co_return;
      co_await sim::Delay{eng, 1};
      co_await hop(eng, depth - 1);
    }
  };
  for (auto _ : state) {
    sim::Engine eng;
    sim::co_spawn(Chain::hop(eng, static_cast<int>(state.range(0))));
    eng.run();
    benchmark::DoNotOptimize(eng.now());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CoroutineChain)->Arg(10000);

void BM_ResourceCharges(benchmark::State& state) {
  sim::Engine eng;
  sim::Resource r(eng, 1e9, "r");
  for (auto _ : state) benchmark::DoNotOptimize(r.charge(100.0));
}
BENCHMARK(BM_ResourceCharges);

void BM_HostConstruction(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine eng;
    numa::Host host(eng, model::front_end_lan_host("fe"));
    benchmark::DoNotOptimize(host.core_count());
  }
}
BENCHMARK(BM_HostConstruction);

void print_profile(e2e::metrics::Table& t, const model::HostProfile& h,
                   const char* role, const char* rtt) {
  std::string nics;
  for (const auto& n : h.nics)
    nics += (nics.empty() ? "" : "+") +
            std::to_string(static_cast<int>(n.rate_gbps)) + "G";
  t.row({role, std::to_string(h.total_cores()) + " cores",
         e2e::metrics::Table::num(h.core_ghz, 2) + " GHz",
         std::to_string(h.numa_nodes) + " nodes",
         e2e::metrics::Table::num(h.mem_gbytes, 0) + " GB", nics,
         std::to_string(h.nics.empty() ? 0 : h.nics[0].mtu), rtt});
}

}  // namespace
}  // namespace e2e::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  using namespace e2e;
  metrics::Table t("Table 1: testbed host configurations (as modelled)");
  t.header({"role", "CPU", "clock", "NUMA", "memory", "NICs", "MTU", "RTT"});
  e2e::bench::print_profile(t, model::front_end_lan_host("fe"),
                            "front-end LAN", "0.166 ms");
  e2e::bench::print_profile(t, model::back_end_lan_host("be"),
                            "back-end LAN", "0.144 ms");
  e2e::bench::print_profile(t, model::wan_host("wan"), "front-end WAN",
                            "95 ms");
  std::fputs(t.to_string().c_str(), stdout);
  return 0;
}
