// bench_rpc — small-message tier throughput/latency sweep, and the
// two-sided-RPC vs one-sided-READ GET crossover.
//
// Runs the kv scenario (exp::run_kv) on one client/server pair over a
// rack-scale 40G RoCE link, sweeping the value size from 64 B to 256 KiB
// in both GET modes:
//
//   rpc   one round trip + server CPU per call (dispatch + lookup + a
//         memcpy of the value into the reply staging region)
//   read  two chained one-sided READs (index entry, then value): two
//         round trips, zero server CPU, and the READ-efficiency wire
//         factor on the payload
//
// Small values: rpc wins (one RTT beats two). Large values: read wins
// (the server-side per-byte cost — lookup copy at 0.53 cycles/B — grows
// with the value while the extra RTT stays fixed). Like perftest, the two
// regimes need different harnesses: throughput (Mops/s) is measured
// closed-loop at depth 8, latency percentiles unloaded at depth 1 — under
// pipelining the server copy overlaps the wire and only the unloaded
// round trip exposes it. The crossover reported is the smallest swept
// value size where read matches or beats rpc on unloaded median GET
// latency (~16 KiB on the default cost model: the one-sided path saves
// dispatch + lookup + 0.241 ns/B of copy, and pays one extra 4 us RTT
// plus the READ-efficiency wire factor).
//
// Output: one JSON document on stdout (and to argv[1] when given) in the
// committed BENCH_rpc.json shape. Pure GET workload (put_frac = 0), no
// cross-pair ring, audits off: each row times the measured path only.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "exp/kv_scenario.hpp"

namespace {

using namespace e2e;

const std::uint64_t kValueSizes[] = {64,    256,    1024,   4096,
                                     16384, 65536, 262144};

struct Row {
  const char* mode;
  std::uint64_t value_bytes = 0;
  double mops = 0.0;  // closed-loop, depth 8
  std::uint64_t p50_ns = 0, p99_ns = 0, p999_ns = 0;  // unloaded, depth 1
  std::uint64_t sim_events = 0;  // both runs
  double wall_ms = 0.0;
};

exp::KvResult run_one(bool via_read, std::uint64_t value_bytes, int depth) {
  exp::KvParams p;
  p.pairs = 1;
  p.shards = 1;
  p.keys = 16384;
  p.ops_per_pair = 4096;
  p.value_bytes = value_bytes;
  p.store_shards = 2;
  p.depth = depth;
  p.get_via_read = via_read;
  p.zipf_theta = 0.99;
  p.put_frac = 0.0;      // pure GETs: the crossover is a GET-path property
  p.remote_every = 0;    // single pair, no cross-shard ring
  p.seed = 1;
  p.audit = false;
  p.stats = false;
  auto r = exp::run_kv(p);
  if (!r.complete) {
    std::fprintf(stderr, "bench_rpc: %s @ %llu B depth %d did not complete\n",
                 via_read ? "read" : "rpc",
                 static_cast<unsigned long long>(value_bytes), depth);
    std::exit(1);
  }
  return r;
}

Row run_point(bool via_read, std::uint64_t value_bytes) {
  const auto t0 = std::chrono::steady_clock::now();
  const auto bw = run_one(via_read, value_bytes, 8);
  const auto lat = run_one(via_read, value_bytes, 1);
  Row row;
  row.mode = via_read ? "read" : "rpc";
  row.value_bytes = value_bytes;
  row.mops = bw.aggregate_mops;
  row.p50_ns = lat.get_p50_ns;
  row.p99_ns = lat.get_p99_ns;
  row.p999_ns = lat.get_p999_ns;
  row.sim_events = bw.sim_events + lat.sim_events;
  row.wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  return row;
}

int run_all(const char* out_path) {
  std::vector<Row> rpc_rows, read_rows;
  for (const std::uint64_t v : kValueSizes) {
    rpc_rows.push_back(run_point(false, v));
    read_rows.push_back(run_point(true, v));
  }

  // Crossover: smallest swept value size where the one-sided path matches
  // or beats the rpc path on unloaded median GET latency.
  std::uint64_t crossover = 0;
  for (std::size_t i = 0; i < rpc_rows.size(); ++i) {
    if (read_rows[i].p50_ns <= rpc_rows[i].p50_ns) {
      crossover = rpc_rows[i].value_bytes;
      break;
    }
  }

  std::string json = "{\n  \"schema\": \"e2e-rpc-perf/1\",\n";
  json +=
      "  \"description\": \"Small-message kv tier over SEND/RECV rings: "
      "two-sided rpc vs one-sided READ GETs on one rack-scale 40G RoCE "
      "pair (4096 ops, Zipf 0.99). mops is closed-loop at depth 8; "
      "p50/p99/p999 are unloaded at depth 1, where the server-side "
      "per-byte copy is exposed instead of overlapped — "
      "crossover_value_bytes is the smallest swept value size where the "
      "one-sided path wins the unloaded median. sim-time metrics are "
      "deterministic; wall_ms is this machine's event-loop speed.\",\n";
  char buf[512];
  std::snprintf(buf, sizeof buf,
                "  \"crossover_value_bytes\": %llu,\n  \"rows\": [\n",
                static_cast<unsigned long long>(crossover));
  json += buf;
  bool first = true;
  for (const auto* rows : {&rpc_rows, &read_rows}) {
    for (const Row& r : *rows) {
      std::snprintf(
          buf, sizeof buf,
          "    {\"mode\": \"%s\", \"value_bytes\": %llu, \"mops\": %.6g, "
          "\"get_p50_ns\": %llu, \"get_p99_ns\": %llu, "
          "\"get_p999_ns\": %llu, \"sim_events\": %llu, "
          "\"wall_ms\": %.3g}",
          r.mode, static_cast<unsigned long long>(r.value_bytes), r.mops,
          static_cast<unsigned long long>(r.p50_ns),
          static_cast<unsigned long long>(r.p99_ns),
          static_cast<unsigned long long>(r.p999_ns),
          static_cast<unsigned long long>(r.sim_events), r.wall_ms);
      if (!first) json += ",\n";
      json += buf;
      first = false;
    }
  }
  json += "\n  ]\n}\n";
  std::fputs(json.c_str(), stdout);
  if (out_path != nullptr) {
    std::ofstream os(out_path);
    if (!os) {
      std::fprintf(stderr, "cannot write %s\n", out_path);
      return 1;
    }
    os << json;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return run_all(argc > 1 ? argv[1] : nullptr);
}
