#include "scenarios.hpp"

#include <algorithm>
#include <chrono>
#include <memory>

#include "apps/apps.hpp"
#include "bench_util.hpp"
#include "exp/exp.hpp"
#include "metrics/throughput.hpp"
#include "numa/stream.hpp"
#include "rftp/rftp.hpp"

namespace e2e::bench {

using metrics::CpuCategory;

MotivatingResult run_motivating(bool numa_tuned, sim::SimDuration duration) {
  MotivatingResult out;
  {
    sim::Engine eng;
    numa::Host host(eng, model::front_end_lan_host("fe"));
    out.stream_local_gBps =
        numa::run_stream_triad(eng, host, numa::StreamOptions{}).triad_gBps;
  }
  {
    sim::Engine eng;
    numa::Host host(eng, model::front_end_lan_host("fe"));
    numa::StreamOptions opts;
    opts.numa_local = false;
    out.stream_interleaved_gBps =
        numa::run_stream_triad(eng, host, opts).triad_gBps;
  }
  exp::FrontEndPair pair;
  apps::IperfConfig cfg;
  cfg.bidirectional = true;
  cfg.numa_tuned = numa_tuned;
  cfg.sender_buffer_bytes = 256ull << 20;  // defeat the LLC
  cfg.duration = duration;
  const auto r = run_iperf(pair.eng, *pair.a, *pair.b, pair.iperf_links(),
                           cfg);
  out.iperf_gbps = r.aggregate_gbps;
  out.host_usage = r.usage_a;
  out.window = duration;
  out.copy_share = r.usage_a.total()
                       ? static_cast<double>(r.usage_a.get(CpuCategory::kCopy)) /
                             static_cast<double>(r.usage_a.total())
                       : 0.0;
  return out;
}

CostBreakdown run_fig4_rftp(std::uint64_t bytes) {
  exp::FrontEndPair pair;
  numa::Process sp(*pair.a, "rftp-s", numa::NumaBinding::bound(0));
  numa::Process rp(*pair.b, "rftp-r", numa::NumaBinding::bound(0));
  rftp::RftpConfig cfg;
  cfg.streams = 1;
  cfg.block_bytes = 1 << 20;
  rftp::RftpSession sess({&sp, {pair.a_roce[0].get()}},
                         {&rp, {pair.b_roce[0].get()}},
                         {pair.links[0].get()}, cfg);
  rftp::ZeroSource src(bytes);
  rftp::NullSink dst;
  const sim::SimTime t0 = pair.eng.now();
  const auto res = exp::run_task(pair.eng, sess.run(src, dst, bytes));
  CostBreakdown out;
  out.window = pair.eng.now() - t0;
  out.gbps = res.goodput_gbps;
  out.both_ends = pair.a->total_usage();
  out.both_ends.merge(pair.b->total_usage());
  return out;
}

CostBreakdown run_fig4_tcp(sim::SimDuration duration) {
  exp::FrontEndPair pair;
  apps::IperfConfig cfg;
  cfg.numa_tuned = true;
  cfg.streams_per_link = 4;
  cfg.chunk_bytes = 1 << 20;
  cfg.sender_buffer_bytes = 256ull << 20;
  cfg.duration = duration;
  std::vector<apps::IperfLink> one = {pair.iperf_links()[0]};
  const auto r = run_iperf(pair.eng, *pair.a, *pair.b, one, cfg);
  CostBreakdown out;
  out.window = duration;
  out.gbps = r.aggregate_gbps;
  out.both_ends = r.usage_a;
  out.both_ends.merge(r.usage_b);
  return out;
}

IserPoint run_iser_point(bool numa_tuned, bool write, std::uint64_t block,
                         int threads_per_lun, sim::SimDuration duration) {
  exp::SanConfig scfg;
  scfg.numa_tuned = numa_tuned;
  scfg.lun_bytes = 4ull << 30;
  exp::SanTestbed tb(scfg);
  tb.start();
  apps::FioOptions opts;
  opts.block_bytes = block;
  opts.write = write;
  opts.duration = duration;
  const auto r = tb.run_fio(opts, threads_per_lun);
  IserPoint out;
  out.gbps = r.gbps;
  out.target_cpu_pct = r.target_cpu_pct;
  out.target_usage = r.target_usage;
  out.ios = r.ios;
  return out;
}

namespace {

/// Wall-clock mode: brackets a scenario run and records the simulator's own
/// cost — events dispatched and host-CPU seconds — alongside the modeled
/// results, so the perf-regression harness can watch the event core.
struct SimCostProbe {
  explicit SimCostProbe(sim::Engine& eng)
      : eng_(eng),
        events0_(eng.events_processed()),
        t0_(std::chrono::steady_clock::now()) {}
  void finish(E2eResult& out) const {
    out.sim_events = eng_.events_processed() - events0_;
    out.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0_)
            .count();
  }
  sim::Engine& eng_;
  std::uint64_t events0_;
  std::chrono::steady_clock::time_point t0_;
};

E2eResult finish_e2e(exp::EndToEndTestbed& tb, rftp::TransferResult res,
                     const metrics::ThroughputMeter& meter,
                     sim::SimDuration window) {
  E2eResult out;
  out.transfer = res;
  out.series_gbps = meter.series_gbps();
  out.src_usage = tb.src_fe->total_usage();
  out.dst_usage = tb.dst_fe->total_usage();
  out.window = window;
  return out;
}

}  // namespace

E2eResult run_e2e_rftp(std::uint64_t dataset, bool numa_tuned) {
  exp::EndToEndTestbed tb(numa_tuned, dataset);
  tb.start();
  numa::Process sp(*tb.src_fe, "rftp-client", numa::NumaBinding::os_default());
  numa::Process rp(*tb.dst_fe, "rftp-server", numa::NumaBinding::os_default());
  rftp::RftpConfig cfg;
  cfg.numa_aware = numa_tuned;
  rftp::RftpSession sess({&sp, tb.src_roce()}, {&rp, tb.dst_roce()},
                         tb.links(), cfg);
  exp::SanSection* ssan = tb.src_san.get();
  rftp::FileSource src(*tb.src_fs, *tb.src_file, true,
                       [ssan](std::uint64_t off, std::uint64_t) {
                         return ssan->fe_node_of(off);
                       });
  rftp::FileSink dst(*tb.dst_fs, *tb.dst_file);
  metrics::ThroughputMeter meter(tb.eng, sim::kSecond);
  ScopedTrace ts(tb.eng);  // opt-in via E2E_TRACE / E2E_REPORT
  ScopedStats ss(tb.eng);  // always-on; dump opt-in via E2E_STATS
  const sim::SimTime t0 = tb.eng.now();
  const SimCostProbe probe(tb.eng);
  const auto res =
      exp::run_task(tb.eng, sess.run(src, dst, dataset, &meter));
  if (auto* tr = ts.get()) tr->note("goodput_gbps", res.goodput_gbps);
  auto out = finish_e2e(tb, res, meter, tb.eng.now() - t0);
  probe.finish(out);
  out.drain_hist = ss.merged("drain_ns");
  return out;
}

E2eResult run_e2e_gridftp(std::uint64_t dataset, int processes) {
  exp::EndToEndTestbed tb(true, dataset);
  tb.start();
  apps::GridFtpConfig cfg;
  cfg.processes = processes;
  std::vector<apps::GridFtpLink> links;
  for (std::size_t i = 0; i < 3; ++i)
    links.push_back({tb.roce_links[i].get(), tb.src_devs[i]->node(),
                     tb.dst_devs[i]->node()});
  metrics::ThroughputMeter meter(tb.eng, sim::kSecond);
  const sim::SimTime t0 = tb.eng.now();
  const SimCostProbe probe(tb.eng);
  const auto res = exp::run_task(
      tb.eng,
      apps::gridftp_transfer({tb.src_fe.get(), tb.src_fs.get(), tb.src_file},
                             {tb.dst_fe.get(), tb.dst_fs.get(), tb.dst_file},
                             links, dataset, cfg, &meter));
  auto out = finish_e2e(tb, res, meter, tb.eng.now() - t0);
  probe.finish(out);
  return out;
}

BidirResult run_e2e_rftp_bidir(std::uint64_t dataset) {
  // Unidirectional reference on an identical testbed.
  const auto uni = run_e2e_rftp(dataset);

  exp::EndToEndTestbed tb(true, dataset);
  tb.add_reverse_files();
  tb.start();
  numa::Process sp(*tb.src_fe, "rftp-c", numa::NumaBinding::os_default());
  numa::Process rp(*tb.dst_fe, "rftp-s", numa::NumaBinding::os_default());
  numa::Process sp2(*tb.dst_fe, "rftp-c2", numa::NumaBinding::os_default());
  numa::Process rp2(*tb.src_fe, "rftp-s2", numa::NumaBinding::os_default());
  rftp::RftpConfig cfg;
  rftp::RftpSession fwd({&sp, tb.src_roce()}, {&rp, tb.dst_roce()},
                        tb.links(), cfg);
  rftp::RftpSession rev({&sp2, tb.dst_roce()}, {&rp2, tb.src_roce()},
                        tb.links(), cfg);
  exp::SanSection* ssan = tb.src_san.get();
  exp::SanSection* dsan = tb.dst_san.get();
  rftp::FileSource fsrc(*tb.src_fs, *tb.src_file, true,
                        [ssan](std::uint64_t off, std::uint64_t) {
                          return ssan->fe_node_of(off);
                        });
  rftp::FileSink fdst(*tb.dst_fs, *tb.dst_file);
  rftp::FileSource rsrc(*tb.dst_fs, *tb.rev_src_file, true,
                        [dsan](std::uint64_t off, std::uint64_t) {
                          return dsan->fe_node_of(off);
                        });
  rftp::FileSink rdst(*tb.src_fs, *tb.rev_dst_file);

  const sim::SimTime t0 = tb.eng.now();
  sim::WaitGroup wg(tb.eng);
  wg.add(2);
  auto run_one = [](rftp::RftpSession& s, rftp::DataSource& src,
                    rftp::DataSink& dst, std::uint64_t bytes,
                    sim::WaitGroup* w) -> sim::Task<> {
    (void)co_await s.run(src, dst, bytes);
    w->done();
  };
  sim::co_spawn(run_one(fwd, fsrc, fdst, dataset, &wg));
  sim::co_spawn(run_one(rev, rsrc, rdst, dataset, &wg));
  exp::run_task(tb.eng, [](sim::WaitGroup& w) -> sim::Task<> {
    co_await w.wait();
  }(wg));
  const sim::SimDuration window = tb.eng.now() - t0;

  BidirResult out;
  out.unidirectional_gbps = uni.transfer.goodput_gbps;
  out.aggregate_gbps = static_cast<double>(2 * dataset) * 8.0 /
                       static_cast<double>(window);
  out.improvement = out.aggregate_gbps / out.unidirectional_gbps - 1.0;
  out.src_usage = tb.src_fe->total_usage();
  out.window = window;
  return out;
}

BidirResult run_e2e_gridftp_bidir(std::uint64_t dataset, int processes) {
  const auto uni = run_e2e_gridftp(dataset, processes);

  exp::EndToEndTestbed tb(true, dataset);
  tb.add_reverse_files();
  tb.start();
  apps::GridFtpConfig cfg;
  cfg.processes = processes;
  std::vector<apps::GridFtpLink> fwd_links, rev_links;
  for (std::size_t i = 0; i < 3; ++i) {
    fwd_links.push_back({tb.roce_links[i].get(), tb.src_devs[i]->node(),
                         tb.dst_devs[i]->node()});
    rev_links.push_back({tb.roce_links[i].get(), tb.dst_devs[i]->node(),
                         tb.src_devs[i]->node()});
  }

  const sim::SimTime t0 = tb.eng.now();
  sim::WaitGroup wg(tb.eng);
  wg.add(2);
  auto run_one = [](apps::GridFtpEndpoint s, apps::GridFtpEndpoint d,
                    std::vector<apps::GridFtpLink> links, std::uint64_t bytes,
                    apps::GridFtpConfig c, sim::WaitGroup* w) -> sim::Task<> {
    (void)co_await apps::gridftp_transfer(s, d, links, bytes, c);
    w->done();
  };
  sim::co_spawn(run_one({tb.src_fe.get(), tb.src_fs.get(), tb.src_file},
                        {tb.dst_fe.get(), tb.dst_fs.get(), tb.dst_file},
                        fwd_links, dataset, cfg, &wg));
  sim::co_spawn(run_one({tb.dst_fe.get(), tb.dst_fs.get(), tb.rev_src_file},
                        {tb.src_fe.get(), tb.src_fs.get(), tb.rev_dst_file},
                        rev_links, dataset, cfg, &wg));
  exp::run_task(tb.eng, [](sim::WaitGroup& w) -> sim::Task<> {
    co_await w.wait();
  }(wg));
  const sim::SimDuration window = tb.eng.now() - t0;

  BidirResult out;
  out.unidirectional_gbps = uni.transfer.goodput_gbps;
  out.aggregate_gbps = static_cast<double>(2 * dataset) * 8.0 /
                       static_cast<double>(window);
  out.improvement = out.aggregate_gbps / out.unidirectional_gbps - 1.0;
  out.src_usage = tb.src_fe->total_usage();
  out.window = window;
  return out;
}

WanPoint run_wan_point(int streams, std::uint64_t block,
                       std::uint64_t dataset, int credits) {
  exp::WanTestbed tb;
  rftp::RftpConfig cfg;
  cfg.streams = streams;
  cfg.block_bytes = block;
  cfg.credits_per_stream = credits;
  rftp::RftpSession sess({tb.a_proc.get(), {tb.a_dev.get()}},
                         {tb.b_proc.get(), {tb.b_dev.get()}},
                         {tb.link.get()}, cfg);
  rftp::MemorySource src(dataset, numa::Placement::on(0));
  rftp::MemorySink dst;
  const sim::SimTime t0 = tb.eng.now();
  const auto res = exp::run_task(tb.eng, sess.run(src, dst, dataset));
  const sim::SimDuration window = tb.eng.now() - t0;

  WanPoint out;
  out.gbps = res.goodput_gbps;
  out.utilization = res.goodput_gbps / 40.0;
  out.sender_cpu_pct =
      tb.a->total_usage().percent(CpuCategory::kUserProto, window);
  out.receiver_cpu_pct =
      tb.b->total_usage().percent(CpuCategory::kUserProto, window);
  return out;
}

}  // namespace e2e::bench
