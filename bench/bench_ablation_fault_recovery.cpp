// Ablation: goodput under injected faults, iSER vs iSCSI-over-TCP.
//
// The robustness layer (src/fault) injects seeded loss bursts, flaps,
// latency spikes, blackholes and QP kills while the same 8-job write
// workload runs over both SAN datamovers. TCP hides wire faults inside
// transport retransmission; iSER surfaces them as failed completions and
// leans on the layered recovery stack (command retries -> QP reset ->
// session re-login). This bench quantifies what each layer costs: goodput
// retained per fault intensity, plus the retry/recovery work expended.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <memory>
#include <string>

#include "bench_util.hpp"
#include "exp/runner.hpp"
#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "iscsi/initiator.hpp"
#include "iscsi/target.hpp"
#include "iscsi/tcp_datamover.hpp"
#include "iser/session.hpp"
#include "metrics/table.hpp"
#include "model/host_profile.hpp"

namespace e2e::bench {
namespace {

struct Result {
  double gbps = 0.0;
  std::uint64_t faults = 0;
  std::uint64_t messages_failed = 0;
  std::uint64_t command_retries = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t command_failures = 0;
  stats::Histogram cmd_hist;  // iSCSI command round-trip latency
};

constexpr std::uint64_t kIoBytes = 4ull << 20;
constexpr int kJobs = 8;
constexpr std::uint64_t kLunBytes = 4ull << 30;
constexpr std::uint64_t kSeed = 7;

struct Intensity {
  const char* name = "";
  bool any = true;
  fault::FaultPlan::RandomParams params;
};

/// Fault mixes over the 2 s measurement window, from none to a storm.
std::vector<Intensity> intensities() {
  std::vector<Intensity> out;
  {
    Intensity lvl;
    lvl.name = "clean";
    lvl.any = false;
    out.push_back(lvl);
  }
  {
    Intensity lvl;
    lvl.name = "light";
    lvl.params.loss_bursts = 4;
    lvl.params.flaps = 0;
    lvl.params.spikes = 1;
    lvl.params.holes = 0;
    lvl.params.qp_kills = 0;
    out.push_back(lvl);
  }
  {
    Intensity lvl;
    lvl.name = "heavy";
    lvl.params.loss_bursts = 16;
    lvl.params.flaps = 2;
    lvl.params.spikes = 2;
    lvl.params.holes = 2;
    lvl.params.qp_kills = 0;
    out.push_back(lvl);
  }
  {
    Intensity lvl;
    lvl.name = "storm";
    lvl.params.loss_bursts = 48;
    lvl.params.max_burst = 8;
    lvl.params.flaps = 4;
    lvl.params.spikes = 4;
    lvl.params.holes = 4;
    lvl.params.qps = 1;  // one QP kill mid-run (iSER recovers the session)
    lvl.params.qp_kills = 1;
    out.push_back(lvl);
  }
  return out;
}

sim::Task<> io_job(iscsi::Initiator& init, numa::Thread& th,
                   mem::Buffer* buf, std::uint64_t region_off,
                   sim::SimTime deadline, std::uint64_t* bytes) {
  auto& eng = th.host().engine();
  std::uint64_t off = region_off;
  const auto blocks = static_cast<std::uint32_t>(kIoBytes / 512);
  while (eng.now() < deadline) {
    const auto s =
        co_await init.submit_write(th, 0, off / 512, blocks, *buf);
    if (s != scsi::Status::kGood) co_return;  // terminal: job gives up
    if (eng.now() <= deadline) *bytes += kIoBytes;
    off += kIoBytes;
    if (off + kIoBytes > region_off + kLunBytes / kJobs) off = region_off;
  }
}

Result run_case(bool use_tcp, const Intensity& lvl) {
  sim::Engine eng;
  ScopedStats ss(eng);  // command-latency percentiles ride on the registry
  numa::Host fe(eng, model::front_end_lan_host("fe"));
  numa::Host be(eng, model::back_end_lan_host("be"));
  auto link = net::make_ib_lan(eng, "ib");
  link->bind_endpoints(&fe, &be);
  numa::Process iproc(fe, "initiator", numa::NumaBinding::bound(0));
  numa::Process tproc(be, "tgtd", numa::NumaBinding::bound(0));

  mem::Tmpfs store(be);
  auto& file = store.create("lun0", kLunBytes, numa::MemPolicy::kBind, 0);
  scsi::Lun lun(0, store, file);
  mem::BufferPool staging(be, "staging", 32, 8ull << 20,
                          numa::MemPolicy::kBind, 0);
  staging.mark_registered();

  std::unique_ptr<rdma::Device> fe_dev, be_dev;
  std::unique_ptr<iser::IserSession> rdma_sess;
  std::unique_ptr<iscsi::TcpSession> tcp_sess;
  iscsi::Datamover* init_dm = nullptr;
  iscsi::Datamover* tgt_dm = nullptr;

  numa::Thread& irx = iproc.spawn_thread();
  numa::Thread& itx = iproc.spawn_thread();
  numa::Thread& trx = tproc.spawn_thread();
  numa::Thread& ttx = tproc.spawn_thread();
  if (use_tcp) {
    tcp_sess = std::make_unique<iscsi::TcpSession>(fe, 0, be, 0, *link,
                                                   iproc, tproc);
    exp::run_task(eng, tcp_sess->start(irx, itx, trx, ttx));
    init_dm = &tcp_sess->initiator_ep();
    tgt_dm = &tcp_sess->target_ep();
  } else {
    fe_dev = std::make_unique<rdma::Device>(
        fe, model::NicProfile{"ib0", model::LinkType::kInfiniBand, 56.0,
                              65520, 0, 63.0});
    be_dev = std::make_unique<rdma::Device>(be, be.profile().nics[0]);
    rdma_sess = std::make_unique<iser::IserSession>(*fe_dev, *be_dev, *link,
                                                    iproc, tproc);
    exp::run_task(eng, rdma_sess->start(irx, trx));
    init_dm = &rdma_sess->initiator_ep();
    tgt_dm = &rdma_sess->target_ep();
  }

  iscsi::Target target(tproc, *tgt_dm, {&lun}, staging);
  target.start(8);
  // TCP's transport retransmits absorb wire faults, so its initiator runs
  // without a command timer; iSER sees failed completions and needs the
  // command-retry layer armed. The timer sits above the ~7 ms queueing
  // latency of 8 concurrent 4 MiB commands so clean runs never retry.
  iscsi::RetryPolicy policy;
  iscsi::Initiator initiator(iproc, *init_dm,
                             use_tcp ? 0 : 25 * sim::kMillisecond, policy);
  iscsi::LoginParams params;
  if (!exp::run_task(eng, initiator.login(irx, params)))
    throw std::runtime_error("login failed");
  initiator.start_dispatcher(irx);
  if (!use_tcp) {
    iser::SessionRecoveryPolicy rp;
    rp.mr_bytes_initiator = kIoBytes;
    rp.mr_bytes_target = 8ull << 20;
    rdma_sess->enable_recovery(irx, trx, rp);
  }

  const sim::SimDuration window = 2 * sim::kSecond;
  fault::FaultInjector inj(
      eng, lvl.any ? fault::FaultPlan::random(kSeed, [&] {
                       auto p = lvl.params;
                       p.horizon = window;
                       return p;
                     }())
                   : fault::FaultPlan{});
  inj.attach(*link);
  if (!use_tcp)
    inj.set_qp_kill_handler([&rdma_sess](int) { rdma_sess->kill(); });
  inj.arm();

  const sim::SimTime deadline = eng.now() + window;
  const sim::SimTime t0 = eng.now();
  auto bytes = std::make_unique<std::uint64_t>(0);
  std::vector<std::unique_ptr<mem::Buffer>> bufs;
  for (int j = 0; j < kJobs; ++j) {
    bufs.push_back(std::make_unique<mem::Buffer>());
    bufs.back()->bytes = kIoBytes;
    bufs.back()->placement = iproc.alloc(kIoBytes);
    bufs.back()->registered = true;
    sim::co_spawn(io_job(initiator, iproc.spawn_thread(), bufs.back().get(),
                         j * (kLunBytes / kJobs), deadline, bytes.get()));
  }
  eng.run_until(deadline);
  const sim::SimDuration w = eng.now() - t0;

  Result r;
  r.gbps = static_cast<double>(*bytes) * 8.0 / static_cast<double>(w);
  r.faults = inj.faults_injected();
  r.messages_failed = inj.messages_failed();
  r.command_retries = initiator.command_retries();
  r.command_failures = initiator.command_failures();
  if (rdma_sess) r.recoveries = rdma_sess->recoveries();
  r.cmd_hist = ss.merged("cmd_ns");
  eng.run();
  return r;
}

std::map<std::pair<int, bool>, Result> g_results;

void BM_FaultRecovery(benchmark::State& state) {
  const auto levels = intensities();
  const int lvl = static_cast<int>(state.range(0));
  const bool tcp = state.range(1) != 0;
  Result r;
  for (auto _ : state) {
    r = run_case(tcp, levels[static_cast<std::size_t>(lvl)]);
    benchmark::DoNotOptimize(r.gbps);
  }
  g_results[{lvl, tcp}] = r;
  state.counters["Gbps"] = r.gbps;
  state.counters["retries"] = static_cast<double>(r.command_retries);
  state.counters["recoveries"] = static_cast<double>(r.recoveries);
  state.SetLabel(std::string(tcp ? "iscsi-tcp" : "iser") + "/" +
                 levels[static_cast<std::size_t>(lvl)].name);
}
BENCHMARK(BM_FaultRecovery)
    ->ArgsProduct({{0, 1, 2, 3}, {0, 1}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace e2e::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  using namespace e2e::bench;
  const auto levels = intensities();
  e2e::metrics::Table t(
      "Ablation: goodput under injected faults (seed 7, 2 s window, "
      "8 jobs x 4 MiB writes)");
  t.header({"faults", "transport", "Gbps", "injected", "msgs failed",
            "cmd retries", "recoveries", "terminal"});
  for (std::size_t lvl = 0; lvl < levels.size(); ++lvl)
    for (const bool tcp : {false, true}) {
      const auto& r = g_results[{static_cast<int>(lvl), tcp}];
      t.row({levels[lvl].name, tcp ? "iSCSI/TCP" : "iSER (RDMA)",
             e2e::metrics::Table::num(r.gbps),
             std::to_string(r.faults), std::to_string(r.messages_failed),
             std::to_string(r.command_retries),
             std::to_string(r.recoveries),
             std::to_string(r.command_failures)});
    }
  std::fputs(t.to_string().c_str(), stdout);

  // Command round-trip latency percentiles per case: fault recovery shows
  // up in the tail long before it dents the goodput column above.
  std::vector<std::pair<std::string, const e2e::stats::Histogram*>> hists;
  for (std::size_t lvl = 0; lvl < levels.size(); ++lvl)
    for (const bool tcp : {false, true})
      hists.push_back({std::string(tcp ? "iSCSI/TCP " : "iSER ") +
                           levels[lvl].name,
                       &g_results[{static_cast<int>(lvl), tcp}].cmd_hist});
  print_hist_percentiles("iSCSI command latency (us)", hists);
  std::printf(
      "\nTCP buries wire faults in transport retransmission (goodput dips,\n"
      "no visible recovery work); iSER surfaces them and pays with command\n"
      "retries and, for QP kills, a session re-login -- but keeps RDMA\n"
      "zero-copy goodput everywhere the wire is clean.\n");
  return 0;
}
