// Fig. 11: bi-directional end-to-end throughput.
//
// Paper numbers: RFTP improves 83% over its unidirectional rate (just shy
// of the ideal 2x due to back-end and memory contention); GridFTP gains
// only ~33% because it is already CPU-saturated.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "scenarios.hpp"

namespace e2e::bench {
namespace {

BidirResult g_rftp, g_grid;

void BM_BidirRftp(benchmark::State& state) {
  for (auto _ : state) {
    g_rftp = run_e2e_rftp_bidir(24ull << 30);
    benchmark::DoNotOptimize(g_rftp.aggregate_gbps);
  }
  state.counters["aggregate_Gbps"] = g_rftp.aggregate_gbps;
  state.counters["improvement_pct"] = 100.0 * g_rftp.improvement;
}
BENCHMARK(BM_BidirRftp)->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_BidirGridFtp(benchmark::State& state) {
  for (auto _ : state) {
    g_grid = run_e2e_gridftp_bidir(6ull << 30);
    benchmark::DoNotOptimize(g_grid.aggregate_gbps);
  }
  state.counters["aggregate_Gbps"] = g_grid.aggregate_gbps;
  state.counters["improvement_pct"] = 100.0 * g_grid.improvement;
}
BENCHMARK(BM_BidirGridFtp)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace e2e::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  using namespace e2e::bench;
  print_comparison(
      "Fig. 11 bi-directional end-to-end throughput",
      {
          {"RFTP unidirectional", 91.0, g_rftp.unidirectional_gbps, "Gbps"},
          {"RFTP bidirectional aggregate", 166.0, g_rftp.aggregate_gbps,
           "Gbps"},
          {"RFTP improvement", 83.0, 100.0 * g_rftp.improvement, "%"},
          {"GridFTP unidirectional", 29.0, g_grid.unidirectional_gbps,
           "Gbps"},
          {"GridFTP bidirectional aggregate", 38.6, g_grid.aggregate_gbps,
           "Gbps"},
          {"GridFTP improvement", 33.0, 100.0 * g_grid.improvement, "%"},
      });
  return 0;
}
