// Ablation: iSER vs traditional iSCSI-over-TCP on the back-end SAN.
//
// The paper adopts iSER for its storage network (§2.2, §3.1) on the
// grounds that TCP's copies and kernel processing would consume the hosts
// long before the wire saturates. This bench runs the same SCSI workload
// over both datamovers on one 56G IB link and reports bandwidth and CPU
// on both hosts.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <memory>

#include "bench_util.hpp"
#include "exp/runner.hpp"
#include "iscsi/initiator.hpp"
#include "iscsi/target.hpp"
#include "iscsi/tcp_datamover.hpp"
#include "iser/session.hpp"
#include "metrics/table.hpp"
#include "model/host_profile.hpp"

namespace e2e::bench {
namespace {

struct Result {
  double gbps = 0.0;
  double initiator_cpu = 0.0;
  double target_cpu = 0.0;
  double copy_cpu = 0.0;  // both hosts
};

constexpr std::uint64_t kIoBytes = 4ull << 20;
constexpr int kJobs = 8;
constexpr std::uint64_t kLunBytes = 4ull << 30;

sim::Task<> io_job(iscsi::Initiator& init, numa::Thread& th,
                   mem::Buffer* buf, bool write, std::uint64_t region_off,
                   sim::SimTime deadline, std::uint64_t* bytes) {
  auto& eng = th.host().engine();
  std::uint64_t off = region_off;
  const auto blocks = static_cast<std::uint32_t>(kIoBytes / 512);
  while (eng.now() < deadline) {
    const auto s =
        write ? co_await init.submit_write(th, 0, off / 512, blocks, *buf)
              : co_await init.submit_read(th, 0, off / 512, blocks, *buf);
    if (s != scsi::Status::kGood) co_return;
    if (eng.now() <= deadline) *bytes += kIoBytes;
    off += kIoBytes;
    if (off + kIoBytes > region_off + kLunBytes / kJobs) off = region_off;
  }
}

Result run_transport(bool use_tcp, bool write) {
  sim::Engine eng;
  numa::Host fe(eng, model::front_end_lan_host("fe"));
  numa::Host be(eng, model::back_end_lan_host("be"));
  auto link = net::make_ib_lan(eng, "ib");
  link->bind_endpoints(&fe, &be);
  numa::Process iproc(fe, "initiator", numa::NumaBinding::bound(0));
  numa::Process tproc(be, "tgtd", numa::NumaBinding::bound(0));

  mem::Tmpfs store(be);
  auto& file = store.create("lun0", kLunBytes, numa::MemPolicy::kBind, 0);
  scsi::Lun lun(0, store, file);
  mem::BufferPool staging(be, "staging", 32, 8ull << 20,
                          numa::MemPolicy::kBind, 0);
  staging.mark_registered();

  std::unique_ptr<rdma::Device> fe_dev, be_dev;
  std::unique_ptr<iser::IserSession> rdma_sess;
  std::unique_ptr<iscsi::TcpSession> tcp_sess;
  iscsi::Datamover* init_dm = nullptr;
  iscsi::Datamover* tgt_dm = nullptr;

  numa::Thread& irx = iproc.spawn_thread();
  numa::Thread& itx = iproc.spawn_thread();
  numa::Thread& trx = tproc.spawn_thread();
  numa::Thread& ttx = tproc.spawn_thread();
  if (use_tcp) {
    tcp_sess = std::make_unique<iscsi::TcpSession>(fe, 0, be, 0, *link,
                                                   iproc, tproc);
    exp::run_task(eng, tcp_sess->start(irx, itx, trx, ttx));
    init_dm = &tcp_sess->initiator_ep();
    tgt_dm = &tcp_sess->target_ep();
  } else {
    fe_dev = std::make_unique<rdma::Device>(
        fe, model::NicProfile{"ib0", model::LinkType::kInfiniBand, 56.0,
                              65520, 0, 63.0});
    be_dev = std::make_unique<rdma::Device>(be, be.profile().nics[0]);
    rdma_sess = std::make_unique<iser::IserSession>(*fe_dev, *be_dev, *link,
                                                    iproc, tproc);
    exp::run_task(eng, rdma_sess->start(irx, trx));
    init_dm = &rdma_sess->initiator_ep();
    tgt_dm = &rdma_sess->target_ep();
  }

  iscsi::Target target(tproc, *tgt_dm, {&lun}, staging);
  target.start(8);
  iscsi::Initiator initiator(iproc, *init_dm);
  iscsi::LoginParams params;
  if (!exp::run_task(eng, initiator.login(irx, params)))
    throw std::runtime_error("login failed");
  initiator.start_dispatcher(irx);

  const sim::SimDuration window = 2 * sim::kSecond;
  const sim::SimTime deadline = eng.now() + window;
  const sim::SimTime t0 = eng.now();
  auto bytes = std::make_unique<std::uint64_t>(0);
  std::vector<std::unique_ptr<mem::Buffer>> bufs;
  for (int j = 0; j < kJobs; ++j) {
    bufs.push_back(std::make_unique<mem::Buffer>());
    bufs.back()->bytes = kIoBytes;
    bufs.back()->placement = iproc.alloc(kIoBytes);
    bufs.back()->registered = true;
    sim::co_spawn(io_job(initiator, iproc.spawn_thread(), bufs.back().get(),
                         write, j * (kLunBytes / kJobs), deadline,
                         bytes.get()));
  }
  eng.run_until(deadline);
  const sim::SimDuration w = eng.now() - t0;

  Result r;
  r.gbps = static_cast<double>(*bytes) * 8.0 / static_cast<double>(w);
  r.initiator_cpu = fe.total_usage().total_percent(w);
  r.target_cpu = be.total_usage().total_percent(w);
  r.copy_cpu = fe.total_usage().percent(metrics::CpuCategory::kCopy, w) +
               be.total_usage().percent(metrics::CpuCategory::kCopy, w);
  eng.run();
  return r;
}

std::map<std::pair<bool, bool>, Result> g_results;

void BM_SanTransport(benchmark::State& state) {
  const bool tcp = state.range(0) != 0;
  const bool write = state.range(1) != 0;
  Result r;
  for (auto _ : state) {
    r = run_transport(tcp, write);
    benchmark::DoNotOptimize(r.gbps);
  }
  g_results[{tcp, write}] = r;
  state.counters["Gbps"] = r.gbps;
  state.counters["copy_cpu_pct"] = r.copy_cpu;
  state.SetLabel(std::string(tcp ? "iscsi-tcp" : "iser") +
                 (write ? "/write" : "/read"));
}
BENCHMARK(BM_SanTransport)
    ->ArgsProduct({{0, 1}, {0, 1}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace e2e::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  using namespace e2e::bench;
  e2e::metrics::Table t(
      "Ablation: SAN transport, one 56G IB link, 8 jobs x 4 MiB");
  t.header({"transport", "op", "Gbps", "initiator CPU", "target CPU",
            "copy CPU (both)"});
  for (const bool tcp : {false, true})
    for (const bool write : {false, true}) {
      const auto& r = g_results[{tcp, write}];
      t.row({tcp ? "iSCSI/TCP" : "iSER (RDMA)", write ? "write" : "read",
             e2e::metrics::Table::num(r.gbps),
             e2e::metrics::Table::num(r.initiator_cpu, 0) + "%",
             e2e::metrics::Table::num(r.target_cpu, 0) + "%",
             e2e::metrics::Table::num(r.copy_cpu, 0) + "%"});
    }
  std::fputs(t.to_string().c_str(), stdout);
  std::printf(
      "\nwhy the paper picked iSER: TCP pays payload copies + per-packet\n"
      "kernel work on both hosts; RDMA offloads both to the adapters.\n");
  return 0;
}
