// Protocol-layer microbenchmarks: the steady-state data-movement hot path.
//
// Measures the protocol machinery the allocation overhaul targets, end to
// end and in isolation:
//   * iSER command round trips (initiator rendezvous + target replay cache
//     + RDMA send/completion bookkeeping + pooled message payloads),
//   * numa::Thread cost bookings (cached cost plans vs per-call resolve),
//   * sim::Channel throughput (ring-buffered item queue vs deque churn),
//   * RDMA QP post/complete cycles.
//
// Every benchmark here uses only APIs that are stable across the overhaul,
// so the same file builds against the pre-overhaul tree for honest
// interleaved before/after runs (primitive benches for the new containers
// are gated on __has_include and simply absent in the "before" build).
// items_per_second is the figure of merit throughout.
//
// Like bench_simcore, this bench must NOT inherit the -O0 driver pin (see
// the GCC 12.2 note in CMakeLists.txt): it is self-contained, links only
// the optimized core libraries, and returns no scenario structs across TU
// boundaries.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "exp/runner.hpp"
#include "iscsi/initiator.hpp"
#include "iscsi/target.hpp"
#include "iser/session.hpp"
#include "mem/buffer_pool.hpp"
#include "mem/tmpfs.hpp"
#include "model/host_profile.hpp"
#include "net/link.hpp"
#include "numa/numa.hpp"
#include "rdma/rdma.hpp"
#include "scsi/scsi.hpp"
#include "sim/sim.hpp"

#if __has_include("mem/msg_pool.hpp")
#include <map>

#include "mem/flat_table.hpp"
#include "mem/msg_pool.hpp"
#define E2E_BENCH_HAVE_OVERHAUL 1
#endif

namespace {

using namespace e2e;  // NOLINT: bench-local brevity

model::HostProfile tiny_host(const std::string& name) {
  model::HostProfile h;
  h.name = name;
  h.numa_nodes = 2;
  h.cores_per_node = 2;
  h.core_ghz = 2.0;
  h.mem_gbytes = 16;
  h.mem_gBps_per_node = 10.0;
  h.interconnect_gBps = 5.0;
  h.nics = {{"nic0", model::LinkType::kRoCE, 40.0, 9000, 0, 63.0},
            {"nic1", model::LinkType::kRoCE, 40.0, 9000, 1, 63.0}};
  return h;
}

/// Two tiny hosts joined by one 40G link, one RDMA device each (the test
/// suite's TinyRig, inlined so the bench stays self-contained).
struct Rig {
  sim::Engine eng;
  std::unique_ptr<numa::Host> a;
  std::unique_ptr<numa::Host> b;
  std::unique_ptr<rdma::Device> dev_a;
  std::unique_ptr<rdma::Device> dev_b;
  std::unique_ptr<net::Link> link;
  std::unique_ptr<numa::Process> proc_a;
  std::unique_ptr<numa::Process> proc_b;

  Rig() {
    a = std::make_unique<numa::Host>(eng, tiny_host("a"));
    b = std::make_unique<numa::Host>(eng, tiny_host("b"));
    dev_a = std::make_unique<rdma::Device>(*a, a->profile().nics[0]);
    dev_b = std::make_unique<rdma::Device>(*b, b->profile().nics[0]);
    link = net::make_roce_lan(eng, "t");
    proc_a =
        std::make_unique<numa::Process>(*a, "pa", numa::NumaBinding::bound(0));
    proc_b =
        std::make_unique<numa::Process>(*b, "pb", numa::NumaBinding::bound(0));
  }
};

mem::Buffer make_buffer(numa::Host& host, std::uint64_t bytes,
                        numa::NodeId node) {
  mem::Buffer buf;
  buf.bytes = bytes;
  buf.placement = host.alloc(bytes, numa::MemPolicy::kBind, node, node);
  buf.registered = true;
  return buf;
}

// ---------------------------------------------------------------------------
// End-to-end iSER command stream: login once, then drive WRITE(16)s through
// initiator -> iSER datamover -> target -> LUN and back. Exercises the whole
// per-command path: PDU construction, rendezvous registration, RDMA work
// requests, completion demux, and the target's replay cache.

struct IserBench {
  Rig rig;
  mem::Tmpfs fs{*rig.b};
  scsi::Lun lun;
  iser::IserSession session;
  mem::BufferPool staging;
  iscsi::Target target;
  iscsi::Initiator initiator;
  numa::Thread& ith;
  numa::Thread& tth;
  mem::Buffer buf;

  IserBench()
      : lun(0, fs, fs.create("lun0", 512 << 20, numa::MemPolicy::kBind, 0)),
        session(*rig.dev_a, *rig.dev_b, *rig.link, *rig.proc_a, *rig.proc_b),
        staging(*rig.b, "staging", 4, 1 << 20, numa::MemPolicy::kBind, 0),
        target((staging.mark_registered(), *rig.proc_b), session.target_ep(),
               std::vector<scsi::Lun*>{&lun}, staging),
        initiator(*rig.proc_a, session.initiator_ep()),
        ith(rig.proc_a->spawn_thread()),
        tth(rig.proc_b->spawn_thread()),
        buf(make_buffer(*rig.a, 256 << 10, 0)) {
    exp::run_task(rig.eng, session.start(ith, tth));
    target.start(2);
    iscsi::LoginParams params;
    if (!exp::run_task(rig.eng, initiator.login(ith, params))) abort();
    initiator.start_dispatcher(ith);
  }

  sim::Task<> drive(int cmds, bool reads, std::uint64_t* bad) {
    const std::uint32_t blocks = (256u << 10) / 512;
    for (int i = 0; i < cmds; ++i) {
      const std::uint64_t lba =
          (static_cast<std::uint64_t>(i) % 512) * blocks;
      const auto st =
          reads ? co_await initiator.submit_read(ith, 0, lba, blocks, buf)
                : co_await initiator.submit_write(ith, 0, lba, blocks, buf);
      if (st != scsi::Status::kGood) ++*bad;
    }
  }
};

void iser_commands(benchmark::State& state, bool reads) {
  IserBench b;
  std::uint64_t bad = 0;
  std::int64_t cmds = 0;
  constexpr int kBatch = 256;
  for (auto _ : state) {
    exp::run_task(b.rig.eng, b.drive(kBatch, reads, &bad));
    cmds += kBatch;
  }
  if (bad != 0) state.SkipWithError("SCSI command failed");
  state.SetItemsProcessed(cmds);
}

void BM_IserWriteCommands(benchmark::State& state) {
  iser_commands(state, /*reads=*/false);
}
BENCHMARK(BM_IserWriteCommands);

void BM_IserReadCommands(benchmark::State& state) {
  iser_commands(state, /*reads=*/true);
}
BENCHMARK(BM_IserReadCommands);

// ---------------------------------------------------------------------------
// numa::Thread cost bookings: one copy() awaitable per op, alternating
// local/remote destination placements. Before the overhaul each booking
// re-resolved channels, penalties and interconnect handles from the
// placement; with cached cost plans the steady-state booking is table
// lookups and a handful of multiplies.

void BM_ThreadBookCopy(benchmark::State& state) {
  sim::Engine eng;
  numa::Host host(eng, tiny_host("h"));
  numa::Process proc(host, "p", numa::NumaBinding::bound(0));
  numa::Thread& th = proc.spawn_thread();
  const numa::Placement local = numa::Placement::on(0);
  const numa::Placement remote = numa::Placement::on(1);
  constexpr int kOps = 1024;
  auto loop = [](numa::Thread& t, const numa::Placement& src,
                 const numa::Placement& dst, int n) -> sim::Task<> {
    for (int i = 0; i < n; ++i)
      co_await t.copy(4096, src, dst, metrics::CpuCategory::kCopy,
                      numa::Coherence::kPrivate);
  };
  std::int64_t ops = 0;
  for (auto _ : state) {
    exp::run_task(eng, loop(th, local, (ops % 2 == 0) ? local : remote, kOps));
    ops += kOps;
  }
  state.SetItemsProcessed(ops);
}
BENCHMARK(BM_ThreadBookCopy);

// ---------------------------------------------------------------------------
// sim::Channel queue throughput: fill/drain cycles sized to straddle a
// deque node boundary, the shape that made the old backing store churn
// allocator nodes at steady state.

void BM_ChannelQueueCycle(benchmark::State& state) {
  sim::Engine eng;
  sim::Channel<std::uint64_t> ch(eng);
  constexpr int kDepth = 96;  // > one 512-byte deque node of uint64s
  std::int64_t items = 0;
  for (auto _ : state) {
    for (int i = 0; i < kDepth; ++i) ch.send(static_cast<std::uint64_t>(i));
    std::uint64_t sink = 0;
    for (int i = 0; i < kDepth; ++i) sink += *ch.try_recv();
    benchmark::DoNotOptimize(sink);
    items += kDepth;
  }
  state.SetItemsProcessed(items);
}
BENCHMARK(BM_ChannelQueueCycle);

// ---------------------------------------------------------------------------
// RDMA QP round trips: post_send of a 4 KiB WRITE and reap the completion.
// Exercises WR queueing, NIC loops, delivery, and CQ signalling without any
// SCSI layering above.

void BM_QpWriteCompletion(benchmark::State& state) {
  Rig rig;
  rdma::CompletionQueue scq_a(rig.eng), rcq_a(rig.eng);
  rdma::CompletionQueue scq_b(rig.eng), rcq_b(rig.eng);
  rdma::QueuePair qa(*rig.dev_a, scq_a, rcq_a);
  rdma::QueuePair qb(*rig.dev_b, scq_b, rcq_b);
  rdma::QueuePair::connect(qa, qb, *rig.link);
  numa::Thread& th = rig.proc_a->spawn_thread();
  mem::Buffer src = make_buffer(*rig.a, 4096, 0);
  mem::Buffer dst = make_buffer(*rig.b, 4096, 0);

  auto one = [](rdma::QueuePair& qp, rdma::CompletionQueue& scq,
                numa::Thread& t, mem::Buffer& s, mem::Buffer& d,
                std::uint64_t id, int n) -> sim::Task<> {
    for (int i = 0; i < n; ++i) {
      rdma::SendWr wr;
      wr.op = rdma::Opcode::kWrite;
      wr.wr_id = id + static_cast<std::uint64_t>(i);
      wr.local = &s;
      wr.bytes = 4096;
      wr.remote.buffer = &d;
      co_await qp.post_send(t, wr);
      co_await scq.wait(t);
    }
  };
  constexpr int kOps = 256;
  std::int64_t ops = 0;
  for (auto _ : state) {
    exp::run_task(rig.eng,
                  one(qa, scq_a, th, src, dst,
                      static_cast<std::uint64_t>(ops), kOps));
    ops += kOps;
  }
  state.SetItemsProcessed(ops);
}
BENCHMARK(BM_QpWriteCompletion);

#ifdef E2E_BENCH_HAVE_OVERHAUL
// ---------------------------------------------------------------------------
// Primitive A/B benches, only meaningful in the overhauled tree: pooled
// message payloads vs make_shared, and the flat pending table vs the
// std::map it replaced. The shared_ptr/map baselines run here too so the
// ratio is visible within one binary.

struct FakePdu {
  std::uint64_t itt = 0;
  std::uint64_t lba = 0;
  std::uint32_t blocks = 0;
  char cdb[40] = {};
};

void BM_MsgPoolMakeRelease(benchmark::State& state) {
  std::int64_t ops = 0;
  for (auto _ : state) {
    auto p = mem::make_msg<FakePdu>();
    benchmark::DoNotOptimize(p);
    ++ops;
  }
  state.SetItemsProcessed(ops);
}
BENCHMARK(BM_MsgPoolMakeRelease);

void BM_MakeSharedBaseline(benchmark::State& state) {
  std::int64_t ops = 0;
  for (auto _ : state) {
    auto p = std::make_shared<FakePdu>();
    benchmark::DoNotOptimize(p);
    ++ops;
  }
  state.SetItemsProcessed(ops);
}
BENCHMARK(BM_MakeSharedBaseline);

template <typename Map>
void map_churn(benchmark::State& state, Map& m) {
  // 32 live tags, sequential insert/erase — the pending-table lifecycle.
  std::uint64_t next = 1;
  for (int i = 0; i < 32; ++i) m.insert_kv(next++);
  std::int64_t ops = 0;
  for (auto _ : state) {
    m.insert_kv(next);
    m.erase_k(next - 32);
    ++next;
    ++ops;
  }
  state.SetItemsProcessed(ops);
}

struct FlatAdapter {
  mem::FlatMap<std::uint64_t> m;
  void insert_kv(std::uint64_t k) { m.insert(k, k); }
  void erase_k(std::uint64_t k) { m.erase(k); }
};
struct StdAdapter {
  std::map<std::uint64_t, std::uint64_t> m;
  void insert_kv(std::uint64_t k) { m.emplace(k, k); }
  void erase_k(std::uint64_t k) { m.erase(k); }
};

void BM_FlatMapTagChurn(benchmark::State& state) {
  FlatAdapter a;
  map_churn(state, a);
}
BENCHMARK(BM_FlatMapTagChurn);

void BM_StdMapTagChurn(benchmark::State& state) {
  StdAdapter a;
  map_churn(state, a);
}
BENCHMARK(BM_StdMapTagChurn);
#endif  // E2E_BENCH_HAVE_OVERHAUL

}  // namespace

BENCHMARK_MAIN();
