// Sim-core microbenchmarks: the event-dispatch hot path in isolation.
//
// Every scenario bench in this directory is bottlenecked by how fast
// sim::Engine can schedule and dispatch events and how cheaply coroutines
// suspend/resume through it. These benchmarks measure exactly that, with
// trivial handlers, so regressions in the event core show up here first —
// undiluted by protocol math.
//
// items_per_second == simulated events dispatched per wall-second (for the
// coroutine benches: operations, each costing a couple of events).
//
// CI runs this with --benchmark_out=BENCH_simcore.json; the committed
// BENCH_simcore.json at the repo root tracks before/after numbers across
// perf-relevant PRs.
#include <benchmark/benchmark.h>

#include <array>
#include <cstdint>

#include "sim/channel.hpp"
#include "sim/cluster.hpp"
#include "sim/engine.hpp"
#include "sim/resource.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace {

using e2e::sim::Channel;
using e2e::sim::Cluster;
using e2e::sim::Delay;
using e2e::sim::Engine;
using e2e::sim::Resource;
using e2e::sim::Task;

// Self-rearming timer callback with a configurable capture footprint.
// PayloadWords == 1 stays within std::function's inline buffer on libstdc++;
// PayloadWords == 5 (56 bytes) matches the library's fattest real capture
// (rdma delivery events) and forces the allocation path on any event-functor
// implementation with less than 56 bytes of inline storage.
template <std::size_t PayloadWords>
struct Rearm {
  Engine* eng;
  std::uint64_t delay;
  std::uint64_t payload[PayloadWords];
  void operator()() {
    payload[0]++;
    eng->schedule_after(delay, *this);
  }
};

template <std::size_t PayloadWords>
void timer_churn(benchmark::State& state) {
  const std::int64_t depth = state.range(0);
  Engine eng;
  // Co-prime delays spread the timers across the heap so sifts do real work.
  for (std::int64_t i = 0; i < depth; ++i) {
    const std::uint64_t d = 1 + static_cast<std::uint64_t>(i) % 61;
    eng.schedule_after(d, Rearm<PayloadWords>{&eng, d, {}});
  }
  std::uint64_t events = 0;
  for (auto _ : state) events += eng.run_for(64);
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}

// Schedule/dispatch throughput at a given steady-state heap depth.
void BM_ScheduleDispatch(benchmark::State& state) { timer_churn<1>(state); }
BENCHMARK(BM_ScheduleDispatch)->Arg(64)->Arg(1024)->Arg(16384);

// Same, with a 56-byte capture (the in-tree worst case).
void BM_ScheduleDispatchFatCapture(benchmark::State& state) {
  timer_churn<5>(state);
}
BENCHMARK(BM_ScheduleDispatchFatCapture)->Arg(1024);

// One resource-acquire round trip: plan + schedule + coroutine resume.
Task<> acquire_loop(Resource& r, int n) {
  for (int i = 0; i < n; ++i) co_await r.acquire(64.0);
}

void BM_ResourceAcquire(benchmark::State& state) {
  constexpr int kOpsPerRun = 1024;
  Engine eng;
  Resource link(eng, 40e9, "bench-link");
  std::uint64_t ops = 0;
  for (auto _ : state) {
    e2e::sim::co_spawn(acquire_loop(link, kOpsPerRun));
    eng.run();
    ops += kOpsPerRun;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(ops));
}
BENCHMARK(BM_ResourceAcquire);

// Channel ping-pong: send + suspended recv + engine-mediated wake, twice
// per round trip. The waiter parks in the coroutine frame.
Task<> echo_server(Channel<int>& in, Channel<int>& out) {
  for (;;) {
    auto v = co_await in.recv();
    if (!v) co_return;
    out.send(*v);
  }
}

Task<> echo_client(Channel<int>& out, Channel<int>& in, int n) {
  for (int i = 0; i < n; ++i) {
    out.send(i);
    co_await in.recv();
  }
  out.close();
}

void BM_ChannelPingPong(benchmark::State& state) {
  constexpr int kRoundTrips = 1024;
  Engine eng;
  std::uint64_t ops = 0;
  for (auto _ : state) {
    Channel<int> req(eng);
    Channel<int> resp(eng);
    e2e::sim::co_spawn(echo_server(req, resp));
    e2e::sim::co_spawn(echo_client(req, resp, kRoundTrips));
    eng.run();
    ops += kRoundTrips;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(ops));
}
BENCHMARK(BM_ChannelPingPong);

// Frame allocate + schedule + resume + frame free for a short-lived task —
// the lifecycle of the per-chunk tasks rftp/iser spawn by the hundred
// thousand.
Task<> sleeper(Engine& eng) { co_await Delay{eng, 1}; }

void BM_CoroutineSpawn(benchmark::State& state) {
  constexpr int kTasksPerRun = 256;
  Engine eng;
  std::uint64_t ops = 0;
  for (auto _ : state) {
    for (int i = 0; i < kTasksPerRun; ++i)
      e2e::sim::co_spawn(sleeper(eng));
    eng.run();
    ops += kTasksPerRun;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(ops));
}
BENCHMARK(BM_CoroutineSpawn);

// ---- Parallel cluster scaling -------------------------------------------
//
// The sharded-engine equivalent of BM_ScheduleDispatch: 8 engine shards,
// each churning self-rearming timers, with every 16th dispatch cross-
// posting a no-op to the next shard one lookahead ahead (sound: an event
// running at `now` has now >= the window's min, so now + L >= horizon).
// Arg(n) = worker threads. items_per_second is total events across shards
// per wall-second — UseRealTime, because the work happens on the pool.
//
// Read the curve against nproc: on a 1-core host every extra worker adds
// contention and the curve is flat-to-negative by design; the interesting
// single-core numbers are Arg(1) vs the sequential baseline below (the
// price of windowed coordination) and vs BM_ScheduleDispatch (the raw
// single-heap ceiling).
constexpr int kChurnShards = 8;
constexpr int kChurnTimersPerShard = 64;
constexpr std::uint64_t kChurnEventsPerTimer = 256;
constexpr std::uint64_t kChurnLookahead = 61;

struct ShardLoad {
  Engine* self;
  Engine* next;
  std::uint64_t delay;
  std::uint64_t remaining;
  void operator()() {
    if (remaining == 0) return;
    --remaining;
    if (remaining % 16 == 0)
      self->cross_post(*next, self->now() + kChurnLookahead, [] {});
    self->schedule_after(delay, *this);
  }
};

void seed_churn(std::array<Engine, kChurnShards>& engs) {
  for (int s = 0; s < kChurnShards; ++s)
    for (int i = 0; i < kChurnTimersPerShard; ++i) {
      const std::uint64_t d = 1 + static_cast<std::uint64_t>(i) % 61;
      engs[s].schedule_after(
          d, ShardLoad{&engs[s], &engs[(s + 1) % kChurnShards], d,
                       kChurnEventsPerTimer});
    }
}

void BM_ClusterChurn(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  std::uint64_t events = 0;
  for (auto _ : state) {
    std::array<Engine, kChurnShards> engs;
    Cluster cluster(workers);
    for (Engine& e : engs) cluster.add(e);
    cluster.note_lookahead(kChurnLookahead);
    seed_churn(engs);
    cluster.run();
    events += cluster.events_processed();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_ClusterChurn)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

// Same load through run_sequential() — the exact-global-order algorithm the
// windowed run replaces. BM_ClusterChurn/1 vs this is the coordination
// overhead (windowing + barriers + outbox merge) at zero parallelism.
void BM_ClusterChurnSequential(benchmark::State& state) {
  std::uint64_t events = 0;
  for (auto _ : state) {
    std::array<Engine, kChurnShards> engs;
    Cluster cluster(1);
    for (Engine& e : engs) cluster.add(e);
    cluster.note_lookahead(kChurnLookahead);
    seed_churn(engs);
    cluster.run_sequential();
    events += cluster.events_processed();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_ClusterChurnSequential)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
