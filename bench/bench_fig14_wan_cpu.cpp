// Fig. 14: RFTP CPU utilization on the WAN path — (a) sender, (b)
// receiver — versus block size and stream count.
//
// Paper shape: per-block protocol costs dominate, so CPU falls as the
// block size grows and rises with stream count; both sides stay far below
// one core even at line rate.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

#include "bench_util.hpp"
#include "metrics/table.hpp"
#include "scenarios.hpp"

namespace e2e::bench {
namespace {

const std::uint64_t kBlocks[] = {1ull << 20, 4ull << 20, 16ull << 20};
const int kStreams[] = {1, 4, 8};

std::map<std::pair<int, std::uint64_t>, WanPoint> g_points;

void BM_WanCpu(benchmark::State& state) {
  const int streams = kStreams[state.range(0)];
  const std::uint64_t block = kBlocks[state.range(1)];
  const std::uint64_t dataset =
      std::max<std::uint64_t>(64ull * block * streams, 2ull << 30);
  WanPoint p;
  for (auto _ : state) {
    p = run_wan_point(streams, block, dataset);
    benchmark::DoNotOptimize(p.sender_cpu_pct);
  }
  g_points[{streams, block}] = p;
  state.counters["sender_cpu_pct"] = p.sender_cpu_pct;
  state.counters["receiver_cpu_pct"] = p.receiver_cpu_pct;
  state.counters["Gbps"] = p.gbps;
  state.SetLabel(std::to_string(streams) + " streams/" +
                 std::to_string(block >> 20) + "MiB");
}
BENCHMARK(BM_WanCpu)
    ->ArgsProduct({{0, 1, 2}, {0, 1, 2}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace e2e::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  using namespace e2e::bench;
  for (const bool receiver : {false, true}) {
    e2e::metrics::Table t(receiver
                              ? "Fig. 14(b) receiver protocol CPU (%)"
                              : "Fig. 14(a) sender protocol CPU (%)");
    t.header({"block", "1 stream", "4 streams", "8 streams"});
    for (auto block : kBlocks) {
      std::vector<std::string> row{std::to_string(block >> 20) + " MiB"};
      for (auto s : kStreams) {
        const auto& p = g_points[{s, block}];
        row.push_back(e2e::metrics::Table::num(
            receiver ? p.receiver_cpu_pct : p.sender_cpu_pct));
      }
      t.row(row);
    }
    std::fputs(t.to_string().c_str(), stdout);
    std::fputc('\n', stdout);
  }

  print_comparison(
      "Fig. 14 shape: CPU per Gbps falls with block size (4 streams)",
      {
          {"sender CPU/Gbps at 1 MiB vs 16 MiB", 0.0,
           (g_points[{4, 1ull << 20}].sender_cpu_pct /
            g_points[{4, 1ull << 20}].gbps) /
               (g_points[{4, 16ull << 20}].sender_cpu_pct /
                g_points[{4, 16ull << 20}].gbps),
           "x"},
      });
  return 0;
}
