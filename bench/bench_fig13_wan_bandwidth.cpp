// Fig. 13: RFTP payload bandwidth on the 40G, 95 ms ANI WAN loop as a
// function of block size and number of parallel streams.
//
// Paper shape: small blocks / few streams cannot cover the ~475 MB
// bandwidth-delay product and run window-limited; with enough outstanding
// data RFTP reaches ~97% of the raw link.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

#include "bench_util.hpp"
#include "metrics/table.hpp"
#include "scenarios.hpp"

namespace e2e::bench {
namespace {

const std::uint64_t kBlocks[] = {1ull << 20, 4ull << 20, 16ull << 20,
                                 64ull << 20};
const int kStreams[] = {1, 2, 4, 8};

std::map<std::pair<int, std::uint64_t>, WanPoint> g_points;

void BM_WanRftp(benchmark::State& state) {
  const int streams = kStreams[state.range(0)];
  const std::uint64_t block = kBlocks[state.range(1)];
  // Size the dataset so even window-limited points finish quickly.
  // Long enough that the window-fill ramp and drain tail are noise.
  const std::uint64_t dataset =
      std::max<std::uint64_t>(64ull * block * streams, 24ull << 30);
  WanPoint p;
  for (auto _ : state) {
    p = run_wan_point(streams, block, dataset);
    benchmark::DoNotOptimize(p.gbps);
  }
  g_points[{streams, block}] = p;
  state.counters["Gbps"] = p.gbps;
  state.counters["utilization"] = p.utilization;
  state.SetLabel(std::to_string(streams) + " streams/" +
                 std::to_string(block >> 20) + "MiB");
}
BENCHMARK(BM_WanRftp)
    ->ArgsProduct({{0, 1, 2, 3}, {0, 1, 2, 3}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace e2e::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  using namespace e2e::bench;
  e2e::metrics::Table t(
      "Fig. 13 WAN RFTP payload bandwidth (Gbps), RTT 95 ms, 16 credits");
  t.header({"block", "1 stream", "2 streams", "4 streams", "8 streams"});
  for (auto block : kBlocks) {
    std::vector<std::string> row{std::to_string(block >> 20) + " MiB"};
    for (auto s : kStreams)
      row.push_back(e2e::metrics::Table::num(g_points[{s, block}].gbps));
    t.row(row);
  }
  std::fputs(t.to_string().c_str(), stdout);
  std::fputc('\n', stdout);

  print_comparison(
      "Fig. 13 headline",
      {
          {"peak utilization of 40G link", 97.0,
           100.0 * g_points[{8, 16ull << 20}].utilization, "%"},
          {"window-limited point (1 stream, 1 MiB)", 1.4,
           g_points[{1, 1ull << 20}].gbps, "Gbps"},
      });
  return 0;
}
