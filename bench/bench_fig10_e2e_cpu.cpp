// Fig. 10: CPU utilization breakdown of the Fig. 9 end-to-end transfers.
//
// Paper shape: GridFTP's "sys" (kernel TCP/IP + copies) dominates its
// profile; RFTP spends its (much smaller) budget in user-space protocol
// and storage I/O.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "scenarios.hpp"

namespace e2e::bench {
namespace {

E2eResult g_rftp, g_grid;

void BM_E2eRftpCpu(benchmark::State& state) {
  for (auto _ : state) {
    g_rftp = run_e2e_rftp(32ull << 30);
    benchmark::DoNotOptimize(g_rftp.src_usage.total());
  }
  state.counters["src_cpu_pct"] =
      g_rftp.src_usage.total_percent(g_rftp.window);
}
BENCHMARK(BM_E2eRftpCpu)->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_E2eGridFtpCpu(benchmark::State& state) {
  for (auto _ : state) {
    g_grid = run_e2e_gridftp(8ull << 30);
    benchmark::DoNotOptimize(g_grid.src_usage.total());
  }
  state.counters["src_cpu_pct"] =
      g_grid.src_usage.total_percent(g_grid.window);
}
BENCHMARK(BM_E2eGridFtpCpu)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace e2e::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  using namespace e2e::bench;
  using e2e::metrics::CpuCategory;
  print_cpu_breakdown("RFTP source host", g_rftp.src_usage, g_rftp.window);
  print_cpu_breakdown("RFTP destination host", g_rftp.dst_usage,
                      g_rftp.window);
  print_cpu_breakdown("GridFTP source host", g_grid.src_usage,
                      g_grid.window);
  print_cpu_breakdown("GridFTP destination host", g_grid.dst_usage,
                      g_grid.window);

  const double grid_sys =
      g_grid.src_usage.percent(CpuCategory::kKernelProto, g_grid.window) +
      g_grid.src_usage.percent(CpuCategory::kCopy, g_grid.window);
  const double grid_user =
      g_grid.src_usage.percent(CpuCategory::kUserProto, g_grid.window);
  const double rftp_kernel =
      g_rftp.src_usage.percent(CpuCategory::kKernelProto, g_rftp.window);
  print_comparison(
      "Fig. 10 shapes",
      {
          {"GridFTP sys share of (sys+user)", 80.0,
           100.0 * grid_sys / (grid_sys + grid_user), "%"},
          {"RFTP kernel-protocol CPU", 0.0, rftp_kernel, "%"},
          {"GridFTP CPU per Gbps / RFTP CPU per Gbps", 3.0,
           (g_grid.src_usage.total_percent(g_grid.window) /
            g_grid.transfer.goodput_gbps) /
               (g_rftp.src_usage.total_percent(g_rftp.window) /
                g_rftp.transfer.goodput_gbps),
           "x"},
      });
  return 0;
}
