// Verbs-layer validation: the perftest suite (ib_send_bw / ib_write_bw /
// ib_read_bw / ib_send_lat analogues) over one 40G RoCE LAN link.
//
// Not a paper figure — this is the sanity table every RDMA stack ships,
// pinning the verbs layer to its analytic targets: large messages reach
// ~99% of line rate, RDMA Read trails Write by the read-efficiency factor,
// and small-message tests are message-rate / latency bound.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

#include "apps/perftest.hpp"
#include "bench_util.hpp"
#include "exp/exp.hpp"
#include "metrics/table.hpp"

namespace e2e::bench {
namespace {

const std::uint64_t kSizes[] = {4096, 65536, 1ull << 20, 4ull << 20};

struct Rig {
  sim::Engine eng;
  std::unique_ptr<numa::Host> a, b;
  std::unique_ptr<rdma::Device> da, db;
  std::unique_ptr<net::Link> link;
  std::unique_ptr<numa::Process> pa, pb;
  std::unique_ptr<rdma::ConnectedPair> pair;

  Rig() {
    a = std::make_unique<numa::Host>(eng, model::front_end_lan_host("a"));
    b = std::make_unique<numa::Host>(eng, model::front_end_lan_host("b"));
    da = std::make_unique<rdma::Device>(*a, a->profile().nics[0]);
    db = std::make_unique<rdma::Device>(*b, b->profile().nics[0]);
    link = net::make_roce_lan(eng, "wire");
    link->bind_endpoints(a.get(), b.get());
    pa = std::make_unique<numa::Process>(*a, "client",
                                         numa::NumaBinding::bound(0));
    pb = std::make_unique<numa::Process>(*b, "server",
                                         numa::NumaBinding::bound(0));
    pair = std::make_unique<rdma::ConnectedPair>(*da, *db, *link);
  }
};

std::map<std::pair<int, std::uint64_t>, apps::PerftestResult> g_bw;
apps::PerftestResult g_lat;

void BM_PerftestBw(benchmark::State& state) {
  const auto op = static_cast<apps::PerftestOp>(state.range(0));
  const std::uint64_t size = kSizes[state.range(1)];
  apps::PerftestResult r;
  for (auto _ : state) {
    Rig rig;
    apps::PerftestConfig cfg;
    cfg.op = op;
    cfg.msg_bytes = size;
    cfg.iterations = 2000;
    r = apps::run_bw(rig.eng, *rig.pair, *rig.pa, *rig.pb, cfg);
    benchmark::DoNotOptimize(r.gbps);
  }
  g_bw[{state.range(0), size}] = r;
  state.counters["Gbps"] = r.gbps;
  state.counters["Mmsg_s"] = r.msgs_per_sec / 1e6;
  static const char* names[] = {"send", "write", "read"};
  state.SetLabel(std::string(names[state.range(0)]) + "/" +
                 std::to_string(size) + "B");
}
BENCHMARK(BM_PerftestBw)
    ->ArgsProduct({{0, 1, 2}, {0, 1, 2, 3}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_PerftestLat(benchmark::State& state) {
  for (auto _ : state) {
    Rig rig;
    apps::PerftestConfig cfg;
    cfg.msg_bytes = 64;
    cfg.iterations = 500;
    g_lat = apps::run_lat(rig.eng, *rig.pair, *rig.pa, *rig.pb, cfg);
    benchmark::DoNotOptimize(g_lat.avg_lat_us);
  }
  state.counters["lat_us"] = g_lat.avg_lat_us;
}
BENCHMARK(BM_PerftestLat)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace e2e::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  using namespace e2e::bench;
  e2e::metrics::Table t("perftest: single-QP bandwidth (Gbps), 40G RoCE");
  t.header({"message", "SEND", "RDMA WRITE", "RDMA READ"});
  for (auto s : kSizes) {
    t.row({std::to_string(s) + " B",
           e2e::metrics::Table::num(g_bw[{0, s}].gbps),
           e2e::metrics::Table::num(g_bw[{1, s}].gbps),
           e2e::metrics::Table::num(g_bw[{2, s}].gbps)});
  }
  std::fputs(t.to_string().c_str(), stdout);
  std::printf("\nping-pong latency (64 B): %.1f us (wire RTT/2 = 83 us)\n",
              e2e::bench::g_lat.avg_lat_us);
  return 0;
}
