// Fig. 9: end-to-end throughput over time, RFTP vs GridFTP, across the
// full SAN -> 3x40G RoCE -> SAN path with XFS over iSER on both sides.
//
// Paper numbers: path limit 94.8 Gbps (fio write); RFTP 91 Gbps (96% of
// the limit); GridFTP 29 Gbps (~30%). The paper plots 25 minutes; this
// harness transfers a dataset sized for tens of simulated seconds — the
// steady-state level is the reproduced quantity.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hpp"
#include "metrics/table.hpp"
#include "scenarios.hpp"

namespace e2e::bench {
namespace {

E2eResult g_rftp, g_grid;

void BM_E2eRftp(benchmark::State& state) {
  for (auto _ : state) {
    g_rftp = run_e2e_rftp(64ull << 30);
    benchmark::DoNotOptimize(g_rftp.transfer.goodput_gbps);
  }
  state.counters["Gbps"] = g_rftp.transfer.goodput_gbps;
}
BENCHMARK(BM_E2eRftp)->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_E2eGridFtp(benchmark::State& state) {
  for (auto _ : state) {
    g_grid = run_e2e_gridftp(16ull << 30);
    benchmark::DoNotOptimize(g_grid.transfer.goodput_gbps);
  }
  state.counters["Gbps"] = g_grid.transfer.goodput_gbps;
}
BENCHMARK(BM_E2eGridFtp)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace e2e::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  using namespace e2e::bench;
  print_comparison(
      "Fig. 9 end-to-end throughput",
      {
          {"path limit (fio write)", 94.8, g_rftp.path_limit_gbps, "Gbps"},
          {"RFTP", 91.0, g_rftp.transfer.goodput_gbps, "Gbps"},
          {"RFTP share of path limit", 96.0,
           100.0 * g_rftp.transfer.goodput_gbps / g_rftp.path_limit_gbps,
           "%"},
          {"GridFTP", 29.0, g_grid.transfer.goodput_gbps, "Gbps"},
          {"RFTP / GridFTP", 3.1,
           g_rftp.transfer.goodput_gbps / g_grid.transfer.goodput_gbps, "x"},
      });

  // Throughput-over-time series (the figure's curves), 1-second bins.
  e2e::metrics::Table t("throughput over time (Gbps per 1 s bin)");
  t.header({"t(s)", "RFTP", "GridFTP"});
  const std::size_t bins =
      std::max(g_rftp.series_gbps.size(), g_grid.series_gbps.size());
  for (std::size_t i = 0; i < bins; ++i) {
    auto val = [](const std::vector<double>& v, std::size_t k) {
      return k < v.size() ? e2e::metrics::Table::num(v[k]) : std::string("-");
    };
    t.row({std::to_string(i), val(g_rftp.series_gbps, i),
           val(g_grid.series_gbps, i)});
  }
  std::fputs(t.to_csv().c_str(), stdout);

  // Per-block drain latency percentiles (stats::Histogram — the same
  // implementation every scenario report uses).
  print_hist_percentiles("RFTP block drain latency (us)",
                         {{"drain", &g_rftp.drain_hist}});

  // Wall-clock mode: report the simulator's own cost for each scenario and
  // emit machine-readable rows when E2E_BENCH_JSON names a file.
  std::printf("sim cost: rftp %llu events in %.3f s (%.2f Mev/s), "
              "gridftp %llu events in %.3f s (%.2f Mev/s)\n",
              static_cast<unsigned long long>(g_rftp.sim_events),
              g_rftp.wall_seconds,
              g_rftp.wall_seconds > 0.0
                  ? 1e-6 * static_cast<double>(g_rftp.sim_events) /
                        g_rftp.wall_seconds
                  : 0.0,
              static_cast<unsigned long long>(g_grid.sim_events),
              g_grid.wall_seconds,
              g_grid.wall_seconds > 0.0
                  ? 1e-6 * static_cast<double>(g_grid.sim_events) /
                        g_grid.wall_seconds
                  : 0.0);
  SimCostJson json;
  json.add("e2e_rftp_64GiB", g_rftp.sim_events, g_rftp.wall_seconds,
           g_rftp.transfer.goodput_gbps, &g_rftp.drain_hist);
  json.add("e2e_gridftp_16GiB", g_grid.sim_events, g_grid.wall_seconds,
           g_grid.transfer.goodput_gbps);
  return 0;
}
