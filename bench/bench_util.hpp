// Output helpers shared by the bench binaries.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "metrics/cpu_usage.hpp"
#include "metrics/table.hpp"
#include "trace/trace.hpp"

namespace e2e::bench {

/// Opt-in tracing for scenario runs, shared by the bench drivers.
///
/// When the environment names output files —
///   E2E_TRACE=out.json   Chrome/Perfetto trace-event JSON
///   E2E_REPORT=out.json  flat run report (.csv suffix -> CSV)
/// — constructing a ScopedTrace installs a tracer (plus a 10 ms resource
/// sampler) on `eng` and writes the file(s) on destruction. With neither
/// variable set no tracer is installed, so benchmark numbers are the
/// untraced numbers. Repeated scenario runs overwrite the same files; the
/// surviving trace describes the last run.
class ScopedTrace {
 public:
  explicit ScopedTrace(sim::Engine& eng) {
    const char* trace_file = std::getenv("E2E_TRACE");
    const char* report_file = std::getenv("E2E_REPORT");
    if (trace_file != nullptr) trace_file_ = trace_file;
    if (report_file != nullptr) report_file_ = report_file;
    if (trace_file_.empty() && report_file_.empty()) return;
    tracer_ = std::make_unique<trace::Tracer>(eng);
    tracer_->install();
    tracer_->enable_resource_sampler(10 * sim::kMillisecond);
  }
  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;
  ~ScopedTrace() {
    if (!tracer_) return;
    tracer_->sample_now();
    if (!trace_file_.empty()) {
      std::ofstream os(trace_file_);
      if (os) tracer_->write_chrome_trace(os);
    }
    if (!report_file_.empty()) {
      std::ofstream os(report_file_);
      if (!os) return;
      if (report_file_.size() >= 4 &&
          report_file_.compare(report_file_.size() - 4, 4, ".csv") == 0)
        tracer_->write_report_csv(os);
      else
        tracer_->write_report_json(os);
    }
  }

  [[nodiscard]] trace::Tracer* get() noexcept { return tracer_.get(); }

 private:
  std::string trace_file_;
  std::string report_file_;
  std::unique_ptr<trace::Tracer> tracer_;
};

struct PaperRow {
  std::string label;
  double paper = 0.0;     // value reported in the paper (0 = not reported)
  double measured = 0.0;  // value this reproduction measured
  std::string unit;
};

/// Prints a paper-vs-measured table with relative deltas.
inline void print_comparison(const std::string& title,
                             const std::vector<PaperRow>& rows) {
  metrics::Table t(title);
  t.header({"metric", "paper", "measured", "delta", "unit"});
  for (const auto& r : rows) {
    std::string delta = "-";
    if (r.paper != 0.0)
      delta = metrics::Table::num(100.0 * (r.measured - r.paper) / r.paper, 1) +
              "%";
    t.row({r.label,
           r.paper != 0.0 ? metrics::Table::num(r.paper, 1) : std::string("-"),
           metrics::Table::num(r.measured, 1), delta, r.unit});
  }
  std::fputs(t.to_string().c_str(), stdout);
  std::fputc('\n', stdout);
}

/// Formats a CPU usage breakdown as one table row set.
inline void print_cpu_breakdown(const std::string& title,
                                const metrics::CpuUsage& u,
                                sim::SimDuration window) {
  using metrics::CpuCategory;
  metrics::Table t(title);
  t.header({"category", "cpu%"});
  for (auto c : {CpuCategory::kUserProto, CpuCategory::kKernelProto,
                 CpuCategory::kCopy, CpuCategory::kLoad,
                 CpuCategory::kOffload, CpuCategory::kOther})
    t.row({std::string(metrics::to_string(c)),
           metrics::Table::num(u.percent(c, window), 1)});
  t.row({"total", metrics::Table::num(u.total_percent(window), 1)});
  std::fputs(t.to_string().c_str(), stdout);
  std::fputc('\n', stdout);
}

}  // namespace e2e::bench
