// Output helpers shared by the bench binaries.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "metrics/cpu_usage.hpp"
#include "metrics/table.hpp"
#include "stats/stats.hpp"
#include "trace/trace.hpp"

namespace e2e::bench {

/// Opt-in tracing for scenario runs, shared by the bench drivers.
///
/// When the environment names output files —
///   E2E_TRACE=out.json   Chrome/Perfetto trace-event JSON
///   E2E_REPORT=out.json  flat run report (.csv suffix -> CSV)
/// — constructing a ScopedTrace installs a tracer (plus a 10 ms resource
/// sampler) on `eng` and writes the file(s) on destruction. With neither
/// variable set no tracer is installed, so benchmark numbers are the
/// untraced numbers. Repeated scenario runs overwrite the same files; the
/// surviving trace describes the last run.
class ScopedTrace {
 public:
  explicit ScopedTrace(sim::Engine& eng) {
    const char* trace_file = std::getenv("E2E_TRACE");
    const char* report_file = std::getenv("E2E_REPORT");
    if (trace_file != nullptr) trace_file_ = trace_file;
    if (report_file != nullptr) report_file_ = report_file;
    if (trace_file_.empty() && report_file_.empty()) return;
    tracer_ = std::make_unique<trace::Tracer>(eng);
    tracer_->install();
    tracer_->enable_resource_sampler(10 * sim::kMillisecond);
  }
  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;
  ~ScopedTrace() {
    if (!tracer_) return;
    tracer_->sample_now();
    if (!trace_file_.empty()) {
      std::ofstream os(trace_file_);
      if (os) tracer_->write_chrome_trace(os);
    }
    if (!report_file_.empty()) {
      std::ofstream os(report_file_);
      if (!os) return;
      if (report_file_.size() >= 4 &&
          report_file_.compare(report_file_.size() - 4, 4, ".csv") == 0)
        tracer_->write_report_csv(os);
      else
        tracer_->write_report_json(os);
    }
  }

  [[nodiscard]] trace::Tracer* get() noexcept { return tracer_.get(); }

 private:
  std::string trace_file_;
  std::string report_file_;
  std::unique_ptr<trace::Tracer> tracer_;
};

/// Always-on metric registry for scenario runs, shared by the bench
/// drivers. Constructing one installs a stats::Registry on `eng` (the
/// stats hot path is cheap enough to leave on under the timer, unlike the
/// tracer); when E2E_STATS names a file the aggregated dump is written on
/// destruction (.csv suffix -> CSV, else JSON). Scenario drivers read
/// latency histograms back through get()/merged() so bench percentiles and
/// scenario percentiles come from the one stats::Histogram implementation.
class ScopedStats {
 public:
  explicit ScopedStats(sim::Engine& eng) : stats_(eng) {
    if (const char* p = std::getenv("E2E_STATS")) out_ = p;
    stats_.install();
  }
  ScopedStats(const ScopedStats&) = delete;
  ScopedStats& operator=(const ScopedStats&) = delete;
  ~ScopedStats() {
    stats_.uninstall();
    if (out_.empty()) return;
    std::ofstream os(out_);
    if (!os) return;
    if (out_.size() >= 4 && out_.compare(out_.size() - 4, 4, ".csv") == 0)
      stats_.write_csv(os);
    else
      stats_.write_json(os);
  }

  [[nodiscard]] stats::Registry* get() noexcept { return &stats_; }
  /// All entities' `name` histograms merged into one distribution.
  [[nodiscard]] stats::Histogram merged(std::string_view name) const {
    return stats_.merged_histogram(name);
  }

 private:
  std::string out_;
  stats::Registry stats_;
};

/// Appends one `label: count/mean/p50/p90/p99/p999` row per histogram to
/// `t` — the single percentile-summary formatter every bench shares (the
/// math itself lives in stats::Histogram).
inline void add_hist_rows(
    metrics::Table& t,
    const std::vector<std::pair<std::string, const stats::Histogram*>>& hists,
    double scale = 1e-3, int digits = 1) {
  for (const auto& [label, h] : hists) {
    if (h == nullptr || h->count() == 0) continue;
    auto n = [&](std::uint64_t v) {
      return metrics::Table::num(static_cast<double>(v) * scale, digits);
    };
    t.row({label, std::to_string(h->count()), n(static_cast<std::uint64_t>(h->mean())),
           n(h->p50()), n(h->p90()), n(h->p99()), n(h->p999())});
  }
}

/// Prints a percentile table for a set of named latency histograms
/// (values scaled by `scale`; the default renders ns as us).
inline void print_hist_percentiles(
    const std::string& title,
    const std::vector<std::pair<std::string, const stats::Histogram*>>&
        hists,
    double scale = 1e-3, int digits = 1) {
  metrics::Table t(title);
  t.header({"metric", "count", "mean", "p50", "p90", "p99", "p999"});
  add_hist_rows(t, hists, scale, digits);
  std::fputs(t.to_string().c_str(), stdout);
  std::fputc('\n', stdout);
}

/// Wall-clock mode output: collects per-scenario simulator-cost rows
/// (events dispatched, host seconds, events/s) and writes them as JSON to
/// the path named by E2E_BENCH_JSON. With the variable unset it is inert.
/// The schema matches the committed BENCH_simcore.json perf baseline so CI
/// artifacts and the in-repo before/after table stay comparable.
class SimCostJson {
 public:
  SimCostJson() {
    if (const char* p = std::getenv("E2E_BENCH_JSON")) path_ = p;
  }
  SimCostJson(const SimCostJson&) = delete;
  SimCostJson& operator=(const SimCostJson&) = delete;

  /// `lat` (optional): a latency histogram whose p50/p90/p99/p999 ride
  /// along in the row, e.g. RFTP block drain latency.
  void add(const std::string& name, std::uint64_t sim_events,
           double wall_seconds, double gbps = 0.0,
           const stats::Histogram* lat = nullptr) {
    rows_.push_back({name, sim_events, wall_seconds, gbps,
                     lat != nullptr ? *lat : stats::Histogram{}});
  }

  ~SimCostJson() {
    if (path_.empty() || rows_.empty()) return;
    std::ofstream os(path_);
    if (!os) return;
    os << "{\n  \"benchmarks\": [\n";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      const Row& r = rows_[i];
      const double eps =
          r.wall_seconds > 0.0
              ? static_cast<double>(r.sim_events) / r.wall_seconds
              : 0.0;
      os << "    {\"name\": \"" << r.name << "\", \"sim_events\": "
         << r.sim_events << ", \"wall_seconds\": " << r.wall_seconds
         << ", \"events_per_second\": " << eps << ", \"goodput_gbps\": "
         << r.gbps;
      if (r.lat.count() > 0)
        os << ", \"lat_p50_ns\": " << r.lat.p50() << ", \"lat_p90_ns\": "
           << r.lat.p90() << ", \"lat_p99_ns\": " << r.lat.p99()
           << ", \"lat_p999_ns\": " << r.lat.p999();
      os << "}" << (i + 1 < rows_.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
  }

 private:
  struct Row {
    std::string name;
    std::uint64_t sim_events;
    double wall_seconds;
    double gbps;
    stats::Histogram lat;  // empty when the row carries no latency data
  };
  std::string path_;
  std::vector<Row> rows_;
};

struct PaperRow {
  std::string label;
  double paper = 0.0;     // value reported in the paper (0 = not reported)
  double measured = 0.0;  // value this reproduction measured
  std::string unit;
};

/// Prints a paper-vs-measured table with relative deltas.
inline void print_comparison(const std::string& title,
                             const std::vector<PaperRow>& rows) {
  metrics::Table t(title);
  t.header({"metric", "paper", "measured", "delta", "unit"});
  for (const auto& r : rows) {
    std::string delta = "-";
    if (r.paper != 0.0)
      delta = metrics::Table::num(100.0 * (r.measured - r.paper) / r.paper, 1) +
              "%";
    t.row({r.label,
           r.paper != 0.0 ? metrics::Table::num(r.paper, 1) : std::string("-"),
           metrics::Table::num(r.measured, 1), delta, r.unit});
  }
  std::fputs(t.to_string().c_str(), stdout);
  std::fputc('\n', stdout);
}

/// Formats a CPU usage breakdown as one table row set.
inline void print_cpu_breakdown(const std::string& title,
                                const metrics::CpuUsage& u,
                                sim::SimDuration window) {
  using metrics::CpuCategory;
  metrics::Table t(title);
  t.header({"category", "cpu%"});
  for (auto c : {CpuCategory::kUserProto, CpuCategory::kKernelProto,
                 CpuCategory::kCopy, CpuCategory::kLoad,
                 CpuCategory::kOffload, CpuCategory::kOther})
    t.row({std::string(metrics::to_string(c)),
           metrics::Table::num(u.percent(c, window), 1)});
  t.row({"total", metrics::Table::num(u.total_percent(window), 1)});
  std::fputs(t.to_string().c_str(), stdout);
  std::fputc('\n', stdout);
}

}  // namespace e2e::bench
