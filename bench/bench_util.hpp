// Output helpers shared by the bench binaries.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "metrics/cpu_usage.hpp"
#include "metrics/table.hpp"

namespace e2e::bench {

struct PaperRow {
  std::string label;
  double paper = 0.0;     // value reported in the paper (0 = not reported)
  double measured = 0.0;  // value this reproduction measured
  std::string unit;
};

/// Prints a paper-vs-measured table with relative deltas.
inline void print_comparison(const std::string& title,
                             const std::vector<PaperRow>& rows) {
  metrics::Table t(title);
  t.header({"metric", "paper", "measured", "delta", "unit"});
  for (const auto& r : rows) {
    std::string delta = "-";
    if (r.paper != 0.0)
      delta = metrics::Table::num(100.0 * (r.measured - r.paper) / r.paper, 1) +
              "%";
    t.row({r.label,
           r.paper != 0.0 ? metrics::Table::num(r.paper, 1) : std::string("-"),
           metrics::Table::num(r.measured, 1), delta, r.unit});
  }
  std::fputs(t.to_string().c_str(), stdout);
  std::fputc('\n', stdout);
}

/// Formats a CPU usage breakdown as one table row set.
inline void print_cpu_breakdown(const std::string& title,
                                const metrics::CpuUsage& u,
                                sim::SimDuration window) {
  using metrics::CpuCategory;
  metrics::Table t(title);
  t.header({"category", "cpu%"});
  for (auto c : {CpuCategory::kUserProto, CpuCategory::kKernelProto,
                 CpuCategory::kCopy, CpuCategory::kLoad,
                 CpuCategory::kOffload, CpuCategory::kOther})
    t.row({std::string(metrics::to_string(c)),
           metrics::Table::num(u.percent(c, window), 1)});
  t.row({"total", metrics::Table::num(u.total_percent(window), 1)});
  std::fputs(t.to_string().c_str(), stdout);
  std::fputc('\n', stdout);
}

}  // namespace e2e::bench
