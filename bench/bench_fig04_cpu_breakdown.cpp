// Fig. 4: CPU cost breakdown of a 39 Gbps /dev/zero -> /dev/null transfer
// over one 40G RoCE link, RDMA-based RFTP vs TCP-based iperf.
//
// Paper numbers (absolute CPU, both ends combined):
//   RFTP: 122% total — 56% user-space protocol, ~70% data load, 0% copy,
//         0% kernel protocol (offloaded).
//   TCP:  642% total — 311% kernel protocol, 213% copies, ~70% load.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "scenarios.hpp"

namespace e2e::bench {
namespace {

CostBreakdown g_rftp, g_tcp;

void BM_RftpZeroToNull(benchmark::State& state) {
  for (auto _ : state) {
    g_rftp = run_fig4_rftp();
    benchmark::DoNotOptimize(g_rftp.gbps);
  }
  state.counters["Gbps"] = g_rftp.gbps;
  state.counters["cpu_total_pct"] = g_rftp.both_ends.total_percent(g_rftp.window);
}
BENCHMARK(BM_RftpZeroToNull)->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_TcpZeroToNull(benchmark::State& state) {
  for (auto _ : state) {
    g_tcp = run_fig4_tcp();
    benchmark::DoNotOptimize(g_tcp.gbps);
  }
  state.counters["Gbps"] = g_tcp.gbps;
  state.counters["cpu_total_pct"] = g_tcp.both_ends.total_percent(g_tcp.window);
}
BENCHMARK(BM_TcpZeroToNull)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace e2e::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  using namespace e2e::bench;
  using e2e::metrics::CpuCategory;
  const auto& ru = g_rftp.both_ends;
  const auto& tu = g_tcp.both_ends;
  const auto rw = g_rftp.window;
  const auto tw = g_tcp.window;
  print_comparison(
      "Fig. 4 cost breakdown at ~39 Gbps (both ends combined)",
      {
          {"RFTP throughput", 39.0, g_rftp.gbps, "Gbps"},
          {"RFTP total CPU", 122.0, ru.total_percent(rw), "%"},
          {"RFTP user protocol", 56.0,
           ru.percent(CpuCategory::kUserProto, rw), "%"},
          {"RFTP copies", 0.0, ru.percent(CpuCategory::kCopy, rw), "%"},
          {"RFTP kernel protocol", 0.0,
           ru.percent(CpuCategory::kKernelProto, rw), "%"},
          {"RFTP data load (/dev/zero)", 70.0,
           ru.percent(CpuCategory::kLoad, rw), "%"},
          {"TCP throughput", 39.0, g_tcp.gbps, "Gbps"},
          {"TCP total CPU", 642.0, tu.total_percent(tw), "%"},
          {"TCP kernel protocol", 311.0,
           tu.percent(CpuCategory::kKernelProto, tw), "%"},
          {"TCP copies", 213.0, tu.percent(CpuCategory::kCopy, tw), "%"},
          {"TCP/RDMA total CPU ratio", 5.3,
           tu.total_percent(tw) / ru.total_percent(rw), "x"},
      });
  print_cpu_breakdown("RFTP (RDMA) breakdown", ru, rw);
  print_cpu_breakdown("iperf (TCP) breakdown", tu, tw);
  return 0;
}
