// Shared experiment drivers for the bench binaries.
//
// Each function runs one of the paper's scenarios on a fresh testbed and
// returns the measurements the corresponding figure reports. The bench
// binaries wrap these in google-benchmark timers and print paper-vs-
// measured tables.
#pragma once

#include <cstdint>
#include <vector>

#include "metrics/cpu_usage.hpp"
#include "rftp/config.hpp"
#include "sim/time.hpp"
#include "stats/histogram.hpp"

namespace e2e::bench {

// --- §2.3 motivating experiment ---
struct MotivatingResult {
  double stream_local_gBps = 0.0;   // paper: 50 GB/s
  double stream_interleaved_gBps = 0.0;
  double iperf_gbps = 0.0;          // paper: 83.5 default / 91.8 tuned
  metrics::CpuUsage host_usage;     // per host over `window`
  double copy_share = 0.0;          // paper: copy routines ~35% of CPU
  sim::SimDuration window = 0;
};
MotivatingResult run_motivating(bool numa_tuned,
                                sim::SimDuration duration = 3 * sim::kSecond);

// --- Fig. 4 cost breakdown at ~39 Gbps ---
struct CostBreakdown {
  double gbps = 0.0;
  metrics::CpuUsage both_ends;  // sum over sender + receiver
  sim::SimDuration window = 0;
};
CostBreakdown run_fig4_rftp(std::uint64_t bytes = 12ull << 30);
CostBreakdown run_fig4_tcp(sim::SimDuration duration = 3 * sim::kSecond);

// --- Figs. 7/8 iSER fio sweep ---
struct IserPoint {
  double gbps = 0.0;
  double target_cpu_pct = 0.0;
  metrics::CpuUsage target_usage;
  std::uint64_t ios = 0;
};
IserPoint run_iser_point(bool numa_tuned, bool write, std::uint64_t block,
                         int threads_per_lun = 4,
                         sim::SimDuration duration = 2 * sim::kSecond);

// --- Figs. 9-12 end-to-end ---
struct E2eResult {
  rftp::TransferResult transfer;
  std::vector<double> series_gbps;    // 1-second bins
  metrics::CpuUsage src_usage;
  metrics::CpuUsage dst_usage;
  sim::SimDuration window = 0;
  double path_limit_gbps = 94.8;      // paper's fio write limit
  // Simulator cost of the run (wall-clock mode): how many engine events the
  // scenario dispatched and how long the host CPU took to chew through them.
  std::uint64_t sim_events = 0;
  double wall_seconds = 0.0;
  // Block drain latency across all streams (empty for scenarios without a
  // stats registry, e.g. GridFTP which has no RFTP drain path).
  stats::Histogram drain_hist;
};
E2eResult run_e2e_rftp(std::uint64_t dataset, bool numa_tuned = true);
E2eResult run_e2e_gridftp(std::uint64_t dataset, int processes = 4);

struct BidirResult {
  double aggregate_gbps = 0.0;       // both directions
  double unidirectional_gbps = 0.0;  // same testbed, one direction
  double improvement = 0.0;          // aggregate / unidirectional - 1
  metrics::CpuUsage src_usage;       // "source" host during bidir
  sim::SimDuration window = 0;
};
BidirResult run_e2e_rftp_bidir(std::uint64_t dataset_per_direction);
BidirResult run_e2e_gridftp_bidir(std::uint64_t dataset_per_direction,
                                  int processes = 4);

// --- Figs. 13/14 WAN ---
struct WanPoint {
  double gbps = 0.0;
  double sender_cpu_pct = 0.0;    // user-space protocol CPU, sender host
  double receiver_cpu_pct = 0.0;
  double utilization = 0.0;       // of the 40G line
};
WanPoint run_wan_point(int streams, std::uint64_t block,
                       std::uint64_t dataset = 16ull << 30,
                       int credits = 16);

}  // namespace e2e::bench
