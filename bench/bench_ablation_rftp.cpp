// Ablations of RFTP's own design choices (DESIGN.md §4): credit depth vs
// the WAN bandwidth-delay product, NUMA-aware pinning on/off on the LAN
// end-to-end path, and block-size sensitivity.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

#include "bench_util.hpp"
#include "metrics/table.hpp"
#include "scenarios.hpp"

namespace e2e::bench {
namespace {

const int kCredits[] = {2, 4, 8, 16, 32};
std::map<int, WanPoint> g_credits;

void BM_WanCreditDepth(benchmark::State& state) {
  const int credits = kCredits[state.range(0)];
  WanPoint p;
  for (auto _ : state) {
    p = run_wan_point(4, 4ull << 20, 8ull << 30, credits);
    benchmark::DoNotOptimize(p.gbps);
  }
  g_credits[credits] = p;
  state.counters["Gbps"] = p.gbps;
  state.SetLabel(std::to_string(credits) + " credits");
}
BENCHMARK(BM_WanCreditDepth)
    ->DenseRange(0, 4)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

E2eResult g_tuned, g_untuned;

void BM_E2eNumaAware(benchmark::State& state) {
  const bool tuned = state.range(0) != 0;
  E2eResult r;
  for (auto _ : state) {
    r = run_e2e_rftp(24ull << 30, tuned);
    benchmark::DoNotOptimize(r.transfer.goodput_gbps);
  }
  (tuned ? g_tuned : g_untuned) = r;
  state.counters["Gbps"] = r.transfer.goodput_gbps;
  state.SetLabel(tuned ? "numa-aware" : "untuned");
}
BENCHMARK(BM_E2eNumaAware)
    ->Arg(0)
    ->Arg(1)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace e2e::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  using namespace e2e::bench;
  e2e::metrics::Table t(
      "Ablation: WAN credit depth (4 streams, 4 MiB blocks, BDP ~475 MB)");
  t.header({"credits/stream", "in-flight", "Gbps", "link util"});
  for (int c : kCredits) {
    const double mb = 4.0 * c * 4.0;
    t.row({std::to_string(c), e2e::metrics::Table::num(mb, 0) + " MiB",
           e2e::metrics::Table::num(g_credits[c].gbps),
           e2e::metrics::Table::num(100.0 * g_credits[c].utilization, 0) +
               "%"});
  }
  std::fputs(t.to_string().c_str(), stdout);

  print_comparison(
      "Ablation: RFTP NUMA awareness on the LAN end-to-end path",
      {
          {"numa-aware", 91.0, g_tuned.transfer.goodput_gbps, "Gbps"},
          {"untuned (stock scheduler + interleaved pools)", 0.0,
           g_untuned.transfer.goodput_gbps, "Gbps"},
          {"gain", 0.0,
           100.0 * (g_tuned.transfer.goodput_gbps /
                        g_untuned.transfer.goodput_gbps -
                    1.0),
           "%"},
      });
  return 0;
}
