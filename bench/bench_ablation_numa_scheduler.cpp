// Ablation / extension: NUMA policies inside the iSER target.
//
// The paper evaluates static numactl binding and names the alternative —
// "integrate the libnuma programming interface into the target ... relies
// on a scheduling algorithm for each I/O request" — as beyond its scope.
// This bench builds and measures that alternative: a single un-bound
// target process whose dispatcher routes every SCSI task to a worker on
// the LUN's home node (iscsi::TargetSched::kNumaRouted).
//
// Expected shape: dynamic routing recovers most of the static binding's
// bandwidth and CPU savings without per-process numactl configuration.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

#include "apps/fio.hpp"
#include "bench_util.hpp"
#include "exp/exp.hpp"
#include "metrics/table.hpp"

namespace e2e::bench {
namespace {

enum class Mode { kDefault = 0, kNumactl = 1, kLibnuma = 2 };

struct Point {
  double gbps = 0.0;
  double cpu = 0.0;
};

Point run_mode(Mode mode, bool write) {
  exp::SanConfig cfg;
  cfg.numa_tuned = mode == Mode::kNumactl;
  cfg.libnuma_dynamic = mode == Mode::kLibnuma;
  cfg.lun_bytes = 4ull << 30;
  exp::SanTestbed tb(cfg);
  tb.start();
  apps::FioOptions opts;
  opts.block_bytes = 4ull << 20;
  opts.write = write;
  opts.duration = 2 * sim::kSecond;
  const auto r = tb.run_fio(opts, 4);
  return {r.gbps, r.target_cpu_pct};
}

std::map<std::pair<int, bool>, Point> g_points;

void BM_NumaScheduler(benchmark::State& state) {
  const auto mode = static_cast<Mode>(state.range(0));
  const bool write = state.range(1) != 0;
  Point p;
  for (auto _ : state) {
    p = run_mode(mode, write);
    benchmark::DoNotOptimize(p.gbps);
  }
  g_points[{state.range(0), write}] = p;
  state.counters["Gbps"] = p.gbps;
  state.counters["target_cpu_pct"] = p.cpu;
  static const char* names[] = {"default", "numactl", "libnuma"};
  state.SetLabel(std::string(names[state.range(0)]) +
                 (write ? "/write" : "/read"));
}
BENCHMARK(BM_NumaScheduler)
    ->ArgsProduct({{0, 1, 2}, {0, 1}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace e2e::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  using namespace e2e::bench;
  e2e::metrics::Table t(
      "Ablation: target NUMA policy (fio, 4 MiB blocks, 4 threads/LUN)");
  t.header({"policy", "read Gbps", "read CPU", "write Gbps", "write CPU"});
  static const char* names[] = {"default scheduler", "numactl (static, paper)",
                                "libnuma (dynamic, extension)"};
  for (int m = 0; m < 3; ++m) {
    t.row({names[m], e2e::metrics::Table::num(g_points[{m, false}].gbps),
           e2e::metrics::Table::num(g_points[{m, false}].cpu, 0) + "%",
           e2e::metrics::Table::num(g_points[{m, true}].gbps),
           e2e::metrics::Table::num(g_points[{m, true}].cpu, 0) + "%"});
  }
  std::fputs(t.to_string().c_str(), stdout);
  std::printf(
      "\npaper evaluated the static policy; the dynamic per-request\n"
      "scheduler is the future work it deferred (built here to compare).\n");
  return 0;
}
