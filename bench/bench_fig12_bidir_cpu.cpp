// Fig. 12: CPU utilization breakdown of the bi-directional Fig. 11 runs.
//
// Paper shape: GridFTP's bidirectional CPU saturates (its scaling limit);
// RFTP's CPU roughly doubles but stays far below saturation.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "scenarios.hpp"

namespace e2e::bench {
namespace {

BidirResult g_rftp, g_grid;

void BM_BidirRftpCpu(benchmark::State& state) {
  for (auto _ : state) {
    g_rftp = run_e2e_rftp_bidir(16ull << 30);
    benchmark::DoNotOptimize(g_rftp.src_usage.total());
  }
  state.counters["src_cpu_pct"] =
      g_rftp.src_usage.total_percent(g_rftp.window);
}
BENCHMARK(BM_BidirRftpCpu)->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_BidirGridFtpCpu(benchmark::State& state) {
  for (auto _ : state) {
    g_grid = run_e2e_gridftp_bidir(4ull << 30);
    benchmark::DoNotOptimize(g_grid.src_usage.total());
  }
  state.counters["src_cpu_pct"] =
      g_grid.src_usage.total_percent(g_grid.window);
}
BENCHMARK(BM_BidirGridFtpCpu)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace e2e::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  using namespace e2e::bench;
  print_cpu_breakdown("RFTP host (bi-directional)", g_rftp.src_usage,
                      g_rftp.window);
  print_cpu_breakdown("GridFTP host (bi-directional)", g_grid.src_usage,
                      g_grid.window);
  print_comparison(
      "Fig. 12 shapes",
      {
          {"GridFTP CPU per aggregate Gbps", 0.0,
           g_grid.src_usage.total_percent(g_grid.window) /
               g_grid.aggregate_gbps,
           "%/Gbps"},
          {"RFTP CPU per aggregate Gbps", 0.0,
           g_rftp.src_usage.total_percent(g_rftp.window) /
               g_rftp.aggregate_gbps,
           "%/Gbps"},
      });
  return 0;
}
