// e2e_transfer_sim — command-line front end to the simulation library.
//
//   e2e_transfer_sim quick                         # 40G link, mem-to-mem
//   e2e_transfer_sim e2e --gib 32 --numa 1         # full Fig. 5 path
//   e2e_transfer_sim wan --streams 4 --block 8m    # ANI 95 ms loop
//   e2e_transfer_sim san --write --numa 0          # iSER fio back-end
//   e2e_transfer_sim motivating                    # Sec 2.3 iperf study
//
// Options: --gib N, --block N[k|m|g], --streams N, --credits N, --numa 0|1,
//          --write, --duration SECONDS, --files N (multi-file e2e),
//          --trace FILE (Perfetto JSON), --report FILE (run report),
//          --fault-plan SPEC (scripted faults), --fault-seed N (random plan)
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "apps/apps.hpp"
#include "check/audit.hpp"
#include "exp/exp.hpp"
#include "exp/fleet.hpp"
#include "exp/kv_scenario.hpp"
#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "metrics/metrics.hpp"
#include "rftp/rftp.hpp"
#include "stats/stats.hpp"
#include "trace/trace.hpp"

#include "cli_flags.hpp"

using namespace e2e;

namespace {

struct Options {
  std::string scenario;
  std::uint64_t gib = 16;
  std::uint64_t block = 4ull << 20;
  int streams = 0;  // 0 = scenario default
  int credits = 16;
  bool numa = true;
  bool write = false;
  double duration_s = 2.0;
  int files = 1;
  std::string trace_file;
  std::string report_file;
  std::string fault_plan;       // scripted FaultPlan (see fault/plan.hpp)
  std::uint64_t fault_seed = 0; // != 0: seeded random plan instead
  int checkpoint = 1;           // rftp ledger checkpoint interval (blocks)
  int pairs = 4;                // fleet/kv: host pairs (one shard each)
  int shards = 1;               // fleet/kv: parallel worker threads
  std::uint64_t keys = 16384;     // kv: keys per server
  std::uint64_t ops = 0;          // kv: ops per pair (0 = derive from --gib)
  std::uint64_t value_size = 4096;  // kv: value bytes
  int kv_shards = 2;              // kv: per-server NUMA store shards
  int depth = 8;                  // kv: closed-loop workers per client
  std::string get_mode = "rpc";   // kv: rpc | read
  double zipf = 0.99;             // kv: key-popularity skew
  double put_frac = 0.1;          // kv: fraction of ops that are PUTs
  int remote_every = 16;          // kv: every Nth op to the next pair
  std::uint64_t seed = 1;         // kv: workload rng seed
  bool stats = true;            // always-on metrics + flight recorder
  std::string stats_out;        // --stats-out FILE (.csv -> CSV, else JSON)
  bool fast_forward = false;    // steady-state analytic collapse (rftp)
#ifdef NDEBUG
  bool audit = false;  // Release: opt in with --audit 1
#else
  bool audit = true;   // Debug: invariant audits on by default
#endif
};

[[noreturn]] void usage() {
  std::fputs(
      "usage: e2e_transfer_sim <quick|e2e|wan|san|motivating|fleet|kv> "
      "[options]\n"
      "  --gib N          dataset size in GiB (transfer scenarios)\n"
      "  --block N[k|m|g] RFTP block / fio I/O size (KiB/MiB/GiB suffix)\n"
      "  --streams N      parallel RFTP streams\n"
      "  --credits N      credit tokens per stream\n"
      "  --numa 0|1       NUMA tuning on/off\n"
      "  --write          fio writes instead of reads (san)\n"
      "  --duration S     measurement window in simulated seconds (san)\n"
      "  --files N        split the dataset into N files (e2e)\n"
      "  --trace FILE     write a Chrome/Perfetto trace-event JSON file\n"
      "  --report FILE    write a flat run report (.csv -> CSV, else JSON)\n"
      "  --fault-plan S   inject scripted faults, e.g.\n"
      "                   'loss@500ms:n=5;flap@1s:dur=20ms;qpkill@1500ms:qp=0;"
      "crash@1s:host=1,down=50ms'\n"
      "  --fault-seed N   inject a seeded random fault plan (rftp scenarios)\n"
      "  --checkpoint N   rftp acked-block ledger checkpoint interval in\n"
      "                   blocks (default 1 = every ack durable; 0 disables,\n"
      "                   so a receiver crash restarts from byte zero)\n"
      "  --pairs N        fleet/kv: host pairs, one engine shard each\n"
      "                   (default 4)\n"
      "  --shards N       fleet/kv: worker threads driving the shards, in\n"
      "                   [1, pairs]; results are bit-identical for any\n"
      "                   value (default 1)\n"
      "  --keys N         kv: keys per server (default 16384)\n"
      "  --ops N          kv: operations per pair (default: --gib x 1GiB\n"
      "                   divided by --value-size)\n"
      "  --value-size N[k|m]  kv: value bytes (default 4096)\n"
      "  --kv-shards N    kv: per-server NUMA store shards (default 2)\n"
      "  --depth N        kv: closed-loop client workers per pair\n"
      "                   (default 8)\n"
      "  --get-mode M     kv: GET path, 'rpc' (two-sided SEND/RECV) or\n"
      "                   'read' (two chained one-sided READs; default rpc)\n"
      "  --zipf X         kv: Zipf key-popularity skew, 0 = uniform\n"
      "                   (default 0.99)\n"
      "  --put-frac X     kv: PUT fraction of the op mix (default 0.1)\n"
      "  --remote-every N kv: every Nth op targets the next pair's server\n"
      "                   over the cross-shard connection (0 disables;\n"
      "                   default 16)\n"
      "  --seed N         kv: workload rng seed (default 1)\n"
      "  --audit 0|1      cross-layer invariant audits (default: on in\n"
      "                   Debug builds, off in Release)\n"
      "  --stats 0|1      per-entity metrics + flight recorder (default: on)\n"
      "  --stats-out FILE write the stats dump (.csv -> CSV, else JSON)\n"
      "  --fast-forward 0|1  collapse proven steady-state bulk phases into\n"
      "                   closed-form spans (default 0 = event-exact; final\n"
      "                   metrics are identical either way; rftp transfer\n"
      "                   scenarios only — inert for san/motivating/fleet)\n",
      stderr);
  std::exit(2);
}

Options parse(int argc, char** argv) {
  if (argc < 2) usage();
  Options o;
  o.scenario = argv[1];
  // Range ceilings are sanity bounds (catch pasted garbage), not tuning
  // limits: 1 EiB datasets, 4 Ki streams, a day of fio.
  constexpr std::uint64_t kMaxGib = 1ull << 30;
  for (int i = 2; i < argc; ++i) {
    auto need = [&](const char* flag) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        usage();
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--gib"))
      o.gib = cli::parse_u64(usage, "--gib", need("--gib"), 1, kMaxGib);
    else if (!std::strcmp(argv[i], "--block"))
      o.block = cli::parse_size(usage, "--block", need("--block"), 512,
                                1ull << 30);
    else if (!std::strcmp(argv[i], "--streams"))
      o.streams = cli::parse_int(usage, "--streams", need("--streams"), 1,
                                 4096);
    else if (!std::strcmp(argv[i], "--credits"))
      o.credits = cli::parse_int(usage, "--credits", need("--credits"), 1,
                                 65536);
    else if (!std::strcmp(argv[i], "--numa"))
      o.numa = cli::parse_bool01(usage, "--numa", need("--numa"));
    else if (!std::strcmp(argv[i], "--write"))
      o.write = true;
    else if (!std::strcmp(argv[i], "--duration"))
      o.duration_s = cli::parse_double(usage, "--duration",
                                       need("--duration"), 1e-3, 86400.0);
    else if (!std::strcmp(argv[i], "--files"))
      o.files = cli::parse_int(usage, "--files", need("--files"), 1, 1 << 20);
    else if (!std::strcmp(argv[i], "--trace"))
      o.trace_file = need("--trace");
    else if (!std::strcmp(argv[i], "--report"))
      o.report_file = need("--report");
    else if (!std::strcmp(argv[i], "--fault-plan"))
      o.fault_plan = need("--fault-plan");
    else if (!std::strcmp(argv[i], "--fault-seed"))
      o.fault_seed = cli::parse_u64(usage, "--fault-seed",
                                    need("--fault-seed"), 0,
                                    ~std::uint64_t{0});
    else if (!std::strcmp(argv[i], "--checkpoint"))
      o.checkpoint = cli::parse_int(usage, "--checkpoint",
                                    need("--checkpoint"), 0, 1 << 30);
    else if (!std::strcmp(argv[i], "--pairs"))
      o.pairs = cli::parse_int(usage, "--pairs", need("--pairs"), 1, 65536);
    else if (!std::strcmp(argv[i], "--shards"))
      o.shards = cli::parse_int(usage, "--shards", need("--shards"), 1,
                                65536);
    else if (!std::strcmp(argv[i], "--keys"))
      o.keys = cli::parse_u64(usage, "--keys", need("--keys"), 1, 1ull << 30);
    else if (!std::strcmp(argv[i], "--ops"))
      o.ops = cli::parse_u64(usage, "--ops", need("--ops"), 1, 1ull << 40);
    else if (!std::strcmp(argv[i], "--value-size"))
      o.value_size = cli::parse_size(usage, "--value-size",
                                     need("--value-size"), 1, 16ull << 20);
    else if (!std::strcmp(argv[i], "--kv-shards"))
      o.kv_shards = cli::parse_int(usage, "--kv-shards", need("--kv-shards"),
                                   1, 64);
    else if (!std::strcmp(argv[i], "--depth"))
      o.depth = cli::parse_int(usage, "--depth", need("--depth"), 1, 1024);
    else if (!std::strcmp(argv[i], "--get-mode")) {
      o.get_mode = need("--get-mode");
      if (o.get_mode != "rpc" && o.get_mode != "read") {
        std::fprintf(stderr, "bad --get-mode %s: must be rpc or read\n",
                     o.get_mode.c_str());
        usage();
      }
    } else if (!std::strcmp(argv[i], "--zipf"))
      o.zipf = cli::parse_double(usage, "--zipf", need("--zipf"), 0.0, 16.0);
    else if (!std::strcmp(argv[i], "--put-frac"))
      o.put_frac = cli::parse_double(usage, "--put-frac", need("--put-frac"),
                                     0.0, 1.0);
    else if (!std::strcmp(argv[i], "--remote-every"))
      o.remote_every = cli::parse_int(usage, "--remote-every",
                                      need("--remote-every"), 0, 1 << 20);
    else if (!std::strcmp(argv[i], "--seed"))
      o.seed = cli::parse_u64(usage, "--seed", need("--seed"), 0,
                              ~std::uint64_t{0});
    else if (!std::strcmp(argv[i], "--audit"))
      o.audit = cli::parse_bool01(usage, "--audit", need("--audit"));
    else if (!std::strcmp(argv[i], "--stats"))
      o.stats = cli::parse_bool01(usage, "--stats", need("--stats"));
    else if (!std::strcmp(argv[i], "--stats-out"))
      o.stats_out = need("--stats-out");
    else if (!std::strcmp(argv[i], "--fast-forward"))
      o.fast_forward =
          cli::parse_bool01(usage, "--fast-forward", need("--fast-forward"));
    else {
      std::fprintf(stderr, "unknown option: %s\n", argv[i]);
      usage();
    }
  }
  return o;
}

/// Optional tracing for one scenario run. Construct right before the
/// measured engine run — after any setup-phase runs, so the sampler tick
/// arms for the transfer itself — and call finish() after it to write the
/// requested files. With neither --trace nor --report the scope is inert
/// and no tracer is installed (the zero-cost disabled path).
class TraceScope {
 public:
  TraceScope(sim::Engine& eng, const Options& o) : o_(o) {
    if (o_.trace_file.empty() && o_.report_file.empty()) return;
    tracer_ = std::make_unique<trace::Tracer>(eng);
    tracer_->install();
    tracer_->enable_resource_sampler(kSamplePeriod);
    tracer_->note("scenario", o_.scenario);
    tracer_->note("block_bytes", static_cast<double>(o_.block));
    tracer_->note("numa_aware", o_.numa ? 1.0 : 0.0);
  }

  [[nodiscard]] trace::Tracer* get() noexcept { return tracer_.get(); }

  void finish() {
    if (!tracer_) return;
    tracer_->sample_now();  // closing snapshot at end-of-run time
    if (!o_.trace_file.empty()) {
      std::ofstream os(o_.trace_file);
      if (!os) {
        std::fprintf(stderr, "cannot write %s\n", o_.trace_file.c_str());
        std::exit(1);
      }
      tracer_->write_chrome_trace(os);
    }
    if (!o_.report_file.empty()) {
      std::ofstream os(o_.report_file);
      if (!os) {
        std::fprintf(stderr, "cannot write %s\n", o_.report_file.c_str());
        std::exit(1);
      }
      if (o_.report_file.size() >= 4 &&
          o_.report_file.compare(o_.report_file.size() - 4, 4, ".csv") == 0)
        tracer_->write_report_csv(os);
      else
        tracer_->write_report_json(os);
    }
    tracer_.reset();
  }

 private:
  // 10 ms of simulated time per utilization sample: fine enough to see
  // per-second throughput structure, coarse enough to keep traces small.
  static constexpr sim::SimDuration kSamplePeriod = 10 * sim::kMillisecond;
  const Options& o_;
  std::unique_ptr<trace::Tracer> tracer_;
};

/// Always-on (unless --stats 0) metric registry + flight recorder for one
/// scenario run. Construct alongside the other scopes; call finish() with
/// the scenario's exit code after it — a nonzero exit dumps the flight
/// window to stderr (if nothing dumped it earlier) and --stats-out writes
/// the aggregated metrics.
class StatsScope {
 public:
  StatsScope(sim::Engine& eng, const Options& o) : o_(o) {
    if (!o_.stats) return;
    stats_ = std::make_unique<stats::Registry>(eng);
    stats_->install();
  }

  [[nodiscard]] stats::Registry* get() noexcept { return stats_.get(); }

  void finish(int exit_code) {
    if (!stats_) return;
    if (exit_code != 0 && !stats_->flight_dump_triggered())
      stats_->trigger_flight_dump("cli:nonzero-exit");
    if (!o_.stats_out.empty()) {
      std::ofstream os(o_.stats_out);
      if (!os) {
        std::fprintf(stderr, "cannot write %s\n", o_.stats_out.c_str());
        std::exit(1);
      }
      if (o_.stats_out.size() >= 4 &&
          o_.stats_out.compare(o_.stats_out.size() - 4, 4, ".csv") == 0)
        stats_->write_csv(os);
      else
        stats_->write_json(os);
    }
    stats_.reset();
  }

 private:
  const Options& o_;
  std::unique_ptr<stats::Registry> stats_;
};

/// Optional cross-layer invariant auditing (e2e::check) for one scenario
/// run. On by default in Debug builds; Release opts in with --audit 1.
/// Construct once the engine exists; call failed() after the run — it
/// reconciles end-of-run conservation, prints the report, and returns
/// whether any invariant broke (which flips the process exit code).
class AuditScope {
 public:
  AuditScope(sim::Engine& eng, const Options& o) {
    if (o.audit) auditor_ = std::make_unique<check::Auditor>(eng);
  }

  [[nodiscard]] bool failed() {
    if (!auditor_) return false;
    auditor_->finalize();
    std::ostringstream os;
    auditor_->report(os);
    std::fputs(os.str().c_str(), stderr);
    const bool bad = !auditor_->ok();
    auditor_.reset();
    return bad;
  }

 private:
  std::unique_ptr<check::Auditor> auditor_;
};

/// Builds and validates the scripted/random fault plan, or nullopt when
/// neither --fault-plan nor --fault-seed was given. Called *before* the
/// session is constructed so the session config can derive its fast-forward
/// quiet horizon (cfg.ff_quiet_after) from the plan's last scheduled event.
std::optional<fault::FaultPlan> make_fault_plan(const Options& o, int links,
                                                int streams) {
  if (o.fault_plan.empty() && o.fault_seed == 0) return std::nullopt;
  fault::FaultPlan plan;
  if (!o.fault_plan.empty()) {
    // A malformed plan is an operator typo, not a crash: report it the
    // same way an unknown flag is reported (usage + exit 2).
    try {
      plan = fault::FaultPlan::parse(o.fault_plan);
    } catch (const std::invalid_argument& ex) {
      std::fprintf(stderr, "bad --fault-plan: %s\n", ex.what());
      usage();
    }
    for (const auto& ev : plan.events) {
      if (ev.type == fault::FaultType::kQpKill && ev.qp >= streams) {
        std::fprintf(stderr,
                     "bad --fault-plan: qp=%d out of range (streams=%d)\n",
                     ev.qp, streams);
        usage();
      }
      if (ev.type == fault::FaultType::kCrash && ev.host > 1) {
        std::fprintf(stderr,
                     "bad --fault-plan: host=%d out of range (hosts are "
                     "0=sender, 1=receiver)\n",
                     ev.host);
        usage();
      }
    }
  } else {
    fault::FaultPlan::RandomParams rp;
    rp.links = links;
    rp.qps = streams;
    plan = fault::FaultPlan::random(o.fault_seed, rp);
  }
  return plan;
}

/// Applies --fast-forward to an rftp session config. The quiet horizon is
/// the fault plan's last scheduled event plus generous settling slack
/// (grant-retry pacing is 2*rtt; 20x that plus a fixed margin buries any
/// recovery transient), so the detector only ever arms after every scripted
/// perturbation has fired and drained. A crash plan whose down-time is
/// unbounded yields kTimeInfinity and the session never builds the
/// detector — honestly event-exact.
void apply_fast_forward(rftp::RftpConfig& cfg, const Options& o,
                        const std::optional<fault::FaultPlan>& plan,
                        sim::SimDuration max_rtt) {
  cfg.fast_forward = o.fast_forward;
  if (!o.fast_forward) return;
  const sim::SimDuration slack = 20 * max_rtt + 100 * sim::kMillisecond;
  cfg.ff_quiet_after = plan ? plan->quiet_after(slack) : 0;
}

/// Prints the fast-forward engagement summary after a transfer run.
void ff_summary(const Options& o, const rftp::TransferResult& r) {
  if (!o.fast_forward) return;
  std::printf("fast-forward: %llu span%s, %llu blocks collapsed, %.3f s "
              "skipped\n",
              static_cast<unsigned long long>(r.ff_spans),
              r.ff_spans == 1 ? "" : "s",
              static_cast<unsigned long long>(r.ff_blocks),
              sim::to_seconds(r.ff_skipped_ns));
}

/// Optional fault injection for one rftp scenario run. Construct after the
/// session (so a qpkill in the plan can map to kill_stream) and before the
/// measured engine run, with the plan make_fault_plan() built earlier; call
/// summary() afterwards. With no plan the scope is inert.
class FaultScope {
 public:
  FaultScope(sim::Engine& eng, std::optional<fault::FaultPlan> plan,
             const std::vector<net::Link*>& links,
             rftp::RftpSession* sess, int streams) {
    if (!plan) return;
    std::printf("fault plan: %s\n", plan->to_string().c_str());
    inj_ = std::make_unique<fault::FaultInjector>(eng, std::move(*plan));
    for (auto* l : links) inj_->attach(*l);
    if (sess != nullptr && streams > 0) {
      inj_->set_qp_kill_handler(
          [sess, streams](int qp) { sess->kill_stream(qp % streams); });
      inj_->set_crash_handler([sess](int host, sim::SimDuration down) {
        sess->crash_host(host, down);
      });
    }
    inj_->arm();
  }

  void summary(const rftp::RftpSession& sess,
               const rftp::TransferResult& r) const {
    if (!inj_) return;
    std::printf(
        "faults: %llu injected, %llu messages dropped; "
        "%llu retransmits, %llu failovers; complete=%s integrity=%s\n",
        static_cast<unsigned long long>(inj_->faults_injected()),
        static_cast<unsigned long long>(inj_->messages_failed()),
        static_cast<unsigned long long>(sess.retransmissions),
        static_cast<unsigned long long>(sess.failovers),
        r.complete ? "yes" : "NO", r.integrity_ok ? "ok" : "FAILED");
    if (r.crashes > 0)
      std::printf(
          "crashes: %llu crashed, %llu resumed; %llu checkpoints, "
          "%llu blocks rolled back, %llu false suspicions\n",
          static_cast<unsigned long long>(r.crashes),
          static_cast<unsigned long long>(r.resumes),
          static_cast<unsigned long long>(sess.checkpoints),
          static_cast<unsigned long long>(sess.rolled_back_blocks),
          static_cast<unsigned long long>(sess.watchdog().false_suspicions()));
  }

 private:
  std::unique_ptr<fault::FaultInjector> inj_;
};

int run_quick(const Options& o) {
  sim::Engine eng;
  numa::Host a(eng, model::front_end_lan_host("a"));
  numa::Host b(eng, model::front_end_lan_host("b"));
  rdma::Device da(a, a.profile().nics[0]);
  rdma::Device db(b, b.profile().nics[0]);
  auto link = net::make_roce_lan(eng, "wire");
  link->bind_endpoints(&a, &b);
  numa::Process pa(a, "client", numa::NumaBinding::bound(da.node()));
  numa::Process pb(b, "server", numa::NumaBinding::bound(db.node()));
  rftp::RftpConfig cfg;
  cfg.streams = o.streams > 0 ? o.streams : 1;
  cfg.block_bytes = o.block;
  cfg.credits_per_stream = o.credits;
  cfg.numa_aware = o.numa;
  cfg.checkpoint_blocks = o.checkpoint;
  auto plan = make_fault_plan(o, 1, cfg.streams);
  apply_fast_forward(cfg, o, plan, link->rtt());
  rftp::RftpSession sess({&pa, {&da}}, {&pb, {&db}}, {link.get()}, cfg);
  rftp::MemorySource src(o.gib << 30, numa::Placement::on(0));
  rftp::MemorySink dst;
  StatsScope ss(eng, o);
  AuditScope as(eng, o);
  TraceScope ts(eng, o);
  FaultScope fs(eng, std::move(plan), {link.get()}, &sess, cfg.streams);
  const auto r = exp::run_task(eng, sess.run(src, dst, o.gib << 30));
  if (auto* tr = ts.get()) tr->note("goodput_gbps", r.goodput_gbps);
  ts.finish();
  std::printf("quick: %llu GiB in %.2f s -> %.1f Gbps\n",
              static_cast<unsigned long long>(o.gib), r.elapsed_s,
              r.goodput_gbps);
  std::printf("digest: %016llx\n",
              static_cast<unsigned long long>(sess.sink_digest()));
  ff_summary(o, r);
  fs.summary(sess, r);
  const int rc = r.complete && r.integrity_ok && !as.failed() ? 0 : 1;
  ss.finish(rc);
  return rc;
}

int run_e2e(const Options& o) {
  exp::EndToEndTestbed tb(o.numa, o.gib << 30);
  tb.start();
  numa::Process sp(*tb.src_fe, "client", numa::NumaBinding::os_default());
  numa::Process rp(*tb.dst_fe, "server", numa::NumaBinding::os_default());
  rftp::RftpConfig cfg;
  cfg.numa_aware = o.numa;
  cfg.block_bytes = o.block;
  cfg.credits_per_stream = o.credits;
  cfg.checkpoint_blocks = o.checkpoint;
  if (o.streams > 0) cfg.streams = o.streams;
  auto plan =
      make_fault_plan(o, static_cast<int>(tb.links().size()), cfg.streams);
  sim::SimDuration max_rtt = 0;
  for (const auto* l : tb.links()) max_rtt = std::max(max_rtt, l->rtt());
  apply_fast_forward(cfg, o, plan, max_rtt);
  rftp::RftpSession sess({&sp, tb.src_roce()}, {&rp, tb.dst_roce()},
                         tb.links(), cfg);
  exp::SanSection* san = tb.src_san.get();
  auto locality = [san](std::uint64_t off, std::uint64_t) {
    return san->fe_node_of(off);
  };
  metrics::ThroughputMeter meter(tb.eng, sim::kSecond);
  // After tb.start(): the testbed's setup run has drained, so the sampler
  // armed here stays alive exactly for the measured transfer.
  StatsScope ss(tb.eng, o);
  AuditScope as(tb.eng, o);
  TraceScope ts(tb.eng, o);
  FaultScope fs(tb.eng, std::move(plan), tb.links(), &sess, cfg.streams);
  rftp::TransferResult r;
  if (o.files > 1) {
    rftp::FileSet sset(*tb.src_fs);
    sset.create_filled("part", o.files, (o.gib << 30) / o.files / 512 * 512);
    rftp::FileSet dset(*tb.dst_fs);
    dset.create_empty("part-copy", o.files,
                      (o.gib << 30) / o.files / 512 * 512);
    rftp::FileSetSource src(sset, locality);
    rftp::FileSetSink dst(dset);
    r = exp::run_task(tb.eng, sess.run(src, dst, sset.total_bytes(), &meter));
  } else {
    rftp::FileSource src(*tb.src_fs, *tb.src_file, true, locality);
    rftp::FileSink dst(*tb.dst_fs, *tb.dst_file);
    r = exp::run_task(tb.eng, sess.run(src, dst, tb.dataset_bytes, &meter));
  }
  if (auto* tr = ts.get()) tr->note("goodput_gbps", r.goodput_gbps);
  ts.finish();
  std::printf("e2e (%s): %.1f Gbps over the full SAN->RoCE->SAN path\n",
              o.numa ? "numa-tuned" : "untuned", r.goodput_gbps);
  std::printf("per-second series: ");
  for (double g : meter.series_gbps()) std::printf("%.0f ", g);
  std::printf("Gbps\n");
  ff_summary(o, r);
  fs.summary(sess, r);
  const int rc = r.complete && r.integrity_ok && !as.failed() ? 0 : 1;
  ss.finish(rc);
  return rc;
}

int run_wan(const Options& o) {
  exp::WanTestbed tb;
  rftp::RftpConfig cfg;
  cfg.streams = o.streams > 0 ? o.streams : 4;
  cfg.block_bytes = o.block;
  cfg.credits_per_stream = o.credits;
  cfg.checkpoint_blocks = o.checkpoint;
  auto plan = make_fault_plan(o, 1, cfg.streams);
  apply_fast_forward(cfg, o, plan, tb.link->rtt());
  rftp::RftpSession sess({tb.a_proc.get(), {tb.a_dev.get()}},
                         {tb.b_proc.get(), {tb.b_dev.get()}},
                         {tb.link.get()}, cfg);
  rftp::MemorySource src(o.gib << 30, numa::Placement::on(0));
  rftp::MemorySink dst;
  StatsScope ss(tb.eng, o);
  AuditScope as(tb.eng, o);
  TraceScope ts(tb.eng, o);
  FaultScope fs(tb.eng, std::move(plan), {tb.link.get()}, &sess,
                cfg.streams);
  const auto r = exp::run_task(tb.eng, sess.run(src, dst, o.gib << 30));
  if (auto* tr = ts.get()) tr->note("goodput_gbps", r.goodput_gbps);
  ts.finish();
  std::printf(
      "wan (rtt 95 ms): %.1f Gbps (%.0f%% of 40G); in-flight window %.0f MB "
      "vs BDP 475 MB\n",
      r.goodput_gbps, 100.0 * r.goodput_gbps / 40.0,
      static_cast<double>(cfg.streams) * cfg.credits_per_stream *
          static_cast<double>(cfg.block_bytes) / 1e6);
  ff_summary(o, r);
  fs.summary(sess, r);
  const int rc = r.complete && r.integrity_ok && !as.failed() ? 0 : 1;
  ss.finish(rc);
  return rc;
}

int run_san(const Options& o) {
  exp::SanConfig scfg;
  scfg.numa_tuned = o.numa;
  scfg.lun_bytes = 4ull << 30;
  exp::SanTestbed tb(scfg);
  tb.start();
  apps::FioOptions opts;
  opts.block_bytes = o.block;
  opts.write = o.write;
  opts.duration = sim::from_seconds(o.duration_s);
  StatsScope ss(tb.eng, o);
  AuditScope as(tb.eng, o);
  TraceScope ts(tb.eng, o);
  const auto r = tb.run_fio(opts, 4);
  if (auto* tr = ts.get()) {
    tr->note("gbps", r.gbps);
    tr->note("target_cpu_pct", r.target_cpu_pct);
  }
  ts.finish();
  std::printf("san %s (%s): %.1f Gbps, target CPU %.0f%%\n",
              o.write ? "write" : "read", o.numa ? "numa-tuned" : "untuned",
              r.gbps, r.target_cpu_pct);
  const int rc = as.failed() ? 1 : 0;
  ss.finish(rc);
  return rc;
}

int run_fleet(const Options& o) {
  exp::FleetParams fp;
  fp.pairs = o.pairs;
  fp.shards = o.shards;
  fp.bytes_per_pair = o.gib << 30;
  fp.block_bytes = o.block;
  fp.streams = o.streams > 0 ? o.streams : 3;
  fp.credits = o.credits;
  fp.checkpoint_blocks = o.checkpoint;
  fp.fault_seed = o.fault_seed;
  fp.fast_forward = o.fast_forward;  // accepted but inert (cluster guard)
  fp.audit = o.audit;
  fp.stats = o.stats;
  fp.trace = !o.trace_file.empty();
  const auto r = exp::run_fleet(fp);
  std::printf(
      "fleet: %d pairs x %llu GiB on %d shard worker%s -> %.1f Gbps "
      "aggregate\n",
      fp.pairs, static_cast<unsigned long long>(o.gib), fp.shards,
      fp.shards == 1 ? "" : "s",
      r.aggregate_gbps);
  std::printf(
      "fleet: %llu events in %.2f s wall (%.0f ev/s), %llu windows, "
      "%llu cross-shard posts, %llu ring writes\n",
      static_cast<unsigned long long>(r.sim_events), r.wall_seconds,
      r.wall_seconds > 0 ? static_cast<double>(r.sim_events) / r.wall_seconds
                         : 0.0,
      static_cast<unsigned long long>(r.windows),
      static_cast<unsigned long long>(r.cross_posts),
      static_cast<unsigned long long>(r.ring_completed));
  // The digest is the golden-determinism handle: byte-identical for any
  // --shards value (tests diff this line across worker counts).
  std::printf("digest: %s\n", r.digest.c_str());
  if (!r.audit_ok)
    std::printf("fleet: %llu audit violation(s)\n",
                static_cast<unsigned long long>(r.audit_violations));
  if (!o.trace_file.empty()) {
    std::ofstream os(o.trace_file);
    if (!os) {
      std::fprintf(stderr, "cannot write %s\n", o.trace_file.c_str());
      return 1;
    }
    os << r.trace_json;
  }
  if (!o.stats_out.empty()) {
    // Merged cluster dump is JSON-only (one write_json document per shard).
    std::ofstream os(o.stats_out);
    if (!os) {
      std::fprintf(stderr, "cannot write %s\n", o.stats_out.c_str());
      return 1;
    }
    os << r.stats_json;
  }
  return r.complete && r.integrity_ok && r.audit_ok ? 0 : 1;
}

int run_kv(const Options& o) {
  exp::KvParams kp;
  kp.pairs = o.pairs;
  kp.shards = o.shards;
  kp.keys = o.keys;
  kp.value_bytes = o.value_size;
  kp.ops_per_pair =
      o.ops > 0 ? o.ops
                : std::max<std::uint64_t>(1, (o.gib << 30) / o.value_size);
  kp.store_shards = o.kv_shards;
  kp.depth = o.depth;
  kp.get_via_read = o.get_mode == "read";
  kp.zipf_theta = o.zipf;
  kp.put_frac = o.put_frac;
  kp.remote_every = o.remote_every;
  kp.seed = o.seed;
  kp.fault_seed = o.fault_seed;
  kp.audit = o.audit;
  kp.stats = o.stats;
  const auto r = exp::run_kv(kp);
  std::printf(
      "kv: %d pairs x %llu ops (%llu B values, %s GETs) on %d shard "
      "worker%s -> %.3f Mops/s aggregate\n",
      kp.pairs, static_cast<unsigned long long>(kp.ops_per_pair),
      static_cast<unsigned long long>(kp.value_bytes), o.get_mode.c_str(),
      kp.shards, kp.shards == 1 ? "" : "s", r.aggregate_mops);
  std::printf(
      "kv: get p50/p99/p999 = %.1f/%.1f/%.1f us, put = %.1f/%.1f/%.1f us, "
      "%llu retries, %llu failed\n",
      static_cast<double>(r.get_p50_ns) / 1e3,
      static_cast<double>(r.get_p99_ns) / 1e3,
      static_cast<double>(r.get_p999_ns) / 1e3,
      static_cast<double>(r.put_p50_ns) / 1e3,
      static_cast<double>(r.put_p99_ns) / 1e3,
      static_cast<double>(r.put_p999_ns) / 1e3,
      static_cast<unsigned long long>(r.rpc_retries),
      static_cast<unsigned long long>(r.failed_ops));
  std::printf(
      "kv: %llu events in %.2f s wall (%.0f ev/s), %llu windows, "
      "%llu cross-shard posts, %llu remote ops\n",
      static_cast<unsigned long long>(r.sim_events), r.wall_seconds,
      r.wall_seconds > 0 ? static_cast<double>(r.sim_events) / r.wall_seconds
                         : 0.0,
      static_cast<unsigned long long>(r.windows),
      static_cast<unsigned long long>(r.cross_posts),
      static_cast<unsigned long long>(r.remote_ops));
  // The digest is the golden-determinism handle: byte-identical for any
  // --shards value (tests diff this line across worker counts).
  std::printf("digest: %s\n", r.digest.c_str());
  if (!r.audit_ok)
    std::printf("kv: %llu audit violation(s)\n",
                static_cast<unsigned long long>(r.audit_violations));
  if (!o.stats_out.empty()) {
    std::ofstream os(o.stats_out);
    if (!os) {
      std::fprintf(stderr, "cannot write %s\n", o.stats_out.c_str());
      return 1;
    }
    os << r.stats_json;
  }
  return r.complete && r.audit_ok ? 0 : 1;
}

int run_motivating(const Options& o) {
  bool audit_bad = false;
  for (const bool tuned : {false, true}) {
    exp::FrontEndPair pair;
    // Each iteration has its own engine and registry; --stats-out keeps
    // the tuned run's dump (the second write overwrites the first).
    StatsScope ss(pair.eng, o);
    AuditScope as(pair.eng, o);
    apps::IperfConfig cfg;
    cfg.bidirectional = true;
    cfg.numa_tuned = tuned;
    cfg.sender_buffer_bytes = 256ull << 20;
    cfg.duration = 3 * sim::kSecond;
    // Each iteration has its own engine; trace the tuned run.
    std::unique_ptr<TraceScope> ts;
    if (tuned) ts = std::make_unique<TraceScope>(pair.eng, o);
    const auto r =
        run_iperf(pair.eng, *pair.a, *pair.b, pair.iperf_links(), cfg);
    if (ts) {
      if (auto* tr = ts->get()) tr->note("aggregate_gbps", r.aggregate_gbps);
      ts->finish();
    }
    std::printf("iperf bidirectional, %s: %.1f Gbps aggregate\n",
                tuned ? "numa-tuned" : "default scheduler",
                r.aggregate_gbps);
    const bool bad = as.failed();
    audit_bad |= bad;
    ss.finish(bad ? 1 : 0);
  }
  return audit_bad ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse(argc, argv);
  if (o.scenario == "fleet" || o.scenario == "kv") {
    if (o.pairs < 1) {
      std::fprintf(stderr, "bad --pairs %d: need at least one pair\n",
                   o.pairs);
      usage();
    }
    if (o.shards < 1 || o.shards > o.pairs) {
      std::fprintf(stderr,
                   "bad --shards %d: must be in [1, --pairs=%d] (one engine "
                   "shard per host pair)\n",
                   o.shards, o.pairs);
      usage();
    }
    if (!o.fault_plan.empty()) {
      std::fprintf(stderr,
                   "%s uses --fault-seed; a scripted --fault-plan targets "
                   "a single session\n",
                   o.scenario.c_str());
      usage();
    }
    return o.scenario == "kv" ? run_kv(o) : run_fleet(o);
  }
  if (o.shards != 1) {
    std::fprintf(stderr,
                 "bad --shards %d: only the fleet scenario is sharded (%s "
                 "runs one engine)\n",
                 o.shards, o.scenario.c_str());
    usage();
  }
  if (o.scenario == "quick") return run_quick(o);
  if (o.scenario == "e2e") return run_e2e(o);
  if (o.scenario == "wan") return run_wan(o);
  if (o.scenario == "san") return run_san(o);
  if (o.scenario == "motivating") return run_motivating(o);
  usage();
}
