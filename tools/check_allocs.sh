#!/usr/bin/env sh
# Allocation-budget regression check (ctest -L perf).
#
# Runs the e2e transfer scenario at two dataset sizes under the
# libcount_allocs.so LD_PRELOAD counter and derives the steady-state
# allocation cost per simulated GiB from the delta — fixed setup cost
# (engine, hosts, pools, trace interning) cancels out. Fails when the
# per-GiB cost exceeds the pinned budget.
#
#   check_allocs.sh <libcount_allocs.so> <e2e_transfer_sim> <budget-per-gib> \
#                   [extra scenario flags...]
#
# Extra flags are forwarded to both scenario runs, so the budget can be
# pinned per configuration (e.g. `--stats 0` vs `--stats 1`). The scenario
# defaults to e2e; E2E_ALLOC_SCENARIO overrides it (the fast-forward leg
# uses quick, where the detector engages, to pin the analytic span path to
# the same per-GiB budget — collapsed blocks must not allocate).
set -eu

LIB=$1
BIN=$2
BUDGET=$3
shift 3

SCENARIO=${E2E_ALLOC_SCENARIO:-e2e}
SMALL_GIB=1
LARGE_GIB=3

OUT_SMALL=$(mktemp)
OUT_LARGE=$(mktemp)
trap 'rm -f "$OUT_SMALL" "$OUT_LARGE"' EXIT

COUNT_ALLOCS_OUT="$OUT_SMALL" LD_PRELOAD="$LIB" \
    "$BIN" "$SCENARIO" --gib "$SMALL_GIB" "$@" > /dev/null
COUNT_ALLOCS_OUT="$OUT_LARGE" LD_PRELOAD="$LIB" \
    "$BIN" "$SCENARIO" --gib "$LARGE_GIB" "$@" > /dev/null

SMALL=$(cat "$OUT_SMALL")
LARGE=$(cat "$OUT_LARGE")
PER_GIB=$(( (LARGE - SMALL) / (LARGE_GIB - SMALL_GIB) ))

echo "allocs @${SMALL_GIB}GiB=$SMALL @${LARGE_GIB}GiB=$LARGE"
echo "steady-state allocations per simulated GiB: $PER_GIB (budget $BUDGET)"

if [ "$PER_GIB" -gt "$BUDGET" ]; then
    echo "FAIL: allocation budget exceeded" >&2
    exit 1
fi
echo "OK"
