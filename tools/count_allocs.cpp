// LD_PRELOAD malloc counter: counts heap allocation calls (malloc, calloc,
// realloc, aligned variants, C++ operator new via malloc) made by the host
// process and writes the total to the file named by $COUNT_ALLOCS_OUT on
// exit (stderr when unset).
//
//   COUNT_ALLOCS_OUT=/tmp/n LD_PRELOAD=./libcount_allocs.so ./e2e_transfer_sim e2e --gib 1
//
// The perf regression test (ctest -L perf) runs two transfer sizes and
// pins the steady-state allocation delta per simulated GiB — the guard
// that keeps the protocol hot path allocation-free. Not built in
// sanitizer configurations (sanitizers own the allocator).
//
// dlsym(RTLD_NEXT, "calloc") itself calls calloc on glibc, so the resolver
// serves that recursion from a small static arena.

#include <dlfcn.h>
#include <unistd.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace {

std::atomic<std::uint64_t> g_allocs{0};

using MallocFn = void* (*)(std::size_t);
using CallocFn = void* (*)(std::size_t, std::size_t);
using ReallocFn = void* (*)(void*, std::size_t);
using FreeFn = void (*)(void*);
using AlignedFn = void* (*)(std::size_t, std::size_t);

// Bootstrap arena for allocations issued while dlsym resolves the real
// functions (glibc's dlsym calloc's). Never freed; tiny and process-lived.
alignas(std::max_align_t) char g_boot[4096];
std::size_t g_boot_used = 0;

bool from_boot(const void* p) {
  return p >= static_cast<const void*>(g_boot) &&
         p < static_cast<const void*>(g_boot + sizeof(g_boot));
}

void* boot_alloc(std::size_t n) {
  n = (n + alignof(std::max_align_t) - 1) & ~(alignof(std::max_align_t) - 1);
  if (g_boot_used + n > sizeof(g_boot)) abort();
  void* p = g_boot + g_boot_used;
  g_boot_used += n;
  return p;
}

bool g_resolving = false;

template <typename Fn>
Fn resolve(const char* name) {
  g_resolving = true;
  Fn fn = reinterpret_cast<Fn>(dlsym(RTLD_NEXT, name));
  g_resolving = false;
  if (fn == nullptr) abort();
  return fn;
}

struct Report {
  ~Report() {
    const std::uint64_t n = g_allocs.load(std::memory_order_relaxed);
    char buf[32];
    const int len = std::snprintf(buf, sizeof(buf), "%llu\n",
                                  static_cast<unsigned long long>(n));
    const char* path = std::getenv("COUNT_ALLOCS_OUT");
    if (path != nullptr) {
      if (std::FILE* f = std::fopen(path, "w")) {
        std::fwrite(buf, 1, static_cast<std::size_t>(len), f);
        std::fclose(f);
        return;
      }
    }
    // fwrite on stderr may allocate; write(2) does not.
    [[maybe_unused]] const auto rc = write(2, buf, static_cast<std::size_t>(len));
  }
};
Report g_report;

}  // namespace

extern "C" {

void* malloc(std::size_t n) {
  static MallocFn real = nullptr;
  if (real == nullptr) {
    if (g_resolving) return boot_alloc(n);
    real = resolve<MallocFn>("malloc");
  }
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return real(n);
}

void* calloc(std::size_t n, std::size_t sz) {
  static CallocFn real = nullptr;
  if (real == nullptr) {
    if (g_resolving) return std::memset(boot_alloc(n * sz), 0, n * sz);
    real = resolve<CallocFn>("calloc");
  }
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return real(n, sz);
}

void* realloc(void* p, std::size_t n) {
  static ReallocFn real = nullptr;
  if (real == nullptr) real = resolve<ReallocFn>("realloc");
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (from_boot(p)) {  // migrate a bootstrap block to the real heap
    void* q = malloc(n);
    if (q != nullptr) std::memcpy(q, p, n);
    return q;
  }
  return real(p, n);
}

void free(void* p) {
  static FreeFn real = nullptr;
  if (p == nullptr || from_boot(p)) return;
  if (real == nullptr) real = resolve<FreeFn>("free");
  real(p);
}

void* aligned_alloc(std::size_t align, std::size_t n) {
  static AlignedFn real = nullptr;
  if (real == nullptr) real = resolve<AlignedFn>("aligned_alloc");
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return real(align, n);
}

void* memalign(std::size_t align, std::size_t n) {
  static AlignedFn real = nullptr;
  if (real == nullptr) real = resolve<AlignedFn>("memalign");
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return real(align, n);
}

}  // extern "C"
