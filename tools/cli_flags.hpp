// Shared validated command-line flag parsing for the tools/ front ends.
//
// Every numeric flag goes through one of these helpers so malformed values
// ("--streams x", "--gib 12q", "--numa 2", out-of-range counts) are rejected
// uniformly: a "bad <flag> '<value>': <why>" line on stderr, then the
// caller-supplied usage() (which prints the option table and exits 2).
// strtol-family leniency — silently parsing a prefix and ignoring trailing
// garbage, or wrapping out-of-range values — is exactly what a sweep script
// must not be allowed to hit silently.
#pragma once

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace e2e::cli {

/// The caller's usage printer; must not return (print options, exit 2).
using UsageFn = void (*)();

[[noreturn]] inline void fail(UsageFn usage, const char* flag,
                              const char* value, const char* why) {
  std::fprintf(stderr, "bad %s '%s': %s\n", flag, value, why);
  usage();
  std::abort();  // unreachable: usage() exits; keeps [[noreturn]] honest
}

/// Unsigned integer in [lo, hi]. Rejects empty strings, signs, trailing
/// garbage, and out-of-range values (including strtoull's silent wrap of
/// negative input).
inline std::uint64_t parse_u64(UsageFn usage, const char* flag,
                               const char* s, std::uint64_t lo,
                               std::uint64_t hi) {
  if (s[0] == '\0' || s[0] == '-' || s[0] == '+')
    fail(usage, flag, s, "expected an unsigned integer");
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0')
    fail(usage, flag, s, "expected an unsigned integer");
  if (errno == ERANGE || v < lo || v > hi)
    fail(usage, flag, s, "out of range");
  return static_cast<std::uint64_t>(v);
}

/// Signed integer in [lo, hi].
inline int parse_int(UsageFn usage, const char* flag, const char* s,
                     long long lo, long long hi) {
  if (s[0] == '\0') fail(usage, flag, s, "expected an integer");
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(s, &end, 10);
  if (end == s || *end != '\0')
    fail(usage, flag, s, "expected an integer");
  if (errno == ERANGE || v < lo || v > hi)
    fail(usage, flag, s, "out of range");
  return static_cast<int>(v);
}

/// Finite double in [lo, hi].
inline double parse_double(UsageFn usage, const char* flag, const char* s,
                           double lo, double hi) {
  if (s[0] == '\0') fail(usage, flag, s, "expected a number");
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (end == s || *end != '\0') fail(usage, flag, s, "expected a number");
  if (errno == ERANGE || !(v >= lo && v <= hi))
    fail(usage, flag, s, "out of range");
  return v;
}

/// Boolean switch value: exactly "0" or "1".
inline bool parse_bool01(UsageFn usage, const char* flag, const char* s) {
  if (s[0] != '\0' && s[1] == '\0') {
    if (s[0] == '0') return false;
    if (s[0] == '1') return true;
  }
  fail(usage, flag, s, "expected 0 or 1");
}

/// Byte size with an optional k/m/g (KiB/MiB/GiB) suffix, in [lo, hi].
/// Fractional values are allowed before the suffix ("0.5m"); the result is
/// truncated to whole bytes.
inline std::uint64_t parse_size(UsageFn usage, const char* flag,
                                const char* s, std::uint64_t lo,
                                std::uint64_t hi) {
  if (s[0] == '\0' || s[0] == '-') fail(usage, flag, s, "expected a size");
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (end == s) fail(usage, flag, s, "expected a size");
  std::uint64_t mult = 1;
  if (*end == 'k' || *end == 'K') mult = 1024, ++end;
  else if (*end == 'm' || *end == 'M') mult = 1ull << 20, ++end;
  else if (*end == 'g' || *end == 'G') mult = 1ull << 30, ++end;
  if (*end != '\0')  // trailing garbage ("4mb", "12q", ...)
    fail(usage, flag, s, "expected N with an optional k/m/g suffix");
  const double bytes = v * static_cast<double>(mult);
  if (errno == ERANGE || !(bytes >= 0.0) ||
      bytes > static_cast<double>(std::numeric_limits<std::uint64_t>::max()))
    fail(usage, flag, s, "out of range");
  const auto b = static_cast<std::uint64_t>(bytes);
  if (b < lo || b > hi) fail(usage, flag, s, "out of range");
  return b;
}

}  // namespace e2e::cli
