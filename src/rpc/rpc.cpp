#include "rpc/rpc.hpp"

namespace e2e::rpc {

namespace {

/// Shared pump-loop shape: take the first queued WR (blocking), drain up
/// to `batch_max - 1` more without suspending, post the chain behind one
/// doorbell. An idle queue therefore flushes immediately — batching only
/// coalesces WRs that were already enqueued at the same instant.
sim::Task<> pump_loop(rdma::QueuePair& qp, numa::Thread& th,
                      sim::Channel<rdma::SendWr>& out,
                      std::vector<rdma::SendWr>& batch,
                      std::size_t batch_max, std::uint64_t& doorbells,
                      std::uint64_t& doorbell_wrs) {
  for (;;) {
    auto first = co_await out.recv();
    if (!first) co_return;  // endpoint destroyed
    batch.clear();
    batch.push_back(std::move(*first));
    while (batch.size() < batch_max) {
      auto more = out.try_recv();
      if (!more) break;
      batch.push_back(std::move(*more));
    }
    ++doorbells;
    doorbell_wrs += batch.size();
    co_await qp.post_send_batch(th, batch);
    // Release payload references before the next blocking wait: a MsgPtr
    // parked in the scratch vector would otherwise pin its pool block (and
    // look like an in-flight reference to unique()-gated reusers) for as
    // long as the pump stays idle.
    batch.clear();
  }
}

/// Drains send completions so the send CQ never grows without bound. The
/// completions carry no information the rpc layer acts on directly —
/// failed sends surface as retry timeouts — but each one still costs the
/// reaping thread its poll cycles, batched like the receive side.
sim::Task<> send_reaper_loop(rdma::QueuePair& qp, numa::Thread& th) {
  const auto& cm = th.host().costs();
  for (;;) {
    (void)co_await qp.send_cq().wait(th);
    std::uint64_t extra = 0;
    while (qp.send_cq().try_poll().has_value()) ++extra;
    if (extra > 0)
      co_await th.compute(
          static_cast<double>(extra) * cm.rdma_poll_extra_cqe_cycles,
          metrics::CpuCategory::kUserProto);
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// RpcClient

RpcClient::RpcClient(rdma::QueuePair& qp, numa::Thread& post_th,
                     numa::Thread& reap_th, mem::Buffer& ring_buf,
                     RpcConfig cfg)
    : qp_(qp),
      post_th_(post_th),
      reap_th_(reap_th),
      buf_(ring_buf),
      cfg_(cfg),
      table_(qp.device().host().engine()),
      window_(qp.device().host().engine(),
              static_cast<std::int64_t>(cfg.window)),
      out_(qp.device().host().engine()) {}

sim::Task<> RpcClient::start() {
  refill_batch_.clear();
  for (std::size_t i = 0; i < cfg_.recv_ring; ++i)
    refill_batch_.push_back(rdma::RecvWr{next_recv_id_++, &buf_});
  co_await qp_.post_recv_batch(post_th_, refill_batch_);
  refill_batch_.clear();
  sim::co_spawn(send_pump());
  sim::co_spawn(send_reaper());
  sim::co_spawn(recv_reaper());
}

rdma::SendWr RpcClient::request_wr(const CallTable::Call& c) const {
  rdma::SendWr wr;
  wr.op = rdma::Opcode::kSend;
  wr.wr_id = c.id;
  wr.local = &buf_;
  wr.bytes = c.req_bytes;
  wr.imm = c.id;
  wr.payload = c.request;
  return wr;
}

sim::Task<RpcClient::Reply> RpcClient::call(std::uint64_t req_bytes,
                                            mem::MsgPtr request) {
  co_await window_.acquire();
  CallTable::Call& c = table_.begin();
  c.req_bytes = req_bytes;
  c.request = std::move(request);
  c.issued_at = qp_.device().host().engine().now();
  ++calls_issued_;
  out_.send(request_wr(c));
  arm_retry(c.id);
  co_await c.done.wait();
  Reply r{c.ok, c.resp_bytes, std::move(c.response)};
  table_.end(c);
  window_.release();
  co_return r;
}

void RpcClient::arm_retry(std::uint32_t id) {
  if (cfg_.retry_after == 0) return;
  qp_.device().host().engine().schedule_after(
      cfg_.retry_after, [this, id] { on_retry_timer(id); });
}

void RpcClient::on_retry_timer(std::uint32_t id) {
  CallTable::Call* c = table_.find(id);
  if (c == nullptr || c->done.is_set()) return;  // stale generation / done
  if (++c->retries > cfg_.max_retries) {
    ++calls_failed_;
    c->ok = false;
    c->done.set();
    return;
  }
  ++retries_;
  out_.send(request_wr(*c));
  arm_retry(id);
}

sim::Task<> RpcClient::send_pump() {
  return pump_loop(qp_, post_th_, out_, send_batch_, cfg_.doorbell_batch,
                   doorbells_, doorbell_wrs_);
}

sim::Task<> RpcClient::send_reaper() {
  return send_reaper_loop(qp_, reap_th_);
}

void RpcClient::on_response(const rdma::WorkCompletion& wc) {
  CallTable::Call* c = table_.find(wc.imm);
  if (c == nullptr || c->done.is_set()) {
    // Late duplicate (a retry raced the original response) or a response
    // from a dead connection epoch: the generation check eats it.
    ++stale_responses_;
    return;
  }
  c->ok = wc.success;
  c->resp_bytes = wc.byte_len;
  c->response = wc.payload;
  c->done.set();
}

sim::Task<> RpcClient::recv_reaper() {
  const auto& cm = reap_th_.host().costs();
  for (;;) {
    auto wc = co_await qp_.recv_cq().wait(reap_th_);
    ++poll_batches_;
    ++poll_cqes_;
    std::uint64_t consumed = 1;
    on_response(wc);
    std::uint64_t extra = 0;
    while (auto more = qp_.recv_cq().try_poll()) {
      ++extra;
      ++consumed;
      ++poll_cqes_;
      on_response(*more);
    }
    if (extra > 0)
      co_await reap_th_.compute(
          static_cast<double>(extra) * cm.rdma_poll_extra_cqe_cycles,
          metrics::CpuCategory::kUserProto);
    // Refill the ring by exactly what this sweep consumed, one doorbell.
    refill_batch_.clear();
    for (std::uint64_t i = 0; i < consumed; ++i)
      refill_batch_.push_back(rdma::RecvWr{next_recv_id_++, &buf_});
    co_await qp_.post_recv_batch(reap_th_, refill_batch_);
    refill_batch_.clear();
  }
}

// ---------------------------------------------------------------------------
// RpcServer

RpcServer::RpcServer(rdma::QueuePair& qp, numa::Thread& post_th,
                     numa::Thread& reap_th, mem::Buffer& ring_buf,
                     Handler& handler, RpcConfig cfg)
    : qp_(qp),
      post_th_(post_th),
      reap_th_(reap_th),
      buf_(ring_buf),
      handler_(handler),
      cfg_(cfg),
      out_(qp.device().host().engine()) {}

sim::Task<> RpcServer::start() {
  refill_batch_.clear();
  for (std::size_t i = 0; i < cfg_.recv_ring; ++i)
    refill_batch_.push_back(rdma::RecvWr{next_recv_id_++, &buf_});
  co_await qp_.post_recv_batch(post_th_, refill_batch_);
  refill_batch_.clear();
  sim::co_spawn(send_pump());
  sim::co_spawn(send_reaper());
  sim::co_spawn(recv_reaper());
}

sim::Task<> RpcServer::send_pump() {
  return pump_loop(qp_, post_th_, out_, send_batch_, cfg_.doorbell_batch,
                   doorbells_, doorbell_wrs_);
}

sim::Task<> RpcServer::send_reaper() {
  return send_reaper_loop(qp_, reap_th_);
}

sim::Task<> RpcServer::serve_one(Request req) {
  co_await reap_th_.compute(reap_th_.host().costs().rpc_dispatch_cycles,
                            metrics::CpuCategory::kUserProto);
  Reply r = co_await handler_.handle(req);
  rdma::SendWr wr;
  wr.op = rdma::Opcode::kSend;
  wr.wr_id = req.id;
  // The response DMAs out of the handler-chosen source region (a
  // NUMA-placed store shard, typically); the shared ring region otherwise.
  wr.local = r.source != nullptr ? const_cast<mem::Buffer*>(r.source) : &buf_;
  wr.bytes = r.bytes;
  wr.imm = req.id;
  wr.payload = std::move(r.payload);
  out_.send(wr);
  ++calls_served_;
}

sim::Task<> RpcServer::recv_reaper() {
  const auto& cm = reap_th_.host().costs();
  for (;;) {
    auto wc = co_await qp_.recv_cq().wait(reap_th_);
    ++poll_batches_;
    std::uint64_t consumed = 0;
    std::uint64_t extra = 0;
    for (;;) {
      ++consumed;
      ++poll_cqes_;
      if (wc.success) {
        Request req;
        req.id = wc.imm;
        req.bytes = wc.byte_len;
        req.payload = std::move(wc.payload);
        sim::co_spawn(serve_one(std::move(req)));
      }
      auto more = qp_.recv_cq().try_poll();
      if (!more) break;
      ++extra;
      wc = std::move(*more);
    }
    if (extra > 0)
      co_await reap_th_.compute(
          static_cast<double>(extra) * cm.rdma_poll_extra_cqe_cycles,
          metrics::CpuCategory::kUserProto);
    refill_batch_.clear();
    for (std::uint64_t i = 0; i < consumed; ++i)
      refill_batch_.push_back(rdma::RecvWr{next_recv_id_++, &buf_});
    co_await qp_.post_recv_batch(reap_th_, refill_batch_);
    refill_batch_.clear();
  }
}

}  // namespace e2e::rpc
