// Small-message RPC tier over the verbs layer.
//
// The bulk-transfer protocols in this tree (rftp, iser) move megabyte
// blocks; this layer is the other end of the design space the paper's
// testbed also exercises with perftest: many small SEND/RECV messages per
// second, where per-operation CPU — posting, doorbells, completion
// polling — dominates. Three mechanisms keep that CPU sublinear in the
// message count:
//
//  * SEND/RECV rings: each endpoint keeps a fixed ring of posted receives
//    backed by one registered region; consumed receives are re-posted in
//    doorbell-sized batches, so the ring never allocates and RNR (ring
//    exhaustion) is an observable stall, not an error.
//  * Doorbell batching: requests and responses funnel through a pump
//    coroutine that drains its queue and posts up to `doorbell_batch` WRs
//    behind one doorbell (QueuePair::post_send_batch). An idle pump posts
//    whatever it holds immediately — batching never adds latency, it only
//    coalesces work that was already simultaneous.
//  * Completion batching: reapers block for the first CQE (full poll cost)
//    then drain everything else already queued at the reduced per-extra
//    cost. The blocking wait doubles as flush-on-idle: a lone completion
//    is processed the moment it lands.
//
// Calls are identified by a 32-bit id packing a 16-bit call-slot index and
// a 16-bit generation (CallTable) carried in the verbs immediate word. The
// generation check makes duplicate/late responses — a retried call whose
// original response eventually arrives, or a response outliving its
// connection epoch — drop cleanly instead of completing a recycled slot
// (the PR 4 flat-table shape, sized down to the id space an immediate
// affords). Lost requests are re-sent by a per-call timer armed at issue
// time; a stale timer firing after completion resolves to a dead
// generation and no-ops.
//
// Servers are coroutine-per-call: the reaper spawns one handler coroutine
// per request, so a handler that suspends (NUMA-remote copies, nested
// awaits) never blocks the ring from absorbing the next request.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "mem/msg_pool.hpp"
#include "numa/thread.hpp"
#include "rdma/qp.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace e2e::rpc {

struct RpcConfig {
  std::size_t recv_ring = 64;      // receives kept posted per endpoint
  std::size_t window = 16;         // client-side outstanding-call cap
  std::size_t doorbell_batch = 4;  // max WRs coalesced behind one doorbell
  std::uint64_t header_bytes = 64;  // wire bytes of the rpc header itself
  // Per-call retry timer: a call unanswered after this long is re-sent
  // (lost request, flushed send, dropped response). 0 disables retries.
  sim::SimDuration retry_after = 5 * sim::kMillisecond;
  // Timer firings before the call completes with ok=false. Generous: under
  // chaos the QP may sit in the error state across several periods while
  // a supervisor re-establishes it.
  int max_retries = 256;
};

/// Call-slot table: call ids pack a 16-bit slot index and a 16-bit
/// generation, so an id fits the verbs immediate word. Slots recycle
/// through a free list; release bumps the generation (wrapping 0xFFFF -> 1,
/// generation 0 is never issued so id 0 can serve as a null sentinel), and
/// find() resolves an id only while its generation is current. The ABA
/// window is a full 65535 recycles of one slot — and a wrapped id is only
/// dangerous if the original call is *still* outstanding then, which the
/// window cap makes impossible.
class CallTable {
 public:
  static constexpr std::size_t kMaxSlots = 1ull << 16;

  struct Call {
    explicit Call(sim::Engine& eng) : done(eng) {}
    sim::ManualEvent done;
    std::uint32_t id = 0;
    // Request, kept for timer-driven retries.
    std::uint64_t req_bytes = 0;
    mem::MsgPtr request;
    // Outcome.
    bool ok = false;
    std::uint64_t resp_bytes = 0;
    mem::MsgPtr response;
    int retries = 0;
    sim::SimTime issued_at = 0;
  };

  explicit CallTable(sim::Engine& eng) : eng_(eng) {}

  /// Acquires a slot (allocating only the first time a slot is used) and
  /// resets the recycled Call. Throws when all 2^16 slots are live.
  Call& begin() {
    std::uint32_t idx;
    if (!free_.empty()) {
      idx = free_.back();
      free_.pop_back();
    } else {
      if (slots_.size() == kMaxSlots)
        throw std::runtime_error("rpc: call table exhausted");
      idx = static_cast<std::uint32_t>(slots_.size());
      slots_.push_back(Slot{std::make_unique<Call>(eng_), 1, false});
    }
    Slot& s = slots_[idx];
    s.live = true;
    Call& c = *s.call;
    c.id = (idx << 16) | s.gen;
    c.done.reset();
    c.request.reset();
    c.response.reset();
    c.ok = false;
    c.resp_bytes = 0;
    c.retries = 0;
    c.issued_at = 0;
    return c;
  }

  /// Resolves an id; nullptr when the slot was released (stale generation)
  /// or never issued.
  [[nodiscard]] Call* find(std::uint32_t id) noexcept {
    const std::uint32_t idx = id >> 16;
    const std::uint16_t gen = static_cast<std::uint16_t>(id & 0xFFFFu);
    if (idx >= slots_.size()) return nullptr;
    Slot& s = slots_[idx];
    return (s.live && s.gen == gen) ? s.call.get() : nullptr;
  }

  /// Releases the call's slot; its id (and any timer holding it) goes
  /// stale. The generation wraps past 0xFFFF back to 1.
  void end(Call& c) noexcept {
    const std::uint32_t idx = c.id >> 16;
    Slot& s = slots_[idx];
    s.live = false;
    s.gen = s.gen == 0xFFFFu ? std::uint16_t{1}
                             : static_cast<std::uint16_t>(s.gen + 1);
    c.request.reset();
    c.response.reset();
    free_.push_back(idx);
  }

  [[nodiscard]] std::size_t live() const noexcept {
    return slots_.size() - free_.size();
  }

 private:
  struct Slot {
    std::unique_ptr<Call> call;  // stable address; constructed once
    std::uint16_t gen = 1;
    bool live = false;
  };

  sim::Engine& eng_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;
};

/// Client endpoint: issues calls over one QueuePair, with windowed
/// admission, doorbell-batched request posting, batched completion
/// reaping, ring refill and per-call retry timers.
class RpcClient {
 public:
  struct Reply {
    bool ok = false;
    std::uint64_t bytes = 0;
    mem::MsgPtr payload;
  };

  /// `ring_buf` is the registered region backing both the receive ring and
  /// request sends; it must be at least as large as the biggest message.
  /// `post_th`/`reap_th` are the threads charged for posting and polling.
  RpcClient(rdma::QueuePair& qp, numa::Thread& post_th, numa::Thread& reap_th,
            mem::Buffer& ring_buf, RpcConfig cfg);

  /// Posts the receive ring (one doorbell-batched post_recv chain) and
  /// starts the pump/reaper loops. Await once before the first call().
  sim::Task<> start();

  /// One RPC: ships `request` (`req_bytes` on the wire, rpc header
  /// included) and completes with the server's reply. Suspends for window
  /// admission, then for the reply. ok=false after max_retries timeouts.
  sim::Task<Reply> call(std::uint64_t req_bytes, mem::MsgPtr request);

  // Observability (tests, scenario digests).
  [[nodiscard]] std::uint64_t calls_issued() const noexcept {
    return calls_issued_;
  }
  [[nodiscard]] std::uint64_t retries() const noexcept { return retries_; }
  [[nodiscard]] std::uint64_t calls_failed() const noexcept {
    return calls_failed_;
  }
  [[nodiscard]] std::uint64_t stale_responses() const noexcept {
    return stale_responses_;
  }
  [[nodiscard]] std::uint64_t doorbells() const noexcept {
    return doorbells_;
  }
  [[nodiscard]] std::uint64_t doorbell_wrs() const noexcept {
    return doorbell_wrs_;
  }
  [[nodiscard]] std::uint64_t poll_batches() const noexcept {
    return poll_batches_;
  }
  [[nodiscard]] std::uint64_t poll_cqes() const noexcept {
    return poll_cqes_;
  }
  [[nodiscard]] rdma::QueuePair& qp() noexcept { return qp_; }

 private:
  sim::Task<> send_pump();
  sim::Task<> send_reaper();
  sim::Task<> recv_reaper();
  void on_response(const rdma::WorkCompletion& wc);
  void arm_retry(std::uint32_t id);
  void on_retry_timer(std::uint32_t id);
  [[nodiscard]] rdma::SendWr request_wr(const CallTable::Call& c) const;

  rdma::QueuePair& qp_;
  numa::Thread& post_th_;
  numa::Thread& reap_th_;
  mem::Buffer& buf_;
  RpcConfig cfg_;
  CallTable table_;
  sim::Semaphore window_;
  sim::Channel<rdma::SendWr> out_;
  std::vector<rdma::SendWr> send_batch_;   // pump scratch, reused
  std::vector<rdma::RecvWr> refill_batch_;  // reaper scratch, reused
  std::uint64_t next_recv_id_ = 0;
  std::uint64_t calls_issued_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t calls_failed_ = 0;
  std::uint64_t stale_responses_ = 0;
  std::uint64_t doorbells_ = 0;
  std::uint64_t doorbell_wrs_ = 0;
  std::uint64_t poll_batches_ = 0;
  std::uint64_t poll_cqes_ = 0;
};

/// Server endpoint: reaps requests from its ring, spawns one handler
/// coroutine per call, and streams doorbell-batched responses back.
class RpcServer {
 public:
  struct Request {
    std::uint32_t id = 0;        // caller's call id (echoed in the reply)
    std::uint64_t bytes = 0;     // request wire bytes
    mem::MsgPtr payload;
  };
  struct Reply {
    std::uint64_t bytes = 0;     // response wire bytes (header + value)
    mem::MsgPtr payload;
    const mem::Buffer* source = nullptr;  // DMA source; ring buffer if null
  };

  /// Application handler, invoked as its own coroutine per request (it may
  /// suspend freely). The per-request dispatch CPU is already charged by
  /// the server before handle() runs.
  class Handler {
   public:
    virtual ~Handler() = default;
    virtual sim::Task<Reply> handle(const Request& req) = 0;
  };

  RpcServer(rdma::QueuePair& qp, numa::Thread& post_th, numa::Thread& reap_th,
            mem::Buffer& ring_buf, Handler& handler, RpcConfig cfg);

  /// Posts the receive ring and starts the loops. Await once.
  sim::Task<> start();

  [[nodiscard]] std::uint64_t calls_served() const noexcept {
    return calls_served_;
  }
  [[nodiscard]] std::uint64_t doorbells() const noexcept {
    return doorbells_;
  }
  [[nodiscard]] std::uint64_t doorbell_wrs() const noexcept {
    return doorbell_wrs_;
  }
  [[nodiscard]] std::uint64_t poll_batches() const noexcept {
    return poll_batches_;
  }
  [[nodiscard]] std::uint64_t poll_cqes() const noexcept {
    return poll_cqes_;
  }
  [[nodiscard]] rdma::QueuePair& qp() noexcept { return qp_; }

 private:
  sim::Task<> send_pump();
  sim::Task<> send_reaper();
  sim::Task<> recv_reaper();
  sim::Task<> serve_one(Request req);

  rdma::QueuePair& qp_;
  numa::Thread& post_th_;
  numa::Thread& reap_th_;
  mem::Buffer& buf_;
  Handler& handler_;
  RpcConfig cfg_;
  sim::Channel<rdma::SendWr> out_;
  std::vector<rdma::SendWr> send_batch_;
  std::vector<rdma::RecvWr> refill_batch_;
  std::uint64_t next_recv_id_ = 0;
  std::uint64_t calls_served_ = 0;
  std::uint64_t doorbells_ = 0;
  std::uint64_t doorbell_wrs_ = 0;
  std::uint64_t poll_batches_ = 0;
  std::uint64_t poll_cqes_ = 0;
};

}  // namespace e2e::rpc
