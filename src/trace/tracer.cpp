#include "trace/tracer.hpp"

#include <cstdio>
#include <string>

#include "sim/resource.hpp"

namespace e2e::trace {

NameId Tracer::intern(std::string_view s) {
  auto it = name_ids_.find(s);
  if (it != name_ids_.end()) return it->second;
  const NameId id = static_cast<NameId>(names_.size());
  names_.emplace_back(s);
  name_ids_.emplace(names_.back(), id);
  return id;
}

TrackId Tracer::track(Layer layer, std::string_view actor) {
  std::string key = std::string(to_string(layer)) + "/" + std::string(actor);
  auto it = track_ids_.find(key);
  if (it != track_ids_.end()) return it->second;
  const TrackId id = static_cast<TrackId>(tracks_.size());
  tracks_.push_back(Track{layer, std::string(actor), 0});
  track_ids_.emplace(std::move(key), id);
  return id;
}

TrackId Tracer::mint_track(Layer layer, std::string_view base) {
  std::string key = std::string(to_string(layer)) + "/" + std::string(base);
  const int n = mint_counts_[key]++;
  return track(layer, std::string(base) + "#" + std::to_string(n));
}

void Tracer::begin(TrackId t, std::string_view name) {
  ++tracks_.at(t).depth;
  push({Event::Type::kBegin, t, intern(name), eng_.now(), 0, 0});
}

void Tracer::end(TrackId t) {
  --tracks_.at(t).depth;
  push({Event::Type::kEnd, t, 0, eng_.now(), 0, 0});
}

void Tracer::complete(TrackId t, std::string_view name, sim::SimTime start) {
  const sim::SimTime now = eng_.now();
  const sim::SimTime s = start > now ? now : start;
  push({Event::Type::kComplete, t, intern(name), s, now - s, 0});
}

void Tracer::instant(TrackId t, std::string_view name) {
  push({Event::Type::kInstant, t, intern(name), eng_.now(), 0, 0});
}

void Tracer::complete(TrackId t, NameId name, sim::SimTime start) {
  const sim::SimTime now = eng_.now();
  const sim::SimTime s = start > now ? now : start;
  push({Event::Type::kComplete, t, name, s, now - s, 0});
}

void Tracer::instant(TrackId t, NameId name) {
  push({Event::Type::kInstant, t, name, eng_.now(), 0, 0});
}

void Tracer::async_begin(TrackId t, std::string_view name, std::uint64_t id) {
  push({Event::Type::kAsyncBegin, t, intern(name), eng_.now(), 0, id});
}

void Tracer::async_end(TrackId t, std::string_view name, std::uint64_t id) {
  push({Event::Type::kAsyncEnd, t, intern(name), eng_.now(), 0, id});
}

Counter& Tracer::counter(std::string_view name) {
  auto it = counter_ids_.find(name);
  if (it != counter_ids_.end()) return counters_[it->second];
  counters_.push_back(Counter{std::string(name)});
  counter_ids_.emplace(std::string(name), counters_.size() - 1);
  return counters_.back();
}

std::uint64_t Tracer::counter_value(std::string_view name) const {
  auto it = counter_ids_.find(name);
  return it == counter_ids_.end() ? 0 : counters_[it->second].value();
}

void Tracer::value_sample(std::string_view series, double value) {
  samples_.push_back({intern(series), eng_.now(), value});
}

void Tracer::value_sample(NameId series, double value) {
  samples_.push_back({series, eng_.now(), value});
}

void Tracer::on_resource_service(const sim::Resource& r, sim::SimTime start,
                                 sim::SimTime end, double units) {
  if (end <= start) return;
  auto it = res_tracks_.find(&r);
  TrackId t;
  if (it != res_tracks_.end()) {
    t = it->second;
  } else {
    std::string actor =
        r.name().empty()
            ? "res#" + std::to_string(res_tracks_.size())
            : r.name();
    t = track(Layer::kSim, actor);
    res_tracks_.emplace(&r, t);
  }
  (void)units;
  // Service windows are FIFO (start >= previous end), so complete spans on
  // one resource track never overlap.
  push({Event::Type::kComplete, t, intern("service"), start, end - start, 0});
}

void Tracer::sample_now() {
  const sim::SimTime now = eng_.now();
  std::size_t idx = 0;
  for (const sim::Resource* r : eng_.resources()) {
    ResourceState& st = res_state_[r];
    if (!st.named) {
      const std::string nm =
          r->name().empty() ? "util/res#" + std::to_string(idx)
                            : "util/" + r->name();
      st.series = intern(nm);
      st.named = true;
    }
    const double busy = static_cast<double>(r->busy_time());
    // Utilization over the last period. busy_time() books service ahead of
    // the clock, so a deep backlog can push a tick above 1.0 — that spike
    // is the signal that the resource is the bottleneck.
    const double util =
        sampler_period_ > 0
            ? (busy - st.last_busy_ns) / static_cast<double>(sampler_period_)
            : r->utilization();
    st.last_busy_ns = busy;
    samples_.push_back({st.series, now, util});
    ++idx;
  }
  for (const Counter& c : counters_)
    samples_.push_back({intern(c.name()), now, static_cast<double>(c.value())});
}

void Tracer::enable_resource_sampler(sim::SimDuration period) {
  sampler_period_ = period ? period : sim::kMillisecond;
  if (sampler_armed_) return;
  sampler_armed_ = true;
  eng_.schedule_after(sampler_period_, [this] { sampler_tick(); });
}

void Tracer::sampler_tick() {
  sample_now();
  // Re-arm only while other work is pending: once the rest of the event
  // queue drains the run is over, and a self-perpetuating tick would keep
  // Engine::run() from ever returning.
  if (eng_.idle()) {
    sampler_armed_ = false;
    return;
  }
  eng_.schedule_after(sampler_period_, [this] { sampler_tick(); });
}

void Tracer::note(std::string_view key, double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", value);
  notes_.emplace_back(std::string(key), std::string(buf));
}

void Tracer::note(std::string_view key, std::string_view value) {
  notes_.emplace_back(std::string(key),
                      "\"" + std::string(value) + "\"");
}

}  // namespace e2e::trace
