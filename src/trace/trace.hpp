// Umbrella header for the e2e::trace subsystem.
#pragma once

#include "trace/tracer.hpp"  // IWYU pragma: export
