// Trace exporters: Chrome trace-event JSON and flat run reports.
//
// Formatting is fully deterministic: timestamps are printed as exact
// microsecond fixed-point derived from integer nanoseconds, doubles use
// "%.9g", and every collection is iterated in insertion order.
#include <cstdio>
#include <ostream>

#include "sim/resource.hpp"
#include "trace/tracer.hpp"

namespace e2e::trace {

namespace {

/// Chrome trace timestamps are microseconds; print ns as exact fixed-point.
void put_us(std::ostream& os, sim::SimTime ns) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  os << buf;
}

void put_double(std::ostream& os, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  os << buf;
}

/// Minimal JSON string escaping (names here are ASCII identifiers, but a
/// stray quote or backslash must not corrupt the file).
void put_str(std::ostream& os, std::string_view s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

void Tracer::write_chrome_trace(std::ostream& os) const {
  os << "{\"traceEvents\":[\n";
  bool first = true;
  write_chrome_events(os, 0, first);
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

void Tracer::write_chrome_events(std::ostream& os, int pid_base,
                                 bool& first) const {
  auto sep = [&] {
    if (!first) os << ",\n";
    first = false;
  };

  // Process metadata: one Perfetto "process" per layer, plus the base pid
  // for the counter / sampler tracks.
  sep();
  os << "{\"ph\":\"M\",\"pid\":" << pid_base
     << ",\"name\":\"process_name\",\"args\":{\"name\":\"counters\"}}";
  for (int l = 0; l < kLayerCount; ++l) {
    sep();
    os << "{\"ph\":\"M\",\"pid\":" << (pid_base + l + 1)
       << ",\"name\":\"process_name\",\"args\":{\"name\":";
    put_str(os, to_string(static_cast<Layer>(l)));
    os << "}}";
  }
  // Thread metadata: one named thread per track, under its layer's pid.
  for (TrackId t = 0; t < tracks_.size(); ++t) {
    sep();
    os << "{\"ph\":\"M\",\"pid\":"
       << (pid_base + static_cast<int>(tracks_[t].layer) + 1)
       << ",\"tid\":" << (t + 1)
       << ",\"name\":\"thread_name\",\"args\":{\"name\":";
    put_str(os, tracks_[t].actor);
    os << "}}";
  }

  for (const Event& e : events_) {
    const int pid = pid_base + static_cast<int>(tracks_[e.track].layer) + 1;
    const unsigned tid = e.track + 1;
    sep();
    os << "{\"ph\":\"";
    switch (e.type) {
      case Event::Type::kBegin: os << 'B'; break;
      case Event::Type::kEnd: os << 'E'; break;
      case Event::Type::kComplete: os << 'X'; break;
      case Event::Type::kInstant: os << 'i'; break;
      case Event::Type::kAsyncBegin: os << 'b'; break;
      case Event::Type::kAsyncEnd: os << 'e'; break;
    }
    os << "\",\"pid\":" << pid << ",\"tid\":" << tid << ",\"ts\":";
    put_us(os, e.ts);
    if (e.type == Event::Type::kComplete) {
      os << ",\"dur\":";
      put_us(os, e.dur);
    }
    if (e.type != Event::Type::kEnd) {
      os << ",\"name\":";
      put_str(os, names_[e.name]);
    }
    os << ",\"cat\":";
    put_str(os, to_string(tracks_[e.track].layer));
    if (e.type == Event::Type::kInstant) os << ",\"s\":\"t\"";
    if (e.type == Event::Type::kAsyncBegin ||
        e.type == Event::Type::kAsyncEnd) {
      // Scope the pairing id by track so block #7 of stream 0 never pairs
      // with block #7 of stream 1.
      char buf[40];
      std::snprintf(buf, sizeof buf, "\"0x%x:%llx\"", tid,
                    static_cast<unsigned long long>(e.id));
      os << ",\"id\":" << buf;
    }
    os << '}';
  }

  // Counter and value series as 'C' events under the base pid.
  for (const Sample& s : samples_) {
    sep();
    os << "{\"ph\":\"C\",\"pid\":" << pid_base << ",\"tid\":0,\"ts\":";
    put_us(os, s.ts);
    os << ",\"name\":";
    put_str(os, names_[s.series]);
    os << ",\"args\":{\"value\":";
    put_double(os, s.value);
    os << "}}";
  }
}

void write_merged_chrome_trace(std::ostream& os,
                               const std::vector<const Tracer*>& shards) {
  os << "{\"traceEvents\":[\n";
  bool first = true;
  for (std::size_t s = 0; s < shards.size(); ++s)
    shards[s]->write_chrome_events(
        os, static_cast<int>(s) * (kLayerCount + 1), first);
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

void Tracer::write_report_json(std::ostream& os) const {
  os << "{\n  \"schema\": \"e2e-trace-report-v1\",\n";
  os << "  \"sim_time_ns\": " << eng_.now() << ",\n";
  os << "  \"events\": " << events_.size() << ",\n";
  os << "  \"samples\": " << samples_.size() << ",\n";

  os << "  \"notes\": {";
  for (std::size_t i = 0; i < notes_.size(); ++i) {
    os << (i ? ", " : "");
    put_str(os, notes_[i].first);
    os << ": " << notes_[i].second;
  }
  os << "},\n";

  os << "  \"counters\": {";
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    os << (i ? ", " : "");
    put_str(os, counters_[i].name());
    os << ": " << counters_[i].value();
  }
  os << "},\n";

  os << "  \"resources\": [";
  bool first = true;
  for (const sim::Resource* r : eng_.resources()) {
    os << (first ? "\n" : ",\n") << "    {\"name\": ";
    put_str(os, r->name());
    os << ", \"rate_per_s\": ";
    put_double(os, r->rate_per_second());
    os << ", \"busy_ns\": " << r->busy_time() << ", \"units_served\": ";
    put_double(os, r->units_served());
    os << ", \"utilization\": ";
    put_double(os, r->utilization());
    os << "}";
    first = false;
  }
  os << "\n  ]\n}\n";
}

void Tracer::write_report_csv(std::ostream& os) const {
  os << "metric,value\n";
  os << "sim_time_ns," << eng_.now() << "\n";
  for (const auto& [k, v] : notes_) {
    // Notes are stored pre-formatted as JSON scalars; strip string quotes.
    std::string_view val = v;
    if (val.size() >= 2 && val.front() == '"' && val.back() == '"')
      val = val.substr(1, val.size() - 2);
    os << "note." << k << "," << val << "\n";
  }
  for (const Counter& c : counters_)
    os << "counter." << c.name() << "," << c.value() << "\n";
  for (const sim::Resource* r : eng_.resources()) {
    os << "resource." << r->name() << ".busy_ns," << r->busy_time() << "\n";
    os << "resource." << r->name() << ".utilization,";
    put_double(os, r->utilization());
    os << "\n";
  }
}

}  // namespace e2e::trace
