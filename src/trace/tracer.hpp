// e2e::trace — structured event tracing for the whole transfer stack.
//
// A Tracer records spans, instant events, counter series and periodic
// resource-utilization samples against sim::Engine time, and exports them
// as Chrome trace-event JSON (loadable in Perfetto / chrome://tracing) or
// as a flat machine-readable run report (JSON / CSV).
//
// Attachment: Tracer::install() registers the tracer as the engine's
// TraceHook. Instrumented layers fetch it with trace::of(engine) — a
// single pointer load that is null when tracing is disabled, so the
// disabled fast path costs one predictable branch per site and allocates
// nothing.
//
// Determinism: the tracer never reads wall-clock time or any other
// ambient state. All timestamps are simulated nanoseconds, all ids are
// assigned in first-use order, and exports iterate insertion-ordered
// vectors — two identical runs produce byte-identical trace files (unit
// tested).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace e2e::trace {

/// Which layer of the stack an event belongs to. Renders as one Perfetto
/// process per layer, so the viewer groups tracks the way the paper's
/// figures slice the system.
enum class Layer : std::uint8_t {
  kSim,    // engine resources (links, cores, memory channels, QPI, PCIe)
  kRdma,   // verbs queue pairs
  kTcp,    // TCP/IP connections
  kIscsi,  // iSCSI session layer
  kIser,   // iSER datamover
  kRftp,   // RFTP transfer protocol
  kBlk,    // block / filesystem
  kApp,    // applications and drivers
  kFault,  // fault injection (chaos plans, injected faults, recoveries)
};
inline constexpr int kLayerCount = 9;

constexpr std::string_view to_string(Layer l) noexcept {
  switch (l) {
    case Layer::kSim: return "sim";
    case Layer::kRdma: return "rdma";
    case Layer::kTcp: return "tcp";
    case Layer::kIscsi: return "iscsi";
    case Layer::kIser: return "iser";
    case Layer::kRftp: return "rftp";
    case Layer::kBlk: return "blk";
    case Layer::kApp: return "app";
    case Layer::kFault: return "fault";
  }
  return "?";
}

using TrackId = std::uint32_t;
using NameId = std::uint32_t;

/// Named monotonic counter. Handles stay valid for the tracer's lifetime;
/// add() is an inlined integer bump so call sites can count unconditionally
/// once they hold the handle.
class Counter {
 public:
  void add(std::uint64_t delta) noexcept { value_ += delta; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

 private:
  friend class Tracer;
  explicit Counter(std::string name) : name_(std::move(name)) {}
  std::string name_;
  std::uint64_t value_ = 0;
};

class Tracer final : public sim::TraceHook {
 public:
  /// The tracer must not outlive `eng` (it samples the engine's resource
  /// registry and uninstalls itself on destruction).
  explicit Tracer(sim::Engine& eng) : eng_(eng) {}
  ~Tracer() override { uninstall(); }
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Makes this tracer visible to instrumented code via trace::of().
  void install() noexcept { eng_.set_trace_hook(this); }
  void uninstall() noexcept {
    if (eng_.trace_hook() == this) eng_.set_trace_hook(nullptr);
  }

  [[nodiscard]] sim::Engine& engine() noexcept { return eng_; }

  // --- tracks ------------------------------------------------------------
  // A track is one horizontal timeline in the viewer, identified by
  // (layer, actor). track() is idempotent per actor string; mint_track()
  // appends "#<n>" to get a fresh track per caller (one per QP, stream,
  // filler, ...), numbered in first-mint order.

  TrackId track(Layer layer, std::string_view actor);
  TrackId mint_track(Layer layer, std::string_view base);

  // --- events -------------------------------------------------------------

  /// Nested synchronous span. begin/end must balance per track.
  void begin(TrackId t, std::string_view name);
  void end(TrackId t);

  /// Complete span covering [start, now] — for work whose duration is only
  /// known when it finishes.
  void complete(TrackId t, std::string_view name, sim::SimTime start);

  /// Zero-duration marker.
  void instant(TrackId t, std::string_view name);

  // NameId overloads for pre-interned event names: hot call sites resolve
  // the name once (see CachedName/CachedSeries) and log with no hashing.
  void complete(TrackId t, NameId name, sim::SimTime start);
  void instant(TrackId t, NameId name);

  /// Async span: may overlap other spans on the same track and may begin
  /// and end on different tracks. `id` pairs the begin with the end within
  /// the track's scope (e.g. a block index).
  void async_begin(TrackId t, std::string_view name, std::uint64_t id);
  void async_end(TrackId t, std::string_view name, std::uint64_t id);

  // --- counters -----------------------------------------------------------

  /// Named monotonic counter, created on first use. Sampled into the
  /// counter timeline by the resource sampler and reported at exit.
  Counter& counter(std::string_view name);

  /// Records one point of a free-form value series (e.g. a cwnd that can
  /// shrink); rendered as a Perfetto counter track.
  void value_sample(std::string_view series, double value);
  void value_sample(NameId series, double value);

  /// Interns `s` into the name table (idempotent). The returned id is valid
  /// for this tracer's lifetime and is what the NameId overloads accept.
  NameId name_id(std::string_view s) { return intern(s); }

  // --- resource sampler ---------------------------------------------------

  /// Starts snapshotting every Resource registered with the engine (and
  /// every Counter) each `period` of simulated time. A tick re-arms itself
  /// only while other events are pending, so the sampler never keeps the
  /// run alive by itself. Call after any setup-phase engine runs.
  void enable_resource_sampler(sim::SimDuration period);

  /// One immediate snapshot of all resources and counters.
  void sample_now();

  // --- run-report notes ---------------------------------------------------

  /// Scalar facts about the run (goodput, scenario parameters, ...) that
  /// belong in the machine-readable report.
  void note(std::string_view key, double value);
  void note(std::string_view key, std::string_view value);

  // --- export -------------------------------------------------------------

  /// Chrome trace-event JSON (the "traceEvents" envelope).
  void write_chrome_trace(std::ostream& os) const;

  /// Emits this tracer's metadata + event stream into an already-open
  /// "traceEvents" array, with every pid offset by `pid_base` so several
  /// shards' tracers coexist in one file (shard s uses
  /// pid_base = s * (kLayerCount + 1)). write_chrome_trace() is exactly
  /// this with pid_base 0 inside the envelope.
  void write_chrome_events(std::ostream& os, int pid_base, bool& first) const;

  /// Flat run report: counters, per-resource totals, notes.
  void write_report_json(std::ostream& os) const;
  void write_report_csv(std::ostream& os) const;

  // --- introspection (tests, reports) ------------------------------------

  [[nodiscard]] std::size_t event_count() const noexcept {
    return events_.size();
  }
  [[nodiscard]] std::size_t sample_count() const noexcept {
    return samples_.size();
  }
  /// Currently open begin/end nesting depth of a track.
  [[nodiscard]] int open_depth(TrackId t) const {
    return tracks_.at(t).depth;
  }
  /// Value of a monotonic counter, 0 if never touched.
  [[nodiscard]] std::uint64_t counter_value(std::string_view name) const;

  struct Sample {
    NameId series;
    sim::SimTime ts;
    double value;
  };
  [[nodiscard]] const std::vector<Sample>& samples() const noexcept {
    return samples_;
  }
  [[nodiscard]] const std::string& name_of(NameId id) const {
    return names_.at(id);
  }

  // TraceHook: resource service windows arrive as spans on the sim layer.
  void on_resource_service(const sim::Resource& r, sim::SimTime start,
                           sim::SimTime end, double units) override;

 private:
  struct Event {
    enum class Type : std::uint8_t {
      kBegin,
      kEnd,
      kComplete,
      kInstant,
      kAsyncBegin,
      kAsyncEnd,
    };
    Type type;
    TrackId track;
    NameId name;       // unused for kEnd
    sim::SimTime ts;
    sim::SimDuration dur;  // kComplete only
    std::uint64_t id;      // async pairing id
  };
  struct Track {
    Layer layer;
    std::string actor;
    int depth = 0;
  };

  NameId intern(std::string_view s);
  void sampler_tick();
  void push(Event e) { events_.push_back(e); }

  /// Transparent hasher so the string-keyed maps can be probed with a
  /// string_view — no temporary std::string per hot-path lookup.
  struct StringHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
    std::size_t operator()(const std::string& s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };

  sim::Engine& eng_;

  std::vector<std::string> names_;
  std::unordered_map<std::string, NameId, StringHash, std::equal_to<>>
      name_ids_;

  std::vector<Track> tracks_;
  std::unordered_map<std::string, TrackId> track_ids_;  // "<layer>/<actor>"
  std::unordered_map<std::string, int> mint_counts_;

  std::vector<Event> events_;

  std::deque<Counter> counters_;  // stable addresses for handles
  std::unordered_map<std::string, std::size_t, StringHash, std::equal_to<>>
      counter_ids_;
  std::vector<Sample> samples_;

  // Per-resource sampler state: cached series name + busy_ns at last tick.
  struct ResourceState {
    NameId series = 0;
    bool named = false;
    double last_busy_ns = 0.0;
  };
  std::unordered_map<const sim::Resource*, ResourceState> res_state_;
  std::unordered_map<const sim::Resource*, TrackId> res_tracks_;
  sim::SimDuration sampler_period_ = 0;
  bool sampler_armed_ = false;

  std::vector<std::pair<std::string, std::string>> notes_;  // pre-formatted
};

/// The tracer installed on `eng`, or null when tracing is disabled.
/// Tracer is the only TraceHook implementation, so the downcast is safe;
/// anyone installing a different hook must not also use trace::of().
inline Tracer* of(sim::Engine& eng) noexcept {
  return static_cast<Tracer*>(eng.trace_hook());
}

/// Per-site track cache: mints the site's track once per tracer and then
/// resolves in O(1), keeping hot instrumentation free of hash lookups.
struct CachedTrack {
  Tracer* owner = nullptr;
  TrackId id = 0;
  TrackId get(Tracer* t, Layer layer, std::string_view base) {
    if (owner != t) {
      id = t->mint_track(layer, base);
      owner = t;
    }
    return id;
  }
  /// Like get() but with a caller-chosen (already unique) actor name.
  TrackId named(Tracer* t, Layer layer, std::string_view actor) {
    if (owner != t) {
      id = t->track(layer, actor);
      owner = t;
    }
    return id;
  }
  /// Like get(), but the base name is built only on the mint (first use),
  /// so steady-state call sites skip the string concatenation entirely.
  template <typename MakeBase>
  TrackId get_lazy(Tracer* t, Layer layer, MakeBase&& make_base) {
    if (owner != t) {
      id = t->mint_track(layer, make_base());
      owner = t;
    }
    return id;
  }
};

/// Per-site counter cache: one hash lookup per tracer, then add() is an
/// inlined integer bump.
struct CachedCounter {
  Tracer* owner = nullptr;
  Counter* c = nullptr;
  Counter& get(Tracer* t, std::string_view name) {
    if (owner != t) {
      c = &t->counter(name);
      owner = t;
    }
    return *c;
  }
};

/// Per-site event-name cache for the instant()/complete() NameId overloads.
struct CachedName {
  Tracer* owner = nullptr;
  NameId id = 0;
  NameId get(Tracer* t, std::string_view name) {
    if (owner != t) {
      id = t->name_id(name);
      owner = t;
    }
    return id;
  }
};

/// Per-site value-series cache. The series name is built lazily on first
/// use (per tracer), so hot samplers skip both the string build and the
/// intern lookup.
struct CachedSeries {
  Tracer* owner = nullptr;
  NameId id = 0;
  template <typename MakeName>
  NameId get_lazy(Tracer* t, MakeName&& make_name) {
    if (owner != t) {
      id = t->name_id(make_name());
      owner = t;
    }
    return id;
  }
};

/// One Chrome trace file covering several shards' tracers: shard s's
/// processes occupy pids [s*(kLayerCount+1), (s+1)*(kLayerCount+1)). Pass
/// tracers in shard-rank order — the emission order (and therefore the
/// byte stream) follows the vector, never wall-clock completion order.
void write_merged_chrome_trace(std::ostream& os,
                               const std::vector<const Tracer*>& shards);

}  // namespace e2e::trace
