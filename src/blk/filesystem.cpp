#include "blk/filesystem.hpp"

#include <algorithm>
#include <stdexcept>

namespace e2e::blk {

namespace {
std::uint64_t round_up(std::uint64_t v, std::uint64_t align) {
  return (v + align - 1) / align * align;
}
}  // namespace

FileSystem::FileSystem(numa::Host& host, BlockDevice& dev, PageCache* cache,
                       std::vector<numa::Thread*> kernel_threads)
    : host_(host),
      dev_(dev),
      cache_(cache),
      kernel_threads_(std::move(kernel_threads)) {
  if (cache_ != nullptr) {
    if (kernel_threads_.empty())
      throw std::invalid_argument("buffered filesystem needs kernel threads");
    writeback_q_ =
        std::make_unique<sim::Channel<WritebackItem>>(host.engine());
    for (auto* th : kernel_threads_) sim::co_spawn(flusher_loop(*th));
  }
}

numa::Thread& FileSystem::next_kernel_thread() {
  numa::Thread& th = *kernel_threads_[rr_kernel_ % kernel_threads_.size()];
  ++rr_kernel_;
  return th;
}

File& FileSystem::create(const std::string& name, std::uint64_t size_hint) {
  if (files_.count(name)) throw std::invalid_argument("file exists: " + name);
  auto f = std::make_unique<File>();
  f->name = name;
  f->reserved = round_up(std::max<std::uint64_t>(size_hint, 1), 4096);
  f->base = next_free_;
  if (next_free_ + f->reserved > dev_.capacity_bytes())
    throw std::length_error("filesystem full: " + name);
  next_free_ += f->reserved;
  File& ref = *f;
  files_[name] = std::move(f);
  return ref;
}

File* FileSystem::open(const std::string& name) {
  auto it = files_.find(name);
  return it == files_.end() ? nullptr : it->second.get();
}

sim::Task<> FileSystem::flusher_loop(numa::Thread& th) {
  for (;;) {
    auto item = co_await writeback_q_->recv();
    if (!item) co_return;
    // Writeback happens in whole blocks: round the dirty range out to
    // device alignment (partial pages rewrite their full block).
    const std::uint64_t begin =
        item->offset / scsi::Cdb::kBlockSize * scsi::Cdb::kBlockSize;
    const std::uint64_t end = std::min(
        item->file->reserved,
        round_up(item->offset + item->len, scsi::Cdb::kBlockSize));
    co_await dev_.write(th, item->file->base + begin, end - begin,
                        *item->pages, metrics::CpuCategory::kOffload);
    cache_->complete_writeback(item->file, item->len);
  }
}

sim::Task<> FileSystem::aligned_device_read(numa::Thread& th, File& f,
                                            std::uint64_t offset,
                                            std::uint64_t len,
                                            const numa::Placement& into,
                                            metrics::CpuCategory cat) {
  // The block layer reads whole blocks; round the byte range out.
  const std::uint64_t begin =
      offset / scsi::Cdb::kBlockSize * scsi::Cdb::kBlockSize;
  const std::uint64_t end =
      std::min(f.reserved, round_up(offset + len, scsi::Cdb::kBlockSize));
  if (end <= begin) co_return;
  co_await dev_.read(th, f.base + begin, end - begin, into, cat);
}

sim::Task<> FileSystem::prefetch_task(File& f, std::uint64_t offset,
                                      std::uint64_t len, Prefetch* p,
                                      numa::Thread& th) {
  co_await aligned_device_read(th, f, offset, len, cache_->page_placement(th),
                               metrics::CpuCategory::kLoad);
  cache_->insert(&f, len);
  p->done.set();
}

sim::Task<std::uint64_t> FileSystem::read(numa::Thread& th, File& f,
                                          std::uint64_t offset,
                                          std::uint64_t len,
                                          const numa::Placement& buf,
                                          bool direct,
                                          metrics::CpuCategory cat) {
  const auto& cm = host_.costs();
  co_await th.compute(cm.fs_op_cycles, metrics::CpuCategory::kKernelProto);
  if (offset >= f.size) co_return 0;
  len = std::min(len, f.size - offset);

  if (direct || cache_ == nullptr) {
    co_await dev_.read(th, f.base + offset, len, buf, cat);
    co_return len;
  }

  // Buffered path. A sequential reader finds its chunk already in flight
  // from readahead; a cold start pays the device read synchronously.
  const numa::Placement& pages = cache_->page_placement(th);
  auto it = prefetches_.find({&f, offset});
  if (it != prefetches_.end()) {
    auto pf = std::move(it->second);
    prefetches_.erase(it);
    co_await pf->done.wait();
  } else {
    co_await aligned_device_read(th, f, offset, len, pages, cat);
    cache_->insert(&f, len);
  }

  // Kick readahead for the next windows of this sequential stream.
  for (std::uint64_t d = 1; d <= readahead_depth_; ++d) {
    const std::uint64_t next = offset + d * len;
    if (next >= f.size || len == 0) break;
    const PrefetchKey key{&f, next};
    if (prefetches_.count(key)) continue;
    auto pf = std::make_unique<Prefetch>(host_.engine());
    const std::uint64_t ra_len = std::min(len, f.size - next);
    sim::co_spawn(
        prefetch_task(f, next, ra_len, pf.get(), next_kernel_thread()));
    prefetches_.emplace(key, std::move(pf));
  }

  co_await th.compute(static_cast<double>(len) *
                          cm.page_cache_insert_cycles_per_byte,
                      metrics::CpuCategory::kKernelProto);
  co_await th.copy(len, pages, buf, metrics::CpuCategory::kCopy);
  co_return len;
}

sim::Task<std::uint64_t> FileSystem::write(numa::Thread& th, File& f,
                                           std::uint64_t offset,
                                           std::uint64_t len,
                                           const numa::Placement& buf,
                                           bool direct,
                                           metrics::CpuCategory cat) {
  const auto& cm = host_.costs();
  co_await th.compute(cm.fs_op_cycles, metrics::CpuCategory::kKernelProto);
  if (offset + len > f.reserved)
    throw std::length_error("write beyond reservation: " + f.name);
  if (offset + len > f.allocated) co_await alloc_extent(th, f, offset + len);

  if (direct || cache_ == nullptr) {
    co_await dev_.write(th, f.base + offset, len, buf, cat);
    f.size = std::max(f.size, offset + len);
    co_return len;
  }

  // Buffered: user->kernel copy, dirty accounting (throttles when the
  // flushers fall behind), asynchronous writeback.
  const numa::Placement& pages = cache_->page_placement(th);
  co_await th.copy(len, buf, pages, metrics::CpuCategory::kCopy);
  co_await th.compute(static_cast<double>(len) *
                          cm.page_cache_insert_cycles_per_byte,
                      metrics::CpuCategory::kKernelProto);
  cache_->insert(&f, len);
  co_await cache_->mark_dirty(&f, len);
  writeback_q_->send(WritebackItem{&f, offset, len, &pages});
  f.size = std::max(f.size, offset + len);
  co_return len;
}

sim::Task<> FileSystem::fsync(numa::Thread& th, File& f) {
  co_await th.compute(host_.costs().fs_op_cycles,
                      metrics::CpuCategory::kKernelProto);
  if (cache_ != nullptr) co_await cache_->wait_clean(&f);
}

// --- XFS ---

XfsSim::XfsSim(numa::Host& host, BlockDevice& dev, PageCache* cache,
               std::vector<numa::Thread*> kernel_threads,
               int allocation_groups, std::uint64_t extent_bytes)
    : FileSystem(host, dev, cache, std::move(kernel_threads)),
      extent_bytes_(extent_bytes) {
  for (int i = 0; i < allocation_groups; ++i)
    ag_locks_.push_back(std::make_unique<sim::Semaphore>(host.engine(), 1));
}

sim::Task<> XfsSim::alloc_extent(numa::Thread& th, File& f,
                                 std::uint64_t new_end) {
  if (f.allocated == 0) f.ag = next_ag_++ % static_cast<int>(ag_locks_.size());
  auto& lock = *ag_locks_[static_cast<std::size_t>(f.ag)];
  while (f.allocated < new_end) {
    co_await lock.acquire();
    co_await th.compute(host_.costs().fs_metadata_cycles,
                        metrics::CpuCategory::kKernelProto);
    f.allocated = std::min(f.reserved, f.allocated + extent_bytes_);
    ++f.extent_count;
    lock.release();
  }
}

// --- ext4 ---

Ext4Sim::Ext4Sim(numa::Host& host, BlockDevice& dev, PageCache* cache,
                 std::vector<numa::Thread*> kernel_threads,
                 std::uint64_t extent_bytes)
    : FileSystem(host, dev, cache, std::move(kernel_threads)),
      journal_(host.engine(), 1),
      extent_bytes_(extent_bytes) {}

sim::Task<> Ext4Sim::alloc_extent(numa::Thread& th, File& f,
                                  std::uint64_t new_end) {
  while (f.allocated < new_end) {
    co_await journal_.acquire();
    co_await th.compute(host_.costs().fs_metadata_cycles +
                            host_.costs().journal_commit_cycles,
                        metrics::CpuCategory::kKernelProto);
    f.allocated = std::min(f.reserved, f.allocated + extent_bytes_);
    ++f.extent_count;
    journal_.release();
  }
}

}  // namespace e2e::blk
