// Umbrella header for the block/filesystem layer.
#pragma once

#include "blk/block_device.hpp"
#include "blk/filesystem.hpp"
#include "blk/page_cache.hpp"
