// Block device abstractions.
//
//  * RamBlockDevice: a tmpfs-backed raw device (the target's LUN backing).
//  * RemoteBlockDevice: /dev/sdX as seen by the iSER initiator — I/O turns
//    into SCSI READ(16)/WRITE(16) tasks on an iscsi::Initiator session.
//  * StripedBlockDevice: RAID-0 style striping across several devices; the
//    paper splits six LUNs across two InfiniBand links this way.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "iscsi/initiator.hpp"
#include "mem/buffer.hpp"
#include "mem/tmpfs.hpp"
#include "metrics/cpu_usage.hpp"
#include "numa/thread.hpp"
#include "scsi/scsi.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace e2e::blk {

class BlockDevice {
 public:
  virtual ~BlockDevice() = default;

  [[nodiscard]] virtual std::uint64_t capacity_bytes() const = 0;

  /// Reads [offset, offset+len) into memory at `dst`. Offsets and lengths
  /// must be 512-byte aligned. Returns false on I/O error.
  virtual sim::Task<bool> read(numa::Thread& th, std::uint64_t offset,
                               std::uint64_t len, const numa::Placement& dst,
                               metrics::CpuCategory cat) = 0;

  virtual sim::Task<bool> write(numa::Thread& th, std::uint64_t offset,
                                std::uint64_t len, const numa::Placement& src,
                                metrics::CpuCategory cat) = 0;

  static void check_aligned(std::uint64_t offset, std::uint64_t len) {
    if (offset % scsi::Cdb::kBlockSize || len % scsi::Cdb::kBlockSize)
      throw std::invalid_argument("unaligned block I/O");
  }
};

/// Local RAM-backed device (tmpfs file exported as a raw LUN).
class RamBlockDevice final : public BlockDevice {
 public:
  RamBlockDevice(mem::Tmpfs& fs, mem::TmpFile& backing)
      : fs_(fs), backing_(backing) {}

  [[nodiscard]] std::uint64_t capacity_bytes() const override {
    return backing_.size;
  }

  sim::Task<bool> read(numa::Thread& th, std::uint64_t offset,
                       std::uint64_t len, const numa::Placement& dst,
                       metrics::CpuCategory cat) override {
    check_aligned(offset, len);
    co_await fs_.read(th, backing_, offset, len, dst, cat);
    co_return true;
  }

  sim::Task<bool> write(numa::Thread& th, std::uint64_t offset,
                        std::uint64_t len, const numa::Placement& src,
                        metrics::CpuCategory cat) override {
    check_aligned(offset, len);
    co_await fs_.write(th, backing_, offset, len, src, cat);
    co_return true;
  }

 private:
  mem::Tmpfs& fs_;
  mem::TmpFile& backing_;
};

/// Remote LUN over an iSER (or iSCSI/TCP) session.
///
/// The caller's memory at `dst`/`src` is the RDMA-advertised buffer: reads
/// are RDMA-Written into it by the target; writes are RDMA-Read out of it.
class RemoteBlockDevice final : public BlockDevice {
 public:
  RemoteBlockDevice(iscsi::Initiator& init, std::uint32_t lun,
                    std::uint64_t capacity)
      : init_(init), lun_(lun), capacity_(capacity) {}

  [[nodiscard]] std::uint64_t capacity_bytes() const override {
    return capacity_;
  }

  sim::Task<bool> read(numa::Thread& th, std::uint64_t offset,
                       std::uint64_t len, const numa::Placement& dst,
                       metrics::CpuCategory cat) override;

  sim::Task<bool> write(numa::Thread& th, std::uint64_t offset,
                        std::uint64_t len, const numa::Placement& src,
                        metrics::CpuCategory cat) override;

 private:
  iscsi::Initiator& init_;
  std::uint32_t lun_;
  std::uint64_t capacity_;
};

/// RAID-0 striping over equal-capacity devices. Sub-requests to different
/// stripes proceed in parallel.
class StripedBlockDevice final : public BlockDevice {
 public:
  StripedBlockDevice(std::vector<BlockDevice*> devices,
                     std::uint64_t stripe_bytes)
      : devices_(std::move(devices)), stripe_(stripe_bytes) {
    if (devices_.empty()) throw std::invalid_argument("no stripe members");
    if (stripe_ % scsi::Cdb::kBlockSize)
      throw std::invalid_argument("stripe must be block-aligned");
  }

  [[nodiscard]] std::uint64_t capacity_bytes() const override {
    return devices_.front()->capacity_bytes() * devices_.size();
  }

  sim::Task<bool> read(numa::Thread& th, std::uint64_t offset,
                       std::uint64_t len, const numa::Placement& dst,
                       metrics::CpuCategory cat) override {
    return striped_io(th, offset, len, dst, cat, /*is_read=*/true);
  }

  sim::Task<bool> write(numa::Thread& th, std::uint64_t offset,
                        std::uint64_t len, const numa::Placement& src,
                        metrics::CpuCategory cat) override {
    return striped_io(th, offset, len, src, cat, /*is_read=*/false);
  }

  [[nodiscard]] std::size_t member_count() const noexcept {
    return devices_.size();
  }
  [[nodiscard]] std::uint64_t stripe_bytes() const noexcept { return stripe_; }

 private:
  sim::Task<bool> striped_io(numa::Thread& th, std::uint64_t offset,
                             std::uint64_t len, const numa::Placement& mem,
                             metrics::CpuCategory cat, bool is_read);

  std::vector<BlockDevice*> devices_;
  std::uint64_t stripe_;
};

}  // namespace e2e::blk
