#include "blk/block_device.hpp"

#include <algorithm>

namespace e2e::blk {

namespace {

/// The initiator registers the caller's pages for the duration of the I/O
/// (fast-registration work requests, as the real open-iscsi/iSER initiator
/// does), so the target can RDMA directly into/out of application memory.
sim::Task<> fast_register(numa::Thread& th, std::uint64_t len) {
  const double pages = static_cast<double>(len) / 4096.0;
  co_await th.compute(pages * th.host().costs().rdma_mr_register_cycles_per_page,
                      metrics::CpuCategory::kUserProto);
}

}  // namespace

sim::Task<bool> RemoteBlockDevice::read(numa::Thread& th, std::uint64_t offset,
                                        std::uint64_t len,
                                        const numa::Placement& dst,
                                        metrics::CpuCategory cat) {
  (void)cat;  // remote I/O cost is protocol work, not a local memcpy
  check_aligned(offset, len);
  if (offset + len > capacity_) co_return false;
  co_await fast_register(th, len);
  mem::Buffer io;
  io.bytes = len;
  io.placement = dst;
  io.registered = true;
  const auto status = co_await init_.submit_read(
      th, lun_, offset / scsi::Cdb::kBlockSize,
      static_cast<std::uint32_t>(len / scsi::Cdb::kBlockSize), io);
  co_return status == scsi::Status::kGood;
}

sim::Task<bool> RemoteBlockDevice::write(numa::Thread& th,
                                         std::uint64_t offset,
                                         std::uint64_t len,
                                         const numa::Placement& src,
                                         metrics::CpuCategory cat) {
  (void)cat;
  check_aligned(offset, len);
  if (offset + len > capacity_) co_return false;
  co_await fast_register(th, len);
  mem::Buffer io;
  io.bytes = len;
  io.placement = src;
  io.registered = true;
  const auto status = co_await init_.submit_write(
      th, lun_, offset / scsi::Cdb::kBlockSize,
      static_cast<std::uint32_t>(len / scsi::Cdb::kBlockSize), io);
  co_return status == scsi::Status::kGood;
}

namespace {

sim::Task<> stripe_subio(BlockDevice* dev, numa::Thread& th,
                         std::uint64_t dev_off, std::uint64_t len,
                         numa::Placement mem, metrics::CpuCategory cat,
                         bool is_read, bool* ok, sim::WaitGroup* wg) {
  const bool r = is_read ? co_await dev->read(th, dev_off, len, mem, cat)
                         : co_await dev->write(th, dev_off, len, mem, cat);
  if (!r) *ok = false;
  wg->done();
}

}  // namespace

sim::Task<bool> StripedBlockDevice::striped_io(numa::Thread& th,
                                               std::uint64_t offset,
                                               std::uint64_t len,
                                               const numa::Placement& mem,
                                               metrics::CpuCategory cat,
                                               bool is_read) {
  check_aligned(offset, len);
  sim::WaitGroup wg(th.host().engine());
  bool ok = true;
  std::uint64_t pos = offset;
  std::uint64_t remaining = len;
  while (remaining > 0) {
    const std::uint64_t stripe_idx = pos / stripe_;
    const std::uint64_t within = pos % stripe_;
    const std::uint64_t chunk = std::min(remaining, stripe_ - within);
    const std::size_t member = stripe_idx % devices_.size();
    // Device-local offset: collapse the stripe rotation.
    const std::uint64_t dev_off =
        (stripe_idx / devices_.size()) * stripe_ + within;
    wg.add();
    sim::co_spawn(stripe_subio(devices_[member], th, dev_off, chunk, mem, cat,
                               is_read, &ok, &wg));
    pos += chunk;
    remaining -= chunk;
  }
  co_await wg.wait();
  co_return ok;
}

}  // namespace e2e::blk
