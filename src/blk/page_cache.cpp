#include "blk/page_cache.hpp"

#include <algorithm>

namespace e2e::blk {

std::uint64_t PageCache::insert(const void* file_key, std::uint64_t bytes) {
  FileState& fs = files_[file_key];
  fs.resident += bytes;
  resident_ += bytes;
  std::uint64_t evicted = 0;
  if (resident_ > capacity_) {
    // Evict clean pages proportionally from all files (approximation of
    // global LRU under streaming workloads). Dirty pages are not evicted.
    std::uint64_t need = resident_ - capacity_;
    for (auto& [key, st] : files_) {
      const std::uint64_t clean = st.resident - std::min(st.resident, st.dirty);
      const std::uint64_t take = std::min(clean, need);
      st.resident -= take;
      resident_ -= take;
      evicted += take;
      need -= take;
      if (need == 0) break;
    }
  }
  return evicted;
}

sim::Task<> PageCache::mark_dirty(const void* file_key, std::uint64_t bytes) {
  while (dirty_ + bytes > max_dirty_) {
    writeback_event_.reset();
    co_await writeback_event_.wait();
  }
  files_[file_key].dirty += bytes;
  dirty_ += bytes;
}

void PageCache::complete_writeback(const void* file_key, std::uint64_t bytes) {
  FileState& fs = files_[file_key];
  const std::uint64_t done = std::min(fs.dirty, bytes);
  fs.dirty -= done;
  dirty_ -= std::min(dirty_, done);
  writeback_event_.set();
  if (fs.dirty == 0 && fs.fsync_waiter != nullptr) {
    fs.fsync_waiter->set();
    fs.fsync_waiter = nullptr;
  }
}

sim::Task<> PageCache::wait_clean(const void* file_key) {
  FileState& fs = files_[file_key];
  if (fs.dirty == 0) co_return;
  sim::ManualEvent ev(host_.engine());
  fs.fsync_waiter = &ev;
  co_await ev.wait();
}

}  // namespace e2e::blk
