// Filesystem layer over a block device.
//
// POSIX-shaped API (create/open, pread/pwrite, fsync) with two concrete
// filesystems that differ where it mattered to the paper:
//
//  * XfsSim — allocation groups allow concurrent extent allocation from
//    parallel writers (why the paper formats the exported LUNs with XFS);
//  * Ext4Sim — a single journal serializes metadata commits.
//
// Both support direct I/O (device DMA straight to/from the caller's
// buffer — RFTP's path) and buffered I/O through the PageCache (extra
// copies + writeback — GridFTP's path).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "blk/block_device.hpp"
#include "blk/page_cache.hpp"
#include "sim/channel.hpp"

namespace e2e::blk {

struct File {
  std::string name;
  std::uint64_t size = 0;       // bytes written (high-water mark)
  std::uint64_t allocated = 0;  // bytes with extents on the device
  std::uint64_t base = 0;       // device offset of the file's region
  std::uint64_t reserved = 0;   // region length
  std::uint64_t extent_count = 0;
  int ag = 0;  // XFS allocation group
};

class FileSystem {
 public:
  /// `cache` may be null: a filesystem mounted for direct-I/O-only use.
  /// `kernel_threads` are the kernel-context threads used for writeback
  /// flushers and readahead workers; required non-empty when a cache is
  /// attached (real kernels run several kworker flushers per device).
  FileSystem(numa::Host& host, BlockDevice& dev, PageCache* cache,
             std::vector<numa::Thread*> kernel_threads);
  virtual ~FileSystem() = default;
  FileSystem(const FileSystem&) = delete;
  FileSystem& operator=(const FileSystem&) = delete;

  /// Creates a file with a contiguous region reservation of `size_hint`.
  File& create(const std::string& name, std::uint64_t size_hint);
  [[nodiscard]] File* open(const std::string& name);

  /// pread: returns bytes read (0 past EOF). Buffered reads hit the page
  /// cache for the resident fraction.
  sim::Task<std::uint64_t> read(numa::Thread& th, File& f,
                                std::uint64_t offset, std::uint64_t len,
                                const numa::Placement& buf, bool direct,
                                metrics::CpuCategory cat);

  /// pwrite: allocates extents as the file grows; returns bytes written.
  sim::Task<std::uint64_t> write(numa::Thread& th, File& f,
                                 std::uint64_t offset, std::uint64_t len,
                                 const numa::Placement& buf, bool direct,
                                 metrics::CpuCategory cat);

  /// Blocks until all dirty pages of `f` reach the device.
  sim::Task<> fsync(numa::Thread& th, File& f);

  [[nodiscard]] BlockDevice& device() noexcept { return dev_; }
  [[nodiscard]] PageCache* cache() noexcept { return cache_; }
  [[nodiscard]] std::size_t file_count() const noexcept {
    return files_.size();
  }

 protected:
  /// Allocates extents so the file covers offset+len; filesystem-specific
  /// concurrency (AG locks vs global journal).
  virtual sim::Task<> alloc_extent(numa::Thread& th, File& f,
                                   std::uint64_t new_end) = 0;

  numa::Host& host_;

  /// Sequential readahead window prefetched beyond each buffered read.
  void set_readahead(std::uint64_t window_chunks) {
    readahead_depth_ = window_chunks;
  }

 private:
  struct WritebackItem {
    File* file;
    std::uint64_t offset;
    std::uint64_t len;
    // Host-owned canonical placement (outlives the filesystem); a by-value
    // Placement here would mint a fresh plan-cache identity per writeback.
    const numa::Placement* pages;
  };
  struct Prefetch {
    explicit Prefetch(sim::Engine& eng) : done(eng) {}
    sim::ManualEvent done;
  };
  using PrefetchKey = std::pair<const File*, std::uint64_t>;

  sim::Task<> flusher_loop(numa::Thread& th);
  sim::Task<> aligned_device_read(numa::Thread& th, File& f,
                                  std::uint64_t offset, std::uint64_t len,
                                  const numa::Placement& into,
                                  metrics::CpuCategory cat);
  sim::Task<> prefetch_task(File& f, std::uint64_t offset, std::uint64_t len,
                            Prefetch* p, numa::Thread& th);
  numa::Thread& next_kernel_thread();

  BlockDevice& dev_;
  PageCache* cache_;
  std::vector<numa::Thread*> kernel_threads_;
  std::size_t rr_kernel_ = 0;
  std::map<std::string, std::unique_ptr<File>> files_;
  std::uint64_t next_free_ = 0;
  std::unique_ptr<sim::Channel<WritebackItem>> writeback_q_;
  std::map<PrefetchKey, std::unique_ptr<Prefetch>> prefetches_;
  std::uint64_t readahead_depth_ = 2;  // chunks prefetched ahead
};

/// XFS-like: extent allocation parallel across allocation groups.
class XfsSim final : public FileSystem {
 public:
  XfsSim(numa::Host& host, BlockDevice& dev, PageCache* cache,
         std::vector<numa::Thread*> kernel_threads = {},
         int allocation_groups = 8,
         std::uint64_t extent_bytes = 16ull << 20);

 protected:
  sim::Task<> alloc_extent(numa::Thread& th, File& f,
                           std::uint64_t new_end) override;

 private:
  std::vector<std::unique_ptr<sim::Semaphore>> ag_locks_;
  std::uint64_t extent_bytes_;
  int next_ag_ = 0;
};

/// ext4-like: one journal, metadata commits serialize.
class Ext4Sim final : public FileSystem {
 public:
  Ext4Sim(numa::Host& host, BlockDevice& dev, PageCache* cache,
          std::vector<numa::Thread*> kernel_threads = {},
          std::uint64_t extent_bytes = 16ull << 20);

 protected:
  sim::Task<> alloc_extent(numa::Thread& th, File& f,
                           std::uint64_t new_end) override;

 private:
  sim::Semaphore journal_;
  std::uint64_t extent_bytes_;
};

}  // namespace e2e::blk
