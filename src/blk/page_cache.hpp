// Page cache model.
//
// Buffered (non-direct) I/O stages data through kernel pages: an extra
// memcpy on every read and write, dirty-page accounting with writeback
// throttling, and eviction pressure once the working set exceeds the cache.
// This is the "I/O cache effect" the paper names as one of GridFTP's three
// handicaps; direct I/O (RFTP) bypasses this layer entirely.
//
// Residency is tracked per file as a byte count with sequential-access
// semantics (the bulk-transfer workloads here stream files): a read hits
// for the resident fraction and pays device I/O for the rest.
#pragma once

#include <cstdint>
#include <map>

#include "numa/host.hpp"
#include "numa/thread.hpp"
#include "sim/sync.hpp"

namespace e2e::blk {

class PageCache {
 public:
  PageCache(numa::Host& host, std::uint64_t capacity_bytes,
            std::uint64_t max_dirty_bytes)
      : host_(host),
        capacity_(capacity_bytes),
        max_dirty_(max_dirty_bytes),
        writeback_event_(host.engine()) {}

  struct FileState {
    std::uint64_t resident = 0;  // cached bytes
    std::uint64_t dirty = 0;     // not yet written back
    sim::ManualEvent* fsync_waiter = nullptr;
  };

  /// Kernel pages for this file, allocated near the accessing thread
  /// (first-touch); charged as a normal placement by callers. Returns the
  /// host's canonical per-node placement: its identity is stable, so the
  /// per-thread cost-plan cache hits on every buffered I/O instead of
  /// minting a fresh plan per call (callers must bind by reference, not
  /// copy — a copy gets a new identity).
  [[nodiscard]] const numa::Placement& page_placement(
      numa::Thread& th) const {
    return host_.node_placement(th.node());
  }

  FileState& state(const void* file_key) { return files_[file_key]; }

  /// Records `bytes` inserted for `file_key`, evicting (globally) if over
  /// capacity. Returns evicted byte count.
  std::uint64_t insert(const void* file_key, std::uint64_t bytes);

  /// Marks bytes dirty; suspends the caller while dirty exceeds the
  /// writeback threshold (balance_dirty_pages behaviour).
  sim::Task<> mark_dirty(const void* file_key, std::uint64_t bytes);

  /// Completes writeback of `bytes` for `file_key`.
  void complete_writeback(const void* file_key, std::uint64_t bytes);

  /// Suspends until the file has no dirty bytes.
  sim::Task<> wait_clean(const void* file_key);

  [[nodiscard]] std::uint64_t total_resident() const noexcept {
    return resident_;
  }
  [[nodiscard]] std::uint64_t total_dirty() const noexcept { return dirty_; }
  [[nodiscard]] std::uint64_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] numa::Host& host() noexcept { return host_; }

 private:
  numa::Host& host_;
  std::uint64_t capacity_;
  std::uint64_t max_dirty_;
  std::uint64_t resident_ = 0;
  std::uint64_t dirty_ = 0;
  sim::ManualEvent writeback_event_;
  std::map<const void*, FileState> files_;
};

}  // namespace e2e::blk
