// iSCSI target core (tgtd analogue).
//
// One Target instance is one target *process*: it owns worker threads, a
// staging-buffer pool and the LUNs it exports, and serves SCSI tasks that
// arrive over one Datamover session. The paper's NUMA tuning runs one
// Target per NUMA node (numactl-bound process per node, each with the
// NIC-local LUNs and buffers); the untuned baseline runs one Target whose
// threads the default scheduler scatters across nodes.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "iscsi/datamover.hpp"
#include "iscsi/pdu.hpp"
#include "mem/buffer_pool.hpp"
#include "mem/flat_table.hpp"
#include "sim/ring_queue.hpp"
#include "numa/process.hpp"
#include "scsi/scsi.hpp"
#include "sim/channel.hpp"

namespace e2e::iscsi {

/// How the target assigns SCSI tasks to worker threads.
enum class TargetSched {
  /// One shared queue; any worker takes any task (stock tgtd behaviour —
  /// combined with per-process numactl binding this is the paper's tuned
  /// configuration, without it the untuned baseline).
  kShared,
  /// libnuma-style per-request scheduling (the paper's deferred "redesign
  /// of iSCSI with the libnuma API", built here as an extension): workers
  /// are spread over all NUMA nodes and every task is dispatched to a
  /// worker on the node that holds the LUN's backing memory, recovering
  /// locality dynamically inside a single un-bound process.
  kNumaRouted,
};

class Target {
 public:
  /// `pool` provides staging buffers; transfers larger than one staging
  /// buffer are segmented and pipelined through it.
  Target(numa::Process& proc, Datamover& dm, std::vector<scsi::Lun*> luns,
         mem::BufferPool& pool, TargetSched sched = TargetSched::kShared);
  Target(const Target&) = delete;
  Target& operator=(const Target&) = delete;

  /// Spawns the PDU receive loop and `workers` task-serving workers, each
  /// on its own process thread (spread across nodes under kNumaRouted).
  void start(int workers);

  /// Stops accepting work (drains the request channel).
  void stop();

  [[nodiscard]] std::uint64_t tasks_served() const noexcept {
    return tasks_served_;
  }
  [[nodiscard]] std::uint64_t bytes_in() const noexcept { return bytes_in_; }
  [[nodiscard]] std::uint64_t bytes_out() const noexcept { return bytes_out_; }
  [[nodiscard]] numa::Process& process() noexcept { return proc_; }

 private:
  sim::Task<> rx_loop(numa::Thread& th);
  sim::Task<> worker_loop(numa::Thread& th, sim::Channel<Pdu>& queue);
  sim::Task<> serve_task(numa::Thread& th, Pdu cmd);
  [[nodiscard]] scsi::Lun* find_lun(std::uint32_t id);
  [[nodiscard]] sim::Channel<Pdu>& route(const Pdu& cmd);

  numa::Process& proc_;
  Datamover& dm_;
  mem::FlatMap<scsi::Lun*> luns_;
  // Duplicate suppression for initiator command retries: tasks being
  // served are dropped on re-arrival; completed tasks get their response
  // replayed (bounded history, FIFO eviction). Flat tables: the replay
  // cache is consulted per command, so it must not churn map nodes.
  mem::FlatMap<char> in_progress_;  // flat set (values unused)
  mem::FlatMap<scsi::Status> completed_;
  sim::RingQueue<std::uint64_t> completed_order_;
  static constexpr std::size_t kCompletedHistory = 4096;
  mem::BufferPool& pool_;
  TargetSched sched_;
  sim::Channel<Pdu> requests_;  // shared queue (and kNumaRouted fallback)
  std::vector<std::unique_ptr<sim::Channel<Pdu>>> node_requests_;
  bool started_ = false;
  std::uint64_t tasks_served_ = 0;
  std::uint64_t bytes_in_ = 0;
  std::uint64_t bytes_out_ = 0;
};

}  // namespace e2e::iscsi
