// iSCSI PDU definitions (RFC 7143 subset) and login parameters.
//
// Only the PDUs the data path and session bring-up need are modelled. For
// the iSER binding (RFC 7145), SCSI-Command PDUs additionally advertise the
// initiator buffer (the moral equivalent of the iSER header's R-key), and
// Data-In/Data-Out PDUs never appear on the wire — the datamover turns
// them into RDMA operations.
#pragma once

#include <cstdint>
#include <type_traits>

#include "rdma/verbs.hpp"
#include "scsi/scsi.hpp"

namespace e2e::iscsi {

enum class PduType : std::uint8_t {
  kLoginRequest,
  kLoginResponse,
  kScsiCommand,
  kScsiResponse,
  kR2T,       // ready-to-transfer (TCP binding only)
  kDataIn,    // (TCP binding only)
  kDataOut,   // (TCP binding only)
  kNopOut,
  kNopIn,
  kLogoutRequest,
  kLogoutResponse,
};

constexpr const char* to_string(PduType t) noexcept {
  switch (t) {
    case PduType::kLoginRequest: return "login-req";
    case PduType::kLoginResponse: return "login-resp";
    case PduType::kScsiCommand: return "scsi-cmd";
    case PduType::kScsiResponse: return "scsi-resp";
    case PduType::kR2T: return "r2t";
    case PduType::kDataIn: return "data-in";
    case PduType::kDataOut: return "data-out";
    case PduType::kNopOut: return "nop-out";
    case PduType::kNopIn: return "nop-in";
    case PduType::kLogoutRequest: return "logout-req";
    case PduType::kLogoutResponse: return "logout-resp";
  }
  return "?";
}

/// Negotiated session parameters (text keys of the login phase).
struct LoginParams {
  std::uint64_t max_burst_length = 16 * 1024 * 1024;
  std::uint64_t first_burst_length = 256 * 1024;
  std::uint32_t max_outstanding_r2t = 8;
  std::uint32_t max_connections = 1;
  bool initial_r2t = false;
  bool immediate_data = true;
  bool header_digest = false;  // CRC32C off, as on the paper's testbed
  bool data_digest = false;
  // Fixed-size names keep LoginParams (and with it every Pdu) trivially
  // copyable: PDUs ride the hot path by value, and a heap-allocating
  // std::string per copy dominated the protocol layer's malloc count.
  char initiator_name[40] = "iqn.2013-08.edu.stonybrook:init";
  char target_name[40] = "iqn.2013-08.gov.bnl:target";
};

struct Pdu {
  PduType type = PduType::kNopOut;
  std::uint64_t itt = 0;   // initiator task tag
  std::uint32_t lun = 0;
  scsi::Cdb cdb;           // kScsiCommand
  scsi::Status status = scsi::Status::kGood;  // kScsiResponse
  std::uint64_t data_len = 0;
  std::uint64_t buffer_offset = 0;
  rdma::RemoteKey rkey;    // iSER: advertised initiator buffer
  LoginParams login;       // kLoginRequest/kLoginResponse

  /// Wire size of the PDU (basic header segment + AHS; data counted
  /// separately by the datamover).
  [[nodiscard]] double wire_bytes() const noexcept {
    return type == PduType::kLoginRequest || type == PduType::kLoginResponse
               ? 512.0   // text negotiation payload
               : 76.0;   // BHS + iSER header
  }
};

// The data path copies PDUs freely (channels, wires, replay cache); keeping
// them trivially copyable means those copies are memcpys, not allocations.
static_assert(std::is_trivially_copyable_v<Pdu>);

}  // namespace e2e::iscsi
