#include "iscsi/tcp_datamover.hpp"

#include <algorithm>
#include <stdexcept>

namespace e2e::iscsi {

TcpDatamover::TcpDatamover(tcp::Connection& conn, numa::Process& proc,
                           bool is_target)
    : conn_(conn),
      proc_(proc),
      is_target_(is_target),
      ctrl_(proc.alloc(512)),
      rx_pdus_(proc.host().engine()) {}

void TcpDatamover::start(numa::Thread& rx, numa::Thread& tx) {
  if (started_) throw std::logic_error("TCP datamover already started");
  started_ = true;
  tx_ = &tx;
  sim::co_spawn(demux_loop(rx));
}

mem::MsgPtr TcpDatamover::fresh_wire() {
  if (wire_cache_ && wire_cache_.unique())
    *wire_cache_.mutable_as<Wire>() = Wire{};
  else
    wire_cache_ = mem::make_msg<Wire>();
  return wire_cache_;
}

sim::Task<> TcpDatamover::send_pdu(numa::Thread& th, const Pdu& pdu) {
  if (!started_) throw std::logic_error("send_pdu before start()");
  co_await th.compute(th.host().costs().iscsi_pdu_cycles,
                      metrics::CpuCategory::kUserProto);
  auto wire = fresh_wire();
  auto* w = wire.mutable_as<Wire>();
  w->kind = Wire::Kind::kControl;
  w->pdu = pdu;
  // The initiator remembers each WRITE command's I/O buffer so it can
  // answer the target's R2T later.
  if (!is_target_ && pdu.type == PduType::kScsiCommand &&
      pdu.cdb.op == scsi::OpCode::kWrite16)
    io_buffers_.insert(pdu.itt, pdu.rkey.buffer);
  co_await conn_.send(th, ctrl_,
                      static_cast<std::uint64_t>(pdu.wire_bytes()),
                      /*src_in_cache=*/true, std::move(wire));
}

sim::Task<std::optional<Pdu>> TcpDatamover::recv_pdu(numa::Thread& th) {
  auto pdu = co_await rx_pdus_.recv();
  if (!pdu) co_return std::nullopt;
  co_await th.compute(th.host().costs().iscsi_pdu_cycles,
                      metrics::CpuCategory::kUserProto);
  co_return *pdu;
}

sim::Task<> TcpDatamover::put_data(numa::Thread& th, mem::Buffer& staging,
                                   std::uint64_t bytes, rdma::RemoteKey rkey,
                                   std::uint64_t offset) {
  (void)offset;
  // Data-In: stream the payload as TCP segments. Each send pays the full
  // stack cost; the demux at the initiator lands it in the I/O buffer.
  std::uint64_t sent = 0;
  while (sent < bytes) {
    const std::uint64_t chunk = std::min(kDataSegmentBytes, bytes - sent);
    auto wire = fresh_wire();
    auto* w = wire.mutable_as<Wire>();
    w->kind = Wire::Kind::kDataIn;
    w->bytes = chunk;
    w->dest = rkey.buffer;
    w->tag = sent == 0 ? staging.content_tag : 0;
    ++data_pdus_;
    co_await conn_.send(th, staging.placement, chunk, false,
                        std::move(wire));
    sent += chunk;
  }
}

sim::Task<> TcpDatamover::put_data_nowait(numa::Thread& th,
                                          mem::Buffer& staging,
                                          std::uint64_t bytes,
                                          rdma::RemoteKey rkey,
                                          std::uint64_t offset,
                                          std::function<void()> on_complete) {
  // TCP send() completes once the data sits in the socket buffer, so the
  // staging buffer is reusable as soon as put_data returns.
  co_await put_data(th, staging, bytes, rkey, offset);
  on_complete();
}

sim::Task<> TcpDatamover::get_data(numa::Thread& th, mem::Buffer& staging,
                                   std::uint64_t bytes, rdma::RemoteKey rkey,
                                   std::uint64_t offset) {
  if (!is_target_)
    throw std::logic_error("get_data is a target-side operation");
  // R2T: ask the initiator to push `bytes`; rendezvous on the task tag.
  static std::uint64_t next_tag = 1;
  const std::uint64_t tag = next_tag++;
  PendingDataOut pending(th.host().engine());
  pending.remaining = bytes;
  pending_out_.insert(tag, &pending);

  Pdu r2t;
  r2t.type = PduType::kR2T;
  r2t.itt = tag;
  r2t.data_len = bytes;
  r2t.buffer_offset = offset;
  r2t.rkey = rkey;  // names the initiator I/O buffer to pull from
  auto wire = fresh_wire();
  auto* w = wire.mutable_as<Wire>();
  w->kind = Wire::Kind::kR2T;
  w->pdu = r2t;
  w->itt = tag;
  w->bytes = bytes;
  w->dest = &staging;
  co_await th.compute(th.host().costs().iscsi_pdu_cycles,
                      metrics::CpuCategory::kUserProto);
  co_await conn_.send(th, ctrl_,
                      static_cast<std::uint64_t>(r2t.wire_bytes()),
                      /*src_in_cache=*/true, std::move(wire));
  co_await pending.done.wait();
  pending_out_.erase(tag);
}

sim::Task<> TcpDatamover::answer_r2t(std::uint64_t itt, std::uint64_t bytes,
                                     mem::Buffer* staging, mem::Buffer* io) {
  // The initiator pushes Data-Out segments from the I/O buffer the R2T
  // names, to the staging buffer the target reserved for the rendezvous.
  std::uint64_t sent = 0;
  while (sent < bytes) {
    const std::uint64_t chunk = std::min(kDataSegmentBytes, bytes - sent);
    auto wire = fresh_wire();
    auto* w = wire.mutable_as<Wire>();
    w->kind = Wire::Kind::kDataOut;
    w->itt = itt;
    w->bytes = chunk;
    w->dest = staging;
    ++data_pdus_;
    co_await conn_.send(*tx_,
                        io != nullptr ? io->placement : ctrl_, chunk, false,
                        std::move(wire));
    sent += chunk;
  }
}

sim::Task<> TcpDatamover::demux_loop(numa::Thread& th) {
  for (;;) {
    auto m = co_await conn_.recv_raw(th);
    if (!m.payload) {
      rx_pdus_.close();
      co_return;
    }
    const auto* w = m.payload.as<Wire>();
    switch (w->kind) {
      case Wire::Kind::kControl:
        // On the initiator, a SCSI response retires the task's buffer.
        if (!is_target_ && w->pdu.type == PduType::kScsiResponse)
          io_buffers_.erase(w->pdu.itt);
        rx_pdus_.send(w->pdu);
        break;
      case Wire::Kind::kDataIn:
        // Land the payload in the I/O buffer: the deferred kernel->user
        // copy of the TCP receive path.
        if (w->dest != nullptr) {
          co_await conn_.copy_from_kernel(th, m.bytes, w->dest->placement);
          w->dest->content_tag ^= w->tag;
        }
        break;
      case Wire::Kind::kR2T:
        if (is_target_)
          throw std::logic_error("R2T received by the target");
        sim::co_spawn(
            answer_r2t(w->itt, w->bytes, w->dest, w->pdu.rkey.buffer));
        break;
      case Wire::Kind::kDataOut: {
        if (w->dest != nullptr)
          co_await conn_.copy_from_kernel(th, m.bytes, w->dest->placement);
        if (PendingDataOut** p = pending_out_.find(w->itt)) {
          (*p)->remaining -= std::min((*p)->remaining, m.bytes);
          if ((*p)->remaining == 0) (*p)->done.set();
        }
        break;
      }
    }
  }
}

}  // namespace e2e::iscsi
