// Datamover interface: how an iSCSI session moves PDUs and task data.
//
// Mirrors the datamover architecture (DA) split that iSER formalizes: the
// session/task logic above is identical for both bindings; the datamover
// below decides whether data travels as Data-In/Data-Out PDUs over TCP or
// as RDMA Write/Read operations (iSER).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "iscsi/pdu.hpp"
#include "mem/buffer.hpp"
#include "numa/thread.hpp"
#include "sim/task.hpp"

namespace e2e::iscsi {

class Datamover {
 public:
  virtual ~Datamover() = default;

  /// Sends a control PDU to the peer.
  ///
  /// NOTE (toolchain): coroutine parameters here are references, never
  /// by-value non-trivial types — GCC 12's coroutine lowering double-
  /// destroys prvalue arguments (fixed in later GCC). Callers must keep
  /// the PDU alive until the awaited send completes, which every call
  /// site does by awaiting immediately.
  virtual sim::Task<> send_pdu(numa::Thread& th, const Pdu& pdu) = 0;

  /// Receives the next control PDU (nullopt when the connection closes).
  virtual sim::Task<std::optional<Pdu>> recv_pdu(numa::Thread& th) = 0;

  /// Target data path, Data-In direction (serving a SCSI READ): moves
  /// `bytes` from the target staging buffer to the initiator buffer
  /// advertised in `rkey`. iSER: RDMA Write.
  virtual sim::Task<> put_data(numa::Thread& th, mem::Buffer& staging,
                               std::uint64_t bytes, rdma::RemoteKey rkey,
                               std::uint64_t offset) = 0;

  /// Fire-and-forget Data-In: posts the transfer and returns after the
  /// post; `on_complete` runs when the wire is done with `staging`
  /// (completion-driven buffer recycling). Because the SCSI response is
  /// posted on the same ordered QP after the data, the target may respond
  /// immediately without waiting for the data completion.
  virtual sim::Task<> put_data_nowait(numa::Thread& th, mem::Buffer& staging,
                                      std::uint64_t bytes,
                                      rdma::RemoteKey rkey,
                                      std::uint64_t offset,
                                      std::function<void()> on_complete) = 0;

  /// Target data path, Data-Out direction (serving a SCSI WRITE): fetches
  /// `bytes` from the initiator buffer in `rkey` into the staging buffer.
  /// iSER: RDMA Read.
  virtual sim::Task<> get_data(numa::Thread& th, mem::Buffer& staging,
                               std::uint64_t bytes, rdma::RemoteKey rkey,
                               std::uint64_t offset) = 0;
};

}  // namespace e2e::iscsi
