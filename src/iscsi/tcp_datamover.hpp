// Traditional iSCSI-over-TCP datamover (RFC 7143 data path).
//
// The transport the paper's iSER choice replaces. Task data travels as
// Data-In / Data-Out PDU sequences on the session's TCP connection:
//
//  * Data-In (serving SCSI READ): the target send()s the payload; every
//    byte pays the TCP tax on both hosts — user->kernel copy + per-packet
//    kernel work at the target, softirq + kernel->user copy at the
//    initiator.
//  * Data-Out (serving SCSI WRITE): the target issues an R2T
//    (ready-to-transfer); the initiator answers with Data-Out PDUs pulled
//    from the I/O buffer, again paying copies at both ends.
//
// Contrast with iser::IserEndpoint, where both directions are zero-copy
// RDMA. bench_ablation_iser_vs_tcp quantifies the difference.
#pragma once

#include <cstdint>

#include "iscsi/datamover.hpp"
#include "iscsi/pdu.hpp"
#include "mem/flat_table.hpp"
#include "mem/msg_pool.hpp"
#include "numa/process.hpp"
#include "sim/channel.hpp"
#include "sim/sync.hpp"
#include "tcp/connection.hpp"

namespace e2e::iscsi {

class TcpDatamover final : public Datamover {
 public:
  /// iSCSI MaxRecvDataSegmentLength: data PDUs are chunked to this size.
  static constexpr std::uint64_t kDataSegmentBytes = 256 * 1024;

  TcpDatamover(tcp::Connection& conn, numa::Process& proc, bool is_target);

  /// Spawns the receive demultiplexer on `rx` and keeps `tx` for answering
  /// R2Ts (initiator side). Call once per endpoint before traffic flows.
  void start(numa::Thread& rx, numa::Thread& tx);

  // --- Datamover interface ---
  sim::Task<> send_pdu(numa::Thread& th, const Pdu& pdu) override;
  sim::Task<std::optional<Pdu>> recv_pdu(numa::Thread& th) override;
  sim::Task<> put_data(numa::Thread& th, mem::Buffer& staging,
                       std::uint64_t bytes, rdma::RemoteKey rkey,
                       std::uint64_t offset) override;
  sim::Task<> put_data_nowait(numa::Thread& th, mem::Buffer& staging,
                              std::uint64_t bytes, rdma::RemoteKey rkey,
                              std::uint64_t offset,
                              std::function<void()> on_complete) override;
  sim::Task<> get_data(numa::Thread& th, mem::Buffer& staging,
                       std::uint64_t bytes, rdma::RemoteKey rkey,
                       std::uint64_t offset) override;

  [[nodiscard]] std::uint64_t data_pdus() const noexcept {
    return data_pdus_;
  }

 private:
  struct Wire {
    enum class Kind { kControl, kDataIn, kDataOut, kR2T } kind = Kind::kControl;
    Pdu pdu;                       // kControl
    std::uint64_t itt = 0;         // data/R2T sequences
    std::uint64_t bytes = 0;
    mem::Buffer* dest = nullptr;   // where the payload lands
    // Integrity tag XORed into `dest` at the demux (first segment of a
    // chunk carries the whole chunk's tag; TCP delivers reliably).
    std::uint64_t tag = 0;
  };
  struct PendingDataOut {
    std::uint64_t remaining = 0;
    sim::ManualEvent done;
    explicit PendingDataOut(sim::Engine& eng) : done(eng) {}
  };

  sim::Task<> demux_loop(numa::Thread& th);
  sim::Task<> answer_r2t(std::uint64_t itt, std::uint64_t bytes,
                         mem::Buffer* staging, mem::Buffer* io);

  /// A zeroed wire message ready to fill: reuses the datamover's cached
  /// block when its previous send has drained (steady-state fast path),
  /// else pulls a pooled one. The cache keeps one reference; mutating the
  /// returned message is safe because no consumer holds it yet.
  mem::MsgPtr fresh_wire();

  tcp::Connection& conn_;
  numa::Process& proc_;
  bool is_target_;
  numa::Placement ctrl_;  // tiny header staging for control sends
  numa::Thread* tx_ = nullptr;
  sim::Channel<Pdu> rx_pdus_;
  mem::MsgPtr wire_cache_;  // one reusable wire per datamover
  mem::FlatMap<mem::Buffer*> io_buffers_;           // initiator
  mem::FlatMap<PendingDataOut*> pending_out_;       // target
  std::uint64_t data_pdus_ = 0;
  bool started_ = false;
};

/// One iSCSI/TCP session: the connection plus both datamover endpoints.
class TcpSession {
 public:
  TcpSession(numa::Host& init_host, numa::NodeId init_node,
             numa::Host& tgt_host, numa::NodeId tgt_node, net::Link& link,
             numa::Process& init_proc, numa::Process& tgt_proc)
      : conn_(init_host, init_node, tgt_host, tgt_node, link),
        initiator_ep_(conn_, init_proc, /*is_target=*/false),
        target_ep_(conn_, tgt_proc, /*is_target=*/true) {}

  sim::Task<> start(numa::Thread& init_rx, numa::Thread& init_tx,
                    numa::Thread& tgt_rx, numa::Thread& tgt_tx) {
    co_await conn_.connect(init_rx);
    initiator_ep_.start(init_rx, init_tx);
    target_ep_.start(tgt_rx, tgt_tx);
  }

  [[nodiscard]] tcp::Connection& connection() noexcept { return conn_; }
  [[nodiscard]] TcpDatamover& initiator_ep() noexcept {
    return initiator_ep_;
  }
  [[nodiscard]] TcpDatamover& target_ep() noexcept { return target_ep_; }

 private:
  tcp::Connection conn_;
  TcpDatamover initiator_ep_;
  TcpDatamover target_ep_;
};

}  // namespace e2e::iscsi
