// iSCSI initiator session core (open-iscsi analogue).
//
// Drives a login negotiation and then submits SCSI tasks over a Datamover.
// Tasks run concurrently: submit_* registers the task under a fresh
// initiator task tag, a dispatcher coroutine demultiplexes ScsiResponse
// PDUs back to the waiting submitter.
#pragma once

#include <cstdint>
#include <map>
#include <memory>

#include "iscsi/datamover.hpp"
#include "iscsi/pdu.hpp"
#include "mem/buffer.hpp"
#include "numa/process.hpp"
#include "sim/channel.hpp"
#include "sim/sync.hpp"
#include "trace/tracer.hpp"

namespace e2e::iscsi {

class Initiator {
 public:
  /// `command_timeout` (0 = disabled): how long to wait for a SCSI
  /// response before retransmitting the command (the target suppresses
  /// duplicates). Bounds recovery from lost control PDUs.
  Initiator(numa::Process& proc, Datamover& dm,
            sim::SimDuration command_timeout = 0)
      : proc_(proc), dm_(dm), command_timeout_(command_timeout) {}
  Initiator(const Initiator&) = delete;
  Initiator& operator=(const Initiator&) = delete;

  /// Login phase: proposes `params`, records what the target accepted.
  /// Must complete before start_dispatcher()/submit_*.
  sim::Task<bool> login(numa::Thread& th, const LoginParams& params);

  /// Spawns the response dispatcher on `th` (a dedicated session thread).
  void start_dispatcher(numa::Thread& th);

  /// Submits READ(16): target data lands in `data` via the datamover.
  sim::Task<scsi::Status> submit_read(numa::Thread& th, std::uint32_t lun,
                                      std::uint64_t lba, std::uint32_t blocks,
                                      mem::Buffer& data);

  /// Submits WRITE(16): target pulls from `data`.
  sim::Task<scsi::Status> submit_write(numa::Thread& th, std::uint32_t lun,
                                       std::uint64_t lba, std::uint32_t blocks,
                                       mem::Buffer& data);

  /// Graceful logout (close of the session).
  sim::Task<> logout(numa::Thread& th);

  [[nodiscard]] const LoginParams& negotiated() const noexcept {
    return negotiated_;
  }
  [[nodiscard]] bool logged_in() const noexcept { return logged_in_; }
  [[nodiscard]] std::uint64_t tasks_completed() const noexcept {
    return tasks_completed_;
  }
  /// Commands retransmitted after a response timeout.
  [[nodiscard]] std::uint64_t command_retries() const noexcept {
    return command_retries_;
  }

 private:
  struct Pending {
    // true = response arrived; false = timeout fired.
    sim::Channel<bool> wake;
    scsi::Status status = scsi::Status::kGood;
    explicit Pending(sim::Engine& eng) : wake(eng) {}
  };

  sim::Task<scsi::Status> submit_io(numa::Thread& th, scsi::OpCode op,
                                    std::uint32_t lun, std::uint64_t lba,
                                    std::uint32_t blocks, mem::Buffer& data);
  sim::Task<> dispatch_loop(numa::Thread& th);

  numa::Process& proc_;
  Datamover& dm_;
  LoginParams negotiated_;
  bool logged_in_ = false;
  bool dispatcher_running_ = false;
  sim::SimDuration command_timeout_ = 0;
  std::uint64_t next_itt_ = 1;
  std::uint64_t tasks_completed_ = 0;
  std::uint64_t command_retries_ = 0;
  std::map<std::uint64_t, std::shared_ptr<Pending>> pending_;
  trace::CachedTrack trace_trk_;
};

}  // namespace e2e::iscsi
