// iSCSI initiator session core (open-iscsi analogue).
//
// Drives a login negotiation and then submits SCSI tasks over a Datamover.
// Tasks run concurrently: submit_* registers the task under a fresh
// initiator task tag, a dispatcher coroutine demultiplexes ScsiResponse
// PDUs back to the waiting submitter.
#pragma once

#include <cstdint>

#include "iscsi/datamover.hpp"
#include "iscsi/pdu.hpp"
#include "mem/buffer.hpp"
#include "mem/flat_table.hpp"
#include "numa/process.hpp"
#include "sim/channel.hpp"
#include "sim/rng.hpp"
#include "sim/sync.hpp"
#include "stats/registry.hpp"
#include "trace/tracer.hpp"

namespace e2e::iscsi {

/// Bounds and shapes the initiator's recovery behaviour. Retransmission
/// timeouts grow exponentially (capped) with uniform jitter so retry storms
/// decorrelate; the attempt budget turns a dead session into a terminal
/// scsi::Status::kTransportError instead of an infinite retransmit loop.
struct RetryPolicy {
  /// Transmissions per command, including the first (>= 1). Exhausting the
  /// budget surfaces kTransportError to the submitter.
  int max_attempts = 8;
  /// Timeout growth per retransmission (capped exponential backoff).
  double backoff_multiplier = 2.0;
  /// Upper bound for the grown timeout (0 = uncapped).
  sim::SimDuration backoff_cap = 0;
  /// Uniform jitter added to each armed timeout, as a fraction of it
  /// (0.1 = up to +10%). Drawn from a deterministic seeded PRNG.
  double jitter = 0.0;
  std::uint64_t jitter_seed = 0x7E57;
  /// End-to-end READ integrity: verify the landed data's content tag
  /// against the analytic block-range tag, re-driving the I/O under a
  /// fresh task tag on mismatch (recovers data lost to wire faults that
  /// the control path's replay cache papers over). Off by default: tags
  /// are only meaningful when each in-flight buffer serves one I/O.
  bool verify_read_digest = false;
  /// Fresh-ITT re-drives allowed per READ on digest mismatch.
  int max_digest_retries = 3;
};

class Initiator {
 public:
  /// `command_timeout` (0 = disabled): how long to wait for a SCSI
  /// response before retransmitting the command (the target suppresses
  /// duplicates). Bounds recovery from lost control PDUs; `policy` bounds
  /// and shapes the retransmissions themselves.
  Initiator(numa::Process& proc, Datamover& dm,
            sim::SimDuration command_timeout = 0, RetryPolicy policy = {})
      : proc_(proc),
        dm_(dm),
        command_timeout_(command_timeout),
        policy_(policy),
        jitter_rng_(policy.jitter_seed) {}
  Initiator(const Initiator&) = delete;
  Initiator& operator=(const Initiator&) = delete;

  /// Login phase: proposes `params`, records what the target accepted.
  /// Must complete before start_dispatcher()/submit_*.
  sim::Task<bool> login(numa::Thread& th, const LoginParams& params);

  /// Spawns the response dispatcher on `th` (a dedicated session thread).
  void start_dispatcher(numa::Thread& th);

  /// Submits READ(16): target data lands in `data` via the datamover.
  sim::Task<scsi::Status> submit_read(numa::Thread& th, std::uint32_t lun,
                                      std::uint64_t lba, std::uint32_t blocks,
                                      mem::Buffer& data);

  /// Submits WRITE(16): target pulls from `data`.
  sim::Task<scsi::Status> submit_write(numa::Thread& th, std::uint32_t lun,
                                       std::uint64_t lba, std::uint32_t blocks,
                                       mem::Buffer& data);

  /// Graceful logout (close of the session).
  sim::Task<> logout(numa::Thread& th);

  [[nodiscard]] const LoginParams& negotiated() const noexcept {
    return negotiated_;
  }
  [[nodiscard]] bool logged_in() const noexcept { return logged_in_; }
  [[nodiscard]] std::uint64_t tasks_completed() const noexcept {
    return tasks_completed_;
  }
  /// Commands retransmitted after a response timeout.
  [[nodiscard]] std::uint64_t command_retries() const noexcept {
    return command_retries_;
  }
  /// Commands abandoned with kTransportError (retry budget exhausted).
  [[nodiscard]] std::uint64_t command_failures() const noexcept {
    return command_failures_;
  }
  /// READ digest mismatches detected (verify_read_digest).
  [[nodiscard]] std::uint64_t digest_errors() const noexcept {
    return digest_errors_;
  }
  [[nodiscard]] const RetryPolicy& policy() const noexcept { return policy_; }
  /// Rendezvous slots ever allocated (tests: recycling keeps this at the
  /// concurrency high-water mark, not the command count).
  [[nodiscard]] std::size_t pending_slots() const noexcept {
    return pending_.slot_count();
  }

 private:
  struct Pending {
    // true = response arrived; false = timeout fired.
    sim::Channel<bool> wake;
    scsi::Status status = scsi::Status::kGood;
    // Response consumed: further responses for the tag are duplicates.
    bool completed = false;
    explicit Pending(sim::Engine& eng) : wake(eng) {}
    /// Clears recycled-slot state (the table reuses Pending objects).
    void reset() {
      status = scsi::Status::kGood;
      completed = false;
      while (wake.try_recv()) {
      }
    }
  };

  sim::Task<scsi::Status> submit_io(numa::Thread& th, scsi::OpCode op,
                                    std::uint32_t lun, std::uint64_t lba,
                                    std::uint32_t blocks, mem::Buffer& data);
  sim::Task<> dispatch_loop(numa::Thread& th);

  numa::Process& proc_;
  Datamover& dm_;
  LoginParams negotiated_;
  bool logged_in_ = false;
  bool dispatcher_running_ = false;
  sim::SimDuration command_timeout_ = 0;
  RetryPolicy policy_;
  sim::Rng jitter_rng_;
  std::uint64_t next_itt_ = 1;
  std::uint64_t tasks_completed_ = 0;
  std::uint64_t command_retries_ = 0;
  std::uint64_t command_failures_ = 0;
  std::uint64_t digest_errors_ = 0;
  // Flat slot-indexed rendezvous: Pending objects (and their channels) are
  // recycled across commands; timers hold generation-counted Refs that go
  // stale on erase instead of keeping the object alive.
  mem::PendingTable<Pending> pending_;
  trace::CachedTrack trace_trk_;

  // Stats handles: command-latency histogram plus retry/failure counters,
  // with flight records for every retransmission and abandonment.
  stats::CachedEntity stats_ent_;
  stats::CachedHistogram hist_cmd_;
  stats::CachedCounter sctr_retries_;
  stats::CachedCounter sctr_failures_;
  stats::CachedCode code_retry_;
  stats::CachedCode code_abandon_;

  stats::EntityId stats_entity(stats::Registry* st) {
    return stats_ent_.get_lazy(st, stats::Layer::kIscsi, [this] {
      return proc_.host().name() + "/initiator";
    });
  }
};

}  // namespace e2e::iscsi
