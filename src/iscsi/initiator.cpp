#include "iscsi/initiator.hpp"

#include <algorithm>
#include <stdexcept>

#include "check/audit.hpp"
#include "fault/integrity.hpp"
#include "fault/watchdog.hpp"

namespace e2e::iscsi {

sim::Task<bool> Initiator::login(numa::Thread& th, const LoginParams& params) {
  Pdu req;
  req.type = PduType::kLoginRequest;
  req.login = params;
  co_await dm_.send_pdu(th, req);

  auto resp = co_await dm_.recv_pdu(th);
  if (!resp || resp->type != PduType::kLoginResponse) co_return false;
  negotiated_ = resp->login;
  logged_in_ = true;
  co_return true;
}

void Initiator::start_dispatcher(numa::Thread& th) {
  if (dispatcher_running_) throw std::logic_error("dispatcher already running");
  if (!logged_in_) throw std::logic_error("dispatcher before login");
  dispatcher_running_ = true;
  sim::co_spawn(dispatch_loop(th));
}

sim::Task<> Initiator::dispatch_loop(numa::Thread& th) {
  for (;;) {
    auto pdu = co_await dm_.recv_pdu(th);
    if (!pdu) co_return;  // session closed
    if (pdu->type == PduType::kLogoutResponse) co_return;
    if (pdu->type != PduType::kScsiResponse) continue;  // NOPs etc.
    Pending* p = pending_.find(pdu->itt);
    if (p == nullptr || p->completed) continue;  // late dup after a retry
    p->completed = true;
    p->status = pdu->status;
    ++tasks_completed_;
    if (auto* au = check::of(th.host().engine()))
      au->flow_out(this, "iscsi.tasks", 1);
    p->wake.send(true);
  }
}

sim::Task<scsi::Status> Initiator::submit_io(numa::Thread& th, scsi::OpCode op,
                                             std::uint32_t lun,
                                             std::uint64_t lba,
                                             std::uint32_t blocks,
                                             mem::Buffer& data) {
  if (!dispatcher_running_)
    throw std::logic_error("submit before start_dispatcher");
  const std::uint64_t bytes = std::uint64_t{blocks} * scsi::Cdb::kBlockSize;
  if (data.bytes < bytes)
    throw std::length_error("I/O buffer smaller than transfer length");

  Pdu cmd;
  cmd.type = PduType::kScsiCommand;
  cmd.itt = next_itt_++;
  cmd.lun = lun;
  cmd.cdb = {op, lba, blocks};
  cmd.data_len = bytes;
  cmd.rkey = rdma::RemoteKey{&data};

  auto& eng = th.host().engine();
  Pending* pending = &pending_.emplace(cmd.itt, eng);
  pending->reset();  // the slot (and its channel) may be recycled
  const auto pending_ref = pending_.ref_of(cmd.itt);
  if (auto* au = check::of(eng)) au->flow_in(this, "iscsi.tasks", 1);

  // Concurrent SCSI tasks overlap, so each traces as an async span keyed
  // by its initiator task tag, from submission to response.
  const char* span = op == scsi::OpCode::kRead16 ? "scsi-read" : "scsi-write";
  if (auto* tr = trace::of(eng)) {
    tr->async_begin(trace_trk_.get(tr, trace::Layer::kIscsi,
                                   proc_.host().name() + "/initiator"),
                    span, cmd.itt);
    tr->counter("iscsi/tasks_submitted").add(1);
  }

  // Initiator-side task bookkeeping (tag allocation, SGL mapping).
  co_await th.compute(th.host().costs().iser_initiator_cycles,
                      metrics::CpuCategory::kUserProto);

  const sim::SimTime cmd_t0 = eng.now();
  bool terminal = false;
  sim::SimDuration timeout = command_timeout_;
  for (int attempt = 1;; ++attempt) {
    co_await dm_.send_pdu(th, cmd);
    if (command_timeout_ == 0) {
      (void)co_await pending->wake.recv();
      break;
    }
    // Arm a (jittered) timeout. The timer holds a generation-counted Ref:
    // once the rendezvous is erased (or its slot recycled for a later
    // command), a late firing resolves to null instead of waking anyone.
    const sim::SimDuration armed =
        fault::with_jitter(timeout, policy_.jitter, jitter_rng_);
    eng.schedule_after(armed, [tbl = &pending_, pending_ref] {
      if (Pending* p = tbl->get(pending_ref)) p->wake.send(false);
    });
    const auto woke = co_await pending->wake.recv();
    if (woke && *woke) break;  // genuine response
    if (attempt >= std::max(policy_.max_attempts, 1)) {
      // Retry budget exhausted: abandon the task and surface a terminal
      // transport error. Erasing the rendezvous turns any late response
      // into an ignorable duplicate.
      pending_.erase(cmd.itt);
      terminal = true;
      ++command_failures_;
      if (auto* tr = trace::of(eng)) {
        tr->instant(trace_trk_.get(tr, trace::Layer::kIscsi,
                                   proc_.host().name() + "/initiator"),
                    "command-abandoned");
        tr->counter("iscsi/command_failures").add(1);
      }
      if (auto* st = stats::of(eng)) {
        const auto e = stats_entity(st);
        sctr_failures_.get(st, e, "command_failures").add(1);
        st->flight(stats::Layer::kIscsi, e,
                   code_abandon_.get(st, "command-abandoned"), cmd.itt);
        // A command going terminal is the recovery chain giving up: dump
        // the flight window while the lead-up is still in the ring.
        st->trigger_flight_dump("iscsi:command-abandoned");
      }
      break;
    }
    // Timed out: retransmit the same task tag with the timeout grown by
    // the backoff multiplier (capped). The target suppresses duplicates,
    // so at-most-once execution is preserved.
    ++command_retries_;
    timeout =
        fault::grow(timeout, policy_.backoff_multiplier, policy_.backoff_cap);
    if (auto* tr = trace::of(eng)) {
      tr->instant(trace_trk_.get(tr, trace::Layer::kIscsi,
                                 proc_.host().name() + "/initiator"),
                  "command-retry");
      tr->counter("iscsi/command_retries").add(1);
    }
    if (auto* st = stats::of(eng)) {
      const auto e = stats_entity(st);
      sctr_retries_.get(st, e, "command_retries").add(1);
      st->flight(stats::Layer::kIscsi, e,
                 code_retry_.get(st, "command-retry"), cmd.itt);
    }
  }
  if (auto* tr = trace::of(eng)) {
    tr->async_end(trace_trk_.get(tr, trace::Layer::kIscsi,
                                 proc_.host().name() + "/initiator"),
                  span, cmd.itt);
    tr->counter(terminal ? "iscsi/tasks_failed" : "iscsi/tasks_completed")
        .add(1);
  }
  if (auto* st = stats::of(eng)) {
    const auto e = stats_entity(st);
    hist_cmd_.get(st, e, "cmd_ns")
        .record(static_cast<std::uint64_t>(eng.now() - cmd_t0));
    st->counter(e, terminal ? "tasks_failed" : "tasks_completed").add(1);
  }
  if (terminal) co_return scsi::Status::kTransportError;
  // Release the rendezvous slot for recycling only after the status is out
  // of it (the terminal path released it when it abandoned the task).
  const scsi::Status status = pending->status;
  pending_.erase(cmd.itt);
  co_return status;
}

sim::Task<scsi::Status> Initiator::submit_read(numa::Thread& th,
                                               std::uint32_t lun,
                                               std::uint64_t lba,
                                               std::uint32_t blocks,
                                               mem::Buffer& data) {
  if (!policy_.verify_read_digest)
    co_return co_await submit_io(th, scsi::OpCode::kRead16, lun, lba, blocks,
                                 data);
  // End-to-end integrity: the landed data must compose to the analytic
  // range tag. A lost Data-In delivery leaves the tag short even when the
  // control path replays a GOOD response, so mismatches re-drive the whole
  // I/O under a fresh task tag (a fresh ITT defeats the replay cache).
  const std::uint64_t expected = fault::block_range_tag_cached(lba, blocks);
  auto& eng = th.host().engine();
  for (int attempt = 0;; ++attempt) {
    data.content_tag = 0;
    const auto st =
        co_await submit_io(th, scsi::OpCode::kRead16, lun, lba, blocks, data);
    if (st != scsi::Status::kGood) co_return st;
    if (data.content_tag == expected) co_return scsi::Status::kGood;
    ++digest_errors_;
    if (auto* tr = trace::of(eng)) {
      tr->instant(trace_trk_.get(tr, trace::Layer::kIscsi,
                                 proc_.host().name() + "/initiator"),
                  "digest-mismatch");
      tr->counter("iscsi/digest_errors").add(1);
    }
    if (auto* sr = stats::of(eng))
      sr->counter(stats_entity(sr), "digest_errors").add(1);
    if (attempt >= policy_.max_digest_retries) {
      ++command_failures_;
      if (auto* tr = trace::of(eng))
        tr->counter("iscsi/command_failures").add(1);
      co_return scsi::Status::kTransportError;
    }
  }
}

sim::Task<scsi::Status> Initiator::submit_write(numa::Thread& th,
                                                std::uint32_t lun,
                                                std::uint64_t lba,
                                                std::uint32_t blocks,
                                                mem::Buffer& data) {
  // Stamp the source buffer's identity so one-sided pulls propagate it;
  // write-path integrity is verified against the LUN's written digest.
  data.content_tag = fault::block_range_tag_cached(lba, blocks);
  return submit_io(th, scsi::OpCode::kWrite16, lun, lba, blocks, data);
}

sim::Task<> Initiator::logout(numa::Thread& th) {
  Pdu req;
  req.type = PduType::kLogoutRequest;
  co_await dm_.send_pdu(th, req);
  logged_in_ = false;
}

}  // namespace e2e::iscsi
