#include "iscsi/initiator.hpp"

#include <stdexcept>

namespace e2e::iscsi {

sim::Task<bool> Initiator::login(numa::Thread& th, const LoginParams& params) {
  Pdu req;
  req.type = PduType::kLoginRequest;
  req.login = params;
  co_await dm_.send_pdu(th, req);

  auto resp = co_await dm_.recv_pdu(th);
  if (!resp || resp->type != PduType::kLoginResponse) co_return false;
  negotiated_ = resp->login;
  logged_in_ = true;
  co_return true;
}

void Initiator::start_dispatcher(numa::Thread& th) {
  if (dispatcher_running_) throw std::logic_error("dispatcher already running");
  if (!logged_in_) throw std::logic_error("dispatcher before login");
  dispatcher_running_ = true;
  sim::co_spawn(dispatch_loop(th));
}

sim::Task<> Initiator::dispatch_loop(numa::Thread& th) {
  for (;;) {
    auto pdu = co_await dm_.recv_pdu(th);
    if (!pdu) co_return;  // session closed
    if (pdu->type == PduType::kLogoutResponse) co_return;
    if (pdu->type != PduType::kScsiResponse) continue;  // NOPs etc.
    auto it = pending_.find(pdu->itt);
    if (it == pending_.end()) continue;  // late duplicate after a retry
    std::shared_ptr<Pending> p = it->second;
    pending_.erase(it);
    p->status = pdu->status;
    ++tasks_completed_;
    p->wake.send(true);
  }
}

sim::Task<scsi::Status> Initiator::submit_io(numa::Thread& th, scsi::OpCode op,
                                             std::uint32_t lun,
                                             std::uint64_t lba,
                                             std::uint32_t blocks,
                                             mem::Buffer& data) {
  if (!dispatcher_running_)
    throw std::logic_error("submit before start_dispatcher");
  const std::uint64_t bytes = std::uint64_t{blocks} * scsi::Cdb::kBlockSize;
  if (data.bytes < bytes)
    throw std::length_error("I/O buffer smaller than transfer length");

  Pdu cmd;
  cmd.type = PduType::kScsiCommand;
  cmd.itt = next_itt_++;
  cmd.lun = lun;
  cmd.cdb = {op, lba, blocks};
  cmd.data_len = bytes;
  cmd.rkey = rdma::RemoteKey{&data};

  auto& eng = th.host().engine();
  auto pending = std::make_shared<Pending>(eng);
  pending_.emplace(cmd.itt, pending);

  // Concurrent SCSI tasks overlap, so each traces as an async span keyed
  // by its initiator task tag, from submission to response.
  const char* span = op == scsi::OpCode::kRead16 ? "scsi-read" : "scsi-write";
  if (auto* tr = trace::of(eng)) {
    tr->async_begin(trace_trk_.get(tr, trace::Layer::kIscsi,
                                   proc_.host().name() + "/initiator"),
                    span, cmd.itt);
    tr->counter("iscsi/tasks_submitted").add(1);
  }

  // Initiator-side task bookkeeping (tag allocation, SGL mapping).
  co_await th.compute(th.host().costs().iser_initiator_cycles,
                      metrics::CpuCategory::kUserProto);

  for (;;) {
    co_await dm_.send_pdu(th, cmd);
    if (command_timeout_ == 0) {
      (void)co_await pending->wake.recv();
      break;
    }
    // Arm a timeout; the shared_ptr keeps the rendezvous alive even if the
    // timer outlives this task.
    eng.schedule_after(command_timeout_,
                       [pending] { pending->wake.send(false); });
    const auto woke = co_await pending->wake.recv();
    if (woke && *woke) break;  // genuine response
    // Timed out: retransmit the same task tag. The target suppresses
    // duplicates, so at-most-once execution is preserved.
    ++command_retries_;
    if (auto* tr = trace::of(eng)) {
      tr->instant(trace_trk_.get(tr, trace::Layer::kIscsi,
                                 proc_.host().name() + "/initiator"),
                  "command-retry");
      tr->counter("iscsi/command_retries").add(1);
    }
  }
  if (auto* tr = trace::of(eng)) {
    tr->async_end(trace_trk_.get(tr, trace::Layer::kIscsi,
                                 proc_.host().name() + "/initiator"),
                  span, cmd.itt);
    tr->counter("iscsi/tasks_completed").add(1);
  }
  co_return pending->status;
}

sim::Task<scsi::Status> Initiator::submit_read(numa::Thread& th,
                                               std::uint32_t lun,
                                               std::uint64_t lba,
                                               std::uint32_t blocks,
                                               mem::Buffer& data) {
  return submit_io(th, scsi::OpCode::kRead16, lun, lba, blocks, data);
}

sim::Task<scsi::Status> Initiator::submit_write(numa::Thread& th,
                                                std::uint32_t lun,
                                                std::uint64_t lba,
                                                std::uint32_t blocks,
                                                mem::Buffer& data) {
  return submit_io(th, scsi::OpCode::kWrite16, lun, lba, blocks, data);
}

sim::Task<> Initiator::logout(numa::Thread& th) {
  Pdu req;
  req.type = PduType::kLogoutRequest;
  co_await dm_.send_pdu(th, req);
  logged_in_ = false;
}

}  // namespace e2e::iscsi
