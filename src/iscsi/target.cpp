#include "iscsi/target.hpp"

#include <algorithm>
#include <stdexcept>

#include "check/audit.hpp"
#include "fault/integrity.hpp"

namespace e2e::iscsi {

Target::Target(numa::Process& proc, Datamover& dm,
               std::vector<scsi::Lun*> luns, mem::BufferPool& pool,
               TargetSched sched)
    : proc_(proc),
      dm_(dm),
      pool_(pool),
      sched_(sched),
      requests_(proc.host().engine()) {
  for (auto* l : luns) luns_.insert(l->id(), l);
  if (sched_ == TargetSched::kNumaRouted)
    for (int n = 0; n < proc.host().node_count(); ++n)
      node_requests_.push_back(
          std::make_unique<sim::Channel<Pdu>>(proc.host().engine()));
}

void Target::start(int workers) {
  if (started_) throw std::logic_error("target already started");
  started_ = true;
  sim::co_spawn(rx_loop(proc_.spawn_thread()));
  for (int i = 0; i < workers; ++i) {
    if (sched_ == TargetSched::kNumaRouted) {
      // Spread workers over nodes; each serves its node's queue.
      const numa::NodeId n = i % proc_.host().node_count();
      const numa::CoreId core =
          proc_.host().pick_core(numa::SchedPolicy::kBindNode, n);
      sim::co_spawn(worker_loop(proc_.spawn_pinned_thread(core),
                                *node_requests_[static_cast<std::size_t>(n)]));
    } else {
      sim::co_spawn(worker_loop(proc_.spawn_thread(), requests_));
    }
  }
}

sim::Channel<Pdu>& Target::route(const Pdu& cmd) {
  if (sched_ != TargetSched::kNumaRouted) return requests_;
  // libnuma-style dispatch: send the task to a worker on the node that
  // holds the LUN's backing pages; unknown/interleaved LUNs fall back to
  // a round-robin choice by task tag.
  if (scsi::Lun* const* l = luns_.find(cmd.lun)) {
    const auto& placement = (*l)->backing().placement;
    if (placement.extents.size() == 1)
      return *node_requests_[static_cast<std::size_t>(
          placement.extents[0].node)];
  }
  return *node_requests_[cmd.itt % node_requests_.size()];
}

void Target::stop() {
  requests_.close();
  for (auto& q : node_requests_) q->close();
}

scsi::Lun* Target::find_lun(std::uint32_t id) {
  scsi::Lun* const* l = luns_.find(id);
  return l == nullptr ? nullptr : *l;
}

sim::Task<> Target::rx_loop(numa::Thread& th) {
  for (;;) {
    auto pdu = co_await dm_.recv_pdu(th);
    if (!pdu) {
      stop();
      co_return;
    }
    switch (pdu->type) {
      case PduType::kLoginRequest: {
        // Accept the proposal, clamping burst lengths to what the staging
        // pool can pipeline.
        Pdu resp;
        resp.type = PduType::kLoginResponse;
        resp.login = pdu->login;
        resp.login.max_burst_length = std::max<std::uint64_t>(
            pool_.buffer_bytes(), pdu->login.max_burst_length);
        co_await dm_.send_pdu(th, resp);
        break;
      }
      case PduType::kScsiCommand: {
        if (in_progress_.contains(pdu->itt)) break;  // retry of a live task
        if (const scsi::Status* done = completed_.find(pdu->itt)) {
          // Replay the response for an already-executed task.
          Pdu resp;
          resp.type = PduType::kScsiResponse;
          resp.itt = pdu->itt;
          resp.status = *done;
          co_await dm_.send_pdu(th, resp);
          break;
        }
        in_progress_.insert(pdu->itt, 1);
        if (auto* au = check::of(proc_.host().engine())) {
          if (pdu->cdb.op == scsi::OpCode::kWrite16)
            au->flow_in(this, "iscsi.write", pdu->cdb.byte_count());
          else if (pdu->cdb.op == scsi::OpCode::kRead16)
            au->flow_in(this, "iscsi.read", pdu->cdb.byte_count());
        }
        route(*pdu).send(*pdu);
        break;
      }
      case PduType::kLogoutRequest: {
        Pdu resp;
        resp.type = PduType::kLogoutResponse;
        co_await dm_.send_pdu(th, resp);
        stop();
        co_return;
      }
      default:
        break;  // NOPs and TCP-binding PDUs: ignored by the iSER target
    }
  }
}

sim::Task<> Target::worker_loop(numa::Thread& th, sim::Channel<Pdu>& queue) {
  for (;;) {
    auto cmd = co_await queue.recv();
    if (!cmd) co_return;
    co_await serve_task(th, *cmd);
  }
}

sim::Task<> Target::serve_task(numa::Thread& th, Pdu cmd) {
  const auto& cm = th.host().costs();
  co_await th.compute(cm.iser_task_cycles, metrics::CpuCategory::kUserProto);

  Pdu resp;
  resp.type = PduType::kScsiResponse;
  resp.itt = cmd.itt;
  resp.status = scsi::Status::kGood;

  scsi::Lun* lun = find_lun(cmd.lun);
  switch (cmd.cdb.op) {
    case scsi::OpCode::kTestUnitReady:
    case scsi::OpCode::kInquiry:
    case scsi::OpCode::kReadCapacity16:
      if (!lun) resp.status = scsi::Status::kCheckCondition;
      break;

    case scsi::OpCode::kRead16:
    case scsi::OpCode::kWrite16: {
      if (!lun) {
        resp.status = scsi::Status::kCheckCondition;
        break;
      }
      const bool is_read = cmd.cdb.op == scsi::OpCode::kRead16;
      std::uint64_t remaining = cmd.cdb.byte_count();
      std::uint64_t offset = 0;
      std::uint64_t lba = cmd.cdb.lba;
      // Segment transfers through the staging pool and pipeline them.
      while (remaining > 0 && resp.status == scsi::Status::kGood) {
        mem::Buffer* staging = co_await pool_.acquire();
        const std::uint64_t chunk = std::min(remaining, staging->bytes);
        const auto blocks =
            static_cast<std::uint32_t>(chunk / scsi::Cdb::kBlockSize);
        if (is_read) {
          resp.status =
              co_await lun->read(th, lba, blocks, staging->placement);
          if (resp.status == scsi::Status::kGood) {
            // Stamp the staging chunk's payload identity; the datamover
            // carries it to the initiator buffer for digest verification.
            staging->content_tag = fault::block_range_tag_cached(lba, blocks);
            // Data-In rides the ordered session QP ahead of the response;
            // the staging buffer recycles on the send completion, and the
            // worker moves on immediately (completion-driven pipeline).
            mem::BufferPool* pool = &pool_;
            co_await dm_.put_data_nowait(
                th, *staging, chunk, cmd.rkey, offset,
                [pool, staging] { pool->release(staging); });
            staging = nullptr;
          }
          bytes_out_ += chunk;
          if (auto* au = check::of(th.host().engine()))
            au->flow_out(this, "iscsi.read", chunk);
        } else {
          co_await dm_.get_data(th, *staging, chunk, cmd.rkey, offset);
          resp.status =
              co_await lun->write(th, lba, blocks, staging->placement);
          bytes_in_ += chunk;
          if (auto* au = check::of(th.host().engine()))
            au->flow_out(this, "iscsi.write", chunk);
        }
        if (staging != nullptr) pool_.release(staging);
        remaining -= chunk;
        offset += chunk;
        lba += blocks;
      }
      break;
    }
  }

  ++tasks_served_;
  in_progress_.erase(cmd.itt);
  completed_.insert(cmd.itt, resp.status);
  completed_order_.push_back(cmd.itt);
  if (completed_order_.size() > kCompletedHistory) {
    completed_.erase(completed_order_.front());
    completed_order_.pop_front();
  }
  co_await dm_.send_pdu(th, resp);
}

}  // namespace e2e::iscsi
