#include "metrics/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace e2e::metrics {

std::string Table::num(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", prec, v);
  return buf;
}

std::string Table::to_string() const {
  std::vector<std::size_t> width(header_.size(), 0);
  auto widen = [&](const std::vector<std::string>& cells) {
    if (cells.size() > width.size()) width.resize(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i)
      width[i] = std::max(width[i], cells[i].size());
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  std::ostringstream os;
  if (!title_.empty()) os << "== " << title_ << " ==\n";
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < width.size(); ++i) {
      const std::string& c = i < cells.size() ? cells[i] : std::string{};
      os << "| " << c << std::string(width[i] - c.size(), ' ') << ' ';
    }
    os << "|\n";
  };
  if (!header_.empty()) {
    emit(header_);
    for (std::size_t i = 0; i < width.size(); ++i)
      os << "|" << std::string(width[i] + 2, '-');
    os << "|\n";
  }
  for (const auto& r : rows_) emit(r);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      std::string c = cells[i];
      std::replace(c.begin(), c.end(), ',', ';');
      os << (i ? "," : "") << c;
    }
    os << "\n";
  };
  if (!header_.empty()) emit(header_);
  for (const auto& r : rows_) emit(r);
  return os.str();
}

}  // namespace e2e::metrics
