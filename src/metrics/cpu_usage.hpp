// CPU time accounting by cost category.
//
// The paper reports CPU cost broken down into the categories of Fig. 4 /
// Fig. 10 / Fig. 12 / Fig. 14: user-space protocol processing, kernel-space
// protocol processing (TCP/IP stack + interrupts), memory copies between
// user and kernel space, data loading (storage/source reads), and data
// offloading (storage/sink writes). Every simulated CPU charge in the
// library is tagged with one of these categories, giving a getrusage/perf
// style breakdown per thread, per process, or per host.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "sim/time.hpp"

namespace e2e::metrics {

enum class CpuCategory : std::uint8_t {
  kUserProto = 0,  // user-space protocol processing (RFTP/GridFTP logic)
  kKernelProto,    // kernel TCP/IP stack, interrupt handling, syscalls
  kCopy,           // user<->kernel memory copies
  kLoad,           // loading data from the source (storage read, zero-fill)
  kOffload,        // offloading data to the sink (storage write, discard)
  kOther,          // anything else (setup, bookkeeping)
};

inline constexpr std::size_t kCpuCategoryCount = 6;

constexpr std::string_view to_string(CpuCategory c) noexcept {
  switch (c) {
    case CpuCategory::kUserProto: return "user-proto";
    case CpuCategory::kKernelProto: return "kernel-proto";
    case CpuCategory::kCopy: return "copy";
    case CpuCategory::kLoad: return "load";
    case CpuCategory::kOffload: return "offload";
    case CpuCategory::kOther: return "other";
  }
  return "?";
}

/// Accumulated CPU time per category. "100%" equals one fully utilized core
/// over the measurement window, matching the paper's absolute-CPU-time
/// convention (122% == 1.22 cores).
class CpuUsage {
 public:
  void add(CpuCategory c, sim::SimDuration ns) noexcept {
    ns_[static_cast<std::size_t>(c)] += ns;
  }

  void merge(const CpuUsage& o) noexcept {
    for (std::size_t i = 0; i < kCpuCategoryCount; ++i) ns_[i] += o.ns_[i];
  }

  [[nodiscard]] sim::SimDuration get(CpuCategory c) const noexcept {
    return ns_[static_cast<std::size_t>(c)];
  }

  [[nodiscard]] sim::SimDuration total() const noexcept {
    sim::SimDuration s = 0;
    for (auto v : ns_) s += v;
    return s;
  }

  /// Percent of one core over `window` spent in category `c`.
  [[nodiscard]] double percent(CpuCategory c,
                               sim::SimDuration window) const noexcept {
    if (window == 0) return 0.0;
    return 100.0 * static_cast<double>(get(c)) / static_cast<double>(window);
  }

  [[nodiscard]] double total_percent(sim::SimDuration window) const noexcept {
    if (window == 0) return 0.0;
    return 100.0 * static_cast<double>(total()) / static_cast<double>(window);
  }

  /// Difference (this - baseline), used to report a measurement window.
  [[nodiscard]] CpuUsage since(const CpuUsage& baseline) const noexcept {
    CpuUsage d;
    for (std::size_t i = 0; i < kCpuCategoryCount; ++i)
      d.ns_[i] = ns_[i] - baseline.ns_[i];
    return d;
  }

 private:
  std::array<sim::SimDuration, kCpuCategoryCount> ns_{};
};

}  // namespace e2e::metrics
