// Umbrella header for measurement utilities.
#pragma once

#include "metrics/cpu_usage.hpp"
#include "metrics/stats.hpp"
#include "metrics/table.hpp"
#include "metrics/throughput.hpp"
