// Throughput measurement: total averages and binned time series.
//
// Used to regenerate the paper's throughput-over-time figures (Figs. 9/11)
// and all headline Gbps numbers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace e2e::metrics {

/// Converts bytes over a window to Gbps (decimal gigabits, as the paper).
constexpr double gbps(std::uint64_t bytes, sim::SimDuration window) noexcept {
  if (window == 0) return 0.0;
  return static_cast<double>(bytes) * 8.0 / static_cast<double>(window);
  // bytes*8 bits over window ns == bits/ns == Gbit/s.
}

class ThroughputMeter {
 public:
  ThroughputMeter(sim::Engine& eng, sim::SimDuration bin_width,
                  std::string name = {})
      : eng_(eng), bin_width_(bin_width ? bin_width : sim::kSecond),
        name_(std::move(name)) {}

  /// Records `bytes` delivered at the current simulated time.
  void record(std::uint64_t bytes) {
    const std::size_t bin =
        static_cast<std::size_t>(eng_.now() / bin_width_);
    if (bins_.size() <= bin) bins_.resize(bin + 1, 0);
    bins_[bin] += bytes;
    total_ += bytes;
    if (first_ == sim::kTimeInfinity) first_ = eng_.now();
    last_ = eng_.now();
  }

  [[nodiscard]] std::uint64_t total_bytes() const noexcept { return total_; }

  /// Mean throughput over the full engine time.
  [[nodiscard]] double mean_gbps() const noexcept {
    return gbps(total_, eng_.now());
  }

  /// Mean throughput between first and last recorded byte.
  [[nodiscard]] double active_gbps() const noexcept {
    if (first_ == sim::kTimeInfinity || last_ <= first_) return 0.0;
    return gbps(total_, last_ - first_);
  }

  /// Per-bin throughput series in Gbps.
  [[nodiscard]] std::vector<double> series_gbps() const {
    std::vector<double> out;
    out.reserve(bins_.size());
    for (auto b : bins_) out.push_back(gbps(b, bin_width_));
    return out;
  }

  [[nodiscard]] sim::SimDuration bin_width() const noexcept {
    return bin_width_;
  }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

 private:
  sim::Engine& eng_;
  sim::SimDuration bin_width_;
  std::string name_;
  std::vector<std::uint64_t> bins_;
  std::uint64_t total_ = 0;
  sim::SimTime first_ = sim::kTimeInfinity;
  sim::SimTime last_ = 0;
};

}  // namespace e2e::metrics
