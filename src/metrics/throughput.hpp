// Throughput measurement: total averages and binned time series.
//
// Used to regenerate the paper's throughput-over-time figures (Figs. 9/11)
// and all headline Gbps numbers.
#pragma once

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace e2e::metrics {

/// Converts bytes over a window to Gbps (decimal gigabits, as the paper).
constexpr double gbps(std::uint64_t bytes, sim::SimDuration window) noexcept {
  if (window == 0) return 0.0;
  return static_cast<double>(bytes) * 8.0 / static_cast<double>(window);
  // bytes*8 bits over window ns == bits/ns == Gbit/s.
}

class ThroughputMeter {
 public:
  ThroughputMeter(sim::Engine& eng, sim::SimDuration bin_width,
                  std::string name = {})
      : eng_(eng), bin_width_(bin_width ? bin_width : sim::kSecond),
        name_(std::move(name)) {}

  /// Records `bytes` delivered at the current *modeled* time
  /// (Engine::virtual_now — identical to now() except on fast-forwarded
  /// runs, where bins must land where the collapsed span modeled them).
  ///
  /// Bins are stored sparsely (one entry per bin that saw traffic), so a
  /// record arriving after a long idle gap appends one entry instead of
  /// zero-filling every empty bin in between — a multi-hour WAN sim with
  /// 1 ms bins would otherwise allocate gigabytes. Engine time is
  /// non-decreasing, so the append-or-accumulate-at-tail fast path covers
  /// every call.
  void record(std::uint64_t bytes) { record_at(eng_.virtual_now(), bytes); }

  /// Records `bytes` delivered at explicit modeled time `t` (must be
  /// non-decreasing across calls). The fast-forward replay uses this to
  /// place each collapsed block's bytes at its analytically known delivery
  /// time.
  void record_at(sim::SimTime t, std::uint64_t bytes) {
    const std::uint64_t bin = t / bin_width_;
    if (!bins_.empty() && bins_.back().index == bin) {
      bins_.back().bytes += bytes;
    } else {
      assert(bins_.empty() || bin > bins_.back().index);
      bins_.push_back({bin, bytes});
    }
    total_ += bytes;
    if (first_ == sim::kTimeInfinity) first_ = t;
    last_ = t;
  }

  [[nodiscard]] std::uint64_t total_bytes() const noexcept { return total_; }

  /// Mean throughput over the full modeled time.
  [[nodiscard]] double mean_gbps() const noexcept {
    return gbps(total_, eng_.virtual_now());
  }

  /// Mean throughput between first and last recorded byte.
  [[nodiscard]] double active_gbps() const noexcept {
    if (first_ == sim::kTimeInfinity || last_ <= first_) return 0.0;
    return gbps(total_, last_ - first_);
  }

  /// Per-bin throughput series in Gbps, dense from bin 0 through the last
  /// bin that saw traffic (idle bins read 0, exactly as the old dense
  /// storage reported them).
  [[nodiscard]] std::vector<double> series_gbps() const {
    std::vector<double> out(
        bins_.empty() ? 0 : static_cast<std::size_t>(bins_.back().index) + 1,
        0.0);
    for (const auto& b : bins_)
      out[static_cast<std::size_t>(b.index)] = gbps(b.bytes, bin_width_);
    return out;
  }

  /// Number of bins that actually saw traffic (the sparse storage size —
  /// bounded by record() calls, not by idle time).
  [[nodiscard]] std::size_t active_bin_count() const noexcept {
    return bins_.size();
  }

  [[nodiscard]] sim::SimDuration bin_width() const noexcept {
    return bin_width_;
  }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

 private:
  struct Bin {
    std::uint64_t index;
    std::uint64_t bytes;
  };

  sim::Engine& eng_;
  sim::SimDuration bin_width_;
  std::string name_;
  std::vector<Bin> bins_;  // sparse, index strictly increasing
  std::uint64_t total_ = 0;
  sim::SimTime first_ = sim::kTimeInfinity;
  sim::SimTime last_ = 0;
};

}  // namespace e2e::metrics
