// ASCII / CSV table formatting for experiment reports.
//
// Every bench binary renders its paper-figure reproduction through this
// formatter so outputs are uniform and machine-diffable.
#pragma once

#include <string>
#include <vector>

namespace e2e::metrics {

class Table {
 public:
  explicit Table(std::string title = {}) : title_(std::move(title)) {}

  Table& header(std::vector<std::string> cols) {
    header_ = std::move(cols);
    return *this;
  }

  Table& row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
    return *this;
  }

  /// Renders an aligned ASCII table.
  [[nodiscard]] std::string to_string() const;

  /// Renders RFC-4180-ish CSV (no quoting of embedded commas needed for our
  /// numeric outputs; commas in cells are replaced by ';').
  [[nodiscard]] std::string to_csv() const;

  [[nodiscard]] const std::string& title() const noexcept { return title_; }
  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

  /// Formats a double with `prec` decimals.
  static std::string num(double v, int prec = 1);

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace e2e::metrics
