// SCSI block command subset.
//
// The back-end SAN speaks SCSI block commands over iSCSI/iSER. This module
// defines the command vocabulary (the subset the data path needs: INQUIRY,
// READ CAPACITY, READ(16), WRITE(16), TEST UNIT READY) and the logical-unit
// abstraction backed by a tmpfs file, as in the paper's target setup.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "fault/integrity.hpp"
#include "mem/tmpfs.hpp"
#include "metrics/cpu_usage.hpp"
#include "numa/thread.hpp"
#include "sim/task.hpp"

namespace e2e::scsi {

enum class OpCode : std::uint8_t {
  kTestUnitReady,
  kInquiry,
  kReadCapacity16,
  kRead16,
  kWrite16,
};

enum class Status : std::uint8_t {
  kGood,
  kCheckCondition,
  kBusy,
  // Terminal transport failure surfaced by the initiator after its retry
  // budget is exhausted (the command may or may not have executed).
  kTransportError,
};

constexpr std::string_view to_string(Status s) noexcept {
  switch (s) {
    case Status::kGood: return "GOOD";
    case Status::kCheckCondition: return "CHECK CONDITION";
    case Status::kBusy: return "BUSY";
    case Status::kTransportError: return "TRANSPORT ERROR";
  }
  return "?";
}

/// Command descriptor block (fixed 512-byte logical blocks).
struct Cdb {
  OpCode op = OpCode::kTestUnitReady;
  std::uint64_t lba = 0;
  std::uint32_t blocks = 0;

  static constexpr std::uint32_t kBlockSize = 512;

  [[nodiscard]] std::uint64_t byte_count() const noexcept {
    return static_cast<std::uint64_t>(blocks) * kBlockSize;
  }
};

/// Logical unit backed by a tmpfs file (the paper's 50 GB LUNs).
class Lun {
 public:
  Lun(std::uint32_t id, mem::Tmpfs& fs, mem::TmpFile& backing)
      : id_(id), fs_(fs), backing_(backing) {
    if (backing.size % Cdb::kBlockSize != 0)
      throw std::invalid_argument("LUN size must be block-aligned");
  }

  [[nodiscard]] std::uint32_t id() const noexcept { return id_; }
  [[nodiscard]] std::uint64_t capacity_blocks() const noexcept {
    return backing_.size / Cdb::kBlockSize;
  }
  [[nodiscard]] std::uint64_t capacity_bytes() const noexcept {
    return backing_.size;
  }
  [[nodiscard]] mem::TmpFile& backing() noexcept { return backing_; }

  /// Target-side data movement: backing store -> staging buffer.
  /// Counted as data "load" (the source side of the end-to-end pipeline).
  sim::Task<Status> read(numa::Thread& th, std::uint64_t lba,
                         std::uint32_t blocks, const numa::Placement& dst) {
    if (!in_range(lba, blocks)) co_return Status::kCheckCondition;
    co_await fs_.read(th, backing_, lba * Cdb::kBlockSize,
                      std::uint64_t{blocks} * Cdb::kBlockSize, dst,
                      metrics::CpuCategory::kLoad);
    co_return Status::kGood;
  }

  /// Target-side data movement: staging buffer -> backing store ("offload").
  sim::Task<Status> write(numa::Thread& th, std::uint64_t lba,
                          std::uint32_t blocks, const numa::Placement& src) {
    if (!in_range(lba, blocks)) co_return Status::kCheckCondition;
    co_await fs_.write(th, backing_, lba * Cdb::kBlockSize,
                       std::uint64_t{blocks} * Cdb::kBlockSize, src,
                       metrics::CpuCategory::kOffload);
    written_digest_ ^= fault::block_range_tag_cached(lba, blocks);
    ++writes_executed_;
    co_return Status::kGood;
  }

  /// Integrity ledger: XOR of block_range_tag for every executed write.
  /// A write-path transfer that executes each logical block exactly once
  /// leaves this equal to the analytically-expected digest; duplicated or
  /// lost command executions perturb it (see fault/integrity.hpp).
  [[nodiscard]] std::uint64_t written_digest() const noexcept {
    return written_digest_;
  }
  [[nodiscard]] std::uint64_t writes_executed() const noexcept {
    return writes_executed_;
  }

 private:
  [[nodiscard]] bool in_range(std::uint64_t lba,
                              std::uint32_t blocks) const noexcept {
    return lba + blocks <= capacity_blocks();
  }

  std::uint32_t id_;
  mem::Tmpfs& fs_;
  mem::TmpFile& backing_;
  std::uint64_t written_digest_ = 0;
  std::uint64_t writes_executed_ = 0;
};

}  // namespace e2e::scsi
