// tmpfs: memory-backed file store with NUMA placement policies.
//
// Models the paper's back-end storage: the target hosts export logical
// units backed by files in Linux tmpfs. Placement mirrors the tmpfs mpol
// mount option — kBind pins a file's pages to one node (the tuned setup),
// kInterleave spreads them (what an untuned mount effectively gives a
// multi-node workload).
//
// The store tracks which NUMA nodes have touched each file. A write issued
// from node A to a file whose pages are also cached by other nodes is a
// Coherence::kSharedRemote write: it pays invalidation stalls and extra
// interconnect traffic. This is the mechanism behind the paper's Fig. 7/8
// observation that un-tuned *writes* lose ~19% bandwidth and 3x CPU while
// reads barely care (read sharing keeps lines in Shared state).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>

#include "metrics/cpu_usage.hpp"
#include "numa/host.hpp"
#include "numa/thread.hpp"
#include "numa/types.hpp"
#include "sim/task.hpp"

namespace e2e::mem {

struct TmpFile {
  std::string name;
  std::uint64_t size = 0;
  numa::Placement placement;
  std::set<numa::NodeId> sharers;  // nodes that have touched the pages
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;

  /// True when nodes other than `writer` also hold the file's lines.
  [[nodiscard]] bool shared_beyond(numa::NodeId writer) const {
    for (auto n : sharers)
      if (n != writer) return true;
    return false;
  }
};

class Tmpfs {
 public:
  explicit Tmpfs(numa::Host& host) : host_(host) {}
  Tmpfs(const Tmpfs&) = delete;
  Tmpfs& operator=(const Tmpfs&) = delete;

  /// Creates (or truncates) a file of `size` bytes. `policy`/`node` mirror
  /// the mpol mount option of the paper's setup.
  TmpFile& create(const std::string& name, std::uint64_t size,
                  numa::MemPolicy policy, numa::NodeId node);

  [[nodiscard]] TmpFile* find(const std::string& name);
  void remove(const std::string& name);

  /// Reads [offset, offset+len) into a staging buffer placed at `dst`.
  /// Executes as a memcpy by `th`, charged in category `cat`.
  sim::Task<> read(numa::Thread& th, TmpFile& f, std::uint64_t offset,
                   std::uint64_t len, const numa::Placement& dst,
                   metrics::CpuCategory cat);

  /// Writes [offset, offset+len) from a staging buffer placed at `src`.
  sim::Task<> write(numa::Thread& th, TmpFile& f, std::uint64_t offset,
                    std::uint64_t len, const numa::Placement& src,
                    metrics::CpuCategory cat);

  [[nodiscard]] numa::Host& host() noexcept { return host_; }
  [[nodiscard]] std::size_t file_count() const noexcept {
    return files_.size();
  }

 private:
  static void check_range(const TmpFile& f, std::uint64_t offset,
                          std::uint64_t len);

  numa::Host& host_;
  std::map<std::string, std::unique_ptr<TmpFile>> files_;
};

}  // namespace e2e::mem
