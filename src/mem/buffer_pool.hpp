// Fixed-size NUMA-aware buffer pool.
//
// RFTP and the iSER target stage all transfers through pools of pinned,
// fixed-size buffers. NUMA tuning allocates each pool on the node local to
// the NIC that will DMA it; the untuned baseline allocates first-touch
// from wherever the allocating thread happened to run.
//
// acquire() suspends when the pool is empty — this is the natural
// backpressure point of the data pipelines.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "mem/buffer.hpp"
#include "numa/host.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace e2e::mem {

class BufferPool {
 public:
  BufferPool(numa::Host& host, std::string name, std::size_t count,
             std::uint64_t buffer_bytes, numa::MemPolicy policy,
             numa::NodeId node)
      : host_(host),
        name_(std::move(name)),
        sem_(host.engine(), static_cast<std::int64_t>(count)) {
    buffers_.reserve(count);
    free_.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      Buffer b;
      b.bytes = buffer_bytes;
      b.placement = host.alloc(buffer_bytes, policy, node, node);
      b.id = i;
      buffers_.push_back(b);
      free_.push_back(&buffers_.back());
    }
    // vector::push_back may reallocate; rebuild the free list.
    free_.clear();
    for (auto& b : buffers_) free_.push_back(&b);
  }

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Takes a buffer, suspending while none are free.
  sim::Task<Buffer*> acquire() {
    co_await sem_.acquire();
    Buffer* b = free_.back();
    free_.pop_back();
    co_return b;
  }

  /// Non-suspending take; nullptr when empty.
  Buffer* try_acquire() {
    if (!sem_.try_acquire()) return nullptr;
    Buffer* b = free_.back();
    free_.pop_back();
    return b;
  }

  void release(Buffer* b) {
    if (b == nullptr) throw std::invalid_argument("release(nullptr)");
    free_.push_back(b);
    sem_.release();
  }

  [[nodiscard]] std::size_t capacity() const noexcept {
    return buffers_.size();
  }
  [[nodiscard]] std::size_t available() const noexcept { return free_.size(); }
  [[nodiscard]] std::uint64_t buffer_bytes() const noexcept {
    return buffers_.empty() ? 0 : buffers_.front().bytes;
  }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] numa::Host& host() noexcept { return host_; }

  /// Marks every buffer registered (RDMA pinning bookkeeping).
  void mark_registered() {
    for (auto& b : buffers_) b.registered = true;
  }

 private:
  numa::Host& host_;
  std::string name_;
  sim::Semaphore sem_;
  std::vector<Buffer> buffers_;
  std::vector<Buffer*> free_;
};

}  // namespace e2e::mem
