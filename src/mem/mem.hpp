// Umbrella header for memory management.
#pragma once

#include "mem/buffer.hpp"
#include "mem/buffer_pool.hpp"
#include "mem/tmpfs.hpp"
