#include "mem/tmpfs.hpp"

#include <stdexcept>

namespace e2e::mem {

TmpFile& Tmpfs::create(const std::string& name, std::uint64_t size,
                       numa::MemPolicy policy, numa::NodeId node) {
  remove(name);  // truncate semantics: release any previous allocation
  auto f = std::make_unique<TmpFile>();
  f->name = name;
  f->size = size;
  f->placement = host_.alloc(size, policy, node, node);
  TmpFile& ref = *f;
  files_[name] = std::move(f);
  return ref;
}

TmpFile* Tmpfs::find(const std::string& name) {
  auto it = files_.find(name);
  return it == files_.end() ? nullptr : it->second.get();
}

void Tmpfs::remove(const std::string& name) {
  auto it = files_.find(name);
  if (it == files_.end()) return;
  host_.free(it->second->placement, it->second->size);
  files_.erase(it);
}

void Tmpfs::check_range(const TmpFile& f, std::uint64_t offset,
                        std::uint64_t len) {
  if (offset + len > f.size)
    throw std::out_of_range("tmpfs I/O beyond EOF on " + f.name);
}

sim::Task<> Tmpfs::read(numa::Thread& th, TmpFile& f, std::uint64_t offset,
                        std::uint64_t len, const numa::Placement& dst,
                        metrics::CpuCategory cat) {
  check_range(f, offset, len);
  f.sharers.insert(th.node());
  f.bytes_read += len;
  // Reads leave lines Shared: no invalidation, just locality costs.
  co_await th.copy(len, f.placement, dst, cat, numa::Coherence::kPrivate);
}

sim::Task<> Tmpfs::write(numa::Thread& th, TmpFile& f, std::uint64_t offset,
                         std::uint64_t len, const numa::Placement& src,
                         metrics::CpuCategory cat) {
  check_range(f, offset, len);
  const bool shared = f.shared_beyond(th.node());
  f.sharers.insert(th.node());
  f.bytes_written += len;
  co_await th.copy(len, src, f.placement, cat,
                   shared ? numa::Coherence::kSharedRemote
                          : numa::Coherence::kPrivate);
}

}  // namespace e2e::mem
