// Memory buffer descriptors.
//
// The simulation moves no real payload bytes; a Buffer records how much
// memory a staging buffer represents and where it physically lives, which
// is all the resource model needs to charge channels/interconnect/CPU.
#pragma once

#include <cstdint>

#include "numa/types.hpp"

namespace e2e::mem {

struct Buffer {
  std::uint64_t bytes = 0;
  numa::Placement placement;
  bool registered = false;  // pinned as an RDMA memory region
  std::uint64_t id = 0;     // pool-unique identifier
  // Integrity accumulator standing in for the buffer's contents: data paths
  // XOR in the content tag of each chunk they deposit (fault/integrity.hpp),
  // so a sink can verify what landed without the simulation moving bytes.
  std::uint64_t content_tag = 0;

  [[nodiscard]] numa::NodeId home_node() const noexcept {
    return placement.extents.empty() ? 0 : placement.extents.front().node;
  }
};

}  // namespace e2e::mem
