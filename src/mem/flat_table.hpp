// Flat, allocation-free-at-steady-state lookup structures for protocol
// rendezvous state.
//
// Protocol layers key in-flight work by dense integer tags (initiator task
// tags, work-request ids, R2T tags). std::map pays a node allocation plus
// pointer chasing per entry; these tables replace it:
//
//  * FlatMap<V>: open-addressed uint64 -> V hash table (linear probing,
//    backward-shift deletion). Erasing keeps the capacity, so steady-state
//    insert/erase churn never allocates. Iteration order is unspecified;
//    use for_each_sorted when determinism requires key order.
//  * SlotArena<T>: stable-address slot storage with free-list recycling and
//    generation counters. Values are constructed once per slot and REUSED
//    on reacquire (the caller resets state), so per-command objects that
//    own channels/events stop allocating after warm-up. Ref handles
//    (slot, generation) held by timers or late completions go stale on
//    release instead of dangling.
//  * PendingTable<T>: FlatMap index over a SlotArena — the common
//    tag -> live-object rendezvous shape.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <new>
#include <utility>
#include <vector>

namespace e2e::mem {

/// Open-addressed hash map from uint64 keys to V. V must be default
/// constructible and move assignable. Capacity is a power of two and never
/// shrinks; erase uses backward-shift deletion (no tombstones).
template <typename V>
class FlatMap {
 public:
  FlatMap() = default;

  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }

  [[nodiscard]] V* find(std::uint64_t key) noexcept {
    if (count_ == 0) return nullptr;
    std::size_t i = home(key);
    while (slots_[i].live) {
      if (slots_[i].key == key) return &slots_[i].value;
      i = (i + 1) & mask_;
    }
    return nullptr;
  }
  [[nodiscard]] const V* find(std::uint64_t key) const noexcept {
    return const_cast<FlatMap*>(this)->find(key);
  }
  [[nodiscard]] bool contains(std::uint64_t key) const noexcept {
    return find(key) != nullptr;
  }

  /// Inserts or overwrites; returns the stored value. The reference is
  /// invalidated by the next insert (growth may rehash).
  V& insert(std::uint64_t key, V value) {
    if ((count_ + 1) * 4 > capacity() * 3) grow();
    std::size_t i = home(key);
    while (slots_[i].live) {
      if (slots_[i].key == key) {
        slots_[i].value = std::move(value);
        return slots_[i].value;
      }
      i = (i + 1) & mask_;
    }
    slots_[i].key = key;
    slots_[i].value = std::move(value);
    slots_[i].live = true;
    ++count_;
    return slots_[i].value;
  }

  /// Removes `key` if present. Backward-shift deletion: subsequent probe
  /// chain entries move up so lookups never need tombstones.
  bool erase(std::uint64_t key) noexcept {
    if (count_ == 0) return false;
    std::size_t i = home(key);
    while (slots_[i].live && slots_[i].key != key) i = (i + 1) & mask_;
    if (!slots_[i].live) return false;
    std::size_t hole = i;
    std::size_t j = i;
    for (;;) {
      j = (j + 1) & mask_;
      if (!slots_[j].live) break;
      const std::size_t h = home(slots_[j].key);
      // Move j's entry into the hole unless its home lies in (hole, j]
      // cyclically (then the probe chain from h to j never crosses hole).
      const bool keep = ((j - h) & mask_) < ((j - hole) & mask_);
      if (!keep) {
        slots_[hole].key = slots_[j].key;
        slots_[hole].value = std::move(slots_[j].value);
        hole = j;
      }
    }
    slots_[hole].value = V{};
    slots_[hole].live = false;
    --count_;
    return true;
  }

  void clear() noexcept {
    for (auto& s : slots_) {
      if (s.live) s.value = V{};
      s.live = false;
    }
    count_ = 0;
  }

  /// Visits (key, value) pairs in ascending key order. Collects keys into a
  /// scratch vector — use only on cold paths that need determinism (e.g.
  /// failover drains feeding traced events).
  template <typename Fn>
  void for_each_sorted(Fn&& fn) {
    std::vector<std::uint64_t> keys;
    keys.reserve(count_);
    for (auto& s : slots_)
      if (s.live) keys.push_back(s.key);
    std::sort(keys.begin(), keys.end());
    for (const std::uint64_t k : keys) fn(k, *find(k));
  }

 private:
  struct Slot {
    std::uint64_t key = 0;
    V value{};
    bool live = false;
  };

  [[nodiscard]] std::size_t capacity() const noexcept {
    return slots_.size();
  }

  /// splitmix64 finalizer: protocol tags are sequential, so spread them.
  [[nodiscard]] static std::uint64_t mix(std::uint64_t x) noexcept {
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
  }

  [[nodiscard]] std::size_t home(std::uint64_t key) const noexcept {
    return static_cast<std::size_t>(mix(key)) & mask_;
  }

  void grow() {
    const std::size_t cap = slots_.empty() ? 16 : slots_.size() * 2;
    std::vector<Slot> old = std::move(slots_);
    slots_ = std::vector<Slot>(cap);  // default-insert: V may be move-only
    mask_ = cap - 1;
    count_ = 0;
    for (auto& s : old)
      if (s.live) insert(s.key, std::move(s.value));
  }

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::size_t count_ = 0;
};

/// Stable-address slot storage with generation-counted handles. Values are
/// constructed on first use of a slot and kept alive across release/acquire
/// cycles — acquire() hands back a recycled object whose state the caller
/// must reset. Release bumps the generation so stale Refs (held by timers
/// or late completions) resolve to nullptr instead of the new occupant.
template <typename T>
class SlotArena {
 public:
  struct Ref {
    std::uint32_t slot = 0;
    std::uint32_t gen = 0;  // 0 = null handle (generations start at 1)
  };

  /// Acquires a slot, constructing T(args...) only for never-used slots.
  template <typename... Args>
  Ref acquire(Args&&... args) {
    std::uint32_t idx;
    if (!free_.empty()) {
      idx = free_.back();
      free_.pop_back();
    } else {
      idx = static_cast<std::uint32_t>(slots_.size());
      slots_.emplace_back(std::forward<Args>(args)...);
    }
    Slot& s = slots_[idx];
    assert(!s.live);
    s.live = true;
    return Ref{idx, s.gen};
  }

  /// Resolves a handle; nullptr when the slot was released since.
  [[nodiscard]] T* get(Ref r) noexcept {
    if (r.gen == 0 || r.slot >= slots_.size()) return nullptr;
    Slot& s = slots_[r.slot];
    return (s.live && s.gen == r.gen) ? &s.value : nullptr;
  }

  /// The live object behind a handle (must not be stale).
  [[nodiscard]] T& at(Ref r) noexcept {
    T* p = get(r);
    assert(p != nullptr);
    return *p;
  }

  /// Releases the slot: the object stays constructed for reuse, the
  /// generation bump invalidates outstanding Refs.
  void release(Ref r) noexcept {
    T* p = get(r);
    assert(p != nullptr);
    (void)p;
    Slot& s = slots_[r.slot];
    s.live = false;
    ++s.gen;
    free_.push_back(r.slot);
  }

  [[nodiscard]] std::size_t live_count() const noexcept {
    return slots_.size() - free_.size();
  }
  [[nodiscard]] std::size_t slot_count() const noexcept {
    return slots_.size();
  }

 private:
  struct Slot {
    template <typename... Args>
    explicit Slot(Args&&... args) : value(std::forward<Args>(args)...) {}
    T value;
    std::uint32_t gen = 1;
    bool live = false;
  };

  std::deque<Slot> slots_;  // deque: stable addresses across growth
  std::vector<std::uint32_t> free_;
};

/// tag -> live object rendezvous table: a FlatMap index over a SlotArena.
/// The values have stable addresses and survive erase for reuse; Refs taken
/// via ref_of stay safe (stale after erase) for timer-style guards.
template <typename T>
class PendingTable {
 public:
  using Ref = typename SlotArena<T>::Ref;

  /// Registers `key`, reusing a recycled T when available (caller resets
  /// its state). A duplicate key is a protocol bug: debug builds assert;
  /// release builds retire the old entry (its slot recycles, outstanding
  /// Refs go stale) rather than leaking the slot and silently handing two
  /// callers the same object.
  template <typename... Args>
  T& emplace(std::uint64_t key, Args&&... args) {
    if (Ref* existing = index_.find(key); existing != nullptr) {
      assert(false && "PendingTable::emplace: duplicate key");
      arena_.release(*existing);
      index_.erase(key);
    }
    const Ref r = arena_.acquire(std::forward<Args>(args)...);
    index_.insert(key, r);
    return arena_.at(r);
  }

  [[nodiscard]] T* find(std::uint64_t key) noexcept {
    Ref* r = index_.find(key);
    return r == nullptr ? nullptr : arena_.get(*r);
  }

  /// Handle for `key` (null Ref when absent); resolves via get() until the
  /// entry is erased.
  [[nodiscard]] Ref ref_of(std::uint64_t key) noexcept {
    Ref* r = index_.find(key);
    return r == nullptr ? Ref{} : *r;
  }
  [[nodiscard]] T* get(Ref r) noexcept { return arena_.get(r); }

  /// Erases `key`, recycling its slot (stale Refs go null).
  bool erase(std::uint64_t key) noexcept {
    Ref* r = index_.find(key);
    if (r == nullptr) return false;
    arena_.release(*r);
    index_.erase(key);
    return true;
  }

  [[nodiscard]] std::size_t size() const noexcept { return index_.size(); }
  [[nodiscard]] std::size_t slot_count() const noexcept {
    return arena_.slot_count();
  }

 private:
  FlatMap<Ref> index_;
  SlotArena<T> arena_;
};

}  // namespace e2e::mem
