// Pooled, intrusively refcounted message payloads.
//
// Protocol layers ship their headers/PDUs between hosts as type-erased
// payloads (tcp::Connection::Message, rdma::SendWr/WorkCompletion). With
// std::shared_ptr<const void> every send was a make_shared (control block +
// object) and every hand-off bumped an atomic refcount; at steady state the
// same handful of message shapes (Wire, Pdu, DataHeader, GrantMsg) churn
// hundreds of thousands of times per simulated transfer. MsgPtr replaces
// that: the refcount lives in a small header in front of the payload, the
// blocks recycle through size-bucketed thread-local freelists, and counts
// are plain (non-atomic) integers — each engine shard is single-threaded,
// pinned to one worker (sim/cluster.hpp), so a count is only ever touched
// from one thread at a time. A message that crosses shards does so as the
// sole reference inside a buffered cross-shard Delivery; the cluster's
// window barrier provides the happens-before edge for the hand-off, and
// the block then simply lives on in the receiving worker's freelist (the
// blocks are plain operator-new storage with no thread affinity).
//
// Ownership rule for contributors: a payload is immutable once it has been
// handed to a send path (post_send / Connection::send). To reuse a block,
// hold your own MsgPtr and check unique() — if other references exist, the
// message is still in flight and you must allocate a fresh one (make_msg is
// a freelist pop in steady state, so this is cheap).
//
// Under AddressSanitizer pooling is compiled out (each message gets its own
// heap block) so ASan keeps byte-exact use-after-free coverage of payloads;
// the refcounting semantics are identical either way.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

#if defined(__SANITIZE_ADDRESS__)
#define E2E_MEM_MSG_POOL 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define E2E_MEM_MSG_POOL 0
#else
#define E2E_MEM_MSG_POOL 1
#endif
#else
#define E2E_MEM_MSG_POOL 1
#endif

namespace e2e::mem {

namespace detail {

/// True when message pooling is compiled in (false under ASan).
inline constexpr bool kMsgPoolEnabled = E2E_MEM_MSG_POOL != 0;

/// Header preceding every payload. 16 bytes keeps the payload aligned for
/// any standard type (blocks come from operator new, aligned to
/// max_align_t; 16 is a multiple of that alignment on every ABI we build).
struct MsgHeader {
  void (*destroy)(void*) noexcept = nullptr;  // payload dtor, null = trivial
  std::uint32_t refs = 0;
  std::uint32_t bucket = 0;  // freelist index, or kHeapBucket
};
static_assert(sizeof(MsgHeader) == 16);
static_assert(alignof(std::max_align_t) <= 16,
              "payload offset must satisfy max alignment");

inline void* payload_of(MsgHeader* h) noexcept { return h + 1; }
inline const void* payload_of(const MsgHeader* h) noexcept { return h + 1; }

/// Thread-local size-bucketed freelists for message blocks.
class MsgPool {
 public:
  /// Bucket granularity and the largest payload the pool recycles. In-tree
  /// messages (Wire with an embedded Pdu is the fattest) are well under
  /// 512 bytes; anything larger falls through to the global allocator.
  static constexpr std::size_t kGranularity = 64;
  static constexpr std::size_t kMaxPooledBytes = 512;
  static constexpr std::size_t kBuckets = kMaxPooledBytes / kGranularity;
  static constexpr std::uint32_t kHeapBucket = 0xFFFFFFFFu;

  struct Stats {
    std::uint64_t fresh = 0;     // blocks served by the global allocator
    std::uint64_t reused = 0;    // blocks served from a freelist
    std::uint64_t oversize = 0;  // payloads larger than kMaxPooledBytes
    std::uint64_t cached = 0;    // blocks currently parked on freelists
  };

  static MsgHeader* allocate(std::size_t payload_bytes) {
    auto& pool = instance();
#if E2E_MEM_MSG_POOL
    if (payload_bytes <= kMaxPooledBytes) {
      const std::size_t bucket =
          payload_bytes == 0 ? 0 : (payload_bytes - 1) / kGranularity;
      if (FreeBlock* blk = pool.free_[bucket]) {
        pool.free_[bucket] = blk->next;
        --pool.stats_.cached;
        ++pool.stats_.reused;
        auto* h = reinterpret_cast<MsgHeader*>(blk);
        h->destroy = nullptr;
        h->refs = 1;
        h->bucket = static_cast<std::uint32_t>(bucket);
        return h;
      }
      ++pool.stats_.fresh;
      auto* h = static_cast<MsgHeader*>(
          ::operator new(sizeof(MsgHeader) + (bucket + 1) * kGranularity));
      h->destroy = nullptr;
      h->refs = 1;
      h->bucket = static_cast<std::uint32_t>(bucket);
      return h;
    }
    ++pool.stats_.oversize;
#else
    if (payload_bytes <= kMaxPooledBytes) ++pool.stats_.fresh;
    else ++pool.stats_.oversize;
#endif
    auto* h = static_cast<MsgHeader*>(
        ::operator new(sizeof(MsgHeader) + payload_bytes));
    h->destroy = nullptr;
    h->refs = 1;
    h->bucket = kHeapBucket;
    return h;
  }

  static void recycle(MsgHeader* h) noexcept {
    if (h->destroy != nullptr) h->destroy(payload_of(h));
#if E2E_MEM_MSG_POOL
    if (h->bucket != kHeapBucket) {
      auto& pool = instance();
      auto* blk = reinterpret_cast<FreeBlock*>(h);
      blk->next = pool.free_[h->bucket];
      pool.free_[h->bucket] = blk;
      ++pool.stats_.cached;
      return;
    }
#endif
    ::operator delete(h);
  }

  /// Counters for this thread's pool (tests, diagnostics).
  static Stats stats() noexcept { return instance().stats_; }

  /// Returns every cached block to the global allocator (tests).
  static void trim() noexcept {
    auto& pool = instance();
    for (auto*& head : pool.free_) {
      while (head != nullptr) {
        FreeBlock* next = head->next;
        ::operator delete(head);
        head = next;
      }
    }
    pool.stats_.cached = 0;
  }

  // Deliberately no teardown work: the pool must be trivially destructible
  // so the thread_local never registers a destructor. A MsgPtr with static
  // or thread-local storage duration (e.g. a datamover's cached wire held
  // by a static rig) may release after ordinary thread_local destructors
  // have run; with a trivial pool that release still finds valid freelist
  // storage instead of a destroyed object. Blocks parked at thread exit
  // are reclaimed by the OS with the process; under ASan/LSan pooling is
  // compiled out, so leak checking never sees parked blocks. (Public so
  // the triviality static_assert below can check it.)
  ~MsgPool() = default;

 private:
  struct FreeBlock {
    FreeBlock* next = nullptr;
  };
  static_assert(sizeof(FreeBlock) <= sizeof(MsgHeader));

  MsgPool() = default;

  static MsgPool& instance() noexcept {
    thread_local MsgPool pool;
    return pool;
  }

  FreeBlock* free_[kBuckets] = {};
  Stats stats_;
};

static_assert(std::is_trivially_destructible_v<MsgPool>,
              "late MsgPtr releases rely on the pool never being destroyed");

}  // namespace detail

/// Shared-ownership handle to a pooled, type-erased message payload.
/// Single-threaded refcounting; copying is a pointer copy plus an integer
/// increment. The last reference returns the block to its freelist.
class MsgPtr {
 public:
  constexpr MsgPtr() noexcept = default;
  constexpr MsgPtr(std::nullptr_t) noexcept {}  // NOLINT(runtime/explicit)

  MsgPtr(const MsgPtr& o) noexcept : h_(o.h_) {
    if (h_ != nullptr) ++h_->refs;
  }
  MsgPtr(MsgPtr&& o) noexcept : h_(o.h_) { o.h_ = nullptr; }
  MsgPtr& operator=(const MsgPtr& o) noexcept {
    MsgPtr tmp(o);
    swap(tmp);
    return *this;
  }
  MsgPtr& operator=(MsgPtr&& o) noexcept {
    swap(o);
    return *this;
  }
  ~MsgPtr() { reset(); }

  void reset() noexcept {
    if (h_ != nullptr && --h_->refs == 0) detail::MsgPool::recycle(h_);
    h_ = nullptr;
  }

  void swap(MsgPtr& o) noexcept { std::swap(h_, o.h_); }

  [[nodiscard]] const void* get() const noexcept {
    return h_ == nullptr ? nullptr : detail::payload_of(h_);
  }

  /// Typed view of the payload (the caller knows what it shipped).
  template <typename T>
  [[nodiscard]] const T* as() const noexcept {
    return static_cast<const T*>(get());
  }

  /// True when this is the only reference — the payload may be mutated and
  /// reused in place (see mutable_as).
  [[nodiscard]] bool unique() const noexcept {
    return h_ != nullptr && h_->refs == 1;
  }

  /// Mutable view for in-place reuse. Only valid when unique().
  template <typename T>
  [[nodiscard]] T* mutable_as() noexcept {
    return static_cast<T*>(const_cast<void*>(get()));
  }

  explicit operator bool() const noexcept { return h_ != nullptr; }
  friend bool operator==(const MsgPtr& a, const MsgPtr& b) noexcept {
    return a.h_ == b.h_;
  }
  friend bool operator==(const MsgPtr& a, std::nullptr_t) noexcept {
    return a.h_ == nullptr;
  }

 private:
  explicit MsgPtr(detail::MsgHeader* h) noexcept : h_(h) {}

  template <typename T, typename... Args>
  friend MsgPtr make_msg(Args&&... args);

  detail::MsgHeader* h_ = nullptr;
};

/// Allocates a pooled message holding a T. Steady state this is a freelist
/// pop plus T's constructor.
template <typename T, typename... Args>
MsgPtr make_msg(Args&&... args) {
  static_assert(std::is_nothrow_destructible_v<T>);
  static_assert(alignof(T) <= 16, "payloads are 16-byte aligned");
  detail::MsgHeader* h = detail::MsgPool::allocate(sizeof(T));
  if constexpr (std::is_nothrow_constructible_v<T, Args&&...>) {
    ::new (detail::payload_of(h)) T(std::forward<Args>(args)...);
  } else {
    try {
      ::new (detail::payload_of(h)) T(std::forward<Args>(args)...);
    } catch (...) {
      detail::MsgPool::recycle(h);
      throw;
    }
  }
  if constexpr (!std::is_trivially_destructible_v<T>)
    h->destroy = [](void* p) noexcept { static_cast<T*>(p)->~T(); };
  return MsgPtr(h);
}

}  // namespace e2e::mem
