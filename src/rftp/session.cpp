#include "rftp/session.hpp"

#include <algorithm>
#include <stdexcept>

#include "check/audit.hpp"
#include "fault/integrity.hpp"
#include "mem/msg_pool.hpp"
#include "rftp/fast_forward.hpp"

namespace e2e::rftp {

namespace {
constexpr std::uint64_t kTinyBufBytes = 256;
}

namespace {
sim::Engine& engine_of(const EndpointConfig& e) {
  if (e.proc == nullptr)
    throw std::invalid_argument("RFTP endpoints need processes");
  return e.proc->host().engine();
}
}  // namespace

RftpSession::RftpSession(EndpointConfig sender, EndpointConfig receiver,
                         std::vector<net::Link*> links, RftpConfig cfg)
    : sender_(sender),
      receiver_(receiver),
      links_(std::move(links)),
      cfg_(cfg),
      eng_(engine_of(sender)),
      watchdog_(eng_) {
  if (receiver_.proc == nullptr)
    throw std::invalid_argument("RFTP endpoints need processes");
  if (sender_.nics.empty() || receiver_.nics.empty() || links_.empty())
    throw std::invalid_argument("RFTP endpoints need NICs and links");
  if (cfg_.streams < 1 || cfg_.credits_per_stream < 1)
    throw std::invalid_argument("RFTP needs >=1 stream and credit");

  for (int i = 0; i < cfg_.streams; ++i) {
    auto s = std::make_unique<Stream>();
    s->id = i;
    rdma::Device& snic = *sender_.nics[i % sender_.nics.size()];
    rdma::Device& rnic = *receiver_.nics[i % receiver_.nics.size()];
    net::Link& link = *links_[i % links_.size()];
    s->pair = std::make_unique<rdma::ConnectedPair>(snic, rnic, link);

    const auto pool_policy = cfg_.numa_aware ? numa::MemPolicy::kBind
                                             : numa::MemPolicy::kInterleave;
    s->send_pool = std::make_unique<mem::BufferPool>(
        sender_.proc->host(), "rftp-send-" + std::to_string(i),
        static_cast<std::size_t>(cfg_.credits_per_stream) +
            static_cast<std::size_t>(cfg_.fillers_per_stream),
        cfg_.block_bytes, pool_policy, snic.node());
    s->recv_pool = std::make_unique<mem::BufferPool>(
        receiver_.proc->host(), "rftp-recv-" + std::to_string(i),
        static_cast<std::size_t>(cfg_.credits_per_stream), cfg_.block_bytes,
        pool_policy, rnic.node());

    s->credits = std::make_unique<sim::Channel<Credit>>(eng_);
    s->sendq = std::make_unique<sim::Channel<FilledBlock>>(eng_);
    s->drainq = std::make_unique<sim::Channel<Arrival>>(eng_);

    s->tiny_tx.bytes = kTinyBufBytes;
    s->tiny_tx.placement =
        sender_.proc->host().alloc(kTinyBufBytes, pool_policy, snic.node(),
                                   snic.node());
    s->tiny_rx.bytes = kTinyBufBytes;
    s->tiny_rx.placement =
        receiver_.proc->host().alloc(kTinyBufBytes, pool_policy, rnic.node(),
                                     rnic.node());
    streams_.push_back(std::move(s));
  }
  alive_streams_ = cfg_.streams;
  alive_token_ = std::make_shared<char>(0);
}

RftpSession::~RftpSession() = default;

numa::Thread& RftpSession::spawn(numa::Process& proc,
                                 const rdma::Device& nic) {
  if (cfg_.numa_aware) {
    // Pin to a core on the NIC's node regardless of the process policy.
    const numa::CoreId core =
        proc.host().pick_core(numa::SchedPolicy::kBindNode, nic.node());
    return proc.spawn_pinned_thread(core);
  }
  return proc.spawn_thread();
}

sim::Task<> RftpSession::setup_stream(Stream& s) {
  if (s.dead) co_return;  // killed before the transfer started
  numa::Thread& sth = spawn(*sender_.proc, s.pair->a().device());
  numa::Thread& rth = spawn(*receiver_.proc, s.pair->b().device());

  co_await s.pair->establish(sth, rth);

  // Register staging memory (ibv_reg_mr cost, amortized over the session).
  auto charge_registration = [](numa::Thread& th, std::uint64_t bytes) {
    const double pages = static_cast<double>(bytes) / 4096.0;
    return th.compute(pages * th.host().costs().rdma_mr_register_cycles_per_page,
                      metrics::CpuCategory::kUserProto);
  };
  co_await charge_registration(
      sth, s.send_pool->capacity() * s.send_pool->buffer_bytes());
  co_await charge_registration(
      rth, s.recv_pool->capacity() * s.recv_pool->buffer_bytes());
  s.send_pool->mark_registered();
  s.recv_pool->mark_registered();
  s.tiny_tx.registered = true;
  s.tiny_rx.registered = true;

  // Receiver advertises its staging buffers as credit tokens.
  s.token_buffers.clear();
  while (mem::Buffer* b = s.recv_pool->try_acquire())
    s.token_buffers.push_back(b);

  // Pre-post receives: the sender catches GRANT messages, the receiver
  // catches WRITE-with-immediate arrivals.
  for (int i = 0; i < cfg_.credits_per_stream + 4; ++i) {
    co_await s.pair->a().post_recv(sth, rdma::RecvWr{0, &s.tiny_tx});
    co_await s.pair->b().post_recv(rth, rdma::RecvWr{0, &s.tiny_rx});
  }

  // Initial credit grants flow as real control messages.
  s.latest_grant.assign(s.token_buffers.size(), 0);
  for (std::uint32_t t = 0; t < s.token_buffers.size(); ++t) {
    if (auto* au = check::of(eng_)) au->rftp_grant_sent(this, s.id, t);
    rdma::SendWr wr;
    wr.op = rdma::Opcode::kSend;
    // Grant wr_ids carry the token (low 16 bits, so the reaper can
    // re-send) and the attempt sequence (high bits, so it can discard
    // failures of superseded attempts).
    wr.wr_id = grant_wr_id(t);
    s.latest_grant[t] = wr.wr_id;
    wr.local = &s.tiny_rx;
    wr.bytes = static_cast<std::uint64_t>(
        rth.host().costs().rftp_control_msg_bytes);
    wr.payload = mem::make_msg<GrantMsg>(GrantMsg{t, s.login_gen});
    co_await s.pair->b().post_send(rth, wr);
  }
}

sim::Task<TransferResult> RftpSession::run(DataSource& src, DataSink& dst,
                                           std::uint64_t total_bytes,
                                           metrics::ThroughputMeter* meter) {
  if (running_) throw std::logic_error("RFTP session already running");
  running_ = true;
  total_bytes_ = total_bytes;
  total_blocks_ = (total_bytes + cfg_.block_bytes - 1) / cfg_.block_bytes;
  build_block_plan(src);
  blocks_done_ = 0;
  src_ = &src;
  dst_ = &dst;
  meter_ = meter;
  drained_.assign(total_blocks_, 0);
  ledger_.assign(total_blocks_, 0);
  drains_since_ckpt_ = 0;
  crashed_ = false;
  resume_pending_ = false;
  crashed_streams_.clear();
  sink_digest_ = 0;
  delivered_bytes_ = 0;
  transfer_failed_ = false;
  done_ = std::make_unique<sim::WaitGroup>(eng_);
  done_->add(static_cast<std::int64_t>(total_blocks_));
  if (auto* au = check::of(eng_)) {
    au->rftp_begin(this, total_bytes_, cfg_.block_bytes, total_blocks_,
                   cfg_.streams);
    for (const auto& s : streams_)
      if (s->dead) au->rftp_stream_dead(this, s->id);
  }
  if (alive_streams_ == 0) fail_transfer();  // every stream killed pre-run

  // Steady-state fast-forward: standalone engines only (a sharded engine
  // must never skip modeled time — window bounds derive from event times),
  // and a fault plan whose quiet horizon is infinite (a terminal crash)
  // disables it outright.
  ff_.reset();
  if (cfg_.fast_forward && eng_.cluster() == nullptr &&
      cfg_.ff_quiet_after < sim::kTimeInfinity)
    ff_ = std::make_unique<FastForward>(*this);

  for (auto& s : streams_) co_await setup_stream(*s);
  const sim::SimTime vt0 = eng_.virtual_now();

  for (auto& s : streams_) {
    // cq_spawned: a crash landed inside the setup loop above and the
    // restart already armed this stream's full pipeline — a second copy
    // here would double-process completions.
    if (s->dead || s->cq_spawned) continue;
    rdma::Device& snic = s->pair->a().device();
    rdma::Device& rnic = s->pair->b().device();
    s->cq_spawned = true;
    s->active_fillers = cfg_.fillers_per_stream;
    for (int i = 0; i < cfg_.fillers_per_stream; ++i)
      sim::co_spawn(filler(*s, spawn(*sender_.proc, snic), src));
    sim::co_spawn(wire_sender(*s, spawn(*sender_.proc, snic)));
    sim::co_spawn(send_reaper(*s, spawn(*sender_.proc, snic)));
    sim::co_spawn(grant_receiver(*s, spawn(*sender_.proc, snic)));
    sim::co_spawn(arrival_handler(*s, spawn(*receiver_.proc, rnic)));
    sim::co_spawn(grant_reaper(*s, spawn(*receiver_.proc, rnic)));
    for (int i = 0; i < cfg_.drainers_per_stream; ++i)
      sim::co_spawn(drainer(*s, spawn(*receiver_.proc, rnic), dst, meter));
  }

  if (cfg_.watchdog.quiet > 0) {
    watchdog_.set_false_suspect_handler([this] {
      if (auto* st = stats::of(eng_)) {
        const auto e = st->entity(stats::Layer::kRftp, "session");
        st->counter(e, "false_suspicions").add(1);
        st->flight(stats::Layer::kRftp, e, st->code("false-suspect"), 0);
      }
    });
    watchdog_.arm(cfg_.watchdog, [this] { on_watchdog_dead(); });
  }

  co_await done_->wait();
  watchdog_.disarm();

  TransferResult r;
  r.bytes = delivered_bytes_;
  r.blocks = blocks_done_;
  // Modeled (virtual) elapsed time: event-exact runs read the event clock;
  // fast-forwarded runs add the spans absorbed by Engine::skip_time, so the
  // reported elapsed/goodput is identical either way.
  r.elapsed_s = sim::to_seconds(eng_.virtual_now() - vt0);
  r.goodput_gbps =
      r.elapsed_s > 0
          ? static_cast<double>(r.bytes) * 8.0 / r.elapsed_s / 1e9
          : 0.0;
  r.complete = !transfer_failed_ && blocks_done_ == total_blocks_;
  // End-to-end verification: XOR of the checksums the sink accepted must
  // equal the analytic digest of the blocks it claims to have drained.
  std::uint64_t expect = 0;
  for (std::uint64_t idx = 0; idx < total_blocks_; ++idx)
    if (drained_[idx] != 0) {
      const std::uint64_t offset = idx * cfg_.block_bytes;
      expect ^= fault::rftp_block_tag(
          idx, std::min<std::uint64_t>(cfg_.block_bytes,
                                       total_bytes_ - offset));
    }
  r.integrity_ok = sink_digest_ == expect && checksum_failures == 0;
  r.crashes = host_crashes;
  r.resumes = resumes;
  if (ff_) {
    r.ff_spans = ff_->spans();
    r.ff_blocks = ff_->blocks_collapsed();
    r.ff_skipped_ns = ff_->skipped();
  }
  if (auto* au = check::of(eng_))
    au->rftp_end(this, r.complete, delivered_bytes_, sink_digest_);
  running_ = false;
  src_ = nullptr;
  dst_ = nullptr;
  meter_ = nullptr;
  ff_.reset();
  co_return r;
}

void RftpSession::build_block_plan(DataSource& src) {
  const int nodes = sender_.proc->host().node_count();
  block_queues_.resize(static_cast<std::size_t>(nodes) + 1);
  for (auto& q : block_queues_) q.clear();
  streams_on_node_.assign(static_cast<std::size_t>(nodes), 0);
  for (const auto& s : streams_)
    ++streams_on_node_[static_cast<std::size_t>(s->pair->a().device().node())];
  for (std::uint64_t idx = 0; idx < total_blocks_; ++idx) {
    numa::NodeId home = numa::kAnyNode;
    if (cfg_.numa_aware)
      home = src.home_node(idx * cfg_.block_bytes, cfg_.block_bytes);
    const std::size_t bucket = (home >= 0 && home < nodes)
                                   ? static_cast<std::size_t>(home)
                                   : static_cast<std::size_t>(nodes);
    block_queues_[bucket].push_back(idx);
  }
}

// decide_claim/apply_claim live inline in session.hpp: they are the
// per-block body of the fast-forward replay loop as well as this file's
// filler hot path.

std::optional<std::uint64_t> RftpSession::claim_block(numa::NodeId node) {
  const auto d = decide_claim(node);
  if (!d) return std::nullopt;
  if (ff_) ff_->on_claim(node, *d);
  return apply_claim(*d);
}

sim::Task<> RftpSession::filler(Stream& s, numa::Thread& th,
                                DataSource& src) {
  trace::CachedTrack fill_trk;  // this filler task's own lane
  for (;;) {
    if (s.dead) break;
    const auto claimed = claim_block(th.node());
    if (!claimed) break;
    const std::uint64_t idx = *claimed;
    mem::Buffer* buf = co_await s.send_pool->acquire();
    if (s.dead) {  // stream died while we waited for staging
      s.send_pool->release(buf);
      requeue_block(idx);
      break;
    }
    if (auto* tr = trace::of(eng_))
      tr->async_begin(s.trk.named(tr, trace::Layer::kRftp,
                                  "stream" + std::to_string(s.id)),
                      "block", idx);
    const std::uint64_t offset = idx * cfg_.block_bytes;
    const std::uint64_t want =
        std::min<std::uint64_t>(cfg_.block_bytes, total_bytes_ - offset);
    const sim::SimTime fill_t0 = eng_.now();
    const std::uint64_t got = co_await src.fill(th, *buf, offset, want);
    if (auto* au = check::of(eng_))
      if (got > 0) au->rftp_fill(this, idx, got);
    if (auto* tr = trace::of(eng_)) {
      tr->complete(fill_trk.get(tr, trace::Layer::kRftp,
                                "s" + std::to_string(s.id) + "/fill"),
                   "fill", fill_t0);
      tr->counter("rftp/bytes_filled").add(got);
    }
    if (auto* st = stats::of(eng_)) {
      const auto e = s.stats_entity(st);
      s.hist_fill.get(st, e, "fill_ns")
          .record(static_cast<std::uint64_t>(eng_.now() - fill_t0));
      st->flight(stats::Layer::kRftp, e, s.code_fill.get(st, "block-filled"),
                 idx);
    }
    if (got == 0) {  // premature EOF: surface as a truncated transfer
      s.send_pool->release(buf);
      break;
    }
    if (!s.sendq->send(FilledBlock{buf, idx, got})) {
      // Stream died while we were filling; the block is not lost, it fails
      // over like everything else this stream owed.
      s.send_pool->release(buf);
      requeue_block(idx);
      break;
    }
  }
  // The sendq stays open: failover may requeue blocks and respawn fillers
  // long after the original plan drained, so only stream death closes it.
  --s.active_fillers;
}

sim::Task<> RftpSession::wire_sender(Stream& s, numa::Thread& th) {
  const auto& cm = th.host().costs();
  trace::CachedTrack wire_trk;
  for (;;) {
    auto blk = co_await s.sendq->recv();
    if (!blk) co_return;
    if (s.dead) {  // drain the queue into the failover pool
      s.send_pool->release(blk->buf);
      requeue_block(blk->block_idx);
      continue;
    }
    const sim::SimTime credit_t0 = eng_.now();
    auto credit = co_await s.credits->recv();
    if (!credit || s.dead) {  // stream died while we waited for a token
      s.send_pool->release(blk->buf);
      requeue_block(blk->block_idx);
      // Keep looping: the closed sendq still holds filled blocks that must
      // drain through the requeue branch above before recv() says nullopt.
      continue;
    }
    if (auto* au = check::of(eng_))
      au->rftp_credit_consumed(this, s.id, credit->token);
    if (auto* tr = trace::of(eng_)) {
      // A filled block that had to sit waiting for a credit token means
      // the receiver (or the wire) is the bottleneck right now.
      if (eng_.now() > credit_t0) {
        tr->complete(wire_trk.get(tr, trace::Layer::kRftp,
                                  "s" + std::to_string(s.id) + "/wire"),
                     "credit-wait", credit_t0);
        tr->counter("rftp/credit_stalls").add(1);
      }
      tr->counter("rftp/blocks_posted").add(1);
    }
    if (auto* st = stats::of(eng_)) {
      const auto e = s.stats_entity(st);
      s.hist_credit.get(st, e, "credit_wait_ns")
          .record(static_cast<std::uint64_t>(eng_.now() - credit_t0));
      s.sctr_posted.get(st, e, "blocks_posted").add(1);
      st->flight(stats::Layer::kRftp, e, s.code_post.get(st, "block-posted"),
                 blk->block_idx);
    }
    co_await th.compute(cm.rftp_block_user_cycles,
                        metrics::CpuCategory::kUserProto);
    const std::uint64_t sum = fault::rftp_block_tag(blk->block_idx,
                                                    blk->bytes);
    rdma::SendWr wr;
    wr.op = rdma::Opcode::kWriteImm;
    wr.wr_id = s.next_wr++;
    wr.local = blk->buf;
    wr.bytes = blk->bytes;
    wr.remote = rdma::RemoteKey{credit->remote};
    wr.imm = credit->token;
    wr.content_tag = sum;  // lands in the remote buffer with the write
    wr.payload = mem::make_msg<DataHeader>(
        DataHeader{credit->token, blk->block_idx, blk->bytes, sum});
    s.inflight.insert(wr.wr_id,
                      Stream::InflightBlock{blk->buf, blk->block_idx,
                                            blk->bytes, *credit});
    co_await s.pair->a().post_send(th, wr);
  }
}

sim::Task<> RftpSession::send_reaper(Stream& s, numa::Thread& th) {
  const auto& cm = th.host().costs();
  for (;;) {
    auto wc = co_await s.pair->a().send_cq().wait(th);
    Stream::InflightBlock* found = s.inflight.find(wc.wr_id);
    if (found == nullptr) continue;
    const Stream::InflightBlock blk = *found;
    s.inflight.erase(wc.wr_id);
    if (wc.success) {
      // The wire accepted it; only a drain at the sink confirms delivery
      // (the receiver QP may still drop it if it errors meanwhile).
      s.sent_unconfirmed.insert(blk.block_idx, 1);
      s.send_pool->release(blk.buf);
      continue;
    }
    if (s.dead) {
      // Flushed by a QP kill after the failover requeue ran: the block is
      // someone else's job now, just reclaim the staging buffer.
      s.send_pool->release(blk.buf);
      requeue_block(blk.block_idx);
      continue;
    }
    // Wire fault: the block never reached the peer and the credit token is
    // still ours — repost the same block to the same remote buffer.
    ++retransmissions;
    if (auto* tr = trace::of(eng_)) {
      tr->instant(s.trk.named(tr, trace::Layer::kRftp,
                              "stream" + std::to_string(s.id)),
                  "retransmit");
      tr->counter("rftp/retransmissions").add(1);
    }
    if (auto* st = stats::of(eng_)) {
      const auto e = s.stats_entity(st);
      s.sctr_retx.get(st, e, "retransmissions").add(1);
      st->flight(stats::Layer::kRftp, e, s.code_retx.get(st, "retransmit"),
                 blk.block_idx);
    }
    co_await th.compute(cm.rftp_block_user_cycles,
                        metrics::CpuCategory::kUserProto);
    const std::uint64_t sum = fault::rftp_block_tag(blk.block_idx, blk.bytes);
    rdma::SendWr wr;
    wr.op = rdma::Opcode::kWriteImm;
    wr.wr_id = s.next_wr++;
    wr.local = blk.buf;
    wr.bytes = blk.bytes;
    wr.remote = rdma::RemoteKey{blk.credit.remote};
    wr.imm = blk.credit.token;
    wr.content_tag = sum;
    wr.payload = mem::make_msg<DataHeader>(
        DataHeader{blk.credit.token, blk.block_idx, blk.bytes, sum});
    s.inflight.insert(wr.wr_id, blk);
    co_await s.pair->a().post_send(th, wr);
  }
}

sim::Task<> RftpSession::grant_receiver(Stream& s, numa::Thread& th) {
  const auto& cm = th.host().costs();
  for (;;) {
    auto wc = co_await s.pair->a().recv_cq().wait(th);
    const auto* g = wc.as<GrantMsg>();
    if (g == nullptr) continue;
    // Re-login dedup: a credit granted under an older login generation is
    // stale — it was either superseded by the restart's full re-grant or
    // belongs to a connection incarnation that no longer exists. Drop it
    // (the consumed receive is re-posted below either way).
    if (g->generation != s.login_gen) {
      co_await s.pair->a().post_recv(th, rdma::RecvWr{0, &s.tiny_tx});
      continue;
    }
    co_await th.compute(cm.rftp_control_msg_cycles,
                        metrics::CpuCategory::kUserProto);
    ++control_msgs_;
    if (auto* tr = trace::of(eng_)) tr->counter("rftp/grants").add(1);
    if (auto* au = check::of(eng_))
      au->rftp_credit_received(this, s.id, g->token);
    s.credits->send(Credit{g->token, s.token_buffers.at(g->token)});
    co_await s.pair->a().post_recv(th, rdma::RecvWr{0, &s.tiny_tx});
  }
}

sim::Task<> RftpSession::grant_reaper(Stream& s, numa::Thread& th) {
  const auto& cm = th.host().costs();
  for (;;) {
    auto wc = co_await s.pair->b().send_cq().wait(th);
    if (wc.success || s.dead) continue;
    // Failures can surface long after the send (a blackholed grant's
    // transport retries exhaust 4 RTTs later; a crash + restart re-grants
    // every token). Only the LATEST attempt for a token speaks for it: a
    // superseded attempt's failure is stale news, and re-sending for it
    // would double-issue a credit a newer grant already delivered.
    const auto token = static_cast<std::uint32_t>(wc.wr_id & 0xffff);
    if (token >= s.latest_grant.size() || wc.wr_id != s.latest_grant[token])
      continue;
    if (auto* au = check::of(eng_))
      au->rftp_grant_lost(this, s.id, token);
    // A grant lost on the wire is a leaked credit: the sender can never
    // learn the token is free again, and with enough leaks the stream
    // starves. Re-send (paced by a control-message gap so a flap window
    // does not turn into a same-instant retry storm) until it sticks.
    // While the pacing delay is pending the fast-forward detector must not
    // engage: the retry would otherwise fire against a collapsed-away
    // work-point (see ff_grant_retries_pending_).
    ++ff_grant_retries_pending_;
    co_await sim::Delay{eng_, 2 * s.pair->link().rtt()};
    --ff_grant_retries_pending_;
    if (s.dead) continue;
    ++grant_retransmissions;
    if (auto* tr = trace::of(eng_)) {
      tr->instant(s.trk.named(tr, trace::Layer::kRftp,
                              "stream" + std::to_string(s.id)),
                  "grant-retransmit");
      tr->counter("rftp/grant_retransmissions").add(1);
    }
    if (auto* st = stats::of(eng_)) {
      const auto e = s.stats_entity(st);
      st->counter(e, "grant_retransmissions").add(1);
      st->flight(stats::Layer::kRftp, e,
                 s.code_grant_retx.get(st, "grant-retransmit"), token);
    }
    co_await th.compute(cm.rftp_control_msg_cycles,
                        metrics::CpuCategory::kUserProto);
    // The 2-RTT pacing delay above can span a crash + restart or a drain:
    // if anything re-granted this token meanwhile, the retry is already
    // superseded and must not fire.
    if (wc.wr_id != s.latest_grant[token]) continue;
    if (auto* au = check::of(eng_))
      au->rftp_grant_sent(this, s.id, token);
    rdma::SendWr grant;
    grant.op = rdma::Opcode::kSend;
    grant.wr_id = grant_wr_id(token);
    s.latest_grant[token] = grant.wr_id;
    grant.local = &s.tiny_rx;
    grant.bytes = static_cast<std::uint64_t>(cm.rftp_control_msg_bytes);
    grant.payload = mem::make_msg<GrantMsg>(GrantMsg{token, s.login_gen});
    co_await s.pair->b().post_send(th, grant);
  }
}

sim::Task<> RftpSession::arrival_handler(Stream& s, numa::Thread& th) {
  const auto& cm = th.host().costs();
  for (;;) {
    auto wc = co_await s.pair->b().recv_cq().wait(th);
    const auto* h = wc.as<DataHeader>();
    if (h == nullptr) continue;
    co_await th.compute(cm.rftp_block_user_cycles,
                        metrics::CpuCategory::kUserProto);
    s.drainq->send(Arrival{h->token, h->block_idx, h->bytes, h->checksum});
    co_await s.pair->b().post_recv(th, rdma::RecvWr{0, &s.tiny_rx});
  }
}

sim::Task<> RftpSession::drainer(Stream& s, numa::Thread& th, DataSink& dst,
                                 metrics::ThroughputMeter* meter) {
  const auto& cm = th.host().costs();
  trace::CachedTrack drain_trk;  // this drainer task's own lane
  for (;;) {
    auto a = co_await s.drainq->recv();
    if (!a) co_return;
    mem::Buffer* buf = s.token_buffers.at(a->token);
    // The RDMA write deposited the sender's tag in the landing buffer;
    // lift it out and reset so the next block lands in a clean buffer.
    const std::uint64_t landed = buf->content_tag;
    buf->content_tag = 0;
    const bool dup = drained_[a->block_idx] != 0;
    if (auto* au = check::of(eng_))
      au->rftp_drain(this, s.id, a->token, a->block_idx, a->bytes, landed,
                     dup, landed == a->checksum);
    bool fresh = false;
    sim::SimTime drained_at = 0;
    if (dup) {
      // A failover re-send of a block the original stream had delivered.
      ++duplicate_blocks;
      if (auto* tr = trace::of(eng_))
        tr->counter("rftp/duplicate_blocks").add(1);
      if (auto* st = stats::of(eng_)) {
        const auto e = s.stats_entity(st);
        st->counter(e, "duplicate_blocks").add(1);
        st->flight(stats::Layer::kRftp, e, s.code_dup.get(st, "dup-block"),
                   a->block_idx);
      }
    } else if (landed != a->checksum) {
      ++checksum_failures;
      if (auto* tr = trace::of(eng_)) {
        tr->instant(s.trk.named(tr, trace::Layer::kRftp,
                                "stream" + std::to_string(s.id)),
                    "checksum-mismatch");
        tr->counter("rftp/checksum_failures").add(1);
      }
      if (auto* st = stats::of(eng_)) {
        const auto e = s.stats_entity(st);
        st->counter(e, "checksum_failures").add(1);
        st->flight(stats::Layer::kRftp, e,
                   s.code_cksum.get(st, "checksum-mismatch"), a->block_idx);
      }
      requeue_block(a->block_idx);  // a survivor re-sends it
    } else {
      fresh = true;
      const sim::SimTime drain_t0 = eng_.now();
      co_await dst.drain(th, *buf, a->block_idx * cfg_.block_bytes,
                         a->bytes);
      drained_at = eng_.virtual_now();
      if (meter != nullptr) meter->record(a->bytes);
      drained_[a->block_idx] = 1;
      sink_digest_ ^= landed;
      delivered_bytes_ += a->bytes;
      s.sent_unconfirmed.erase(a->block_idx);
      if (auto* tr = trace::of(eng_)) {
        tr->complete(drain_trk.get(tr, trace::Layer::kRftp,
                                   "s" + std::to_string(s.id) + "/drain"),
                     "drain", drain_t0);
        tr->async_end(s.trk.named(tr, trace::Layer::kRftp,
                                  "stream" + std::to_string(s.id)),
                      "block", a->block_idx);
        tr->counter("rftp/bytes_delivered").add(a->bytes);
        tr->counter("rftp/blocks_delivered").add(1);
      }
      if (auto* st = stats::of(eng_)) {
        const auto e = s.stats_entity(st);
        s.hist_drain.get(st, e, "drain_ns")
            .record(static_cast<std::uint64_t>(eng_.now() - drain_t0));
        s.sctr_delivered.get(st, e, "blocks_delivered").add(1);
        st->flight(stats::Layer::kRftp, e,
                   s.code_drain.get(st, "block-drained"), a->block_idx);
      }
      // Forward progress: feed the liveness watchdog, time the first
      // byte after a resume, and roll the durable ledger forward.
      watchdog_.kick();
      if (resume_pending_) {
        resume_pending_ = false;
        if (auto* st = stats::of(eng_))
          st->histogram(st->entity(stats::Layer::kRftp, "session"),
                        "resume_ns")
              .record(static_cast<std::uint64_t>(eng_.now() - crash_t0_));
      }
      ++drains_since_ckpt_;
      if (cfg_.checkpoint_blocks > 0 &&
          drains_since_ckpt_ >= cfg_.checkpoint_blocks) {
        drains_since_ckpt_ = 0;
        ledger_ = drained_;
        ++checkpoints;
        if (auto* au = check::of(eng_)) au->rftp_checkpoint(this, ledger_);
        if (auto* tr = trace::of(eng_))
          tr->counter("rftp/checkpoints").add(1);
      }
    }

    // Proactive feedback: re-grant the token immediately after draining
    // (duplicates and checksum rejects recycle the token too).
    co_await th.compute(cm.rftp_control_msg_cycles,
                        metrics::CpuCategory::kUserProto);
    if (auto* au = check::of(eng_))
      au->rftp_grant_sent(this, s.id, a->token);
    rdma::SendWr grant;
    grant.op = rdma::Opcode::kSend;
    grant.wr_id = grant_wr_id(a->token);
    s.latest_grant[a->token] = grant.wr_id;
    grant.local = &s.tiny_rx;
    grant.bytes = static_cast<std::uint64_t>(cm.rftp_control_msg_bytes);
    grant.payload = mem::make_msg<GrantMsg>(GrantMsg{a->token, s.login_gen});
    co_await s.pair->b().post_send(th, grant);

    if (fresh) {
      ++blocks_done_;
      done_->done();
      // Steady-state hook: a fresh drain is the only safe collapse point —
      // the drainer is between awaits and every per-block side effect of
      // this iteration has landed. The collapse (if any) runs synchronously
      // here and never moves the event clock.
      if (ff_) ff_->on_fresh_drain(s.id, a->token, a->bytes, drained_at);
    }
  }
}

void RftpSession::requeue_block(std::uint64_t idx) {
  if (ff_) ff_->disarm();  // failover traffic is never steady state
  if (idx < drained_.size() && drained_[idx] != 0) return;  // already landed
  block_queues_.back().push_back(idx);
  if (!running_ || src_ == nullptr || alive_streams_ <= 0) return;
  // Fillers are transient — they exit once the plan drains — so a block
  // requeued after that point would sit unclaimed forever. Re-arm one
  // filler on the next surviving stream per requeued block; extras find an
  // empty plan and exit immediately.
  for (std::size_t off = 0; off < streams_.size(); ++off) {
    Stream& s =
        *streams_[(next_failover_stream_ + off) % streams_.size()];
    if (s.dead) continue;
    next_failover_stream_ =
        (next_failover_stream_ + off + 1) % streams_.size();
    ++s.active_fillers;
    sim::co_spawn(
        filler(s, spawn(*sender_.proc, s.pair->a().device()), *src_));
    return;
  }
}

void RftpSession::kill_stream(int idx) {
  if (idx < 0 || idx >= static_cast<int>(streams_.size()))
    throw std::out_of_range("kill_stream: no such stream");
  Stream& s = *streams_[static_cast<std::size_t>(idx)];
  if (s.dead) return;
  s.pair->kill();
  handle_stream_death(s);
}

void RftpSession::handle_stream_death(Stream& s) {
  if (s.dead) return;
  if (ff_) ff_->disarm();
  s.dead = true;
  --alive_streams_;
  ++failovers;
  if (running_)
    if (auto* au = check::of(eng_)) au->rftp_stream_dead(this, s.id);
  if (auto* tr = trace::of(eng_)) {
    tr->instant(s.trk.named(tr, trace::Layer::kRftp,
                            "stream" + std::to_string(s.id)),
                "stream-dead");
    tr->counter("rftp/failovers").add(1);
  }
  if (auto* st = stats::of(eng_)) {
    const auto e = s.stats_entity(st);
    st->counter(e, "failovers").add(1);
    st->flight(stats::Layer::kRftp, e, s.code_dead.get(st, "stream-dead"),
               static_cast<std::uint64_t>(s.id));
  }

  // Reassign everything this stream still owed: blocks posted but not
  // completed, and blocks the wire acked that the sink never confirmed
  // (the dying receiver QP may have dropped them on the floor).
  // (Ascending-key order: the flat tables hash, but faulted-run traces
  // must match the std::map/std::set iteration order they replaced.)
  s.inflight.for_each_sorted(
      [&](std::uint64_t, const Stream::InflightBlock& blk) {
        s.send_pool->release(blk.buf);
        requeue_block(blk.block_idx);
      });
  s.inflight.clear();
  s.sent_unconfirmed.for_each_sorted(
      [&](std::uint64_t idx, char) { requeue_block(idx); });
  s.sent_unconfirmed.clear();

  // Wake the stream's pipeline: queued fill work drains through the
  // wire_sender's dead-stream branch back into the shared queue, queued
  // arrivals still drain (they landed before the kill), then every task
  // parks or exits.
  s.credits->close();
  s.sendq->close();
  s.drainq->close();

  if (alive_streams_ <= 0 && running_) fail_transfer();
}

void RftpSession::crash_host(int host, sim::SimDuration down) {
  if (host < 0 || host > 1)
    throw std::out_of_range("crash_host: host must be 0 (sender) or 1 "
                            "(receiver)");
  if (!running_ || transfer_failed_) return;  // nothing left to crash
  if (crashed_) return;  // host already down; overlapping crash absorbed
  if (ff_) ff_->disarm();
  crashed_ = true;
  crash_t0_ = eng_.now();
  ++host_crashes;
  crashed_streams_.clear();
  if (auto* au = check::of(eng_)) au->rftp_crash(this, host);
  if (auto* tr = trace::of(eng_)) {
    tr->instant(plan_trk_.get(tr, trace::Layer::kRftp, "rftp/session"),
                host == 0 ? "sender-crash" : "receiver-crash");
    tr->counter("rftp/host_crashes").add(1);
  }
  if (auto* st = stats::of(eng_)) {
    const auto e = st->entity(stats::Layer::kRftp, "session");
    st->counter(e, "host_crashes").add(1);
    st->flight(stats::Layer::kRftp, e, st->code("crash"),
               static_cast<std::uint64_t>(host));
  }

  // Every stream dies at once. Zero the live count FIRST so the requeue
  // sweep parks blocks in the shared queue without respawning fillers
  // into the rubble — restart_host re-arms the pipelines later.
  alive_streams_ = 0;
  for (auto& sp : streams_) {
    Stream& s = *sp;
    if (s.dead) continue;  // already failed over before the crash
    s.dead = true;
    crashed_streams_.push_back(s.id);
    s.pair->crash(host);
    // Reassign everything this stream owed, in ascending block order so
    // same-seed runs replay byte-identically (see handle_stream_death).
    s.inflight.for_each_sorted(
        [&](std::uint64_t, const Stream::InflightBlock& blk) {
          s.send_pool->release(blk.buf);
          requeue_block(blk.block_idx);
        });
    s.inflight.clear();
    s.sent_unconfirmed.for_each_sorted(
        [&](std::uint64_t idx, char) { requeue_block(idx); });
    s.sent_unconfirmed.clear();
    if (host == 1) {
      // A rebooted receiver has no parsed-but-undrained arrivals and no
      // landed payloads: drop the queue (their blocks are covered by the
      // sweeps above) and scrub the landing buffers.
      while (s.drainq->try_recv().has_value()) {}
      for (mem::Buffer* b : s.token_buffers) b->content_tag = 0;
    }
    // Close (never replace yet — a parked waiter still references these
    // channel objects until the close wakes it at this instant) so every
    // filler, wire sender and drainer drains out and exits.
    s.credits->close();
    s.sendq->close();
    s.drainq->close();
  }

  if (host == 1) {
    // Volatile acks die with the receiver: every drained block the
    // ledger had not yet checkpointed un-drains and is owed again.
    for (std::uint64_t idx = 0; idx < total_blocks_; ++idx) {
      if (drained_[idx] == 0 || ledger_[idx] != 0) continue;
      const std::uint64_t offset = idx * cfg_.block_bytes;
      const std::uint64_t bytes =
          std::min<std::uint64_t>(cfg_.block_bytes, total_bytes_ - offset);
      const std::uint64_t tag = fault::rftp_block_tag(idx, bytes);
      drained_[idx] = 0;
      delivered_bytes_ -= bytes;
      sink_digest_ ^= tag;
      --blocks_done_;
      ++rolled_back_blocks;
      done_->add(1);
      if (auto* au = check::of(eng_))
        au->rftp_rollback(this, idx, bytes, tag);
      if (auto* tr = trace::of(eng_))
        tr->counter("rftp/rolled_back_blocks").add(1);
      requeue_block(idx);
    }
  }

  if (down > 0) {
    std::weak_ptr<char> alive = alive_token_;
    eng_.schedule_after(down, [this, host, alive] {
      if (alive.expired()) return;  // session gone before the reboot
      sim::co_spawn(restart_host(host));
    });
  } else if (cfg_.watchdog.quiet == 0) {
    // Unrecoverable crash with no watchdog to notice it: degrade to a
    // failed transfer immediately rather than hanging run() forever.
    fail_transfer();
  }
}

sim::Task<> RftpSession::restart_host(int host) {
  if (!running_ || transfer_failed_) co_return;
  if (auto* tr = trace::of(eng_)) {
    tr->instant(plan_trk_.get(tr, trace::Layer::kRftp, "rftp/session"),
                "host-restart");
    tr->counter("rftp/host_restarts").add(1);
  }
  for (const int id : crashed_streams_) {
    Stream& s = *streams_[static_cast<std::size_t>(id)];
    // Fresh channels: the old ones were closed at crash time, strictly
    // earlier in sim time, so no coroutine still references them.
    s.credits = std::make_unique<sim::Channel<Credit>>(eng_);
    s.sendq = std::make_unique<sim::Channel<FilledBlock>>(eng_);
    s.drainq = std::make_unique<sim::Channel<Arrival>>(eng_);

    rdma::Device& snic = s.pair->a().device();
    rdma::Device& rnic = s.pair->b().device();
    numa::Thread& sth = spawn(*sender_.proc, snic);
    numa::Thread& rth = spawn(*receiver_.proc, rnic);
    // The rebooted side lost its memory registrations: re-pin its pool.
    const std::uint64_t mr_a =
        host == 0 ? s.send_pool->capacity() * s.send_pool->buffer_bytes()
                  : 0;
    const std::uint64_t mr_b =
        host == 1 ? s.recv_pool->capacity() * s.recv_pool->buffer_bytes()
                  : 0;
    co_await s.pair->reestablish(sth, rth, mr_a, mr_b);

    // A crash can land inside run()'s sequential setup loop, killing a
    // stream setup_stream() had not reached yet: that stream owns no
    // registrations and never advertised its credit tokens. Reestablish
    // charged the MR re-pin above, so completing the bring-up here is
    // idempotent for streams that were set up normally.
    s.send_pool->mark_registered();
    s.recv_pool->mark_registered();
    s.tiny_tx.registered = true;
    s.tiny_rx.registered = true;
    if (s.token_buffers.empty())
      while (mem::Buffer* b = s.recv_pool->try_acquire())
        s.token_buffers.push_back(b);
    // Scrub landing buffers from the dead epoch. A write that landed just
    // before the crash but whose arrival died with the closed drainq left
    // its tag behind (delivery XOR-accumulates into content_tag, only a
    // drain zeroes it); the block itself was requeued from
    // sent_unconfirmed, so the residue is dead state that would corrupt
    // the next landing in this buffer.
    for (mem::Buffer* b : s.token_buffers) b->content_tag = 0;

    for (int i = 0; i < cfg_.credits_per_stream + 4; ++i) {
      co_await s.pair->a().post_recv(sth, rdma::RecvWr{0, &s.tiny_tx});
      co_await s.pair->b().post_recv(rth, rdma::RecvWr{0, &s.tiny_rx});
    }

    // Resume-offset negotiation: the receiver replays its durable ledger
    // so the sender never re-sends an acked block; one control message
    // each way on the reestablished connection.
    co_await rth.compute(rth.host().costs().rftp_control_msg_cycles,
                         metrics::CpuCategory::kUserProto);
    co_await sth.compute(sth.host().costs().rftp_control_msg_cycles,
                         metrics::CpuCategory::kUserProto);
    co_await sim::Delay{eng_, s.pair->link().rtt()};
    ++control_msgs_;

    if (auto* au = check::of(eng_)) au->rftp_stream_revived(this, s.id);
    // New login generation: credits from before the crash — including
    // grant completions still unreaped in a surviving sender's recv CQ —
    // are stale from this instant and the grant receiver drops them.
    ++s.login_gen;
    // Re-login returns every credit token home: re-grant them all.
    if (s.latest_grant.size() < s.token_buffers.size())
      s.latest_grant.resize(s.token_buffers.size(), 0);
    for (std::uint32_t t = 0; t < s.token_buffers.size(); ++t) {
      if (auto* au = check::of(eng_)) au->rftp_grant_sent(this, s.id, t);
      rdma::SendWr wr;
      wr.op = rdma::Opcode::kSend;
      wr.wr_id = grant_wr_id(t);
      s.latest_grant[t] = wr.wr_id;
      wr.local = &s.tiny_rx;
      wr.bytes = static_cast<std::uint64_t>(
          rth.host().costs().rftp_control_msg_bytes);
      wr.payload = mem::make_msg<GrantMsg>(GrantMsg{t, s.login_gen});
      co_await s.pair->b().post_send(rth, wr);
    }

    s.dead = false;
    ++alive_streams_;

    // Respawn only the tasks that exited with the closed channels. The
    // CQ-driven loops (send reaper, grant receiver, arrival handler,
    // grant reaper) parked on completion waits across the outage and are
    // still running; a second copy would double-process completions. The
    // exception is a stream the crash caught before run()'s spawn loop:
    // its CQ loops never started, so arm them here.
    if (!s.cq_spawned) {
      s.cq_spawned = true;
      sim::co_spawn(send_reaper(s, spawn(*sender_.proc, snic)));
      sim::co_spawn(grant_receiver(s, spawn(*sender_.proc, snic)));
      sim::co_spawn(arrival_handler(s, spawn(*receiver_.proc, rnic)));
      sim::co_spawn(grant_reaper(s, spawn(*receiver_.proc, rnic)));
    }
    s.active_fillers = cfg_.fillers_per_stream;
    for (int i = 0; i < cfg_.fillers_per_stream; ++i)
      sim::co_spawn(filler(s, spawn(*sender_.proc, snic), *src_));
    sim::co_spawn(wire_sender(s, spawn(*sender_.proc, snic)));
    for (int i = 0; i < cfg_.drainers_per_stream; ++i)
      sim::co_spawn(drainer(s, spawn(*receiver_.proc, rnic), *dst_, meter_));
  }
  crashed_streams_.clear();
  crashed_ = false;
  ++resumes;
  resume_pending_ = true;
  watchdog_.kick();
  if (auto* au = check::of(eng_)) au->rftp_resume(this);
  const sim::SimDuration mttr = eng_.now() - crash_t0_;
  if (auto* tr = trace::of(eng_)) {
    tr->instant(plan_trk_.get(tr, trace::Layer::kRftp, "rftp/session"),
                "resume");
    tr->counter("rftp/resumes").add(1);
  }
  if (auto* st = stats::of(eng_)) {
    const auto e = st->entity(stats::Layer::kRftp, "session");
    st->counter(e, "resumes").add(1);
    st->histogram(e, "mttr_ns").record(static_cast<std::uint64_t>(mttr));
    st->flight(stats::Layer::kRftp, e, st->code("resume"),
               static_cast<std::uint64_t>(mttr));
  }
}

void RftpSession::on_watchdog_dead() {
  if (!running_ || transfer_failed_) return;
  if (auto* tr = trace::of(eng_)) {
    tr->instant(plan_trk_.get(tr, trace::Layer::kRftp, "rftp/session"),
                "watchdog-dead");
    tr->counter("rftp/watchdog_deaths").add(1);
  }
  if (auto* st = stats::of(eng_)) {
    const auto e = st->entity(stats::Layer::kRftp, "session");
    st->counter(e, "watchdog_deaths").add(1);
  }
  fail_transfer();
}

void RftpSession::fail_transfer() {
  if (transfer_failed_) return;
  transfer_failed_ = true;
  if (auto* tr = trace::of(eng_)) {
    tr->instant(plan_trk_.get(tr, trace::Layer::kRftp, "rftp/session"),
                "transfer-failed");
    tr->counter("rftp/transfers_failed").add(1);
  }
  if (auto* st = stats::of(eng_)) {
    st->counter(st->entity(stats::Layer::kRftp, "session"), "transfers_failed")
        .add(1);
    // Every stream is gone: recovery has escalated to terminal, so dump
    // the flight window while the lead-up is still in the ring.
    st->trigger_flight_dump("rftp:transfer-failed");
  }
  // Release run(): undelivered blocks are never coming.
  while (done_ != nullptr && done_->pending() > 0) done_->done();
}

}  // namespace e2e::rftp
