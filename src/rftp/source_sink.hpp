// Data sources and sinks for RFTP transfers.
//
// The paper evaluates three shapes: real files on XFS-over-iSER (the
// end-to-end experiments), /dev/zero -> /dev/null (the Fig. 4 cost
// breakdown), and memory-to-memory (the WAN tests). FileSource/FileSink
// wrap a filesystem with direct I/O; ZeroSource charges the kernel
// zero-fill cost; NullSink discards; MemorySource/MemorySink touch
// pre-resident memory only.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>

#include "blk/filesystem.hpp"
#include "mem/buffer.hpp"
#include "metrics/cpu_usage.hpp"
#include "numa/thread.hpp"
#include "sim/task.hpp"

namespace e2e::rftp {

class DataSource {
 public:
  virtual ~DataSource() = default;
  /// Fills `buf` with up to `len` bytes at logical `offset`; returns bytes
  /// produced (0 at EOF).
  virtual sim::Task<std::uint64_t> fill(numa::Thread& th, mem::Buffer& buf,
                                        std::uint64_t offset,
                                        std::uint64_t len) = 0;

  /// NUMA node whose devices/memory serve [offset, offset+len) at the
  /// source host, when known (kAnyNode otherwise). The NUMA-aware sender
  /// routes each block to a stream whose NIC sits on this node, so staging
  /// buffers, storage DMA and wire DMA all stay socket-local — the paper's
  /// "co-schedule CPU cores, memory, and devices" policy.
  virtual numa::NodeId home_node(std::uint64_t offset,
                                 std::uint64_t len) const {
    (void)offset;
    (void)len;
    return numa::kAnyNode;
  }
};

class DataSink {
 public:
  virtual ~DataSink() = default;
  virtual sim::Task<> drain(numa::Thread& th, mem::Buffer& buf,
                            std::uint64_t offset, std::uint64_t len) = 0;
};

/// Reads a file (direct I/O by default, as RFTP does).
class FileSource final : public DataSource {
 public:
  using LocalityFn =
      std::function<numa::NodeId(std::uint64_t offset, std::uint64_t len)>;

  /// `locality` (optional) reports which NUMA node's storage path serves a
  /// given byte range — e.g. which iSER session's NIC a striped volume
  /// routes the range through.
  FileSource(blk::FileSystem& fs, blk::File& f, bool direct = true,
             LocalityFn locality = nullptr)
      : fs_(fs), f_(f), direct_(direct), locality_(std::move(locality)) {}

  sim::Task<std::uint64_t> fill(numa::Thread& th, mem::Buffer& buf,
                                std::uint64_t offset,
                                std::uint64_t len) override {
    co_return co_await fs_.read(th, f_, offset, len, buf.placement, direct_,
                                metrics::CpuCategory::kLoad);
  }

  numa::NodeId home_node(std::uint64_t offset,
                         std::uint64_t len) const override {
    return locality_ ? locality_(offset, len) : numa::kAnyNode;
  }

 private:
  blk::FileSystem& fs_;
  blk::File& f_;
  bool direct_;
  LocalityFn locality_;
};

class FileSink final : public DataSink {
 public:
  FileSink(blk::FileSystem& fs, blk::File& f, bool direct = true)
      : fs_(fs), f_(f), direct_(direct) {}

  sim::Task<> drain(numa::Thread& th, mem::Buffer& buf, std::uint64_t offset,
                    std::uint64_t len) override {
    co_await fs_.write(th, f_, offset, len, buf.placement, direct_,
                       metrics::CpuCategory::kOffload);
  }

 private:
  blk::FileSystem& fs_;
  blk::File& f_;
  bool direct_;
};

/// /dev/zero: the kernel clears the destination pages (no DMA).
class ZeroSource final : public DataSource {
 public:
  explicit ZeroSource(std::uint64_t total_bytes) : total_(total_bytes) {}

  sim::Task<std::uint64_t> fill(numa::Thread& th, mem::Buffer& buf,
                                std::uint64_t offset,
                                std::uint64_t len) override {
    if (offset >= total_) co_return 0;
    const std::uint64_t n = std::min(len, total_ - offset);
    co_await th.zero_fill(n, buf.placement, metrics::CpuCategory::kLoad);
    co_return n;
  }

 private:
  std::uint64_t total_;
};

/// /dev/null: a write syscall that drops the data.
class NullSink final : public DataSink {
 public:
  sim::Task<> drain(numa::Thread& th, mem::Buffer& buf, std::uint64_t offset,
                    std::uint64_t len) override {
    (void)buf;
    (void)offset;
    (void)len;
    co_await th.compute(th.host().costs().sink_discard_cycles_per_call,
                        metrics::CpuCategory::kOffload);
  }
};

/// Pre-resident memory dataset (WAN memory-to-memory mode): the source
/// streams existing pages, the sink touches the landed data once.
class MemorySource final : public DataSource {
 public:
  MemorySource(std::uint64_t total_bytes, numa::Placement data)
      : total_(total_bytes), data_(std::move(data)) {}

  sim::Task<std::uint64_t> fill(numa::Thread& th, mem::Buffer& buf,
                                std::uint64_t offset,
                                std::uint64_t len) override {
    if (offset >= total_) co_return 0;
    const std::uint64_t n = std::min(len, total_ - offset);
    co_await th.copy(n, data_, buf.placement, metrics::CpuCategory::kLoad);
    co_return n;
  }

 private:
  std::uint64_t total_;
  numa::Placement data_;
};

class MemorySink final : public DataSink {
 public:
  sim::Task<> drain(numa::Thread& th, mem::Buffer& buf, std::uint64_t offset,
                    std::uint64_t len) override {
    (void)offset;
    // Data already landed in the receive buffer via RDMA; account a
    // lightweight ownership touch only (no extra copy: zero-copy path).
    (void)buf;
    (void)len;
    co_await th.compute(th.host().costs().sink_discard_cycles_per_call,
                        metrics::CpuCategory::kOffload);
  }
};

}  // namespace e2e::rftp
