// Hybrid fluid/event fast-forward: collapse steady-state bulk phases into
// closed-form spans (the --fast-forward path).
//
// A bulk transfer spends almost all of its simulated events in a perfectly
// periodic steady state: every credit token cycles through the same
// fill → write → drain → re-grant loop with the same latencies, and every
// per-block side effect (byte ledgers, stats counters, CPU charges) repeats
// with the same deltas. Simulating those events one by one is pure
// repetition. The FastForward detector proves the repetition and then
// replaces the next k periods with their closed form.
//
// Detection — three-point delta-repeat verification:
//
//   1. Prefilter (O(1) per fresh drain): a ring of recent drain records
//      (stream, token, bytes, engine queue depth, virtual drain time) must
//      show the drain R back and 2R back identical in shape with equal time
//      gaps, where R = streams * credits_per_stream (the credit-rotation
//      period). A run of R consecutive passes arms the detector.
//   2. Armed, it snapshots the full observable state at drains n0 (A),
//      n0+R (B) and n0+2R (C): every stats:: counter/gauge/histogram, every
//      engine Resource's busy/units totals, the auditor's per-core
//      accounted-CPU arrays, both hosts' per-core CpuUsage, per-NUMA-queue
//      sizes, and the session's scalar counters.
//   3. Collapse requires D1 = B−A and D2 = C−B bitwise identical, zero
//      deltas on every perturbation counter (retransmissions, failovers,
//      crashes, ...), identical claim-decision patterns in both windows,
//      and the quiet guards below. Anything off → drop back to event-exact.
//
// Collapse: pick k so every NUMA queue keeps a generous margin, then for
// each of k periods re-run the recorded claim pattern through the *real*
// decide_claim policy (verifying each verdict; a mismatch or a partial
// final block undoes the period and truncates k), apply each popped block's
// drain in closed form (ledger bit, XOR digest, delivered bytes, WaitGroup,
// throughput-meter sample at the pattern time + c*P, auditor block ledger),
// fold D2 * k into the stats registry / resources / CPU accounting /
// session scalars, advance checkpoint bookkeeping analytically, and finally
// Engine::skip_time(k*P). The event heap never moves: in-flight latency
// measurements stay event-exact, and the live pipeline resumes at the same
// event clock against the shifted work-point — exactly the state the
// event-exact run reaches at t + k*P (modulo which block indices are in
// flight, which no final metric observes).
//
// Quiet guards (checked at arm and re-checked at collapse): no tracer
// installed (traces are exempt from equivalence and would diverge), no
// Cluster shard, virtual time past cfg.ff_quiet_after (every scripted fault
// has fired and settled), no crash/resume/failover in progress, and no
// grant-retry pacing delay pending.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "metrics/cpu_usage.hpp"
#include "rftp/session.hpp"
#include "sim/engine.hpp"
#include "sim/time.hpp"
#include "stats/registry.hpp"

namespace e2e::rftp {

class FastForward {
 public:
  explicit FastForward(RftpSession& sess);
  FastForward(const FastForward&) = delete;
  FastForward& operator=(const FastForward&) = delete;

  /// Called by RftpSession::claim_block with the verdict it is about to
  /// apply; the detector records the pattern for window comparison and
  /// replay.
  void on_claim(numa::NodeId node, const RftpSession::ClaimDecision& d);

  /// Called by the drainer after every fresh drain's side effects have
  /// landed (the only safe collapse point). Runs the prefilter, advances
  /// the armed state machine, and — when a steady state is proven —
  /// performs the collapse synchronously before returning.
  void on_fresh_drain(const int stream_id, std::uint32_t token,
                      std::uint64_t bytes, sim::SimTime drained_at);

  /// Any perturbation (failover, crash, requeue) drops the detector back to
  /// event-exact; it may re-arm once stability re-proves itself.
  void disarm() noexcept {
    state_ = State::kIdle;
    stable_run_ = 0;
  }

  // Engagement accounting for TransferResult / CLI summaries.
  [[nodiscard]] std::uint64_t spans() const noexcept { return spans_; }
  [[nodiscard]] std::uint64_t blocks_collapsed() const noexcept {
    return blocks_;
  }
  [[nodiscard]] sim::SimDuration skipped() const noexcept { return skipped_; }

 private:
  struct DrainRec {
    int stream = 0;
    std::uint32_t token = 0;
    std::uint64_t bytes = 0;
    std::size_t queue_depth = 0;  // engine event-heap population at the hook
    sim::SimTime at = 0;          // virtual drain-record time
    [[nodiscard]] bool same_shape(const DrainRec& o) const noexcept {
      return stream == o.stream && token == o.token && bytes == o.bytes &&
             queue_depth == o.queue_depth;
    }
  };
  struct ClaimRec {
    numa::NodeId node = 0;
    RftpSession::ClaimDecision d;
    bool operator==(const ClaimRec&) const = default;
  };

  /// Full observable-state snapshot at a fresh-drain boundary.
  struct Snap {
    bool have_stats = false;
    stats::Registry::FfSnapshot reg;
    std::vector<sim::Resource*> res;  // engine registry, construction order
    std::vector<sim::SimDuration> busy;
    std::vector<double> units;
    bool have_audit = false;
    std::vector<const sim::Resource*> cpu_cores;
    std::vector<sim::SimDuration> cpu;       // auditor accounted, flattened
    std::vector<sim::SimDuration> usage;     // host CpuUsage, flattened
    std::vector<std::size_t> qsize;          // per-NUMA block queue sizes
    std::uint64_t control_msgs = 0;
    std::uint64_t grant_seq = 0;
    std::vector<std::uint64_t> next_wr;      // per stream
    std::vector<std::uint32_t> login_gen;    // per stream (delta must be 0)
    std::uint64_t perturb[8] = {};           // must not move at all
    std::uint64_t claims_seen = 0;           // claim count at snapshot time
  };

  [[nodiscard]] bool quiet_ok() const noexcept;
  void take_snapshot(Snap& out) const;
  /// Full D1 == D2 verification across a_, b_, c_. On success fills the
  /// reusable D2 members used by the apply step.
  [[nodiscard]] bool deltas_match();
  /// Periods safely collapsible given the post-C queue sizes; 0 = bail.
  [[nodiscard]] std::uint64_t pick_k() const;
  void collapse();
  void undo_claim(const RftpSession::ClaimDecision& d, std::uint64_t idx);

  RftpSession& sess_;
  sim::Engine& eng_;
  std::size_t period_ = 1;  // R: fresh drains per steady-state period
  std::size_t cap_ = 0;     // ring capacity (> 4R)
  std::vector<DrainRec> drains_;   // ring, indexed by n_drains_ % cap_
  std::vector<ClaimRec> claims_;   // ring, indexed by n_claims_ % cap_
  std::vector<metrics::CpuUsage*> usage_objs_;  // both hosts' cores
  std::uint64_t n_drains_ = 0;
  std::uint64_t n_claims_ = 0;
  std::uint64_t stable_run_ = 0;
  std::uint64_t cooldown_until_ = 0;  // drain count gating the next arm

  enum class State : std::uint8_t { kIdle, kArmedB, kArmedC };
  State state_ = State::kIdle;
  std::uint64_t arm_drain_ = 0;  // n_drains_ at snapshot A
  Snap a_, b_, c_;
  stats::Registry::FfSnapshot d2_reg_;      // verified per-period stats delta
  std::vector<sim::SimDuration> d2_cpu_;    // verified per-period CPU delta

  std::uint64_t spans_ = 0;
  std::uint64_t blocks_ = 0;
  sim::SimDuration skipped_ = 0;
};

}  // namespace e2e::rftp
