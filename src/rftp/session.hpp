// RFTP: RDMA-based file transfer protocol — the paper's core contribution.
//
// One RftpSession owns a transfer between a sender and a receiver host
// over one or more RDMA links. Per stream (paper §3.2: "pipelining and
// parallel operations"):
//
//   sender                                       receiver
//   ------                                       --------
//   filler tasks: claim next block, read         drainer tasks: write landed
//     from the DataSource into a local             blocks to the DataSink,
//     staging buffer (direct I/O)                  then return the buffer as
//   wire task: match a filled block with           a credit GRANT message
//     a credit token (a registered receiver     arrival task: parse the
//     buffer), RDMA Write w/ immediate,           block header, queue for
//     proactive completion handling               draining, repost receives
//
// Credits bound the data in flight (streams * credits * block_bytes); the
// receiver re-grants a token as soon as a buffer drains ("proactive
// feedbacks and asynchronous control message exchanges" of the paper).
//
// NUMA awareness (the paper's tuning): each stream is pinned to the NUMA
// node of the NIC it uses and its buffer pools are allocated NIC-locally.
// With numa_aware=false, threads take the stock scheduler's placement and
// pools are first-touch — the untuned baseline.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "fault/watchdog.hpp"
#include "mem/buffer_pool.hpp"
#include "mem/flat_table.hpp"
#include "metrics/throughput.hpp"
#include "net/link.hpp"
#include "numa/process.hpp"
#include "rdma/cm.hpp"
#include "rftp/config.hpp"
#include "rftp/source_sink.hpp"
#include "sim/channel.hpp"
#include "sim/ring_queue.hpp"
#include "sim/sync.hpp"
#include "stats/registry.hpp"
#include "trace/tracer.hpp"

namespace e2e::rftp {

class FastForward;

/// One side's attachment: host, process context, and the NICs to use.
struct EndpointConfig {
  numa::Process* proc = nullptr;
  std::vector<rdma::Device*> nics;
};

class RftpSession {
 public:
  /// `links[i]` connects sender NIC (i % nics) to receiver NIC (i % nics);
  /// stream i uses links[i % links.size()].
  RftpSession(EndpointConfig sender, EndpointConfig receiver,
              std::vector<net::Link*> links, RftpConfig cfg);
  RftpSession(const RftpSession&) = delete;
  RftpSession& operator=(const RftpSession&) = delete;
  ~RftpSession();

  /// Transfers `total_bytes` from `src` to `dst`. Completes when the last
  /// block has drained at the receiver. `meter` (optional) records bytes
  /// at drain time.
  sim::Task<TransferResult> run(DataSource& src, DataSink& dst,
                                std::uint64_t total_bytes,
                                metrics::ThroughputMeter* meter = nullptr);

  [[nodiscard]] const RftpConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] std::uint64_t blocks_delivered() const noexcept {
    return blocks_done_;
  }
  /// Control messages exchanged (credit grants).
  [[nodiscard]] std::uint64_t control_messages() const noexcept {
    return control_msgs_;
  }
  /// XOR of every drained block's integrity checksum — the order-
  /// independent content digest the fast-forward golden tests compare
  /// against event-exact runs.
  [[nodiscard]] std::uint64_t sink_digest() const noexcept {
    return sink_digest_;
  }

  /// Kills stream `idx`'s QP pair and fails its blocks over to surviving
  /// streams: in-flight and sent-but-undrained blocks are requeued, its
  /// buffers reclaimed, and fillers respawned on survivors so the requeued
  /// work is picked up even if the original fillers already drained the
  /// plan. With no survivors the transfer fails (run() returns
  /// complete=false) instead of hanging.
  void kill_stream(int idx);
  [[nodiscard]] int alive_streams() const noexcept { return alive_streams_; }

  /// Crash-stop fault domain: host 0 (sender) or 1 (receiver) dies at
  /// once — every QP it owns errors with its posted receives discarded,
  /// every stream's channels close, in-flight and unconfirmed blocks fail
  /// back to the shared queue, and (for a receiver crash) drained blocks
  /// not yet covered by a ledger checkpoint roll back as lost volatile
  /// state. A scripted restart follows after `down` (reestablish + MR
  /// re-pin + resume-offset negotiation + full re-grant); down = 0 means
  /// the host never returns and the watchdog escalates to a failed
  /// transfer with partial progress.
  void crash_host(int host, sim::SimDuration down);
  [[nodiscard]] const fault::Watchdog& watchdog() const noexcept {
    return watchdog_;
  }

 private:
  // The steady-state detector/collapser reads and advances the session's
  // private transfer state (queues, ledgers, digest, scalar counters) when
  // it replaces a bulk span with its closed form.
  friend class FastForward;

  struct Credit {
    std::uint32_t token = 0;
    mem::Buffer* remote = nullptr;
  };
  struct FilledBlock {
    mem::Buffer* buf = nullptr;
    std::uint64_t block_idx = 0;
    std::uint64_t bytes = 0;
  };
  struct DataHeader {
    std::uint32_t token = 0;
    std::uint64_t block_idx = 0;
    std::uint64_t bytes = 0;
    std::uint64_t checksum = 0;  // sender-computed per-block integrity tag
  };
  struct GrantMsg {
    std::uint32_t token = 0;
    /// Stream login generation at grant time. A grant delivered before a
    /// crash can sit unreaped in the surviving sender's recv CQ across
    /// the outage; re-login bumps the generation, so the replayed credit
    /// identifies itself as stale and is discarded (the dedup step of an
    /// iSER-style re-login).
    std::uint32_t generation = 0;
  };
  struct Arrival {
    std::uint32_t token = 0;
    std::uint64_t block_idx = 0;
    std::uint64_t bytes = 0;
    std::uint64_t checksum = 0;
  };

  struct Stream {
    int id = 0;
    std::unique_ptr<rdma::ConnectedPair> pair;  // a = sender, b = receiver
    std::unique_ptr<mem::BufferPool> send_pool;
    std::unique_ptr<mem::BufferPool> recv_pool;
    std::unique_ptr<sim::Channel<Credit>> credits;      // sender side
    std::unique_ptr<sim::Channel<FilledBlock>> sendq;   // filler -> wire
    std::unique_ptr<sim::Channel<Arrival>> drainq;      // arrival -> drainer
    struct InflightBlock {
      mem::Buffer* buf = nullptr;
      std::uint64_t block_idx = 0;
      std::uint64_t bytes = 0;
      Credit credit;
    };
    mem::FlatMap<InflightBlock> inflight;  // wr_id -> block
    std::vector<mem::Buffer*> token_buffers;            // receiver side
    /// wr_id of the newest grant posted per token (receiver side); the
    /// grant reaper ignores failed completions of superseded attempts.
    std::vector<std::uint64_t> latest_grant;
    /// Bumped on every revival (re-login). Grants are stamped with it and
    /// the sender discards credits from an older generation — see
    /// GrantMsg::generation.
    std::uint32_t login_gen = 0;
    mem::Buffer tiny_tx;   // sender's posted-receive target for grants
    mem::Buffer tiny_rx;   // receiver's posted-receive target for data imm
    int active_fillers = 0;
    std::uint64_t next_wr = 1;
    /// The stream's QPs died; its work is failed over to survivors.
    bool dead = false;
    /// The CQ-driven loops (send reaper, grant receiver, arrival handler,
    /// grant reaper) are running. Normally set by run()'s spawn loop; a
    /// crash landing before that point leaves it false and restart_host
    /// arms the full pipeline instead.
    bool cq_spawned = false;
    /// Blocks acked by a send CQE but not yet seen draining at the sink —
    /// the receiver may still have dropped them (QP error), so a dying
    /// stream requeues these alongside its in-flight blocks. Flat set
    /// (values unused); the death path drains it in key order.
    mem::FlatMap<char> sent_unconfirmed;
    // Shared per-stream track: block lifetimes trace as async spans from
    // fill-claim (sender) to drain (receiver), keyed by block index.
    trace::CachedTrack trk;

    // Stats handles: per-stream entity carrying the fill/drain latency and
    // credit-wait histograms plus the failover counters, with flight
    // records for every block milestone (the postmortem window).
    stats::CachedEntity stats_ent;
    stats::CachedHistogram hist_fill;
    stats::CachedHistogram hist_credit;
    stats::CachedHistogram hist_drain;
    stats::CachedCounter sctr_posted;
    stats::CachedCounter sctr_delivered;
    stats::CachedCounter sctr_retx;
    stats::CachedCode code_fill;
    stats::CachedCode code_post;
    stats::CachedCode code_drain;
    stats::CachedCode code_retx;
    stats::CachedCode code_grant_retx;
    stats::CachedCode code_dup;
    stats::CachedCode code_cksum;
    stats::CachedCode code_dead;

    stats::EntityId stats_entity(stats::Registry* st) {
      return stats_ent.named_lazy(st, stats::Layer::kRftp, [this] {
        return "stream" + std::to_string(id);
      });
    }
  };

  // Pipeline tasks (one coroutine per thread).
  sim::Task<> filler(Stream& s, numa::Thread& th, DataSource& src);
  sim::Task<> wire_sender(Stream& s, numa::Thread& th);
  sim::Task<> send_reaper(Stream& s, numa::Thread& th);
  sim::Task<> grant_receiver(Stream& s, numa::Thread& th);
  sim::Task<> grant_reaper(Stream& s, numa::Thread& th);
  sim::Task<> arrival_handler(Stream& s, numa::Thread& th);
  sim::Task<> drainer(Stream& s, numa::Thread& th, DataSink& dst,
                      metrics::ThroughputMeter* meter);
  sim::Task<> setup_stream(Stream& s);

  // Failover machinery.
  void handle_stream_death(Stream& s);
  void fail_transfer();
  void requeue_block(std::uint64_t idx);

  // Crash/restart machinery.
  sim::Task<> restart_host(int host);
  void on_watchdog_dead();

  numa::Thread& spawn(numa::Process& proc, const rdma::Device& nic);

  EndpointConfig sender_;
  EndpointConfig receiver_;
  std::vector<net::Link*> links_;
  RftpConfig cfg_;
  std::vector<std::unique_ptr<Stream>> streams_;
  sim::Engine& eng_;

  /// One claim-policy verdict, split from its side effects so the
  /// fast-forward replay can re-run the policy per collapsed block and
  /// verify it still matches the recorded steady-state pattern.
  struct ClaimDecision {
    enum class Kind : std::uint8_t { kStolen, kLocal, kShared, kFallback };
    std::size_t queue = 0;   // index into block_queues_
    Kind kind = Kind::kLocal;
    bool from_back = false;  // steal/fallback pop the back, others the front
    bool operator==(const ClaimDecision&) const = default;
  };
  [[nodiscard]] std::optional<ClaimDecision> decide_claim(
      numa::NodeId node) const;
  /// Pops the decided block and bumps the claim counters; the inverse (for
  /// a fast-forward undo) is RingQueue::push_front/push_back plus counter
  /// decrements in rftp::FastForward.
  std::uint64_t apply_claim(const ClaimDecision& d);

  /// Claims the next block for a filler on `node`: same-node blocks first,
  /// then unclassified ones, then stealing from other nodes' queues.
  std::optional<std::uint64_t> claim_block(numa::NodeId node);
  void build_block_plan(DataSource& src);

  // Transfer state.
  std::uint64_t total_bytes_ = 0;
  std::uint64_t total_blocks_ = 0;
  // block_queues_[node] holds blocks homed on that node; the last entry
  // holds blocks with no known home.
  std::vector<sim::RingQueue<std::uint64_t>> block_queues_;
  std::vector<int> streams_on_node_;

 public:
  std::uint64_t stolen_claims = 0;
  std::uint64_t local_claims = 0;
  /// Blocks retransmitted after failed wire completions.
  std::uint64_t retransmissions = 0;
  /// Credit grants re-sent after failed wire completions. A lost grant is
  /// a leaked credit — the sender would starve without the re-send.
  std::uint64_t grant_retransmissions = 0;
  /// Streams killed with their work reassigned to survivors.
  std::uint64_t failovers = 0;
  /// Blocks whose sink-side checksum disagreed with the header (requeued).
  std::uint64_t checksum_failures = 0;
  /// Blocks that arrived more than once (failover re-sends); dropped.
  std::uint64_t duplicate_blocks = 0;
  /// Crash-stop events absorbed (host down, all streams dead at once).
  std::uint64_t host_crashes = 0;
  /// Restarts that reestablished the session and negotiated a resume.
  std::uint64_t resumes = 0;
  /// Ledger checkpoints taken (every checkpoint_blocks fresh drains).
  std::uint64_t checkpoints = 0;
  /// Drained-but-unledgered blocks lost to a receiver crash (re-sent).
  std::uint64_t rolled_back_blocks = 0;

 private:
  std::uint64_t blocks_done_ = 0;
  std::uint64_t control_msgs_ = 0;
  std::unique_ptr<sim::WaitGroup> done_;
  bool running_ = false;
  // Failover / integrity state for the current run().
  DataSource* src_ = nullptr;
  DataSink* dst_ = nullptr;
  metrics::ThroughputMeter* meter_ = nullptr;
  std::vector<char> drained_;       // per-block: already at the sink
  // Crash/resume state: the durable acked-block ledger (a checkpointed
  // copy of drained_ — what survives a receiver reboot), plus the epoch
  // bookkeeping for the one outstanding crash.
  std::vector<char> ledger_;
  int drains_since_ckpt_ = 0;
  bool crashed_ = false;            // a crash-stop is in progress
  bool resume_pending_ = false;     // first post-resume drain not yet seen
  sim::SimTime crash_t0_ = 0;
  // Monotone grant-attempt counter feeding grant wr_ids: attempt sequence
  // in the high bits, token in the low 16. Grant failures can surface
  // arbitrarily late — a blackholed grant's transport retries exhaust
  // 4 RTTs after the send, and a crash + restart can re-grant every token
  // inside that window — so the grant reaper re-sends only when a failed
  // completion matches the LATEST attempt for its token
  // (Stream::latest_grant). A stale attempt's failure is just news about
  // a grant some newer attempt already superseded; re-sending for it
  // would double-issue the credit.
  std::uint64_t grant_seq_ = 0;
  [[nodiscard]] std::uint64_t grant_wr_id(std::uint32_t token) {
    return (++grant_seq_ << 16) | token;
  }
  std::vector<int> crashed_streams_;
  std::uint64_t sink_digest_ = 0;   // XOR of drained blocks' checksums
  std::uint64_t delivered_bytes_ = 0;
  int alive_streams_ = 0;
  bool transfer_failed_ = false;
  std::size_t next_failover_stream_ = 0;  // round-robin requeue target
  trace::CachedTrack plan_trk_;  // session-wide (non-stream) fault events
  // Steady-state fast-forward (cfg_.fast_forward): detector + collapser,
  // constructed per run() on standalone engines only. Null = event-exact.
  std::unique_ptr<FastForward> ff_;
  // Grant re-sends whose 2-RTT pacing delay is still in flight. A retry
  // scheduled before a collapse would fire against a shifted work-point
  // after it, so the fast-forward detector refuses to engage until this
  // drains back to zero.
  std::uint64_t ff_grant_retries_pending_ = 0;
  fault::Watchdog watchdog_;
  // Liveness token for the deferred restart event: the engine may hold a
  // scheduled restart past the session's lifetime (transfer finished or
  // failed while the host was down); expiry turns it into a no-op.
  std::shared_ptr<char> alive_token_;
};

// decide_claim/apply_claim are defined inline: they are the per-block body
// of both the filler hot path and the fast-forward replay loop, where an
// out-of-line call per collapsed block would be most of the wall clock of
// a TB-scale collapsed run.

inline std::optional<RftpSession::ClaimDecision> RftpSession::decide_claim(
    numa::NodeId node) const {
  // Locality-preferring, load-balancing claim: serve the local queue, but
  // when another node's backlog has grown well past ours (its links or
  // storage path are the slower side), help drain it — continuous work
  // stealing keeps every queue finishing together without giving up
  // locality for the bulk of the data. The verdict depends only on pairwise
  // queue-size differences, which a steady-state period shifts uniformly —
  // the property the fast-forward replay verifies per collapsed block.
  const auto& own = block_queues_[static_cast<std::size_t>(node)];
  std::size_t victim = block_queues_.size();
  std::size_t victim_size = own.size() + 4;
  for (std::size_t n = 0; n + 1 < block_queues_.size(); ++n) {
    if (n == static_cast<std::size_t>(node)) continue;
    if (block_queues_[n].size() > victim_size) {
      victim = n;
      victim_size = block_queues_[n].size();
    }
  }
  if (victim < block_queues_.size())
    return ClaimDecision{victim, ClaimDecision::Kind::kStolen, true};
  if (!own.empty())
    return ClaimDecision{static_cast<std::size_t>(node),
                         ClaimDecision::Kind::kLocal, false};
  if (!block_queues_.back().empty())
    return ClaimDecision{block_queues_.size() - 1,
                         ClaimDecision::Kind::kShared, false};
  // Drain whatever remains anywhere.
  for (std::size_t q = 0; q < block_queues_.size(); ++q)
    if (!block_queues_[q].empty())
      return ClaimDecision{q, ClaimDecision::Kind::kFallback, true};
  return std::nullopt;
}

inline std::uint64_t RftpSession::apply_claim(const ClaimDecision& d) {
  auto& q = block_queues_[d.queue];
  const std::uint64_t idx = d.from_back ? q.back() : q.front();
  if (d.from_back)
    q.pop_back();
  else
    q.pop_front();
  switch (d.kind) {
    case ClaimDecision::Kind::kStolen:
      ++stolen_claims;
      if (auto* tr = trace::of(eng_)) tr->counter("rftp/stolen_claims").add(1);
      break;
    case ClaimDecision::Kind::kLocal:
      ++local_claims;
      if (auto* tr = trace::of(eng_)) tr->counter("rftp/local_claims").add(1);
      break;
    case ClaimDecision::Kind::kShared:
    case ClaimDecision::Kind::kFallback:
      break;
  }
  return idx;
}

}  // namespace e2e::rftp
