#include "rftp/fast_forward.hpp"

#include <algorithm>
#include <bit>

#include "check/audit.hpp"
#include "fault/integrity.hpp"
#include "numa/host.hpp"
#include "trace/tracer.hpp"

namespace e2e::rftp {

namespace {
[[nodiscard]] bool same_bits(double a, double b) noexcept {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}
}  // namespace

FastForward::FastForward(RftpSession& sess) : sess_(sess), eng_(sess.eng_) {
  period_ = static_cast<std::size_t>(sess.cfg_.streams) *
            static_cast<std::size_t>(sess.cfg_.credits_per_stream);
  if (period_ == 0) period_ = 1;
  cap_ = 4 * period_ + 8;
  drains_.resize(cap_);
  claims_.resize(cap_);
  // Per-core CpuUsage objects of both endpoints (deduped for loopback):
  // the collapse folds the verified per-period CPU delta into them so
  // whole-run CPU reports stay honest on fast-forwarded runs.
  auto add_host = [this](numa::Host& h) {
    for (int i = 0; i < h.core_count(); ++i)
      usage_objs_.push_back(&h.core(i).usage);
  };
  numa::Host& sh = sess.sender_.proc->host();
  numa::Host& rh = sess.receiver_.proc->host();
  add_host(sh);
  if (&rh != &sh) add_host(rh);
}

void FastForward::on_claim(numa::NodeId node,
                           const RftpSession::ClaimDecision& d) {
  claims_[n_claims_ % cap_] = ClaimRec{node, d};
  ++n_claims_;
}

bool FastForward::quiet_ok() const noexcept {
  // Traces are exempt from the equivalence contract and would diverge, so
  // an installed tracer pins the run to event-exact. Everything else here
  // is "no perturbation in flight": scripted faults settled, no crash or
  // failover pending, no grant-retry pacing delay waiting to fire against
  // a collapsed-away work-point.
  return trace::of(eng_) == nullptr &&
         eng_.virtual_now() >= sess_.cfg_.ff_quiet_after && !sess_.crashed_ &&
         !sess_.resume_pending_ && !sess_.transfer_failed_ &&
         sess_.alive_streams_ == sess_.cfg_.streams &&
         sess_.ff_grant_retries_pending_ == 0;
}

void FastForward::take_snapshot(Snap& out) const {
  const auto& rs = eng_.resources();
  out.res.assign(rs.begin(), rs.end());
  out.busy.clear();
  out.units.clear();
  out.busy.reserve(out.res.size());
  out.units.reserve(out.res.size());
  for (const sim::Resource* r : out.res) {
    out.busy.push_back(r->busy_time());
    out.units.push_back(r->units_served());
  }
  out.have_stats = false;
  if (auto* st = stats::of(eng_)) {
    out.have_stats = true;
    st->ff_snapshot(out.reg);
  }
  out.have_audit = false;
  out.cpu_cores.clear();
  out.cpu.clear();
  if (auto* au = check::of(eng_)) {
    out.have_audit = true;
    au->ff_cpu_cores(out.cpu_cores);
    au->ff_cpu_snapshot(out.cpu);
  }
  out.usage.clear();
  out.usage.reserve(usage_objs_.size() * metrics::kCpuCategoryCount);
  for (const metrics::CpuUsage* u : usage_objs_)
    for (std::size_t c = 0; c < metrics::kCpuCategoryCount; ++c)
      out.usage.push_back(u->get(static_cast<metrics::CpuCategory>(c)));
  out.qsize.clear();
  out.qsize.reserve(sess_.block_queues_.size());
  for (const auto& q : sess_.block_queues_) out.qsize.push_back(q.size());
  out.control_msgs = sess_.control_msgs_;
  out.grant_seq = sess_.grant_seq_;
  out.next_wr.clear();
  out.login_gen.clear();
  for (const auto& s : sess_.streams_) {
    out.next_wr.push_back(s->next_wr);
    out.login_gen.push_back(s->login_gen);
  }
  out.perturb[0] = sess_.retransmissions;
  out.perturb[1] = sess_.grant_retransmissions;
  out.perturb[2] = sess_.failovers;
  out.perturb[3] = sess_.checksum_failures;
  out.perturb[4] = sess_.duplicate_blocks;
  out.perturb[5] = sess_.host_crashes;
  out.perturb[6] = sess_.resumes;
  out.perturb[7] = sess_.rolled_back_blocks;
  out.claims_seen = n_claims_;
}

bool FastForward::deltas_match() {
  // Resource population must be pointer-identical across the window, and
  // every busy/units delta must repeat exactly (units bitwise: the apply
  // step multiplies the very same double).
  if (a_.res != b_.res || b_.res != c_.res) return false;
  for (std::size_t i = 0; i < a_.res.size(); ++i) {
    if (b_.busy[i] - a_.busy[i] != c_.busy[i] - b_.busy[i]) return false;
    if (!same_bits(b_.units[i] - a_.units[i], c_.units[i] - b_.units[i]))
      return false;
  }
  if (a_.have_stats != b_.have_stats || b_.have_stats != c_.have_stats)
    return false;
  if (a_.have_stats) {
    stats::Registry::FfSnapshot d1;
    if (!stats::Registry::ff_delta(a_.reg, b_.reg, d1)) return false;
    if (!stats::Registry::ff_delta(b_.reg, c_.reg, d2_reg_)) return false;
    if (!stats::Registry::ff_equal(d1, d2_reg_)) return false;
  }
  if (a_.have_audit != b_.have_audit || b_.have_audit != c_.have_audit)
    return false;
  if (a_.have_audit) {
    if (a_.cpu_cores != b_.cpu_cores || b_.cpu_cores != c_.cpu_cores)
      return false;
    if (a_.cpu.size() != b_.cpu.size() || b_.cpu.size() != c_.cpu.size())
      return false;
    d2_cpu_.assign(c_.cpu.size(), 0);
    for (std::size_t i = 0; i < a_.cpu.size(); ++i) {
      d2_cpu_[i] = c_.cpu[i] - b_.cpu[i];
      if (b_.cpu[i] - a_.cpu[i] != d2_cpu_[i]) return false;
    }
    // The accounted-by-category arrays must advance exactly as much as the
    // matching cycle servers: finalize() cross-checks the two to the
    // nanosecond, so the collapse refuses to engage on any daylight.
    for (std::size_t i = 0; i < a_.cpu_cores.size(); ++i) {
      sim::SimDuration acc = 0;
      for (std::size_t c = 0; c < metrics::kCpuCategoryCount; ++c)
        acc += d2_cpu_[i * metrics::kCpuCategoryCount + c];
      std::size_t ri = a_.res.size();
      for (std::size_t r = 0; r < a_.res.size(); ++r)
        if (a_.res[r] == a_.cpu_cores[i]) {
          ri = r;
          break;
        }
      if (ri == a_.res.size()) return false;
      if (acc != c_.busy[ri] - b_.busy[ri]) return false;
    }
  }
  if (a_.usage.size() != b_.usage.size() ||
      b_.usage.size() != c_.usage.size())
    return false;
  for (std::size_t i = 0; i < a_.usage.size(); ++i)
    if (b_.usage[i] - a_.usage[i] != c_.usage[i] - b_.usage[i]) return false;
  if (a_.qsize.size() != b_.qsize.size() ||
      b_.qsize.size() != c_.qsize.size())
    return false;
  for (std::size_t i = 0; i < a_.qsize.size(); ++i)
    if (a_.qsize[i] - b_.qsize[i] != b_.qsize[i] - c_.qsize[i]) return false;
  if (b_.control_msgs - a_.control_msgs != c_.control_msgs - b_.control_msgs)
    return false;
  if (b_.grant_seq - a_.grant_seq != c_.grant_seq - b_.grant_seq)
    return false;
  if (a_.next_wr.size() != b_.next_wr.size() ||
      b_.next_wr.size() != c_.next_wr.size())
    return false;
  for (std::size_t i = 0; i < a_.next_wr.size(); ++i)
    if (b_.next_wr[i] - a_.next_wr[i] != c_.next_wr[i] - b_.next_wr[i])
      return false;
  if (a_.login_gen != b_.login_gen || b_.login_gen != c_.login_gen)
    return false;
  for (std::size_t i = 0; i < 8; ++i)
    if (a_.perturb[i] != b_.perturb[i] || b_.perturb[i] != c_.perturb[i])
      return false;
  // Claim flow: exactly R claims per window (conservation with the R
  // drains) and an identical decision pattern in both windows.
  const std::uint64_t w1 = b_.claims_seen - a_.claims_seen;
  const std::uint64_t w2 = c_.claims_seen - b_.claims_seen;
  if (w1 != w2 || w1 != period_) return false;
  if (c_.claims_seen - a_.claims_seen > cap_) return false;  // ring wrapped
  for (std::uint64_t j = 0; j < w1; ++j)
    if (!(claims_[(a_.claims_seen + j) % cap_] ==
          claims_[(b_.claims_seen + j) % cap_]))
      return false;
  return true;
}

std::uint64_t FastForward::pick_k() const {
  // Upper bound only: the largest k for which no queue can underfill
  // mid-period. No safety margin is needed — the replay re-runs the real
  // claim policy per block and undoes the period on the first verdict that
  // deviates from the steady-state pattern, so an optimistic k truncates
  // itself exactly where the endgame begins. The bound just caps the
  // wasted replay work to at most one period.
  std::uint64_t k = ~0ull;
  bool any = false;
  for (std::size_t q = 0; q < c_.qsize.size(); ++q) {
    const std::size_t per = b_.qsize[q] - c_.qsize[q];
    if (per == 0) continue;
    any = true;
    k = std::min<std::uint64_t>(k, c_.qsize[q] / per);
  }
  return any ? k : 0;
}

void FastForward::undo_claim(const RftpSession::ClaimDecision& d,
                             std::uint64_t idx) {
  auto& q = sess_.block_queues_[d.queue];
  if (d.from_back)
    q.push_back(idx);
  else
    q.push_front(idx);
  switch (d.kind) {
    case RftpSession::ClaimDecision::Kind::kStolen:
      --sess_.stolen_claims;
      break;
    case RftpSession::ClaimDecision::Kind::kLocal:
      --sess_.local_claims;
      break;
    case RftpSession::ClaimDecision::Kind::kShared:
    case RftpSession::ClaimDecision::Kind::kFallback:
      break;
  }
}

void FastForward::collapse() {
  if (!quiet_ok() || !deltas_match()) {
    disarm();
    cooldown_until_ = n_drains_ + period_;
    return;
  }
  const std::uint64_t k = pick_k();
  if (k == 0) {
    disarm();
    cooldown_until_ = n_drains_ + period_;
    return;
  }
  const std::uint64_t n = n_drains_ - 1;  // the drain that completed window 2
  const sim::SimDuration period_ns =
      drains_[n % cap_].at - drains_[(n - period_) % cap_].at;
  const std::uint64_t bb = sess_.cfg_.block_bytes;

  // Window-2 claim pattern and drain-record times, in order.
  std::vector<ClaimRec> pattern(period_);
  for (std::size_t j = 0; j < period_; ++j)
    pattern[j] = claims_[(b_.claims_seen + j) % cap_];
  std::vector<sim::SimTime> when(period_);
  for (std::size_t j = 0; j < period_; ++j)
    when[j] = drains_[(n - period_ + 1 + j) % cap_].at;

  auto* au = check::of(eng_);
  std::vector<RftpSession::ClaimDecision> applied;
  std::vector<std::uint64_t> popped;
  applied.reserve(period_);
  popped.reserve(period_);
  std::uint64_t k_done = 0;
  for (std::uint64_t c = 1; c <= k; ++c) {
    applied.clear();
    popped.clear();
    bool ok = true;
    for (const ClaimRec& cr : pattern) {
      // Re-run the real claim policy and require the steady-state verdict.
      const auto d = sess_.decide_claim(cr.node);
      if (!d || !(*d == cr.d)) {
        ok = false;
        break;
      }
      const std::uint64_t idx = sess_.apply_claim(*d);
      applied.push_back(*d);
      popped.push_back(idx);
      if (idx * bb + bb > sess_.total_bytes_) {  // partial final block
        ok = false;
        break;
      }
    }
    if (!ok) {
      // Undo this period's pops (reverse order restores the exact queue
      // layout) and truncate the collapse to the completed periods.
      for (std::size_t i = applied.size(); i-- > 0;)
        undo_claim(applied[i], popped[i]);
      break;
    }
    // Apply the period's R fresh drains in closed form. Which popped block
    // lands in which drain slot is unobservable by any final metric (the
    // digest is an XOR, bytes are uniform, the bitmap is a set), so the
    // pairing is by pattern order. Uniform per-block updates are hoisted to
    // one bulk update per period — the per-block loop is the whole wall
    // clock of a collapsed TB-scale run.
    for (std::size_t j = 0; j < period_; ++j) {
      const std::uint64_t idx = popped[j];
      sess_.drained_[idx] = 1;
      sess_.sink_digest_ ^= fault::rftp_block_tag(idx, bb);
      if (sess_.meter_ != nullptr)
        sess_.meter_->record_at(
            when[j] + static_cast<sim::SimDuration>(c) * period_ns, bb);
    }
    sess_.delivered_bytes_ += bb * period_;
    sess_.blocks_done_ += period_;
    sess_.done_->done(static_cast<std::int64_t>(period_));
    if (au != nullptr)
      au->rftp_fast_forward_drains(&sess_, popped.data(), popped.size(), bb);
    ++k_done;
  }
  if (k_done == 0) {
    disarm();
    cooldown_until_ = n_drains_ + period_;
    return;
  }
  const std::uint64_t kr = k_done * period_;
  // Checkpoint bookkeeping advances analytically: `boundaries` checkpoints
  // fired inside the span; one ledger publication at the last of them
  // covers every replayed block (the auditor only requires ledgered ⊆
  // drained, and the post-span cadence continues on the same phase).
  if (sess_.cfg_.checkpoint_blocks > 0) {
    const auto cb = static_cast<std::uint64_t>(sess_.cfg_.checkpoint_blocks);
    const auto pre = static_cast<std::uint64_t>(sess_.drains_since_ckpt_);
    const std::uint64_t boundaries = (pre + kr) / cb;
    sess_.drains_since_ckpt_ = static_cast<int>((pre + kr) % cb);
    if (boundaries > 0) {
      sess_.checkpoints += boundaries;
      sess_.ledger_ = sess_.drained_;
      if (au != nullptr) au->rftp_checkpoint(&sess_, sess_.ledger_);
    }
  }
  // Fold the verified per-period delta, k_done times, into every ledger the
  // event-exact span would have advanced.
  if (c_.have_stats)
    if (auto* st = stats::of(eng_)) st->ff_apply(d2_reg_, k_done);
  for (std::size_t i = 0; i < c_.res.size(); ++i) {
    const sim::SimDuration db = c_.busy[i] - b_.busy[i];
    const double du = c_.units[i] - b_.units[i];
    if (db != 0 || du != 0.0)
      c_.res[i]->fast_forward(db * static_cast<sim::SimDuration>(k_done),
                              du * static_cast<double>(k_done));
  }
  if (c_.have_audit && au != nullptr) au->ff_cpu_apply(d2_cpu_, k_done);
  for (std::size_t i = 0; i < usage_objs_.size(); ++i)
    for (std::size_t cat = 0; cat < metrics::kCpuCategoryCount; ++cat) {
      const std::size_t f = i * metrics::kCpuCategoryCount + cat;
      const sim::SimDuration d = c_.usage[f] - b_.usage[f];
      if (d != 0)
        usage_objs_[i]->add(static_cast<metrics::CpuCategory>(cat),
                            d * static_cast<sim::SimDuration>(k_done));
    }
  sess_.control_msgs_ += (c_.control_msgs - b_.control_msgs) * k_done;
  sess_.grant_seq_ += (c_.grant_seq - b_.grant_seq) * k_done;
  for (std::size_t i = 0; i < sess_.streams_.size(); ++i)
    sess_.streams_[i]->next_wr += (c_.next_wr[i] - b_.next_wr[i]) * k_done;

  const sim::SimDuration span =
      static_cast<sim::SimDuration>(k_done) * period_ns;
  eng_.skip_time(span);
  ++spans_;
  blocks_ += kr;
  skipped_ += span;
  disarm();
  cooldown_until_ = n_drains_ + 2 * period_;
}

void FastForward::on_fresh_drain(const int stream_id, std::uint32_t token,
                                 std::uint64_t bytes,
                                 sim::SimTime drained_at) {
  const std::uint64_t n = n_drains_++;
  drains_[n % cap_] =
      DrainRec{stream_id, token, bytes, eng_.queue_depth(), drained_at};
  // O(1) prefilter: this drain must look exactly like the drains one and
  // two periods back, with equal (positive) time gaps.
  bool stable = false;
  if (n >= 2 * period_ && bytes == sess_.cfg_.block_bytes) {
    const DrainRec& r0 = drains_[n % cap_];
    const DrainRec& r1 = drains_[(n - period_) % cap_];
    const DrainRec& r2 = drains_[(n - 2 * period_) % cap_];
    stable = r0.same_shape(r1) && r1.same_shape(r2) && r0.at > r1.at &&
             r0.at - r1.at == r1.at - r2.at;
  }
  if (!stable) {
    disarm();
    return;
  }
  ++stable_run_;
  switch (state_) {
    case State::kIdle:
      // A full period of consecutive prefilter passes covers every drain
      // slot; the heavyweight window verification starts from here.
      if (stable_run_ >= period_ && n_drains_ > cooldown_until_ &&
          quiet_ok()) {
        take_snapshot(a_);
        arm_drain_ = n;
        state_ = State::kArmedB;
      }
      break;
    case State::kArmedB:
      if (n == arm_drain_ + period_) {
        take_snapshot(b_);
        state_ = State::kArmedC;
      }
      break;
    case State::kArmedC:
      if (n == arm_drain_ + 2 * period_) {
        take_snapshot(c_);
        collapse();
      }
      break;
  }
}

}  // namespace e2e::rftp
