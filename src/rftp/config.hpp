// RFTP configuration knobs.
#pragma once

#include <cstdint>

#include "fault/watchdog.hpp"
#include "sim/time.hpp"

namespace e2e::rftp {

struct RftpConfig {
  /// Data block size: unit of pipelining, credits and RDMA Writes.
  std::uint64_t block_bytes = 4ull << 20;
  /// Parallel data streams (QPs), assigned round-robin over the NIC pairs.
  int streams = 3;
  /// Receiver-side registered buffers (= credit tokens) per stream. The
  /// product streams * credits * block_bytes bounds the data in flight and
  /// must exceed the bandwidth-delay product to fill a long fat pipe.
  int credits_per_stream = 16;
  /// Storage pipeline threads per stream on each side.
  int fillers_per_stream = 4;
  int drainers_per_stream = 8;
  /// NUMA awareness: pin each stream's threads to its NIC's node and
  /// allocate its buffer pools NIC-locally. Off = stock scheduler +
  /// first-touch, the paper's untuned baseline.
  bool numa_aware = true;
  /// Durable-ledger checkpoint interval, in fresh block drains: the
  /// receiver persists its acked-block bitmap every N drains. Blocks
  /// drained since the last checkpoint are volatile — a receiver crash
  /// rolls them back and they are re-sent. 1 = every ack is durable
  /// (slowest, loses nothing); 0 disables checkpointing entirely (a
  /// receiver crash restarts from byte zero).
  int checkpoint_blocks = 1;
  /// Unified liveness policy (fault::Watchdog over fresh block drains):
  /// quiet periods raise suspicions, `max_quiet` of them in a row declare
  /// the transfer dead — it then fails with partial progress instead of
  /// hanging on a peer that never came back. quiet = 0 disables.
  fault::Deadline watchdog{};
  /// Hybrid fluid/event fast-forward (--fast-forward): when the pipeline
  /// reaches a verified steady state, collapse the remaining bulk phase
  /// into one closed-form span instead of simulating every block. Final
  /// metrics are bit-identical to the event-exact run (golden-tested);
  /// default off. Ignored on sharded (Cluster) engines.
  bool fast_forward = false;
  /// Earliest modeled time at which the fast-forward detector may engage.
  /// Callers with a fault plan set this to FaultPlan::quiet_after(slack) so
  /// every scripted fault fires on an event-exact timeline; kTimeInfinity
  /// (a terminal crash in the plan) disables fast-forward entirely.
  sim::SimTime ff_quiet_after = 0;
};

struct TransferResult {
  std::uint64_t bytes = 0;
  std::uint64_t blocks = 0;
  double elapsed_s = 0.0;
  double goodput_gbps = 0.0;
  /// False when every stream died before the transfer drained: `bytes` and
  /// `blocks` then report what actually landed, not what was asked for.
  bool complete = true;
  /// All drained blocks' checksums matched what the sender computed.
  bool integrity_ok = true;
  /// Crash-stop events absorbed during the transfer and the restarts
  /// that successfully negotiated a resume.
  std::uint64_t crashes = 0;
  std::uint64_t resumes = 0;
  /// Fast-forward engagement: spans collapsed and blocks advanced in
  /// closed form (both 0 on event-exact runs and when the detector never
  /// found a steady state).
  std::uint64_t ff_spans = 0;
  std::uint64_t ff_blocks = 0;
  /// Modeled time absorbed by those spans, in ns.
  sim::SimDuration ff_skipped_ns = 0;
};

}  // namespace e2e::rftp
