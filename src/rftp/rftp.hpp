// Umbrella header for RFTP, the paper's core contribution.
#pragma once

#include "rftp/config.hpp"
#include "rftp/fileset.hpp"
#include "rftp/session.hpp"
#include "rftp/source_sink.hpp"
