#include "rftp/fileset.hpp"

#include <algorithm>
#include <stdexcept>

namespace e2e::rftp {

std::vector<FileSet::Piece> FileSet::map(std::uint64_t offset,
                                         std::uint64_t len) const {
  std::vector<Piece> out;
  if (entries_.empty() || offset >= total_) return out;
  len = std::min(len, total_ - offset);

  // Binary search for the first file containing `offset`.
  std::size_t lo = 0, hi = entries_.size();
  while (lo + 1 < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (entries_[mid].base <= offset)
      lo = mid;
    else
      hi = mid;
  }
  for (std::size_t i = lo; i < entries_.size() && len > 0; ++i) {
    const Entry& e = entries_[i];
    const std::uint64_t within = offset - e.base;
    if (within >= e.len) continue;
    const std::uint64_t take = std::min(len, e.len - within);
    out.push_back({e.file, within, take});
    offset += take;
    len -= take;
  }
  return out;
}

sim::Task<std::uint64_t> FileSetSource::fill(numa::Thread& th,
                                             mem::Buffer& buf,
                                             std::uint64_t offset,
                                             std::uint64_t len) {
  const auto pieces = set_.map(offset, len);
  std::uint64_t got = 0;
  for (const auto& p : pieces) {
    got += co_await set_.fs().read(th, *p.file, p.file_offset, p.len,
                                   buf.placement, /*direct=*/true,
                                   metrics::CpuCategory::kLoad);
  }
  co_return got;
}

sim::Task<> FileSetSink::drain(numa::Thread& th, mem::Buffer& buf,
                               std::uint64_t offset, std::uint64_t len) {
  const auto pieces = set_.map(offset, len);
  std::uint64_t written = 0;
  for (const auto& p : pieces) {
    written += co_await set_.fs().write(th, *p.file, p.file_offset, p.len,
                                        buf.placement, /*direct=*/true,
                                        metrics::CpuCategory::kOffload);
  }
  if (written < len)
    throw std::length_error("file set too small for the transfer");
}

}  // namespace e2e::rftp
