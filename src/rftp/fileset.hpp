// Multi-file (directory) transfers.
//
// Real bulk-transfer sessions move directory trees, not single files. A
// FileSet presents a list of files as one contiguous logical byte range so
// the RFTP block pipeline needs no special casing; per-file costs (open,
// metadata, non-block-aligned tails) surface naturally as the small-file
// overhead every transfer tool fights.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "blk/filesystem.hpp"
#include "rftp/source_sink.hpp"

namespace e2e::rftp {

/// An ordered list of files on one filesystem, addressable as a single
/// logical byte range (file boundaries are packed back to back).
class FileSet {
 public:
  explicit FileSet(blk::FileSystem& fs) : fs_(fs) {}

  /// Appends a file covering `bytes` of the logical range (defaults to
  /// the file's current size — the usual source-side case).
  void add(blk::File& f, std::uint64_t bytes = 0) {
    if (bytes == 0) bytes = f.size;
    entries_.push_back({&f, total_, bytes});
    total_ += bytes;
  }

  /// Creates `count` files of `bytes` each, pre-filled (source side).
  void create_filled(const std::string& prefix, int count,
                     std::uint64_t bytes) {
    for (int i = 0; i < count; ++i) {
      blk::File& f = fs_.create(prefix + std::to_string(i), bytes);
      f.size = f.allocated = bytes;
      add(f, bytes);
    }
  }

  /// Creates `count` empty files of capacity `bytes` (sink side). The sink
  /// set must mirror the source set's lengths so logical offsets line up.
  void create_empty(const std::string& prefix, int count,
                    std::uint64_t bytes) {
    for (int i = 0; i < count; ++i)
      add(fs_.create(prefix + std::to_string(i), bytes), bytes);
  }

  struct Piece {
    blk::File* file = nullptr;
    std::uint64_t file_offset = 0;
    std::uint64_t len = 0;
  };

  /// Maps a logical range onto the file pieces it covers.
  [[nodiscard]] std::vector<Piece> map(std::uint64_t offset,
                                       std::uint64_t len) const;

  [[nodiscard]] std::uint64_t total_bytes() const noexcept { return total_; }
  [[nodiscard]] std::size_t file_count() const noexcept {
    return entries_.size();
  }
  [[nodiscard]] blk::FileSystem& fs() noexcept { return fs_; }

 private:
  struct Entry {
    blk::File* file;
    std::uint64_t base;  // logical offset of the file's first byte
    std::uint64_t len;   // bytes of the logical range this file covers
  };
  std::vector<Entry> entries_;
  std::uint64_t total_ = 0;
  blk::FileSystem& fs_;
};

/// Reads a FileSet as one logical stream (direct I/O).
class FileSetSource final : public DataSource {
 public:
  FileSetSource(FileSet& set, FileSource::LocalityFn locality = nullptr)
      : set_(set), locality_(std::move(locality)) {}

  sim::Task<std::uint64_t> fill(numa::Thread& th, mem::Buffer& buf,
                                std::uint64_t offset,
                                std::uint64_t len) override;

  numa::NodeId home_node(std::uint64_t offset,
                         std::uint64_t len) const override {
    return locality_ ? locality_(offset, len) : numa::kAnyNode;
  }

 private:
  FileSet& set_;
  FileSource::LocalityFn locality_;
};

/// Writes a FileSet as one logical stream (direct I/O).
class FileSetSink final : public DataSink {
 public:
  explicit FileSetSink(FileSet& set) : set_(set) {}

  sim::Task<> drain(numa::Thread& th, mem::Buffer& buf, std::uint64_t offset,
                    std::uint64_t len) override;

 private:
  FileSet& set_;
};

}  // namespace e2e::rftp
