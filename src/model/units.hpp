// Size and rate units.
#pragma once

#include <cstdint>

namespace e2e::model {

inline constexpr std::uint64_t KiB = 1024ULL;
inline constexpr std::uint64_t MiB = 1024ULL * KiB;
inline constexpr std::uint64_t GiB = 1024ULL * MiB;

/// Decimal gigabit/s -> bytes/s (the paper quotes decimal Gbps throughout).
constexpr double gbps_to_bytes_per_s(double gbps) noexcept {
  return gbps * 1e9 / 8.0;
}

constexpr double bytes_per_s_to_gbps(double bps) noexcept {
  return bps * 8.0 / 1e9;
}

/// GB/s (decimal) -> bytes/s.
constexpr double gBps_to_bytes_per_s(double gBps) noexcept {
  return gBps * 1e9;
}

constexpr double ghz_to_cycles_per_s(double ghz) noexcept { return ghz * 1e9; }

}  // namespace e2e::model
