// Hardware profiles for the paper's testbed hosts (Table 1).
//
// A HostProfile parameterises the NUMA host model; a NicProfile describes
// one network adapter and its PCIe attachment. The three factory functions
// reproduce Table 1 of the paper exactly; additional profiles can be built
// for what-if studies.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "model/cost_model.hpp"
#include "model/units.hpp"
#include "sim/time.hpp"

namespace e2e::model {

enum class LinkType { kRoCE, kInfiniBand, kEthernetTcp };

struct NicProfile {
  std::string name;
  LinkType type = LinkType::kRoCE;
  double rate_gbps = 40.0;     // signalling rate
  std::uint32_t mtu = 9000;    // RoCE jumbo / IB 65520
  int numa_node = 0;           // PCIe slot attachment
  double pcie_gbps = 63.0;     // PCIe 3.0 x8 usable
};

struct HostProfile {
  std::string name;
  int numa_nodes = 2;
  int cores_per_node = 8;
  double core_ghz = 2.2;
  double mem_gbytes = 128;
  // Per-node sustainable memory bandwidth (STREAM-like). The paper measured
  // 50 GB/s Triad across two nodes on the front-end hosts -> 25 GB/s/node.
  double mem_gBps_per_node = 25.0;
  // Socket interconnect (QPI), per direction per link.
  double interconnect_gBps = 12.8;
  // Remote access latency multiplier relative to local.
  double numa_remote_latency_factor = 1.5;
  double llc_mbytes = 20.0;  // last-level cache (cache-effect threshold)
  std::vector<NicProfile> nics;
  CostModel costs = CostModel::defaults();

  [[nodiscard]] int total_cores() const noexcept {
    return numa_nodes * cores_per_node;
  }
  [[nodiscard]] double cycles_per_second() const noexcept {
    return ghz_to_cycles_per_s(core_ghz);
  }
  [[nodiscard]] double total_mem_gBps() const noexcept {
    return mem_gBps_per_node * numa_nodes;
  }
};

/// Table 1, column "Front-end LAN": IBM X3650 M4, 2x E5-2660 (16 cores,
/// 2.2 GHz), 128 GB, three 40 Gbps RoCE QDR adapters, MTU 9000.
inline HostProfile front_end_lan_host(const std::string& name) {
  HostProfile h;
  h.name = name;
  h.numa_nodes = 2;
  h.cores_per_node = 8;
  h.core_ghz = 2.2;
  h.mem_gbytes = 128;
  h.mem_gBps_per_node = 25.0;
  // Two adapters on node 0, one on node 1 (three PCIe 3.0 x8 slots).
  h.nics = {
      {"roce0", LinkType::kRoCE, 40.0, 9000, 0, 63.0},
      {"roce1", LinkType::kRoCE, 40.0, 9000, 1, 63.0},
      {"roce2", LinkType::kRoCE, 40.0, 9000, 0, 63.0},
  };
  return h;
}

/// Table 1, column "Back-end LAN": 2x E5-2650 (16 cores, 2.0 GHz), 384 GB,
/// two 56 Gbps InfiniBand FDR adapters, MTU 65520.
inline HostProfile back_end_lan_host(const std::string& name) {
  HostProfile h;
  h.name = name;
  h.numa_nodes = 2;
  h.cores_per_node = 8;
  h.core_ghz = 2.0;
  h.mem_gbytes = 384;
  // The storage hosts carry the 768 GB DIMM loadout (all channels
  // populated); they sustain more bandwidth than the front-end hosts.
  h.mem_gBps_per_node = 32.0;
  h.nics = {
      {"ib0", LinkType::kInfiniBand, 56.0, 65520, 0, 63.0},
      {"ib1", LinkType::kInfiniBand, 56.0, 65520, 1, 63.0},
  };
  return h;
}

/// Table 1, column "Front-end WAN" (ANI testbed): 2x E5-2670 (reported as
/// 12 usable cores, 2.9 GHz), 64 GB, one 40 Gbps RoCE QDR adapter.
inline HostProfile wan_host(const std::string& name) {
  HostProfile h;
  h.name = name;
  h.numa_nodes = 2;
  h.cores_per_node = 6;
  h.core_ghz = 2.9;
  h.mem_gbytes = 64;
  h.mem_gBps_per_node = 25.0;
  h.nics = {
      {"roce0", LinkType::kRoCE, 40.0, 9000, 0, 63.0},
  };
  return h;
}

/// Link round-trip times from Table 1.
inline constexpr sim::SimDuration kLanRoceRtt = 166 * sim::kMicrosecond;
inline constexpr sim::SimDuration kLanIbRtt = 144 * sim::kMicrosecond;
inline constexpr sim::SimDuration kWanRtt = 95 * sim::kMillisecond;

}  // namespace e2e::model
