// Calibrated software cost model.
//
// Every CPU/memory/coherence charge in the simulation pulls its constant
// from this struct, so the whole calibration lives in one place. Constants
// are derived from the paper's own measurements where it reports them
// (Figs. 4, 8, 10, 12, 14 and the §2.3 motivating experiment) and from
// public microarchitecture numbers for the Sandy Bridge Xeons of Table 1.
//
// Calibration rationale (per constant):
//  * memcpy_cycles_per_byte: Fig. 4 reports 213% CPU for user<->kernel
//    copies at 39 Gbps (4.875 GB/s) across both ends, i.e. one core moves
//    ~4.6 GB/s at 2.2 GHz -> ~0.47 cycles/byte.
//  * tcp_kernel_cycles_per_packet: Fig. 4 reports 311% kernel-protocol CPU
//    at 39 Gbps with MTU 9000 (~542 kpps per direction); 1.55 cores per end
//    at 2.2 GHz -> ~6300 cycles per packet (tx or rx, interrupts included).
//  * rftp_block_user_cycles: Fig. 4 reports 56% user-space protocol CPU for
//    RFTP at 39 Gbps; with the 1 MiB default block that is ~4650 blocks/s,
//    28% of a 2.2 GHz core per side -> ~130k cycles per block per side
//    (buffer management, posting, completion handling, credit accounting).
//  * zero_fill_cycles_per_byte: Fig. 4 reports ~70% of one core to read
//    /dev/zero at 4.875 GB/s -> one core zero-fills ~7 GB/s -> ~0.31 c/B.
//  * numa_remote_penalty: QPI-era remote-vs-local memory latency ratio
//    (~1.5x), applied to CPU cost of remote touches.
//  * coherence_* : chosen so that the Fig. 7/8 write-path gap reproduces:
//    un-tuned writes lose ~19% bandwidth and cost ~3x the CPU.
//  * rdma_read_efficiency: §4.2 observes iSER read (RDMA Write) outperforms
//    write (RDMA Read) by ~7.5%; RDMA Read sustains ~93% of RDMA Write
//    throughput on these NICs.
#pragma once

namespace e2e::model {

struct CostModel {
  // --- memory copies (CPU view) ---
  double memcpy_cycles_per_byte = 0.53;   // single-core local memcpy
  double mem_touch_cycles_per_byte = 0.12;  // streaming read/touch of data
  double zero_fill_cycles_per_byte = 0.31;  // /dev/zero style page clearing
  double numa_remote_penalty = 1.7;  // CPU multiplier when touching a
                                     // remote NUMA node
  // Remote streams are less efficient on the memory channel than local ones
  // (coherent transfers, shallower prefetch): each remote byte occupies the
  // channel as this many bytes.
  double numa_remote_channel_factor = 1.3;

  // --- cache coherence (NUMA shared writes) ---
  // Writing a cache line homed on / shared by another node forces
  // invalidation round-trips: extra CPU stall cycles per byte and extra
  // interconnect traffic proportional to the written bytes.
  double coherence_write_cycles_per_byte = 4.5;
  double coherence_interconnect_bytes_factor = 4.0;

  // --- TCP/IP stack ---
  double tcp_kernel_cycles_per_packet = 8500;  // tx or rx incl. interrupts
  double tcp_syscall_cycles = 25000;           // per send()/recv() call
  double tcp_connect_cycles = 200000;          // handshake + socket setup
  // Each TCP send/recv performs one user<->kernel copy (memcpy above) and
  // the NIC DMA; receives additionally pay the rx-softirq share already
  // folded into tcp_kernel_cycles_per_packet.

  // --- RDMA verbs ---
  double rdma_post_wr_cycles = 1200;      // ibv_post_send/recv
  double rdma_poll_cqe_cycles = 900;      // completion handling
  // Doorbell batching: posting N WRs through one ibv_post_send call pays
  // the full post cost once (descriptor setup + the MMIO doorbell write)
  // plus a small per-extra-WR descriptor chain cost.
  double rdma_doorbell_wr_cycles = 150;   // each WR after the first
  // Completion batching: draining extra CQEs in the same poll sweep skips
  // the wakeup/cache-refill cost the first CQE pays.
  double rdma_poll_extra_cqe_cycles = 250;  // each CQE after the first
  double rdma_setup_cycles = 350000;      // QP bring-up, CM exchange
  double rdma_mr_register_cycles_per_page = 90;  // memory pinning (4 KiB)
  double rdma_read_efficiency = 0.925;  // RDMA Read vs Write NIC efficiency
  double rdma_header_bytes_per_mtu = 58;  // RoCE/IB transport headers

  // --- RPC small-message tier ---
  double rpc_dispatch_cycles = 600;  // server-side demux + handler dispatch
  double kv_lookup_cycles = 350;     // KV store probe (open-addressed table)

  // --- RFTP application ---
  double rftp_block_user_cycles = 130000;   // per data block, per side
  double rftp_control_msg_cycles = 9000;    // credit/feedback message
  double rftp_control_msg_bytes = 96;       // wire size of a control message

  // --- iSCSI/iSER ---
  double iscsi_pdu_cycles = 5200;         // build/parse one PDU
  double iser_task_cycles = 21000;        // per SCSI task at the target
  double iser_initiator_cycles = 14000;   // per SCSI task at the initiator
  double tcp_iscsi_extra_copy = 1.0;      // iSCSI-over-TCP pays copies too

  // --- filesystem / block layer ---
  double fs_op_cycles = 8000;          // per VFS read/write call overhead
  double fs_metadata_cycles = 30000;   // allocation, extent bookkeeping
  double page_cache_insert_cycles_per_byte = 0.05;
  double journal_commit_cycles = 120000;  // ext4-style journal commit

  // --- devices ---
  double sink_discard_cycles_per_call = 500;  // write to /dev/null

  /// Model used by all hosts unless a test overrides a knob.
  static const CostModel& defaults() {
    static const CostModel m{};
    return m;
  }
};

}  // namespace e2e::model
