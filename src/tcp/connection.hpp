// TCP connection model.
//
// Charges the full software cost the paper attributes to the TCP/IP path:
//
//  send(): syscall entry + user->kernel copy (CPU + memory channels) +
//          per-packet kernel protocol processing + NIC DMA out of the
//          socket buffer + wire serialization. Socket buffers live on the
//          NIC's NUMA node (kernel allocates near the device), so an app
//          thread on the wrong node pays remote-copy penalties — the exact
//          effect the §2.3 motivating experiment measures.
//  recv(): per-packet kernel processing (softirq work is accounted to the
//          consuming process, as getrusage shows it) + kernel->user copy.
//
// Flow control: send() completes when the data has been serialized onto
// the wire (socket-buffer backpressure), which caps one connection at line
// rate without RTT involvement on LANs. When `flow_controlled` is set
// (WAN), in-flight bytes are additionally limited by a CUBIC window with
// ACKs returning after one RTT.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "mem/msg_pool.hpp"
#include "metrics/cpu_usage.hpp"
#include "net/link.hpp"
#include "numa/host.hpp"
#include "numa/thread.hpp"
#include "sim/channel.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"
#include "stats/registry.hpp"
#include "tcp/cubic.hpp"
#include "trace/tracer.hpp"

namespace e2e::tcp {

/// Ethernet + IP + TCP header bytes per packet.
inline constexpr double kTcpHeaderBytes = 78.0;

/// Socket send-buffer: bounds how far the wire may lag the application.
inline constexpr double kSndbufBytes = 4.0 * 1024 * 1024;

/// Kernel-stack cost multiplier when the processing core is remote from
/// the NIC's NUMA node (skbs and descriptor rings are NIC-local).
inline constexpr double kRemoteStackPenalty = 1.45;

struct ConnectionOptions {
  bool flow_controlled = false;    // enable CUBIC window (WAN paths)
  double max_window_bytes = 64.0 * 1024 * 1024;  // net.core.rmem_max-style
  double loss_rate = 0.0;          // loss events per byte (0 on testbeds)
};

class Connection {
 public:
  /// `node_a`/`node_b`: NUMA node of the NIC each endpoint uses.
  Connection(numa::Host& host_a, numa::NodeId node_a, numa::Host& host_b,
             numa::NodeId node_b, net::Link& link,
             ConnectionOptions opts = {});

  /// Three-way handshake cost + one RTT.
  sim::Task<> connect(numa::Thread& client);

  /// One received message: its size and the application content that rode
  /// with it (protocol layers ship their headers/PDUs through `payload`;
  /// the simulation moves no real bytes).
  struct Message {
    std::uint64_t bytes = 0;
    mem::MsgPtr payload;
  };

  /// Sends `bytes` from a user buffer at `user_src`. `src_in_cache` models
  /// a source working set that fits in LLC (iperf default). Completes when
  /// the data is on the wire. `payload` (optional) is delivered with the
  /// message to the peer's recv.
  sim::Task<> send(numa::Thread& th, const numa::Placement& user_src,
                   std::uint64_t bytes, bool src_in_cache = false,
                   mem::MsgPtr payload = nullptr);

  /// Receives one inbound chunk into a user buffer at `user_dst`;
  /// returns its size (0 on connection close).
  sim::Task<std::uint64_t> recv(numa::Thread& th,
                                const numa::Placement& user_dst);

  /// Like recv(), but also returns the message payload.
  sim::Task<Message> recv_msg(numa::Thread& th,
                              const numa::Placement& user_dst);

  /// Receives a message charging the NIC DMA and kernel protocol work but
  /// NOT the kernel->user copy: for protocol layers that demultiplex first
  /// and copy to the real destination once it is known (e.g. iSCSI/TCP
  /// Data-In). Pair with copy_from_kernel().
  sim::Task<Message> recv_raw(numa::Thread& th);

  /// The deferred kernel->user copy matching recv_raw().
  sim::Task<> copy_from_kernel(numa::Thread& th, std::uint64_t bytes,
                               const numa::Placement& user_dst);

  /// Closes the stream in the a->b direction (recv on the peer returns 0
  /// after draining).
  void shutdown(numa::Thread& th);

  [[nodiscard]] std::uint64_t bytes_sent(int endpoint) const {
    return ep_[endpoint].bytes_sent;
  }
  /// Chunks re-serialized after an injected wire fault (RTO recovery).
  [[nodiscard]] std::uint64_t retransmits() const noexcept {
    return retransmits_;
  }
  [[nodiscard]] net::Link& link() noexcept { return link_; }

  /// Endpoint index for a thread on `host` (0 for host_a, 1 for host_b).
  [[nodiscard]] int endpoint_of(const numa::Host& host) const;

 private:
  struct Endpoint {
    numa::Host* host = nullptr;
    numa::NodeId nic_node = 0;
    numa::Placement skb;          // socket buffers, NIC-local
    std::unique_ptr<sim::Channel<Message>> inbound;
    std::uint64_t bytes_sent = 0;
    std::uint64_t bytes_received = 0;
    // CUBIC state (flow_controlled connections only).
    std::unique_ptr<Cubic> cubic;
    std::unique_ptr<sim::Semaphore> window;  // wake-up for window waiters
    double in_flight = 0.0;
    double loss_accum = 0.0;
    sim::SimTime last_loss_time = 0;
    sim::SimTime last_tx_done = 0;  // orders FIN behind queued data
    // Per-endpoint trace handles, resolved once per tracer so the per-ACK/
    // per-loss/per-chunk paths never build a name string or hash a lookup.
    trace::CachedTrack trk;          // this endpoint's trace track
    trace::CachedCounter acks;       // "tcp/acks"
    trace::CachedCounter losses;     // "tcp/losses"
    trace::CachedCounter rexmits;    // "tcp/retransmits"
    trace::CachedCounter tx_bytes;   // "tcp/bytes_sent"
    trace::CachedCounter rx_bytes;   // "tcp/bytes_received"
    trace::CachedSeries cwnd;        // "tcp/cwnd/<host>"
    trace::CachedName ack_name;      // "ack"
    trace::CachedName loss_name;     // "loss"
    trace::CachedName rexmit_name;   // "retransmit"
    trace::CachedName send_name;     // "send"
    trace::CachedName recv_name;     // "recv"

    // Stats handles: the CUBIC cwnd gauge samples on every ACK/loss, so
    // the handles resolve once per registry install like the trace ones.
    stats::CachedEntity stats_ent;
    stats::CachedGauge g_cwnd;       // "cwnd_bytes"
    stats::CachedCounter sctr_loss;  // "losses"
    stats::CachedCounter sctr_retx;  // "retransmits"
    stats::CachedCode code_loss;     // "loss"
    stats::CachedCode code_retx;     // "retransmit"
  };

  /// This endpoint's trace track ("<host>/tcp#n"), minted lazily.
  trace::TrackId trace_track(trace::Tracer* tr, Endpoint& ep) {
    return ep.trk.get_lazy(tr, trace::Layer::kTcp,
                           [&ep] { return ep.host->name() + "/tcp"; });
  }

  /// This endpoint's cwnd series id ("tcp/cwnd/<host>"), interned lazily.
  trace::NameId cwnd_series(trace::Tracer* tr, Endpoint& ep) {
    return ep.cwnd.get_lazy(
        tr, [&ep] { return "tcp/cwnd/" + ep.host->name(); });
  }

  /// This endpoint's stats entity ("<host>/tcp#n"), minted lazily.
  stats::EntityId stats_entity(stats::Registry* st, Endpoint& ep) {
    return ep.stats_ent.get_lazy(st, stats::Layer::kTcp,
                                 [&ep] { return ep.host->name() + "/tcp"; });
  }

  sim::Task<> apply_window(Endpoint& ep, std::uint64_t bytes);

  net::Link& link_;
  ConnectionOptions opts_;
  Endpoint ep_[2];
  std::uint64_t retransmits_ = 0;
};

}  // namespace e2e::tcp
