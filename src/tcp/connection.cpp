#include "tcp/connection.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "check/audit.hpp"

namespace e2e::tcp {

Connection::Connection(numa::Host& host_a, numa::NodeId node_a,
                       numa::Host& host_b, numa::NodeId node_b,
                       net::Link& link, ConnectionOptions opts)
    : link_(link), opts_(opts) {
  // The TCP model runs both endpoints' stacks on one event engine (shared
  // channels, direct peer-state reads). Cross-shard TCP would need the
  // cross_post seam the RDMA path has; until then, refuse the topology
  // loudly rather than silently racing. Cross-shard fleets carry their
  // bulk traffic over rdma:: QPs.
  if (&host_a.engine() != &host_b.engine())
    throw std::logic_error(
        "tcp::Connection endpoints must share one engine (link " +
        link.name() + " spans two shards)");
  auto init = [&](Endpoint& ep, numa::Host& h, numa::NodeId n) {
    ep.host = &h;
    ep.nic_node = n;
    ep.skb = numa::Placement::on(n);
    ep.inbound = std::make_unique<sim::Channel<Message>>(h.engine());
    if (opts_.flow_controlled) {
      ep.cubic = std::make_unique<Cubic>(static_cast<double>(link.mtu()),
                                         opts_.max_window_bytes);
      // Window bookkeeping lives in the wait loop; the semaphore slot is
      // repurposed as a wake-up signal holder (see apply_window).
    }
  };
  init(ep_[0], host_a, node_a);
  init(ep_[1], host_b, node_b);
}

int Connection::endpoint_of(const numa::Host& host) const {
  if (ep_[0].host == &host) return 0;
  if (ep_[1].host == &host) return 1;
  throw std::invalid_argument("thread's host is not a connection endpoint");
}

sim::Task<> Connection::connect(numa::Thread& client) {
  co_await client.compute(client.host().costs().tcp_connect_cycles,
                          metrics::CpuCategory::kKernelProto);
  co_await sim::Delay{client.host().engine(), link_.rtt()};
}

sim::Task<> Connection::apply_window(Endpoint& ep, std::uint64_t bytes) {
  if (!opts_.flow_controlled) co_return;
  if (!ep.window)
    ep.window = std::make_unique<sim::Semaphore>(ep.host->engine(), 0);
  auto& eng = ep.host->engine();

  // Wait for window space; a chunk larger than the whole window is
  // admitted alone once the pipe drains (the kernel would segment it).
  while (ep.in_flight > 0.0 &&
         ep.in_flight + static_cast<double>(bytes) > ep.cubic->cwnd_bytes())
    co_await ep.window->acquire();
  ep.in_flight += static_cast<double>(bytes);

  // Synthetic loss process (deterministic spacing), if configured.
  if (opts_.loss_rate > 0.0) {
    ep.loss_accum += static_cast<double>(bytes) * opts_.loss_rate;
    if (ep.loss_accum >= 1.0) {
      ep.loss_accum -= 1.0;
      ep.cubic->on_loss();
      ep.last_loss_time = eng.now();
      if (auto* tr = trace::of(eng)) {
        tr->instant(trace_track(tr, ep), ep.loss_name.get(tr, "loss"));
        ep.losses.get(tr, "tcp/losses").add(1);
        tr->value_sample(cwnd_series(tr, ep), ep.cubic->cwnd_bytes());
      }
      if (auto* st = stats::of(eng)) {
        const auto e = stats_entity(st, ep);
        ep.sctr_loss.get(st, e, "losses").add(1);
        ep.g_cwnd.get(st, e, "cwnd_bytes").set(ep.cubic->cwnd_bytes());
        st->flight(stats::Layer::kTcp, e, ep.code_loss.get(st, "loss"),
                   static_cast<std::uint64_t>(ep.cubic->cwnd_bytes()));
      }
    }
  }

  // ACK clock: one RTT after the data hits the wire the window re-opens.
  Endpoint* pep = &ep;
  const std::uint64_t acked = bytes;
  eng.schedule_after(link_.rtt(), [this, pep, acked] {
    pep->in_flight -= static_cast<double>(acked);
    if (pep->in_flight < 0) pep->in_flight = 0;
    const sim::SimTime since =
        pep->host->engine().now() - pep->last_loss_time;
    pep->cubic->on_ack(static_cast<double>(acked), since);
    pep->window->release();
    if (auto* tr = trace::of(pep->host->engine())) {
      tr->instant(trace_track(tr, *pep), pep->ack_name.get(tr, "ack"));
      pep->acks.get(tr, "tcp/acks").add(1);
      tr->value_sample(cwnd_series(tr, *pep), pep->cubic->cwnd_bytes());
    }
    if (auto* st = stats::of(pep->host->engine()))
      pep->g_cwnd.get(st, stats_entity(st, *pep), "cwnd_bytes")
          .set(pep->cubic->cwnd_bytes());
  });
}

sim::Task<> Connection::send(numa::Thread& th, const numa::Placement& user_src,
                             std::uint64_t bytes, bool src_in_cache,
                             mem::MsgPtr payload) {
  Endpoint& ep = ep_[endpoint_of(th.host())];
  Endpoint& peer = ep_[1 - endpoint_of(th.host())];
  const auto& cm = th.host().costs();
  const int dir = link_.bound() ? link_.dir_from(ep.host)
                                : (&ep == &ep_[0] ? 0 : 1);
  const sim::SimTime trace_t0 = th.host().engine().now();

  // Syscall entry + user->kernel copy into NIC-local socket buffers.
  co_await th.compute(cm.tcp_syscall_cycles,
                      metrics::CpuCategory::kKernelProto);
  co_await th.copy(bytes, user_src, ep.skb, metrics::CpuCategory::kCopy,
                   numa::Coherence::kPrivate, src_in_cache);

  // Kernel protocol processing (segmentation, checksums, qdisc). Running
  // the stack on a core remote from the NIC's node costs extra: skb
  // metadata and descriptor rings live NIC-local.
  const double pkts = std::ceil(link_.packets(static_cast<double>(bytes)));
  const double kern_penalty =
      th.node() == ep.nic_node ? 1.0 : kRemoteStackPenalty;
  co_await th.compute(pkts * cm.tcp_kernel_cycles_per_packet * kern_penalty,
                      metrics::CpuCategory::kKernelProto);

  co_await apply_window(ep, bytes);

  // Hand off to the NIC: send() returns once the data sits in the socket
  // buffer; DMA and wire serialization proceed asynchronously. Block only
  // while the device backlog exceeds the socket buffer (sndbuf pressure).
  auto& eng = th.host().engine();
  auto& wire = link_.dir(dir);
  const sim::SimDuration sndbuf_time = wire.service_time(kSndbufBytes);
  while (wire.backlog_delay() > sndbuf_time)
    co_await sim::Delay{eng, wire.backlog_delay() - sndbuf_time};
  th.host().charge_dma(ep.skb, bytes, ep.nic_node, /*to_device=*/true);
  const double wire_payload =
      link_.wire_bytes(static_cast<double>(bytes), kTcpHeaderBytes);
  sim::SimTime tx_done = wire.charge(wire_payload);

  // Fault model: TCP is reliable, so a chunk the fabric eats is recovered
  // inside the transport — the kernel retransmits after an RTO (backing
  // off while a fault window persists), re-serializing the chunk and
  // shrinking the congestion window. The sender stalls meanwhile, which is
  // exactly the goodput cost chaos benches measure.
  net::TxFate fate =
      link_.transmit_fate(static_cast<net::Direction>(dir), wire_payload);
  sim::SimDuration rto = 2 * link_.rtt();
  while (fate.fail) {
    if (ep.cubic) ep.cubic->on_loss();
    if (auto* tr = trace::of(eng)) {
      tr->instant(trace_track(tr, ep), ep.rexmit_name.get(tr, "retransmit"));
      ep.rexmits.get(tr, "tcp/retransmits").add(1);
    }
    if (auto* st = stats::of(eng)) {
      const auto e = stats_entity(st, ep);
      ep.sctr_retx.get(st, e, "retransmits").add(1);
      if (ep.cubic)
        ep.g_cwnd.get(st, e, "cwnd_bytes").set(ep.cubic->cwnd_bytes());
      st->flight(stats::Layer::kTcp, e, ep.code_retx.get(st, "retransmit"),
                 bytes);
    }
    ++retransmits_;
    co_await sim::Delay{eng, fate.fail_delay + rto};
    rto = std::min(rto * 2, static_cast<sim::SimDuration>(60 * sim::kSecond));
    tx_done = wire.charge(wire_payload);
    fate = link_.transmit_fate(static_cast<net::Direction>(dir), wire_payload);
  }

  ep.bytes_sent += bytes;
  ep.last_tx_done = tx_done;
  if (auto* au = check::of(eng)) au->flow_in(&ep, "tcp", bytes);
  if (auto* tr = trace::of(eng)) {
    tr->complete(trace_track(tr, ep), ep.send_name.get(tr, "send"), trace_t0);
    ep.tx_bytes.get(tr, "tcp/bytes_sent").add(bytes);
  }
  sim::Channel<Message>* dst = peer.inbound.get();
  eng.schedule_at(
      sim::Engine::saturating_add(tx_done, link_.latency() +
                                               fate.extra_latency),
      [dst, bytes, payload = std::move(payload)]() mutable {
        dst->send(Message{bytes, std::move(payload)});
      });
}

sim::Task<std::uint64_t> Connection::recv(numa::Thread& th,
                                          const numa::Placement& user_dst) {
  const Message m = co_await recv_msg(th, user_dst);
  co_return m.bytes;
}

sim::Task<Connection::Message> Connection::recv_msg(
    numa::Thread& th, const numa::Placement& user_dst) {
  Message m = co_await recv_raw(th);
  if (m.bytes > 0) co_await copy_from_kernel(th, m.bytes, user_dst);
  co_return m;
}

sim::Task<Connection::Message> Connection::recv_raw(numa::Thread& th) {
  const int idx = endpoint_of(th.host());
  Endpoint& ep = ep_[idx];
  const auto& cm = th.host().costs();

  auto chunk = co_await ep.inbound->recv();
  if (!chunk) co_return Message{};  // connection closed
  const std::uint64_t bytes = chunk->bytes;
  const sim::SimTime trace_t0 = th.host().engine().now();

  // NIC DMA into socket buffers happened on arrival; charge it now along
  // with softirq protocol processing.
  const sim::SimTime dma_done =
      th.host().charge_dma(ep.skb, bytes, ep.nic_node, /*to_device=*/false);
  co_await sim::until(th.host().engine(), dma_done);
  const double pkts = std::ceil(link_.packets(static_cast<double>(bytes)));
  const double kern_penalty =
      th.node() == ep.nic_node ? 1.0 : kRemoteStackPenalty;
  co_await th.compute(cm.tcp_syscall_cycles +
                          pkts * cm.tcp_kernel_cycles_per_packet *
                              kern_penalty,
                      metrics::CpuCategory::kKernelProto);
  ep.bytes_received += bytes;
  if (auto* au = check::of(th.host().engine()))
    au->flow_out(&ep_[1 - idx], "tcp", bytes);
  if (auto* tr = trace::of(th.host().engine())) {
    tr->complete(trace_track(tr, ep), ep.recv_name.get(tr, "recv"), trace_t0);
    ep.rx_bytes.get(tr, "tcp/bytes_received").add(bytes);
  }
  co_return Message{bytes, std::move(chunk->payload)};
}

sim::Task<> Connection::copy_from_kernel(numa::Thread& th,
                                         std::uint64_t bytes,
                                         const numa::Placement& user_dst) {
  Endpoint& ep = ep_[endpoint_of(th.host())];
  co_await th.copy(bytes, ep.skb, user_dst, metrics::CpuCategory::kCopy);
}

void Connection::shutdown(numa::Thread& th) {
  Endpoint& ep = ep_[endpoint_of(th.host())];
  Endpoint& peer = ep_[1 - endpoint_of(th.host())];
  sim::Channel<Message>* dst = peer.inbound.get();
  auto& eng = th.host().engine();
  // The FIN queues behind any data still leaving the socket buffer.
  const sim::SimTime after =
      ep.last_tx_done > eng.now() ? ep.last_tx_done : eng.now();
  eng.schedule_at(sim::Engine::saturating_add(after, link_.latency()),
                  [dst] { dst->close(); });
}

}  // namespace e2e::tcp
