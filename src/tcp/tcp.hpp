// Umbrella header for the TCP stack model.
#pragma once

#include "tcp/connection.hpp"
#include "tcp/cubic.hpp"
