// CUBIC congestion-window model (Table 1: all hosts run cubic).
//
// Window-evolution model, not a packet-level simulator: the window grows
// along the cubic curve between loss events and collapses multiplicatively
// on loss. The paper's WAN evaluation is RDMA-only; this model exists so
// the TCP baseline behaves plausibly on high-BDP paths in our extension
// experiments and tests.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "sim/time.hpp"

namespace e2e::tcp {

class Cubic {
 public:
  /// `initial_ssthresh_bytes` caps slow start before the first loss
  /// (<= 0 means "no cap": ssthresh starts at the max window, the
  /// pre-existing default).
  Cubic(double mss_bytes, double max_window_bytes,
        double initial_ssthresh_bytes = 0.0)
      : mss_(mss_bytes),
        max_window_(max_window_bytes),
        cwnd_(10.0 * mss_bytes),  // RFC 6928 initial window
        ssthresh_(initial_ssthresh_bytes > 0.0 ? initial_ssthresh_bytes
                                               : max_window_bytes) {}

  /// Bytes allowed in flight right now.
  [[nodiscard]] double cwnd_bytes() const noexcept {
    return std::min(cwnd_, max_window_);
  }

  /// Called when `bytes` are cumulatively acknowledged.
  void on_ack(double bytes, sim::SimDuration since_last_loss) {
    if (cwnd_ < ssthresh_) {
      cwnd_ = std::min(cwnd_ + bytes, max_window_);  // slow start
      // Exiting slow start without a prior loss leaves w_max_ at 0 and the
      // cubic target would grow from Wmax = 0 (i.e. barely at all). Seed
      // the plateau at the exit window, as if the ssthresh cap were a loss
      // at this level.
      if (cwnd_ >= ssthresh_ && w_max_ <= 0.0) w_max_ = cwnd_;
      return;
    }
    // W(t) = C*(t-K)^3 + Wmax, K = cbrt(Wmax*beta/C); t in seconds.
    const double t = sim::to_seconds(since_last_loss);
    const double wmax_seg = w_max_ / mss_;
    const double k = std::cbrt(wmax_seg * kBeta / kC);
    const double target_seg = kC * std::pow(t - k, 3.0) + wmax_seg;
    const double target = std::max(target_seg * mss_, cwnd_ + bytes * 0.05);
    cwnd_ = std::min(std::max(cwnd_, std::min(target, cwnd_ * 1.5)),
                     max_window_);
  }

  /// Called on a loss event (triple-dupack analogue).
  void on_loss() {
    w_max_ = cwnd_;
    cwnd_ = std::max(cwnd_ * (1.0 - kBeta), 2.0 * mss_);
    ssthresh_ = cwnd_;
  }

  [[nodiscard]] bool in_slow_start() const noexcept {
    return cwnd_ < ssthresh_;
  }

 private:
  static constexpr double kC = 0.4;     // cubic scaling constant
  static constexpr double kBeta = 0.3;  // multiplicative decrease

  double mss_;
  double max_window_;
  double cwnd_;
  double ssthresh_;
  double w_max_ = 0.0;
};

}  // namespace e2e::tcp
