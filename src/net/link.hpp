// Point-to-point duplex link model.
//
// A Link is the wire between two adapters (through a non-blocking switch or
// a long-haul circuit): per-direction serialization at the signalling rate,
// a fixed one-way propagation delay, and an MTU that determines per-packet
// header overhead. RoCE LAN, InfiniBand LAN and the 95 ms ANI WAN loop of
// the paper are all instances with different parameters.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>

#include "model/host_profile.hpp"
#include "model/units.hpp"
#include "sim/cluster.hpp"
#include "sim/engine.hpp"
#include "sim/resource.hpp"

namespace e2e::net {

class Link;

/// Transmission direction over a duplex link. The numeric values match the
/// historical `int d` convention (0: a->b, 1: b->a) so the enum converts
/// losslessly at the resource-array boundary.
enum class Direction : int { kAtoB = 0, kBtoA = 1 };

[[nodiscard]] constexpr int index(Direction d) noexcept {
  return static_cast<int>(d);
}
[[nodiscard]] constexpr Direction opposite(Direction d) noexcept {
  return d == Direction::kAtoB ? Direction::kBtoA : Direction::kAtoB;
}
[[nodiscard]] constexpr const char* to_string(Direction d) noexcept {
  return d == Direction::kAtoB ? "ab" : "ba";
}

/// Verdict for one message about to be transmitted on a link direction.
/// Produced by Link::transmit_fate() from the attached FaultHook (plus any
/// legacy injected-failure counters).
struct TxFate {
  /// Message is corrupted/dropped in flight: the sender sees a failed
  /// completion and the payload is never delivered.
  bool fail = false;
  /// When failing, how long the sender waits before the failure surfaces
  /// (models RC retry exhaustion on a blackholed path; 0 = immediate).
  sim::SimDuration fail_delay = 0;
  /// Extra one-way propagation delay added to this message (latency spike).
  /// Applies to successful deliveries.
  sim::SimDuration extra_latency = 0;
};

/// Fault-injection hook consulted once per message transmission. Implemented
/// by fault::FaultInjector; the indirection keeps net:: free of any
/// dependency on the fault library. Hooks must be deterministic for a given
/// event sequence — the simulation's reproducibility depends on it.
class FaultHook {
 public:
  virtual ~FaultHook() = default;
  /// Decides the fate of one `bytes`-sized message about to transmit on
  /// `link` in direction `d`.
  virtual TxFate on_transmit(Link& link, Direction d, double bytes) = 0;
};

class Link {
 public:
  Link(sim::Engine& eng, std::string name, double rate_gbps,
       sim::SimDuration one_way_latency, std::uint32_t mtu)
      : Link(eng, eng, std::move(name), rate_gbps, one_way_latency, mtu) {}

  /// Cross-shard link: side A's serialization resource (a->b) lives on
  /// `eng_a`, side B's (b->a) on `eng_b`, so each sender books wire time on
  /// its own shard's engine. When the two engines are shards of the same
  /// sim::Cluster, the link's one-way latency is declared as a lookahead
  /// seam — the cluster's conservative window is bounded by the minimum
  /// such latency. With eng_a == eng_b this is exactly the legacy ctor.
  Link(sim::Engine& eng_a, sim::Engine& eng_b, std::string name,
       double rate_gbps, sim::SimDuration one_way_latency, std::uint32_t mtu)
      : eng_{&eng_a, &eng_b},
        name_(std::move(name)),
        latency_(one_way_latency),
        mtu_(mtu),
        rate_gbps_(rate_gbps) {
    for (int d = 0; d < 2; ++d)
      dir_[d] = std::make_unique<sim::Resource>(
          *eng_[d], model::gbps_to_bytes_per_s(rate_gbps),
          name_ + (d ? "/ba" : "/ab"));
    if (&eng_a != &eng_b && eng_a.cluster() != nullptr &&
        eng_a.cluster() == eng_b.cluster())
      eng_a.cluster()->note_lookahead(latency_);
  }

  /// Serialization resource for one direction (0: a->b, 1: b->a).
  [[nodiscard]] sim::Resource& dir(int d) { return *dir_[d]; }
  [[nodiscard]] sim::Resource& dir(Direction d) { return *dir_[index(d)]; }

  /// Declares which physical endpoints sit on the link's two sides, so
  /// connections attached later transmit on the correct direction
  /// regardless of which side initiates. Endpoints are identified by any
  /// stable address (this library uses numa::Host pointers).
  void bind_endpoints(const void* side_a, const void* side_b) noexcept {
    ep_[0] = side_a;
    ep_[1] = side_b;
  }
  [[nodiscard]] bool bound() const noexcept { return ep_[0] != nullptr; }

  /// Direction index for transmissions originating at `from`.
  [[nodiscard]] int dir_from(const void* from) const {
    if (from == ep_[0]) return 0;
    if (from == ep_[1]) return 1;
    throw std::logic_error("endpoint not bound to link " + name_);
  }

  /// Attaches (or detaches, with nullptr) the fault-injection hook consulted
  /// on every transmission. At most one hook per link; the caller keeps
  /// ownership and must outlive the link or detach first.
  void set_fault_hook(FaultHook* hook) noexcept { hook_ = hook; }
  [[nodiscard]] FaultHook* fault_hook() const noexcept { return hook_; }

  /// Decides the fate of one message of `bytes` wire bytes about to be
  /// transmitted in direction `d`: consults the attached FaultHook first,
  /// then the legacy injected-failure counters. Senders (rdma::QueuePair,
  /// tcp::Connection) call this exactly once per message.
  [[nodiscard]] TxFate transmit_fate(Direction d, double bytes) {
    TxFate fate;
    if (hook_ != nullptr) fate = hook_->on_transmit(*this, d, bytes);
    if (!fate.fail && take_failure(d)) fate.fail = true;
    return fate;
  }

  /// Failure injection: the next `count` messages transmitted in direction
  /// `d` are corrupted in flight (delivered as failed completions).
  /// Deprecated counter API — new code should drive faults through a
  /// fault::FaultInjector attached via set_fault_hook(); the counters remain
  /// for cheap single-shot injections in unit tests.
  void inject_failures(Direction d, int count) noexcept {
    inject_[index(d)] += count;
  }

  /// Consumes one pending injected failure for direction `d`. Prefer
  /// transmit_fate(), which folds these counters in with hook-driven faults.
  [[nodiscard]] bool take_failure(Direction d) noexcept {
    if (inject_[index(d)] <= 0) return false;
    --inject_[index(d)];
    return true;
  }

  [[nodiscard]] sim::SimDuration latency() const noexcept { return latency_; }
  [[nodiscard]] sim::SimDuration rtt() const noexcept { return 2 * latency_; }
  [[nodiscard]] std::uint32_t mtu() const noexcept { return mtu_; }
  [[nodiscard]] double rate_gbps() const noexcept { return rate_gbps_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] sim::Engine& engine() noexcept { return *eng_[0]; }
  /// Engine of the sending side for direction `d` (the one whose shard
  /// books the serialization resource). Both sides on one engine in the
  /// legacy single-shard configuration.
  [[nodiscard]] sim::Engine& engine_for(Direction d) noexcept {
    return *eng_[index(d)];
  }
  /// True when the link spans two different engines (a cross-shard seam).
  [[nodiscard]] bool cross_engine() const noexcept {
    return eng_[0] != eng_[1];
  }

  /// Wire bytes for `payload` given per-MTU transport headers.
  [[nodiscard]] double wire_bytes(double payload,
                                  double header_per_mtu) const noexcept {
    const double per_pkt = static_cast<double>(mtu_);
    return payload * (1.0 + header_per_mtu / per_pkt);
  }

  /// Number of MTU-sized packets for `payload` bytes.
  [[nodiscard]] double packets(double payload) const noexcept {
    return payload / static_cast<double>(mtu_);
  }

 private:
  sim::Engine* eng_[2];  // per-direction sender engine; equal when one shard
  std::string name_;
  sim::SimDuration latency_;
  std::uint32_t mtu_;
  double rate_gbps_;
  std::unique_ptr<sim::Resource> dir_[2];
  const void* ep_[2] = {nullptr, nullptr};
  int inject_[2] = {0, 0};
  FaultHook* hook_ = nullptr;
};

/// LAN RoCE link per Table 1 (40 Gbps QDR, MTU 9000, RTT 166 us).
inline std::unique_ptr<Link> make_roce_lan(sim::Engine& eng,
                                           const std::string& name) {
  return std::make_unique<Link>(eng, name, 40.0, model::kLanRoceRtt / 2, 9000);
}

/// Cross-shard RoCE LAN link (side A on `eng_a`, side B on `eng_b`).
inline std::unique_ptr<Link> make_roce_lan(sim::Engine& eng_a,
                                           sim::Engine& eng_b,
                                           const std::string& name) {
  return std::make_unique<Link>(eng_a, eng_b, name, 40.0,
                                model::kLanRoceRtt / 2, 9000);
}

/// Rack-scale RoCE link: the Table 1 signalling rate (40 Gbps, MTU 9000)
/// but a single top-of-rack switch hop — ~2 us one-way — instead of the
/// paper's routed 83 us LAN path. This is the regime where the
/// small-message RPC tier is latency- rather than wire-bound, and where
/// the two-sided-RPC vs one-sided-READ crossover lands inside a
/// 64 B..256 KiB value sweep (bench/bench_rpc.cpp).
inline constexpr sim::SimDuration kRackOneWay = 2 * sim::kMicrosecond;

inline std::unique_ptr<Link> make_roce_rack(sim::Engine& eng,
                                            const std::string& name) {
  return std::make_unique<Link>(eng, name, 40.0, kRackOneWay, 9000);
}

/// Cross-shard rack link (side A on `eng_a`, side B on `eng_b`).
inline std::unique_ptr<Link> make_roce_rack(sim::Engine& eng_a,
                                            sim::Engine& eng_b,
                                            const std::string& name) {
  return std::make_unique<Link>(eng_a, eng_b, name, 40.0, kRackOneWay, 9000);
}

/// LAN InfiniBand FDR link per Table 1 (56 Gbps, MTU 65520, RTT 144 us).
inline std::unique_ptr<Link> make_ib_lan(sim::Engine& eng,
                                         const std::string& name) {
  return std::make_unique<Link>(eng, name, 56.0, model::kLanIbRtt / 2, 65520);
}

/// ANI WAN loop per Table 1 / Fig. 6 (40 Gbps RoCE, RTT 95 ms).
inline std::unique_ptr<Link> make_ani_wan(sim::Engine& eng,
                                          const std::string& name) {
  return std::make_unique<Link>(eng, name, 40.0, model::kWanRtt / 2, 9000);
}

}  // namespace e2e::net
