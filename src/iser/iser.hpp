// iSER: iSCSI Extensions for RDMA (RFC 7145) datamover.
//
// Binds the iSCSI session layer to the verbs layer:
//  * control PDUs travel as small RDMA SENDs over the session QP, received
//    into a ring of pre-posted control buffers;
//  * Data-In (serving SCSI READ) becomes an RDMA Write from the target
//    staging buffer into the initiator buffer advertised with the command;
//  * Data-Out (serving SCSI WRITE) becomes an RDMA Read pulling from the
//    initiator buffer — which is why the paper measures read-serving
//    (RDMA Write) ~7.5% faster than write-serving (RDMA Read).
//
// One IserEndpoint exists per session per side; a completion-dispatch task
// routes send-CQ completions back to the data operations awaiting them and
// feeds inbound PDUs to recv_pdu() callers.
#pragma once

#include <cstdint>
#include <functional>

#include "iscsi/datamover.hpp"
#include "iscsi/pdu.hpp"
#include "mem/flat_table.hpp"
#include "numa/process.hpp"
#include "rdma/qp.hpp"
#include "sim/channel.hpp"
#include "sim/sync.hpp"
#include "stats/registry.hpp"
#include "trace/tracer.hpp"

namespace e2e::iser {

class IserEndpoint final : public iscsi::Datamover {
 public:
  /// `proc` supplies the allocation context for control buffers (placed by
  /// the process memory policy, i.e. NIC-local when numactl-bound).
  IserEndpoint(rdma::QueuePair& qp, numa::Process& proc, int ctrl_depth = 64);

  /// Registers control buffers, posts the receive ring and spawns the
  /// completion dispatchers on `cq_thread`. Call once per endpoint before
  /// any traffic flows.
  sim::Task<> start(numa::Thread& cq_thread);

  /// Re-posts the full receive ring after a host crash emptied it
  /// (QueuePair::crash() discards every posted WR). Without this the
  /// first post-restart PDU would wait forever for a matching receive.
  sim::Task<> repost_ring(numa::Thread& th);

  // --- Datamover interface ---
  sim::Task<> send_pdu(numa::Thread& th, const iscsi::Pdu& pdu) override;
  sim::Task<std::optional<iscsi::Pdu>> recv_pdu(numa::Thread& th) override;
  sim::Task<> put_data(numa::Thread& th, mem::Buffer& staging,
                       std::uint64_t bytes, rdma::RemoteKey rkey,
                       std::uint64_t offset) override;
  sim::Task<> put_data_nowait(numa::Thread& th, mem::Buffer& staging,
                              std::uint64_t bytes, rdma::RemoteKey rkey,
                              std::uint64_t offset,
                              std::function<void()> on_complete) override;
  sim::Task<> get_data(numa::Thread& th, mem::Buffer& staging,
                       std::uint64_t bytes, rdma::RemoteKey rkey,
                       std::uint64_t offset) override;

  /// Stops delivering PDUs (recv_pdu returns nullopt).
  void close();

  [[nodiscard]] rdma::QueuePair& qp() noexcept { return qp_; }
  [[nodiscard]] std::uint64_t pdus_sent() const noexcept { return pdus_sent_; }
  [[nodiscard]] std::uint64_t data_ops() const noexcept { return data_ops_; }
  /// Failed data-op completions that were retried (wire fault / QP error).
  [[nodiscard]] std::uint64_t data_retries() const noexcept {
    return data_retries_;
  }
  /// Data ops abandoned after the retry limit; the loss surfaces end-to-end
  /// (digest mismatch / LUN write-ledger divergence), not as a hang.
  [[nodiscard]] std::uint64_t data_aborts() const noexcept {
    return data_aborts_;
  }
  /// Fire-and-forget Data-In losses (put_data_nowait completions that
  /// failed; the initiator's digest retry recovers the data).
  [[nodiscard]] std::uint64_t data_losses() const noexcept {
    return data_losses_;
  }

  /// Failed awaited data ops are retried up to this many times, waiting
  /// for QP recovery when the QP died and backing off (capped exponential)
  /// on transient wire faults.
  void set_data_retry_limit(int n) noexcept { data_retry_limit_ = n; }

 private:
  sim::Task<> send_cq_loop(numa::Thread& th);
  sim::Task<> recv_cq_loop(numa::Thread& th);
  sim::Task<> await_data_op(numa::Thread& th, rdma::SendWr wr,
                            const char* span_name);

  /// This endpoint's trace track ("<host>/iser#n"), minted lazily.
  trace::TrackId trace_track(trace::Tracer* tr) {
    return trace_trk_.get_lazy(
        tr, trace::Layer::kIser,
        [this] { return proc_.host().name() + "/iser"; });
  }

  /// Per-PDU-type "pdu:<type>" marker name, built and interned once.
  trace::NameId pdu_name(trace::Tracer* tr, iscsi::PduType t) {
    return pdu_names_[static_cast<std::size_t>(t)].get_lazy(
        tr, [t] { return std::string("pdu:") + iscsi::to_string(t); });
  }

  /// What to do when a data op's send completion arrives. Awaited ops park
  /// on an event; fire-and-forget (nowait) ops carry their release callback
  /// (small captures only — it must fit std::function's inline storage to
  /// keep the hot path allocation-free) and the async span to close.
  struct SendCompletion {
    sim::ManualEvent* done = nullptr;  // awaited: event to set
    bool* ok = nullptr;                // awaited: receives wc.success
    std::function<void()> on_complete;  // nowait: buffer release callback
    std::uint64_t span_id = 0;          // nowait: "rdma-write" span key
    bool nowait = false;
  };

  rdma::QueuePair& qp_;
  numa::Process& proc_;
  rdma::ProtectionDomain pd_;
  int ctrl_depth_;
  mem::Buffer ctrl_buf_;   // shared descriptor for control sends
  mem::Buffer recv_buf_;   // shared descriptor for the receive ring
  sim::Channel<iscsi::Pdu> rx_pdus_;
  // Completion records keyed by wr_id (flat table: steady-state churn
  // stops allocating once the probe array has grown).
  mem::FlatMap<SendCompletion> pending_;
  std::uint64_t next_wr_ = 1;
  std::uint64_t pdus_sent_ = 0;
  std::uint64_t data_ops_ = 0;
  std::uint64_t data_retries_ = 0;
  std::uint64_t data_aborts_ = 0;
  std::uint64_t data_losses_ = 0;
  int data_retry_limit_ = 12;
  bool started_ = false;
  trace::CachedTrack trace_trk_;
  trace::CachedSeries pdu_names_[11];  // indexed by iscsi::PduType
  trace::CachedCounter ctr_pdus_sent_;
  trace::CachedCounter ctr_pdus_received_;
  trace::CachedCounter ctr_data_bytes_;
  trace::CachedCounter ctr_data_ops_;

  // Stats handles: one entity per endpoint, data-op round-trip histogram
  // plus retry/abort/loss counters and matching flight records.
  stats::CachedEntity stats_ent_;
  stats::CachedHistogram hist_data_;
  stats::CachedCounter sctr_retries_;
  stats::CachedCounter sctr_aborts_;
  stats::CachedCounter sctr_losses_;
  stats::CachedCode code_retry_;
  stats::CachedCode code_abort_;
  stats::CachedCode code_loss_;

  stats::EntityId stats_entity(stats::Registry* st) {
    return stats_ent_.get_lazy(st, stats::Layer::kIser, [this] {
      return proc_.host().name() + "/iser";
    });
  }
};

}  // namespace e2e::iser
