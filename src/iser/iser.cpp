#include "iser/iser.hpp"

#include <algorithm>
#include <stdexcept>

#include "check/audit.hpp"
#include "mem/msg_pool.hpp"

namespace e2e::iser {

namespace {
constexpr std::uint64_t kCtrlBufBytes = 512;
}

IserEndpoint::IserEndpoint(rdma::QueuePair& qp, numa::Process& proc,
                           int ctrl_depth)
    : qp_(qp),
      proc_(proc),
      pd_(proc.host()),
      ctrl_depth_(ctrl_depth),
      rx_pdus_(proc.host().engine()) {
  ctrl_buf_.bytes = kCtrlBufBytes;
  ctrl_buf_.placement = proc.alloc(kCtrlBufBytes, qp.device().node());
  recv_buf_.bytes = kCtrlBufBytes;
  recv_buf_.placement = proc.alloc(kCtrlBufBytes, qp.device().node());
}

sim::Task<> IserEndpoint::start(numa::Thread& cq_thread) {
  if (started_) throw std::logic_error("iSER endpoint already started");
  started_ = true;
  co_await pd_.register_buffer(cq_thread, ctrl_buf_);
  co_await pd_.register_buffer(cq_thread, recv_buf_);
  for (int i = 0; i < ctrl_depth_; ++i)
    co_await qp_.post_recv(cq_thread, rdma::RecvWr{0, &recv_buf_});
  sim::co_spawn(send_cq_loop(cq_thread));
  sim::co_spawn(recv_cq_loop(cq_thread));
}

sim::Task<> IserEndpoint::repost_ring(numa::Thread& th) {
  if (!started_) throw std::logic_error("repost_ring before start()");
  for (int i = 0; i < ctrl_depth_; ++i)
    co_await qp_.post_recv(th, rdma::RecvWr{0, &recv_buf_});
}

sim::Task<> IserEndpoint::send_cq_loop(numa::Thread& th) {
  for (;;) {
    auto wc = co_await qp_.send_cq().wait(th);
    if (SendCompletion* pc = pending_.find(wc.wr_id)) {
      SendCompletion sc = std::move(*pc);
      pending_.erase(wc.wr_id);
      if (sc.nowait) {
        // Fire-and-forget Data-In: a failed completion still recycles the
        // staging buffer, but the payload never landed — count the loss
        // and let the initiator's digest verification re-drive the I/O.
        // Retrying here would risk double-delivery when the initiator also
        // retries.
        if (wc.success) {
          if (auto* au = check::of(proc_.host().engine()))
            au->flow_out(this, "iser.data", wc.byte_len);
        }
        if (!wc.success) {
          ++data_losses_;
          if (auto* tr = trace::of(proc_.host().engine())) {
            tr->instant(trace_track(tr), "data-loss");
            tr->counter("iser/data_losses").add(1);
          }
          if (auto* st = stats::of(proc_.host().engine())) {
            const auto e = stats_entity(st);
            sctr_losses_.get(st, e, "data_losses").add(1);
            st->flight(stats::Layer::kIser, e,
                       code_loss_.get(st, "data-loss"), wc.wr_id);
          }
        }
        if (auto* tr = trace::of(proc_.host().engine()))
          tr->async_end(trace_track(tr), "rdma-write", sc.span_id);
        sc.on_complete();
      } else {
        *sc.ok = wc.success;
        sc.done->set();
      }
    }
    // Control-send completions (wr_id 0) just recycle the shared buffer.
    // A lost control PDU is healed by the initiator's command retransmit.
  }
}

sim::Task<> IserEndpoint::recv_cq_loop(numa::Thread& th) {
  for (;;) {
    auto wc = co_await qp_.recv_cq().wait(th);
    if (const auto* pdu = wc.as<iscsi::Pdu>()) rx_pdus_.send(*pdu);
    // Replenish the receive ring.
    co_await qp_.post_recv(th, rdma::RecvWr{0, &recv_buf_});
  }
}

sim::Task<> IserEndpoint::send_pdu(numa::Thread& th, const iscsi::Pdu& pdu) {
  if (!started_) throw std::logic_error("send_pdu before start()");
  co_await th.compute(th.host().costs().iscsi_pdu_cycles,
                      metrics::CpuCategory::kUserProto);
  rdma::SendWr wr;
  wr.op = rdma::Opcode::kSend;
  wr.wr_id = 0;  // control send: fire-and-forget
  wr.local = &ctrl_buf_;
  wr.bytes = static_cast<std::uint64_t>(pdu.wire_bytes());
  wr.payload = mem::make_msg<iscsi::Pdu>(pdu);
  co_await qp_.post_send(th, wr);
  ++pdus_sent_;
  if (auto* tr = trace::of(proc_.host().engine())) {
    tr->instant(trace_track(tr), pdu_name(tr, pdu.type));
    ctr_pdus_sent_.get(tr, "iser/pdus_sent").add(1);
  }
}

sim::Task<std::optional<iscsi::Pdu>> IserEndpoint::recv_pdu(
    numa::Thread& th) {
  auto pdu = co_await rx_pdus_.recv();
  if (!pdu) co_return std::nullopt;
  co_await th.compute(th.host().costs().iscsi_pdu_cycles,
                      metrics::CpuCategory::kUserProto);
  if (auto* tr = trace::of(proc_.host().engine()))
    ctr_pdus_received_.get(tr, "iser/pdus_received").add(1);
  co_return *pdu;
}

sim::Task<> IserEndpoint::await_data_op(numa::Thread& th, rdma::SendWr wr,
                                        const char* span_name) {
  auto& eng = th.host().engine();
  // Data ops from concurrent submitters overlap, so they trace as async
  // spans keyed by wr_id.
  if (auto* tr = trace::of(eng)) {
    tr->async_begin(trace_track(tr), span_name, wr.wr_id);
    ctr_data_bytes_.get(tr, "iser/data_bytes").add(wr.bytes);
    ctr_data_ops_.get(tr, "iser/data_ops").add(1);
  }
  if (auto* au = check::of(eng)) au->flow_in(this, "iser.data", wr.bytes);
  const std::uint64_t span_id = wr.wr_id;
  const sim::SimTime op_t0 = eng.now();
  sim::SimDuration backoff = 100 * sim::kMicrosecond;
  constexpr sim::SimDuration kBackoffCap = 10 * sim::kMillisecond;
  for (int attempt = 0;; ++attempt) {
    bool ok = false;
    sim::ManualEvent done(eng);
    SendCompletion sc;
    sc.done = &done;
    sc.ok = &ok;
    pending_.insert(wr.wr_id, std::move(sc));
    co_await qp_.post_send(th, wr);
    co_await done.wait();
    if (ok) {
      if (auto* au = check::of(eng)) au->flow_out(this, "iser.data", wr.bytes);
      break;
    }
    if (attempt >= data_retry_limit_) {
      // Give up rather than hang: the missing data surfaces end-to-end
      // (READ digest mismatch at the initiator, write-ledger divergence at
      // the LUN), and the session layer decides the command's fate.
      ++data_aborts_;
      if (auto* tr = trace::of(eng)) {
        tr->instant(trace_track(tr), "data-abort");
        tr->counter("iser/data_aborts").add(1);
        tr->async_end(trace_track(tr), span_name, span_id);
      }
      if (auto* st = stats::of(eng)) {
        const auto e = stats_entity(st);
        sctr_aborts_.get(st, e, "data_aborts").add(1);
        st->flight(stats::Layer::kIser, e, code_abort_.get(st, "data-abort"),
                   span_id);
      }
      co_return;
    }
    ++data_retries_;
    if (auto* tr = trace::of(eng)) {
      tr->instant(trace_track(tr), "data-retry");
      tr->counter("iser/data_retries").add(1);
    }
    if (auto* st = stats::of(eng)) {
      const auto e = stats_entity(st);
      sctr_retries_.get(st, e, "data_retries").add(1);
      st->flight(stats::Layer::kIser, e, code_retry_.get(st, "data-retry"),
                 static_cast<std::uint64_t>(attempt));
    }
    if (!qp_.alive()) {
      // QP died: wait for the session supervisor to walk it back to RTS
      // (MR revalidation included) before reposting.
      co_await qp_.ready_event().wait();
    } else {
      co_await sim::Delay{eng, backoff};
      backoff = std::min(backoff * 2, kBackoffCap);
    }
    wr.wr_id = next_wr_++;  // fresh id: the old completion is consumed
  }
  ++data_ops_;
  if (auto* tr = trace::of(eng))
    tr->async_end(trace_track(tr), span_name, span_id);
  if (auto* st = stats::of(eng))
    hist_data_.get(st, stats_entity(st), "data_op_ns")
        .record(static_cast<std::uint64_t>(eng.now() - op_t0));
}

sim::Task<> IserEndpoint::put_data(numa::Thread& th, mem::Buffer& staging,
                                   std::uint64_t bytes, rdma::RemoteKey rkey,
                                   std::uint64_t offset) {
  (void)offset;  // remote offsets do not change simulated costs
  rdma::SendWr wr;
  wr.op = rdma::Opcode::kWrite;
  wr.wr_id = next_wr_++;
  wr.local = &staging;
  wr.bytes = bytes;
  wr.remote = rkey;
  wr.content_tag = staging.content_tag;
  co_await await_data_op(th, wr, "rdma-write");
}

sim::Task<> IserEndpoint::put_data_nowait(numa::Thread& th,
                                          mem::Buffer& staging,
                                          std::uint64_t bytes,
                                          rdma::RemoteKey rkey,
                                          std::uint64_t offset,
                                          std::function<void()> on_complete) {
  (void)offset;
  rdma::SendWr wr;
  wr.op = rdma::Opcode::kWrite;
  wr.wr_id = next_wr_++;
  wr.local = &staging;
  wr.bytes = bytes;
  wr.remote = rkey;
  wr.content_tag = staging.content_tag;
  ++data_ops_;
  auto& eng = th.host().engine();
  if (auto* tr = trace::of(eng)) {
    tr->async_begin(trace_track(tr), "rdma-write", wr.wr_id);
    ctr_data_bytes_.get(tr, "iser/data_bytes").add(bytes);
    ctr_data_ops_.get(tr, "iser/data_ops").add(1);
  }
  if (auto* au = check::of(eng)) au->flow_in(this, "iser.data", bytes);
  // Loss accounting and the span close happen in send_cq_loop when this
  // record is consumed (see SendCompletion).
  SendCompletion sc;
  sc.on_complete = std::move(on_complete);
  sc.span_id = wr.wr_id;
  sc.nowait = true;
  pending_.insert(wr.wr_id, std::move(sc));
  co_await qp_.post_send(th, wr);
}

sim::Task<> IserEndpoint::get_data(numa::Thread& th, mem::Buffer& staging,
                                   std::uint64_t bytes, rdma::RemoteKey rkey,
                                   std::uint64_t offset) {
  (void)offset;
  rdma::SendWr wr;
  wr.op = rdma::Opcode::kRead;
  wr.wr_id = next_wr_++;
  wr.local = &staging;
  wr.bytes = bytes;
  wr.remote = rkey;
  // kRead adopts the remote buffer's tag into `staging` on completion.
  co_await await_data_op(th, wr, "rdma-read");
}

void IserEndpoint::close() { rx_pdus_.close(); }

}  // namespace e2e::iser
