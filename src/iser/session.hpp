// Convenience wiring of a full iSER session between two hosts.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>

#include "fault/watchdog.hpp"
#include "iser/iser.hpp"
#include "net/link.hpp"
#include "rdma/cm.hpp"
#include "sim/rng.hpp"
#include "stats/registry.hpp"
#include "trace/tracer.hpp"

namespace e2e::iser {

/// Shapes IserSession::enable_recovery(): capped exponential backoff with
/// jitter between re-establishment attempts, and an attempt budget after
/// which the session closes (surfacing terminal errors to submitters via
/// the initiator's retry budget) instead of reconnecting forever.
struct SessionRecoveryPolicy {
  int max_attempts = 8;  // consecutive failed recoveries before giving up
  sim::SimDuration backoff = sim::kMillisecond;
  double multiplier = 2.0;
  sim::SimDuration backoff_cap = 50 * sim::kMillisecond;
  double jitter = 0.2;  // uniform extra fraction of the backoff
  std::uint64_t seed = 0xC0FFEE;
  // Registered bytes revalidated per side during QP recovery (MR re-pin).
  std::uint64_t mr_bytes_initiator = 0;
  std::uint64_t mr_bytes_target = 0;
};

/// One iSER session: a connected QP pair plus the two datamover endpoints.
/// The initiator side rides pair().a(), the target side pair().b().
class IserSession {
 public:
  IserSession(rdma::Device& init_dev, rdma::Device& tgt_dev, net::Link& link,
              numa::Process& init_proc, numa::Process& tgt_proc,
              int ctrl_depth = 64)
      : pair_(init_dev, tgt_dev, link),
        initiator_ep_(pair_.a(), init_proc, ctrl_depth),
        target_ep_(pair_.b(), tgt_proc, ctrl_depth) {}

  /// CM handshake + endpoint bring-up on both sides.
  sim::Task<> start(numa::Thread& init_th, numa::Thread& tgt_th) {
    co_await pair_.establish(init_th, tgt_th);
    co_await initiator_ep_.start(init_th);
    co_await target_ep_.start(tgt_th);
  }

  /// Kills the session's QP pair (NIC fault). In-flight data ops fail and
  /// wait for the recovery supervisor (see enable_recovery()).
  void kill() { pair_.kill(); }

  /// Crash-stop of the target host: the pair dies, the target side loses
  /// its posted receives (volatile state), and re-logins are refused for
  /// `down` (0 = the host never returns). The recovery supervisor burns
  /// its attempt budget against the refusals, so an outage longer than
  /// the backoff schedule surfaces as an abandoned session; in-flight
  /// command dedup across the re-login rides the target's existing
  /// completed-command replay window.
  void crash(sim::SimDuration down) {
    auto& eng = pair_.a().device().host().engine();
    down_until_ = down > 0 ? eng.now() + down
                           : std::numeric_limits<sim::SimTime>::max();
    ring_lost_ = true;  // the target's posted receives die with the host
    pair_.crash(1);
  }

  /// Spawns a supervisor that watches for QP death and re-establishes the
  /// connection with capped exponential backoff + jitter, revalidating MRs
  /// per `policy`. Call after start(); `init_th`/`tgt_th` must outlive the
  /// run (session service threads, as for start()).
  void enable_recovery(numa::Thread& init_th, numa::Thread& tgt_th,
                       SessionRecoveryPolicy policy = {}) {
    if (supervising_) return;
    supervising_ = true;
    policy_ = policy;
    sim::co_spawn(supervise(init_th, tgt_th));
  }

  [[nodiscard]] std::uint64_t recoveries() const noexcept {
    return recoveries_;
  }
  [[nodiscard]] bool abandoned() const noexcept { return abandoned_; }
  /// Re-establishment attempts refused because the peer host was down.
  [[nodiscard]] std::uint64_t relogins_refused() const noexcept {
    return relogins_refused_;
  }

  [[nodiscard]] rdma::ConnectedPair& pair() noexcept { return pair_; }
  [[nodiscard]] IserEndpoint& initiator_ep() noexcept {
    return initiator_ep_;
  }
  [[nodiscard]] IserEndpoint& target_ep() noexcept { return target_ep_; }

 private:
  sim::Task<> supervise(numa::Thread& init_th, numa::Thread& tgt_th) {
    auto& eng = init_th.host().engine();
    // Back off before re-establishing (real CMs pace reconnects so a
    // flapping fabric is not hammered), growing the delay while the
    // fabric keeps killing us right back. The shared fault::Backoff
    // reproduces the historical inline schedule bit-for-bit (same
    // growth, cap, unconditional jitter draw, seed).
    fault::Backoff backoff(policy_.backoff, policy_.multiplier,
                           policy_.backoff_cap, policy_.jitter,
                           policy_.seed);
    for (;;) {
      co_await pair_.a().error_event().wait();
      co_await sim::Delay{eng, backoff.next()};
      if (pair_.alive()) {  // someone else recovered while we backed off
        backoff.reset();
        continue;
      }
      const int consecutive_failures = backoff.attempts();
      if (consecutive_failures > policy_.max_attempts) {
        // Budget exhausted: close the session. Submitters drain with
        // terminal errors through the initiator's own retry budget.
        abandoned_ = true;
        initiator_ep_.close();
        target_ep_.close();
        if (auto* tr = trace::of(eng))
          tr->counter("iser/sessions_abandoned").add(1);
        if (auto* st = stats::of(eng)) {
          // Terminal escalation: the fleet arc's "what happened just
          // before this endpoint gave up" case — dump the flight window.
          const auto e = st->entity(stats::Layer::kIser, "session");
          st->counter(e, "sessions_abandoned").add(1);
          st->flight(stats::Layer::kIser, e,
                     st->code("session-abandoned"),
                     static_cast<std::uint64_t>(consecutive_failures));
          st->trigger_flight_dump("iser:session-abandoned");
        }
        co_return;
      }
      if (eng.now() < down_until_) {
        // The peer host is still down: connection refused. The attempt
        // burns budget and the next backoff grows — exactly how a real
        // initiator discovers a crashed target, one refused login at a
        // time.
        ++relogins_refused_;
        if (auto* tr = trace::of(eng))
          tr->counter("iser/relogins_refused").add(1);
        continue;
      }
      co_await pair_.reestablish(init_th, tgt_th, policy_.mr_bytes_initiator,
                                 policy_.mr_bytes_target);
      if (pair_.alive()) {
        if (ring_lost_) {
          // Restart epoch: rebuild the receive ring the crash emptied.
          ring_lost_ = false;
          co_await target_ep_.repost_ring(tgt_th);
        }
        backoff.reset();
        ++recoveries_;
        if (auto* tr = trace::of(eng))
          tr->counter("iser/session_recoveries").add(1);
        if (auto* st = stats::of(eng))
          st->counter(st->entity(stats::Layer::kIser, "session"),
                      "session_recoveries")
              .add(1);
      }
    }
  }

  rdma::ConnectedPair pair_;
  IserEndpoint initiator_ep_;
  IserEndpoint target_ep_;
  SessionRecoveryPolicy policy_;
  bool supervising_ = false;
  bool abandoned_ = false;
  bool ring_lost_ = false;  // crash emptied the target's receive ring
  std::uint64_t recoveries_ = 0;
  std::uint64_t relogins_refused_ = 0;
  sim::SimTime down_until_ = 0;  // crash(): re-logins refused until here
};

}  // namespace e2e::iser
