// Convenience wiring of a full iSER session between two hosts.
#pragma once

#include "iser/iser.hpp"
#include "net/link.hpp"
#include "rdma/cm.hpp"

namespace e2e::iser {

/// One iSER session: a connected QP pair plus the two datamover endpoints.
/// The initiator side rides pair().a(), the target side pair().b().
class IserSession {
 public:
  IserSession(rdma::Device& init_dev, rdma::Device& tgt_dev, net::Link& link,
              numa::Process& init_proc, numa::Process& tgt_proc,
              int ctrl_depth = 64)
      : pair_(init_dev, tgt_dev, link),
        initiator_ep_(pair_.a(), init_proc, ctrl_depth),
        target_ep_(pair_.b(), tgt_proc, ctrl_depth) {}

  /// CM handshake + endpoint bring-up on both sides.
  sim::Task<> start(numa::Thread& init_th, numa::Thread& tgt_th) {
    co_await pair_.establish(init_th, tgt_th);
    co_await initiator_ep_.start(init_th);
    co_await target_ep_.start(tgt_th);
  }

  [[nodiscard]] rdma::ConnectedPair& pair() noexcept { return pair_; }
  [[nodiscard]] IserEndpoint& initiator_ep() noexcept {
    return initiator_ep_;
  }
  [[nodiscard]] IserEndpoint& target_ep() noexcept { return target_ep_; }

 private:
  rdma::ConnectedPair pair_;
  IserEndpoint initiator_ep_;
  IserEndpoint target_ep_;
};

}  // namespace e2e::iser
