// Convenience wiring of a full iSER session between two hosts.
#pragma once

#include <algorithm>
#include <cstdint>

#include "iser/iser.hpp"
#include "net/link.hpp"
#include "rdma/cm.hpp"
#include "sim/rng.hpp"
#include "stats/registry.hpp"
#include "trace/tracer.hpp"

namespace e2e::iser {

/// Shapes IserSession::enable_recovery(): capped exponential backoff with
/// jitter between re-establishment attempts, and an attempt budget after
/// which the session closes (surfacing terminal errors to submitters via
/// the initiator's retry budget) instead of reconnecting forever.
struct SessionRecoveryPolicy {
  int max_attempts = 8;  // consecutive failed recoveries before giving up
  sim::SimDuration backoff = sim::kMillisecond;
  double multiplier = 2.0;
  sim::SimDuration backoff_cap = 50 * sim::kMillisecond;
  double jitter = 0.2;  // uniform extra fraction of the backoff
  std::uint64_t seed = 0xC0FFEE;
  // Registered bytes revalidated per side during QP recovery (MR re-pin).
  std::uint64_t mr_bytes_initiator = 0;
  std::uint64_t mr_bytes_target = 0;
};

/// One iSER session: a connected QP pair plus the two datamover endpoints.
/// The initiator side rides pair().a(), the target side pair().b().
class IserSession {
 public:
  IserSession(rdma::Device& init_dev, rdma::Device& tgt_dev, net::Link& link,
              numa::Process& init_proc, numa::Process& tgt_proc,
              int ctrl_depth = 64)
      : pair_(init_dev, tgt_dev, link),
        initiator_ep_(pair_.a(), init_proc, ctrl_depth),
        target_ep_(pair_.b(), tgt_proc, ctrl_depth) {}

  /// CM handshake + endpoint bring-up on both sides.
  sim::Task<> start(numa::Thread& init_th, numa::Thread& tgt_th) {
    co_await pair_.establish(init_th, tgt_th);
    co_await initiator_ep_.start(init_th);
    co_await target_ep_.start(tgt_th);
  }

  /// Kills the session's QP pair (NIC fault). In-flight data ops fail and
  /// wait for the recovery supervisor (see enable_recovery()).
  void kill() { pair_.kill(); }

  /// Spawns a supervisor that watches for QP death and re-establishes the
  /// connection with capped exponential backoff + jitter, revalidating MRs
  /// per `policy`. Call after start(); `init_th`/`tgt_th` must outlive the
  /// run (session service threads, as for start()).
  void enable_recovery(numa::Thread& init_th, numa::Thread& tgt_th,
                       SessionRecoveryPolicy policy = {}) {
    if (supervising_) return;
    supervising_ = true;
    policy_ = policy;
    sim::co_spawn(supervise(init_th, tgt_th));
  }

  [[nodiscard]] std::uint64_t recoveries() const noexcept {
    return recoveries_;
  }
  [[nodiscard]] bool abandoned() const noexcept { return abandoned_; }

  [[nodiscard]] rdma::ConnectedPair& pair() noexcept { return pair_; }
  [[nodiscard]] IserEndpoint& initiator_ep() noexcept {
    return initiator_ep_;
  }
  [[nodiscard]] IserEndpoint& target_ep() noexcept { return target_ep_; }

 private:
  sim::Task<> supervise(numa::Thread& init_th, numa::Thread& tgt_th) {
    auto& eng = init_th.host().engine();
    sim::Rng rng(policy_.seed);
    int consecutive_failures = 0;
    for (;;) {
      co_await pair_.a().error_event().wait();
      sim::SimDuration backoff = policy_.backoff;
      // Back off before re-establishing (real CMs pace reconnects so a
      // flapping fabric is not hammered), growing the delay while the
      // fabric keeps killing us right back.
      for (int i = 0; i < consecutive_failures; ++i)
        backoff = std::min(static_cast<sim::SimDuration>(
                               static_cast<double>(backoff) *
                               policy_.multiplier),
                           policy_.backoff_cap);
      backoff += static_cast<sim::SimDuration>(
          rng.uniform(0.0, policy_.jitter) * static_cast<double>(backoff));
      co_await sim::Delay{eng, backoff};
      if (pair_.alive()) {  // someone else recovered while we backed off
        consecutive_failures = 0;
        continue;
      }
      if (++consecutive_failures > policy_.max_attempts) {
        // Budget exhausted: close the session. Submitters drain with
        // terminal errors through the initiator's own retry budget.
        abandoned_ = true;
        initiator_ep_.close();
        target_ep_.close();
        if (auto* tr = trace::of(eng))
          tr->counter("iser/sessions_abandoned").add(1);
        if (auto* st = stats::of(eng)) {
          // Terminal escalation: the fleet arc's "what happened just
          // before this endpoint gave up" case — dump the flight window.
          const auto e = st->entity(stats::Layer::kIser, "session");
          st->counter(e, "sessions_abandoned").add(1);
          st->flight(stats::Layer::kIser, e,
                     st->code("session-abandoned"),
                     static_cast<std::uint64_t>(consecutive_failures));
          st->trigger_flight_dump("iser:session-abandoned");
        }
        co_return;
      }
      co_await pair_.reestablish(init_th, tgt_th, policy_.mr_bytes_initiator,
                                 policy_.mr_bytes_target);
      if (pair_.alive()) {
        consecutive_failures = 0;
        ++recoveries_;
        if (auto* tr = trace::of(eng))
          tr->counter("iser/session_recoveries").add(1);
        if (auto* st = stats::of(eng))
          st->counter(st->entity(stats::Layer::kIser, "session"),
                      "session_recoveries")
              .add(1);
      }
    }
  }

  rdma::ConnectedPair pair_;
  IserEndpoint initiator_ep_;
  IserEndpoint target_ep_;
  SessionRecoveryPolicy policy_;
  bool supervising_ = false;
  bool abandoned_ = false;
  std::uint64_t recoveries_ = 0;
};

}  // namespace e2e::iser
