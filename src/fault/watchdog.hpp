// Unified watchdog/deadline hierarchy shared by iser, iscsi and rftp.
//
// Before this module every layer invented its own timeout math: iSER's
// session supervisor multiplied-and-capped a backoff inline, the iSCSI
// initiator grew a per-command timer with optional jitter, and RFTP had
// no liveness check at all (a crashed peer hung the transfer forever).
// This header centralises three pieces:
//
//   * Deadline — a policy struct (quiet period, quiet budget, hard cap)
//     that callers embed in their configs. One vocabulary for "how long
//     until we suspect, how long until we declare dead".
//   * Watchdog — a quiet-period stall detector driven by kick(). It
//     distinguishes *crash* from *slow*: a suspicion that clears when
//     progress resumes is counted as a false suspicion (visible in
//     stats as the `false-suspect` code), while `max_quiet` consecutive
//     quiet periods (or the hard deadline) declare the peer dead and run
//     the caller's on_dead callback exactly once.
//   * Backoff — the retry-delay schedule (exponential growth, cap,
//     bounded jitter) extracted from the iSER supervisor so it can be
//     unit-tested and reused. Same seed => same schedule.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>

#include "sim/engine.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace e2e::fault {

/// Timeout policy: embedded by layer configs (rftp::RftpConfig,
/// iser::SessionRecoveryPolicy, iscsi::RetryPolicy) so every layer tunes
/// liveness with the same three knobs.
struct Deadline {
  /// Quiet period: no progress for this long raises a suspicion.
  sim::SimDuration quiet = 500 * sim::kMillisecond;
  /// Consecutive quiet periods before the peer is declared dead.
  int max_quiet = 4;
  /// Absolute cap on total stall (0 = disabled): declared dead once
  /// `hard` elapses without progress regardless of quiet accounting.
  sim::SimDuration hard = 0;
};

/// Quiet-period stall detector. arm() starts a self-rescheduling check
/// every `deadline.quiet`; callers kick() on every unit of forward
/// progress (block drained, command completed, byte acked). Suspicions
/// that clear are false suspicions (slow peer, not dead); suspicions
/// that stack to `max_quiet` fire on_dead once and disarm. disarm() is
/// idempotent and must be called before the owner is destroyed — a
/// pending check holds only a generation counter, so stale timer events
/// after disarm are no-ops (the engine still drains them).
class Watchdog {
 public:
  explicit Watchdog(sim::Engine& eng) : eng_(eng) {}
  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  void arm(const Deadline& dl, std::function<void()> on_dead);
  /// Optional observer invoked each time a suspicion clears (the peer
  /// was slow, not dead) — owners wire this to a stats `false-suspect`
  /// code so operators can tune `quiet` against real stall tails.
  void set_false_suspect_handler(std::function<void()> handler) {
    on_false_suspect_ = std::move(handler);
  }
  /// Records forward progress; clears an in-flight suspicion lazily (the
  /// next check notices and counts the false suspicion).
  void kick() noexcept { last_kick_ = eng_.now(); }
  void disarm() noexcept { armed_ = false; ++generation_; }

  [[nodiscard]] bool armed() const noexcept { return armed_; }
  [[nodiscard]] bool declared_dead() const noexcept { return dead_; }
  [[nodiscard]] std::uint64_t false_suspicions() const noexcept {
    return false_suspicions_;
  }
  [[nodiscard]] std::uint64_t suspicions() const noexcept {
    return suspicions_;
  }

 private:
  void check(std::uint64_t gen);

  sim::Engine& eng_;
  Deadline dl_{};
  std::function<void()> on_dead_;
  std::function<void()> on_false_suspect_;
  sim::SimTime armed_at_ = 0;
  sim::SimTime last_kick_ = 0;
  sim::SimTime last_seen_kick_ = 0;
  int quiet_count_ = 0;
  bool suspicious_ = false;
  bool armed_ = false;
  bool dead_ = false;
  std::uint64_t generation_ = 0;
  std::uint64_t suspicions_ = 0;
  std::uint64_t false_suspicions_ = 0;
};

/// Exponential retry-delay schedule with cap and bounded jitter. next()
/// reproduces the iSER supervisor's historical math bit-for-bit: the
/// base delay doubles (well, multiplies) per consecutive failure, is
/// clamped to `cap` at every step, then gains a uniform jitter in
/// [0, jitter * delay). The jitter draw happens unconditionally so the
/// RNG stream — and therefore every downstream seeded decision — is
/// independent of the jitter fraction.
class Backoff {
 public:
  Backoff(sim::SimDuration base, double multiplier, sim::SimDuration cap,
          double jitter, std::uint64_t seed)
      : base_(base), multiplier_(multiplier), cap_(cap), jitter_(jitter),
        rng_(seed) {}

  /// Delay before retry #(attempts()+1); advances the attempt counter.
  [[nodiscard]] sim::SimDuration next() {
    sim::SimDuration b = base_;
    for (int i = 0; i < attempts_; ++i)
      b = std::min(static_cast<sim::SimDuration>(
                       static_cast<double>(b) * multiplier_),
                   cap_);
    b += static_cast<sim::SimDuration>(rng_.uniform(0.0, jitter_) *
                                       static_cast<double>(b));
    ++attempts_;
    return b;
  }

  /// Progress was made: the next failure starts from the base delay.
  void reset() noexcept { attempts_ = 0; }
  [[nodiscard]] int attempts() const noexcept { return attempts_; }

 private:
  sim::SimDuration base_;
  double multiplier_;
  sim::SimDuration cap_;
  double jitter_;
  int attempts_ = 0;
  sim::Rng rng_;
};

/// One step of capped exponential growth (cap = 0 means uncapped) — the
/// iSCSI per-command timeout law, shared so the growth rule lives in one
/// place.
[[nodiscard]] inline sim::SimDuration grow(sim::SimDuration v,
                                           double multiplier,
                                           sim::SimDuration cap) noexcept {
  auto g = static_cast<sim::SimDuration>(static_cast<double>(v) * multiplier);
  if (cap > 0) g = std::min(g, cap);
  return g;
}

/// Adds a uniform jitter in [0, frac * v) drawn from `rng`. Note: draws
/// from the RNG only when frac > 0 (the iSCSI initiator's historical
/// behaviour — its jitter stream advances only when jitter is enabled).
[[nodiscard]] inline sim::SimDuration with_jitter(sim::SimDuration v,
                                                  double frac,
                                                  sim::Rng& rng) {
  if (frac <= 0.0) return v;
  return v + static_cast<sim::SimDuration>(rng.uniform(0.0, frac) *
                                           static_cast<double>(v));
}

}  // namespace e2e::fault
