#include "fault/injector.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace e2e::fault {

FaultInjector::FaultInjector(sim::Engine& eng, FaultPlan plan)
    : eng_(eng), plan_(std::move(plan)) {}

FaultInjector::~FaultInjector() {
  for (auto& ls : links_)
    if (ls.link != nullptr && ls.link->fault_hook() == this)
      ls.link->set_fault_hook(nullptr);
}

void FaultInjector::attach(net::Link& link) {
  if (armed_) throw std::logic_error("attach after arm()");
  for (const auto& ls : links_)
    if (ls.link == &link)
      throw std::logic_error("link attached twice: " + link.name());
  LinkState ls;
  ls.link = &link;
  links_.push_back(ls);
  link.set_fault_hook(this);
}

void FaultInjector::arm() {
  if (armed_) throw std::logic_error("FaultInjector armed twice");
  armed_ = true;
  for (std::size_t i = 0; i < plan_.events.size(); ++i) {
    const FaultEvent& ev = plan_.events[i];
    if (ev.type != FaultType::kQpKill && ev.type != FaultType::kCrash &&
        ev.link >= static_cast<int>(links_.size())) {
      ++skipped_events_;
      continue;
    }
    // Capture the index, not the event: FaultEvent outgrew the EventFn
    // inline buffer, and plan_.events is immutable once armed.
    eng_.schedule_at(ev.at, [this, i] { apply(plan_.events[i]); });
  }
}

// Emits the injection-time trace instant + counters for one plan event.
void FaultInjector::fire(LinkState& ls, const char* name) {
  ++faults_injected_;
  if (auto* tr = trace::of(eng_)) {
    const auto tk = ls.trk.get(tr, trace::Layer::kFault,
                               "fault/" + ls.link->name());
    tr->instant(tk, name);
    tr->counter("fault/injected").add(1);
  }
}

void FaultInjector::apply(const FaultEvent& ev) {
  if (ev.type == FaultType::kQpKill) {
    ++faults_injected_;
    if (auto* tr = trace::of(eng_)) {
      const auto tk =
          plan_trk_.get(tr, trace::Layer::kFault, "fault/plan");
      tr->instant(tk, "qp-kill");
      tr->counter("fault/injected").add(1);
    }
    if (qp_kill_) qp_kill_(ev.qp);
    else ++skipped_events_;
    return;
  }
  if (ev.type == FaultType::kCrash) {
    ++faults_injected_;
    if (auto* tr = trace::of(eng_)) {
      const auto tk =
          plan_trk_.get(tr, trace::Layer::kFault, "fault/plan");
      tr->instant(tk, "host-crash");
      tr->counter("fault/injected").add(1);
    }
    if (crash_) crash_(ev.host, ev.down);
    else ++skipped_events_;
    return;
  }

  LinkState& ls = links_[static_cast<std::size_t>(ev.link)];
  switch (ev.type) {
    case FaultType::kLossBurst: {
      const int d = net::index(ev.dir);
      ls.pending_loss[d] += ev.count;
      const sim::SimDuration window =
          ev.duration > 0 ? ev.duration : kDefaultLossWindow;
      ls.loss_until[d] = std::max(ls.loss_until[d], eng_.now() + window);
      fire(ls, "loss-burst");
      break;
    }
    case FaultType::kLinkFlap: {
      ls.down = true;
      fire(ls, "link-down");
      eng_.schedule_after(ev.duration, [this, &ls] {
        ls.down = false;
        if (auto* tr = trace::of(eng_))
          tr->instant(ls.trk.get(tr, trace::Layer::kFault,
                                 "fault/" + ls.link->name()),
                      "link-up");
      });
      break;
    }
    case FaultType::kLatencySpike: {
      ls.extra_latency += ev.extra_latency;
      const sim::SimDuration add = ev.extra_latency;
      fire(ls, "latency-spike");
      eng_.schedule_after(ev.duration, [this, &ls, add] {
        ls.extra_latency -= add;
        if (auto* tr = trace::of(eng_))
          tr->instant(ls.trk.get(tr, trace::Layer::kFault,
                                 "fault/" + ls.link->name()),
                      "latency-normal");
      });
      break;
    }
    case FaultType::kBlackhole: {
      const int d = net::index(ev.dir);
      ls.hole[d] = true;
      fire(ls, "blackhole");
      eng_.schedule_after(ev.duration, [this, &ls, d] {
        ls.hole[d] = false;
        if (auto* tr = trace::of(eng_))
          tr->instant(ls.trk.get(tr, trace::Layer::kFault,
                                 "fault/" + ls.link->name()),
                      "blackhole-end");
      });
      break;
    }
    case FaultType::kQpKill:
    case FaultType::kCrash:
      break;  // handled above
  }
}

net::TxFate FaultInjector::on_transmit(net::Link& link, net::Direction d,
                                       double bytes) {
  (void)bytes;
  net::TxFate fate;
  LinkState* state = nullptr;
  for (auto& ls : links_)
    if (ls.link == &link) {
      state = &ls;
      break;
    }
  if (state == nullptr) return fate;  // not an attached link

  const int di = net::index(d);
  if (state->pending_loss[di] > 0 && eng_.now() >= state->loss_until[di])
    state->pending_loss[di] = 0;  // burst window over: leftover losses lapse
  const char* cause = nullptr;
  if (state->down) {
    fate.fail = true;
    cause = "drop:link-down";
  } else if (state->hole[di]) {
    // A blackholed message vanishes; the sender only learns after its
    // transport retries exhaust, so the failure surfaces late.
    fate.fail = true;
    fate.fail_delay = static_cast<sim::SimDuration>(blackhole_fail_rtts_) *
                      link.rtt();
    cause = "drop:blackhole";
  } else if (state->pending_loss[di] > 0) {
    --state->pending_loss[di];
    fate.fail = true;
    cause = "drop:loss";
  }
  fate.extra_latency = state->extra_latency;
  if (fate.fail) {
    ++messages_failed_;
    if (auto* tr = trace::of(eng_)) {
      const auto tk = state->trk.get(tr, trace::Layer::kFault,
                                     "fault/" + link.name());
      tr->instant(tk, cause);
      tr->counter("fault/messages_failed").add(1);
    }
  }
  return fate;
}

}  // namespace e2e::fault
