// FaultInjector: arms a FaultPlan against an engine and a set of links.
//
// The injector implements net::FaultHook — each attached link consults it
// once per message via Link::transmit_fate(). Plan events are scheduled on
// the engine by arm(); windowed faults (flap/spike/hole) set per-link state
// for their duration, loss bursts decrement a counter per corrupted
// message, and qpkill events invoke a caller-provided handler (wired to
// rftp::RftpSession::kill_stream or rdma::ConnectedPair::kill by the test
// or CLI). Every injected fault emits a trace instant on the fault layer
// plus counters, so chaos runs are legible in Perfetto.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "fault/plan.hpp"
#include "net/link.hpp"
#include "sim/engine.hpp"
#include "trace/tracer.hpp"

namespace e2e::fault {

class FaultInjector final : public net::FaultHook {
 public:
  FaultInjector(sim::Engine& eng, FaultPlan plan);
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;
  ~FaultInjector() override;

  /// Registers `link` as plan link index attach-order (first attach is
  /// link=0) and installs this injector as its fault hook.
  void attach(net::Link& link);

  /// Handler for kQpKill events; receives the event's qp index.
  void set_qp_kill_handler(std::function<void(int)> handler) {
    qp_kill_ = std::move(handler);
  }

  /// Handler for kCrash events; receives the event's host index and the
  /// scripted downtime (0 = the host never restarts).
  void set_crash_handler(
      std::function<void(int, sim::SimDuration)> handler) {
    crash_ = std::move(handler);
  }

  /// Schedules every plan event on the engine. Call once, before running.
  /// Events naming a link index with no attached link are ignored (counted
  /// in skipped_events()).
  void arm();

  // net::FaultHook
  net::TxFate on_transmit(net::Link& link, net::Direction d,
                          double bytes) override;

  /// How long a blackholed message takes to surface a failed completion at
  /// the sender (models RC retransmission exhaustion). Default 4 RTTs.
  void set_blackhole_fail_rtts(int rtts) noexcept {
    blackhole_fail_rtts_ = rtts;
  }

  /// Window a loss burst stays live when the event carries no dur=;
  /// losses not consumed by traffic within it expire.
  static constexpr sim::SimDuration kDefaultLossWindow =
      10 * sim::kMillisecond;

  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }
  [[nodiscard]] std::uint64_t faults_injected() const noexcept {
    return faults_injected_;
  }
  [[nodiscard]] std::uint64_t messages_failed() const noexcept {
    return messages_failed_;
  }
  [[nodiscard]] std::uint64_t skipped_events() const noexcept {
    return skipped_events_;
  }

 private:
  struct LinkState {
    net::Link* link = nullptr;
    int pending_loss[2] = {0, 0};  // per-direction remaining burst
    // Bursts model a time-correlated corruption episode, not a vendetta
    // against the next n messages whenever they happen: un-consumed losses
    // expire at this deadline so a burst armed against a quiet direction
    // cannot lurk and starve a later retry sequence one message at a time.
    sim::SimTime loss_until[2] = {0, 0};
    bool down = false;             // inside a flap window
    bool hole[2] = {false, false};  // per-direction blackhole window
    sim::SimDuration extra_latency = 0;  // active spike magnitude
    trace::CachedTrack trk;
  };

  void apply(const FaultEvent& ev);
  void fire(LinkState& ls, const char* name);

  sim::Engine& eng_;
  FaultPlan plan_;
  std::vector<LinkState> links_;
  std::function<void(int)> qp_kill_;
  std::function<void(int, sim::SimDuration)> crash_;
  int blackhole_fail_rtts_ = 4;
  bool armed_ = false;
  std::uint64_t faults_injected_ = 0;
  std::uint64_t messages_failed_ = 0;
  std::uint64_t skipped_events_ = 0;
  trace::CachedTrack plan_trk_;
};

}  // namespace e2e::fault
