#include "fault/plan.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "sim/engine.hpp"
#include "sim/rng.hpp"

namespace e2e::fault {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t'))
    s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t'))
    s.remove_suffix(1);
  return s;
}

[[noreturn]] void bad(std::string_view spec, std::string_view why) {
  throw std::invalid_argument("bad fault plan \"" + std::string(spec) +
                              "\": " + std::string(why));
}

/// Parses `750us`-style durations. A bare number means seconds.
sim::SimDuration parse_time(std::string_view spec, std::string_view tok) {
  std::size_t pos = 0;
  double value = 0.0;
  try {
    value = std::stod(std::string(tok), &pos);
  } catch (const std::exception&) {
    bad(spec, "unparseable time \"" + std::string(tok) + "\"");
  }
  if (value < 0) bad(spec, "negative time \"" + std::string(tok) + "\"");
  const std::string_view suffix = tok.substr(pos);
  double scale = 0.0;
  if (suffix.empty() || suffix == "s") scale = static_cast<double>(sim::kSecond);
  else if (suffix == "ms") scale = static_cast<double>(sim::kMillisecond);
  else if (suffix == "us") scale = static_cast<double>(sim::kMicrosecond);
  else if (suffix == "ns") scale = static_cast<double>(sim::kNanosecond);
  else bad(spec, "unknown time suffix \"" + std::string(suffix) + "\"");
  return static_cast<sim::SimDuration>(value * scale);
}

int parse_int(std::string_view spec, std::string_view tok) {
  try {
    return std::stoi(std::string(tok));
  } catch (const std::exception&) {
    bad(spec, "unparseable integer \"" + std::string(tok) + "\"");
  }
}

net::Direction parse_dir(std::string_view spec, std::string_view tok) {
  if (tok == "ab") return net::Direction::kAtoB;
  if (tok == "ba") return net::Direction::kBtoA;
  bad(spec, "direction must be ab or ba, got \"" + std::string(tok) + "\"");
}

/// Formats a duration in the shortest exact unit (round-trips parse_time).
std::string format_time(sim::SimDuration t) {
  const char* unit = "ns";
  sim::SimDuration div = 1;
  if (t % sim::kSecond == 0) { unit = "s"; div = sim::kSecond; }
  else if (t % sim::kMillisecond == 0) { unit = "ms"; div = sim::kMillisecond; }
  else if (t % sim::kMicrosecond == 0) { unit = "us"; div = sim::kMicrosecond; }
  return std::to_string(t / div) + unit;
}

/// Key/type applicability: a key that exists but is meaningless for this
/// event type is rejected like an unknown key — it is the same operator
/// typo, just one column over.
bool key_applies(FaultType t, std::string_view key) {
  if (key == "link")
    return t != FaultType::kQpKill && t != FaultType::kCrash;
  if (key == "n") return t == FaultType::kLossBurst;
  if (key == "dir")
    return t == FaultType::kLossBurst || t == FaultType::kBlackhole;
  if (key == "dur")
    return t == FaultType::kLossBurst || t == FaultType::kLinkFlap ||
           t == FaultType::kLatencySpike || t == FaultType::kBlackhole;
  if (key == "add") return t == FaultType::kLatencySpike;
  if (key == "qp") return t == FaultType::kQpKill;
  if (key == "host" || key == "down") return t == FaultType::kCrash;
  return false;
}

FaultEvent parse_event(std::string_view spec, std::string_view ev) {
  const auto at_pos = ev.find('@');
  if (at_pos == std::string_view::npos)
    bad(spec, "event \"" + std::string(ev) + "\" missing @time");
  const std::string_view type_tok = ev.substr(0, at_pos);
  std::string_view rest = ev.substr(at_pos + 1);
  std::string_view time_tok = rest;
  std::string_view params;
  if (const auto colon = rest.find(':'); colon != std::string_view::npos) {
    time_tok = rest.substr(0, colon);
    params = rest.substr(colon + 1);
  }

  FaultEvent e;
  if (type_tok == "loss") e.type = FaultType::kLossBurst;
  else if (type_tok == "flap") e.type = FaultType::kLinkFlap;
  else if (type_tok == "spike") e.type = FaultType::kLatencySpike;
  else if (type_tok == "hole") e.type = FaultType::kBlackhole;
  else if (type_tok == "qpkill") e.type = FaultType::kQpKill;
  else if (type_tok == "crash") e.type = FaultType::kCrash;
  else bad(spec, "unknown fault type \"" + std::string(type_tok) + "\"");
  e.at = parse_time(spec, time_tok);

  std::vector<std::string_view> seen_keys;
  while (!params.empty()) {
    std::string_view kv = params;
    if (const auto comma = params.find(','); comma != std::string_view::npos) {
      kv = params.substr(0, comma);
      params = params.substr(comma + 1);
    } else {
      params = {};
    }
    kv = trim(kv);
    if (kv.empty()) continue;
    const auto eq = kv.find('=');
    if (eq == std::string_view::npos)
      bad(spec, "parameter \"" + std::string(kv) + "\" missing =");
    const std::string_view key = kv.substr(0, eq);
    const std::string_view val = kv.substr(eq + 1);
    if (std::find(seen_keys.begin(), seen_keys.end(), key) != seen_keys.end())
      bad(spec, "duplicate parameter \"" + std::string(key) + "\"");
    seen_keys.push_back(key);
    const bool known = key == "n" || key == "link" || key == "dir" ||
                       key == "dur" || key == "add" || key == "qp" ||
                       key == "host" || key == "down";
    if (!known) bad(spec, "unknown parameter \"" + std::string(key) + "\"");
    if (!key_applies(e.type, key))
      bad(spec, "parameter \"" + std::string(key) + "\" does not apply to " +
                    std::string(fault::to_string(e.type)));
    if (key == "n") e.count = parse_int(spec, val);
    else if (key == "link") e.link = parse_int(spec, val);
    else if (key == "dir") e.dir = parse_dir(spec, val);
    else if (key == "dur") e.duration = parse_time(spec, val);
    else if (key == "add") e.extra_latency = parse_time(spec, val);
    else if (key == "qp") e.qp = parse_int(spec, val);
    else if (key == "host") e.host = parse_int(spec, val);
    else if (key == "down") e.down = parse_time(spec, val);
    else bad(spec, "unknown parameter \"" + std::string(key) + "\"");
  }
  if (e.count < 1) bad(spec, "n must be >= 1");
  if (e.link < 0) bad(spec, "link must be >= 0");
  if (e.qp < 0) bad(spec, "qp must be >= 0");
  if (e.host < 0) bad(spec, "host must be >= 0");
  if ((e.type == FaultType::kLinkFlap || e.type == FaultType::kLatencySpike ||
       e.type == FaultType::kBlackhole) &&
      e.duration == 0)
    bad(spec, "windowed fault needs dur=");
  if (e.type == FaultType::kLatencySpike && e.extra_latency == 0)
    bad(spec, "spike needs add=");
  return e;
}

void sort_events(std::vector<FaultEvent>& evs) {
  std::stable_sort(evs.begin(), evs.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at < b.at;
                   });
}

}  // namespace

FaultPlan FaultPlan::parse(std::string_view spec) {
  FaultPlan plan;
  std::string_view rest = spec;
  while (!rest.empty()) {
    std::string_view ev = rest;
    if (const auto semi = rest.find(';'); semi != std::string_view::npos) {
      ev = rest.substr(0, semi);
      rest = rest.substr(semi + 1);
    } else {
      rest = {};
    }
    ev = trim(ev);
    if (ev.empty()) continue;
    plan.events.push_back(parse_event(spec, ev));
  }
  sort_events(plan.events);
  return plan;
}

std::string FaultPlan::to_string() const {
  std::string out;
  for (const auto& e : events) {
    if (!out.empty()) out += ';';
    out += fault::to_string(e.type);
    out += '@';
    out += format_time(e.at);
    switch (e.type) {
      case FaultType::kLossBurst:
        out += ":n=" + std::to_string(e.count);
        if (e.duration > 0) out += ",dur=" + format_time(e.duration);
        out += ",dir=" + std::string(net::to_string(e.dir));
        out += ",link=" + std::to_string(e.link);
        break;
      case FaultType::kLinkFlap:
        out += ":dur=" + format_time(e.duration);
        out += ",link=" + std::to_string(e.link);
        break;
      case FaultType::kLatencySpike:
        out += ":dur=" + format_time(e.duration);
        out += ",add=" + format_time(e.extra_latency);
        out += ",link=" + std::to_string(e.link);
        break;
      case FaultType::kBlackhole:
        out += ":dur=" + format_time(e.duration);
        out += ",dir=" + std::string(net::to_string(e.dir));
        out += ",link=" + std::to_string(e.link);
        break;
      case FaultType::kQpKill:
        out += ":qp=" + std::to_string(e.qp);
        break;
      case FaultType::kCrash:
        out += ":host=" + std::to_string(e.host);
        if (e.down > 0) out += ",down=" + format_time(e.down);
        break;
    }
  }
  return out;
}

FaultPlan FaultPlan::random(std::uint64_t seed, const RandomParams& p) {
  FaultPlan plan;
  sim::Rng rng(seed);
  // Events land in the middle 90% of the horizon so nothing fires before
  // connections establish or after the transfer would have drained.
  const auto when = [&] {
    return static_cast<sim::SimTime>(
        rng.uniform_u64(p.horizon / 20, (p.horizon * 19) / 20));
  };
  const auto dur = [&](sim::SimDuration max) {
    return static_cast<sim::SimDuration>(rng.uniform_u64(max / 4, max));
  };
  const auto link = [&] {
    return static_cast<int>(rng.uniform_u64(0, p.links > 0 ? p.links - 1 : 0));
  };
  const auto dir = [&] {
    return rng.chance(0.5) ? net::Direction::kAtoB : net::Direction::kBtoA;
  };
  for (int i = 0; i < p.loss_bursts; ++i) {
    FaultEvent e;
    e.type = FaultType::kLossBurst;
    e.at = when();
    e.count = static_cast<int>(
        rng.uniform_u64(1, static_cast<std::uint64_t>(p.max_burst)));
    e.dir = dir();
    e.link = link();
    plan.events.push_back(e);
  }
  for (int i = 0; i < p.flaps; ++i) {
    FaultEvent e;
    e.type = FaultType::kLinkFlap;
    e.at = when();
    e.duration = dur(p.max_flap);
    e.link = link();
    plan.events.push_back(e);
  }
  for (int i = 0; i < p.spikes; ++i) {
    FaultEvent e;
    e.type = FaultType::kLatencySpike;
    e.at = when();
    e.duration = dur(p.max_spike);
    e.extra_latency = dur(p.max_extra_latency);
    e.link = link();
    plan.events.push_back(e);
  }
  for (int i = 0; i < p.holes; ++i) {
    FaultEvent e;
    e.type = FaultType::kBlackhole;
    e.at = when();
    e.duration = dur(p.max_hole);
    e.dir = dir();
    e.link = link();
    plan.events.push_back(e);
  }
  if (p.qps > 0) {
    for (int i = 0; i < p.qp_kills; ++i) {
      FaultEvent e;
      e.type = FaultType::kQpKill;
      e.at = when();
      e.qp = static_cast<int>(
          rng.uniform_u64(0, static_cast<std::uint64_t>(p.qps) - 1));
      plan.events.push_back(e);
    }
  }
  if (p.hosts > 0) {
    for (int i = 0; i < p.crashes; ++i) {
      FaultEvent e;
      e.type = FaultType::kCrash;
      e.at = when();
      e.host = static_cast<int>(
          rng.uniform_u64(0, static_cast<std::uint64_t>(p.hosts) - 1));
      e.down = dur(p.max_down);
      plan.events.push_back(e);
    }
  }
  sort_events(plan.events);
  return plan;
}

sim::SimTime FaultPlan::quiet_after(sim::SimDuration slack) const noexcept {
  sim::SimTime latest = 0;
  for (const FaultEvent& e : events) {
    if (e.type == FaultType::kCrash && e.down == 0)
      return sim::kTimeInfinity;  // terminal crash: the run never settles
    sim::SimTime end = e.at;
    switch (e.type) {
      case FaultType::kLinkFlap:
      case FaultType::kLatencySpike:
      case FaultType::kBlackhole:
      case FaultType::kLossBurst:
        // A zero duration means the injector's default loss window.
        end = sim::Engine::saturating_add(
            end, e.duration > 0 ? e.duration : 10 * sim::kMillisecond);
        break;
      case FaultType::kCrash:
        end = sim::Engine::saturating_add(end, e.down);
        break;
      case FaultType::kQpKill:
        break;  // instantaneous; failover transients are covered by slack
    }
    latest = std::max(latest, end);
  }
  return latest == 0 ? latest : sim::Engine::saturating_add(latest, slack);
}

}  // namespace e2e::fault
