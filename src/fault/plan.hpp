// Fault plans: typed, time-stamped schedules of injected faults.
//
// A FaultPlan is data — a sorted list of fault events — produced either
// from an explicit script (parse(), the CLI's --fault-plan) or from a
// seeded PRNG (random(), the CLI's --fault-seed). The FaultInjector arms a
// plan against an engine and one or more links; the same plan against the
// same scenario reproduces byte-identical traces.
//
// Script syntax: semicolon-separated events, each `type@time[:k=v,...]`.
//   loss@500ms:n=5,dir=ab,link=0     burst of 5 corrupted messages
//                                    (optional dur= caps how long the
//                                    burst stays live; default 10 ms)
//   flap@1s:dur=20ms,link=0          link down for 20 ms (both directions)
//   spike@2s:dur=100ms,add=5ms       +5 ms one-way latency for 100 ms
//   hole@1200ms:dur=10ms,dir=ba      unidirectional blackhole for 10 ms
//   qpkill@1500ms:qp=0               kill QP/stream index 0
//   crash@2s:host=1,down=50ms        crash-stop host 1 (receiver side),
//                                    restart after 50 ms; down=0 (or
//                                    omitted) means it never comes back
// Times take ns/us/ms/s suffixes (a bare number means seconds).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "net/link.hpp"
#include "sim/time.hpp"

namespace e2e::fault {

enum class FaultType : std::uint8_t {
  kLossBurst,     // next n messages in one direction fail in flight,
                  // within a bounded window (duration, default 10 ms)
  kLinkFlap,      // link down (both directions) for a duration
  kLatencySpike,  // extra one-way latency for a duration
  kBlackhole,     // one direction silently eats traffic for a duration
  kQpKill,        // kill one QP / transfer stream by index
  kCrash,         // crash-stop one host; restart after `down` (0 = never)
};

[[nodiscard]] constexpr const char* to_string(FaultType t) noexcept {
  switch (t) {
    case FaultType::kLossBurst: return "loss";
    case FaultType::kLinkFlap: return "flap";
    case FaultType::kLatencySpike: return "spike";
    case FaultType::kBlackhole: return "hole";
    case FaultType::kQpKill: return "qpkill";
    case FaultType::kCrash: return "crash";
  }
  return "?";
}

struct FaultEvent {
  FaultType type = FaultType::kLossBurst;
  sim::SimTime at = 0;                  // injection time
  int link = 0;                         // target link index (attach order)
  net::Direction dir = net::Direction::kAtoB;  // loss/hole direction
  int count = 1;                        // loss burst length
  sim::SimDuration duration = 0;        // flap/spike/hole window
  sim::SimDuration extra_latency = 0;   // spike magnitude (one-way)
  int qp = 0;                           // qpkill target index
  int host = 0;                         // crash target host index
  sim::SimDuration down = 0;            // crash downtime (0 = no restart)
};

struct FaultPlan {
  std::vector<FaultEvent> events;  // sorted by `at`

  [[nodiscard]] bool empty() const noexcept { return events.empty(); }

  /// Canonical script form (round-trips through parse()).
  [[nodiscard]] std::string to_string() const;

  /// First instant by which every scheduled fault *and* its direct
  /// aftermath (flap/spike/hole windows, crash downtime) has passed, plus
  /// `slack` for in-flight retransmissions and recovery transients to
  /// settle. The fast-forward detector refuses to engage before this time,
  /// so every scripted fault fires on an event-exact timeline identical to
  /// the non-fast-forwarded run. A crash with down == 0 never restarts —
  /// the run ends in failure — so the plan returns kTimeInfinity and the
  /// detector never engages.
  [[nodiscard]] sim::SimTime quiet_after(sim::SimDuration slack) const noexcept;

  /// Parses the script syntax above. Throws std::invalid_argument with a
  /// position-carrying message on malformed input.
  static FaultPlan parse(std::string_view spec);

  /// Knobs for random(). Defaults give a plan the chaos tests can survive:
  /// a handful of loss bursts, one flap, one spike, one blackhole and one
  /// QP kill spread over the horizon.
  struct RandomParams {
    sim::SimDuration horizon = 2 * sim::kSecond;  // events land in (0,horizon)
    int links = 1;      // events spread across this many link indices
    int qps = 0;        // 0 disables qpkill events
    int loss_bursts = 4;
    int max_burst = 6;
    int flaps = 1;
    sim::SimDuration max_flap = 20 * sim::kMillisecond;
    int spikes = 1;
    sim::SimDuration max_spike = 100 * sim::kMillisecond;
    sim::SimDuration max_extra_latency = 5 * sim::kMillisecond;
    int holes = 1;
    sim::SimDuration max_hole = 10 * sim::kMillisecond;
    int qp_kills = 1;
    int hosts = 0;      // 0 disables crash events
    int crashes = 0;
    // Random crash downtimes draw from [max_down/4, max_down]; keep the
    // floor well above link latency so nothing in flight at crash time is
    // still on the wire when the host comes back.
    sim::SimDuration max_down = 50 * sim::kMillisecond;
  };

  /// Deterministic seeded plan: same (seed, params) => same plan.
  static FaultPlan random(std::uint64_t seed, const RandomParams& params);
};

}  // namespace e2e::fault
