#include "fault/watchdog.hpp"

#include "trace/tracer.hpp"

namespace e2e::fault {

void Watchdog::arm(const Deadline& dl, std::function<void()> on_dead) {
  dl_ = dl;
  on_dead_ = std::move(on_dead);
  armed_ = true;
  dead_ = false;
  suspicious_ = false;
  quiet_count_ = 0;
  armed_at_ = eng_.now();
  last_kick_ = eng_.now();
  last_seen_kick_ = eng_.now();
  const std::uint64_t gen = ++generation_;
  eng_.schedule_after(dl_.quiet, [this, gen] { check(gen); });
}

void Watchdog::check(std::uint64_t gen) {
  if (!armed_ || gen != generation_) return;  // stale timer after disarm
  const bool progressed = last_kick_ > last_seen_kick_;
  last_seen_kick_ = last_kick_;
  if (progressed) {
    if (suspicious_) {
      // The peer was slow, not dead: the suspicion was false. Count it so
      // operators can tell an over-tight `quiet` from real instability.
      ++false_suspicions_;
      if (on_false_suspect_) on_false_suspect_();
      if (auto* tr = trace::of(eng_))
        tr->instant(tr->track(trace::Layer::kFault, "fault/watchdog"),
                    "false-suspect");
    }
    suspicious_ = false;
    quiet_count_ = 0;
  } else {
    suspicious_ = true;
    ++suspicions_;
    ++quiet_count_;
    if (auto* tr = trace::of(eng_))
      tr->instant(tr->track(trace::Layer::kFault, "fault/watchdog"),
                  "quiet-period");
  }
  const bool hard_blown =
      dl_.hard > 0 && eng_.now() - last_kick_ >= dl_.hard;
  if (quiet_count_ >= dl_.max_quiet || hard_blown) {
    dead_ = true;
    armed_ = false;
    ++generation_;
    if (auto* tr = trace::of(eng_))
      tr->instant(tr->track(trace::Layer::kFault, "fault/watchdog"),
                  "declared-dead");
    if (on_dead_) on_dead_();
    return;
  }
  eng_.schedule_after(dl_.quiet, [this, gen] { check(gen); });
}

}  // namespace e2e::fault
