// Payload-identity checksums for end-to-end integrity verification.
//
// The simulation moves no real bytes, so integrity is modelled over payload
// *identity*: every logical unit of data (a 512-byte SCSI block, an RFTP
// block at a file offset) has a deterministic FNV-1a tag derived from its
// coordinates. Tags are XOR-composable — the tag of a range is the XOR of
// its units' tags — so chunked, reordered and multi-path transfers all
// compose to the same value, while a missing, duplicated or misdirected
// chunk perturbs it. Data paths carry tags alongside transfers
// (rdma::SendWr::content_tag, rftp::DataHeader::checksum) and sinks verify
// them against the analytically-known expected value.
#pragma once

#include <cstdint>

namespace e2e::fault {

inline constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

/// FNV-1a over the 8 little-endian bytes of `x`.
[[nodiscard]] constexpr std::uint64_t fnv64(std::uint64_t x) noexcept {
  std::uint64_t h = kFnvOffset;
  for (int i = 0; i < 8; ++i) {
    h ^= (x >> (8 * i)) & 0xFF;
    h *= kFnvPrime;
  }
  return h;
}

/// FNV-1a over the concatenation of two words (order-sensitive mix).
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t a,
                                            std::uint64_t b) noexcept {
  std::uint64_t h = kFnvOffset;
  for (int i = 0; i < 8; ++i) {
    h ^= (a >> (8 * i)) & 0xFF;
    h *= kFnvPrime;
  }
  for (int i = 0; i < 8; ++i) {
    h ^= (b >> (8 * i)) & 0xFF;
    h *= kFnvPrime;
  }
  return h;
}

/// Tag of one 512-byte logical block at `lba`. Domain-separated from raw
/// fnv64 so LBA tags never collide with offset-derived tags.
[[nodiscard]] constexpr std::uint64_t block_tag(std::uint64_t lba) noexcept {
  return mix64(0x5C51B10CULL, lba);  // "scsi block"
}

/// XOR-composed tag of `blocks` consecutive logical blocks starting at
/// `lba`. block_range_tag(l, m) ^ block_range_tag(l + m, n) ==
/// block_range_tag(l, m + n), so any chunking of an I/O composes.
[[nodiscard]] constexpr std::uint64_t block_range_tag(
    std::uint64_t lba, std::uint32_t blocks) noexcept {
  std::uint64_t t = 0;
  for (std::uint32_t i = 0; i < blocks; ++i) t ^= block_tag(lba + i);
  return t;
}

/// Tag of one RFTP block: `bytes` of payload at byte `offset` of the
/// transfer, carried in rftp::DataHeader::checksum and XOR-accumulated into
/// the sink digest.
[[nodiscard]] constexpr std::uint64_t rftp_block_tag(
    std::uint64_t offset, std::uint64_t bytes) noexcept {
  return mix64(0x2F7BULL ^ fnv64(offset), bytes);  // "rftp"
}

}  // namespace e2e::fault
