// Payload-identity checksums for end-to-end integrity verification.
//
// The simulation moves no real bytes, so integrity is modelled over payload
// *identity*: every logical unit of data (a 512-byte SCSI block, an RFTP
// block at a file offset) has a deterministic FNV-1a tag derived from its
// coordinates. Tags are XOR-composable — the tag of a range is the XOR of
// its units' tags — so chunked, reordered and multi-path transfers all
// compose to the same value, while a missing, duplicated or misdirected
// chunk perturbs it. Data paths carry tags alongside transfers
// (rdma::SendWr::content_tag, rftp::DataHeader::checksum) and sinks verify
// them against the analytically-known expected value.
//
// Tag math is on the per-command hot path (a 1 MiB WRITE tags 2048 blocks,
// at several protocol layers), so the FNV prefixes over domain-separation
// constants are folded into precomputed seeds — same values, half the
// rounds — and the layered recomputation of one command's range tag is
// served from a small memo table (block_range_tag_cached).
#pragma once

#include <cstdint>

namespace e2e::fault {

inline constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

/// Continues an FNV-1a hash over the 8 little-endian bytes of `x`.
[[nodiscard]] constexpr std::uint64_t fnv64_seeded(std::uint64_t h,
                                                   std::uint64_t x) noexcept {
  for (int i = 0; i < 8; ++i) {
    h ^= (x >> (8 * i)) & 0xFF;
    h *= kFnvPrime;
  }
  return h;
}

/// FNV-1a over the 8 little-endian bytes of `x`.
[[nodiscard]] constexpr std::uint64_t fnv64(std::uint64_t x) noexcept {
  return fnv64_seeded(kFnvOffset, x);
}

/// FNV-1a over the concatenation of two words (order-sensitive mix).
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t a,
                                            std::uint64_t b) noexcept {
  return fnv64_seeded(fnv64_seeded(kFnvOffset, a), b);
}

namespace detail {
/// mix64's first word is the fixed domain constant for SCSI block tags;
/// its 8 rounds are folded into this seed at compile time.
inline constexpr std::uint64_t kBlockTagSeed =
    fnv64_seeded(kFnvOffset, 0x5C51B10CULL);  // "scsi block"
}  // namespace detail

/// Tag of one 512-byte logical block at `lba`. Domain-separated from raw
/// fnv64 so LBA tags never collide with offset-derived tags.
[[nodiscard]] constexpr std::uint64_t block_tag(std::uint64_t lba) noexcept {
  return fnv64_seeded(detail::kBlockTagSeed, lba);
}

/// XOR-composed tag of `blocks` consecutive logical blocks starting at
/// `lba`. block_range_tag(l, m) ^ block_range_tag(l + m, n) ==
/// block_range_tag(l, m + n), so any chunking of an I/O composes.
[[nodiscard]] constexpr std::uint64_t block_range_tag(
    std::uint64_t lba, std::uint32_t blocks) noexcept {
  std::uint64_t t = 0;
  for (std::uint32_t i = 0; i < blocks; ++i) t ^= block_tag(lba + i);
  return t;
}

/// block_range_tag through a thread-local memo table. One command's range
/// tag is needed at every layer it crosses (initiator content tag, target
/// staging tag, LUN write ledger); the first layer computes it, the rest
/// hit the memo. Values are identical to block_range_tag — the cache only
/// short-circuits recomputation, so determinism is unaffected.
[[nodiscard]] inline std::uint64_t block_range_tag_cached(
    std::uint64_t lba, std::uint32_t blocks) noexcept {
  struct Entry {
    std::uint64_t lba = ~0ULL;
    std::uint32_t blocks = 0;
    std::uint64_t tag = 0;
  };
  // Direct-mapped, sized for the handful of commands in flight at once.
  static thread_local Entry cache[64];
  Entry& e = cache[(lba ^ blocks) & 63];
  if (e.lba != lba || e.blocks != blocks) {
    e.lba = lba;
    e.blocks = blocks;
    e.tag = block_range_tag(lba, blocks);
  }
  return e.tag;
}

/// Tag of one RFTP block: `bytes` of payload at byte `offset` of the
/// transfer, carried in rftp::DataHeader::checksum and XOR-accumulated into
/// the sink digest.
[[nodiscard]] constexpr std::uint64_t rftp_block_tag(
    std::uint64_t offset, std::uint64_t bytes) noexcept {
  return mix64(0x2F7BULL ^ fnv64(offset), bytes);  // "rftp"
}

}  // namespace e2e::fault
