// Umbrella header for e2e::stats.
#pragma once

#include "stats/histogram.hpp"   // IWYU pragma: export
#include "stats/registry.hpp"    // IWYU pragma: export
