// Fixed-footprint log-linear latency histogram (HdrHistogram-shaped).
//
// Layout: values below 16 land in unit-width buckets (slots [0, 16)); each
// later power-of-two range [2^m, 2^(m+1)) for m in [4, 42] is split into 16
// linear sub-buckets of width 2^(m-4), giving <= 1/16 (~6.25%) relative
// bucket error everywhere. Values at or above 2^43 ns (~2.4 simulated
// hours) clamp into the top bucket; the true maximum is still tracked
// exactly in max(). Total: 640 uint64 slots, ~5 KB per instance,
// allocation-free for its whole life.
//
// record() is a handful of ALU ops (bit_width, shift, add) plus one array
// increment — cheap enough to stay enabled on every hot path.
//
// Determinism + mergeability: bucket boundaries are exact integer
// functions of the value, and merge() is an element-wise sum (counts and
// the wrapping uint64 value-sum are associative and commutative), so
// per-shard instances combine into the same result regardless of merge
// order — the pre-work the ROADMAP's PDES-sharding item needs.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>

namespace e2e::stats {

class Histogram {
 public:
  /// 16 linear sub-buckets per power-of-two range.
  static constexpr int kSubBucketBits = 4;
  static constexpr std::uint64_t kSubBuckets = 1ull << kSubBucketBits;
  /// Largest exactly-bucketed value; everything above clamps here.
  static constexpr std::uint64_t kMaxTrackable = (1ull << 43) - 1;
  /// Unit-width slots [0,16) + 39 ranges (m = 4..42) of 16 slots each.
  static constexpr std::size_t kSlots = 640;

  /// Slot index for value `v` (clamped to kMaxTrackable). Exact and
  /// deterministic: no floating point anywhere.
  [[nodiscard]] static constexpr std::size_t index_of(std::uint64_t v) noexcept {
    if (v < kSubBuckets) return static_cast<std::size_t>(v);
    v = std::min(v, kMaxTrackable);
    const int m = 63 - std::countl_zero(v);  // v in [2^m, 2^(m+1))
    const int shift = m - kSubBucketBits;
    return (static_cast<std::size_t>(m - kSubBucketBits + 1)
            << kSubBucketBits) +
           static_cast<std::size_t>((v >> shift) - kSubBuckets);
  }

  /// Smallest value mapping to slot `i`. bucket_lower(index_of(v)) <= v
  /// for all trackable v, with equality exactly at bucket boundaries
  /// (powers of two land on their own boundary: slot 2^k's lower bound is
  /// 2^k for all k <= 42).
  [[nodiscard]] static constexpr std::uint64_t bucket_lower(
      std::size_t i) noexcept {
    if (i < kSubBuckets) return i;
    const std::size_t range = i >> kSubBucketBits;  // 1-based range number
    const std::uint64_t sub = i & (kSubBuckets - 1);
    return (kSubBuckets + sub) << (range - 1);
  }

  /// One past the largest value mapping to slot `i`.
  [[nodiscard]] static constexpr std::uint64_t bucket_upper(
      std::size_t i) noexcept {
    return i + 1 < kSlots ? bucket_lower(i + 1) : kMaxTrackable + 1;
  }

  /// Records one value. Counts are wrapping uint64 per bucket — wide
  /// enough that a hot bucket never wraps in practice (the Mops/s RPC tier
  /// overflowed the former uint32 counters in long runs, corrupting
  /// quantiles) — and the value sum wraps mod 2^64; both choices keep
  /// merge() associative.
  void record(std::uint64_t v) noexcept {
    ++counts_[index_of(v)];
    ++count_;
    sum_ += v;  // wrapping
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }

  /// Bulk add: records `n` copies of `v` in one call. Bit-identical to n
  /// single record(v) calls — the bucket count, total count and value sum
  /// are all wrapping adds, so multiplying the per-record delta by n lands
  /// on exactly the same congruence class, and min/max are idempotent.
  /// This is the closed-form histogram fill the fast-forward spans use.
  void record(std::uint64_t v, std::uint64_t n) noexcept {
    if (n == 0) return;
    counts_[index_of(v)] += n;  // wrapping
    count_ += n;
    sum_ += v * n;  // wrapping
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }

  /// Element-wise difference `to - from` of two snapshots of the *same*
  /// histogram taken at two points in time, for replaying the interval k
  /// times via add_scaled(). Bucket counts and the value sum subtract
  /// mod 2^64 (exact under the same congruence argument as bulk
  /// record). Returns false — no usable delta — when min or max moved in
  /// the interval: extrema are not replayable as deltas, and a window in
  /// which they moved is not steady state.
  [[nodiscard]] static bool delta(const Histogram& from, const Histogram& to,
                                  Histogram& out) noexcept {
    if (from.min_ != to.min_ || from.max_ != to.max_) return false;
    for (std::size_t i = 0; i < kSlots; ++i)
      out.counts_[i] = to.counts_[i] - from.counts_[i];
    out.count_ = to.count_ - from.count_;
    out.sum_ = to.sum_ - from.sum_;
    out.min_ = to.min_;
    out.max_ = to.max_;
    return true;
  }

  /// Adds `k` copies of a delta()-produced interval: counts and sum scale
  /// by k (wrapping), min/max merge idempotently. add_scaled(d, 1) is
  /// exactly merge(d).
  void add_scaled(const Histogram& d, std::uint64_t k) noexcept {
    if (k == 0) return;
    for (std::size_t i = 0; i < kSlots; ++i)
      counts_[i] += d.counts_[i] * k;
    count_ += d.count_ * k;
    sum_ += d.sum_ * k;
    if (d.count_ != 0) {
      min_ = std::min(min_, d.min_);
      max_ = std::max(max_, d.max_);
    }
  }

  /// Bitwise equality of two snapshots (buckets, count, sum, extrema).
  [[nodiscard]] bool identical(const Histogram& o) const noexcept {
    return counts_ == o.counts_ && count_ == o.count_ && sum_ == o.sum_ &&
           min_ == o.min_ && max_ == o.max_;
  }

  /// Element-wise combine. Associative and commutative: every field is a
  /// wrapping sum, a min, or a max.
  void merge(const Histogram& o) noexcept {
    for (std::size_t i = 0; i < kSlots; ++i) counts_[i] += o.counts_[i];
    count_ += o.count_;
    sum_ += o.sum_;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  /// 0 when empty (min of an empty histogram is reported as 0, not 2^64-1).
  [[nodiscard]] std::uint64_t min() const noexcept {
    return count_ ? min_ : 0;
  }
  [[nodiscard]] std::uint64_t max() const noexcept { return max_; }
  /// Mean of recorded values (sum wraps past 2^64 total — irrelevant for
  /// nanosecond latencies at simulated scales). 0 when empty.
  [[nodiscard]] double mean() const noexcept {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_)
                  : 0.0;
  }
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const noexcept {
    return counts_[i];
  }

  /// Value at quantile `q` in [0,1]: the recorded rank ceil(q*count) read
  /// off the bucket cumulative counts. Returns the bucket's inclusive
  /// upper bound clamped into [min(), max()], so exact single-valued
  /// distributions report exactly that value. 0 when empty. Integer rank
  /// arithmetic keeps the result deterministic across platforms.
  [[nodiscard]] std::uint64_t value_at_quantile(double q) const noexcept {
    if (count_ == 0) return 0;
    if (q <= 0.0) return min();
    // Half-up rounding (the HdrHistogram convention) sidesteps the
    // representation error of q*count sitting a ULP either side of an
    // integer; IEEE doubles make the same choice on every platform.
    auto rank = static_cast<std::uint64_t>(
        static_cast<double>(count_) * std::min(q, 1.0) + 0.5);
    rank = std::clamp<std::uint64_t>(rank, 1, count_);
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < kSlots; ++i) {
      cum += counts_[i];
      if (cum >= rank)
        return std::clamp(bucket_upper(i) - 1, min_, max_);
    }
    return max_;  // unreachable when counters are consistent
  }

  [[nodiscard]] std::uint64_t p50() const noexcept {
    return value_at_quantile(0.50);
  }
  [[nodiscard]] std::uint64_t p90() const noexcept {
    return value_at_quantile(0.90);
  }
  [[nodiscard]] std::uint64_t p99() const noexcept {
    return value_at_quantile(0.99);
  }
  [[nodiscard]] std::uint64_t p999() const noexcept {
    return value_at_quantile(0.999);
  }

 private:
  std::array<std::uint64_t, kSlots> counts_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;  // wrapping
  std::uint64_t min_ = ~0ull;
  std::uint64_t max_ = 0;
};

}  // namespace e2e::stats
