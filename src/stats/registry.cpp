#include "stats/registry.hpp"

#include <bit>
#include <cstdio>
#include <iostream>
#include <ostream>

namespace e2e::stats {

Registry::Registry(sim::Engine& eng, Config cfg)
    : eng_(eng), max_entities_(cfg.max_entities < 2 ? 2 : cfg.max_entities) {
  // Reserved overflow entity: everything past the cardinality cap
  // aggregates here instead of growing the tables.
  entities_.push_back(Entity{Layer::kSim, "<overflow>"});
  flight_ring_.resize(std::bit_ceil(
      cfg.flight_capacity < 16 ? std::size_t{16} : cfg.flight_capacity));
  flight_mask_ = flight_ring_.size() - 1;
}

Registry::~Registry() { uninstall(); }

std::uint32_t Registry::intern(std::string_view s) {
  if (auto it = name_ids_.find(s); it != name_ids_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(names_.size());
  names_.emplace_back(s);
  name_ids_.emplace(names_.back(), id);
  return id;
}

EntityId Registry::entity(Layer layer, std::string_view name) {
  std::string key;
  key.reserve(to_string(layer).size() + 1 + name.size());
  key.append(to_string(layer));
  key.push_back('/');
  key.append(name);
  if (auto it = entity_ids_.find(key); it != entity_ids_.end())
    return it->second;
  if (entities_.size() >= max_entities_) {
    ++dropped_entities_;
    return kOverflowEntity;
  }
  const auto id = static_cast<EntityId>(entities_.size());
  entities_.push_back(Entity{layer, std::string(name)});
  entity_ids_.emplace(std::move(key), id);
  return id;
}

EntityId Registry::mint_entity(Layer layer, std::string_view base) {
  if (entities_.size() >= max_entities_) {
    ++dropped_entities_;
    return kOverflowEntity;
  }
  std::string key;
  key.reserve(to_string(layer).size() + 1 + base.size());
  key.append(to_string(layer));
  key.push_back('/');
  key.append(base);
  const int n = mint_counts_[key]++;
  std::string name(base);
  name.push_back('#');
  name.append(std::to_string(n));
  const auto id = static_cast<EntityId>(entities_.size());
  entities_.push_back(Entity{layer, std::move(name)});
  return id;
}

Counter& Registry::counter(EntityId entity, std::string_view name) {
  const std::uint32_t nid = intern(name);
  const std::uint64_t key = metric_key(entity, nid);
  if (auto it = counter_ids_.find(key); it != counter_ids_.end())
    return *it->second;
  counters_.push_back(Counter(entity, nid));
  Counter* c = &counters_.back();
  counter_ids_.emplace(key, c);
  return *c;
}

Gauge& Registry::gauge(EntityId entity, std::string_view name) {
  const std::uint32_t nid = intern(name);
  const std::uint64_t key = metric_key(entity, nid);
  if (auto it = gauge_ids_.find(key); it != gauge_ids_.end())
    return *it->second;
  gauges_.push_back(Gauge(entity, nid));
  Gauge* g = &gauges_.back();
  gauge_ids_.emplace(key, g);
  return *g;
}

Histogram& Registry::histogram(EntityId entity, std::string_view name) {
  const std::uint32_t nid = intern(name);
  const std::uint64_t key = metric_key(entity, nid);
  if (auto it = histogram_ids_.find(key); it != histogram_ids_.end())
    return *it->second;
  histograms_.emplace_back();
  Histogram* h = &histograms_.back();
  histogram_ids_.emplace(key, h);
  histogram_meta_.push_back({entity, nid});
  return *h;
}

std::uint64_t Registry::counter_value(EntityId entity,
                                      std::string_view name) const {
  const auto nit = name_ids_.find(name);
  if (nit == name_ids_.end()) return 0;
  const auto it = counter_ids_.find(metric_key(entity, nit->second));
  return it == counter_ids_.end() ? 0 : it->second->value();
}

const Histogram* Registry::find_histogram(EntityId entity,
                                          std::string_view name) const {
  const auto nit = name_ids_.find(name);
  if (nit == name_ids_.end()) return nullptr;
  const auto it = histogram_ids_.find(metric_key(entity, nit->second));
  return it == histogram_ids_.end() ? nullptr : it->second;
}

Histogram Registry::merged_histogram(std::string_view name) const {
  Histogram out;
  const auto nit = name_ids_.find(name);
  if (nit == name_ids_.end()) return out;
  for (std::size_t i = 0; i < histogram_meta_.size(); ++i)
    if (histogram_meta_[i].name == nit->second) out.merge(histograms_[i]);
  return out;
}

CodeId Registry::code(std::string_view name) {
  if (auto it = code_ids_.find(name); it != code_ids_.end()) return it->second;
  const auto id = static_cast<CodeId>(codes_.size());
  codes_.emplace_back(name);
  code_ids_.emplace(codes_.back(), id);
  return id;
}

void Registry::ff_snapshot(FfSnapshot& out) const {
  out.counters.clear();
  out.gauges.clear();
  out.hists.clear();
  out.counters.reserve(counters_.size());
  out.gauges.reserve(gauges_.size());
  out.hists.reserve(histograms_.size());
  for (const Counter& c : counters_) out.counters.push_back(c.value_);
  for (const Gauge& g : gauges_)
    out.gauges.push_back(FfGaugeState{g.last_, g.min_, g.max_, g.samples_});
  for (const Histogram& h : histograms_) out.hists.push_back(h);
}

namespace {
// Bitwise double compare: a gauge that re-recorded the same value must
// compare equal, and NaN payloads must not defeat the steady-state test.
bool same_bits(double a, double b) noexcept {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}
}  // namespace

bool Registry::ff_delta(const FfSnapshot& from, const FfSnapshot& to,
                        FfSnapshot& out) {
  if (from.counters.size() != to.counters.size() ||
      from.gauges.size() != to.gauges.size() ||
      from.hists.size() != to.hists.size())
    return false;  // a metric was minted inside the window
  out.counters.clear();
  out.gauges.clear();
  out.hists.clear();
  out.counters.reserve(to.counters.size());
  out.gauges.reserve(to.gauges.size());
  out.hists.reserve(to.hists.size());
  for (std::size_t i = 0; i < to.counters.size(); ++i)
    out.counters.push_back(to.counters[i] - from.counters[i]);
  for (std::size_t i = 0; i < to.gauges.size(); ++i) {
    const FfGaugeState& a = from.gauges[i];
    const FfGaugeState& b = to.gauges[i];
    if (!same_bits(a.last, b.last) || !same_bits(a.min, b.min) ||
        !same_bits(a.max, b.max))
      return false;  // last-value state moved: not a replayable delta
    out.gauges.push_back(
        FfGaugeState{b.last, b.min, b.max, b.samples - a.samples});
  }
  for (std::size_t i = 0; i < to.hists.size(); ++i) {
    Histogram d;
    if (!Histogram::delta(from.hists[i], to.hists[i], d)) return false;
    out.hists.push_back(d);
  }
  return true;
}

bool Registry::ff_equal(const FfSnapshot& a, const FfSnapshot& b) {
  if (a.counters != b.counters || a.gauges.size() != b.gauges.size() ||
      a.hists.size() != b.hists.size())
    return false;
  for (std::size_t i = 0; i < a.gauges.size(); ++i) {
    if (a.gauges[i].samples != b.gauges[i].samples ||
        !same_bits(a.gauges[i].last, b.gauges[i].last) ||
        !same_bits(a.gauges[i].min, b.gauges[i].min) ||
        !same_bits(a.gauges[i].max, b.gauges[i].max))
      return false;
  }
  for (std::size_t i = 0; i < a.hists.size(); ++i)
    if (!a.hists[i].identical(b.hists[i])) return false;
  return true;
}

void Registry::ff_apply(const FfSnapshot& d, std::uint64_t k) {
  // Metrics minted after the delta was captured (none in practice: the
  // collapse happens synchronously right after the C snapshot) keep their
  // values; the loops bound themselves by the delta's size.
  std::size_t i = 0;
  for (Counter& c : counters_) {
    if (i >= d.counters.size()) break;
    c.value_ += d.counters[i++] * k;
  }
  i = 0;
  for (Gauge& g : gauges_) {
    if (i >= d.gauges.size()) break;
    g.samples_ += d.gauges[i++].samples * k;
  }
  i = 0;
  for (Histogram& h : histograms_) {
    if (i >= d.hists.size()) break;
    h.add_scaled(d.hists[i++], k);
  }
}

void Registry::trigger_flight_dump(std::string_view reason) {
  if (flight_triggered_) return;
  flight_triggered_ = true;
  std::ostream& os = flight_stream_ ? *flight_stream_ : std::cerr;
  os << "--- flight recorder dump (reason: " << reason << ") ---\n";
  dump_flight(os);
  os << "--- end flight recorder dump ---\n";
}

void Registry::dump_flight(std::ostream& os) const {
  const std::uint64_t cap = flight_ring_.size();
  const std::uint64_t n = flight_head_ < cap ? flight_head_ : cap;
  const std::uint64_t start = flight_head_ - n;
  if (flight_head_ > n)
    os << "(" << flight_head_ - n << " older records overwritten)\n";
  for (std::uint64_t i = start; i < flight_head_; ++i) {
    const FlightRecord& r = flight_ring_[i & flight_mask_];
    char buf[64];
    std::snprintf(buf, sizeof buf, "[%14llu ns] %-5s ",
                  static_cast<unsigned long long>(r.t),
                  std::string(to_string(static_cast<Layer>(r.layer))).c_str());
    os << buf << (r.entity < entities_.size() ? entities_[r.entity].name
                                              : std::string("?"))
       << ' ' << (r.code < codes_.size() ? codes_[r.code] : std::string("?"))
       << " arg=" << r.arg << '\n';
  }
}

}  // namespace e2e::stats
