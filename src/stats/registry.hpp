// e2e::stats — fleet-grade metrics: per-entity counters/gauges/histograms
// plus an always-on flight recorder.
//
// Where trace/ records *every event* of one transfer and check/ proves
// conservation laws, stats/ answers "what are 10^4 endpoints doing right
// now" at a cost that can stay on permanently: each metric is keyed by
// (entity, name), storage is pooled in deques (stable addresses), and hot
// call sites hold cached handles so the steady-state cost of a counter
// bump or histogram record is a pointer compare plus the arithmetic —
// no hashing, no allocation.
//
// Attachment mirrors the tracer: Registry::install() parks the registry in
// the engine's StatsHook slot; instrumented layers fetch it with
// stats::of(engine), a single pointer load that is null when stats are
// disabled.
//
// Cardinality is bounded: past Config::max_entities, new entities alias to
// the reserved "<overflow>" entity (id 0) instead of growing without
// limit — handles stay valid, determinism is preserved, and
// dropped_entities() reports how much was aggregated away. Aliasing
// (rather than evicting) keeps already-minted handles stable, which the
// cached-handle idiom requires.
//
// The flight recorder is a fixed ring of POD records (time, layer, entity,
// code, arg) fed by the same instrumentation sites. It always runs; it is
// only ever *read* when something goes wrong (an audit violation, a
// terminal fault recovery, a scenario exiting nonzero), at which point
// trigger_flight_dump() prints the last window of records — postmortem
// context at ring-buffer cost.
//
// Determinism: no wall-clock reads, ids in first-use order, insertion-
// ordered iteration everywhere — same-seed runs export byte-identical
// stats files (unit tested).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/engine.hpp"
#include "sim/time.hpp"
#include "stats/histogram.hpp"

namespace e2e::stats {

/// Which layer of the stack a metric or flight record belongs to.
/// Mirrors trace::Layer (kept separate so stats/ does not depend on
/// trace/); exports group by this.
enum class Layer : std::uint8_t {
  kSim,    // engine resources
  kRdma,   // verbs queue pairs
  kTcp,    // TCP/IP connections
  kIscsi,  // iSCSI session layer
  kIser,   // iSER datamover
  kRftp,   // RFTP transfer protocol
  kBlk,    // block / filesystem
  kApp,    // applications and drivers
  kFault,  // fault injection and recovery
};
inline constexpr int kLayerCount = 9;

constexpr std::string_view to_string(Layer l) noexcept {
  switch (l) {
    case Layer::kSim: return "sim";
    case Layer::kRdma: return "rdma";
    case Layer::kTcp: return "tcp";
    case Layer::kIscsi: return "iscsi";
    case Layer::kIser: return "iser";
    case Layer::kRftp: return "rftp";
    case Layer::kBlk: return "blk";
    case Layer::kApp: return "app";
    case Layer::kFault: return "fault";
  }
  return "?";
}

using EntityId = std::uint32_t;
using CodeId = std::uint16_t;

/// Monotonic counter. add() is an inlined integer bump.
class Counter {
 public:
  void add(std::uint64_t delta) noexcept { value_ += delta; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }

 private:
  friend class Registry;
  Counter(EntityId entity, std::uint32_t name) : entity_(entity), name_(name) {}
  EntityId entity_;
  std::uint32_t name_;
  std::uint64_t value_ = 0;
};

/// Last-value gauge with running min/max (e.g. a cwnd that shrinks).
class Gauge {
 public:
  void set(double v) noexcept {
    last_ = v;
    if (samples_ == 0) {
      min_ = max_ = v;
    } else {
      if (v < min_) min_ = v;
      if (v > max_) max_ = v;
    }
    ++samples_;
  }
  [[nodiscard]] double last() const noexcept { return last_; }
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] std::uint64_t samples() const noexcept { return samples_; }

 private:
  friend class Registry;
  Gauge(EntityId entity, std::uint32_t name) : entity_(entity), name_(name) {}
  EntityId entity_;
  std::uint32_t name_;
  double last_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::uint64_t samples_ = 0;
};

/// One flight-recorder entry. POD, 24 bytes, written in place in the ring.
struct FlightRecord {
  sim::SimTime t;
  std::uint64_t arg;
  EntityId entity;
  CodeId code;
  std::uint8_t layer;
};
static_assert(sizeof(FlightRecord) <= 24);

struct Config {
  /// Distinct entities before new ones alias to "<overflow>" (id 0).
  std::size_t max_entities = 4096;
  /// Flight-recorder ring size; rounded up to a power of two.
  std::size_t flight_capacity = 4096;
};

class Registry final : public sim::StatsHook {
 public:
  /// The registry must not outlive `eng` (flight records are stamped with
  /// engine time and destruction uninstalls the hook).
  explicit Registry(sim::Engine& eng, Config cfg = {});
  ~Registry() override;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Makes this registry visible to instrumented code via stats::of().
  void install() noexcept { eng_.set_stats_hook(this); }
  void uninstall() noexcept {
    if (eng_.stats_hook() == this) eng_.set_stats_hook(nullptr);
  }

  [[nodiscard]] sim::Engine& engine() noexcept { return eng_; }

  // --- entities -----------------------------------------------------------
  // An entity is one metered thing (a QP, a stream, a connection),
  // identified by (layer, name). entity() is idempotent per name;
  // mint_entity() appends "#<n>" for a fresh entity per caller, numbered
  // in first-mint order. Past the cardinality cap both return
  // kOverflowEntity and count the drop.

  static constexpr EntityId kOverflowEntity = 0;

  EntityId entity(Layer layer, std::string_view name);
  EntityId mint_entity(Layer layer, std::string_view base);

  [[nodiscard]] std::size_t entity_count() const noexcept {
    return entities_.size();
  }
  [[nodiscard]] std::uint64_t dropped_entities() const noexcept {
    return dropped_entities_;
  }
  [[nodiscard]] const std::string& entity_name(EntityId id) const {
    return entities_.at(id).name;
  }
  [[nodiscard]] Layer entity_layer(EntityId id) const {
    return entities_.at(id).layer;
  }

  // --- metrics ------------------------------------------------------------
  // Created on first use, stable addresses for the registry's lifetime
  // (deque-pooled). Call sites cache the returned reference in a
  // CachedCounter/CachedGauge/CachedHistogram so the map probe happens
  // once per site per registry.

  Counter& counter(EntityId entity, std::string_view name);
  Gauge& gauge(EntityId entity, std::string_view name);
  Histogram& histogram(EntityId entity, std::string_view name);

  /// Counter value for (entity, name), 0 if never touched (tests/reports).
  [[nodiscard]] std::uint64_t counter_value(EntityId entity,
                                            std::string_view name) const;
  /// Histogram for (entity, name), or null if never touched.
  [[nodiscard]] const Histogram* find_histogram(EntityId entity,
                                                std::string_view name) const;

  /// All per-entity histograms named `name`, merged into one — the
  /// finalize-time shard combine (e.g. every "wr_ns" across every QP).
  [[nodiscard]] Histogram merged_histogram(std::string_view name) const;

  // --- flight recorder ----------------------------------------------------

  /// Interns a record code (idempotent; cache via CachedCode).
  CodeId code(std::string_view name);

  /// Appends one record to the ring. Constant time, allocation-free,
  /// overwrites the oldest record when full.
  void flight(Layer layer, EntityId entity, CodeId code,
              std::uint64_t arg) noexcept {
    FlightRecord& r = flight_ring_[flight_head_ & flight_mask_];
    r.t = eng_.now();
    r.arg = arg;
    r.entity = entity;
    r.code = code;
    r.layer = static_cast<std::uint8_t>(layer);
    ++flight_head_;
  }

  /// Dumps the ring (oldest record first) and latches: only the first
  /// trigger prints, so one root cause does not bury itself under
  /// follow-on dumps. Call when an audit violation fires, a recovery goes
  /// terminal, or a scenario is about to exit nonzero.
  void trigger_flight_dump(std::string_view reason);

  /// Unconditional dump to `os` (tests, manual postmortems).
  void dump_flight(std::ostream& os) const;

  /// Redirects trigger_flight_dump() output (default: stderr).
  void set_flight_stream(std::ostream* os) noexcept { flight_stream_ = os; }

  [[nodiscard]] bool flight_dump_triggered() const noexcept {
    return flight_triggered_;
  }
  [[nodiscard]] std::size_t flight_capacity() const noexcept {
    return flight_ring_.size();
  }
  /// Records written since construction (not clamped to the ring size).
  [[nodiscard]] std::uint64_t flight_written() const noexcept {
    return flight_head_;
  }

  // --- export -------------------------------------------------------------

  /// Full stats report: entities, counters, gauges, histogram percentile
  /// tables + non-empty bucket dumps. Deterministic byte-for-byte per
  /// seed.
  void write_json(std::ostream& os) const;
  void write_csv(std::ostream& os) const;

  /// Sharded-run report ("e2e-stats-cluster-v1"): one write_json() document
  /// per shard registry, in the order given — callers pass shard-rank
  /// order, never a wall-clock-dependent order, so the merged file is as
  /// deterministic as the per-shard ones.
  static void write_merged_json(std::ostream& os,
                                const std::vector<const Registry*>& shards);

  // --- fast-forward -------------------------------------------------------
  // Closed-form metric advancement for the hybrid fluid/event fast-forward
  // (rftp::FastForward). The detector snapshots every metric at three
  // equally spaced steady-state instants A, B, C; if delta(A,B) equals
  // delta(B,C) element-wise, one period's worth of metric movement is known
  // in closed form and ff_apply() replays it k times. All metric updates
  // are wrapping adds (Counter::add, Histogram bulk record) or idempotent
  // extrema, so scaled application is bit-identical to event-exact
  // repetition of the period. The flight-recorder ring is deliberately NOT
  // advanced: it is a trace, not a conserved metric.

  struct FfGaugeState {
    double last, min, max;
    std::uint64_t samples;
  };
  struct FfSnapshot {
    std::vector<std::uint64_t> counters;  // creation order
    std::vector<FfGaugeState> gauges;     // creation order
    std::vector<Histogram> hists;         // creation order
  };

  /// Captures every counter/gauge/histogram in creation order. Reuses the
  /// vectors' capacity, so repeated snapshots stop allocating once sized.
  void ff_snapshot(FfSnapshot& out) const;

  /// out = to - from. Returns false — no replayable delta — when the metric
  /// population changed inside the window or a gauge's last/min/max moved
  /// (a last-value gauge cannot be advanced as a delta; a window where one
  /// moved was not steady state). Counter deltas and histogram buckets
  /// subtract exactly (monotone / wrapping).
  [[nodiscard]] static bool ff_delta(const FfSnapshot& from,
                                     const FfSnapshot& to, FfSnapshot& out);

  /// Bitwise equality of two deltas (the D1 == D2 steady-state test).
  [[nodiscard]] static bool ff_equal(const FfSnapshot& a, const FfSnapshot& b);

  /// Applies a ff_delta()-produced period delta k times: counters advance
  /// by delta*k, gauge sample counts by samples*k (last/min/max are pinned
  /// by ff_delta), histograms via Histogram::add_scaled.
  void ff_apply(const FfSnapshot& d, std::uint64_t k);

 private:
  struct Entity {
    Layer layer;
    std::string name;
  };

  /// Transparent hasher: string_view probes without temporary strings.
  struct StringHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
    std::size_t operator()(const std::string& s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };

  std::uint32_t intern(std::string_view s);
  [[nodiscard]] static std::uint64_t metric_key(EntityId entity,
                                                std::uint32_t name) noexcept {
    return (static_cast<std::uint64_t>(entity) << 32) | name;
  }

  sim::Engine& eng_;
  std::size_t max_entities_;

  std::vector<std::string> names_;  // metric-name intern table
  std::unordered_map<std::string, std::uint32_t, StringHash, std::equal_to<>>
      name_ids_;

  std::vector<Entity> entities_;
  std::unordered_map<std::string, EntityId> entity_ids_;  // "<layer>/<name>"
  std::unordered_map<std::string, int> mint_counts_;
  std::uint64_t dropped_entities_ = 0;

  // Pooled metric storage (stable addresses) + (entity, name) lookup.
  // Histograms don't carry their key (the type is shared with bench code),
  // so a parallel meta vector records it in creation order for export.
  struct HistMeta {
    EntityId entity;
    std::uint32_t name;
  };
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
  std::vector<HistMeta> histogram_meta_;
  std::unordered_map<std::uint64_t, Counter*> counter_ids_;
  std::unordered_map<std::uint64_t, Gauge*> gauge_ids_;
  std::unordered_map<std::uint64_t, Histogram*> histogram_ids_;

  std::vector<std::string> codes_;  // flight-code intern table
  std::unordered_map<std::string, CodeId, StringHash, std::equal_to<>>
      code_ids_;
  std::vector<FlightRecord> flight_ring_;
  std::uint64_t flight_head_ = 0;
  std::uint64_t flight_mask_ = 0;
  std::ostream* flight_stream_ = nullptr;  // null -> stderr at trigger time
  bool flight_triggered_ = false;
};

/// The registry installed on `eng`, or null when stats are disabled.
/// Registry is the only StatsHook implementation, so the downcast is exact
/// (same contract as trace::of / check::of).
[[nodiscard]] inline Registry* of(sim::Engine& eng) noexcept {
  return static_cast<Registry*>(eng.stats_hook());
}

// --- per-site cached handles ----------------------------------------------
// Same idiom as trace::CachedTrack/CachedCounter: the handle re-resolves
// only when the installed registry changed, so steady state is one pointer
// compare. Each cache instance serves one fixed (entity, name) site — give
// per-QP/per-stream state its own instances.

struct CachedEntity {
  Registry* owner = nullptr;
  EntityId id = 0;
  /// Minted entity whose base name is built only on first use per registry.
  template <typename MakeBase>
  EntityId get_lazy(Registry* r, Layer layer, MakeBase&& make_base) {
    if (owner != r) {
      id = r->mint_entity(layer, make_base());
      owner = r;
    }
    return id;
  }
  /// Idempotent named entity.
  EntityId named(Registry* r, Layer layer, std::string_view name) {
    if (owner != r) {
      id = r->entity(layer, name);
      owner = r;
    }
    return id;
  }
  /// Idempotent named entity whose name is built only on first use.
  template <typename MakeName>
  EntityId named_lazy(Registry* r, Layer layer, MakeName&& make_name) {
    if (owner != r) {
      id = r->entity(layer, make_name());
      owner = r;
    }
    return id;
  }
};

struct CachedCounter {
  Registry* owner = nullptr;
  Counter* c = nullptr;
  Counter& get(Registry* r, EntityId entity, std::string_view name) {
    if (owner != r) {
      c = &r->counter(entity, name);
      owner = r;
    }
    return *c;
  }
};

struct CachedGauge {
  Registry* owner = nullptr;
  Gauge* g = nullptr;
  Gauge& get(Registry* r, EntityId entity, std::string_view name) {
    if (owner != r) {
      g = &r->gauge(entity, name);
      owner = r;
    }
    return *g;
  }
};

struct CachedHistogram {
  Registry* owner = nullptr;
  Histogram* h = nullptr;
  Histogram& get(Registry* r, EntityId entity, std::string_view name) {
    if (owner != r) {
      h = &r->histogram(entity, name);
      owner = r;
    }
    return *h;
  }
};

struct CachedCode {
  Registry* owner = nullptr;
  CodeId id = 0;
  CodeId get(Registry* r, std::string_view name) {
    if (owner != r) {
      id = r->code(name);
      owner = r;
    }
    return id;
  }
};

}  // namespace e2e::stats
