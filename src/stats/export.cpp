// Stats exporters: JSON report ("e2e-stats-v1") and flat CSV.
//
// Same determinism contract as trace/export.cpp: doubles print as "%.9g",
// integers as integers, and every collection iterates in creation order,
// so same-seed runs emit byte-identical files.
#include <cstdio>
#include <ostream>

#include "stats/registry.hpp"

namespace e2e::stats {

namespace {

void put_double(std::ostream& os, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  os << buf;
}

/// Minimal JSON string escaping (entity names are ASCII identifiers, but a
/// stray quote or backslash must not corrupt the file).
void put_str(std::ostream& os, std::string_view s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void put_hist_summary(std::ostream& os, const Histogram& h) {
  os << "\"count\": " << h.count() << ", \"min\": " << h.min()
     << ", \"max\": " << h.max() << ", \"mean\": ";
  put_double(os, h.mean());
  os << ", \"p50\": " << h.p50() << ", \"p90\": " << h.p90()
     << ", \"p99\": " << h.p99() << ", \"p999\": " << h.p999();
}

void put_hist_buckets(std::ostream& os, const Histogram& h) {
  // Full bucket dump, sparse: only occupied slots, as [lower, upper, count]
  // (upper exclusive). Enough to reconstruct or re-merge the histogram.
  os << "[";
  bool first = true;
  for (std::size_t i = 0; i < Histogram::kSlots; ++i) {
    const std::uint64_t c = h.bucket_count(i);
    if (c == 0) continue;
    os << (first ? "" : ", ") << "[" << Histogram::bucket_lower(i) << ", "
       << Histogram::bucket_upper(i) << ", " << c << "]";
    first = false;
  }
  os << "]";
}

}  // namespace

void Registry::write_json(std::ostream& os) const {
  os << "{\n  \"schema\": \"e2e-stats-v1\",\n";
  os << "  \"sim_time_ns\": " << eng_.now() << ",\n";
  os << "  \"entities\": " << entities_.size() << ",\n";
  os << "  \"dropped_entities\": " << dropped_entities_ << ",\n";
  os << "  \"flight_records\": " << flight_head_ << ",\n";

  os << "  \"counters\": [";
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    const Counter& c = counters_[i];
    os << (i ? ",\n" : "\n") << "    {\"layer\": ";
    put_str(os, to_string(entities_[c.entity_].layer));
    os << ", \"entity\": ";
    put_str(os, entities_[c.entity_].name);
    os << ", \"name\": ";
    put_str(os, names_[c.name_]);
    os << ", \"value\": " << c.value_ << "}";
  }
  os << (counters_.empty() ? "" : "\n  ") << "],\n";

  os << "  \"gauges\": [";
  for (std::size_t i = 0; i < gauges_.size(); ++i) {
    const Gauge& g = gauges_[i];
    os << (i ? ",\n" : "\n") << "    {\"layer\": ";
    put_str(os, to_string(entities_[g.entity_].layer));
    os << ", \"entity\": ";
    put_str(os, entities_[g.entity_].name);
    os << ", \"name\": ";
    put_str(os, names_[g.name_]);
    os << ", \"last\": ";
    put_double(os, g.last_);
    os << ", \"min\": ";
    put_double(os, g.min_);
    os << ", \"max\": ";
    put_double(os, g.max_);
    os << ", \"samples\": " << g.samples_ << "}";
  }
  os << (gauges_.empty() ? "" : "\n  ") << "],\n";

  os << "  \"histograms\": [";
  for (std::size_t i = 0; i < histograms_.size(); ++i) {
    const HistMeta& m = histogram_meta_[i];
    os << (i ? ",\n" : "\n") << "    {\"layer\": ";
    put_str(os, to_string(entities_[m.entity].layer));
    os << ", \"entity\": ";
    put_str(os, entities_[m.entity].name);
    os << ", \"name\": ";
    put_str(os, names_[m.name]);
    os << ", ";
    put_hist_summary(os, histograms_[i]);
    os << ", \"buckets\": ";
    put_hist_buckets(os, histograms_[i]);
    os << "}";
  }
  os << (histograms_.empty() ? "" : "\n  ") << "]\n}\n";
}

void Registry::write_merged_json(std::ostream& os,
                                 const std::vector<const Registry*>& shards) {
  os << "{\n\"schema\": \"e2e-stats-cluster-v1\",\n";
  os << "\"shard_count\": " << shards.size() << ",\n";
  os << "\"shards\": [";
  for (std::size_t i = 0; i < shards.size(); ++i) {
    os << (i ? ",\n" : "\n");
    shards[i]->write_json(os);
  }
  os << (shards.empty() ? "" : "\n") << "]\n}\n";
}

void Registry::write_csv(std::ostream& os) const {
  os << "metric,value\n";
  os << "sim_time_ns," << eng_.now() << "\n";
  os << "entities," << entities_.size() << "\n";
  os << "dropped_entities," << dropped_entities_ << "\n";
  for (const Counter& c : counters_)
    os << "counter." << entities_[c.entity_].name << "." << names_[c.name_]
       << "," << c.value_ << "\n";
  for (const Gauge& g : gauges_) {
    const std::string base =
        "gauge." + entities_[g.entity_].name + "." + names_[g.name_];
    os << base << ".last,";
    put_double(os, g.last_);
    os << "\n" << base << ".min,";
    put_double(os, g.min_);
    os << "\n" << base << ".max,";
    put_double(os, g.max_);
    os << "\n";
  }
  for (std::size_t i = 0; i < histograms_.size(); ++i) {
    const HistMeta& m = histogram_meta_[i];
    const Histogram& h = histograms_[i];
    const std::string base =
        "hist." + entities_[m.entity].name + "." + names_[m.name];
    os << base << ".count," << h.count() << "\n";
    os << base << ".min," << h.min() << "\n";
    os << base << ".max," << h.max() << "\n";
    os << base << ".mean,";
    put_double(os, h.mean());
    os << "\n";
    os << base << ".p50," << h.p50() << "\n";
    os << base << ".p90," << h.p90() << "\n";
    os << base << ".p99," << h.p99() << "\n";
    os << base << ".p999," << h.p999() << "\n";
  }
}

}  // namespace e2e::stats
