#include "apps/iperf.hpp"

#include <memory>

#include "metrics/throughput.hpp"
#include "sim/task.hpp"

namespace e2e::apps {

namespace {

struct StreamCtx {
  tcp::Connection* conn;
  numa::Thread* tx;
  numa::Thread* rx;
  numa::Placement src;
  numa::Placement dst;
  bool cached_src;
  std::uint64_t* rx_bytes;
};

sim::Task<> tx_loop(StreamCtx c, std::uint64_t chunk, sim::SimTime deadline) {
  auto& eng = c.tx->host().engine();
  while (eng.now() < deadline)
    co_await c.conn->send(*c.tx, c.src, chunk, c.cached_src);
}

sim::Task<> rx_loop(StreamCtx c, sim::SimTime deadline) {
  auto& eng = c.rx->host().engine();
  while (eng.now() < deadline) {
    const std::uint64_t n = co_await c.conn->recv(*c.rx, c.dst);
    if (n == 0) co_return;
    if (eng.now() <= deadline) *c.rx_bytes += n;
  }
}

}  // namespace

IperfReport run_iperf(sim::Engine& eng, numa::Host& a, numa::Host& b,
                      const std::vector<IperfLink>& links,
                      const IperfConfig& cfg) {
  const auto binding = cfg.numa_tuned
                           ? numa::NumaBinding{numa::SchedPolicy::kBindNode,
                                               numa::MemPolicy::kBind,
                                               numa::kAnyNode}
                           : numa::NumaBinding::os_default();
  numa::Process proc_a(a, "iperf-a", binding);
  numa::Process proc_b(b, "iperf-b", binding);

  const metrics::CpuUsage base_a = a.total_usage();
  const metrics::CpuUsage base_b = b.total_usage();
  auto fwd_bytes = std::make_unique<std::uint64_t>(0);
  auto rev_bytes = std::make_unique<std::uint64_t>(0);
  std::vector<std::unique_ptr<tcp::Connection>> conns;

  const sim::SimTime start = eng.now();
  const sim::SimTime deadline = start + cfg.duration;
  const bool cached =
      static_cast<double>(cfg.sender_buffer_bytes) <=
      a.profile().llc_mbytes * 1e6;

  auto make_streams = [&](bool reverse) {
    for (const auto& l : links) {
      for (int s = 0; s < cfg.streams_per_link; ++s) {
        conns.push_back(std::make_unique<tcp::Connection>(
            a, l.node_a, b, l.node_b, *l.link));
        tcp::Connection* conn = conns.back().get();
        numa::Process& tx_proc = reverse ? proc_b : proc_a;
        numa::Process& rx_proc = reverse ? proc_a : proc_b;
        const numa::NodeId tx_node = reverse ? l.node_b : l.node_a;
        const numa::NodeId rx_node = reverse ? l.node_a : l.node_b;

        StreamCtx c{};
        c.conn = conn;
        c.tx = &tx_proc.spawn_thread(tx_node);
        c.rx = &rx_proc.spawn_thread(rx_node);
        // Buffers: bound NIC-local when tuned; first-touch on whatever node
        // the (arbitrarily scheduled) thread got otherwise.
        c.src = tx_proc.alloc(cfg.sender_buffer_bytes, c.tx->node());
        c.dst = rx_proc.alloc(cfg.chunk_bytes, c.rx->node());
        c.cached_src = cached;
        c.rx_bytes = reverse ? rev_bytes.get() : fwd_bytes.get();
        sim::co_spawn(tx_loop(c, cfg.chunk_bytes, deadline));
        sim::co_spawn(rx_loop(c, deadline));
      }
    }
  };

  make_streams(/*reverse=*/false);
  if (cfg.bidirectional) make_streams(/*reverse=*/true);

  eng.run_until(deadline);

  IperfReport r;
  r.window = cfg.duration;
  r.forward_gbps = metrics::gbps(*fwd_bytes, cfg.duration);
  r.reverse_gbps = metrics::gbps(*rev_bytes, cfg.duration);
  r.aggregate_gbps = r.forward_gbps + r.reverse_gbps;
  r.usage_a = a.total_usage().since(base_a);
  r.usage_b = b.total_usage().since(base_b);
  return r;
}

}  // namespace e2e::apps
