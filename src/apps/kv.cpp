#include "apps/kv.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace e2e::apps {

Zipf::Zipf(std::uint64_t n, double theta) {
  if (n == 0) throw std::invalid_argument("kv: zipf over zero keys");
  if (theta < 0.0) throw std::invalid_argument("kv: zipf theta must be >= 0");
  cdf_.resize(n);
  double acc = 0.0;
  for (std::uint64_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    cdf_[i] = acc;
  }
  for (double& c : cdf_) c /= acc;
  cdf_.back() = 1.0;  // guard against the division landing a hair under
}

std::uint64_t Zipf::sample(sim::Rng& rng) const {
  const double u = rng.uniform(0.0, 1.0);
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  const auto idx = static_cast<std::uint64_t>(it - cdf_.begin());
  return std::min(idx, static_cast<std::uint64_t>(cdf_.size()) - 1);
}

KvStore::KvStore(numa::Process& proc, std::uint64_t keys,
                 std::uint64_t value_bytes, int shards)
    : keys_(keys), value_bytes_(value_bytes) {
  if (keys == 0) throw std::invalid_argument("kv: keys must be >= 1");
  if (value_bytes == 0)
    throw std::invalid_argument("kv: value_bytes must be >= 1");
  if (shards < 1 || static_cast<std::uint64_t>(shards) > keys)
    throw std::invalid_argument("kv: shards must be in [1, keys]");
  const int nodes = proc.host().node_count();
  shards_.reserve(static_cast<std::size_t>(shards));
  for (int s = 0; s < shards; ++s) {
    const auto node = static_cast<numa::NodeId>(s % nodes);
    const std::uint64_t u = static_cast<std::uint64_t>(s);
    const std::uint64_t shard_keys =
        keys / static_cast<std::uint64_t>(shards) +
        (u < keys % static_cast<std::uint64_t>(shards) ? 1 : 0);
    Shard sh;
    sh.index.bytes = shard_keys * kIndexEntryBytes;
    sh.index.placement = proc.alloc(sh.index.bytes, node);
    sh.values.bytes = shard_keys * value_bytes;
    sh.values.placement = proc.alloc(sh.values.bytes, node);
    sh.staging.bytes = value_bytes;
    sh.staging.placement = proc.alloc(sh.staging.bytes, node);
    sh.worker = &proc.spawn_thread(node);
    shards_.push_back(std::move(sh));
  }
}

sim::Task<> KvStore::register_all(rdma::ProtectionDomain& pd,
                                  numa::Thread& th) {
  for (Shard& sh : shards_) {
    co_await pd.register_buffer(th, sh.index);
    co_await pd.register_buffer(th, sh.values);
    co_await pd.register_buffer(th, sh.staging);
  }
}

sim::Task<rpc::RpcServer::Reply> KvHandler::handle(
    const rpc::RpcServer::Request& req) {
  const KvMsg* m = req.payload.as<KvMsg>();
  KvStore::Shard& sh = store_.shard(store_.shard_of(m->key));
  numa::Thread& th = *sh.worker;
  // Hash + index probe on the shard's worker: charging it there serializes
  // the shard (single-writer semantics) and runs the CPU on the shard's
  // node, NUMA-remote from the NIC for odd shards on the default profile.
  co_await th.compute(th.host().costs().kv_lookup_cycles,
                      metrics::CpuCategory::kUserProto);
  rpc::RpcServer::Reply r;
  if (m->op == KvMsg::Op::kGet) {
    ++gets_;
    co_await th.copy(store_.value_bytes(), sh.values.placement,
                     sh.staging.placement, metrics::CpuCategory::kCopy);
    r.bytes = header_bytes_ + store_.value_bytes();
    r.payload =
        mem::make_msg<KvMsg>(KvMsg{KvMsg::Op::kGet, m->key,
                                   store_.value_bytes(), true});
    r.source = &sh.staging;
  } else {
    ++puts_;
    co_await th.copy(m->value_bytes, request_region_.placement,
                     sh.values.placement, metrics::CpuCategory::kCopy);
    r.bytes = header_bytes_;
    r.payload = mem::make_msg<KvMsg>(KvMsg{KvMsg::Op::kPut, m->key, 0, true});
    r.source = nullptr;  // header-only ack, DMA'd from the ring region
  }
  co_return r;
}

}  // namespace e2e::apps
