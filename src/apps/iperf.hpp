// iperf-style memory-to-memory TCP benchmark (§2.3 motivating experiment).
//
// Streams data over TCP connections for a fixed duration. The sender's
// user buffer either fits in LLC (iperf's default small buffer — the copy
// engine never touches DRAM for the source) or exceeds it (the paper
// enlarges it to defeat the cache and expose real memory traffic).
// NUMA-tuned mode binds each stream's threads and buffers to the NUMA node
// of the NIC it uses; untuned mode takes the stock scheduler's placement.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "metrics/cpu_usage.hpp"
#include "net/link.hpp"
#include "numa/process.hpp"
#include "tcp/connection.hpp"

namespace e2e::apps {

struct IperfLink {
  net::Link* link = nullptr;
  numa::NodeId node_a = 0;  // NIC attachment on host A
  numa::NodeId node_b = 0;
};

struct IperfConfig {
  std::uint64_t chunk_bytes = 128 * 1024;      // bytes per send() call
  std::uint64_t sender_buffer_bytes = 1 << 20;  // working set of the source
  int streams_per_link = 2;
  bool bidirectional = false;
  bool numa_tuned = false;
  sim::SimDuration duration = sim::kSecond;
};

struct IperfReport {
  double aggregate_gbps = 0.0;      // sum of all directions
  double forward_gbps = 0.0;
  double reverse_gbps = 0.0;
  metrics::CpuUsage usage_a;        // per-host CPU over the run window
  metrics::CpuUsage usage_b;
  sim::SimDuration window = 0;
};

/// Runs iperf between `a` and `b` over `links`, driving `eng` for
/// cfg.duration. The engine must be otherwise idle.
IperfReport run_iperf(sim::Engine& eng, numa::Host& a, numa::Host& b,
                      const std::vector<IperfLink>& links,
                      const IperfConfig& cfg);

}  // namespace e2e::apps
