#include "apps/perftest.hpp"

#include <memory>
#include <stdexcept>

#include "exp/runner.hpp"
#include "metrics/throughput.hpp"

namespace e2e::apps {

namespace {

struct BwState {
  rdma::ConnectedPair* pair;
  PerftestConfig cfg;
  mem::Buffer* local;
  mem::Buffer* remote;
  sim::Semaphore* window;
  std::uint64_t completed = 0;
};

sim::Task<> bw_poster(BwState* st, numa::Thread& th) {
  for (int i = 0; i < st->cfg.iterations; ++i) {
    co_await st->window->acquire();
    rdma::SendWr wr;
    wr.wr_id = static_cast<std::uint64_t>(i);
    wr.local = st->local;
    wr.bytes = st->cfg.msg_bytes;
    switch (st->cfg.op) {
      case PerftestOp::kSend:
        wr.op = rdma::Opcode::kSend;
        break;
      case PerftestOp::kWrite:
        wr.op = rdma::Opcode::kWrite;
        wr.remote = rdma::RemoteKey{st->remote};
        break;
      case PerftestOp::kRead:
        wr.op = rdma::Opcode::kRead;
        wr.remote = rdma::RemoteKey{st->remote};
        break;
    }
    co_await st->pair->a().post_send(th, wr);
  }
}

sim::Task<> bw_reaper(BwState* st, numa::Thread& th) {
  for (int i = 0; i < st->cfg.iterations; ++i) {
    auto wc = co_await st->pair->a().send_cq().wait(th);
    if (!wc.success) throw std::runtime_error("perftest completion error");
    ++st->completed;
    st->window->release();
  }
}

sim::Task<> bw_recv_refill(BwState* st, numa::Thread& th) {
  // SEND tests need posted receives; keep the ring full and drain CQEs.
  if (st->cfg.op != PerftestOp::kSend) co_return;
  for (int i = 0; i < st->cfg.iterations; ++i) {
    auto wc = co_await st->pair->b().recv_cq().wait(th);
    (void)wc;
    co_await st->pair->b().post_recv(th, rdma::RecvWr{0, st->remote});
  }
}

}  // namespace

PerftestResult run_bw(sim::Engine& eng, rdma::ConnectedPair& pair,
                      numa::Process& client, numa::Process& server,
                      const PerftestConfig& cfg) {
  numa::Thread& post_th = client.spawn_thread(pair.a().device().node());
  numa::Thread& reap_th = client.spawn_thread(pair.a().device().node());
  numa::Thread& srv_th = server.spawn_thread(pair.b().device().node());

  mem::Buffer local, remote;
  local.bytes = remote.bytes = cfg.msg_bytes;
  local.placement = client.alloc(cfg.msg_bytes, pair.a().device().node());
  remote.placement = server.alloc(cfg.msg_bytes, pair.b().device().node());
  local.registered = remote.registered = true;

  BwState st{&pair, cfg, &local, &remote, nullptr, 0};
  sim::Semaphore window(eng, cfg.outstanding);
  st.window = &window;

  exp::run_task(eng, [](rdma::ConnectedPair& p, numa::Thread& th,
                        mem::Buffer* buf, int n) -> sim::Task<> {
    for (int i = 0; i < n; ++i)
      co_await p.b().post_recv(th, rdma::RecvWr{0, buf});
  }(pair, srv_th, &remote, cfg.op == PerftestOp::kSend
                               ? cfg.outstanding + 4
                               : 0));

  const sim::SimTime t0 = eng.now();
  sim::co_spawn(bw_poster(&st, post_th));
  sim::co_spawn(bw_recv_refill(&st, srv_th));
  exp::run_task(eng, bw_reaper(&st, reap_th));
  const sim::SimDuration w = eng.now() - t0;

  PerftestResult r;
  r.gbps = metrics::gbps(st.completed * cfg.msg_bytes, w);
  r.msgs_per_sec = static_cast<double>(st.completed) / sim::to_seconds(w);
  return r;
}

namespace {

sim::Task<> lat_server(rdma::ConnectedPair& pair, numa::Thread& th,
                       mem::Buffer* buf, int iterations) {
  for (int i = 0; i < iterations; ++i) {
    auto wc = co_await pair.b().recv_cq().wait(th);
    (void)wc;
    co_await pair.b().post_recv(th, rdma::RecvWr{0, buf});
    rdma::SendWr pong;
    pong.op = rdma::Opcode::kSend;
    pong.local = buf;
    pong.bytes = buf->bytes;
    co_await pair.b().post_send(th, pong);
  }
}

sim::Task<> lat_client(rdma::ConnectedPair& pair, numa::Thread& th,
                       mem::Buffer* buf, int iterations) {
  for (int i = 0; i < iterations; ++i) {
    rdma::SendWr ping;
    ping.op = rdma::Opcode::kSend;
    ping.local = buf;
    ping.bytes = buf->bytes;
    co_await pair.a().post_send(th, ping);
    auto wc = co_await pair.a().recv_cq().wait(th);
    (void)wc;
    co_await pair.a().post_recv(th, rdma::RecvWr{0, buf});
  }
}

}  // namespace

PerftestResult run_lat(sim::Engine& eng, rdma::ConnectedPair& pair,
                       numa::Process& client, numa::Process& server,
                       const PerftestConfig& cfg) {
  numa::Thread& cth = client.spawn_thread(pair.a().device().node());
  numa::Thread& sth = server.spawn_thread(pair.b().device().node());

  mem::Buffer cbuf, sbuf;
  cbuf.bytes = sbuf.bytes = cfg.msg_bytes;
  cbuf.placement = client.alloc(cfg.msg_bytes, pair.a().device().node());
  sbuf.placement = server.alloc(cfg.msg_bytes, pair.b().device().node());
  cbuf.registered = sbuf.registered = true;

  exp::run_task(eng, [](rdma::ConnectedPair& p, numa::Thread& ta,
                        numa::Thread& tb, mem::Buffer* a,
                        mem::Buffer* b) -> sim::Task<> {
    co_await p.a().post_recv(ta, rdma::RecvWr{0, a});
    co_await p.b().post_recv(tb, rdma::RecvWr{0, b});
  }(pair, cth, sth, &cbuf, &sbuf));

  const sim::SimTime t0 = eng.now();
  sim::co_spawn(lat_server(pair, sth, &sbuf, cfg.iterations));
  exp::run_task(eng, lat_client(pair, cth, &cbuf, cfg.iterations));
  const sim::SimDuration w = eng.now() - t0;

  PerftestResult r;
  r.avg_lat_us =
      sim::to_seconds(w) * 1e6 / (2.0 * cfg.iterations);  // half RTT
  r.msgs_per_sec = 2.0 * cfg.iterations / sim::to_seconds(w);
  r.gbps = metrics::gbps(2ull * cfg.iterations * cfg.msg_bytes, w);
  return r;
}

}  // namespace e2e::apps
