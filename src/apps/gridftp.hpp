// GridFTP-style TCP file transfer baseline (Figs. 9-12 comparator).
//
// Models the three handicaps the paper identifies:
//  1. TCP stack cost — inherited from tcp::Connection (copies, per-packet
//     kernel work);
//  2. single-threaded design — each process runs ONE thread that
//     alternates blocking file I/O and blocking socket I/O, so the network
//     idles while the disk works and vice versa; parallelism comes only
//     from running multiple processes;
//  3. no direct I/O — file I/O goes through the page cache (extra copy,
//     writeback pressure, eviction churn).
#pragma once

#include <cstdint>
#include <vector>

#include "blk/filesystem.hpp"
#include "metrics/throughput.hpp"
#include "net/link.hpp"
#include "numa/host.hpp"
#include "rftp/config.hpp"
#include "tcp/connection.hpp"

namespace e2e::apps {

struct GridFtpConfig {
  std::uint64_t chunk_bytes = 256 * 1024;  // read/send unit
  int processes = 4;                       // parallel single-threaded procs
  bool direct_io = false;                  // GridFTP default: buffered
  bool numa_bind = true;  // paper binds both apps with numactl for fairness
};

struct GridFtpEndpoint {
  numa::Host* host = nullptr;
  blk::FileSystem* fs = nullptr;
  blk::File* file = nullptr;
};

struct GridFtpLink {
  net::Link* link = nullptr;
  numa::NodeId node_src = 0;
  numa::NodeId node_dst = 0;
};

/// Transfers `total_bytes` from src.file to dst.file; the byte range is
/// partitioned across processes. Completes when every process finishes.
/// `meter` (optional) records bytes as they are written at the receiver.
sim::Task<rftp::TransferResult> gridftp_transfer(
    GridFtpEndpoint src, GridFtpEndpoint dst,
    const std::vector<GridFtpLink>& links, std::uint64_t total_bytes,
    GridFtpConfig cfg, metrics::ThroughputMeter* meter = nullptr);

}  // namespace e2e::apps
