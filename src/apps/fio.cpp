#include "apps/fio.hpp"

#include <algorithm>
#include <stdexcept>

namespace e2e::apps {

sim::Task<> fio_worker(numa::Thread& th, blk::BlockDevice& dev,
                       FioOptions opts, std::uint64_t region_off,
                       std::uint64_t region_len, numa::Placement iobuf,
                       FioCounters* counters) {
  if (opts.block_bytes == 0 || region_len < opts.block_bytes)
    throw std::invalid_argument("fio region smaller than block size");
  auto& eng = th.host().engine();
  const sim::SimTime deadline = eng.now() + opts.duration;
  std::uint64_t off = region_off;
  while (eng.now() < deadline) {
    const std::uint64_t n =
        std::min(opts.block_bytes, region_off + region_len - off);
    const bool ok =
        opts.write
            ? co_await dev.write(th, off, n, iobuf,
                                 metrics::CpuCategory::kOffload)
            : co_await dev.read(th, off, n, iobuf,
                                metrics::CpuCategory::kLoad);
    if (!ok) throw std::runtime_error("fio I/O error");
    if (eng.now() <= deadline) {
      counters->bytes += n;
      ++counters->ios;
    }
    off += n;
    if (off >= region_off + region_len) off = region_off;
  }
}

}  // namespace e2e::apps
