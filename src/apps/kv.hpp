// Zipfian key-value store over the small-message rpc tier.
//
// The workload half of the rpc layer's design space: GET/PUT over keys
// whose popularity follows a Zipf distribution, with values striped across
// per-NUMA-node shards on the server. Each shard owns three registered
// regions placed on its node — a 32-byte-per-key index, the value heap,
// and a staging buffer — plus a worker thread pinned to the same node, so
// a request for a NIC-remote shard pays the interconnect on exactly the
// legs a real NUMA-blind server would.
//
// GETs come in two flavours the scenario layer can switch between:
//
//  * Two-sided (rpc): the server looks the key up (kv_lookup_cycles),
//    copies the value into the shard's staging region (CPU + memory
//    channels) and SENDs it back. One round trip, server CPU per call.
//  * One-sided (READ): the client READs the 32-byte index entry, then the
//    value, straight from the shard regions. Two round trips, zero server
//    CPU (QueuePair::serve_read). The crossover between the two as the
//    value size grows is the experiment bench_rpc reproduces.
//
// PUTs always travel the rpc path (one-sided writes would need the
// client to own allocation, which this store does not model).
#pragma once

#include <cstdint>
#include <vector>

#include "mem/buffer.hpp"
#include "numa/process.hpp"
#include "rdma/verbs.hpp"
#include "rpc/rpc.hpp"
#include "sim/rng.hpp"

namespace e2e::apps {

/// Request/response header for the kv protocol. Shipped as the rpc
/// payload; the wire size is accounted separately (header + value bytes).
struct KvMsg {
  enum class Op : std::uint8_t { kGet, kPut };
  Op op = Op::kGet;
  std::uint64_t key = 0;
  std::uint64_t value_bytes = 0;  // PUT request / GET reply value size
  bool ok = false;                // reply: key resolved
};

/// Zipf(theta) sampler over ranks [0, n). The CDF table is built once at
/// construction (the only place libm's pow/accumulation order matters);
/// sampling is one canonical draw plus a binary search, so the per-sample
/// path is allocation-free and bit-stable for a given table. theta = 0
/// degenerates to uniform.
class Zipf {
 public:
  Zipf(std::uint64_t n, double theta);

  /// Popularity rank for one access; rank 0 is the hottest key.
  [[nodiscard]] std::uint64_t sample(sim::Rng& rng) const;

  [[nodiscard]] std::uint64_t n() const noexcept { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

/// Server-side store: keys striped across shards (`key % shards`), shard s
/// homed on NUMA node `s % nodes`. Keys interleave across shards so the
/// Zipf head spreads over every node instead of piling onto node 0.
class KvStore {
 public:
  /// Per-key index entry footprint (what a one-sided GET reads first).
  static constexpr std::uint64_t kIndexEntryBytes = 32;

  struct Shard {
    mem::Buffer index;    // keys_in_shard * kIndexEntryBytes
    mem::Buffer values;   // keys_in_shard * value_bytes
    mem::Buffer staging;  // value_bytes, rpc GET response DMA source
    numa::Thread* worker = nullptr;  // pinned to the shard's node
  };

  KvStore(numa::Process& proc, std::uint64_t keys, std::uint64_t value_bytes,
          int shards);

  /// Registers every shard region (charged to `th`, like any ibv_reg_mr).
  sim::Task<> register_all(rdma::ProtectionDomain& pd, numa::Thread& th);

  [[nodiscard]] int shard_of(std::uint64_t key) const noexcept {
    return static_cast<int>(key % static_cast<std::uint64_t>(shards_.size()));
  }
  [[nodiscard]] Shard& shard(int s) noexcept {
    return shards_[static_cast<std::size_t>(s)];
  }
  [[nodiscard]] int shard_count() const noexcept {
    return static_cast<int>(shards_.size());
  }
  [[nodiscard]] std::uint64_t keys() const noexcept { return keys_; }
  [[nodiscard]] std::uint64_t value_bytes() const noexcept {
    return value_bytes_;
  }

 private:
  std::uint64_t keys_;
  std::uint64_t value_bytes_;
  std::vector<Shard> shards_;
};

/// rpc handler serving GET/PUT against a KvStore. `request_region` is the
/// server's receive-ring region — the place PUT values land before the
/// handler copies them into the owning shard.
class KvHandler final : public rpc::RpcServer::Handler {
 public:
  KvHandler(KvStore& store, mem::Buffer& request_region,
            std::uint64_t header_bytes)
      : store_(store),
        request_region_(request_region),
        header_bytes_(header_bytes) {}

  sim::Task<rpc::RpcServer::Reply> handle(
      const rpc::RpcServer::Request& req) override;

  [[nodiscard]] std::uint64_t gets() const noexcept { return gets_; }
  [[nodiscard]] std::uint64_t puts() const noexcept { return puts_; }

 private:
  KvStore& store_;
  mem::Buffer& request_region_;
  std::uint64_t header_bytes_;
  std::uint64_t gets_ = 0;
  std::uint64_t puts_ = 0;
};

}  // namespace e2e::apps
