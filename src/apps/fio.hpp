// fio-style block I/O driver (Figs. 7/8 workload).
//
// Sequential per-thread I/O loops against a block device, as the paper's
// "multiple I/O threads run simultaneously against each LUN" setup. The
// experiment assembly (LUN layout, NUMA binding of the target) lives in
// e2e::exp; this is the load generator.
#pragma once

#include <cstdint>

#include "blk/block_device.hpp"
#include "numa/thread.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace e2e::apps {

struct FioOptions {
  std::uint64_t block_bytes = 1 << 20;
  bool write = false;
  sim::SimDuration duration = sim::kSecond;
};

struct FioCounters {
  std::uint64_t bytes = 0;
  std::uint64_t ios = 0;
};

/// One fio job thread: sequential I/O over [region_off, region_off +
/// region_len), wrapping around, until the deadline. `iobuf` is the job's
/// I/O buffer placement (the RDMA-advertised memory for remote devices).
sim::Task<> fio_worker(numa::Thread& th, blk::BlockDevice& dev,
                       FioOptions opts, std::uint64_t region_off,
                       std::uint64_t region_len, numa::Placement iobuf,
                       FioCounters* counters);

}  // namespace e2e::apps
