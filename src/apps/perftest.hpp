// Verbs micro-benchmarks (the perftest suite: ib_send_bw / ib_write_bw /
// ib_read_bw / ib_send_lat analogues).
//
// Every RDMA deployment starts with these: single-QP bandwidth sweeps over
// message sizes, message-rate tests for small messages, and ping-pong
// latency. They validate the verbs layer against the obvious analytic
// targets (line rate, RTT) and give users the familiar first tool.
#pragma once

#include <cstdint>

#include "net/link.hpp"
#include "numa/process.hpp"
#include "rdma/rdma.hpp"

namespace e2e::apps {

enum class PerftestOp { kSend, kWrite, kRead };

struct PerftestConfig {
  PerftestOp op = PerftestOp::kWrite;
  std::uint64_t msg_bytes = 1 << 16;
  int iterations = 1000;
  int outstanding = 64;  // posted depth (bandwidth tests)
};

struct PerftestResult {
  double gbps = 0.0;          // payload bandwidth
  double msgs_per_sec = 0.0;  // message rate
  double avg_lat_us = 0.0;    // latency tests: one-way ping-pong half-RTT
};

/// Bandwidth test: keeps `outstanding` messages in flight for `iterations`
/// messages and reports payload bandwidth and message rate.
PerftestResult run_bw(sim::Engine& eng, rdma::ConnectedPair& pair,
                      numa::Process& client, numa::Process& server,
                      const PerftestConfig& cfg);

/// Latency test: SEND ping-pong, reports the average half-round-trip.
PerftestResult run_lat(sim::Engine& eng, rdma::ConnectedPair& pair,
                       numa::Process& client, numa::Process& server,
                       const PerftestConfig& cfg);

}  // namespace e2e::apps
