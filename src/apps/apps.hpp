// Umbrella header for the benchmark applications.
#pragma once

#include "apps/fio.hpp"
#include "apps/gridftp.hpp"
#include "apps/iperf.hpp"
#include "apps/perftest.hpp"
